GO ?= go

.PHONY: check vet build test race race-solver race-shard lint-state bench-smoke bench-json fuzz-smoke chaos crash-chaos service-chaos failover-chaos eco-chaos

## check: the full pre-merge gate — vet, build, state lint, race-enabled
## tests, bench smoke, chaos suite, crash-chaos suite, service-chaos suite,
## failover-chaos suite, eco-chaos suite, fuzz smoke.
check: vet build lint-state race-solver race-shard race bench-smoke chaos crash-chaos service-chaos failover-chaos eco-chaos fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## race-solver: fast early race gate over the GCP fast path — the shared
## solve/window caches and the parallel candidate-generation fan-out are the
## only lock-coordinated hot paths, so race them first and with -count=1.
race-solver:
	$(GO) test -race -count=1 ./internal/ilp/... ./internal/legal/... ./internal/crp/...

## race-shard: race gate over the region-sharded iteration loop — the
## speculative region pipelines, the worker-overlay fan-out, and the
## journal-segmented merge are the concurrency added by the sharding PR
## (see DESIGN.md, "Sharding architecture").
race-shard:
	$(GO) test -race -count=1 ./internal/shard/...
	$(GO) test -race -count=1 -run 'TestSharded' ./internal/crp
	$(GO) test -race -count=1 -run 'TestChaosShard|TestResumeBitIdentityEveryBoundarySharded' ./internal/flow

## bench-smoke: one-shot Fig. 3 breakdown — catches benchmark-harness rot
## without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig3Breakdown' -benchtime 1x .

## lint-state: no code in the CR&P iteration path mutates placement, grid
## demand or routes behind the view's back — mutation goes through
## view.Overlay/view.Txn only (see DESIGN.md, "State architecture").
lint-state:
	@if grep -nE '\.D\.(MoveCells|Restore|Snapshot|ImportPositions|ImportHistory)\(|\.G\.(AddWire|AddVia|RestoreDemand)\(|\.R\.(RipUp|Commit|RerouteNet|AdoptRoutes)\(' \
		$$(find internal/crp -name '*.go' ! -name '*_test.go'); then \
		echo 'lint-state: direct design-state mutation in the CR&P iteration path — use view.Overlay/view.Txn (DESIGN.md, "State architecture")' >&2; \
		exit 1; \
	else \
		echo 'lint-state: ok'; \
	fi

## bench-json: regenerate the BENCH_*.json performance snapshot
## (see EXPERIMENTS.md, "Performance architecture"). Override the target
## with BENCH=..., e.g. `make bench-json BENCH=BENCH_9.json`.
BENCH ?= BENCH_10.json
bench-json:
	$(GO) run ./cmd/benchreport -o $(BENCH)

## chaos: the fault-injection suite — every fault class must complete with
## degraded-mode stats and a legal design; zero faults must be bit-identical
## (see EXPERIMENTS.md, "Fault-injection runbook").
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/flow
	$(GO) test -race -count=1 -run 'TestSelectFallback|TestSelectExpiredDeadline' ./internal/crp
	$(GO) test -race -count=1 ./internal/faultinject

## crash-chaos: the crash-safety suite — kill-at-every-checkpoint-boundary
## resume bit-identity, corrupt-checkpoint fallback, and the supervisor
## driving a really-crashing child to completion (see EXPERIMENTS.md,
## "Kill/resume runbook").
crash-chaos:
	$(GO) test -race -count=1 -run 'TestResume|TestCheckpoint|TestSupervisor' ./internal/flow
	$(GO) test -race -count=1 ./internal/checkpoint ./internal/supervise ./internal/atomicio

## service-chaos: the daemon-level chaos suite — multi-tenant job service
## under injected worker panics, SIGKILLed child workers, preemption,
## drain/restart recovery and overload, asserting byte-identical outputs
## and structured admission errors (see DESIGN.md, "Service architecture").
service-chaos:
	$(GO) test -race -count=1 ./internal/service ./internal/supervise

## failover-chaos: the multi-node failover battery — kill-at-every-
## checkpoint-boundary adoption with byte-identical outputs, partitioned
## zombies fenced off the store, the load-shed ladder engaging in order,
## exact-result-cache differentials, retry-budget exhaustion, and the
## lease-clock edge cases (see EXPERIMENTS.md, "Failover runbook").
failover-chaos:
	$(GO) test -race -count=1 -run 'TestFailover|TestShedLadder|TestResultCache|TestRetryBudget|TestLease|TestDecodeLeaseRecord|TestNodesEndpoint' ./internal/service
	$(GO) test -race -count=1 -run 'TestRetryBudget' ./internal/supervise

## eco-chaos: the incremental-ECO battery — a crash mid-ECO reruns to
## byte-identical outputs (ECO attempts are deterministic and carry no
## checkpoints), a malformed or inadmissible delta is a structured rejection
## before anything mutates, and the ECO-vs-scratch differential holds (see
## EXPERIMENTS.md, "ECO runbook").
eco-chaos:
	$(GO) test -race -count=1 -run 'TestECO' ./internal/flow ./internal/service
	$(GO) test -race -count=1 ./internal/eco

## fuzz-smoke: short coverage-guided runs of every fuzz target (one -fuzz
## per invocation — the go tool allows a single target at a time). The
## minimize cap keeps a new-coverage find from eating the whole budget.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test ./internal/lefdef -fuzz 'FuzzParseLEF$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/lefdef -fuzz 'FuzzParseDEF$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/lefdef -fuzz 'FuzzDEFRoundTrip$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/checkpoint -fuzz 'FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/view -fuzz 'FuzzOverlayCommit$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/view -fuzz 'FuzzShardMerge$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/ilp -fuzz 'FuzzILPSolve$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/service -fuzz 'FuzzSpecDecode$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/service -fuzz 'FuzzLeaseRecord$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/eco -fuzz 'FuzzDeltaApply$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
