GO ?= go

.PHONY: check vet build test race bench-smoke bench-json

## check: the full pre-merge gate — vet, build, race-enabled tests, bench smoke.
check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-smoke: one-shot Fig. 3 breakdown — catches benchmark-harness rot
## without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig3Breakdown' -benchtime 1x .

## bench-json: regenerate the BENCH_*.json performance snapshot
## (see EXPERIMENTS.md, "Performance architecture").
bench-json:
	$(GO) run ./cmd/benchreport -o BENCH_1.json
