GO ?= go

.PHONY: check vet build test race bench-smoke bench-json fuzz-smoke chaos crash-chaos

## check: the full pre-merge gate — vet, build, race-enabled tests, bench
## smoke, chaos suite, crash-chaos suite, fuzz smoke.
check: vet build race bench-smoke chaos crash-chaos fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-smoke: one-shot Fig. 3 breakdown — catches benchmark-harness rot
## without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig3Breakdown' -benchtime 1x .

## bench-json: regenerate the BENCH_*.json performance snapshot
## (see EXPERIMENTS.md, "Performance architecture").
bench-json:
	$(GO) run ./cmd/benchreport -o BENCH_1.json

## chaos: the fault-injection suite — every fault class must complete with
## degraded-mode stats and a legal design; zero faults must be bit-identical
## (see EXPERIMENTS.md, "Fault-injection runbook").
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/flow
	$(GO) test -race -count=1 -run 'TestSelectFallback|TestSelectExpiredDeadline' ./internal/crp
	$(GO) test -race -count=1 ./internal/faultinject

## crash-chaos: the crash-safety suite — kill-at-every-checkpoint-boundary
## resume bit-identity, corrupt-checkpoint fallback, and the supervisor
## driving a really-crashing child to completion (see EXPERIMENTS.md,
## "Kill/resume runbook").
crash-chaos:
	$(GO) test -race -count=1 -run 'TestResume|TestCheckpoint|TestSupervisor' ./internal/flow
	$(GO) test -race -count=1 ./internal/checkpoint ./internal/supervise ./internal/atomicio

## fuzz-smoke: short coverage-guided runs of every fuzz target (one -fuzz
## per invocation — the go tool allows a single target at a time). The
## minimize cap keeps a new-coverage find from eating the whole budget.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test ./internal/lefdef -fuzz 'FuzzParseLEF$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/lefdef -fuzz 'FuzzParseDEF$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/lefdef -fuzz 'FuzzDEFRoundTrip$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
	$(GO) test ./internal/checkpoint -fuzz 'FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x
