// Command benchgen emits the synthetic ISPD-2018-like benchmark suite as
// LEF/DEF file pairs and prints the Table II statistics.
//
// Usage:
//
//	benchgen -out ./benchmarks [-scale 0.02] [-circuit crp_test3] [-stats]
//
// With -stats only the statistics table is printed and no files are
// written.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/crp-eda/crp/internal/experiments"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/lefdef"
)

func main() {
	out := flag.String("out", "benchmarks", "output directory for LEF/DEF pairs")
	scale := flag.Float64("scale", 0.02, "fraction of the contest cell/net counts")
	circuit := flag.String("circuit", "", "generate only this circuit (default: all ten)")
	statsOnly := flag.Bool("stats", false, "print Table II statistics only, write nothing")
	flag.Parse()

	if *statsOnly {
		if err := experiments.Table2(os.Stdout, *scale); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, spec := range ispd.Suite(*scale) {
		if *circuit != "" && spec.Name != *circuit {
			continue
		}
		d, err := ispd.Generate(spec)
		if err != nil {
			fatal(err)
		}
		lefPath := filepath.Join(*out, spec.Name+".lef")
		defPath := filepath.Join(*out, spec.Name+".def")
		if err := lefdef.WriteLEFFile(lefPath, d.Tech, d.Macros); err != nil {
			fatal(err)
		}
		if err := lefdef.WriteDEFFile(defPath, d); err != nil {
			fatal(err)
		}
		st := d.Stats()
		fmt.Printf("%s: %d cells, %d nets, %.1f%% utilisation -> %s, %s\n",
			spec.Name, st.Cells, st.Nets, st.Utilisation*100, lefPath, defPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
