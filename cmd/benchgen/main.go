// Command benchgen emits the synthetic ISPD-2018-like benchmark suite as
// LEF/DEF file pairs and prints the Table II statistics.
//
// Usage:
//
//	benchgen -out ./benchmarks [-scale 0.02] [-circuit crp_test3] [-stats]
//	benchgen -circuit crp_test3 -eco-delta edit.json [-eco-def run.def] [-eco-moves 8] [-eco-nets 2] [-eco-seed 1]
//
// With -stats only the statistics table is printed and no files are
// written. With -eco-delta a reproducible small edit (k moved cells, m
// reconnected nets, seeded) against the named circuit is written in the
// canonical delta-JSON form cmd/crp's -eco-delta and the service's ECO job
// kind consume — the generator the differential suite and the ECO bench
// share. Move targets must be free against the placement the delta will be
// applied to, so when the parent is a finished run pass its output DEF via
// -eco-def; without it the delta is generated against the circuit's
// synthetic base placement and will usually collide with cells the parent
// run moved.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/crp-eda/crp/internal/eco"
	"github.com/crp-eda/crp/internal/experiments"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/lefdef"
)

func main() {
	out := flag.String("out", "benchmarks", "output directory for LEF/DEF pairs")
	scale := flag.Float64("scale", 0.02, "fraction of the contest cell/net counts")
	circuit := flag.String("circuit", "", "generate only this circuit (default: all ten)")
	statsOnly := flag.Bool("stats", false, "print Table II statistics only, write nothing")
	ecoDelta := flag.String("eco-delta", "", "write a seeded ECO delta (canonical JSON) to this path instead of LEF/DEF")
	ecoDEF := flag.String("eco-def", "", "generate the -eco-delta edit against this placed DEF (e.g. the parent run's output) instead of the base placement")
	ecoMoves := flag.Int("eco-moves", 8, "moved cells in the -eco-delta edit")
	ecoNets := flag.Int("eco-nets", 2, "reconnected nets in the -eco-delta edit")
	ecoSeed := flag.Int64("eco-seed", 1, "seed of the -eco-delta edit")
	flag.Parse()

	if *ecoDelta != "" {
		if *circuit == "" {
			fatal(fmt.Errorf("-eco-delta requires -circuit"))
		}
		var spec *ispd.Spec
		for _, s := range ispd.Suite(*scale) {
			if s.Name == *circuit {
				sc := s
				spec = &sc
				break
			}
		}
		if spec == nil {
			fatal(fmt.Errorf("unknown circuit %q", *circuit))
		}
		d, err := ispd.Generate(*spec)
		if err != nil {
			fatal(err)
		}
		if *ecoDEF != "" {
			f, err := os.Open(*ecoDEF)
			if err != nil {
				fatal(err)
			}
			placed, err := lefdef.ParseDEF(f, d.Tech, d.Macros)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("parsing -eco-def: %w", err))
			}
			d = placed
		}
		dl, err := eco.GenerateDelta(d, *ecoMoves, *ecoNets, *ecoSeed)
		if err != nil {
			fatal(err)
		}
		canon, err := dl.Canonical()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*ecoDelta, append(canon, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d moves, %d rewired nets (seed %d) -> %s\n",
			*circuit, len(dl.Moves), len(dl.Nets), *ecoSeed, *ecoDelta)
		return
	}

	if *statsOnly {
		if err := experiments.Table2(os.Stdout, *scale); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, spec := range ispd.Suite(*scale) {
		if *circuit != "" && spec.Name != *circuit {
			continue
		}
		d, err := ispd.Generate(spec)
		if err != nil {
			fatal(err)
		}
		lefPath := filepath.Join(*out, spec.Name+".lef")
		defPath := filepath.Join(*out, spec.Name+".def")
		if err := lefdef.WriteLEFFile(lefPath, d.Tech, d.Macros); err != nil {
			fatal(err)
		}
		if err := lefdef.WriteDEFFile(defPath, d); err != nil {
			fatal(err)
		}
		st := d.Stats()
		fmt.Printf("%s: %d cells, %d nets, %.1f%% utilisation -> %s, %s\n",
			spec.Name, st.Cells, st.Nets, st.Utilisation*100, lefPath, defPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
