// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments -table2                # benchmark statistics (Table II)
//	experiments -table3 -fig2 -fig3    # full four-flow sweep
//	experiments -all -scale 0.02 -circuits 0,1,2
//
// The sweep runs four flows per circuit (baseline, [18] substitute, CR&P
// k=1, CR&P k=10), each on a fresh copy of the design.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
	"github.com/crp-eda/crp/internal/experiments"
)

func main() {
	var (
		table2   = flag.Bool("table2", false, "print Table II (benchmark statistics)")
		table3   = flag.Bool("table3", false, "run the sweep and print Table III")
		fig2     = flag.Bool("fig2", false, "run the sweep and print Fig. 2 (runtimes)")
		fig3     = flag.Bool("fig3", false, "run the sweep and print Fig. 3 (breakdown)")
		all      = flag.Bool("all", false, "shorthand for -table2 -table3 -fig2 -fig3")
		scale    = flag.Float64("scale", 0.02, "fraction of the contest circuit sizes")
		circuits = flag.String("circuits", "", "comma-separated suite indices 0-9 (default all)")
		budget   = flag.Duration("sota-budget", 90*time.Second, "wall-clock budget for the [18] substitute (0 = unlimited)")
		quiet    = flag.Bool("q", false, "suppress progress output")
		outPath  = flag.String("out", "", "also write the report here (atomic: temp + fsync + rename)")
	)
	flag.Parse()
	if *all {
		*table2, *table3, *fig2, *fig3 = true, true, true, true
	}
	if !*table2 && !*table3 && !*fig2 && !*fig3 {
		flag.Usage()
		os.Exit(2)
	}

	// The report goes to stdout and, with -out, tees into an atomic file
	// replacement committed at the end — a killed sweep never leaves a
	// torn report.
	var outs atomicio.Outputs
	defer outs.Abort()
	out, err := outs.CreateTee(*outPath, os.Stdout)
	if err != nil {
		fatal(err)
	}
	commit := func() {
		if err := outs.Commit(); err != nil {
			fatal(err)
		}
	}

	if *table2 {
		if err := experiments.Table2(out, *scale); err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
	}
	if !*table3 && !*fig2 && !*fig3 {
		commit()
		return
	}

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.SOTABudget = *budget
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *circuits != "" {
		for _, part := range strings.Split(*circuits, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -circuits entry %q: %w", part, err))
			}
			opts.Circuits = append(opts.Circuits, i)
		}
	}
	results, err := experiments.Run(opts)
	if err != nil {
		fatal(err)
	}
	if *table3 {
		experiments.Table3(out, results)
		fmt.Fprintln(out)
	}
	if *fig2 {
		experiments.Fig2(out, results)
		fmt.Fprintln(out)
	}
	if *fig3 {
		experiments.Fig3(out, results)
	}
	commit()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
