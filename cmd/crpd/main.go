// Command crpd is the self-healing run supervisor: it executes a child
// command (typically a checkpointed crp invocation) and restarts it with
// exponential backoff and jitter when it crashes, up to a retry cap.
// Combined with `crp -checkpoint-dir D -resume`, a run that is killed at
// any point — OOM, node reboot, injected fault — completes with outputs
// bit-identical to an uninterrupted run, losing at most one CR&P iteration
// of work per crash.
//
// Usage:
//
//	crpd [-max-attempts 5] [-backoff 1s] [-max-backoff 30s] [-jitter-seed 1]
//	     [-report report.json] -- crp -lef ... -def ... -checkpoint-dir ckpt -resume
//
// The child's stdout/stderr pass through. Every attempt is logged to
// stderr, and -report writes the structured attempt history (atomically)
// as JSON. Exit status: 0 when the child eventually succeeded, 1 when the
// retry cap was exhausted, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
	"github.com/crp-eda/crp/internal/supervise"
)

func main() {
	var (
		maxAttempts = flag.Int("max-attempts", 5, "total executions before giving up")
		base        = flag.Duration("backoff", time.Second, "delay before the first retry (doubles per retry)")
		maxBackoff  = flag.Duration("max-backoff", 30*time.Second, "backoff growth cap")
		jitterSeed  = flag.Int64("jitter-seed", 1, "seed for the deterministic backoff jitter")
		reportPath  = flag.String("report", "", "write the JSON attempt report here (atomic)")
	)
	flag.Parse()
	argv := flag.Args()
	if len(argv) == 0 {
		fmt.Fprintln(os.Stderr, "crpd: no child command given (crpd [flags] -- cmd args...)")
		flag.Usage()
		os.Exit(2)
	}

	job, err := supervise.Command(argv, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crpd:", err)
		os.Exit(2)
	}
	rep := supervise.Run(supervise.Config{
		MaxAttempts: *maxAttempts,
		BaseBackoff: *base,
		MaxBackoff:  *maxBackoff,
		JitterSeed:  *jitterSeed,
		OnAttempt: func(at supervise.Attempt) {
			if at.Err == "" {
				fmt.Fprintf(os.Stderr, "crpd: attempt %d succeeded in %s\n", at.N, at.Duration.Round(time.Millisecond))
				return
			}
			fmt.Fprintf(os.Stderr, "crpd: attempt %d failed (exit %d) after %s: %s\n",
				at.N, at.ExitCode, at.Duration.Round(time.Millisecond), at.Err)
			if at.Backoff > 0 {
				fmt.Fprintf(os.Stderr, "crpd: retrying in %s\n", at.Backoff.Round(time.Millisecond))
			}
		},
	}, job)

	if *reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = atomicio.WriteFileBytes(*reportPath, append(data, '\n'))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "crpd: writing report:", err)
		}
	}
	if !rep.Succeeded {
		fmt.Fprintf(os.Stderr, "crpd: giving up after %d attempt(s)\n", len(rep.Attempts))
		os.Exit(1)
	}
}
