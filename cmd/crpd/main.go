// Command crpd is the CR&P daemon. It has grown from a single-child
// restart supervisor into a long-running multi-tenant job service, and
// runs in one of three modes:
//
// Daemon mode (-listen): serve the multi-tenant job API. Jobs — inline
// LEF/DEF or synthetic designs plus CR&P parameters — are admitted into a
// bounded queue, run on a bounded worker pool under per-job budgets and
// crash-safe checkpoint directories, and observed over HTTP/JSON
// (per-iteration progress and degradation events stream as NDJSON).
// Preempted or crashed jobs resume from their last checkpoint on any free
// worker slot with outputs bit-identical to an uninterrupted run. SIGTERM
// drains gracefully: admission closes, in-flight jobs checkpoint and
// requeue, and a restarted daemon on the same -data-dir picks them up.
//
//	crpd -listen :8731 -data-dir /var/lib/crpd [-workers 2] [-queue-cap 16]
//	     [-tenant-cap-active 8] [-tenant-cap-running 1] [-retry-cap 3]
//	     [-retry-budget 0] [-drain-grace 10s] [-isolate]
//	     [-node-id NODE] [-store-dir DIR] [-lease-ttl 10s] [-shed-policy off]
//	     [-no-cache]
//
// Several daemons may share one job store (-store-dir, an alias for
// -data-dir that wins when both are set) as long as each uses a distinct
// -node-id: jobs are claimed through fencing-token leases, a crashed
// node's work is adopted by the survivors after -lease-ttl without
// heartbeats, and a partitioned ex-owner's stale writes are fenced.
// -shed-policy degrade[:k=N,at=F,budget-ms=M] turns on degraded admission
// near queue saturation (every clamp is recorded in the job's result).
//
// Supervisor mode (trailing child command): the original self-healing
// wrapper. It executes the child (typically a checkpointed crp
// invocation) and restarts it with exponential backoff and jitter when it
// crashes, up to a retry cap. SIGTERM/SIGINT interrupt the loop — even
// mid-backoff — without starting further attempts.
//
//	crpd [-max-attempts 5] [-backoff 1s] [-max-backoff 30s] [-jitter-seed 1]
//	     [-report report.json] -- crp -lef ... -def ... -checkpoint-dir ckpt -resume
//
// Worker mode (CRPD_RUN_JOB=<jobdir> in the environment): internal. A
// daemon started with -isolate re-execs itself in this mode to run each
// job attempt in its own process, so a worker crash — SIGKILL included —
// cannot take the daemon or its other jobs down.
//
// Exit status: 0 on success, 1 on a failed run or report write, 2 on
// usage errors; worker mode exits with the attempt's protocol code.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
	"github.com/crp-eda/crp/internal/service"
	"github.com/crp-eda/crp/internal/supervise"
)

func main() {
	if dir := os.Getenv(service.EnvRunJob); dir != "" {
		os.Exit(service.RunWorkerAttempt(dir))
	}

	var (
		// Daemon mode.
		listen      = flag.String("listen", "", "serve the job API on this address (daemon mode)")
		dataDir     = flag.String("data-dir", "", "job state root (daemon mode; required with -listen)")
		workers     = flag.Int("workers", 2, "concurrent job slots (daemon)")
		queueCap    = flag.Int("queue-cap", 16, "bounded queue capacity (daemon)")
		tenantAct   = flag.Int("tenant-cap-active", 0, "per-tenant queued+running cap, 0 = queue-cap (daemon)")
		tenantRun   = flag.Int("tenant-cap-running", 0, "per-tenant running cap, 0 = workers (daemon)")
		retryCap    = flag.Int("retry-cap", 3, "attempts per job activation (daemon)")
		retryBudget = flag.Duration("retry-budget", 0, "wall-clock cap per activation's retries, 0 = uncapped (daemon)")
		drainGrace  = flag.Duration("drain-grace", 10*time.Second, "wait for a checkpoint boundary before hard-cancelling (daemon)")
		isolate     = flag.Bool("isolate", false, "run each job attempt in a child process (daemon)")
		nodeID      = flag.String("node-id", "", "this daemon's identity in a shared job store, default node-<pid> (daemon)")
		storeDir    = flag.String("store-dir", "", "shared job store root; overrides -data-dir (daemon)")
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "job-claim lease TTL; failover latency after a node dies (daemon)")
		shedPolicy  = flag.String("shed-policy", "off", "degraded admission near saturation: off | degrade[:k=N,at=F,budget-ms=M] (daemon)")
		noCache     = flag.Bool("no-cache", false, "disable exact-result-cache serving at admission (daemon)")

		// Supervisor mode.
		maxAttempts = flag.Int("max-attempts", 5, "total executions before giving up (supervisor)")
		base        = flag.Duration("backoff", time.Second, "delay before the first retry, doubles per retry (supervisor)")
		maxBackoff  = flag.Duration("max-backoff", 30*time.Second, "backoff growth cap (supervisor)")
		jitterSeed  = flag.Int64("jitter-seed", 1, "seed for the deterministic backoff jitter (supervisor)")
		reportPath  = flag.String("report", "", "write the JSON attempt report here, atomically (supervisor)")
	)
	flag.Parse()

	switch {
	case *listen != "":
		dir := *dataDir
		if *storeDir != "" {
			dir = *storeDir
		}
		os.Exit(runDaemon(daemonFlags{
			listen: *listen, dataDir: dir, workers: *workers,
			queueCap: *queueCap, tenantActive: *tenantAct, tenantRunning: *tenantRun,
			retryCap: *retryCap, retryBudget: *retryBudget, drainGrace: *drainGrace,
			isolate: *isolate, nodeID: *nodeID, leaseTTL: *leaseTTL,
			shedPolicy: *shedPolicy, noCache: *noCache,
		}))
	case len(flag.Args()) > 0:
		os.Exit(runSupervisor(flag.Args(), *maxAttempts, *base, *maxBackoff, *jitterSeed, *reportPath))
	default:
		fmt.Fprintln(os.Stderr, "crpd: need -listen ADDR (daemon) or a child command (crpd [flags] -- cmd args...)")
		flag.Usage()
		os.Exit(2)
	}
}

type daemonFlags struct {
	listen, dataDir                       string
	workers, queueCap                     int
	tenantActive, tenantRunning, retryCap int
	retryBudget                           time.Duration
	drainGrace                            time.Duration
	isolate                               bool
	nodeID                                string
	leaseTTL                              time.Duration
	shedPolicy                            string
	noCache                               bool
}

// parseShedPolicy parses the -shed-policy flag: "off" (or empty) disables
// degraded admission, "degrade" enables it with the defaults, and
// "degrade:k=N,at=F,budget-ms=M" tunes the iteration clamp, the engagement
// fraction of the queue and the flow-budget clamp.
func parseShedPolicy(s string) (*service.ShedPolicy, error) {
	switch s {
	case "", "off":
		return nil, nil
	case "degrade":
		return &service.ShedPolicy{}, nil
	}
	rest, ok := strings.CutPrefix(s, "degrade:")
	if !ok {
		return nil, fmt.Errorf("unknown shed policy %q (want off or degrade[:k=N,at=F,budget-ms=M])", s)
	}
	p := &service.ShedPolicy{}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("shed policy option %q is not key=value", kv)
		}
		var err error
		switch key {
		case "k":
			p.MaxK, err = strconv.Atoi(val)
		case "at":
			p.Threshold, err = strconv.ParseFloat(val, 64)
		case "budget-ms":
			p.FlowBudgetMS, err = strconv.ParseInt(val, 10, 64)
		default:
			return nil, fmt.Errorf("unknown shed policy option %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("shed policy option %s: %v", key, err)
		}
	}
	return p, nil
}

func runDaemon(f daemonFlags) int {
	if f.dataDir == "" {
		fmt.Fprintln(os.Stderr, "crpd: -listen requires -data-dir (or -store-dir)")
		return 2
	}
	shed, err := parseShedPolicy(f.shedPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crpd:", err)
		return 2
	}
	cfg := service.Config{
		DataDir:          f.dataDir,
		Workers:          f.workers,
		QueueCap:         f.queueCap,
		TenantMaxActive:  f.tenantActive,
		TenantMaxRunning: f.tenantRunning,
		RetryCap:         f.retryCap,
		RetryBudget:      f.retryBudget,
		DrainGrace:       f.drainGrace,
		NodeID:           f.nodeID,
		LeaseTTL:         f.leaseTTL,
		Shed:             shed,
		DisableCache:     f.noCache,
	}
	if f.isolate {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "crpd: resolving own binary for -isolate:", err)
			return 1
		}
		cfg.Exec = []string{exe}
	}
	svc, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crpd:", err)
		return 1
	}
	srv := &http.Server{Addr: f.listen, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "crpd: serving on %s (data %s, %d workers, queue %d)\n",
		f.listen, f.dataDir, cfg.Workers, cfg.QueueCap)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "crpd: serve:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: checkpoint and requeue every in-flight job, then
	// stop accepting connections. A follow-up crpd on the same -data-dir
	// resumes the queue exactly where it stood.
	fmt.Fprintln(os.Stderr, "crpd: draining (in-flight jobs checkpoint and requeue)")
	dctx, dcancel := context.WithTimeout(context.Background(), 2*cfg.DrainGrace+30*time.Second)
	defer dcancel()
	code := 0
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "crpd:", err)
		code = 1
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "crpd: shutdown:", err)
		code = 1
	}
	<-errCh // ListenAndServe returns ErrServerClosed after Shutdown
	return code
}

func runSupervisor(argv []string, maxAttempts int, base, maxBackoff time.Duration, jitterSeed int64, reportPath string) int {
	job, err := supervise.Command(argv, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crpd:", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	rep := supervise.RunCtx(ctx, supervise.Config{
		MaxAttempts: maxAttempts,
		BaseBackoff: base,
		MaxBackoff:  maxBackoff,
		JitterSeed:  jitterSeed,
		OnAttempt: func(at supervise.Attempt) {
			if at.Err == "" {
				fmt.Fprintf(os.Stderr, "crpd: attempt %d succeeded in %s\n", at.N, at.Duration.Round(time.Millisecond))
				return
			}
			fmt.Fprintf(os.Stderr, "crpd: attempt %d failed (exit %d) after %s: %s\n",
				at.N, at.ExitCode, at.Duration.Round(time.Millisecond), at.Err)
			if at.Backoff > 0 {
				fmt.Fprintf(os.Stderr, "crpd: retrying in %s\n", at.Backoff.Round(time.Millisecond))
			}
		},
	}, job)

	code := 0
	if reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = atomicio.WriteFileBytes(reportPath, append(data, '\n'))
		}
		if err != nil {
			// A report the caller asked for but did not get is a failure,
			// even when the child itself succeeded.
			fmt.Fprintln(os.Stderr, "crpd: writing report:", err)
			code = 1
		}
	}
	switch {
	case rep.Cancelled:
		fmt.Fprintf(os.Stderr, "crpd: cancelled after %d attempt(s)\n", len(rep.Attempts))
		return 1
	case !rep.Succeeded:
		fmt.Fprintf(os.Stderr, "crpd: giving up after %d attempt(s)\n", len(rep.Attempts))
		return 1
	}
	return code
}
