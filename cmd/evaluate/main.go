// Command evaluate is the standalone ISPD-2018-style evaluator: it loads a
// LEF/DEF design, global-routes it (the guides a detailed router would
// consume), runs the detailed router, and prints the contest metrics —
// wirelength, via count, DRVs, and the weighted quality score.
//
// Usage:
//
//	evaluate -lef design.lef -def design.def
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/lefdef"
)

func main() {
	lefPath := flag.String("lef", "", "technology + macro library (LEF subset)")
	defPath := flag.String("def", "", "design (DEF subset)")
	flag.Parse()
	if *lefPath == "" || *defPath == "" {
		fmt.Fprintln(os.Stderr, "evaluate: -lef and -def are required")
		flag.Usage()
		os.Exit(2)
	}

	lf, err := os.Open(*lefPath)
	if err != nil {
		fatal(err)
	}
	t, macros, err := lefdef.ParseLEF(lf)
	lf.Close()
	if err != nil {
		fatal(err)
	}
	df, err := os.Open(*defPath)
	if err != nil {
		fatal(err)
	}
	d, err := lefdef.ParseDEF(df, t, macros)
	df.Close()
	if err != nil {
		fatal(err)
	}

	res := flow.RunBaseline(context.Background(), d, flow.DefaultConfig())
	m := res.Metrics
	fmt.Printf("design        : %s\n", m.Design)
	fmt.Printf("wirelength    : %.1f um (%d dbu)\n", m.WirelengthUM, m.WirelengthDBU)
	fmt.Printf("vias          : %d\n", m.Vias)
	fmt.Printf("DRVs          : %d (short %d, spacing %d, min-area %d, open %d)\n",
		m.DRVs.Total(), m.DRVs.Shorts, m.DRVs.Spacing, m.DRVs.MinArea, m.DRVs.Opens)
	fmt.Printf("quality score : %.1f (wire %.1f/unit, via %.1f, DRV %.0f)\n",
		m.Score, 0.5, 2.0, 500.0)
	fmt.Printf("runtime       : GR %.2fs + DR %.2fs\n",
		res.Timings.GlobalRoute.Seconds(), res.Timings.DetailRoute.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evaluate:", err)
	os.Exit(1)
}
