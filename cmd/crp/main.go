// Command crp runs the full CR&P flow of the paper's Fig. 1 on a LEF/DEF
// design: global routing (CUGR substitute), k iterations of the
// Co-operation between Routing and Placement, then detailed routing
// (TritonRoute substitute) with the ISPD-2018-style evaluation.
//
// Usage:
//
//	crp -lef design.lef -def design.def [-k 10] [-out out.def] [-guide out.guide]
//	    [-timeout 10m] [-iter-timeout 30s]
//	    [-checkpoint-dir ckpt/] [-resume]
//	    [-eco-from ckpt/ -eco-delta edit.json]
//
// With -eco-delta the command runs the incremental ECO entry point instead
// of a full flow: the JSON delta (moved cells, rewired nets, added/removed
// cells — see internal/eco) is applied transactionally and only the dirty
// region is re-optimized, falling back to a full run when the edit is
// structural or the dirty frontier keeps growing. -eco-from restores the
// parent run's state from its checkpoint directory; without it the input
// DEF's placement is taken as the parent state and global routing runs
// fresh.
//
// Without -out/-guide the flow still runs and prints the metrics, so the
// command doubles as an evaluator for the CR&P flow. With -timeout or
// -iter-timeout the run degrades instead of hanging: on deadline the
// best-so-far DEF/guide outputs are still written, the degradations are
// printed, and the command exits non-zero.
//
// With -checkpoint-dir the run journals a crash-safe checkpoint after
// global routing and after every CR&P iteration; -resume continues from
// the newest usable checkpoint (bit-identically to an uninterrupted run)
// and silently starts fresh when the directory holds none — so a
// supervisor (cmd/crpd) can restart the same command line after a crash.
// Output files are written atomically (temp + fsync + rename): a crash
// mid-write never leaves a torn DEF or guide file behind.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
	"github.com/crp-eda/crp/internal/checkpoint"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eco"
	"github.com/crp-eda/crp/internal/eval"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/lefdef"
	"github.com/crp-eda/crp/internal/route/global"
)

func main() {
	var (
		lefPath     = flag.String("lef", "", "technology + macro library (LEF subset)")
		defPath     = flag.String("def", "", "design (DEF subset)")
		k           = flag.Int("k", 10, "CR&P iterations")
		outDEF      = flag.String("out", "", "write the post-CR&P placement DEF here")
		outGuide    = flag.String("guide", "", "write the route guides here")
		gamma       = flag.Float64("gamma", 0.6, "critical-set fraction (Algorithm 1)")
		seed        = flag.Int64("seed", 1, "selection seed")
		baseline    = flag.Bool("baseline", false, "skip CR&P: plain GR+DR flow")
		showPhase   = flag.Bool("phases", false, "print the CR&P phase breakdown")
		heat        = flag.Bool("congestion", false, "print the post-flow congestion heatmap")
		worst       = flag.Int("worst", 0, "print the N most expensive nets after routing")
		timeout     = flag.Duration("timeout", time.Duration(0), "whole-flow wall-clock budget (0 = unlimited)")
		iterTimeout = flag.Duration("iter-timeout", time.Duration(0), "per-CR&P-iteration budget (0 = unlimited)")
		ckptDir     = flag.String("checkpoint-dir", "", "journal crash-safe checkpoints into this directory")
		ckptKeep    = flag.Int("checkpoint-keep", 0, "checkpoints to retain (0 = default 2)")
		resume      = flag.Bool("resume", false, "continue from the newest checkpoint in -checkpoint-dir (fresh start if none)")
		shardRegs   = flag.Int("shard-regions", 0, "target region count for sharded CR&P iterations (0 = serial)")
		shardHalo   = flag.Int("shard-halo", 0, "GCell halo inflating region merge footprints (0 = default)")
		ecoFrom     = flag.String("eco-from", "", "incremental re-run: checkpoint directory of the parent run")
		ecoDelta    = flag.String("eco-delta", "", "incremental re-run: JSON delta file (moves/nets/adds/removes)")
		ecoHalo     = flag.Int("eco-halo", 0, "ECO dirty-region halo in GCells (0 = default)")
	)
	flag.Parse()
	if *lefPath == "" || *defPath == "" {
		fmt.Fprintln(os.Stderr, "crp: -lef and -def are required")
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "crp: -resume requires -checkpoint-dir")
		os.Exit(2)
	}
	if *ecoFrom != "" && *ecoDelta == "" {
		fmt.Fprintln(os.Stderr, "crp: -eco-from requires -eco-delta")
		os.Exit(2)
	}

	lf, err := os.Open(*lefPath)
	if err != nil {
		fatal(err)
	}
	t, macros, err := lefdef.ParseLEF(lf)
	lf.Close()
	if err != nil {
		fatal(err)
	}
	df, err := os.Open(*defPath)
	if err != nil {
		fatal(err)
	}
	d, err := lefdef.ParseDEF(df, t, macros)
	df.Close()
	if err != nil {
		fatal(err)
	}
	st := d.Stats()
	fmt.Printf("loaded %s: %d cells, %d nets, %d rows (%s)\n",
		d.Name, st.Cells, st.Nets, st.Rows, st.Node)

	cfg := flow.DefaultConfig()
	cfg.CRP.Gamma = *gamma
	cfg.CRP.Seed = *seed
	cfg.CRP.ShardRegions = *shardRegs
	cfg.CRP.ShardHalo = *shardHalo
	cfg.Budgets.Flow = *timeout
	cfg.Budgets.CRPIteration = *iterTimeout
	ctx := context.Background()

	if *ecoDelta != "" {
		runECO(ctx, d, cfg, *ecoFrom, *ecoDelta, *ecoHalo, *k, *outDEF, *outGuide, *showPhase)
		return
	}

	if *baseline {
		res := flow.RunBaseline(ctx, d, cfg)
		fmt.Printf("baseline: %v\n", res.Metrics)
		fmt.Printf("runtime: GR %.2fs, DR %.2fs\n",
			res.Timings.GlobalRoute.Seconds(), res.Timings.DetailRoute.Seconds())
		if *worst > 0 {
			fmt.Printf("\nworst %d nets:\n", *worst)
			if err := eval.WriteNetReport(os.Stdout, d, res.Metrics, *worst); err != nil {
				fatal(err)
			}
		}
		reportDegradations(res)
		if res.DeadlineHit() {
			os.Exit(1)
		}
		return
	}

	var ck *flow.Checkpointing
	if *ckptDir != "" {
		mgr, err := checkpoint.Open(*ckptDir, *ckptKeep)
		if err != nil {
			fatal(err)
		}
		ck = &flow.Checkpointing{Manager: mgr}
	}

	// Outputs are committed atomically after the flow finishes: a crash at
	// any point leaves either the previous file or the new one, never a
	// torn in-between.
	var outs atomicio.Outputs
	defer outs.Abort()
	defW, err := outs.Create(*outDEF)
	if err != nil {
		fatal(err)
	}
	guideW, err := outs.Create(*outGuide)
	if err != nil {
		fatal(err)
	}

	// The flow writes the DEF/guides even on a degraded run, so a deadline
	// still yields the best-so-far outputs before the non-zero exit.
	var res *flow.Result
	if *resume {
		res, err = flow.Resume(ctx, d, *k, cfg, ck, defW, guideW)
		if errors.Is(err, flow.ErrNoCheckpoint) {
			fmt.Println("no checkpoint to resume; starting fresh")
			res, err = flow.RunCRPCheckpointed(ctx, d, *k, cfg, ck, defW, guideW)
		}
	} else {
		res, err = flow.RunCRPCheckpointed(ctx, d, *k, cfg, ck, defW, guideW)
	}
	if err != nil {
		fatal(err)
	}
	if err := outs.Commit(); err != nil {
		fatal(err)
	}

	fmt.Printf("CR&P k=%d: %v\n", *k, res.Metrics)
	fmt.Printf("moved %d cells; runtime: GR %.2fs, CR&P %.2fs, DR %.2fs\n",
		res.CRPStats.TotalMoved,
		res.Timings.GlobalRoute.Seconds(),
		res.Timings.Middle.Seconds(),
		res.Timings.DetailRoute.Seconds())
	if *showPhase {
		ph := res.Timings.CRPPhases
		fmt.Printf("phases: GCP %.2fs, ECC %.2fs, UD %.2fs, Misc %.2fs\n",
			ph.GCP.Seconds(), ph.ECC.Seconds(), ph.UD.Seconds(), ph.Misc().Seconds())
	}
	if *worst > 0 {
		fmt.Printf("\nworst %d nets:\n", *worst)
		if err := eval.WriteNetReport(os.Stdout, d, res.Metrics, *worst); err != nil {
			fatal(err)
		}
	}
	if *heat {
		fmt.Println("\npost-flow congestion heatmap:")
		// Rebuild the grid state by re-running GR on the final placement;
		// cheap relative to the flow and avoids threading grid handles
		// through the flow API.
		g2 := grid.New(d, cfg.Grid)
		r2 := global.New(d, g2, cfg.Global)
		r2.RouteAll()
		if err := g2.Congestion().WriteHeatmap(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *outDEF != "" {
		fmt.Printf("wrote %s\n", *outDEF)
	}
	if *outGuide != "" {
		fmt.Printf("wrote %s\n", *outGuide)
	}
	reportDegradations(res)
	if res.DeadlineHit() {
		fmt.Fprintln(os.Stderr, "crp: wall-clock budget expired; outputs hold the best-so-far solution")
		os.Exit(1)
	}
}

// runECO executes the incremental entry point: parse and validate the delta
// file, restore the parent state from the -eco-from checkpoint directory (or
// route the input placement fresh when omitted), and run the convergence
// ladder. Outputs are committed atomically like the full flow's.
func runECO(ctx context.Context, d *db.Design, cfg flow.Config, fromDir, deltaPath string, halo, k int, outDEF, outGuide string, showPhase bool) {
	raw, err := os.ReadFile(deltaPath)
	if err != nil {
		fatal(err)
	}
	delta, err := eco.Parse(raw)
	if err != nil {
		fatal(err)
	}

	var outs atomicio.Outputs
	defer outs.Abort()
	defW, err := outs.Create(outDEF)
	if err != nil {
		fatal(err)
	}
	guideW, err := outs.Create(outGuide)
	if err != nil {
		fatal(err)
	}

	opts := flow.ECOOptions{MaxIters: k, HaloGCells: halo}
	var res *flow.Result
	if fromDir != "" {
		mgr, err := checkpoint.Open(fromDir, 0)
		if err != nil {
			fatal(err)
		}
		res, err = flow.ECOFromCheckpoint(ctx, d, mgr, delta, cfg, opts, defW, guideW)
		if err != nil {
			fatal(err)
		}
	} else {
		res, err = flow.RunECO(ctx, d, nil, delta, cfg, opts, defW, guideW)
		if err != nil {
			fatal(err)
		}
	}
	if err := outs.Commit(); err != nil {
		fatal(err)
	}

	fmt.Printf("ECO: %v\n", res.Metrics)
	es := res.ECO
	fmt.Printf("delta: %d moves, %d rewired nets, %d adds, %d removes\n",
		es.DeltaMoves, es.DeltaNets, es.DeltaAdds, es.DeltaRemoves)
	if es.FullRun {
		fmt.Println("convergence: full-run fallback")
	} else {
		fmt.Printf("convergence: %d round(s), dirty %d/%d cells, halo widened: %v\n",
			es.Rounds, es.DirtyCells, es.TotalCells, es.HaloWidened)
	}
	fmt.Printf("work: %d candidate estimates, moved %d cells; runtime: GR %.2fs, CR&P %.2fs, DR %.2fs\n",
		es.CandidateEstimates, res.CRPStats.TotalMoved,
		res.Timings.GlobalRoute.Seconds(), res.Timings.Middle.Seconds(), res.Timings.DetailRoute.Seconds())
	if showPhase {
		ph := res.Timings.CRPPhases
		fmt.Printf("phases: GCP %.2fs, ECC %.2fs, UD %.2fs, Misc %.2fs\n",
			ph.GCP.Seconds(), ph.ECC.Seconds(), ph.UD.Seconds(), ph.Misc().Seconds())
	}
	if outDEF != "" {
		fmt.Printf("wrote %s\n", outDEF)
	}
	if outGuide != "" {
		fmt.Printf("wrote %s\n", outGuide)
	}
	reportDegradations(res)
	if res.DeadlineHit() {
		fmt.Fprintln(os.Stderr, "crp: wall-clock budget expired; outputs hold the best-so-far solution")
		os.Exit(1)
	}
}

// reportDegradations prints every fault-tolerance event of the run.
func reportDegradations(res *flow.Result) {
	if !res.Degraded() {
		return
	}
	fmt.Printf("degraded run: %d event(s)\n", len(res.Degradations))
	for _, dg := range res.Degradations {
		fmt.Printf("  %s\n", dg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crp:", err)
	os.Exit(1)
}
