// Command benchreport measures the flow's fast paths — the memoised ECC
// pipeline of internal/route/global + internal/crp and the GCP solver fast
// path of internal/legal + internal/ilp — and writes a BENCH_*.json snapshot:
// the Fig. 3 flow phase times with the caches off ("before") and on ("after"),
// micro-benchmarks of EstimateTerminalCost in both modes, and a gcp_breakdown
// section splitting GCP wall time into candidate generation, legalizer
// relocation-ILP, and selection-ILP shares for both the legacy dense-tableau
// solver path and the sparse warm-started fast path.
//
// Usage:
//
//	benchreport [-o BENCH_10.json] [-scale 0.004] [-k 10] [-prev BENCH_9.json]
//
// The cache-off and cache-on flows run the same circuit with the same seeds;
// the estimation caches are bit-transparent (see DESIGN.md, "Performance
// architecture"), so the two runs make identical moves and any timing delta
// is pure cache effect. EXPERIMENTS.md explains how to read the output.
//
// The report also compares the DesignView refactor's ECC fast path against
// the pre-refactor scratch-buffer implementation: ecc_estimate_costs pairs
// the recorded pre-refactor BenchmarkECCEstimateCosts numbers (overridable
// via -ecc-before-*) with a fresh measurement of the overlay-based path, and
// fig3_breakdown pairs the cache-on phases of the -prev snapshot with this
// run's.
//
// The service_breakdown section exercises the crpd job service end to end
// on an in-process daemon: a burst of jobs submitted to saturation
// (jobs/sec and admission-latency percentiles), the same burst resubmitted
// against the exact result cache (hit rate and cached-admission latency),
// and a graceful drain with jobs still running (checkpoint-preempt time).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
	"github.com/crp-eda/crp/internal/crp"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eco"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/service"
	"github.com/crp-eda/crp/internal/shard"
)

// phaseSeconds is the Fig. 3 breakdown of one flow run.
type phaseSeconds struct {
	TotalS float64 `json:"total_s"`
	GRS    float64 `json:"gr_s"`
	GCPS   float64 `json:"gcp_s"`
	ECCS   float64 `json:"ecc_s"`
	UDS    float64 `json:"ud_s"`
	MiscS  float64 `json:"misc_s"`
	ECCPct float64 `json:"ecc_pct"`
}

// microResult is one testing.Benchmark measurement.
type microResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	Generated string  `json:"generated"`
	Scale     float64 `json:"scale"`
	K         int     `json:"k"`
	Circuit   string  `json:"circuit"`

	// CacheOff/CacheOn are the Fig. 3 flow with DisableEstimateCache
	// toggled — the before/after of the memoisation layer, measured on the
	// same binary so only the caches differ.
	CacheOff phaseSeconds `json:"cache_off"`
	CacheOn  phaseSeconds `json:"cache_on"`
	// ECCSpeedup is CacheOff ECC seconds over CacheOn ECC seconds.
	ECCSpeedup float64 `json:"ecc_speedup"`

	// Micro-benchmarks of the single-call estimation path (steady state:
	// cache-on converges to pure hits).
	EstimateTerminalCostOff microResult `json:"estimate_terminal_cost_cache_off"`
	EstimateTerminalCostOn  microResult `json:"estimate_terminal_cost_cache_on"`

	// ECCEstimateCosts pairs the pre-DesignView BenchmarkECCEstimateCosts
	// numbers (Before, recorded on the same fixture before the refactor)
	// with a fresh measurement of the overlay-based path (After).
	ECCEstimateCosts microComparison `json:"ecc_estimate_costs"`
	// Fig3Breakdown pairs the cache-on Fig. 3 phases of the -prev snapshot
	// (Before; zero when no previous snapshot loads) with this run's CacheOn
	// phases (After).
	Fig3Breakdown phaseComparison `json:"fig3_breakdown"`
	// GCPBreakdown splits the GCP stage (candidate generation + relocation
	// ILPs) and the selection ILP, comparing the preserved seed legalizer +
	// dense-tableau solver against the fast path (presolve, sparse simplex,
	// window/solve caches) on the same binary and circuit.
	GCPBreakdown gcpComparison `json:"gcp_breakdown"`
	// ShardBreakdown sweeps the region-sharded iteration loop over worker
	// counts on a hotspot-rich circuit, reporting measured single-host wall
	// clock next to the LPT-modeled makespan (see EXPERIMENTS.md for why the
	// two are separated on a 1-CPU runner).
	ShardBreakdown shardBreakdown `json:"shard_breakdown"`
	// ServiceBreakdown measures the crpd job service: saturation
	// throughput, admission-latency percentiles, exact-result-cache hit
	// rate, and checkpoint-preempt drain time with jobs still running.
	ServiceBreakdown serviceBreakdown `json:"service_breakdown"`
	// ECOBreakdown sweeps delta sizes through the incremental ECO entry
	// point against from-scratch re-runs of the same edited design: wall
	// clock, Algorithm 3 pricing work, and the quality delta at each size.
	ECOBreakdown ecoBreakdown `json:"eco_breakdown"`
}

// ecoRow is one delta size of the eco_breakdown sweep: the same
// (parent placement, delta) pair replayed through flow.RunECO and from
// scratch. WorkRatio is scratch estimates over ECO estimates — the paper-
// style work saving; WLDeltaPct the ECO wirelength relative to scratch.
type ecoRow struct {
	Moves            int     `json:"moves"`
	Rewires          int     `json:"rewires"`
	DirtyCells       int     `json:"dirty_cells"`
	Rounds           int     `json:"rounds"`
	FullRun          bool    `json:"full_run,omitempty"`
	ECOWallS         float64 `json:"eco_wall_s"`
	ScratchWallS     float64 `json:"scratch_wall_s"`
	ECOEstimates     int64   `json:"eco_estimates"`
	ScratchEstimates int64   `json:"scratch_estimates"`
	WorkRatio        float64 `json:"work_ratio"`
	WLDeltaPct       float64 `json:"wl_delta_pct"`
}

type ecoBreakdown struct {
	Circuit string   `json:"circuit"`
	Cells   int      `json:"cells"`
	Nets    int      `json:"nets"`
	K       int      `json:"k"`
	Rows    []ecoRow `json:"rows"`
}

// serviceBreakdown is the crpd job-service section. The saturation round
// submits Jobs distinct synthetic specs in one burst against Workers worker
// slots; the cache round resubmits the identical specs, which the exact
// result cache must serve without running the flow; the drain round measures
// a graceful Drain while DrainRunningJobs attempts hold worker slots (each
// is preempted at its next checkpoint boundary, so the drain time bounds
// checkpoint latency, not job length).
type serviceBreakdown struct {
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
	Jobs     int `json:"jobs"`

	SaturationWallS float64 `json:"saturation_wall_s"`
	JobsPerSec      float64 `json:"jobs_per_sec"`
	// Admission latency is the synchronous Submit call: queue/tenant
	// checks, cache probe, and the durable spec write. With Jobs samples
	// the p99 is effectively the worst burst sample.
	AdmitP50MS float64 `json:"admit_p50_ms"`
	AdmitP99MS float64 `json:"admit_p99_ms"`

	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	CachedAdmitP99MS float64 `json:"cached_admit_p99_ms"`

	DrainRunningJobs int     `json:"drain_running_jobs"`
	DrainQueuedJobs  int     `json:"drain_queued_jobs"`
	DrainS           float64 `json:"drain_s"`
}

// shardIterStats is the per-iteration partition telemetry of the sharded
// reference run (workers = 4).
type shardIterStats struct {
	Iter           int   `json:"iter"`
	Regions        int   `json:"regions"`
	RegionCells    []int `json:"region_cells"`
	SerialRedo     int   `json:"serial_redo"`
	MergeConflicts int   `json:"merge_conflicts"`
	MazeReroutes   int   `json:"maze_reroutes"`
}

// shardRow is one worker count of the sweep. MeasuredWallS is the sharded
// iteration loop's elapsed time on this host; ModeledWallS replaces the
// measured region section (which a 1-CPU host serialises) with the
// LPT-scheduled makespan of the recorded region durations at this worker
// count. ModeledSpeedup is the serial loop's measured wall over ModeledWallS.
type shardRow struct {
	Workers        int     `json:"workers"`
	MeasuredWallS  float64 `json:"measured_wall_s"`
	ModeledWallS   float64 `json:"modeled_wall_s"`
	ModeledSpeedup float64 `json:"modeled_speedup"`
	// RegionSpeedup isolates the parallelised section: total region work
	// over its LPT makespan at this worker count, excluding the serial
	// label/merge/update-database residue that Amdahl-bounds ModeledSpeedup.
	RegionSpeedup float64 `json:"region_speedup"`
	BitIdentical  bool    `json:"bit_identical_to_serial"`
}

type shardBreakdown struct {
	Circuit string `json:"circuit"`
	Cells   int    `json:"cells"`
	Nets    int    `json:"nets"`
	K       int    `json:"k"`
	// HostCPUs is runtime.NumCPU() — the reader's cue for how much of the
	// sweep is measured parallelism versus model.
	HostCPUs     int              `json:"host_cpus"`
	SerialWallS  float64          `json:"serial_wall_s"`
	Iterations   []shardIterStats `json:"iterations"`
	Sweep        []shardRow       `json:"sweep"`
	IdealSpeedup float64          `json:"ideal_speedup"`
}

// gcpSeconds is the GCP-stage split of one flow run. The wall column is
// elapsed time; the cpu columns are summed across workers.
type gcpSeconds struct {
	GCPWallS      float64 `json:"gcp_wall_s"`
	CandidateGenS float64 `json:"candidate_gen_cpu_s"`
	LegalizerILPS float64 `json:"legalizer_ilp_cpu_s"`
	SelectionILPS float64 `json:"selection_ilp_wall_s"`
}

// gcpComparison pairs a dense-path run with a fast-path run, plus the
// fast-path numbers of the -prev snapshot for cross-PR continuity.
type gcpComparison struct {
	DensePath gcpSeconds `json:"dense_path"`
	FastPath  gcpSeconds `json:"fast_path"`
	Prev      gcpSeconds `json:"prev"`
	// GCPSpeedup is dense GCP wall-clock over fast GCP wall-clock.
	GCPSpeedup float64 `json:"gcp_speedup"`
}

// microComparison is a before/after pair of micro-benchmark measurements.
type microComparison struct {
	Before microResult `json:"before"`
	After  microResult `json:"after"`
}

// phaseComparison is a before/after pair of Fig. 3 phase breakdowns.
type phaseComparison struct {
	Before phaseSeconds `json:"before"`
	After  phaseSeconds `json:"after"`
}

func phases(t flow.Timings) phaseSeconds {
	p := phaseSeconds{
		TotalS: t.Total.Seconds(),
		GRS:    t.GlobalRoute.Seconds(),
		GCPS:   t.CRPPhases.GCP.Seconds(),
		ECCS:   t.CRPPhases.ECC.Seconds(),
		UDS:    t.CRPPhases.UD.Seconds(),
		MiscS:  t.CRPPhases.Misc().Seconds(),
	}
	if p.TotalS > 0 {
		p.ECCPct = p.ECCS / p.TotalS * 100
	}
	return p
}

func runFlow(spec ispd.Spec, k int, disableCache, denseSolver bool) (phaseSeconds, gcpSeconds, error) {
	d, err := ispd.Generate(spec)
	if err != nil {
		return phaseSeconds{}, gcpSeconds{}, err
	}
	cfg := flow.DefaultConfig()
	cfg.Global.DisableEstimateCache = disableCache
	cfg.CRP.DisableSolverFastPath = denseSolver
	res := flow.RunCRP(context.Background(), d, k, cfg)
	gcp := gcpSeconds{
		GCPWallS:      res.Timings.CRPPhases.GCP.Seconds(),
		CandidateGenS: res.Timings.CRPPhases.GCPGen.Seconds(),
		LegalizerILPS: res.Timings.CRPPhases.GCPILP.Seconds(),
		SelectionILPS: res.Timings.CRPPhases.ILP.Seconds(),
	}
	return phases(res.Timings), gcp, nil
}

func microEstimate(d *db.Design, disableCache bool) microResult {
	g := grid.New(d, grid.DefaultParams())
	cfg := global.DefaultConfig()
	cfg.DisableEstimateCache = disableCache
	r := global.New(d, g, cfg)
	r.RouteAll()
	pts := []geom.Point{g.Center(1, 1), g.Center(8, 3), g.Center(4, 7)}
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.EstimateTerminalCost(pts)
		}
	})
	return microResult{
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
}

// microECC measures the overlay-based ECC fast path on the exact fixture
// BenchmarkECCEstimateCosts uses (400 cells, 350 nets, seed 20, 2 workers),
// so the number is directly comparable to the pre-refactor record.
func microECC() (microResult, error) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "crp_fixture", Node: "n45", Cells: 400, Nets: 350,
		Utilisation: 0.88, Hotspots: 2, IOFraction: 0.03, Seed: 20,
	})
	if err != nil {
		return microResult{}, err
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	cfg := crp.DefaultConfig()
	cfg.Iterations = 1
	cfg.Workers = 2
	run, _ := crp.ECCWorkload(d, g, r, cfg)
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
	return microResult{
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}, nil
}

// shardSpec is the sweep circuit: hotspot-rich so the sparse critical set
// scatters into many compact windows and the partition yields a healthy
// region count (dense critical sets percolate into one region — see
// DESIGN.md, "Sharding architecture").
func shardSpec() ispd.Spec {
	return ispd.Spec{
		Name: "crp_shard_bench", Node: "n32", Cells: 2000, Nets: 2000,
		Utilisation: 0.892, Hotspots: 48, IOFraction: 0.03, Seed: 1006,
	}
}

// shardRun is one measured CR&P iteration loop (no GR/DR — the sweep times
// exactly the loop the sharding parallelises).
type shardRun struct {
	wall time.Duration
	res  *crp.Result
	pos  []geom.Point
}

func runShard(spec ispd.Spec, k, workers, regions int) (shardRun, error) {
	d, err := ispd.Generate(spec)
	if err != nil {
		return shardRun{}, err
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	cfg := crp.DefaultConfig()
	cfg.Iterations = k
	cfg.Workers = workers
	cfg.ShardRegions = regions
	cfg.Gamma = 0.013
	cfg.Legal.NSites = 8
	cfg.Legal.NRows = 3
	e := crp.New(d, g, r, cfg)
	t0 := time.Now()
	res := e.Run(context.Background())
	run := shardRun{wall: time.Since(t0), res: res}
	for _, c := range d.Cells {
		run.pos = append(run.pos, c.Pos)
	}
	return run, nil
}

// sameDecisions is the sweep's bit-identity referee: final placements plus
// the decision-revealing iteration statistics must match the serial run.
func sameDecisions(a, b shardRun) bool {
	if len(a.pos) != len(b.pos) || len(a.res.Iterations) != len(b.res.Iterations) {
		return false
	}
	for i := range a.pos {
		if a.pos[i] != b.pos[i] {
			return false
		}
	}
	for i := range a.res.Iterations {
		x, y := a.res.Iterations[i], b.res.Iterations[i]
		if x.MovedCells != y.MovedCells || x.EstAfter != y.EstAfter ||
			x.SolverNodes != y.SolverNodes || x.SolverStatus != y.SolverStatus {
			return false
		}
	}
	return true
}

// measureShardSweep fills the shard_breakdown section: a serial reference
// loop, then the sharded loop at each worker count. The modeled wall clock
// replaces the measured region section (serialised on few-CPU hosts) with
// the LPT makespan of the recorded per-region durations.
func measureShardSweep(k int) (shardBreakdown, error) {
	spec := shardSpec()
	sb := shardBreakdown{
		Circuit: spec.Name, Cells: spec.Cells, Nets: spec.Nets,
		K: k, HostCPUs: runtime.NumCPU(),
	}
	serial, err := runShard(spec, k, 4, 0)
	if err != nil {
		return sb, err
	}
	sb.SerialWallS = serial.wall.Seconds()

	var sumAll, maxAll time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		sr, err := runShard(spec, k, w, 32)
		if err != nil {
			return sb, err
		}
		modeled := sr.wall
		var regionWork, regionSpan time.Duration
		for _, it := range sr.res.Iterations {
			if it.Shard == nil {
				continue
			}
			var sum time.Duration
			for _, d := range it.Shard.RegionDurations {
				sum += d
			}
			span := shard.Makespan(it.Shard.RegionDurations, w)
			modeled += span - sum
			regionWork += sum
			regionSpan += span
		}
		row := shardRow{
			Workers:       w,
			MeasuredWallS: sr.wall.Seconds(),
			ModeledWallS:  modeled.Seconds(),
			BitIdentical:  sameDecisions(serial, sr),
		}
		if modeled > 0 {
			row.ModeledSpeedup = serial.wall.Seconds() / modeled.Seconds()
		}
		if regionSpan > 0 {
			row.RegionSpeedup = float64(regionWork) / float64(regionSpan)
		}
		sb.Sweep = append(sb.Sweep, row)
		if w == 4 {
			for i, it := range sr.res.Iterations {
				if it.Shard == nil {
					continue
				}
				sb.Iterations = append(sb.Iterations, shardIterStats{
					Iter: i + 1, Regions: it.Shard.Regions,
					RegionCells: it.Shard.RegionCells, SerialRedo: it.Shard.SerialRedo,
					MergeConflicts: it.Shard.MergeConflicts, MazeReroutes: it.Shard.MazeReroutes,
				})
				var sum, max time.Duration
				for _, d := range it.Shard.RegionDurations {
					sum += d
					if d > max {
						max = d
					}
				}
				sumAll += sum
				maxAll += max
			}
		}
	}
	// IdealSpeedup bounds the region section's parallelism independent of
	// worker count: total region work over the per-iteration critical paths.
	if maxAll > 0 {
		sb.IdealSpeedup = float64(sumAll) / float64(maxAll)
	}
	return sb, nil
}

// ecoSpec is the eco_breakdown circuit: crp_test7 at 1% scale (~1700
// cells), the smallest suite member whose die dwarfs the fixed-size
// legalizer window — below ~1000 cells no edit is local and the sweep
// would measure nothing but the full-run fallback.
func ecoSpec() ispd.Spec { return ispd.Suite(0.01)[6] }

// measureECO fills the eco_breakdown section: one parent run, then a sweep
// of delta sizes where each delta is replayed both through flow.RunECO and
// as a from-scratch run of the edited design.
func measureECO(k int) (ecoBreakdown, error) {
	spec := ecoSpec()
	eb := ecoBreakdown{Circuit: spec.Name, Cells: spec.Cells, Nets: spec.Nets, K: k}
	cfg := flow.DefaultConfig()

	parent, err := ispd.Generate(spec)
	if err != nil {
		return eb, err
	}
	if res := flow.RunCRP(context.Background(), parent, k, cfg); res.Failed {
		return eb, fmt.Errorf("eco parent run failed: %v", res.Degradations)
	}
	pos, orient := parent.ExportPositions()

	placed := func() (*db.Design, error) {
		d, err := ispd.Generate(spec)
		if err != nil {
			return nil, err
		}
		return d, d.ImportPositions(pos, orient)
	}

	for i, moves := range []int{1, 4, 16} {
		base, err := placed()
		if err != nil {
			return eb, err
		}
		dl, err := eco.GenerateDelta(base, moves, 1, int64(100+i))
		if err != nil {
			return eb, err
		}

		scratchD, err := placed()
		if err != nil {
			return eb, err
		}
		if err := eco.ApplyToDesign(scratchD, dl); err != nil {
			return eb, err
		}
		t0 := time.Now()
		scratch := flow.RunCRP(context.Background(), scratchD, k, cfg)
		scratchWall := time.Since(t0)
		if scratch.Failed {
			return eb, fmt.Errorf("eco scratch run failed: %v", scratch.Degradations)
		}

		ecoD, err := placed()
		if err != nil {
			return eb, err
		}
		t1 := time.Now()
		res, err := flow.RunECO(context.Background(), ecoD, nil, dl, cfg, flow.ECOOptions{}, nil, nil)
		ecoWall := time.Since(t1)
		if err != nil {
			return eb, err
		}

		row := ecoRow{
			Moves: len(dl.Moves), Rewires: len(dl.Nets),
			ECOWallS: ecoWall.Seconds(), ScratchWallS: scratchWall.Seconds(),
			ScratchEstimates: scratch.CRPStats.CandidateEstimates,
		}
		if res.ECO != nil {
			row.DirtyCells = res.ECO.DirtyCells
			row.Rounds = res.ECO.Rounds
			row.FullRun = res.ECO.FullRun
			row.ECOEstimates = res.ECO.CandidateEstimates
		}
		if row.ECOEstimates > 0 {
			row.WorkRatio = float64(row.ScratchEstimates) / float64(row.ECOEstimates)
		}
		if scratch.Metrics.WirelengthDBU > 0 {
			row.WLDeltaPct = float64(res.Metrics.WirelengthDBU-scratch.Metrics.WirelengthDBU) /
				float64(scratch.Metrics.WirelengthDBU) * 100
		}
		eb.Rows = append(eb.Rows, row)
	}
	return eb, nil
}

// svcSpec is one saturation-round job: a small synthetic circuit (distinct
// per seed, so every spec is a cache miss the first time and an exact hit
// the second) run for a single CR&P iteration.
func svcSpec(seed int64, k int) service.Spec {
	return service.Spec{
		Synthetic: &ispd.Spec{
			Name: "bench_svc", Node: "n45", Cells: 160, Nets: 130,
			Utilisation: 0.85, Hotspots: 2, IOFraction: 0.03, Seed: seed,
		},
		K: k, Seed: seed,
	}
}

// percentileMS reads the q-th percentile (0 < q <= 1) of a latency sample
// in milliseconds. The sample is sorted in place.
func percentileMS(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q*float64(len(ds))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return float64(ds[idx].Nanoseconds()) / 1e6
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(svc *service.Service, id string) (service.Status, error) {
	deadline := time.Now().Add(10 * time.Minute)
	for {
		st, err := svc.Status(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case service.StateDone:
			return st, nil
		case service.StateFailed, service.StateCancelled, service.StateRetriesExhausted:
			return st, fmt.Errorf("job %s ended %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// measureService fills the service_breakdown section on an in-process
// daemon over a throwaway data directory.
func measureService() (serviceBreakdown, error) {
	const (
		workers  = 4
		queueCap = 32
		jobs     = 24
	)
	sb := serviceBreakdown{Workers: workers, QueueCap: queueCap, Jobs: jobs}
	dir, err := os.MkdirTemp("", "crpd-bench-")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(dir)
	svc, err := service.New(service.Config{
		DataDir: dir, Workers: workers, QueueCap: queueCap,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		return sb, err
	}
	drained := false
	defer func() {
		if drained {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		svc.Drain(ctx)
	}()

	// Saturation round: one burst of distinct specs, then wait them all
	// out. Throughput is burst-start to last-done.
	var ids []string
	admits := make([]time.Duration, 0, jobs)
	t0 := time.Now()
	for i := 0; i < jobs; i++ {
		ts := time.Now()
		st, err := svc.Submit(svcSpec(int64(9000+i), 1))
		if err != nil {
			return sb, err
		}
		admits = append(admits, time.Since(ts))
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, err := waitTerminal(svc, id); err != nil {
			return sb, err
		}
	}
	sb.SaturationWallS = time.Since(t0).Seconds()
	if sb.SaturationWallS > 0 {
		sb.JobsPerSec = float64(jobs) / sb.SaturationWallS
	}
	sb.AdmitP50MS = percentileMS(admits, 0.50)
	sb.AdmitP99MS = percentileMS(admits, 0.99)

	// Cache round: the identical specs again. Every submission must be an
	// exact-cache hit served synchronously at admission.
	cached := make([]time.Duration, 0, jobs)
	for i := 0; i < jobs; i++ {
		ts := time.Now()
		st, err := svc.Submit(svcSpec(int64(9000+i), 1))
		if err != nil {
			return sb, err
		}
		cached = append(cached, time.Since(ts))
		if _, err := waitTerminal(svc, st.ID); err != nil {
			return sb, err
		}
	}
	stats := svc.Stats()
	sb.CacheHits, sb.CacheMisses = stats.CacheHits, stats.CacheMisses
	if total := stats.CacheHits + stats.CacheMisses; total > 0 {
		sb.CacheHitRate = float64(stats.CacheHits) / float64(total)
	}
	sb.CachedAdmitP99MS = percentileMS(cached, 0.99)

	// Drain round: fill the worker slots with longer jobs, then measure a
	// graceful drain — each running attempt stops at its next checkpoint
	// boundary and persists back into the queue.
	for i := 0; i < 2*workers; i++ {
		if _, err := svc.Submit(svcSpec(int64(9500+i), 3)); err != nil {
			return sb, err
		}
	}
	deadline := time.Now().Add(time.Minute)
	for svc.Stats().Running < workers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stats = svc.Stats()
	sb.DrainRunningJobs, sb.DrainQueuedJobs = stats.Running, stats.QueueDepth
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	td := time.Now()
	if err := svc.Drain(ctx); err != nil {
		return sb, err
	}
	drained = true
	sb.DrainS = time.Since(td).Seconds()
	return sb, nil
}

// loadPrev reads a previous BENCH_*.json snapshot for the before columns.
func loadPrev(path string) (report, error) {
	var prev report
	buf, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	if err := json.Unmarshal(buf, &prev); err != nil {
		return report{}, err
	}
	return prev, nil
}

func main() {
	var (
		out    = flag.String("o", "BENCH_10.json", "output path")
		scale  = flag.Float64("scale", 0.004, "suite scale (matches CRP_BENCH_SCALE)")
		k      = flag.Int("k", 10, "CR&P iterations for the flow runs")
		shardK = flag.Int("shard-k", 10, "CR&P iterations for the shard_breakdown sweep")
		prev   = flag.String("prev", "BENCH_9.json", "previous snapshot for the before/continuity columns (\"\" = skip)")
		// Pre-refactor BenchmarkECCEstimateCosts record (scratch-buffer
		// implementation, same fixture), measured immediately before the
		// DesignView refactor landed.
		eccBeforeNs     = flag.Float64("ecc-before-ns", 1250548, "pre-refactor ECC ns/op record")
		eccBeforeBytes  = flag.Int64("ecc-before-bytes", 46320, "pre-refactor ECC B/op record")
		eccBeforeAllocs = flag.Int64("ecc-before-allocs", 1747, "pre-refactor ECC allocs/op record")
	)
	flag.Parse()

	spec := ispd.Suite(*scale)[6] // same circuit as BenchmarkFig3Breakdown
	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Scale:     *scale,
		K:         *k,
		Circuit:   spec.Name,
	}

	var err error
	if rep.CacheOff, _, err = runFlow(spec, *k, true, false); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if rep.CacheOn, rep.GCPBreakdown.FastPath, err = runFlow(spec, *k, false, false); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if rep.CacheOn.ECCS > 0 {
		rep.ECCSpeedup = rep.CacheOff.ECCS / rep.CacheOn.ECCS
	}
	// Dense-solver run: the seed legalizer path and dense-tableau ILPs,
	// with the estimation caches on so only this PR's GCP work differs.
	if _, rep.GCPBreakdown.DensePath, err = runFlow(spec, *k, false, true); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if rep.GCPBreakdown.FastPath.GCPWallS > 0 {
		rep.GCPBreakdown.GCPSpeedup = rep.GCPBreakdown.DensePath.GCPWallS / rep.GCPBreakdown.FastPath.GCPWallS
	}

	md, err := ispd.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep.EstimateTerminalCostOff = microEstimate(md, true)
	rep.EstimateTerminalCostOn = microEstimate(md, false)

	rep.ECCEstimateCosts.Before = microResult{
		NsPerOp: *eccBeforeNs, BytesPerOp: *eccBeforeBytes, AllocsPerOp: *eccBeforeAllocs,
	}
	if rep.ECCEstimateCosts.After, err = microECC(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if rep.ShardBreakdown, err = measureShardSweep(*shardK); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if rep.ServiceBreakdown, err = measureService(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if rep.ECOBreakdown, err = measureECO(3); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	rep.Fig3Breakdown.After = rep.CacheOn
	if *prev != "" {
		if p, err := loadPrev(*prev); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: no previous snapshot (%v); before columns left zero\n", err)
		} else {
			rep.Fig3Breakdown.Before = p.CacheOn
			rep.GCPBreakdown.Prev = p.GCPBreakdown.FastPath
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	// Atomic replace: a crash mid-write must never tear a previous good
	// BENCH_*.json snapshot.
	if err := atomicio.WriteFileBytes(*out, buf); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: ECC %0.3fs (cache off) -> %0.3fs (cache on), %.1fx\n",
		*out, rep.CacheOff.ECCS, rep.CacheOn.ECCS, rep.ECCSpeedup)
	fmt.Printf("GCP: %0.3fs (dense path) -> %0.3fs (fast path), %.1fx; selection ILP %0.3fs -> %0.3fs\n",
		rep.GCPBreakdown.DensePath.GCPWallS, rep.GCPBreakdown.FastPath.GCPWallS,
		rep.GCPBreakdown.GCPSpeedup,
		rep.GCPBreakdown.DensePath.SelectionILPS, rep.GCPBreakdown.FastPath.SelectionILPS)
	ecc := rep.ECCEstimateCosts
	if ecc.Before.NsPerOp > 0 {
		fmt.Printf("ECC estimate costs: %.0f ns/op before -> %.0f ns/op after (%+.1f%%)\n",
			ecc.Before.NsPerOp, ecc.After.NsPerOp,
			(ecc.After.NsPerOp-ecc.Before.NsPerOp)/ecc.Before.NsPerOp*100)
	}
	sbr := rep.ShardBreakdown
	fmt.Printf("shard sweep (%s, %d CPUs, ideal %.2fx): serial %0.3fs", sbr.Circuit, sbr.HostCPUs, sbr.IdealSpeedup, sbr.SerialWallS)
	for _, row := range sbr.Sweep {
		fmt.Printf("; w=%d modeled %0.3fs (loop %.2fx, regions %.2fx, identical=%v)",
			row.Workers, row.ModeledWallS, row.ModeledSpeedup, row.RegionSpeedup, row.BitIdentical)
	}
	fmt.Println()
	svb := rep.ServiceBreakdown
	fmt.Printf("service: %d jobs on %d workers, %.2f jobs/s; admit p50 %.2fms p99 %.2fms (cached p99 %.2fms, hit rate %.0f%%); drain of %d running + %d queued in %.3fs\n",
		svb.Jobs, svb.Workers, svb.JobsPerSec,
		svb.AdmitP50MS, svb.AdmitP99MS, svb.CachedAdmitP99MS, svb.CacheHitRate*100,
		svb.DrainRunningJobs, svb.DrainQueuedJobs, svb.DrainS)
	fmt.Printf("eco (%s, %d cells):", rep.ECOBreakdown.Circuit, rep.ECOBreakdown.Cells)
	for _, row := range rep.ECOBreakdown.Rows {
		fmt.Printf(" %d moves: %0.3fs vs %0.3fs scratch, %.1fx less work, WL %+.2f%%;",
			row.Moves, row.ECOWallS, row.ScratchWallS, row.WorkRatio, row.WLDeltaPct)
	}
	fmt.Println()
}
