// Command benchreport measures the estimation fast path (the memoised ECC
// pipeline of internal/route/global + internal/crp) and writes a BENCH_*.json
// snapshot: the Fig. 3 flow phase times with the caches off ("before") and on
// ("after"), plus micro-benchmarks of EstimateTerminalCost in both modes.
//
// Usage:
//
//	benchreport [-o BENCH_1.json] [-scale 0.004] [-k 10]
//
// The cache-off and cache-on flows run the same circuit with the same seeds;
// the estimation caches are bit-transparent (see DESIGN.md, "Performance
// architecture"), so the two runs make identical moves and any timing delta
// is pure cache effect. EXPERIMENTS.md explains how to read the output.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
)

// phaseSeconds is the Fig. 3 breakdown of one flow run.
type phaseSeconds struct {
	TotalS float64 `json:"total_s"`
	GRS    float64 `json:"gr_s"`
	GCPS   float64 `json:"gcp_s"`
	ECCS   float64 `json:"ecc_s"`
	UDS    float64 `json:"ud_s"`
	MiscS  float64 `json:"misc_s"`
	ECCPct float64 `json:"ecc_pct"`
}

// microResult is one testing.Benchmark measurement.
type microResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	Generated string  `json:"generated"`
	Scale     float64 `json:"scale"`
	K         int     `json:"k"`
	Circuit   string  `json:"circuit"`

	// CacheOff/CacheOn are the Fig. 3 flow with DisableEstimateCache
	// toggled — the before/after of the memoisation layer, measured on the
	// same binary so only the caches differ.
	CacheOff phaseSeconds `json:"cache_off"`
	CacheOn  phaseSeconds `json:"cache_on"`
	// ECCSpeedup is CacheOff ECC seconds over CacheOn ECC seconds.
	ECCSpeedup float64 `json:"ecc_speedup"`

	// Micro-benchmarks of the single-call estimation path (steady state:
	// cache-on converges to pure hits).
	EstimateTerminalCostOff microResult `json:"estimate_terminal_cost_cache_off"`
	EstimateTerminalCostOn  microResult `json:"estimate_terminal_cost_cache_on"`
}

func phases(t flow.Timings) phaseSeconds {
	p := phaseSeconds{
		TotalS: t.Total.Seconds(),
		GRS:    t.GlobalRoute.Seconds(),
		GCPS:   t.CRPPhases.GCP.Seconds(),
		ECCS:   t.CRPPhases.ECC.Seconds(),
		UDS:    t.CRPPhases.UD.Seconds(),
		MiscS:  t.CRPPhases.Misc().Seconds(),
	}
	if p.TotalS > 0 {
		p.ECCPct = p.ECCS / p.TotalS * 100
	}
	return p
}

func runFlow(spec ispd.Spec, k int, disableCache bool) (phaseSeconds, error) {
	d, err := ispd.Generate(spec)
	if err != nil {
		return phaseSeconds{}, err
	}
	cfg := flow.DefaultConfig()
	cfg.Global.DisableEstimateCache = disableCache
	res := flow.RunCRP(context.Background(), d, k, cfg)
	return phases(res.Timings), nil
}

func microEstimate(d *db.Design, disableCache bool) microResult {
	g := grid.New(d, grid.DefaultParams())
	cfg := global.DefaultConfig()
	cfg.DisableEstimateCache = disableCache
	r := global.New(d, g, cfg)
	r.RouteAll()
	pts := []geom.Point{g.Center(1, 1), g.Center(8, 3), g.Center(4, 7)}
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.EstimateTerminalCost(pts)
		}
	})
	return microResult{
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
}

func main() {
	var (
		out   = flag.String("o", "BENCH_1.json", "output path")
		scale = flag.Float64("scale", 0.004, "suite scale (matches CRP_BENCH_SCALE)")
		k     = flag.Int("k", 10, "CR&P iterations for the flow runs")
	)
	flag.Parse()

	spec := ispd.Suite(*scale)[6] // same circuit as BenchmarkFig3Breakdown
	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Scale:     *scale,
		K:         *k,
		Circuit:   spec.Name,
	}

	var err error
	if rep.CacheOff, err = runFlow(spec, *k, true); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if rep.CacheOn, err = runFlow(spec, *k, false); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if rep.CacheOn.ECCS > 0 {
		rep.ECCSpeedup = rep.CacheOff.ECCS / rep.CacheOn.ECCS
	}

	md, err := ispd.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep.EstimateTerminalCostOff = microEstimate(md, true)
	rep.EstimateTerminalCostOn = microEstimate(md, false)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	// Atomic replace: a crash mid-write must never tear a previous good
	// BENCH_*.json snapshot.
	if err := atomicio.WriteFileBytes(*out, buf); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: ECC %0.3fs (cache off) -> %0.3fs (cache on), %.1fx\n",
		*out, rep.CacheOff.ECCS, rep.CacheOn.ECCS, rep.ECCSpeedup)
}
