// Package checkpoint makes the CR&P flow's committed progress durable.
//
// A Snapshot captures every input the remaining iterations depend on — cell
// positions and orientations, the Algorithm 1 history sets, per-net global
// routes, the grid's demand arrays, the iteration counter, the RNG stream
// position and the accumulated degradation log — at a transactionally
// consistent boundary (after GR, and after every committed CR&P iteration).
// Restoring a Snapshot and continuing is bit-identical to never having
// stopped; internal/flow.Resume is the consumer.
//
// The on-disk format is versioned and checksummed: an 8-byte magic, a
// little-endian version word, the payload, and a trailing CRC-64/ECMA of the
// payload. Decode never panics on corrupt or truncated input — it is fuzzed
// (FuzzCheckpointDecode) — and refuses anything whose checksum, version or
// internal structure does not hold, which is how a torn write is detected
// and an older checkpoint chosen instead (see Manager).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
)

// Version is the current on-disk format version.
const Version = 1

// magic identifies a checkpoint file; the trailing newline catches
// text-mode/transfer mangling the way PNG's magic does.
const magic = "CRPCKP1\n"

var crcTable = crc64.MakeTable(crc64.ECMA)

// Degradation mirrors flow.Degradation without importing it (flow imports
// this package): one recorded fault-tolerance event of the run so far.
type Degradation struct {
	Stage  string
	Kind   string
	Detail string
}

// Snapshot is the resumable flow state at an iteration boundary.
type Snapshot struct {
	// DesignName, Cells and Nets bind the checkpoint to its design; Resume
	// refuses a checkpoint whose identity does not match the loaded input.
	DesignName string
	Cells      int
	Nets       int
	// K is the planned total number of CR&P iterations; Seed the Algorithm 1
	// selection seed. Both are config echoes validated on resume — resuming
	// under a different configuration would silently diverge.
	K    int
	Seed int64
	// Iter is the number of committed CR&P iterations (0 = post-GR).
	Iter int
	// RNGDraws is the selection RNG stream position (crp.State).
	RNGDraws uint64
	// TotalMoved accumulates moved cells over committed iterations, so a
	// resumed run can report the whole run's total.
	TotalMoved int

	Pos      []geom.Point
	Orient   []db.Orient
	Critical []bool
	Moved    []bool
	// Routes is indexed by net ID; nil entries are unrouted nets.
	Routes []*global.Route
	Demand grid.DemandState

	Degradations []Degradation
}

// Encode writes the snapshot to w in the versioned, checksummed format.
func Encode(w io.Writer, s *Snapshot) error {
	if len(s.Pos) != s.Cells || len(s.Orient) != s.Cells ||
		len(s.Critical) != s.Cells || len(s.Moved) != s.Cells {
		return fmt.Errorf("checkpoint: cell-indexed fields disagree with Cells=%d", s.Cells)
	}
	if len(s.Routes) != s.Nets {
		return fmt.Errorf("checkpoint: %d routes for Nets=%d", len(s.Routes), s.Nets)
	}
	var e encoder
	e.str(s.DesignName)
	e.uv(uint64(s.Cells))
	e.uv(uint64(s.Nets))
	e.uv(uint64(s.K))
	e.sv(s.Seed)
	e.uv(uint64(s.Iter))
	e.uv(s.RNGDraws)
	e.uv(uint64(s.TotalMoved))
	for _, p := range s.Pos {
		e.sv(int64(p.X))
		e.sv(int64(p.Y))
	}
	e.bits(boolsFromOrient(s.Orient))
	e.bits(s.Critical)
	e.bits(s.Moved)
	for _, rt := range s.Routes {
		if rt == nil {
			e.uv(0)
			continue
		}
		e.uv(1)
		e.pts3(rt.Wires)
		e.pts3(rt.Vias)
	}
	e.uv(uint64(s.Demand.NX))
	e.uv(uint64(s.Demand.NY))
	e.uv(uint64(s.Demand.NL))
	for _, layer := range s.Demand.Wire {
		e.floats(layer)
	}
	for _, layer := range s.Demand.Vias {
		e.floats(layer)
	}
	e.uv(uint64(len(s.Degradations)))
	for _, d := range s.Degradations {
		e.str(d.Stage)
		e.str(d.Kind)
		e.str(d.Detail)
	}

	if _, err := io.WriteString(w, magic); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], Version)
	if _, err := w.Write(ver[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := w.Write(e.buf); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], crc64.Checksum(e.buf, crcTable))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ErrCorrupt marks a checkpoint whose framing, checksum or structure is
// invalid — the torn-write fault class the Manager falls back across.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated")

// corrupt wraps a detail into ErrCorrupt.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Decode reads a snapshot, verifying magic, version and checksum. It never
// panics on malformed input.
func Decode(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if len(data) < len(magic)+4+8 {
		return nil, corrupt("%d bytes is shorter than the smallest valid checkpoint", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != Version {
		return nil, fmt.Errorf("checkpoint: version %d not supported (have %d)", v, Version)
	}
	payload := data[len(magic)+4 : len(data)-8]
	want := binary.LittleEndian.Uint64(data[len(data)-8:])
	if got := crc64.Checksum(payload, crcTable); got != want {
		return nil, corrupt("checksum mismatch (%016x != %016x)", got, want)
	}

	d := decoder{buf: payload}
	s := &Snapshot{}
	s.DesignName = d.str()
	s.Cells = d.count(2) // ≥2 bytes per cell (two varints) downstream
	s.Nets = d.count(1)
	s.K = int(d.uv())
	s.Seed = d.sv()
	s.Iter = int(d.uv())
	s.RNGDraws = d.uv()
	s.TotalMoved = int(d.uv())
	if d.err == nil {
		s.Pos = make([]geom.Point, s.Cells)
		for i := range s.Pos {
			s.Pos[i] = geom.Pt(int(d.sv()), int(d.sv()))
		}
	}
	s.Orient = orientFromBools(d.bits(s.Cells))
	s.Critical = d.bits(s.Cells)
	s.Moved = d.bits(s.Cells)
	if d.err == nil {
		s.Routes = make([]*global.Route, s.Nets)
		for i := range s.Routes {
			if d.uv() == 0 {
				continue
			}
			if d.err != nil {
				break
			}
			s.Routes[i] = &global.Route{
				NetID: int32(i),
				Wires: d.pts3(),
				Vias:  d.pts3(),
			}
		}
	}
	s.Demand.NX = d.count(1)
	s.Demand.NY = d.count(1)
	s.Demand.NL = d.count(1)
	if d.err == nil {
		n := s.Demand.NX * s.Demand.NY
		s.Demand.Wire = make([][]float64, 0, s.Demand.NL)
		for l := 0; l < s.Demand.NL && d.err == nil; l++ {
			s.Demand.Wire = append(s.Demand.Wire, d.floats(n))
		}
		if s.Demand.NL > 0 {
			s.Demand.Vias = make([][]float64, 0, s.Demand.NL-1)
			for l := 0; l < s.Demand.NL-1 && d.err == nil; l++ {
				s.Demand.Vias = append(s.Demand.Vias, d.floats(n))
			}
		}
	}
	nDeg := d.count(3)
	if d.err == nil {
		s.Degradations = make([]Degradation, 0, nDeg)
		for i := 0; i < nDeg && d.err == nil; i++ {
			s.Degradations = append(s.Degradations, Degradation{
				Stage:  d.str(),
				Kind:   d.str(),
				Detail: d.str(),
			})
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, corrupt("%d trailing bytes", len(d.buf))
	}
	return s, nil
}

// boolsFromOrient packs orientations as bits (only N and FS exist).
func boolsFromOrient(or []db.Orient) []bool {
	out := make([]bool, len(or))
	for i, o := range or {
		out[i] = o == db.FS
	}
	return out
}

func orientFromBools(bs []bool) []db.Orient {
	out := make([]db.Orient, len(bs))
	for i, b := range bs {
		if b {
			out[i] = db.FS
		}
	}
	return out
}

// encoder accumulates the payload.
type encoder struct {
	buf []byte
}

func (e *encoder) uv(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) sv(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) str(s string) { e.uv(uint64(len(s))); e.buf = append(e.buf, s...) }

func (e *encoder) bits(bs []bool) {
	packed := make([]byte, (len(bs)+7)/8)
	for i, b := range bs {
		if b {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	e.buf = append(e.buf, packed...)
}

func (e *encoder) pts3(ps []geom.Point3) {
	e.uv(uint64(len(ps)))
	for _, p := range ps {
		e.sv(int64(p.X))
		e.sv(int64(p.Y))
		e.sv(int64(p.L))
	}
}

func (e *encoder) floats(fs []float64) {
	e.uv(uint64(len(fs)))
	for _, f := range fs {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
	}
}

// decoder consumes the payload with sticky errors; every length read is
// bounded by the remaining buffer so corrupt counts cannot drive huge
// allocations.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = corrupt("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) sv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = corrupt("bad varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a uvarint that sizes a downstream collection needing at least
// minBytes payload bytes per element, rejecting counts the remaining buffer
// cannot possibly satisfy.
func (d *decoder) count(minBytes int) int {
	v := d.uv()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(len(d.buf)/minBytes)+1 {
		d.err = corrupt("count %d exceeds remaining payload", v)
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	if n > len(d.buf) {
		d.err = corrupt("string of %d bytes with %d remaining", n, len(d.buf))
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bits(n int) []bool {
	if d.err != nil {
		return nil
	}
	if n < 0 || (n+7)/8 > len(d.buf) {
		d.err = corrupt("bitset of %d bits with %d bytes remaining", n, len(d.buf))
		return nil
	}
	packed := d.buf[:(n+7)/8]
	d.buf = d.buf[(n+7)/8:]
	out := make([]bool, n)
	for i := range out {
		out[i] = packed[i/8]&(1<<(i%8)) != 0
	}
	return out
}

func (d *decoder) pts3() []geom.Point3 {
	n := d.count(3)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]geom.Point3, 0, n)
	for i := 0; i < n; i++ {
		x, y, l := d.sv(), d.sv(), d.sv()
		if d.err != nil {
			return nil
		}
		out = append(out, geom.Pt3(int(x), int(y), int(l)))
	}
	return out
}

func (d *decoder) floats(want int) []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	if n != want {
		d.err = corrupt("float block of %d values, want %d", n, want)
		return nil
	}
	if n*8 > len(d.buf) {
		d.err = corrupt("float block of %d values with %d bytes remaining", n, len(d.buf))
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[i*8:]))
	}
	d.buf = d.buf[n*8:]
	return out
}
