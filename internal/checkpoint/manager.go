package checkpoint

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/crp-eda/crp/internal/atomicio"
)

// ErrNoCheckpoint is returned by Latest when the directory holds no usable
// checkpoint — either none was ever written or every candidate is corrupt.
// Callers (cmd/crp -resume) treat it as "start fresh".
var ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint")

// manifestName is the manifest file inside a checkpoint directory. Each line
// records one committed checkpoint and carries its own CRC-32, so a line
// torn mid-write (the manifest is rewritten atomically, but an older
// non-atomic filesystem or a partial copy can still tear it) is skipped
// rather than trusted.
const manifestName = "MANIFEST"

// entry is one manifest line: a committed checkpoint file and the payload
// CRC-64 recorded at write time, re-verified by Decode on load.
type entry struct {
	Seq  int
	Iter int
	File string
	Size int64
}

// Manager owns a checkpoint directory: atomic snapshot writes, a
// torn-write-tolerant manifest, newest-first recovery with fallback across
// corrupt files, and pruning to a bounded number of retained checkpoints.
type Manager struct {
	dir   string
	keep  int
	seq   int
	guard func() error
}

// Open prepares dir (creating it if needed) and positions the sequence
// counter after the newest recorded checkpoint. keep <= 0 retains the
// default two checkpoints: the newest plus one fallback in case the newest
// turns out to be torn.
func Open(dir string, keep int) (*Manager, error) {
	if keep <= 0 {
		keep = 2
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	m := &Manager{dir: dir, keep: keep}
	entries, _ := m.readManifest()
	for _, e := range entries {
		if e.Seq > m.seq {
			m.seq = e.Seq
		}
	}
	// Files orphaned by a crash between checkpoint rename and manifest
	// rename may carry a higher sequence number than the manifest knows;
	// skip past them so a new Save never reuses their names.
	if files, err := os.ReadDir(dir); err == nil {
		for _, f := range files {
			var n int
			if _, err := fmt.Sscanf(f.Name(), "ckpt-%d.bin", &n); err == nil && n > m.seq {
				m.seq = n
			}
		}
	}
	return m, nil
}

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// SetGuard installs a publication guard on every durable write this manager
// performs: the snapshot file and the manifest both commit through
// atomicio.CommitIf(guard), so a writer whose authority has lapsed — a job
// daemon whose lease was stolen — cannot rename a stale snapshot or
// manifest into a directory another node now owns. A failing guard surfaces
// as a Save error, which the flow layer records as a counted
// "checkpoint-write-failed" degradation rather than a crash. Nil clears.
func (m *Manager) SetGuard(g func() error) { m.guard = g }

// Save durably commits a snapshot: the checkpoint file is written to a temp
// name, fsynced and renamed into place, and only then is the manifest
// rewritten (also atomically) to reference it. A crash between the two
// renames leaves an orphaned-but-valid checkpoint file the manifest does not
// mention; recovery then resumes from the previous checkpoint, which is
// safe because replaying an iteration is deterministic.
func (m *Manager) Save(s *Snapshot) error {
	m.seq++
	name := fmt.Sprintf("ckpt-%d.bin", m.seq)
	var size int64
	err := atomicio.WriteFileGuarded(filepath.Join(m.dir, name), m.guard, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		if err := Encode(cw, s); err != nil {
			return err
		}
		size = cw.n
		return nil
	})
	if err != nil {
		m.seq--
		return err
	}
	entries, _ := m.readManifest()
	entries = append(entries, entry{Seq: m.seq, Iter: s.Iter, File: name, Size: size})
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	if len(entries) > m.keep {
		entries = entries[len(entries)-m.keep:]
	}
	if err := m.writeManifest(entries); err != nil {
		return err
	}
	m.prune(entries)
	return nil
}

// Latest loads the newest usable checkpoint. Corrupt or missing candidates
// are skipped oldest-last with a human-readable note appended per skip; the
// notes are returned alongside the snapshot so the flow can record them as
// degradations. ErrNoCheckpoint means the directory is empty or nothing
// survived verification.
func (m *Manager) Latest() (*Snapshot, []string, error) {
	var notes []string
	entries, err := m.readManifest()
	if err != nil {
		notes = append(notes, fmt.Sprintf("manifest unreadable (%v); scanning directory", err))
		entries = m.scan()
	} else if len(entries) == 0 {
		if scanned := m.scan(); len(scanned) > 0 {
			notes = append(notes, "manifest empty but checkpoint files present; scanning directory")
			entries = scanned
		}
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		s, err := m.load(e)
		if err == nil {
			return s, notes, nil
		}
		notes = append(notes, fmt.Sprintf("checkpoint %s (iter %d) unusable: %v", e.File, e.Iter, err))
	}
	return nil, notes, ErrNoCheckpoint
}

func (m *Manager) load(e entry) (*Snapshot, error) {
	f, err := os.Open(filepath.Join(m.dir, e.File))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if e.Size > 0 {
		if fi, err := f.Stat(); err == nil && fi.Size() != e.Size {
			return nil, corrupt("size %d, manifest recorded %d", fi.Size(), e.Size)
		}
	}
	return Decode(bufio.NewReader(f))
}

// scan rebuilds an entry list from directory contents when the manifest is
// unusable. Iter and Size are unknown (zero) — Decode still verifies each
// candidate's checksum before it is trusted.
func (m *Manager) scan() []entry {
	files, err := os.ReadDir(m.dir)
	if err != nil {
		return nil
	}
	var entries []entry
	for _, f := range files {
		var n int
		if _, err := fmt.Sscanf(f.Name(), "ckpt-%d.bin", &n); err == nil {
			entries = append(entries, entry{Seq: n, File: f.Name()})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	return entries
}

// manifest line: "v1 <seq> <iter> <size> <file> #<crc32-of-preceding-text>"
func manifestLine(e entry) string {
	body := fmt.Sprintf("v1 %d %d %d %s", e.Seq, e.Iter, e.Size, e.File)
	return fmt.Sprintf("%s #%08x", body, crc32.ChecksumIEEE([]byte(body)))
}

func parseManifestLine(line string) (entry, bool) {
	body, sum, ok := strings.Cut(line, " #")
	if !ok {
		return entry{}, false
	}
	want, err := strconv.ParseUint(sum, 16, 32)
	if err != nil || crc32.ChecksumIEEE([]byte(body)) != uint32(want) {
		return entry{}, false
	}
	f := strings.Fields(body)
	if len(f) != 5 || f[0] != "v1" {
		return entry{}, false
	}
	var e entry
	if e.Seq, err = strconv.Atoi(f[1]); err != nil {
		return entry{}, false
	}
	if e.Iter, err = strconv.Atoi(f[2]); err != nil {
		return entry{}, false
	}
	if e.Size, err = strconv.ParseInt(f[3], 10, 64); err != nil {
		return entry{}, false
	}
	e.File = f[4]
	return e, true
}

// readManifest returns the valid entries in sequence order. Lines that fail
// their CRC are skipped silently here — Latest reports the consequences.
// A missing manifest is an empty (not error) result.
func (m *Manager) readManifest() ([]entry, error) {
	data, err := os.ReadFile(filepath.Join(m.dir, manifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var entries []entry
	for _, line := range bytes.Split(data, []byte("\n")) {
		if e, ok := parseManifestLine(strings.TrimSpace(string(line))); ok {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	return entries, nil
}

func (m *Manager) writeManifest(entries []entry) error {
	return atomicio.WriteFileGuarded(filepath.Join(m.dir, manifestName), m.guard, func(w io.Writer) error {
		for _, e := range entries {
			if _, err := fmt.Fprintln(w, manifestLine(e)); err != nil {
				return err
			}
		}
		return nil
	})
}

// prune removes checkpoint files no longer referenced by the manifest.
// Removal failures are ignored: a stale file costs disk, not correctness.
func (m *Manager) prune(keep []entry) {
	live := make(map[string]bool, len(keep))
	for _, e := range keep {
		live[e.File] = true
	}
	files, err := os.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, f := range files {
		var n int
		if _, err := fmt.Sscanf(f.Name(), "ckpt-%d.bin", &n); err == nil && !live[f.Name()] {
			os.Remove(filepath.Join(m.dir, f.Name()))
		}
	}
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
