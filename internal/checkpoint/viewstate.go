package checkpoint

import "github.com/crp-eda/crp/internal/view"

// ViewState returns the snapshot's design-state slice — positions,
// orientations, history sets, routes and grid demand — as a view.State,
// ready for view.Rebuild on the resume path. The snapshot's remaining
// fields (identity, config echoes, engine counters, degradations) are flow
// metadata, not design state.
func (s *Snapshot) ViewState() view.State {
	return view.State{
		Pos:      s.Pos,
		Orient:   s.Orient,
		Critical: s.Critical,
		Moved:    s.Moved,
		Routes:   s.Routes,
		Demand:   s.Demand,
	}
}

// SetViewState fills the snapshot's design-state fields from a materialized
// view — the one exporter checkpoints go through, replacing direct use of
// the per-store export APIs.
func (s *Snapshot) SetViewState(st view.State) {
	s.Pos = st.Pos
	s.Orient = st.Orient
	s.Critical = st.Critical
	s.Moved = st.Moved
	s.Routes = st.Routes
	s.Demand = st.Demand
}
