package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
)

// sample builds a representative snapshot: moved cells, flipped orients,
// routed and unrouted nets, non-trivial demand, a degradation log.
func sample() *Snapshot {
	return &Snapshot{
		DesignName: "crp_test1",
		Cells:      3,
		Nets:       2,
		K:          5,
		Seed:       -7,
		Iter:       2,
		RNGDraws:   123,
		TotalMoved: 4,
		Pos:        []geom.Point{geom.Pt(10, 20), geom.Pt(-5, 0), geom.Pt(7, 7)},
		Orient:     []db.Orient{db.N, db.FS, db.N},
		Critical:   []bool{true, false, true},
		Moved:      []bool{false, false, true},
		Routes: []*global.Route{
			nil,
			{
				NetID: 1,
				Wires: []geom.Point3{geom.Pt3(0, 0, 1), geom.Pt3(1, 0, 1)},
				Vias:  []geom.Point3{geom.Pt3(0, 0, 0)},
			},
		},
		Demand: grid.DemandState{
			NX: 2, NY: 1, NL: 2,
			Wire: [][]float64{{0, 0.5}, {1.25, 0}},
			Vias: [][]float64{{2, 0}},
		},
		Degradations: []Degradation{
			{Stage: "gr", Kind: "stage-deadline", Detail: "stopped after 3 nets"},
		},
	}
}

func encodeToBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	s := sample()
	got, err := Decode(bytes.NewReader(encodeToBytes(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip diverged:\n  in  %+v\n  out %+v", s, got)
	}
}

func TestEncodeRejectsInconsistentLengths(t *testing.T) {
	s := sample()
	s.Pos = s.Pos[:1]
	if err := Encode(&bytes.Buffer{}, s); err == nil {
		t.Fatal("mismatched Pos length must be refused")
	}
	s = sample()
	s.Routes = nil
	if err := Encode(&bytes.Buffer{}, s); err == nil {
		t.Fatal("mismatched Routes length must be refused")
	}
}

func TestDecodeDetectsEveryFlippedByte(t *testing.T) {
	data := encodeToBytes(t, sample())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte %d flipped without detection", i)
		}
	}
}

func TestDecodeDetectsTruncation(t *testing.T) {
	data := encodeToBytes(t, sample())
	for n := 0; n < len(data); n++ {
		if _, err := Decode(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	data := encodeToBytes(t, sample())
	data[len(magic)] = 99
	_, err := Decode(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestManagerSaveLatestRoundTrip(t *testing.T) {
	m, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := sample()
	for iter := 0; iter <= 2; iter++ {
		s.Iter = iter
		if err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	got, notes, err := m.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 0 {
		t.Fatalf("clean directory produced recovery notes: %v", notes)
	}
	if got.Iter != 2 {
		t.Fatalf("Latest returned iter %d, want 2", got.Iter)
	}
}

func TestManagerPrunesToKeep(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := sample()
	for iter := 0; iter < 5; iter++ {
		s.Iter = iter
		if err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("%d checkpoint files retained, want 2: %v", len(files), files)
	}
}

func TestManagerFallsBackAcrossCorruptLatest(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := sample()
	for iter := 0; iter < 3; iter++ {
		s.Iter = iter
		if err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest checkpoint mid-file.
	entries, err := m.readManifest()
	if err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, entries[len(entries)-1].File)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}

	got, notes, err := m.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 1 {
		t.Fatalf("fallback returned iter %d, want 1", got.Iter)
	}
	if len(notes) == 0 {
		t.Fatal("fallback across a torn checkpoint must leave a recovery note")
	}
}

func TestManagerSurvivesTornManifest(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := sample()
	for iter := 0; iter < 2; iter++ {
		s.Iter = iter
		if err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the manifest's last line (lost its CRC suffix).
	mf := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mf, data[:len(data)-12], 0o666); err != nil {
		t.Fatal(err)
	}
	got, _, err := m.Latest()
	if err != nil {
		t.Fatal(err)
	}
	// The torn line is ignored; the intact line (iter 0) still resolves.
	if got.Iter != 0 {
		t.Fatalf("torn manifest resolved to iter %d, want 0", got.Iter)
	}
}

func TestManagerScansWhenManifestMissing(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := sample()
	s.Iter = 4
	if err := m.Save(s); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	got, notes, err := m.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 4 {
		t.Fatalf("scan recovered iter %d, want 4", got.Iter)
	}
	if len(notes) == 0 {
		t.Fatal("manifest-less recovery must note the scan")
	}
}

func TestEmptyDirReturnsErrNoCheckpoint(t *testing.T) {
	m, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := sample()
	if err := m.Save(s); err != nil {
		t.Fatal(err)
	}
	// A second manager (the restarted process) must not reuse sequence
	// numbers, or a torn write could shadow a committed checkpoint.
	m2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Iter = 9
	if err := m2.Save(s); err != nil {
		t.Fatal(err)
	}
	got, _, err := m2.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 9 {
		t.Fatalf("reopened manager resolved iter %d, want 9", got.Iter)
	}
}
