package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode asserts the decoder's crash-safety contract: no
// input — valid, corrupt, truncated, or adversarial — may panic it or make
// it allocate unboundedly, and any snapshot it does accept must re-encode
// to the exact bytes it was decoded from (the format is canonical).
func FuzzCheckpointDecode(f *testing.F) {
	valid := &bytes.Buffer{}
	if err := Encode(valid, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(append([]byte(magic), 1, 0, 0, 0))
	if b := valid.Bytes(); len(b) > 20 {
		f.Add(b[:len(b)/2])    // truncated payload
		f.Add(append(b, 0, 1)) // trailing garbage
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := Encode(&re, s); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d bytes out", len(data), re.Len())
		}
	})
}
