package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// The multi-job tests pin the isolation property the service layer relies
// on: one Manager per job directory, many jobs under one data root. A
// manager must never read, prune, or corrupt a sibling's files — even when
// the siblings save and prune concurrently — and corruption recovery must
// stay local to the directory it happened in.

func jobSnapshot(job string, iter int) *Snapshot {
	s := sample()
	s.DesignName = job
	s.Iter = iter
	s.Seed = int64(len(job)) // differ per job so payloads are not identical
	return s
}

func TestSiblingManagersNeverCrossContaminate(t *testing.T) {
	root := t.TempDir()
	const jobs = 4
	const saves = 12

	var wg sync.WaitGroup
	dirs := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		dirs[i] = filepath.Join(root, fmt.Sprintf("j%06d", i+1), "ckpt")
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := Open(dirs[i], 2)
			if err != nil {
				t.Error(err)
				return
			}
			job := fmt.Sprintf("job-%d", i+1)
			for iter := 0; iter < saves; iter++ {
				if err := m.Save(jobSnapshot(job, iter)); err != nil {
					t.Errorf("%s save %d: %v", job, iter, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, dir := range dirs {
		m, err := Open(dir, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, notes, err := m.Latest()
		if err != nil {
			t.Fatalf("dir %s: %v", dir, err)
		}
		if len(notes) != 0 {
			t.Errorf("dir %s recovered with notes %v, want clean", dir, notes)
		}
		want := fmt.Sprintf("job-%d", i+1)
		if got.DesignName != want || got.Iter != saves-1 {
			t.Errorf("dir %s latest = %s iter %d, want %s iter %d",
				dir, got.DesignName, got.Iter, want, saves-1)
		}
		// Pruning must be local: keep=2 leaves exactly 2 checkpoint files
		// (plus MANIFEST) regardless of sibling activity.
		entries, err := m.readManifest()
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 {
			t.Errorf("dir %s retained %d manifest entries, want 2", dir, len(entries))
		}
	}
}

func TestCorruptLatestFallbackIsolatedFromBusySibling(t *testing.T) {
	root := t.TempDir()
	victimDir := filepath.Join(root, "victim", "ckpt")
	busyDir := filepath.Join(root, "busy", "ckpt")

	victim, err := Open(victimDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 3; iter++ {
		if err := victim.Save(jobSnapshot("victim", iter)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the victim's newest checkpoint mid-file (a crash mid-write).
	entries, err := victim.readManifest()
	if err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(victimDir, entries[len(entries)-1].File)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}

	// While a sibling hammers saves and prunes, the victim's fallback must
	// resolve against its own directory only.
	stop := make(chan struct{})
	started := make(chan struct{})
	var startedOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer startedOnce.Do(func() { close(started) })
		m, err := Open(busyDir, 2)
		if err != nil {
			t.Error(err)
			return
		}
		for iter := 0; ; iter++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Save(jobSnapshot("busy", iter)); err != nil {
				t.Errorf("busy save %d: %v", iter, err)
				return
			}
			startedOnce.Do(func() { close(started) })
		}
	}()
	<-started
	if t.Failed() {
		t.FailNow()
	}

	for round := 0; round < 20; round++ {
		got, notes, err := victim.Latest()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.DesignName != "victim" || got.Iter != 1 {
			t.Fatalf("round %d: fell back to %s iter %d, want victim iter 1",
				round, got.DesignName, got.Iter)
		}
		if len(notes) == 0 {
			t.Fatalf("round %d: corrupt newest produced no recovery notes", round)
		}
	}
	close(stop)
	wg.Wait()

	// The sibling never saw the victim's corruption.
	busy, err := Open(busyDir, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, notes, err := busy.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.DesignName != "busy" || len(notes) != 0 {
		t.Fatalf("busy latest = %s notes %v, want clean busy snapshot", got.DesignName, notes)
	}
}
