package atomicio

import (
	"fmt"
	"io"
)

// Outputs is a group of atomic file replacements committed together — the
// best-so-far output pattern the CLIs share: create every output up front,
// stream into the writers while the run progresses, then Commit once the
// producing run succeeds (or Abort, usually via defer, to leave every
// target untouched). A crash at any point leaves each target as either its
// previous content or the new content, never a torn in-between.
type Outputs struct {
	files []*File
}

// Create adds one output to the group and returns its writer. An empty
// path returns (nil, nil), so optional outputs ("" = not requested) need no
// caller-side branching.
func (o *Outputs) Create(path string) (io.Writer, error) {
	if path == "" {
		return nil, nil
	}
	f, err := Create(path)
	if err != nil {
		return nil, err
	}
	o.files = append(o.files, f)
	return f, nil
}

// CreateTee adds one output that also streams to an extra writer (the
// report-to-stdout-and-file pattern). An empty path returns just the extra
// writer — output still flows, nothing is committed.
func (o *Outputs) CreateTee(path string, also io.Writer) (io.Writer, error) {
	if path == "" {
		return also, nil
	}
	w, err := o.Create(path)
	if err != nil {
		return nil, err
	}
	if also == nil {
		return w, nil
	}
	return io.MultiWriter(also, w), nil
}

// Commit atomically renames every output into place, first one first. On
// error the remaining outputs are left uncommitted (Abort cleans them up).
// Committing an empty group is a no-op, so the call needs no guard when no
// outputs were requested.
func (o *Outputs) Commit() error {
	for i, f := range o.files {
		if err := f.Commit(); err != nil {
			o.files = o.files[i+1:]
			return fmt.Errorf("atomicio: committing outputs: %w", err)
		}
	}
	o.files = nil
	return nil
}

// Abort discards every uncommitted output, leaving the targets untouched.
// Safe after Commit (then a no-op), so `defer o.Abort()` pairs with a
// conditional Commit.
func (o *Outputs) Abort() {
	for _, f := range o.files {
		f.Abort()
	}
	o.files = nil
}
