// Package atomicio provides crash-safe file replacement: content is written
// to a temporary file in the destination directory, flushed and fsynced,
// then renamed over the target, and the directory entry is fsynced. A crash
// at any point leaves either the previous file intact or the new one
// complete — never a torn or empty file where a good one used to be.
//
// Every file the flow emits (DEF, route guides, benchmark JSON, checkpoint
// snapshots) goes through this package, which is what makes the flow's
// outputs safe to consume from a supervisor that may kill and restart it.
package atomicio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is an in-flight atomic replacement of a target path. Write into it,
// then either Commit (fsync + rename into place) or Abort (discard). A File
// that is garbage-collected without Commit leaves the target untouched
// except for a stray temp file, which Abort in a defer prevents.
type File struct {
	path string   // final destination
	tmp  string   // temporary file being written
	f    *os.File // nil once committed or aborted
	bw   *bufio.Writer
}

// Create starts an atomic replacement of path. The temporary file is created
// in path's directory so the final rename cannot cross filesystems.
func Create(path string) (*File, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &File{path: path, tmp: f.Name(), f: f, bw: bufio.NewWriter(f)}, nil
}

// Write implements io.Writer.
func (a *File) Write(p []byte) (int, error) {
	if a.f == nil {
		return 0, fmt.Errorf("atomicio: write after commit/abort of %s", a.path)
	}
	return a.bw.Write(p)
}

// Commit flushes, fsyncs and renames the temporary file over the target,
// then fsyncs the directory so the rename itself is durable.
func (a *File) Commit() error { return a.CommitIf(nil) }

// CommitIf is Commit with a publication guard: after the temporary file is
// fully flushed and fsynced — the last moment before the rename makes it
// visible — guard runs, and a non-nil guard error abandons the commit,
// leaving the target untouched. The job service threads lease fencing
// checks through here: a zombie ex-owner whose lease was stolen fails the
// guard and its fully-written output never replaces the rightful owner's.
// A nil guard is plain Commit.
func (a *File) CommitIf(guard func() error) error {
	if a.f == nil {
		return fmt.Errorf("atomicio: double commit of %s", a.path)
	}
	f := a.f
	a.f = nil
	if err := a.bw.Flush(); err != nil {
		f.Close()
		os.Remove(a.tmp)
		return fmt.Errorf("atomicio: flushing %s: %w", a.path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(a.tmp)
		return fmt.Errorf("atomicio: fsync %s: %w", a.path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(a.tmp)
		return fmt.Errorf("atomicio: closing %s: %w", a.path, err)
	}
	if guard != nil {
		if err := guard(); err != nil {
			os.Remove(a.tmp)
			return fmt.Errorf("atomicio: commit of %s refused: %w", a.path, err)
		}
	}
	if err := os.Rename(a.tmp, a.path); err != nil {
		os.Remove(a.tmp)
		return fmt.Errorf("atomicio: %w", err)
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the temporary file, leaving the target untouched. Safe to
// call after Commit (it is then a no-op), so `defer a.Abort()` pairs with a
// conditional Commit.
func (a *File) Abort() {
	if a.f == nil {
		return
	}
	a.f.Close()
	os.Remove(a.tmp)
	a.f = nil
}

// WriteFile atomically replaces path with whatever write emits. If write
// (or any I/O step) fails, the previous file content is left untouched.
func WriteFile(path string, write func(w io.Writer) error) error {
	a, err := Create(path)
	if err != nil {
		return err
	}
	defer a.Abort()
	if err := write(a); err != nil {
		return err
	}
	return a.Commit()
}

// WriteFileBytes atomically replaces path with data.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteFileGuarded atomically replaces path with whatever write emits, but
// only if guard passes once the content is durable (see File.CommitIf).
func WriteFileGuarded(path string, guard func() error, write func(w io.Writer) error) error {
	a, err := Create(path)
	if err != nil {
		return err
	}
	defer a.Abort()
	if err := write(a); err != nil {
		return err
	}
	return a.CommitIf(guard)
}

// WriteFileBytesGuarded atomically replaces path with data under a guard.
func WriteFileBytesGuarded(path string, guard func() error, data []byte) error {
	return WriteFileGuarded(path, guard, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash. Best
// effort: some platforms/filesystems refuse to sync directories, and a
// failure there only narrows the durability window — it never corrupts.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
