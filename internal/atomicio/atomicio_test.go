package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.def")
	if err := WriteFileBytes(path, []byte("good v1\n")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("good v2\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good v2\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestFailedWriteLeavesPreviousContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.def")
	if err := WriteFileBytes(path, []byte("previous good\n")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half-written garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "previous good\n" {
		t.Fatalf("previous content clobbered: %q", got)
	}
}

func TestAbortedFileLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.def")
	a, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(a, "doomed")
	a.Abort()
	a.Abort() // idempotent
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("directory not clean after abort: %v", entries)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target exists after abort: %v", err)
	}
}

func TestCommitThenAbortIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.def")
	a, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(a, "kept")
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	a.Abort()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "kept" {
		t.Fatalf("content = %q", got)
	}
	if _, err := a.Write([]byte("late")); err == nil {
		t.Fatal("write after commit must fail")
	}
	if err := a.Commit(); err == nil {
		t.Fatal("double commit must fail")
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := WriteFileBytes(path, []byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %q after commit", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly the target, got %v", entries)
	}
}

func TestCreateInMissingDirFails(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Fatal("Create in a missing directory must fail, not invent paths")
	}
}
