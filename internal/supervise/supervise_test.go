package supervise

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// fakeClock records sleeps instead of taking them.
type fakeClock struct{ slept []time.Duration }

func (c *fakeClock) sleep(d time.Duration) { c.slept = append(c.slept, d) }

func TestFirstAttemptSuccess(t *testing.T) {
	clock := &fakeClock{}
	rep := Run(Config{Sleep: clock.sleep}, func(n int) (int, error) { return 0, nil })
	if !rep.Succeeded || len(rep.Attempts) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(clock.slept) != 0 {
		t.Fatalf("successful first attempt slept %v", clock.slept)
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	clock := &fakeClock{}
	var observed []Attempt
	rep := Run(Config{
		MaxAttempts: 5,
		Sleep:       clock.sleep,
		OnAttempt:   func(at Attempt) { observed = append(observed, at) },
	}, func(n int) (int, error) {
		if n < 3 {
			return 43, errors.New("crashed")
		}
		return 0, nil
	})
	if !rep.Succeeded || len(rep.Attempts) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	for _, at := range rep.Attempts[:2] {
		if at.ExitCode != 43 || at.Err == "" {
			t.Fatalf("failed attempt recorded as %+v", at)
		}
	}
	if last := rep.Attempts[2]; last.ExitCode != 0 || last.Err != "" || last.Backoff != 0 {
		t.Fatalf("final attempt recorded as %+v", last)
	}
	if len(clock.slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(clock.slept))
	}
	if !reflect.DeepEqual(observed, rep.Attempts) {
		t.Fatal("OnAttempt stream diverges from the report")
	}
}

func TestRetryCapExhausted(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	rep := Run(Config{MaxAttempts: 3, Sleep: clock.sleep}, func(n int) (int, error) {
		calls++
		return 1, errors.New("always fails")
	})
	if rep.Succeeded || calls != 3 || len(rep.Attempts) != 3 {
		t.Fatalf("report = %+v after %d calls", rep, calls)
	}
	if rep.Attempts[2].Backoff != 0 {
		t.Fatal("no backoff is scheduled after the final attempt")
	}
}

func TestBackoffScheduleDeterministicAndCapped(t *testing.T) {
	schedule := func() []time.Duration {
		clock := &fakeClock{}
		Run(Config{
			MaxAttempts: 6,
			BaseBackoff: 100 * time.Millisecond,
			MaxBackoff:  400 * time.Millisecond,
			JitterSeed:  7,
			Sleep:       clock.sleep,
		}, func(n int) (int, error) { return 1, errors.New("fail") })
		return clock.slept
	}
	a, b := schedule(), schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("%d backoffs for 6 attempts, want 5", len(a))
	}
	base := []time.Duration{100, 200, 400, 400, 400} // ms, pre-jitter, capped
	for i, d := range a {
		lo := base[i] * time.Millisecond
		hi := lo + lo/2
		if d < lo || d > hi {
			t.Errorf("backoff %d = %v outside [%v, %v]", i+1, d, lo, hi)
		}
	}
}

func TestJitterSeedChangesSchedule(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		clock := &fakeClock{}
		Run(Config{MaxAttempts: 4, JitterSeed: seed, Sleep: clock.sleep},
			func(n int) (int, error) { return 1, errors.New("fail") })
		return clock.slept
	}
	if reflect.DeepEqual(schedule(1), schedule(2)) {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
}

func TestCommandExtractsExitCode(t *testing.T) {
	var out bytes.Buffer
	job, err := Command([]string{"sh", "-c", "echo from-child; exit 43"}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	code, jerr := job(1)
	if code != 43 || jerr == nil {
		t.Fatalf("code=%d err=%v, want 43 and an error", code, jerr)
	}
	if !bytes.Contains(out.Bytes(), []byte("from-child")) {
		t.Fatal("child stdout not passed through")
	}
}

func TestCommandSuccess(t *testing.T) {
	job, err := Command([]string{"true"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code, jerr := job(1); code != 0 || jerr != nil {
		t.Fatalf("code=%d err=%v", code, jerr)
	}
}

func TestCommandStartFailure(t *testing.T) {
	job, err := Command([]string{"/nonexistent-binary-xyz"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	code, jerr := job(1)
	if code != -1 || jerr == nil {
		t.Fatalf("unstartable child: code=%d err=%v, want -1 and an error", code, jerr)
	}
}

func TestEmptyCommandRefused(t *testing.T) {
	if _, err := Command(nil, nil, nil); err == nil {
		t.Fatal("empty argv must be refused")
	}
}

func TestSupervisedCommandEventuallySucceeds(t *testing.T) {
	// A child that crashes until a state file accumulates enough attempts —
	// the process-level analogue of checkpoint/resume convergence.
	state := t.TempDir() + "/attempts"
	script := fmt.Sprintf(`echo x >> %q; [ "$(wc -l < %q)" -ge 3 ] || exit 43`, state, state)
	job, err := Command([]string{"sh", "-c", script}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{}
	rep := Run(Config{MaxAttempts: 5, Sleep: clock.sleep}, job)
	if !rep.Succeeded || len(rep.Attempts) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	for _, at := range rep.Attempts[:2] {
		if at.ExitCode != 43 {
			t.Fatalf("crash exit code not extracted: %+v", at)
		}
	}
}
