package supervise

import (
	"errors"
	"testing"
	"time"
)

// TestRetryBudgetExhaustedStopsBeforeBackoff: when the run's elapsed
// wall-clock plus the pending backoff already exceeds the budget, the loop
// stops with BudgetExhausted — without taking the sleep and without
// consuming further attempts.
func TestRetryBudgetExhaustedStopsBeforeBackoff(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	rep := Run(Config{
		MaxAttempts: 5,
		RetryBudget: time.Nanosecond, // any failed attempt exhausts it
		Sleep:       clock.sleep,
	}, func(n int) (int, error) {
		calls++
		return 1, errors.New("always fails")
	})
	if rep.Succeeded || rep.Cancelled {
		t.Fatalf("report = %+v, want plain budget exhaustion", rep)
	}
	if !rep.BudgetExhausted {
		t.Fatal("BudgetExhausted not set")
	}
	if calls != 1 || len(rep.Attempts) != 1 {
		t.Fatalf("ran %d attempts (%d recorded), want 1", calls, len(rep.Attempts))
	}
	if rep.Attempts[0].Backoff != 0 {
		t.Fatalf("exhausted attempt records backoff %v, want 0 (never slept)", rep.Attempts[0].Backoff)
	}
	if len(clock.slept) != 0 {
		t.Fatalf("slept %v after the budget ran out", clock.slept)
	}
}

// TestRetryBudgetGenerousDoesNotInterfere: a budget far beyond the run's
// wall-clock changes nothing — the attempt cap is still what ends the loop.
func TestRetryBudgetGenerousDoesNotInterfere(t *testing.T) {
	clock := &fakeClock{}
	rep := Run(Config{
		MaxAttempts: 3,
		RetryBudget: time.Hour,
		Sleep:       clock.sleep,
	}, func(n int) (int, error) { return 1, errors.New("always fails") })
	if rep.BudgetExhausted {
		t.Fatal("a generous budget reported exhaustion")
	}
	if len(rep.Attempts) != 3 || len(clock.slept) != 2 {
		t.Fatalf("attempts %d, sleeps %d; want the full capped schedule", len(rep.Attempts), len(clock.slept))
	}
}

// TestRetryBudgetZeroIsUncapped: the zero value keeps the pre-existing
// behaviour bit-for-bit — retries run to the attempt cap.
func TestRetryBudgetZeroIsUncapped(t *testing.T) {
	clock := &fakeClock{}
	rep := Run(Config{MaxAttempts: 4, Sleep: clock.sleep},
		func(n int) (int, error) { return 1, errors.New("always fails") })
	if rep.BudgetExhausted {
		t.Fatal("uncapped run reported budget exhaustion")
	}
	if len(rep.Attempts) != 4 {
		t.Fatalf("attempts = %d, want the full cap of 4", len(rep.Attempts))
	}
}

// TestRetryBudgetNeverCutsSuccess: the budget gates retries, not success —
// a succeeding attempt completes no matter how small the budget is.
func TestRetryBudgetNeverCutsSuccess(t *testing.T) {
	rep := Run(Config{MaxAttempts: 5, RetryBudget: time.Nanosecond},
		func(n int) (int, error) { return 0, nil })
	if !rep.Succeeded || rep.BudgetExhausted {
		t.Fatalf("report = %+v, want plain success", rep)
	}
}

// TestRetryBudgetExhaustionOnLaterAttempt: the budget is consumed across
// attempts and backoffs; a budget that allows one backoff but not two stops
// after the second failure.
func TestRetryBudgetExhaustionOnLaterAttempt(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	rep := Run(Config{
		MaxAttempts: 5,
		BaseBackoff: time.Nanosecond,
		RetryBudget: 50 * time.Millisecond,
		Sleep:       clock.sleep,
	}, func(n int) (int, error) {
		calls++
		if n == 2 {
			time.Sleep(60 * time.Millisecond) // push elapsed past the budget
		}
		return 1, errors.New("always fails")
	})
	if !rep.BudgetExhausted {
		t.Fatalf("report = %+v, want budget exhaustion after attempt 2", rep)
	}
	if calls != 2 || len(rep.Attempts) != 2 {
		t.Fatalf("ran %d attempts, want 2", calls)
	}
}
