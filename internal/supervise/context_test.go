package supervise

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The context tests pin the cancellation contract RunCtx adds for daemon
// shutdown: a cancelled context stops the loop everywhere — before an
// attempt, after a failed attempt, and mid-backoff — without starting
// further attempts, and the report says so explicitly.

func TestRunCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	rep := RunCtx(ctx, Config{}, func(n int) (int, error) { ran++; return 0, nil })
	if ran != 0 || rep.Succeeded || !rep.Cancelled || len(rep.Attempts) != 0 {
		t.Fatalf("ran=%d report=%+v, want zero attempts and Cancelled", ran, rep)
	}
}

func TestRunCtxCancelInterruptsDefaultBackoffSleep(t *testing.T) {
	// No Sleep seam: the context-aware timer wait must be interruptible.
	// With an hour of base backoff, only cancellation can end the run
	// promptly.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep := RunCtx(ctx, Config{MaxAttempts: 3, BaseBackoff: time.Hour},
		func(n int) (int, error) { return 1, errors.New("crash") })
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancellation took %s to interrupt the backoff", took)
	}
	if rep.Succeeded || !rep.Cancelled || len(rep.Attempts) != 1 {
		t.Fatalf("report = %+v, want 1 attempt then Cancelled", rep)
	}
}

func TestRunCtxCancelDuringAttemptStopsRetrying(t *testing.T) {
	// The attempt itself observes the cancellation (a supervised child
	// killed by shutdown): the failure must not be retried.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clock := &fakeClock{}
	ran := 0
	rep := RunCtx(ctx, Config{MaxAttempts: 5, Sleep: clock.sleep},
		func(n int) (int, error) {
			ran++
			cancel()
			return 137, errors.New("terminated")
		})
	if ran != 1 || rep.Succeeded || !rep.Cancelled {
		t.Fatalf("ran=%d report=%+v, want exactly one attempt then Cancelled", ran, rep)
	}
	if len(rep.Attempts) != 1 || rep.Attempts[0].ExitCode != 137 {
		t.Fatalf("cancelled attempt not recorded: %+v", rep.Attempts)
	}
	if len(clock.slept) != 0 {
		t.Fatalf("slept %v after cancellation", clock.slept)
	}
}

func TestRunCtxCancelViaInjectedSleepSeam(t *testing.T) {
	// With an injected Sleep, cancellation is checked when the sleep
	// returns — the seam stays usable for tests while shutdown still wins.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	rep := RunCtx(ctx, Config{
		MaxAttempts: 5,
		Sleep:       func(time.Duration) { cancel() },
	}, func(n int) (int, error) { ran++; return 1, errors.New("crash") })
	if ran != 1 || !rep.Cancelled || rep.Succeeded {
		t.Fatalf("ran=%d report=%+v, want 1 attempt then Cancelled", ran, rep)
	}
}

func TestRunMatchesRunCtxBackground(t *testing.T) {
	// Run is RunCtx with a background context: never Cancelled.
	rep := Run(Config{Sleep: (&fakeClock{}).sleep}, func(n int) (int, error) { return 0, nil })
	if rep.Cancelled {
		t.Fatal("Run reported Cancelled without a context")
	}
}
