// Package supervise is the self-healing run supervisor: it executes a job
// (typically a checkpointed cmd/crp invocation) and, when the job dies —
// crash, OOM kill, injected fault — restarts it with exponential backoff
// until it succeeds or a retry cap is reached. Paired with checkpoint
// journaling and flow.Resume, a supervised run loses at most one iteration
// of work per crash and still terminates with bit-identical outputs.
//
// Determinism discipline: backoff jitter comes from a seeded generator and
// sleeping goes through an injectable seam, so supervisor behaviour —
// including the exact backoff schedule — replays identically in tests.
//
// Supervision is context-aware: RunCtx stops retrying — and interrupts a
// mid-backoff sleep — as soon as its context is cancelled, so a draining
// daemon never blocks on a supervisor that is waiting out its backoff.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os/exec"
	"time"
)

// Config tunes the retry loop. The zero value supervises with the defaults
// noted per field.
type Config struct {
	// MaxAttempts caps total executions (first run + retries). Default 5.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it. Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 10s.
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter source. Jitter adds up to
	// half the base delay so restart stampedes decorrelate without making
	// the schedule irreproducible.
	JitterSeed int64
	// RetryBudget caps the total wall-clock of one supervised run —
	// attempts plus backoffs. A failure whose next backoff would land
	// past the budget stops the loop with Report.BudgetExhausted instead
	// of sleeping, so a deterministically-crashing job cannot occupy its
	// worker slot for MaxAttempts × MaxBackoff. Zero means uncapped
	// (the pre-existing behaviour).
	RetryBudget time.Duration
	// Sleep is the waiting seam; nil means a context-aware timer wait.
	// Tests inject a recorder to assert the schedule without waiting it
	// out. An injected Sleep cannot be interrupted mid-wait, but
	// cancellation is still honoured as soon as it returns.
	Sleep func(time.Duration)
	// OnAttempt, when non-nil, observes every attempt as it completes —
	// structured reporting for logs and the crpd CLI.
	OnAttempt func(Attempt)
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 10 * time.Second
	}
	return c
}

// sleep waits d through the injectable seam. It returns false when the
// context was cancelled — either mid-wait (default timer path) or by the
// time an injected Sleep returned.
func (c Config) sleep(ctx context.Context, d time.Duration) bool {
	if c.Sleep != nil {
		c.Sleep(d)
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Attempt is the structured record of one job execution.
type Attempt struct {
	// N is the 1-based attempt number.
	N int `json:"attempt"`
	// ExitCode is the job's exit status; 0 means success, -1 means the job
	// failed before producing one (e.g. the binary could not start).
	ExitCode int `json:"exit_code"`
	// Err is the failure description, empty on success.
	Err string `json:"error,omitempty"`
	// Duration is the attempt's wall-clock time.
	Duration time.Duration `json:"duration_ns"`
	// Backoff is the delay slept after this attempt before the next one;
	// zero on the final attempt.
	Backoff time.Duration `json:"backoff_ns"`
}

// Report is the outcome of a supervised run.
type Report struct {
	Succeeded bool      `json:"succeeded"`
	Attempts  []Attempt `json:"attempts"`
	// Cancelled reports that supervision stopped because the context was
	// cancelled — before an attempt, during a backoff sleep, or while the
	// final attempt was executing — rather than by success or cap
	// exhaustion.
	Cancelled bool `json:"cancelled,omitempty"`
	// BudgetExhausted reports that Config.RetryBudget ran out: the last
	// attempt failed and retrying was forbidden because the run's total
	// wall-clock (plus the pending backoff) would exceed the budget. The
	// job service maps this to its terminal "retries_exhausted" state.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
}

// Job runs one attempt and reports its exit code. A nil error with code 0
// is success; any other combination schedules a retry.
type Job func(attempt int) (exitCode int, err error)

// Run supervises job under cfg with no external cancellation.
func Run(cfg Config, job Job) Report {
	return RunCtx(context.Background(), cfg, job)
}

// RunCtx supervises job under cfg, retrying failures with exponential
// backoff plus deterministic jitter until success, the attempt cap, or
// context cancellation. Cancellation interrupts a mid-backoff sleep and
// suppresses further retries; the job itself is expected to observe the
// same context if it wants to stop mid-attempt.
func RunCtx(ctx context.Context, cfg Config, job Job) Report {
	cfg = cfg.withDefaults()
	jitter := rand.New(rand.NewSource(cfg.JitterSeed))
	start := time.Now()
	var rep Report
	for n := 1; n <= cfg.MaxAttempts; n++ {
		if ctx.Err() != nil {
			rep.Cancelled = true
			return rep
		}
		t0 := time.Now()
		code, err := job(n)
		at := Attempt{N: n, ExitCode: code, Duration: time.Since(t0)}
		if err != nil {
			at.Err = err.Error()
		}
		if err == nil && code == 0 {
			rep.Succeeded = true
			rep.Attempts = append(rep.Attempts, at)
			if cfg.OnAttempt != nil {
				cfg.OnAttempt(at)
			}
			return rep
		}
		// A failure after cancellation is not retried: the attempt was
		// (or contains) the cancellation itself — a preempted or draining
		// job — and restarting it would fight the shutdown.
		if ctx.Err() != nil {
			rep.Attempts = append(rep.Attempts, at)
			if cfg.OnAttempt != nil {
				cfg.OnAttempt(at)
			}
			rep.Cancelled = true
			return rep
		}
		if n < cfg.MaxAttempts {
			at.Backoff = backoff(cfg, jitter, n)
		}
		// Retry-budget check before committing to the backoff: if the run's
		// elapsed wall-clock plus the sleep we are about to take already
		// exceeds the budget, stop here rather than burn a slot on a retry
		// that was only ever going to be cut short.
		if cfg.RetryBudget > 0 && n < cfg.MaxAttempts &&
			time.Since(start)+at.Backoff >= cfg.RetryBudget {
			at.Backoff = 0
			rep.Attempts = append(rep.Attempts, at)
			if cfg.OnAttempt != nil {
				cfg.OnAttempt(at)
			}
			rep.BudgetExhausted = true
			return rep
		}
		rep.Attempts = append(rep.Attempts, at)
		if cfg.OnAttempt != nil {
			cfg.OnAttempt(at)
		}
		if at.Backoff > 0 && !cfg.sleep(ctx, at.Backoff) {
			rep.Cancelled = true
			return rep
		}
	}
	return rep
}

// backoff computes the post-attempt-n delay: BaseBackoff doubled per retry,
// capped at MaxBackoff, plus jitter in [0, delay/2).
func backoff(cfg Config, jitter *rand.Rand, n int) time.Duration {
	d := cfg.BaseBackoff
	for i := 1; i < n && d < cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > cfg.MaxBackoff {
		d = cfg.MaxBackoff
	}
	return d + time.Duration(jitter.Int63n(int64(d)/2+1))
}

// Command wraps a child-process invocation as a Job: each attempt re-execs
// argv with the given stdio, and the child's exit code is extracted from
// the process state (so an injected CrashExitCode is observable). A child
// that cannot start reports code -1.
func Command(argv []string, stdout, stderr io.Writer) (Job, error) {
	if len(argv) == 0 {
		return nil, errors.New("supervise: empty command")
	}
	return func(attempt int) (int, error) {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		err := cmd.Run()
		if err == nil {
			return 0, nil
		}
		var xerr *exec.ExitError
		if errors.As(err, &xerr) {
			return xerr.ExitCode(), fmt.Errorf("attempt %d: %w", attempt, err)
		}
		return -1, fmt.Errorf("attempt %d: %w", attempt, err)
	}, nil
}
