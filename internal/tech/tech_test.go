package tech

import (
	"strings"
	"testing"
)

func TestBuiltinNodesValidate(t *testing.T) {
	for _, tc := range []*Tech{N45(), N32()} {
		if err := tc.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
	}
}

func TestN45Shape(t *testing.T) {
	n := N45()
	if n.NumLayers() != 6 {
		t.Fatalf("N45 layers = %d, want 6", n.NumLayers())
	}
	if n.Layers[0].Dir != Horizontal {
		t.Error("M1 should be horizontal")
	}
	for i := 1; i < n.NumLayers(); i++ {
		if n.Layers[i].Dir == n.Layers[i-1].Dir {
			t.Errorf("layers %d and %d share a direction", i-1, i)
		}
	}
}

func TestN32Shape(t *testing.T) {
	n := N32()
	if n.NumLayers() != 8 {
		t.Fatalf("N32 layers = %d, want 8", n.NumLayers())
	}
	if len(n.Vias) != 7 {
		t.Fatalf("N32 vias = %d, want 7", len(n.Vias))
	}
}

func TestLayerAccessors(t *testing.T) {
	n := N45()
	if got := n.Layer(2).Name; got != "metal3" {
		t.Errorf("Layer(2) = %q", got)
	}
	l, ok := n.LayerByName("metal6")
	if !ok || l.Index != 5 {
		t.Errorf("LayerByName(metal6) = %+v, %v", l, ok)
	}
	if _, ok := n.LayerByName("metal99"); ok {
		t.Error("LayerByName should miss on unknown name")
	}
}

func TestLayerPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Layer(99) should panic")
		}
	}()
	N45().Layer(99)
}

func TestVia(t *testing.T) {
	n := N45()
	v, ok := n.Via(0)
	if !ok || v.Name != "via12" {
		t.Errorf("Via(0) = %+v, %v", v, ok)
	}
	if _, ok := n.Via(5); ok {
		t.Error("top layer has no via above it")
	}
	if _, ok := n.Via(-1); ok {
		t.Error("Via(-1) should miss")
	}
}

func TestMicrons(t *testing.T) {
	n := N45()
	if got := n.Microns(2000); got != 2.0 {
		t.Errorf("Microns(2000) = %v, want 2.0", got)
	}
}

func TestByName(t *testing.T) {
	if n, err := ByName("n45"); err != nil || n.Node != "45nm" {
		t.Errorf("ByName(n45) = %v, %v", n, err)
	}
	if n, err := ByName("n32"); err != nil || n.Node != "32nm" {
		t.Errorf("ByName(n32) = %v, %v", n, err)
	}
	if _, err := ByName("n7"); err == nil {
		t.Error("ByName(n7) should fail")
	}
}

func TestValidateCatchesBadTech(t *testing.T) {
	mk := func() *Tech { return N45() }

	cases := []struct {
		name    string
		mutate  func(*Tech)
		wantSub string
	}{
		{"zero dbu", func(tc *Tech) { tc.DBU = 0 }, "DBU"},
		{"one layer", func(tc *Tech) { tc.Layers = tc.Layers[:1] }, "at least 2"},
		{"bad index", func(tc *Tech) { tc.Layers[1].Index = 7 }, "index"},
		{"zero pitch", func(tc *Tech) { tc.Layers[0].Pitch = 0 }, "non-physical"},
		{"tracks short", func(tc *Tech) { tc.Layers[0].Width = tc.Layers[0].Pitch }, "exceeds pitch"},
		{"same dir", func(tc *Tech) { tc.Layers[1].Dir = tc.Layers[0].Dir }, "alternate"},
		{"missing via", func(tc *Tech) { tc.Vias = tc.Vias[:3] }, "via rules"},
		{"via order", func(tc *Tech) { tc.Vias[0].Below = 2 }, "below"},
		{"via cut", func(tc *Tech) { tc.Vias[0].CutSize = 0 }, "cut size"},
		{"bad site", func(tc *Tech) { tc.Site.Width = 0 }, "site"},
		{"row off track", func(tc *Tech) { tc.Site.Height++ }, "off-track"},
	}
	for _, c := range cases {
		tc := mk()
		c.mutate(tc)
		err := tc.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestDirString(t *testing.T) {
	if Horizontal.String() != "H" || Vertical.String() != "V" {
		t.Error("Dir.String wrong")
	}
}

// Row height must hold an integer number of M1 tracks on every node so that
// standard-cell pins land on-track — the property Eq. 7/8 legalisation
// depends on.
func TestRowHoldsIntegerTracks(t *testing.T) {
	for _, n := range []*Tech{N45(), N32()} {
		if n.Site.Height%n.Layers[0].Pitch != 0 {
			t.Errorf("%s: row height %d not a multiple of M1 pitch %d",
				n.Name, n.Site.Height, n.Layers[0].Pitch)
		}
	}
}
