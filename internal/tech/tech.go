// Package tech models the technology information the CR&P flow reads from a
// LEF file: routing layers with preferred direction, pitch, width, spacing
// and minimum-area rules; cut (via) layers between them; and the placement
// site geometry that drives legalisation (Eq. 7 and Eq. 8 of the paper).
//
// Two synthetic nodes are provided, N45 and N32, standing in for the 45nm
// and 32nm nodes of the ISPD-2018 benchmarks (Table II). The absolute
// dimensions are not those of any foundry kit; what matters to the flow is
// their internal consistency (tracks per GCell, site/row snapping, via cost
// relative to wire cost), which mirrors the contest LEFs.
package tech

import "fmt"

// Dir is the preferred routing direction of a metal layer.
type Dir uint8

const (
	// Horizontal layers route along X; their tracks are horizontal lines
	// stacked in Y.
	Horizontal Dir = iota
	// Vertical layers route along Y; their tracks are vertical lines
	// stacked in X.
	Vertical
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d == Horizontal {
		return "H"
	}
	return "V"
}

// Layer describes one routing (metal) layer.
type Layer struct {
	Name    string
	Index   int // 0-based routing layer index (0 = lowest, e.g. metal1)
	Dir     Dir
	Pitch   int // track-to-track distance, DBU
	Width   int // default wire width, DBU
	Spacing int // minimum wire-to-wire spacing, DBU
	MinArea int // minimum metal area per shape, DBU^2
	Offset  int // offset of the first track from the die origin, DBU
}

// ViaRule describes the via connecting routing layer Below to Below+1.
type ViaRule struct {
	Name    string
	Below   int // lower routing layer index
	CutSize int // via cut width/height, DBU
}

// Site is the unit placement tile; cell widths are integer multiples of the
// site width, and all legal X positions are multiples of it (Eq. 7).
type Site struct {
	Name   string
	Width  int // DBU
	Height int // DBU; equals the row height (Eq. 8)
}

// Tech aggregates everything the flow needs to know about a node.
type Tech struct {
	Name   string
	Node   string // marketing node name, e.g. "45nm"
	DBU    int    // database units per micron
	Layers []Layer
	Vias   []ViaRule
	Site   Site
}

// NumLayers returns the number of routing layers.
func (t *Tech) NumLayers() int { return len(t.Layers) }

// Layer returns the layer with the given index; it panics when out of range,
// which always indicates a programming error upstream.
func (t *Tech) Layer(i int) Layer {
	if i < 0 || i >= len(t.Layers) {
		panic(fmt.Sprintf("tech: layer index %d out of range [0,%d)", i, len(t.Layers)))
	}
	return t.Layers[i]
}

// LayerByName looks up a routing layer by its LEF name.
func (t *Tech) LayerByName(name string) (Layer, bool) {
	for _, l := range t.Layers {
		if l.Name == name {
			return l, true
		}
	}
	return Layer{}, false
}

// Via returns the via rule below routing layer i+1 (i.e. connecting layer i
// to i+1), and false when i is the top layer.
func (t *Tech) Via(below int) (ViaRule, bool) {
	for _, v := range t.Vias {
		if v.Below == below {
			return v, true
		}
	}
	return ViaRule{}, false
}

// Microns converts a DBU distance to microns for reporting.
func (t *Tech) Microns(dbu int64) float64 { return float64(dbu) / float64(t.DBU) }

// Validate checks the structural invariants the rest of the flow relies on.
// It is called by the constructors and by the LEF reader.
func (t *Tech) Validate() error {
	if t.DBU <= 0 {
		return fmt.Errorf("tech %s: DBU must be positive, got %d", t.Name, t.DBU)
	}
	if len(t.Layers) < 2 {
		return fmt.Errorf("tech %s: need at least 2 routing layers, got %d", t.Name, len(t.Layers))
	}
	for i, l := range t.Layers {
		if l.Index != i {
			return fmt.Errorf("tech %s: layer %q has index %d at position %d", t.Name, l.Name, l.Index, i)
		}
		if l.Pitch <= 0 || l.Width <= 0 || l.Spacing < 0 {
			return fmt.Errorf("tech %s: layer %q has non-physical pitch/width/spacing %d/%d/%d",
				t.Name, l.Name, l.Pitch, l.Width, l.Spacing)
		}
		if l.Width+l.Spacing > l.Pitch {
			return fmt.Errorf("tech %s: layer %q width+spacing %d exceeds pitch %d (tracks would short)",
				t.Name, l.Name, l.Width+l.Spacing, l.Pitch)
		}
		if i > 0 && t.Layers[i-1].Dir == l.Dir {
			return fmt.Errorf("tech %s: layers %q and %q share direction %v; directions must alternate",
				t.Name, t.Layers[i-1].Name, l.Name, l.Dir)
		}
	}
	if len(t.Vias) != len(t.Layers)-1 {
		return fmt.Errorf("tech %s: want %d via rules for %d layers, got %d",
			t.Name, len(t.Layers)-1, len(t.Layers), len(t.Vias))
	}
	for i, v := range t.Vias {
		if v.Below != i {
			return fmt.Errorf("tech %s: via %q below=%d at position %d", t.Name, v.Name, v.Below, i)
		}
		if v.CutSize <= 0 {
			return fmt.Errorf("tech %s: via %q has non-physical cut size %d", t.Name, v.Name, v.CutSize)
		}
	}
	if t.Site.Width <= 0 || t.Site.Height <= 0 {
		return fmt.Errorf("tech %s: site %q has non-physical size %dx%d",
			t.Name, t.Site.Name, t.Site.Width, t.Site.Height)
	}
	if t.Site.Height%t.Layers[0].Pitch != 0 {
		return fmt.Errorf("tech %s: row height %d is not a multiple of the M1 pitch %d (pins would be off-track)",
			t.Name, t.Site.Height, t.Layers[0].Pitch)
	}
	return nil
}

// N45 builds the synthetic 45nm-class node used by crp_test1..crp_test3
// (Table II marks those circuits as 45nm). Six routing layers, M1 horizontal,
// alternating directions, pitch growing on the upper metals.
func N45() *Tech {
	t := &Tech{
		Name: "n45",
		Node: "45nm",
		DBU:  1000,
		Site: Site{Name: "coreN45", Width: 380, Height: 2660},
		Layers: []Layer{
			{Name: "metal1", Index: 0, Dir: Horizontal, Pitch: 380, Width: 140, Spacing: 140, MinArea: 60200},
			{Name: "metal2", Index: 1, Dir: Vertical, Pitch: 380, Width: 140, Spacing: 140, MinArea: 60200},
			{Name: "metal3", Index: 2, Dir: Horizontal, Pitch: 380, Width: 140, Spacing: 140, MinArea: 60200},
			{Name: "metal4", Index: 3, Dir: Vertical, Pitch: 570, Width: 280, Spacing: 280, MinArea: 120400},
			{Name: "metal5", Index: 4, Dir: Horizontal, Pitch: 570, Width: 280, Spacing: 280, MinArea: 120400},
			{Name: "metal6", Index: 5, Dir: Vertical, Pitch: 760, Width: 400, Spacing: 360, MinArea: 240800},
		},
		Vias: []ViaRule{
			{Name: "via12", Below: 0, CutSize: 130},
			{Name: "via23", Below: 1, CutSize: 130},
			{Name: "via34", Below: 2, CutSize: 130},
			{Name: "via45", Below: 3, CutSize: 260},
			{Name: "via56", Below: 4, CutSize: 260},
		},
	}
	mustValidate(t)
	return t
}

// N32 builds the synthetic 32nm-class node used by crp_test4..crp_test10.
// Eight routing layers and a tighter site grid: denser circuits with more
// layer-assignment freedom, which is where CR&P's via savings concentrate.
func N32() *Tech {
	t := &Tech{
		Name: "n32",
		Node: "32nm",
		DBU:  1000,
		Site: Site{Name: "coreN32", Width: 280, Height: 1960},
		Layers: []Layer{
			{Name: "metal1", Index: 0, Dir: Horizontal, Pitch: 280, Width: 100, Spacing: 100, MinArea: 33600},
			{Name: "metal2", Index: 1, Dir: Vertical, Pitch: 280, Width: 100, Spacing: 100, MinArea: 33600},
			{Name: "metal3", Index: 2, Dir: Horizontal, Pitch: 280, Width: 100, Spacing: 100, MinArea: 33600},
			{Name: "metal4", Index: 3, Dir: Vertical, Pitch: 280, Width: 100, Spacing: 100, MinArea: 33600},
			{Name: "metal5", Index: 4, Dir: Horizontal, Pitch: 560, Width: 200, Spacing: 200, MinArea: 67200},
			{Name: "metal6", Index: 5, Dir: Vertical, Pitch: 560, Width: 200, Spacing: 200, MinArea: 67200},
			{Name: "metal7", Index: 6, Dir: Horizontal, Pitch: 980, Width: 400, Spacing: 400, MinArea: 134400},
			{Name: "metal8", Index: 7, Dir: Vertical, Pitch: 980, Width: 400, Spacing: 400, MinArea: 134400},
		},
		Vias: []ViaRule{
			{Name: "via12", Below: 0, CutSize: 100},
			{Name: "via23", Below: 1, CutSize: 100},
			{Name: "via34", Below: 2, CutSize: 100},
			{Name: "via45", Below: 3, CutSize: 200},
			{Name: "via56", Below: 4, CutSize: 200},
			{Name: "via67", Below: 5, CutSize: 400},
			{Name: "via78", Below: 6, CutSize: 400},
		},
	}
	mustValidate(t)
	return t
}

// ByName returns one of the built-in nodes ("n45" or "n32").
func ByName(name string) (*Tech, error) {
	switch name {
	case "n45":
		return N45(), nil
	case "n32":
		return N32(), nil
	default:
		return nil, fmt.Errorf("tech: unknown node %q (want n45 or n32)", name)
	}
}

func mustValidate(t *Tech) {
	if err := t.Validate(); err != nil {
		panic("tech: built-in node invalid: " + err.Error())
	}
}
