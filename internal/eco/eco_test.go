package eco_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eco"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/view"
)

func fixtureSpec() ispd.Spec {
	return ispd.Spec{
		Name: "eco_fixture", Node: "n45", Cells: 120, Nets: 100,
		Utilisation: 0.85, Hotspots: 2, IOFraction: 0.03, Seed: 7,
	}
}

func fixtureDesign(tb testing.TB) *db.Design {
	tb.Helper()
	d, err := ispd.Generate(fixtureSpec())
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// TestParseStrict pins the malformed-delta contract: unknown fields,
// trailing garbage and broken JSON are structured rejections before any
// design is touched.
func TestParseStrict(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unknown field", `{"moves":[],"bogus":1}`},
		{"trailing garbage", `{"moves":[]} {"again":true}`},
		{"broken json", `{"moves":[`},
		{"wrong type", `{"moves":"not-a-list"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := eco.Parse([]byte(tc.in)); err == nil {
				t.Fatalf("Parse accepted %q", tc.in)
			} else if !strings.Contains(err.Error(), "malformed delta") {
				t.Fatalf("rejection %v is not the structured malformed-delta error", err)
			}
		})
	}
	dl, err := eco.Parse([]byte(`{"design":"x","moves":[{"cell":"c1","x":1,"y":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if dl.Design != "x" || len(dl.Moves) != 1 {
		t.Fatalf("parsed delta %+v lost fields", dl)
	}
}

// TestCanonicalOrderIndependent checks the cache-key foundation: two
// orderings of the same edits canonicalize to identical bytes.
func TestCanonicalOrderIndependent(t *testing.T) {
	a := &eco.Delta{
		Moves:   []eco.CellMove{{Cell: "b", X: 1, Y: 2}, {Cell: "a", X: 3, Y: 4}},
		Removes: []string{"z", "y"},
	}
	b := &eco.Delta{
		Moves:   []eco.CellMove{{Cell: "a", X: 3, Y: 4}, {Cell: "b", X: 1, Y: 2}},
		Removes: []string{"y", "z"},
	}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical forms differ:\n%s\n%s", ca, cb)
	}
	if !dequal(t, a, mustParse(t, ca)) {
		t.Fatal("canonical form does not round-trip")
	}
}

func mustParse(t *testing.T, data []byte) *eco.Delta {
	t.Helper()
	dl, err := eco.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return dl
}

// dequal compares deltas up to canonical ordering.
func dequal(t *testing.T, a, b *eco.Delta) bool {
	t.Helper()
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ca, cb)
}

// TestValidateRejections drives every class of inadmissible edit through
// Validate and checks the aggregated, structured rejection.
func TestValidateRejections(t *testing.T) {
	d := fixtureDesign(t)
	var movable *db.Cell
	for _, c := range d.Cells {
		if !c.Fixed && len(c.Nets) > 0 {
			movable = c
			break
		}
	}
	if movable == nil {
		t.Fatal("fixture has no movable connected cell")
	}
	cases := []struct {
		name string
		dl   eco.Delta
		want string
	}{
		{"wrong design", eco.Delta{Design: "other"}, "targets design"},
		{"unknown move", eco.Delta{Moves: []eco.CellMove{{Cell: "nope", X: 0, Y: 0}}}, "does not exist"},
		{"duplicate move", eco.Delta{Moves: []eco.CellMove{
			{Cell: movable.Name, X: int(movable.Pos.X), Y: int(movable.Pos.Y)},
			{Cell: movable.Name, X: int(movable.Pos.X), Y: int(movable.Pos.Y)},
		}}, "moved twice"},
		{"off-die move", eco.Delta{Moves: []eco.CellMove{{Cell: movable.Name, X: -1 << 30, Y: 0}}}, movable.Name},
		{"unknown removed", eco.Delta{Removes: []string{"ghost"}}, "does not exist"},
		{"unknown macro add", eco.Delta{Adds: []eco.AddCell{{Name: "new0", Macro: "NOPE", X: 0, Y: 0}}}, "unknown macro"},
		{"existing add", eco.Delta{Adds: []eco.AddCell{{Name: movable.Name, Macro: d.Macros[0].Name, X: 0, Y: 0}}}, "already exists"},
		{"unknown net", eco.Delta{Nets: []eco.NetChange{{Net: "no_such_net", Pins: []eco.PinRef{}}}}, "does not exist"},
		{"remove without rewire", eco.Delta{Removes: []string{movable.Name}}, "rewire it in the same delta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.dl.Validate(d)
			if err == nil {
				t.Fatal("Validate accepted an inadmissible delta")
			}
			var ve *eco.ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("rejection %T is not a *ValidationError", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestGenerateDeltaDeterministic pins the seeded generator: same design,
// size and seed yield byte-identical canonical deltas, and the result
// validates against the design it was generated from.
func TestGenerateDeltaDeterministic(t *testing.T) {
	d1 := fixtureDesign(t)
	d2 := fixtureDesign(t)
	a, err := eco.GenerateDelta(d1, 5, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eco.GenerateDelta(d2, 5, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !dequal(t, a, b) {
		t.Fatal("same seed generated different deltas")
	}
	if len(a.Moves) != 5 || len(a.Nets) != 2 {
		t.Fatalf("generator produced %d moves / %d rewires, want 5 / 2", len(a.Moves), len(a.Nets))
	}
	if err := a.Validate(d1); err != nil {
		t.Fatalf("generated delta does not validate: %v", err)
	}
	c, err := eco.GenerateDelta(fixtureDesign(t), 5, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	if dequal(t, a, c) {
		t.Fatal("different seeds generated identical deltas")
	}
}

// TestTrackerGrowth exercises the dirty-region mechanics the convergence
// ladder is built on: halo inflation, coalescing, the grew signal, Widen
// and CoversDie.
func TestTrackerGrowth(t *testing.T) {
	die := geom.R(0, 0, 1000, 1000)
	tr := eco.NewTracker(die, 10)
	if !tr.Add(geom.R(100, 100, 120, 120)) {
		t.Fatal("first Add reported no growth")
	}
	if tr.Count() != 1 {
		t.Fatalf("count %d after one Add", tr.Count())
	}
	// Halo-inflated to [90,130]²; a contained rect must not grow coverage.
	if tr.Add(geom.R(100, 100, 110, 110)) {
		t.Fatal("contained rect reported growth")
	}
	if !tr.Overlaps(geom.R(85, 85, 95, 95)) {
		t.Fatal("halo-inflated region misses an overlapping rect")
	}
	if tr.Overlaps(geom.R(500, 500, 510, 510)) {
		t.Fatal("far rect reported as dirty")
	}
	// Overlapping add coalesces instead of accumulating.
	if !tr.Add(geom.R(125, 100, 160, 120)) {
		t.Fatal("overlapping extension reported no growth")
	}
	if tr.Count() != 1 {
		t.Fatalf("coalescing kept %d rects, want 1", tr.Count())
	}
	// Disjoint add becomes a second rect; Widen can merge them.
	if !tr.Add(geom.R(400, 400, 420, 420)) {
		t.Fatal("disjoint add reported no growth")
	}
	if tr.Count() != 2 {
		t.Fatalf("count %d after disjoint add", tr.Count())
	}
	area0 := tr.Area()
	tr.Widen(50)
	if tr.Area() <= area0 {
		t.Fatal("Widen did not grow the region")
	}
	if tr.CoversDie() {
		t.Fatal("region covers the die prematurely")
	}
	tr.Widen(2000)
	if !tr.CoversDie() {
		t.Fatal("die-sized widen does not report CoversDie")
	}
}

// ecoFuzzBase is the shared fuzz fixture: a routed session built once and
// checked against after every apply→revert cycle.
var ecoFuzzBase struct {
	once sync.Once
	v    *view.View
	st0  view.State
	pins [][]db.PinRef
}

// FuzzDeltaApply is the transactional-identity fuzz: any generated delta,
// applied through view.Txn.ApplyDelta and then discarded, must leave the
// base byte-identical — positions, routes, demand and net connectivity.
func FuzzDeltaApply(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2))
	f.Add(int64(99), uint8(0), uint8(3))
	f.Add(int64(7), uint8(12), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nMoves, nNets uint8) {
		ecoFuzzBase.once.Do(func() {
			spec := fixtureSpec()
			spec.Name, spec.Cells, spec.Nets, spec.Seed = "eco_fuzz", 90, 70, 11
			d, err := ispd.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			g := grid.New(d, grid.DefaultParams())
			r := global.New(d, g, global.DefaultConfig())
			r.RouteAll()
			ecoFuzzBase.v = view.New(d, g, r)
			ecoFuzzBase.st0 = ecoFuzzBase.v.Materialize()
			ecoFuzzBase.pins = netPins(d)
		})
		v := ecoFuzzBase.v
		d := v.Design()

		k := int(nMoves % 13)
		m := int(nNets % 5)
		dl, err := eco.GenerateDelta(d, k, m, seed)
		if err != nil {
			t.Skip("generator found no legal edit for this size/seed")
		}
		if err := dl.Validate(d); err != nil {
			t.Fatalf("generated delta does not validate: %v", err)
		}
		ops, err := dl.Resolve(d)
		if err != nil {
			t.Fatalf("resolving generated delta: %v", err)
		}

		txn := v.Begin(v.Version())
		if err := txn.ApplyDelta(ops); err != nil {
			t.Fatalf("ApplyDelta rejected a validated delta: %v", err)
		}
		if err := txn.Check(); err != nil {
			t.Fatalf("transaction failed Check: %v", err)
		}
		txn.Discard()

		if st := v.Materialize(); !reflect.DeepEqual(ecoFuzzBase.st0, st) {
			t.Fatal("base state differs after ApplyDelta+Discard")
		}
		if pins := netPins(d); !reflect.DeepEqual(ecoFuzzBase.pins, pins) {
			t.Fatal("net connectivity differs after ApplyDelta+Discard")
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("design invalid after Discard: %v", err)
		}
	})
}

func netPins(d *db.Design) [][]db.PinRef {
	pins := make([][]db.PinRef, len(d.Nets))
	for i, n := range d.Nets {
		pins[i] = append([]db.PinRef(nil), n.Pins...)
	}
	return pins
}
