package eco

import "github.com/crp-eda/crp/internal/geom"

// Tracker maintains the ECO dirty region: a set of halo-inflated rectangles
// covering everything a delta (and the re-run's own moves) perturbed. It is
// the same interaction-rect idea internal/shard partitions by — a cell whose
// legalizer window rectangle is disjoint from the dirty region cannot have
// been affected by the edit — inverted: instead of splitting independent
// work, it scopes which cells are re-labeling candidates.
//
// The region only ever grows. Add reports whether coverage actually grew,
// which is the convergence ladder's early-exit signal: when a whole re-label
// round's moves land inside the existing region, the dirty frontier has
// stopped expanding.
type Tracker struct {
	die   geom.Rect
	halo  int // DBU inflation applied to every added rect
	rects []geom.Rect
}

// NewTracker creates an empty tracker over the die with the given halo
// (DBU added on every side of each added rect).
func NewTracker(die geom.Rect, haloDBU int) *Tracker {
	return &Tracker{die: die, halo: haloDBU}
}

// Add unions r (halo-inflated, die-clipped) into the dirty region,
// coalescing overlapping rectangles, and reports whether coverage grew.
func (t *Tracker) Add(r geom.Rect) bool {
	r = r.Expand(t.halo).Intersect(t.die)
	if r.Empty() {
		return false
	}
	for _, have := range t.rects {
		if have.ContainsRect(r) {
			return false
		}
	}
	// Coalesce with bounded waste: union r into an overlapping rect only when
	// the bounding box is not much bigger than the parts (union ≤ 1.5× the
	// summed areas). Unconditional bounding-box merging snowballs — two small
	// perturbations on opposite sides of the die would coalesce into a rect
	// covering everything between them, and a few rounds of that marks the
	// whole die dirty. Bounded merging keeps the region an accurate union of
	// genuinely-local patches; rects may overlap slightly, which only makes
	// the region conservative, never too small.
	for {
		merged := false
		keep := t.rects[:0]
		for _, have := range t.rects {
			if have.Overlaps(r) && mergeOK(r, have) {
				r = r.Union(have)
				merged = true
			} else {
				keep = append(keep, have)
			}
		}
		t.rects = keep
		if !merged {
			break
		}
	}
	t.rects = append(t.rects, r)
	t.capRects()
	return true
}

// mergeOK bounds coalescing waste: the bounding box of a and b may be at
// most 1.5× their summed areas.
func mergeOK(a, b geom.Rect) bool {
	return 2*a.Union(b).Area() <= 3*(a.Area()+b.Area())
}

// maxTrackerRects caps the rect list so Overlaps stays cheap when called per
// cell per round; past the cap the pair whose bounding box wastes the least
// area is merged unconditionally.
const maxTrackerRects = 48

func (t *Tracker) capRects() {
	for len(t.rects) > maxTrackerRects {
		bi, bj, best := 0, 1, int64(-1)
		for i := 0; i < len(t.rects); i++ {
			for j := i + 1; j < len(t.rects); j++ {
				waste := t.rects[i].Union(t.rects[j]).Area() - t.rects[i].Area() - t.rects[j].Area()
				if best < 0 || waste < best {
					bi, bj, best = i, j, waste
				}
			}
		}
		t.rects[bi] = t.rects[bi].Union(t.rects[bj])
		t.rects = append(t.rects[:bj], t.rects[bj+1:]...)
	}
}

// Overlaps reports whether r intersects the dirty region — the scope
// predicate the local re-label rung hands to crp.Config.Scope.
func (t *Tracker) Overlaps(r geom.Rect) bool {
	for _, have := range t.rects {
		if have.Overlaps(r) {
			return true
		}
	}
	return false
}

// Widen grows the region for the ladder's second rung: every tracked rect
// is inflated by extra DBU (die-clipped), and the halo for future adds grows
// by the same amount.
func (t *Tracker) Widen(extra int) {
	t.halo += extra
	old := t.rects
	t.rects = nil
	save := t.halo
	t.halo = extra // re-Add inflates each existing rect by exactly extra
	for _, r := range old {
		t.Add(r)
	}
	t.halo = save
}

// CoversDie reports whether the dirty region has grown to the whole die —
// at that point local scoping buys nothing and the ladder should fall back
// to a full run.
func (t *Tracker) CoversDie() bool {
	for _, r := range t.rects {
		if r.ContainsRect(t.die) {
			return true
		}
	}
	return false
}

// Count returns the number of tracked dirty rectangles.
func (t *Tracker) Count() int { return len(t.rects) }

// Area returns the summed area of the tracked rects in DBU² — an upper
// bound on dirty coverage, since bounded coalescing can keep overlapping
// rects separate.
func (t *Tracker) Area() int64 {
	var a int64
	for _, r := range t.rects {
		a += r.Area()
	}
	return a
}
