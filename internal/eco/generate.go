package eco

import (
	"fmt"
	"math/rand"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
)

// GenerateDelta produces a seeded, reproducible small edit against the
// design's current placement: k cells moved to nearby free sites and m nets
// reconnected (one terminal swapped to another cell's pin). The same
// (design, k, m, seed) always yields the same delta — benchgen's -eco-delta
// mode, the differential tests, and the ECO bench all share this generator.
//
// Move targets are chosen so the batch is applicable atomically: each picked
// span is checked free against current occupancy and against the spans other
// picks in the batch already claimed. The generator is best-effort on dense
// designs but errors if it cannot find a single requested edit.
func GenerateDelta(d *db.Design, k, m int, seed int64) (*Delta, error) {
	rng := rand.New(rand.NewSource(seed))
	dl := &Delta{Design: d.Name}

	var movable []int32
	for _, c := range d.Cells {
		if !c.Fixed {
			movable = append(movable, c.ID)
		}
	}
	if k > 0 && len(movable) == 0 {
		return nil, fmt.Errorf("eco: design %q has no movable cells", d.Name)
	}

	siteW := d.Tech.Site.Width
	claimed := map[int32][]geom.Interval{}
	picked := map[int32]bool{}
	for attempts := 0; len(dl.Moves) < k && attempts < k*60+60; attempts++ {
		c := d.Cells[movable[rng.Intn(len(movable))]]
		if picked[c.ID] {
			continue
		}
		ri := c.Row + int32(rng.Intn(5)-2) // within ±2 rows of home
		if ri < 0 || int(ri) >= len(d.Rows) {
			continue
		}
		row := &d.Rows[ri]
		span := row.Span(siteW)
		sites := d.FreeSitesIn(ri, span.Lo, span.Hi, c.Macro.Width, map[int32]bool{c.ID: true})
		var usable []int
		for _, x := range sites {
			if ri == c.Row && x == c.Pos.X {
				continue
			}
			iv := geom.Iv(x, x+c.Macro.Width)
			clash := false
			for _, cl := range claimed[ri] {
				if cl.Overlaps(iv) {
					clash = true
					break
				}
			}
			if !clash {
				usable = append(usable, x)
			}
		}
		if len(usable) == 0 {
			continue
		}
		x := usable[rng.Intn(len(usable))]
		picked[c.ID] = true
		claimed[ri] = append(claimed[ri], geom.Iv(x, x+c.Macro.Width))
		dl.Moves = append(dl.Moves, CellMove{Cell: c.Name, X: x, Y: row.Y})
	}
	if k > 0 && len(dl.Moves) == 0 {
		return nil, fmt.Errorf("eco: no free site found for any of %d requested moves", k)
	}

	rewiredNet := map[int32]bool{}
	for attempts := 0; len(dl.Nets) < m && attempts < m*60+60; attempts++ {
		n := d.Nets[rng.Intn(len(d.Nets))]
		if rewiredNet[n.ID] || len(n.Pins) < 2 {
			continue
		}
		idx := rng.Intn(len(n.Pins))
		nc := d.Cells[rng.Intn(len(d.Cells))]
		if len(nc.Macro.Pins) == 0 {
			continue
		}
		pi := int32(rng.Intn(len(nc.Macro.Pins)))
		repl := db.PinRef{Cell: nc.ID, Pin: pi}
		dup := false
		for i, pr := range n.Pins {
			if i != idx && pr == repl {
				dup = true
				break
			}
		}
		if dup || n.Pins[idx] == repl {
			continue
		}
		pins := make([]PinRef, len(n.Pins))
		for i, pr := range n.Pins {
			src := pr
			if i == idx {
				src = repl
			}
			c := d.Cells[src.Cell]
			pins[i] = PinRef{Cell: c.Name, Pin: c.Macro.Pins[src.Pin].Name}
		}
		rewiredNet[n.ID] = true
		dl.Nets = append(dl.Nets, NetChange{Net: n.Name, Pins: pins})
	}
	if m > 0 && len(dl.Nets) == 0 {
		return nil, fmt.Errorf("eco: no reconnectable net found for any of %d requested rewirings", m)
	}
	return dl, nil
}
