// Package eco owns the incremental-rerun (ECO) delta model: parsing and
// validating externally supplied design edits, resolving them onto a live
// design, tracking the dirty region they perturb, and deciding which rung of
// the convergence ladder a re-run needs (local re-label → widened halo →
// full-run fallback).
//
// A Delta names cells, nets and pins symbolically so it survives across
// processes and re-generated designs; internal/view applies the resolved
// form (view.DeltaOps) transactionally. Structural edits — added or removed
// cells — change the ID space (cell ID == slice index is a db invariant), so
// they cannot ride a transaction: ApplyStructural rebuilds the design and
// the flow falls back to a full run, recorded in Result.Degradations.
package eco

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/view"
)

// PinRef names one net terminal: a cell instance and a pin of its macro.
type PinRef struct {
	Cell string `json:"cell"`
	Pin  string `json:"pin"`
}

// CellMove relocates an existing cell to a new lower-left corner (DBU).
type CellMove struct {
	Cell string `json:"cell"`
	X    int    `json:"x"`
	Y    int    `json:"y"`
}

// NetChange replaces a net's cell-pin terminal list (IO terminals are kept).
type NetChange struct {
	Net  string   `json:"net"`
	Pins []PinRef `json:"pins"`
}

// AddCell instantiates a new cell of an existing macro (structural).
type AddCell struct {
	Name  string `json:"name"`
	Macro string `json:"macro"`
	X     int    `json:"x"`
	Y     int    `json:"y"`
}

// Delta is one ECO: a batch of edits against a named base design. All
// references are by name so a delta can be generated against one process's
// design and applied in another.
type Delta struct {
	// Design, when set, must match the base design's name — a cheap guard
	// against applying a delta to the wrong parent.
	Design  string      `json:"design,omitempty"`
	Moves   []CellMove  `json:"moves,omitempty"`
	Nets    []NetChange `json:"nets,omitempty"`
	Adds    []AddCell   `json:"adds,omitempty"`
	Removes []string    `json:"removes,omitempty"`
}

// Structural reports whether the delta adds or removes cells — the edits
// that change the cell-ID space and force a design rebuild plus full re-run.
func (dl *Delta) Structural() bool { return len(dl.Adds)+len(dl.Removes) > 0 }

// Empty reports a delta with no edits at all.
func (dl *Delta) Empty() bool {
	return len(dl.Moves)+len(dl.Nets)+len(dl.Adds)+len(dl.Removes) == 0
}

// Parse decodes a delta strictly: unknown fields and trailing garbage are
// rejected, so a malformed edit fails loudly before any design is touched.
func Parse(data []byte) (*Delta, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var dl Delta
	if err := dec.Decode(&dl); err != nil {
		return nil, fmt.Errorf("eco: malformed delta: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("eco: malformed delta: trailing data after JSON value")
	}
	return &dl, nil
}

// Canonical returns the delta in canonical form — edits sorted by name,
// compact JSON — so identical edits hash identically regardless of how the
// caller ordered them. The service's ECO cache key is built on this.
func (dl *Delta) Canonical() ([]byte, error) {
	c := Delta{
		Design:  dl.Design,
		Moves:   append([]CellMove(nil), dl.Moves...),
		Nets:    append([]NetChange(nil), dl.Nets...),
		Adds:    append([]AddCell(nil), dl.Adds...),
		Removes: append([]string(nil), dl.Removes...),
	}
	sort.Slice(c.Moves, func(a, b int) bool { return c.Moves[a].Cell < c.Moves[b].Cell })
	sort.Slice(c.Nets, func(a, b int) bool { return c.Nets[a].Net < c.Nets[b].Net })
	sort.Slice(c.Adds, func(a, b int) bool { return c.Adds[a].Name < c.Adds[b].Name })
	sort.Strings(c.Removes)
	return json.Marshal(&c)
}

// ValidationError aggregates every reason a delta is inadmissible, so the
// submitter sees the full list in one structured rejection.
type ValidationError struct {
	Reasons []string
}

func (e *ValidationError) Error() string {
	return "eco: invalid delta: " + strings.Join(e.Reasons, "; ")
}

// Validate checks the delta against a base design without mutating anything:
// every name must resolve, targets must be geometrically legal, edits must
// not repeat, and a removed cell must not leave dangling terminals (every
// net touching it has to be rewired in the same delta). Occupancy conflicts
// between batched moves are intentionally left to the transactional apply,
// which rejects the whole batch atomically.
func (dl *Delta) Validate(d *db.Design) error {
	var reasons []string
	bad := func(format string, args ...any) { reasons = append(reasons, fmt.Sprintf(format, args...)) }

	if dl.Design != "" && dl.Design != d.Name {
		bad("delta targets design %q, base is %q", dl.Design, d.Name)
	}

	removed := map[string]bool{}
	for _, name := range dl.Removes {
		if removed[name] {
			bad("cell %q removed twice", name)
			continue
		}
		removed[name] = true
		c, ok := d.CellByName(name)
		if !ok {
			bad("removed cell %q does not exist", name)
		} else if c.Fixed {
			bad("removed cell %q is fixed", name)
		}
	}

	added := map[string]*db.Macro{}
	for _, a := range dl.Adds {
		if _, dup := added[a.Name]; dup {
			bad("cell %q added twice", a.Name)
			continue
		}
		if _, exists := d.CellByName(a.Name); exists {
			bad("added cell %q already exists", a.Name)
			continue
		}
		m, ok := d.MacroByName(a.Macro)
		if !ok {
			bad("added cell %q uses unknown macro %q", a.Name, a.Macro)
			continue
		}
		added[a.Name] = m
		probe := db.Cell{Name: a.Name, Macro: m}
		if err := d.CheckLegal(&probe, geom.Pt(a.X, a.Y)); err != nil {
			bad("added cell %q: %v", a.Name, err)
		}
	}

	movedCells := map[string]bool{}
	for _, mv := range dl.Moves {
		if movedCells[mv.Cell] {
			bad("cell %q moved twice", mv.Cell)
			continue
		}
		movedCells[mv.Cell] = true
		if removed[mv.Cell] {
			bad("cell %q both moved and removed", mv.Cell)
			continue
		}
		c, ok := d.CellByName(mv.Cell)
		if !ok {
			bad("moved cell %q does not exist", mv.Cell)
			continue
		}
		if c.Fixed {
			bad("moved cell %q is fixed", mv.Cell)
			continue
		}
		if err := d.CheckLegal(c, geom.Pt(mv.X, mv.Y)); err != nil {
			bad("moved cell %q: %v", mv.Cell, err)
		}
	}

	// pinMacro resolves the macro a named terminal cell would have after the
	// delta, admitting added cells and rejecting removed ones.
	pinMacro := func(cell string) (*db.Macro, error) {
		if removed[cell] {
			return nil, fmt.Errorf("cell %q is removed by this delta", cell)
		}
		if m, ok := added[cell]; ok {
			return m, nil
		}
		if c, ok := d.CellByName(cell); ok {
			return c.Macro, nil
		}
		return nil, fmt.Errorf("cell %q does not exist", cell)
	}
	rewired := map[string]bool{}
	for _, nc := range dl.Nets {
		if rewired[nc.Net] {
			bad("net %q rewired twice", nc.Net)
			continue
		}
		rewired[nc.Net] = true
		var net *db.Net
		for _, n := range d.Nets {
			if n.Name == nc.Net {
				net = n
				break
			}
		}
		if net == nil {
			bad("rewired net %q does not exist", nc.Net)
			continue
		}
		seen := map[PinRef]bool{}
		for _, pr := range nc.Pins {
			if seen[pr] {
				bad("net %q lists terminal %s/%s twice", nc.Net, pr.Cell, pr.Pin)
				continue
			}
			seen[pr] = true
			m, err := pinMacro(pr.Cell)
			if err != nil {
				bad("net %q: %v", nc.Net, err)
				continue
			}
			if pinIndex(m, pr.Pin) < 0 {
				bad("net %q: macro %q of cell %q has no pin %q", nc.Net, m.Name, pr.Cell, pr.Pin)
			}
		}
		if len(nc.Pins)+len(net.IOs) < 2 {
			bad("net %q would keep only %d terminals", nc.Net, len(nc.Pins)+len(net.IOs))
		}
	}

	// A removed cell's nets must all be rewired away from it, or the rebuild
	// would leave dangling pin references.
	for name := range removed {
		c, ok := d.CellByName(name)
		if !ok {
			continue
		}
		for _, nid := range c.Nets {
			if !rewired[d.Nets[nid].Name] {
				bad("net %q still references removed cell %q: rewire it in the same delta", d.Nets[nid].Name, name)
			}
		}
	}

	if len(reasons) == 0 {
		return nil
	}
	sort.Strings(reasons)
	return &ValidationError{Reasons: reasons}
}

func pinIndex(m *db.Macro, name string) int32 {
	for i := range m.Pins {
		if m.Pins[i].Name == name {
			return int32(i)
		}
	}
	return -1
}

// Resolve maps a validated non-structural delta onto design IDs, producing
// the transactional form view.Txn.ApplyDelta consumes.
func (dl *Delta) Resolve(d *db.Design) (view.DeltaOps, error) {
	if dl.Structural() {
		return view.DeltaOps{}, fmt.Errorf("eco: structural delta cannot be resolved transactionally; use ApplyStructural")
	}
	ops := view.DeltaOps{Moves: make(map[int32]geom.Point, len(dl.Moves))}
	for _, mv := range dl.Moves {
		c, ok := d.CellByName(mv.Cell)
		if !ok {
			return view.DeltaOps{}, fmt.Errorf("eco: moved cell %q does not exist", mv.Cell)
		}
		ops.Moves[c.ID] = geom.Pt(mv.X, mv.Y)
	}
	netByName := make(map[string]*db.Net, len(d.Nets))
	for _, n := range d.Nets {
		netByName[n.Name] = n
	}
	for _, nc := range dl.Nets {
		n, ok := netByName[nc.Net]
		if !ok {
			return view.DeltaOps{}, fmt.Errorf("eco: rewired net %q does not exist", nc.Net)
		}
		pins := make([]db.PinRef, 0, len(nc.Pins))
		for _, pr := range nc.Pins {
			c, ok := d.CellByName(pr.Cell)
			if !ok {
				return view.DeltaOps{}, fmt.Errorf("eco: net %q terminal cell %q does not exist", nc.Net, pr.Cell)
			}
			pi := pinIndex(c.Macro, pr.Pin)
			if pi < 0 {
				return view.DeltaOps{}, fmt.Errorf("eco: net %q: macro %q has no pin %q", nc.Net, c.Macro.Name, pr.Pin)
			}
			pins = append(pins, db.PinRef{Cell: c.ID, Pin: pi})
		}
		ops.Nets = append(ops.Nets, view.NetChange{Net: n.ID, Pins: pins})
	}
	return ops, nil
}

// ApplyToDesign applies a validated non-structural delta directly to an
// unrouted design — the path scratch-reference runs and benches use to build
// "the edited design" before a from-scratch flow. Live ECO re-runs go
// through view.Txn.ApplyDelta instead.
func ApplyToDesign(d *db.Design, dl *Delta) error {
	if dl.Structural() {
		return fmt.Errorf("eco: structural delta: use ApplyStructural")
	}
	if err := dl.Validate(d); err != nil {
		return err
	}
	ops, err := dl.Resolve(d)
	if err != nil {
		return err
	}
	if len(ops.Moves) > 0 {
		if err := d.MoveCells(ops.Moves); err != nil {
			return err
		}
	}
	sort.Slice(ops.Nets, func(a, b int) bool { return ops.Nets[a].Net < ops.Nets[b].Net })
	for _, nc := range ops.Nets {
		if _, err := d.ReconnectNet(nc.Net, nc.Pins); err != nil {
			return err
		}
	}
	return nil
}

// ApplyStructural rebuilds the design with the full delta applied — removed
// cells dropped, added cells appended (re-IDing everything after them), and
// moves/rewirings folded in. The result is a fresh, validated design with
// clean history sets; the flow runs it from scratch (the full-run fallback
// rung of the convergence ladder).
func ApplyStructural(base *db.Design, dl *Delta) (*db.Design, error) {
	if err := dl.Validate(base); err != nil {
		return nil, err
	}
	removed := map[string]bool{}
	for _, name := range dl.Removes {
		removed[name] = true
	}
	moveTo := map[string]geom.Point{}
	for _, mv := range dl.Moves {
		moveTo[mv.Cell] = geom.Pt(mv.X, mv.Y)
	}

	var cells []*db.Cell
	newID := map[string]int32{}
	for _, c := range base.Cells {
		if removed[c.Name] {
			continue
		}
		nc := &db.Cell{
			ID:     int32(len(cells)),
			Name:   c.Name,
			Macro:  c.Macro,
			Pos:    c.Pos,
			Orient: c.Orient,
			Fixed:  c.Fixed,
		}
		if pos, ok := moveTo[c.Name]; ok {
			nc.Pos = pos
			if row, ok := base.RowAt(pos.Y); ok {
				nc.Orient = row.Orient
			}
		}
		newID[nc.Name] = nc.ID
		cells = append(cells, nc)
	}
	for _, a := range dl.Adds {
		m, _ := base.MacroByName(a.Macro)
		nc := &db.Cell{
			ID:    int32(len(cells)),
			Name:  a.Name,
			Macro: m,
			Pos:   geom.Pt(a.X, a.Y),
		}
		if row, ok := base.RowAt(a.Y); ok {
			nc.Orient = row.Orient
		}
		newID[nc.Name] = nc.ID
		cells = append(cells, nc)
	}

	rewire := map[string][]PinRef{}
	for _, nc := range dl.Nets {
		rewire[nc.Net] = nc.Pins
	}
	var nets []*db.Net
	for _, n := range base.Nets {
		nn := &db.Net{
			ID:   int32(len(nets)),
			Name: n.Name,
			IOs:  append([]db.IOPin(nil), n.IOs...),
		}
		src := n.Pins
		if pins, ok := rewire[n.Name]; ok {
			src = nil
			for _, pr := range pins {
				id, ok := newID[pr.Cell]
				if !ok {
					return nil, fmt.Errorf("eco: net %q terminal cell %q missing after rebuild", n.Name, pr.Cell)
				}
				src = append(src, db.PinRef{Cell: id, Pin: pinIndex(cells[id].Macro, pr.Pin)})
			}
		} else {
			remapped := make([]db.PinRef, 0, len(src))
			for _, pr := range src {
				name := base.Cells[pr.Cell].Name
				id, ok := newID[name]
				if !ok {
					// Unreachable after Validate: a net touching a removed
					// cell must have been rewired.
					return nil, fmt.Errorf("eco: net %q references removed cell %q", n.Name, name)
				}
				remapped = append(remapped, db.PinRef{Cell: id, Pin: pr.Pin})
			}
			src = remapped
		}
		nn.Pins = src
		nets = append(nets, nn)
	}

	rows := append([]db.Row(nil), base.Rows...)
	obs := append([]db.Obstacle(nil), base.Obs...)
	d2, err := db.New(base.Name, base.Tech, base.Die, rows, base.Macros, cells, nets, obs)
	if err != nil {
		return nil, fmt.Errorf("eco: rebuilt design invalid: %w", err)
	}
	return d2, nil
}
