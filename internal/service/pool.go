package service

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/supervise"
)

// pool is the bounded worker set: Config.Workers goroutines, each claiming
// one queued job at a time and driving it to a terminal state (or back
// into the queue on preemption). Every job attempt runs under supervise —
// a crashed attempt restarts from the job's last checkpoint with backoff,
// so the retry story inside the daemon is the same self-healing loop
// cmd/crpd has always offered around it.
type pool struct {
	cfg   Config
	store *store
	wg    sync.WaitGroup
}

func newPool(cfg Config, st *store) *pool {
	return &pool{cfg: cfg, store: st}
}

func (p *pool) start() {
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// wait blocks until every worker has exited (drain must have begun) or
// ctx expires.
func (p *pool) wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain timed out: %w", ctx.Err())
	}
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		j := p.store.next()
		if j == nil {
			return // draining
		}
		p.runJob(j)
	}
}

// runJob drives one claimed job: supervised attempts until success, the
// retry cap, or a preemption/cancellation request.
func (p *pool) runJob(j *Job) {
	actx, acancel := context.WithCancel(context.Background())
	defer acancel()
	j.mu.Lock()
	j.preempt = acancel
	j.mu.Unlock()
	j.hub.notify()

	var lastErr string
	rep := supervise.RunCtx(actx, supervise.Config{
		MaxAttempts: p.cfg.RetryCap,
		BaseBackoff: p.cfg.RetryBackoff,
		MaxBackoff:  8 * p.cfg.RetryBackoff,
		RetryBudget: p.cfg.RetryBudget,
		JitterSeed:  int64(j.Seq),
		OnAttempt: func(at supervise.Attempt) {
			if at.Err != "" {
				lastErr = fmt.Sprintf("attempt %d exited %d: %s", at.N, at.ExitCode, at.Err)
			}
		},
	}, func(n int) (int, error) {
		j.mu.Lock()
		j.attempts++
		attempt := j.attempts
		j.mu.Unlock()
		p.publish(j, Event{Kind: "attempt", Attempt: attempt})
		code := p.runAttempt(actx, j, attempt)
		if code == ExitFenced {
			// The attempt's durable writes were refused by the lease
			// fence: this node is a zombie for the job. Stop retrying —
			// whoever stole the lease owns the work now.
			if len(p.cfg.Exec) > 0 {
				// In-process fences count themselves; a child process
				// cannot reach the parent's counters, so its fenced exit
				// is counted here.
				p.store.fencedWrites.Add(1)
			}
			p.store.markLeaseLost(j)
		}
		if code != 0 {
			return code, fmt.Errorf("worker attempt %d failed (code %d)", attempt, code)
		}
		return 0, nil
	})

	if p.store.isHalted() {
		return // a dead node performs no transitions
	}
	j.mu.Lock()
	lost := j.leaseLost
	j.mu.Unlock()
	if lost {
		p.store.detach(j)
		return
	}
	switch {
	case rep.Succeeded:
		p.publish(j, Event{Kind: "done"})
		p.store.release(j, StateDone, "")
	case rep.BudgetExhausted:
		// The retry wall-clock budget ran out mid-failure: terminal, and
		// distinct from the attempt-count cap so callers can tell the two
		// exhaustions apart.
		p.publish(j, Event{Kind: "retries_exhausted", Detail: lastErr})
		p.store.release(j, StateRetriesExhausted, lastErr)
	case actx.Err() != nil:
		j.mu.Lock()
		reason := j.preemptReason
		j.mu.Unlock()
		if reason == "cancel" {
			p.publish(j, Event{Kind: "cancelled"})
			p.store.release(j, StateCancelled, "")
		} else {
			// Preemption or drain: back into the queue; the checkpoint
			// directory carries the job to its next worker slot.
			p.publish(j, Event{Kind: "requeued", Detail: reason})
			p.store.release(j, StateQueued, "")
		}
	default:
		p.publish(j, Event{Kind: "failed", Detail: lastErr})
		p.store.release(j, StateFailed, lastErr)
	}
}

// runAttempt executes one attempt in the configured isolation mode.
func (p *pool) runAttempt(ctx context.Context, j *Job, attempt int) int {
	if len(p.cfg.Exec) > 0 {
		return p.runChildAttempt(ctx, j, attempt)
	}
	return p.runInProcAttempt(ctx, j, attempt)
}

// runInProcAttempt runs the attempt on this goroutine. A panic that
// escapes the flow's own quarantines (or is injected by the chaos seam)
// fails only this attempt — the worker and the daemon survive, and the
// next attempt resumes from the checkpoint.
func (p *pool) runInProcAttempt(ctx context.Context, j *Job, attempt int) (code int) {
	defer func() {
		if r := recover(); r != nil {
			p.publish(j, Event{Kind: "degradation", Attempt: attempt,
				Stage: "service", Fault: "worker-panic", Detail: fmt.Sprint(r)})
			code = exitFailure
		}
	}()
	fence := p.store.fenceFor(j)
	env := attemptEnv{
		dir:     j.Dir,
		attempt: attempt,
		grace:   p.cfg.DrainGrace,
		fence:   fence,
		publish: func(e Event) {
			// The journal is a durable write like any other: a stale
			// owner's events are fenced (and counted), not interleaved
			// into a journal another node now owns.
			if err := fence(); err != nil {
				return
			}
			p.publish(j, e)
		},
		onFlow: func(cancel func()) {
			j.mu.Lock()
			j.hardCancel = cancel
			j.mu.Unlock()
		},
		cacheDir: p.store.cacheRoot,
	}
	if p.cfg.Instrument != nil {
		env.instrument = func(cfg *flow.Config, ck *flow.Checkpointing) {
			p.cfg.Instrument(j.ID, attempt, cfg, ck)
		}
	}
	return runFlowAttempt(ctx, env)
}

// runChildAttempt execs the attempt as an isolated worker process
// (Config.Exec + CRPD_RUN_JOB). Preemption sends SIGTERM — the child stops
// at its next checkpoint boundary and exits ExitPreempted — escalating to
// SIGKILL after the grace. A child killed outright (chaos, OOM) surfaces
// as a failed attempt and resumes from its checkpoint on retry.
func (p *pool) runChildAttempt(ctx context.Context, j *Job, attempt int) int {
	j.mu.Lock()
	token := j.leaseToken
	j.mu.Unlock()
	cmd := exec.Command(p.cfg.Exec[0], p.cfg.Exec[1:]...)
	cmd.Env = append(os.Environ(),
		EnvRunJob+"="+j.Dir,
		fmt.Sprintf("%s=%d", EnvAttempt, attempt),
		EnvGrace+"="+p.cfg.DrainGrace.String(),
		EnvNode+"="+p.cfg.NodeID,
		fmt.Sprintf("%s=%d", EnvToken, token),
		EnvCacheDir+"="+p.store.cacheRoot,
	)
	logf, err := os.OpenFile(j.Dir+"/worker.log", os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o666)
	if err == nil {
		defer logf.Close()
		cmd.Stdout, cmd.Stderr = logf, logf
	}
	if err := cmd.Start(); err != nil {
		p.publish(j, Event{Kind: "degradation", Attempt: attempt,
			Stage: "service", Fault: "worker-spawn-failed", Detail: err.Error()})
		return exitFailure
	}
	j.setPID(cmd.Process.Pid)
	j.mu.Lock()
	j.hardCancel = func() { cmd.Process.Kill() }
	j.mu.Unlock()
	j.hub.notify()
	defer j.setPID(0)

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	killer := make(chan struct{})
	defer close(killer)
	go func() {
		select {
		case <-ctx.Done():
			cmd.Process.Signal(syscall.SIGTERM)
			t := time.NewTimer(p.cfg.DrainGrace + time.Second)
			defer t.Stop()
			select {
			case <-t.C:
				cmd.Process.Kill()
			case <-killer:
			}
		case <-killer:
		}
	}()
	err = <-waitErr
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		if code := ee.ExitCode(); code > 0 {
			return code
		}
	}
	// Killed by signal (SIGKILL chaos / OOM): during preemption treat it
	// as the preempted exit, otherwise as a retryable crash.
	if ctx.Err() != nil {
		return ExitPreempted
	}
	p.publish(j, Event{Kind: "degradation", Attempt: attempt,
		Stage: "service", Fault: "worker-killed", Detail: err.Error()})
	return exitFailure
}

// publish journals an event for j and wakes its streamers. No-op on a
// halted node: a dead process appends nothing.
func (p *pool) publish(j *Job, e Event) {
	if p.store.isHalted() {
		return
	}
	if err := appendEvent(j.Dir, e); err != nil {
		fmt.Fprintf(os.Stderr, "service: journaling %s event for %s: %v\n", e.Kind, j.ID, err)
	}
	j.hub.notify()
}
