package service

import (
	"encoding/json"
	"testing"
)

// FuzzSpecDecode hardens the admission path's decoder: arbitrary bytes fed
// through the same decode+validate sequence the HTTP handler runs must
// yield a structured rejection or a valid spec — never a panic — and a
// spec that passes validation must map onto a flow configuration without
// blowing up. (Design parsing/generation is exercised separately; it is
// far too heavy for a fuzz inner loop.)
func FuzzSpecDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"lef":"l","def":"d","k":3,"gamma":0.5}`))
	f.Add([]byte(`{"synthetic":{"name":"x","cells":10,"nets":5},"k":2,"seed":7}`))
	f.Add([]byte(`{"synthetic":{"utilisation":1e308},"flow_budget_ms":-1}`))
	f.Add([]byte(`{"k":-1,"gamma":2}`))
	f.Add([]byte(`{"admission_degradations":["x"]}`))
	f.Add([]byte(`{torn`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sp Spec
		if json.Unmarshal(data, &sp) != nil {
			return
		}
		if err := sp.Validate(); err != nil {
			return
		}
		cfg := sp.FlowConfig()
		if cfg.CRP.Iterations <= 0 {
			t.Fatalf("valid spec %+v produced non-positive iteration count", sp)
		}
		if _, err := specHash(sp); err != nil {
			t.Fatalf("valid spec %+v is unhashable: %v", sp, err)
		}
	})
}

// FuzzLeaseRecord hardens the lease decoder: arbitrary bytes must yield an
// error or a record satisfying the fencing invariants (non-negative
// monotonic-capable token, no owner without a token, sane timestamps), and
// a valid record must survive an encode/decode round trip unchanged —
// the property the shared-store hand-off rests on.
func FuzzLeaseRecord(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"node":"a","token":3,"deadline_unix_ns":5,"renewed_unix_ns":4}`))
	f.Add([]byte(`{"node":"a","token":-1}`))
	f.Add([]byte(`{"node":"a","token":0}`))
	f.Add([]byte(`{"token":9223372036854775807}`))
	f.Add([]byte(`{torn`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeLeaseRecord(data)
		if err != nil {
			return
		}
		if rec.Token < 0 {
			t.Fatalf("decoder accepted negative token: %+v", rec)
		}
		if rec.Node != "" && rec.Token == 0 {
			t.Fatalf("decoder accepted owner without token: %+v", rec)
		}
		if rec.Deadline < 0 || rec.Renewed < 0 {
			t.Fatalf("decoder accepted negative timestamp: %+v", rec)
		}
		out, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("valid record %+v failed to re-encode: %v", rec, err)
		}
		back, err := decodeLeaseRecord(out)
		if err != nil {
			t.Fatalf("re-encoded record %s failed to decode: %v", out, err)
		}
		if back != rec {
			t.Fatalf("round trip changed the record: %+v -> %+v", rec, back)
		}
	})
}
