package service

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime"

	"syscall"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/faultinject"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/ispd"
)

// The service chaos suite attacks the daemon the way production does: a
// worker panic injected mid-job, a worker process SIGKILLed mid-job, and a
// flood of submissions — and asserts the strong contract every time: the
// affected job resumes from its checkpoint and finishes with outputs
// byte-identical to an uninterrupted run, unaffected concurrent jobs never
// notice, and after a full drain the daemon is back to its goroutine
// baseline.

// TestMain re-execs this binary as an isolated worker process: with
// CRPD_RUN_JOB set the process runs exactly one job attempt (the same
// entry point cmd/crpd uses) instead of the test suite — so the SIGKILL
// chaos test kills a real worker process, not a simulation.
func TestMain(m *testing.M) {
	if dir := os.Getenv(EnvRunJob); dir != "" {
		os.Exit(RunWorkerAttempt(dir))
	}
	os.Exit(m.Run())
}

// TestChaosWorkerPanicIsolated injects a faultinject-driven panic into one
// job's first attempt at its second checkpoint commit, with three jobs in
// flight. The victim retries and resumes from the checkpoint; all three
// finish byte-identical to uninterrupted runs.
func TestChaosWorkerPanicIsolated(t *testing.T) {
	inj := faultinject.New(faultinject.CrashAt(faultinject.StageCheckpoint, 2))
	inj.Exit = func(code int) {
		panic(fmt.Sprintf("injected worker crash (would exit %d)", code))
	}
	victim := "j000001"
	cfg := Config{
		Workers: 3,
		Instrument: func(jobID string, attempt int, _ *flow.Config, ck *flow.Checkpointing) {
			if jobID != victim || attempt != 1 {
				return
			}
			hook := inj.CheckpointHook()
			orig := ck.AfterSave
			ck.AfterSave = func(n int) {
				hook(n)
				if orig != nil {
					orig(n)
				}
			}
		},
	}
	svc := newService(t, cfg)

	specs := []Spec{synthSpec(71, 2), synthSpec(72, 2), synthSpec(73, 2)}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		st, err := svc.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		st := waitStatus(t, svc, id, func(s Status) bool { return s.State.terminal() })
		if st.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
		}
		wantAttempts := 1
		if id == victim {
			wantAttempts = 2 // the panicked attempt plus the resume
		}
		if st.Attempts != wantAttempts {
			t.Errorf("job %s attempts = %d, want %d", id, st.Attempts, wantAttempts)
		}
		wantDef, wantGuide := referenceOutputs(t, specs[i])
		gotDef, gotGuide := jobOutputs(t, svc, id)
		if !bytes.Equal(gotDef, wantDef) || !bytes.Equal(gotGuide, wantGuide) {
			t.Errorf("job %s outputs differ from uninterrupted run", id)
		}
	}
	if fired := inj.Fired(); len(fired) != 1 {
		t.Errorf("injector fired %v, want exactly one crash", fired)
	}
	// The panic is on the record as a degradation event, not hidden.
	evs, err := decodeJournal(svcJobDir(t, svc, victim))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range evs {
		if e.Kind == "degradation" && e.Fault == "worker-panic" {
			found = true
		}
	}
	if !found {
		t.Error("victim journal has no worker-panic degradation event")
	}
}

func svcJobDir(t *testing.T, svc *Service, id string) string {
	t.Helper()
	j, err := svc.store.get(id)
	if err != nil {
		t.Fatal(err)
	}
	return j.Dir
}

// TestChaosChildSIGKILL runs jobs in isolated worker processes and
// SIGKILLs one mid-run — a real kill of a real process, no cooperation.
// The daemon survives, the victim resumes from its checkpoint on a fresh
// child, the concurrent job is undisturbed, and both finish byte-identical
// to uninterrupted runs.
func TestChaosChildSIGKILL(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	svc := newService(t, Config{Workers: 2, Exec: []string{exe}})

	// The victim is deliberately longer so the kill window — after its
	// first committed iteration, before its last — is wide.
	victim := Spec{
		Synthetic: &ispd.Spec{
			Name: "svc_kill", Node: "n45", Cells: 250, Nets: 200,
			Utilisation: 0.87, Hotspots: 2, IOFraction: 0.03, Seed: 81,
		},
		K: 5, Seed: 81,
	}
	bystander := synthSpec(82, 1)
	vst, err := svc.Submit(victim)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := svc.Submit(bystander)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the worker once it has committed at least one iteration.
	st := waitStatus(t, svc, vst.ID, func(s Status) bool {
		return s.WorkerPID > 0 && s.Iter >= 1
	})
	if err := syscall.Kill(st.WorkerPID, syscall.SIGKILL); err != nil {
		t.Fatalf("killing worker %d: %v", st.WorkerPID, err)
	}

	fin := waitStatus(t, svc, vst.ID, func(s Status) bool { return s.State.terminal() })
	if fin.State != StateDone {
		t.Fatalf("killed job ended %s (%s)", fin.State, fin.Error)
	}
	if fin.Attempts != 2 {
		t.Errorf("killed job attempts = %d, want 2", fin.Attempts)
	}
	bfin := waitStatus(t, svc, bst.ID, func(s Status) bool { return s.State.terminal() })
	if bfin.State != StateDone || bfin.Attempts != 1 {
		t.Errorf("bystander = %+v, want done in 1 attempt", bfin)
	}

	wantDef, wantGuide := referenceOutputs(t, victim)
	gotDef, gotGuide := jobOutputs(t, svc, vst.ID)
	if !bytes.Equal(gotDef, wantDef) || !bytes.Equal(gotGuide, wantGuide) {
		t.Error("SIGKILLed+resumed outputs differ from uninterrupted run")
	}
	// The kill is journaled as a worker-killed degradation.
	evs, err := decodeJournal(svcJobDir(t, svc, vst.ID))
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	for _, e := range evs {
		if e.Kind == "degradation" && e.Fault == "worker-killed" {
			killed = true
		}
	}
	if !killed {
		t.Error("victim journal has no worker-killed degradation event")
	}
}

// TestChaosRetryCapExhaustion: a job whose every attempt crashes fails
// explicitly after the retry cap, with the cause on record, while the
// daemon keeps serving.
func TestChaosRetryCapExhaustion(t *testing.T) {
	svc := newService(t, Config{
		Workers:  1,
		RetryCap: 2,
		Instrument: func(jobID string, attempt int, _ *flow.Config, ck *flow.Checkpointing) {
			orig := ck.AfterSave
			ck.AfterSave = func(n int) {
				if jobID == "j000001" {
					panic("persistent fault")
				}
				if orig != nil {
					orig(n)
				}
			}
		},
	})
	st, err := svc.Submit(synthSpec(91, 1))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitStatus(t, svc, st.ID, func(s Status) bool { return s.State.terminal() })
	if fin.State != StateFailed || fin.Attempts != 2 || fin.Error == "" {
		t.Errorf("doomed job = %+v, want failed after 2 attempts with cause", fin)
	}
	// The daemon still serves: the next job sails through.
	ok, err := svc.Submit(synthSpec(92, 1))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitStatus(t, svc, ok.ID, func(s Status) bool { return s.State.terminal() }); fin.State != StateDone {
		t.Errorf("follow-up job ended %s", fin.State)
	}
}

// TestGoroutineBaselineAfterDrain (the leak check): run a batch of jobs,
// drain fully, and the daemon's goroutine count returns to where it
// started — workers, watchdogs, streamers and child reapers all exit.
func TestGoroutineBaselineAfterDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	svc, err := New(Config{DataDir: t.TempDir(), Workers: 3,
		RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := svc.Submit(synthSpec(100+int64(i), 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitStatus(t, svc, id, func(s Status) bool { return s.State.terminal() })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after drain (tolerance +2)", before, runtime.NumGoroutine())
}
