package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"time"

	"github.com/crp-eda/crp/internal/checkpoint"
	"github.com/crp-eda/crp/internal/flow"
)

// maxSpecBytes bounds one submission body (inline LEF/DEF text included) —
// admission control starts at the socket.
const maxSpecBytes = 64 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a Spec   → 202 Status | structured APIError
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/events stream the event journal as NDJSON (chunked;
//	                            follows a live job until it reaches a
//	                            terminal state, then ends)
//	GET    /v1/jobs/{id}/def    final routed DEF; ?best=1 serves the
//	                            best-so-far snapshot of a live job
//	GET    /v1/jobs/{id}/guide  final route guide; ?best=1 as above
//	POST   /v1/jobs/{id}/preempt checkpoint-backed preemption (requeue+resume)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/stats            service counters (cache, fencing, shed)
//	GET    /v1/nodes            daemons sharing this job store
//	GET    /healthz             liveness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/def", s.output("out.def", "application/def"))
	mux.HandleFunc("GET /v1/jobs/{id}/guide", s.output("out.guide", "text/plain"))
	mux.HandleFunc("POST /v1/jobs/{id}/preempt", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Preempt(r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "preempting"})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		st.Goroutines = runtime.NumGoroutine()
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		nodes := s.Nodes()
		if nodes == nil {
			nodes = []NodeStatus{}
		}
		writeJSON(w, http.StatusOK, nodes)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, errBadSpec("decoding spec: "+err.Error()))
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleEvents streams the job's journal as chunked NDJSON: everything
// journaled so far, then — while the job is live — new lines as the
// workers append them. The journal file is the source of truth; hub pings
// and a polling ticker only bound the latency of noticing appends (child
// worker processes append without pinging the parent).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.store.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	ping := j.hub.subscribe()
	defer j.hub.unsubscribe(ping)
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()

	var off int64
	for {
		lines, next, err := readJournal(j.Dir, off)
		if err != nil {
			return
		}
		off = next
		for _, line := range lines {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		if len(lines) > 0 && fl != nil {
			fl.Flush()
		}
		// Drained the journal: stop once the job can produce no more events.
		if j.currentState().terminal() {
			if lines, _, _ := readJournal(j.Dir, off); len(lines) == 0 {
				return
			}
			continue
		}
		select {
		case <-ping:
		case <-tick.C:
		case <-r.Context().Done():
			return
		case <-s.store.drainCh:
			// Drain preempts the job; keep following until it settles.
			if j.currentState().terminal() || j.currentState() == StateQueued {
				if lines, _, _ := readJournal(j.Dir, off); len(lines) == 0 {
					return
				}
			}
		}
	}
}

// output serves a final output file of a done job, or — with ?best=1 on a
// live job — reconstructs the best-so-far output from the job's latest
// checkpoint without disturbing the running attempt.
func (s *Service) output(name, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, err := s.store.get(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		state := j.currentState()
		if state == StateDone {
			w.Header().Set("Content-Type", contentType)
			http.ServeFile(w, r, filepath.Join(j.Dir, name))
			return
		}
		if r.URL.Query().Get("best") == "" {
			writeErr(w, errConflict(fmt.Sprintf("job is %s; pass ?best=1 for the best-so-far snapshot", state)))
			return
		}
		defB, guideB, iter, err := s.bestSoFar(j)
		if err != nil {
			writeErr(w, errConflict("no checkpoint yet: "+err.Error()))
			return
		}
		body := defB
		if name == "out.guide" {
			body = guideB
		}
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("X-CRP-Checkpoint-Iter", fmt.Sprint(iter))
		w.Write(body)
	}
}

// bestSoFar renders outputs from the job's newest committed checkpoint.
// It opens the manager read-only next to (not inside) the running
// attempt's manager: checkpoint commits are atomic renames, so the latest
// snapshot is always a consistent boundary state.
func (s *Service) bestSoFar(j *Job) (defB, guideB []byte, iter int, err error) {
	d, err := j.Spec.Design()
	if err != nil {
		return nil, nil, 0, err
	}
	mgr, err := checkpoint.Open(filepath.Join(j.Dir, "ckpt"), 0)
	if err != nil {
		return nil, nil, 0, err
	}
	return flow.CheckpointOutputs(d, 0, j.Spec.FlowConfig(), mgr)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr serializes an error: *APIError verbatim at its mapped status,
// anything else as a 500.
func writeErr(w http.ResponseWriter, err error) {
	var api *APIError
	if !errors.As(err, &api) {
		api = &APIError{Status: http.StatusInternalServerError,
			Code: "internal", Message: err.Error()}
	}
	writeJSON(w, api.Status, api)
}
