package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/crp-eda/crp/internal/flow"
)

// Event is one line of a job's event journal: a flow-level progress point
// (kinds "gr", "resume", "iteration", "degradation" — see flow.Event) or a
// service-level lifecycle transition (kinds "submitted", "attempt",
// "preempted", "requeued", "done", "failed", "cancelled").
//
// The journal file (events.ndjson in the job directory) is the source of
// truth for progress: workers — in-process or isolated child processes —
// append to it, and both the status endpoint and the streaming endpoint
// read it back. In-memory notifications only wake streamers up early; a
// lost wakeup costs latency, never an event.
type Event struct {
	Kind       string `json:"kind"`
	Attempt    int    `json:"attempt,omitempty"`
	Iter       int    `json:"iter,omitempty"`
	K          int    `json:"k,omitempty"`
	Moved      int    `json:"moved,omitempty"`
	TotalMoved int    `json:"total_moved,omitempty"`
	Stage      string `json:"stage,omitempty"`
	Fault      string `json:"fault,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// flowEvent lifts a flow progress point into a journal event.
func flowEvent(e flow.Event, attempt int) Event {
	return Event{
		Kind: e.Kind, Attempt: attempt,
		Iter: e.Iter, K: e.K, Moved: e.Moved, TotalMoved: e.TotalMoved,
		Stage: e.Stage, Fault: e.Fault, Detail: e.Detail,
	}
}

// journalName is the per-job event journal file.
const journalName = "events.ndjson"

// appendEvent durably appends one event line to the job directory's
// journal. Appends are open-write-close so concurrent writers (a child
// worker and its supervising parent) interleave whole lines on any POSIX
// filesystem; a line torn by a SIGKILL mid-write is skipped by readers.
func appendEvent(dir string, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o666)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(data, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// readJournal returns the journal's raw JSON lines from byte offset `from`
// on, plus the offset to continue from. Invalid (torn) lines are dropped;
// a torn *final* line is not consumed, so a reader polling mid-append picks
// the completed line up on its next call.
func readJournal(dir string, from int64) (lines [][]byte, next int64, err error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, from, nil
		}
		return nil, from, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, from, err
	}
	if fi.Size() <= from {
		return nil, from, nil
	}
	buf := make([]byte, fi.Size()-from)
	if _, err := f.ReadAt(buf, from); err != nil {
		return nil, from, err
	}
	next = from
	for len(buf) > 0 {
		nl := -1
		for i, b := range buf {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // incomplete final line: leave it for the next read
		}
		line := buf[:nl]
		buf = buf[nl+1:]
		next += int64(nl) + 1
		if json.Valid(line) {
			lines = append(lines, append([]byte(nil), line...))
		}
	}
	return lines, next, nil
}

// decodeJournal parses the journal's events from offset 0.
func decodeJournal(dir string) ([]Event, error) {
	lines, _, err := readJournal(dir, 0)
	if err != nil {
		return nil, err
	}
	evs := make([]Event, 0, len(lines))
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("journal line %q: %w", line, err)
		}
		evs = append(evs, e)
	}
	return evs, nil
}

// progress derives the freshest (iter, k, totalMoved) from an event list —
// the journal-backed half of a job's status, valid across process
// boundaries and daemon restarts.
func progress(evs []Event) (iter, k, totalMoved int) {
	for _, e := range evs {
		switch e.Kind {
		case "gr", "resume", "iteration":
			iter, totalMoved = e.Iter, e.TotalMoved
			if e.K > 0 {
				k = e.K
			}
		}
	}
	return iter, k, totalMoved
}

// hub wakes a job's event streamers. Subscribers hold a 1-buffered ping
// channel: notify never blocks, coalescing bursts into one wakeup.
type hub struct {
	mu   sync.Mutex
	subs map[chan struct{}]struct{}
}

func (h *hub) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	h.mu.Lock()
	if h.subs == nil {
		h.subs = make(map[chan struct{}]struct{})
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *hub) unsubscribe(ch chan struct{}) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

func (h *hub) notify() {
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	h.mu.Unlock()
}
