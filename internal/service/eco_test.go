package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/crp-eda/crp/internal/eco"
	"github.com/crp-eda/crp/internal/lefdef"
)

// The ECO service tests pin the incremental job kind end to end: an ECO spec
// references a committed parent run, re-runs only the delta's dirty region,
// and participates in the exact-result cache under a parent-hash+delta key.

// parentDelta generates a small valid delta against a done parent job's
// committed placement (the same base runECOAttempt reconstructs) and returns
// its canonical encoding.
func parentDelta(t *testing.T, svc *Service, parentID string, moves, rewires int, seed int64) []byte {
	t.Helper()
	j, err := svc.store.get(parentID)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := loadSpec(j.Dir)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sp.Design()
	if err != nil {
		t.Fatal(err)
	}
	defB, err := os.ReadFile(filepath.Join(j.Dir, "out.def"))
	if err != nil {
		t.Fatal(err)
	}
	placed, err := lefdef.ParseDEF(bytes.NewReader(defB), base.Tech, base.Macros)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := eco.GenerateDelta(placed, moves, rewires, seed)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := dl.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return canon
}

// jobResult reads and decodes a done job's committed result.json.
func jobResult(t *testing.T, svc *Service, id string) result {
	t.Helper()
	j, err := svc.store.get(id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(j.Dir, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestECOJobEndToEnd submits a parent run, then an ECO job referencing it,
// and checks the incremental result: committed outputs, an ECO summary that
// stayed local, and an immediate cache hit on exact resubmission.
func TestECOJobEndToEnd(t *testing.T) {
	svc := newService(t, Config{Workers: 1, QueueCap: 8})

	parent, err := svc.Submit(synthSpec(71, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, parent.ID, isState(StateDone))

	ecoSpec := Spec{ParentJob: parent.ID, ECODelta: parentDelta(t, svc, parent.ID, 2, 1, 5), K: 2, Seed: 71}
	st, err := svc.Submit(ecoSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, st.ID, isState(StateDone))

	defB, guideB := jobOutputs(t, svc, st.ID)
	if len(defB) == 0 || len(guideB) == 0 {
		t.Fatal("ECO job committed empty outputs")
	}
	res := jobResult(t, svc, st.ID)
	if res.ECO == nil {
		t.Fatal("ECO job result has no eco summary")
	}
	if res.ECO.FullRun {
		t.Fatal("small ECO delta fell back to a full run")
	}
	if res.ECO.DirtyCells <= 0 || res.ECO.DirtyCells >= res.ECO.TotalCells {
		t.Fatalf("dirty region %d/%d cells is not a local re-run", res.ECO.DirtyCells, res.ECO.TotalCells)
	}
	if res.ECO.CandidateEstimates <= 0 {
		t.Fatal("ECO summary reports no pricing work")
	}

	// Exact resubmission is a cache hit: done immediately, no new attempt.
	hits0 := svc.Stats().CacheHits
	st2, err := svc.Submit(ecoSpec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitStatus(t, svc, st2.ID, isState(StateDone))
	if fin.Attempts != 0 {
		t.Fatalf("cached ECO resubmit ran %d attempts, want 0", fin.Attempts)
	}
	if hits := svc.Stats().CacheHits; hits != hits0+1 {
		t.Fatalf("cache hits %d, want %d", hits, hits0+1)
	}
	defC, guideC := jobOutputs(t, svc, st2.ID)
	if !bytes.Equal(defB, defC) || !bytes.Equal(guideB, guideC) {
		t.Fatal("cached ECO outputs differ from the original run")
	}
}

// TestECOSubmitRejections drives every inadmissible ECO submission through
// the admission ladder and checks the structured rejection code.
func TestECOSubmitRejections(t *testing.T) {
	svc := newService(t, Config{Workers: 1, QueueCap: 8})

	parent, err := svc.Submit(synthSpec(72, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, parent.ID, isState(StateDone))
	delta := parentDelta(t, svc, parent.ID, 1, 0, 3)

	cases := []struct {
		name string
		sp   Spec
		code string
	}{
		{"unknown parent", Spec{ParentJob: "no-such-job", ECODelta: delta, K: 1}, "bad_spec"},
		{"malformed delta", Spec{ParentJob: parent.ID, ECODelta: json.RawMessage(`{"moves":[`), K: 1}, "invalid_spec"},
		{"unknown delta field", Spec{ParentJob: parent.ID, ECODelta: json.RawMessage(`{"bogus":1}`), K: 1}, "invalid_spec"},
		{"delta plus synthetic", func() Spec {
			sp := synthSpec(73, 1)
			sp.ParentJob, sp.ECODelta = parent.ID, delta
			return sp
		}(), "bad_spec"},
		{"parent without delta", Spec{ParentJob: parent.ID, K: 1}, "bad_spec"},
		{"delta without parent", Spec{ECODelta: delta, K: 1}, "bad_spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := svc.Submit(tc.sp)
			var api *APIError
			if !errors.As(err, &api) {
				t.Fatalf("submit returned %v, want *APIError", err)
			}
			if api.Code != tc.code {
				t.Fatalf("rejection code %q, want %q (%v)", api.Code, tc.code, api)
			}
		})
	}
}

// TestECORejectsUnfinishedParent pins the conflict path: an ECO job may only
// reference a parent whose outputs are committed.
func TestECORejectsUnfinishedParent(t *testing.T) {
	// Job IDs are sequential: the held blocker is the second submission.
	h := newHolder("j000002")
	svc := newService(t, Config{Workers: 1, QueueCap: 4, Instrument: h.instrument})

	done, err := svc.Submit(synthSpec(74, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, done.ID, isState(StateDone))
	delta := parentDelta(t, svc, done.ID, 1, 0, 3)

	blocker, err := svc.Submit(synthSpec(75, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	h.waitEntered(t)

	queued, err := svc.Submit(synthSpec(76, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = svc.Submit(Spec{ParentJob: queued.ID, ECODelta: delta, K: 1})
	var api *APIError
	if !errors.As(err, &api) || api.Code != "conflict" {
		t.Fatalf("ECO against a queued parent returned %v, want conflict", err)
	}
	_, err = svc.Submit(Spec{ParentJob: blocker.ID, ECODelta: delta, K: 1})
	if !errors.As(err, &api) || api.Code != "conflict" {
		t.Fatalf("ECO against a running parent returned %v, want conflict", err)
	}
}

// TestResultCacheEviction pins the LRU bounds: with CacheMaxEntries=1 the
// older entry is evicted when a second distinct job commits, and the
// eviction is visible in stats.
func TestResultCacheEviction(t *testing.T) {
	svc := newService(t, Config{Workers: 1, QueueCap: 4, CacheMaxEntries: 1})

	first, err := svc.Submit(synthSpec(77, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, first.ID, isState(StateDone))
	second, err := svc.Submit(synthSpec(78, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, second.ID, isState(StateDone))

	if ev := svc.Stats().CacheEvictions; ev < 1 {
		t.Fatalf("cache evictions = %d, want >= 1", ev)
	}
	ents, err := os.ReadDir(svc.store.cacheRoot)
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, e := range ents {
		if e.IsDir() && e.Name()[0] != '.' {
			live++
		}
	}
	if live > 1 {
		t.Fatalf("cache holds %d entries, want <= 1", live)
	}

	// The surviving entry is the newer job: resubmitting it hits, while the
	// evicted spec misses and runs again.
	hits0, miss0 := svc.Stats().CacheHits, svc.Stats().CacheMisses
	re, err := svc.Submit(synthSpec(78, 1))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitStatus(t, svc, re.ID, isState(StateDone)); fin.Attempts != 0 {
		t.Fatalf("resubmit of cached job ran %d attempts, want 0", fin.Attempts)
	}
	if hits := svc.Stats().CacheHits; hits != hits0+1 {
		t.Fatalf("cache hits %d, want %d", hits, hits0+1)
	}
	old, err := svc.Submit(synthSpec(77, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, old.ID, isState(StateDone))
	if miss := svc.Stats().CacheMisses; miss <= miss0 {
		t.Fatalf("cache misses %d did not grow past %d for the evicted spec", miss, miss0)
	}
}
