package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/ispd"
)

// The service suite validates the daemon contract end to end: a job's
// outputs are a pure function of its spec — byte-identical whether the run
// was uninterrupted, preempted and resumed on another worker slot, or
// carried across a daemon restart — and overload is always explicit
// (structured rejections, never unbounded growth or silent starvation).

// synthSpec is the standard small job: deterministic synthetic design,
// k CR&P iterations.
func synthSpec(seed int64, k int) Spec {
	return Spec{
		Synthetic: &ispd.Spec{
			Name: "svc_fixture", Node: "n45", Cells: 160, Nets: 130,
			Utilisation: 0.85, Hotspots: 2, IOFraction: 0.03, Seed: seed,
		},
		K: k, Seed: seed,
	}
}

// referenceOutputs runs the job's exact flow configuration uninterrupted,
// outside the service — the byte-identity oracle.
func referenceOutputs(t *testing.T, sp Spec) (defB, guideB []byte) {
	t.Helper()
	d, err := sp.Design()
	if err != nil {
		t.Fatal(err)
	}
	var def, guide bytes.Buffer
	if _, err := flow.RunCRPWithOutputs(context.Background(), d, 0, sp.FlowConfig(), &def, &guide); err != nil {
		t.Fatal(err)
	}
	return def.Bytes(), guide.Bytes()
}

// newService starts a daemon for the test and drains it on cleanup.
func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			t.Error(err)
		}
	})
	return svc
}

// waitStatus polls a job until pred holds.
func waitStatus(t *testing.T, svc *Service, id string, pred func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting on job %s; last status %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func isState(s State) func(Status) bool {
	return func(st Status) bool { return st.State == s }
}

// jobOutputs reads a done job's committed outputs.
func jobOutputs(t *testing.T, svc *Service, id string) (defB, guideB []byte) {
	t.Helper()
	j, err := svc.store.get(id)
	if err != nil {
		t.Fatal(err)
	}
	defB, err = os.ReadFile(filepath.Join(j.Dir, "out.def"))
	if err != nil {
		t.Fatal(err)
	}
	guideB, err = os.ReadFile(filepath.Join(j.Dir, "out.guide"))
	if err != nil {
		t.Fatal(err)
	}
	return defB, guideB
}

// holder blocks one job's first attempt at its second checkpoint commit —
// the boundary after CR&P iteration 1 — until released, pinning the job
// deterministically in the running state with one iteration on record.
// Tests must `defer h.Release()` so a held job cannot deadlock the
// cleanup-time drain.
type holder struct {
	target  string
	entered chan struct{}
	release chan struct{}
	enter   sync.Once
	rel     sync.Once
}

func newHolder(target string) *holder {
	return &holder{target: target,
		entered: make(chan struct{}), release: make(chan struct{})}
}

func (h *holder) Release() { h.rel.Do(func() { close(h.release) }) }

func (h *holder) instrument(jobID string, attempt int, _ *flow.Config, ck *flow.Checkpointing) {
	if jobID != h.target || attempt != 1 {
		return
	}
	orig := ck.AfterSave
	ck.AfterSave = func(n int) {
		// AfterSave counts saves: n==1 is the post-GR checkpoint (iter 0),
		// n==2 the checkpoint after iteration 1.
		if n == 2 {
			h.enter.Do(func() { close(h.entered) })
			<-h.release
		}
		if orig != nil {
			orig(n)
		}
	}
}

func (h *holder) waitEntered(t *testing.T) {
	t.Helper()
	select {
	case <-h.entered:
	case <-time.After(120 * time.Second):
		t.Fatal("job never reached the held checkpoint boundary")
	}
}

// TestDaemonEndToEnd drives the full HTTP surface: submit, poll status,
// stream events, fetch outputs — and the outputs must be byte-identical to
// running the same spec directly through the flow.
func TestDaemonEndToEnd(t *testing.T) {
	svc := newService(t, Config{Workers: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sp := synthSpec(7, 2)
	body, _ := json.Marshal(sp)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" || st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("submit returned %+v", st)
	}

	deadline := time.Now().Add(120 * time.Second)
	for st.State != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		st = Status{}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if st.Attempts != 1 || st.Iter != 2 || st.K != 2 {
		t.Errorf("done status = %+v, want attempts 1, iter 2/2", st)
	}
	if st.Metrics == nil || st.Metrics.WirelengthDBU <= 0 {
		t.Errorf("done status carries no metrics: %+v", st.Metrics)
	}

	// The event stream of a finished job is its complete journal.
	r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	raw, err := readAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	iters := 0
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		kinds = append(kinds, e.Kind)
		if e.Kind == "iteration" {
			iters++
			if e.Iter != iters || e.K != 2 {
				t.Errorf("iteration event out of order: %+v (want iter %d of 2)", e, iters)
			}
		}
	}
	want := []string{"submitted", "attempt", "gr", "iteration", "iteration", "done"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("event kinds = %v, want %v", kinds, want)
	}

	// Outputs over HTTP match an uninterrupted direct flow run.
	wantDef, wantGuide := referenceOutputs(t, sp)
	for path, want := range map[string][]byte{"/def": wantDef, "/guide": wantGuide} {
		r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := readAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
			t.Errorf("GET %s: status %d, bytes equal=%v", path, r.StatusCode, bytes.Equal(got, want))
		}
	}

	// Health and stats round out the surface.
	r, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if stats.Workers != 2 || stats.Goroutines <= 0 || stats.States[StateDone] != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func readAll(r interface{ Read([]byte) (int, error) }) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r)
	return buf.Bytes(), err
}

// TestSubmitValidation covers the admission-time spec checks.
func TestSubmitValidation(t *testing.T) {
	svc := newService(t, Config{Workers: 1})
	for _, sp := range []Spec{
		{},                               // no design at all
		{LEF: "lef only"},                // half an inline design
		{Synthetic: &ispd.Spec{}, K: -1}, // bad k
	} {
		_, err := svc.Submit(sp)
		var api *APIError
		if !errors.As(err, &api) || api.Code != "bad_spec" {
			t.Errorf("Submit(%+v) error = %v, want bad_spec", sp, err)
		}
	}
	if _, err := svc.Status("j999999"); err == nil {
		t.Error("Status of unknown job must fail")
	}
}

// TestOverloadQueueFull floods a bounded queue: every rejection is an
// explicit structured 429, the job table does not grow, and the running
// job finishes untouched with the budgets it was admitted with.
func TestOverloadQueueFull(t *testing.T) {
	hold := newHolder("j000001")
	defer hold.Release()
	svc := newService(t, Config{Workers: 1, QueueCap: 2, Instrument: hold.instrument})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	blocker, err := svc.Submit(synthSpec(11, 1))
	if err != nil {
		t.Fatal(err)
	}
	hold.waitEntered(t) // blocker is running, queue is empty
	var queued []string
	for i := 0; i < 2; i++ {
		st, err := svc.Submit(synthSpec(12+int64(i), 1))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, st.ID)
	}

	// Flood: 10 more submissions, all rejected with the structured error.
	for i := 0; i < 10; i++ {
		body, _ := json.Marshal(synthSpec(99, 1))
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var api APIError
		if err := json.NewDecoder(resp.Body).Decode(&api); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("flood submission %d: status %d, want 429", i, resp.StatusCode)
		}
		if api.Code != "queue_full" || api.QueueDepth != 2 || api.QueueCap != 2 {
			t.Fatalf("flood rejection = %+v", api)
		}
	}
	if n := len(svc.List()); n != 3 {
		t.Errorf("job table grew to %d under overload, want 3", n)
	}

	hold.Release()
	for _, id := range append(queued, blocker.ID) {
		st := waitStatus(t, svc, id, func(s Status) bool { return s.State.terminal() })
		if st.State != StateDone {
			t.Errorf("job %s ended %s (%s), want done", id, st.State, st.Error)
		}
	}
}

// TestTenantAdmissionCap rejects a tenant's submissions past its active cap
// while other tenants stay admissible.
func TestTenantAdmissionCap(t *testing.T) {
	hold := newHolder("j000001")
	defer hold.Release()
	svc := newService(t, Config{Workers: 1, QueueCap: 8, TenantMaxActive: 2,
		Instrument: hold.instrument})

	a := func(seed int64) Spec { sp := synthSpec(seed, 1); sp.Tenant = "acme"; return sp }
	if _, err := svc.Submit(a(21)); err != nil {
		t.Fatal(err)
	}
	hold.waitEntered(t)
	if _, err := svc.Submit(a(22)); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Submit(a(23))
	var api *APIError
	if !errors.As(err, &api) || api.Code != "tenant_limit" || api.Tenant != "acme" || api.Limit != 2 {
		t.Fatalf("third acme submission error = %v, want tenant_limit", err)
	}
	// A different tenant is unaffected by acme's cap.
	other := synthSpec(24, 1)
	other.Tenant = "zeta"
	if _, err := svc.Submit(other); err != nil {
		t.Fatalf("zeta submission rejected: %v", err)
	}
	hold.Release()
}

// TestTenantRunningFairness: with a per-tenant running cap, a saturated
// tenant's queued work cannot starve another tenant — the free worker slot
// skips past it in queue order.
func TestTenantRunningFairness(t *testing.T) {
	hold := newHolder("j000001")
	defer hold.Release()
	svc := newService(t, Config{Workers: 2, QueueCap: 8, TenantMaxRunning: 1,
		Instrument: hold.instrument})

	a1 := synthSpec(31, 1)
	a1.Tenant = "acme"
	if _, err := svc.Submit(a1); err != nil {
		t.Fatal(err)
	}
	hold.waitEntered(t) // acme at its running cap
	a2 := synthSpec(32, 1)
	a2.Tenant = "acme"
	sa2, err := svc.Submit(a2)
	if err != nil {
		t.Fatal(err)
	}
	b1 := synthSpec(33, 1)
	b1.Tenant = "zeta"
	sb1, err := svc.Submit(b1)
	if err != nil {
		t.Fatal(err)
	}

	// zeta's job, submitted after acme's queued one, runs on the free slot.
	waitStatus(t, svc, sb1.ID, func(s Status) bool {
		return s.State == StateRunning || s.State.terminal()
	})
	if st, _ := svc.Status(sa2.ID); st.State != StateQueued {
		t.Errorf("second acme job is %s while first still runs, want queued", st.State)
	}

	hold.Release()
	for _, id := range []string{"j000001", sa2.ID, sb1.ID} {
		if st := waitStatus(t, svc, id, func(s Status) bool { return s.State.terminal() }); st.State != StateDone {
			t.Errorf("job %s ended %s, want done", id, st.State)
		}
	}
}

// TestPreemptResumeBitIdentical is the migration contract: preempt a
// running job at a checkpoint boundary, let it resume on a free slot, and
// the final outputs are byte-identical to an uninterrupted run. While
// preempted mid-run, the best-so-far endpoint serves the boundary state.
func TestPreemptResumeBitIdentical(t *testing.T) {
	hold := newHolder("j000001")
	defer hold.Release()
	svc := newService(t, Config{Workers: 1, Instrument: hold.instrument})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sp := synthSpec(41, 2)
	st, err := svc.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	hold.waitEntered(t) // running, checkpoint 1 committed

	// Best-so-far while live: rendered from the committed boundary.
	r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/def?best=1")
	if err != nil {
		t.Fatal(err)
	}
	best, err := readAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || err != nil || len(best) == 0 {
		t.Fatalf("best-so-far: status %d, %d bytes, err %v", r.StatusCode, len(best), err)
	}
	if got := r.Header.Get("X-CRP-Checkpoint-Iter"); got != "1" {
		t.Errorf("best-so-far iter header = %q, want 1", got)
	}
	// Plain fetch of a live job is an explicit conflict, not a hang.
	if r, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/def"); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("live fetch without ?best: status %d, want 409", r.StatusCode)
	}

	if err := svc.Preempt(st.ID); err != nil {
		t.Fatal(err)
	}
	hold.Release() // boundary gate fires; attempt exits ExitPreempted

	final := waitStatus(t, svc, st.ID, isState(StateDone))
	if final.Preemptions != 1 || final.Attempts != 2 {
		t.Errorf("final status = %+v, want 1 preemption over 2 attempts", final)
	}
	wantDef, wantGuide := referenceOutputs(t, sp)
	gotDef, gotGuide := jobOutputs(t, svc, st.ID)
	if !bytes.Equal(gotDef, wantDef) || !bytes.Equal(gotGuide, wantGuide) {
		t.Error("preempted+resumed outputs differ from uninterrupted run")
	}
}

// TestCancel covers both cancellation paths and their terminal conflicts.
func TestCancel(t *testing.T) {
	hold := newHolder("j000001")
	defer hold.Release()
	svc := newService(t, Config{Workers: 1, Instrument: hold.instrument})

	run, err := svc.Submit(synthSpec(51, 2))
	if err != nil {
		t.Fatal(err)
	}
	hold.waitEntered(t)
	qd, err := svc.Submit(synthSpec(52, 1))
	if err != nil {
		t.Fatal(err)
	}

	// A queued job cancels in place, before ever running.
	if err := svc.Cancel(qd.ID); err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, svc, qd.ID, isState(StateCancelled))
	if st.Attempts != 0 {
		t.Errorf("cancelled queued job ran %d attempts", st.Attempts)
	}

	// A running job stops at its next checkpoint boundary.
	if err := svc.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	hold.Release()
	waitStatus(t, svc, run.ID, isState(StateCancelled))

	// Cancelling a terminal job is a conflict, not a silent no-op.
	var api *APIError
	if err := svc.Cancel(run.ID); !errors.As(err, &api) || api.Code != "conflict" {
		t.Errorf("cancel of cancelled job = %v, want conflict", err)
	}
}

// TestDrainRestartRecovery is the daemon-restart story: drain checkpoints
// the in-flight job and persists the queue; a fresh daemon on the same data
// directory resumes everything to completion, byte-identical.
func TestDrainRestartRecovery(t *testing.T) {
	dataDir := t.TempDir()
	hold := newHolder("j000001")
	defer hold.Release()
	svc1, err := New(Config{DataDir: dataDir, Workers: 1,
		RetryBackoff: 10 * time.Millisecond, Instrument: hold.instrument})
	if err != nil {
		t.Fatal(err)
	}

	spRun := synthSpec(61, 2)
	spQueued := synthSpec(62, 1)
	run, err := svc1.Submit(spRun)
	if err != nil {
		t.Fatal(err)
	}
	hold.waitEntered(t)
	qd, err := svc1.Submit(spQueued)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- svc1.Drain(ctx)
	}()
	hold.Release()
	if err := <-drained; err != nil {
		t.Fatal(err)
	}

	// Submissions after drain are explicitly refused.
	var api *APIError
	if _, err := svc1.Submit(synthSpec(63, 1)); !errors.As(err, &api) || api.Code != "draining" {
		t.Fatalf("post-drain submit = %v, want draining", err)
	}
	// The in-flight job was checkpointed and requeued, not lost.
	st, err := svc1.Status(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Preemptions != 1 {
		t.Fatalf("drained running job = %+v, want queued with 1 preemption", st)
	}
	if _, err := os.Stat(filepath.Join(dataDir, run.ID, "ckpt", "MANIFEST")); err != nil {
		t.Fatalf("drained job has no checkpoint manifest: %v", err)
	}

	// Second daemon, same data directory: both jobs complete.
	svc2 := newService(t, Config{DataDir: dataDir, Workers: 2})
	for id, sp := range map[string]Spec{run.ID: spRun, qd.ID: spQueued} {
		fin := waitStatus(t, svc2, id, func(s Status) bool { return s.State.terminal() })
		if fin.State != StateDone {
			t.Fatalf("recovered job %s ended %s (%s)", id, fin.State, fin.Error)
		}
		wantDef, wantGuide := referenceOutputs(t, sp)
		gotDef, gotGuide := jobOutputs(t, svc2, id)
		if !bytes.Equal(gotDef, wantDef) || !bytes.Equal(gotGuide, wantGuide) {
			t.Errorf("job %s outputs differ from uninterrupted run after restart", id)
		}
	}
	// The ID sequence continues where the first daemon stopped.
	st3, err := svc2.Submit(synthSpec(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID != "j000003" {
		t.Errorf("post-recovery ID = %s, want j000003", st3.ID)
	}
	if fmt.Sprint(svc2.Stats().Draining) != "false" {
		t.Error("recovered daemon reports draining")
	}
}
