package service

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
)

// Node liveness and shared-store reconciliation: every daemon sharing a
// DataDir runs one scheduler loop (Service.schedule) that
//
//   - heartbeats: refreshes this node's liveness record under nodes/ and
//     renews the leases of every locally running job — a renewal that
//     comes back ErrLeaseLost means the job was stolen and the local
//     attempt is cancelled (its writes are already fenced);
//   - scans: walks the store for job directories this node has never seen
//     (submitted by peers — registered as remote) and for non-terminal
//     jobs whose lease is absent, released or expired (their owner died —
//     adopted into the local queue to resume from the latest checkpoint).
//
// There is no node-to-node channel: the shared directory, leases and
// fencing tokens are the entire coordination protocol.

const nodesDirName = "nodes"

// nodeRecord is one daemon's persisted liveness record
// (nodes/<node>.json), refreshed every heartbeat.
type nodeRecord struct {
	Node     string `json:"node"`
	PID      int    `json:"pid"`
	Running  int    `json:"running"`
	Draining bool   `json:"draining"`
	Renewed  int64  `json:"renewed_unix_ns"`
	TTLNS    int64  `json:"ttl_ns"`
}

// NodeStatus is one daemon's liveness row (GET /v1/nodes). Expired means
// the node has missed more than two lease TTLs of heartbeats and its jobs
// are being (or have been) adopted by the survivors.
type NodeStatus struct {
	Node     string    `json:"node"`
	PID      int       `json:"pid"`
	Running  int       `json:"running"`
	Draining bool      `json:"draining"`
	Renewed  time.Time `json:"renewed"`
	Expired  bool      `json:"expired"`
}

// heartbeat refreshes this node's liveness record and renews every locally
// running job's lease. A lost lease cancels the local attempt via
// markLeaseLost. No-op once halted: a dead node neither beats nor renews.
func (st *store) heartbeat() {
	st.mu.Lock()
	if st.halted {
		st.mu.Unlock()
		return
	}
	running := make([]*Job, 0, len(st.running))
	for _, j := range st.running {
		running = append(running, j)
	}
	draining := st.draining
	st.mu.Unlock()

	rec, err := json.Marshal(nodeRecord{
		Node:     st.cfg.NodeID,
		PID:      os.Getpid(),
		Running:  len(running),
		Draining: draining,
		Renewed:  time.Now().UnixNano(),
		TTLNS:    int64(st.cfg.LeaseTTL),
	})
	if err == nil {
		atomicio.WriteFileBytes(filepath.Join(st.nodesDir, st.cfg.NodeID+".json"), rec)
	}

	for _, j := range running {
		j.mu.Lock()
		token := j.leaseToken
		lost := j.leaseLost
		j.mu.Unlock()
		if token == 0 || lost {
			continue
		}
		if err := st.lm.renew(j.Dir, token); errors.Is(err, ErrLeaseLost) {
			st.markLeaseLost(j)
		}
	}
}

// scan reconciles the in-memory view with the shared store (see the
// package comment above). Quiet on a single-node store: every directory
// is either locally known and owned, or terminal.
func (st *store) scan() {
	entries, err := os.ReadDir(st.cfg.DataDir)
	if err != nil {
		return
	}
	now := time.Now().UnixNano()
	for _, ent := range entries {
		name := ent.Name()
		if !ent.IsDir() || name == cacheDirName || name == nodesDirName {
			continue
		}
		st.scanJob(name, filepath.Join(st.cfg.DataDir, name), now)
	}
}

func (st *store) scanJob(name, dir string, now int64) {
	st.mu.Lock()
	if st.halted || st.draining {
		st.mu.Unlock()
		return
	}
	j, known := st.jobs[name]
	st.mu.Unlock()

	if !known {
		nj, ok := loadJobDir(name, dir)
		if !ok {
			return
		}
		st.mu.Lock()
		if _, dup := st.jobs[name]; dup {
			st.mu.Unlock()
			return // lost a race with a local submit
		}
		nj.remote = true
		st.jobs[name] = nj
		if nj.Seq > st.seq {
			st.seq = nj.Seq
		}
		st.mu.Unlock()
		j = nj
	}

	j.mu.Lock()
	eligible := j.remote && !j.state.terminal()
	j.mu.Unlock()
	if !eligible {
		return
	}

	// Fold the owner's progress in; if it completed the job, we are done.
	st.refreshRemote(j)
	if j.currentState().terminal() {
		j.hub.notify()
		return
	}

	// Still unfinished: adoptable the moment its lease is absent, released
	// or expired. The actual claim (and token bump) happens in next() —
	// two nodes may both adopt, exactly one wins the acquire.
	lease, err := readLease(dir)
	if err != nil {
		return
	}
	if lease.Node != "" && lease.Node != st.cfg.NodeID && now < lease.Deadline {
		return // owner is alive
	}
	st.mu.Lock()
	if st.halted || st.draining {
		st.mu.Unlock()
		return
	}
	j.mu.Lock()
	if !j.remote || j.state.terminal() {
		j.mu.Unlock()
		st.mu.Unlock()
		return
	}
	j.remote = false
	j.state = StateQueued
	j.mu.Unlock()
	st.queue = append(st.queue, j)
	sort.Slice(st.queue, func(a, b int) bool { return st.queue[a].Seq < st.queue[b].Seq })
	if lease.Node != "" && lease.Node != st.cfg.NodeID && lease.Deadline != 0 {
		// An expired (not cleanly released) foreign lease: a failover steal.
		st.steals.Add(1)
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

// loadJobDir materializes a Job from a directory a peer node created.
func loadJobDir(name, dir string) (*Job, bool) {
	specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, false
	}
	var spec Spec
	if err := json.Unmarshal(specData, &spec); err != nil {
		return nil, false
	}
	var rec jobRecord
	if data, err := os.ReadFile(filepath.Join(dir, "state.json")); err == nil {
		json.Unmarshal(data, &rec)
	}
	if rec.ID == "" {
		rec.ID = name
	}
	if rec.State == "" {
		rec.State = StateQueued
	}
	j := &Job{ID: rec.ID, Seq: rec.Seq, Spec: spec, Dir: dir,
		state: rec.State, attempts: rec.Attempts, preemptions: rec.Preemptions}
	j.errMsg = rec.Error
	return j, true
}

// nodes lists every daemon that has ever heartbeat into this store,
// sorted by node id.
func (st *store) nodes() []NodeStatus {
	entries, err := os.ReadDir(st.nodesDir)
	if err != nil {
		return nil
	}
	var out []NodeStatus
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.nodesDir, ent.Name()))
		if err != nil {
			continue
		}
		var rec nodeRecord
		if json.Unmarshal(data, &rec) != nil || rec.Node == "" {
			continue
		}
		renewed := time.Unix(0, rec.Renewed)
		ttl := time.Duration(rec.TTLNS)
		if ttl <= 0 {
			ttl = 10 * time.Second
		}
		out = append(out, NodeStatus{
			Node:     rec.Node,
			PID:      rec.PID,
			Running:  rec.Running,
			Draining: rec.Draining,
			Renewed:  renewed,
			Expired:  time.Since(renewed) > 2*ttl,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}
