package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
	"github.com/crp-eda/crp/internal/checkpoint"
	"github.com/crp-eda/crp/internal/eco"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/lefdef"
)

// Worker attempt exit protocol. In child-process mode these are real
// process exit codes; in in-process mode the same codes flow through the
// supervise.Job return value, so the pool handles both modes identically.
const (
	// ExitPreempted reports a checkpoint-backed preemption: the attempt
	// stopped at a snapshot boundary on request and wrote no outputs. The
	// job must be requeued, not retried or failed.
	ExitPreempted = 44
	// ExitFenced reports that the attempt's durable writes were refused by
	// the lease fence: this node's claim was superseded — the job belongs
	// to another node now. The pool must detach (no retry, no release, no
	// state writes); the thief's run is the only one that counts.
	ExitFenced = 45
	// exitFailure is an ordinary failed attempt (retry from checkpoint).
	exitFailure = 1
)

// Environment of a child worker process (see RunWorkerAttempt).
const (
	// EnvRunJob carries the job directory; its presence turns a crpd (or
	// test binary) invocation into a single-attempt worker process.
	EnvRunJob = "CRPD_RUN_JOB"
	// EnvAttempt carries the 1-based attempt number for event attribution.
	EnvAttempt = "CRPD_ATTEMPT"
	// EnvGrace carries the preemption grace (time.Duration string) after
	// which a stop request stops waiting for a checkpoint boundary.
	EnvGrace = "CRPD_GRACE"
	// EnvNode and EnvToken carry the parent's node id and claimed fencing
	// token; the child fences its durable writes against the on-disk lease
	// record and exits ExitFenced when superseded.
	EnvNode  = "CRPD_NODE"
	EnvToken = "CRPD_LEASE_TOKEN"
	// EnvCacheDir carries the exact-result-cache root the child populates
	// after a successful commit; empty skips population.
	EnvCacheDir = "CRPD_CACHE_DIR"
)

// attemptEnv is everything one worker attempt needs beyond the job
// directory contents.
type attemptEnv struct {
	dir     string
	attempt int
	// grace bounds how long a preemption request waits for the next
	// checkpoint boundary before hard-cancelling the flow (a stage that
	// commits no checkpoints — GR, DR — would otherwise stall a drain).
	grace time.Duration
	// instrument, when non-nil, may rewrite the attempt's flow config and
	// checkpointing before the run — the service-level chaos seam.
	instrument func(*flow.Config, *flow.Checkpointing)
	// publish journals one event (and, in-process, wakes streamers). The
	// caller is expected to have wrapped it in the fence: a stale owner's
	// events must be dropped, not appended to a journal it no longer owns.
	publish func(Event)
	// fence guards every durable write of this attempt (checkpoints, final
	// outputs, cache population) with the claim's lease token; nil runs
	// unfenced (legacy single-node invocation).
	fence func() error
	// onFlow, when non-nil, receives the flow's hard-cancel as soon as it
	// exists — the seam Halt uses to kill an in-process attempt instantly.
	onFlow func(cancel func())
	// cacheDir is the exact-result-cache root to populate on success;
	// empty skips population.
	cacheDir string
}

// runFlowAttempt executes one resume-or-start attempt of the job in
// env.dir: parse or generate the design, open the per-job checkpoint
// manager, run the checkpointed flow with every progress point journaled,
// and commit outputs atomically on completion.
//
// ctx is the preemption channel, not the flow's context: a cancellation
// only takes effect at the next checkpoint boundary (via AfterSave), or
// after env.grace for boundary-free stages — so a preempted attempt never
// journals a timing-dependent rollback and resume stays bit-identical.
func runFlowAttempt(ctx context.Context, env attemptEnv) int {
	spec, err := loadSpec(env.dir)
	if err != nil {
		return failAttempt(env, fmt.Errorf("loading spec: %w", err))
	}
	if spec.isECO() {
		return runECOAttempt(ctx, env, spec)
	}
	d, err := spec.Design()
	if err != nil {
		return failAttempt(env, fmt.Errorf("building design: %w", err))
	}
	mgr, err := checkpoint.Open(filepath.Join(env.dir, "ckpt"), 0)
	if err != nil {
		return failAttempt(env, fmt.Errorf("opening checkpoints: %w", err))
	}

	// fctx is the context the flow actually runs under. It is decoupled
	// from ctx so that preemption is boundary-gated: AfterSave trips it at
	// the first checkpoint commit past the request, and the grace watchdog
	// trips it when no boundary arrives in time.
	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	if env.onFlow != nil {
		env.onFlow(fcancel)
	}
	go func() {
		select {
		case <-ctx.Done():
			t := time.NewTimer(env.grace)
			defer t.Stop()
			select {
			case <-t.C:
				fcancel()
			case <-fctx.Done():
			}
		case <-fctx.Done():
		}
	}()

	if env.fence != nil {
		// Every checkpoint snapshot and manifest commit now verifies the
		// claim's token immediately before its publishing rename; a fenced
		// save surfaces as a flow "checkpoint-write-failed" degradation.
		mgr.SetGuard(env.fence)
	}

	cfg := spec.FlowConfig()
	ck := &flow.Checkpointing{
		Manager: mgr,
		AfterSave: func(int) {
			if ctx.Err() != nil {
				fcancel()
			}
		},
		OnEvent: func(e flow.Event) { env.publish(flowEvent(e, env.attempt)) },
	}
	if env.instrument != nil {
		env.instrument(&cfg, ck)
	}

	var def, guide bytes.Buffer
	res, err := flow.Resume(fctx, d, 0, cfg, ck, &def, &guide)
	if errors.Is(err, flow.ErrNoCheckpoint) {
		res, err = flow.RunCRPCheckpointed(fctx, d, 0, cfg, ck, &def, &guide)
	}
	if ctx.Err() != nil {
		// Preempted: the last committed snapshot is the hand-off point;
		// the partial outputs of this attempt are discarded.
		env.publish(Event{Kind: "preempted", Attempt: env.attempt})
		return ExitPreempted
	}
	if err != nil {
		return failAttempt(env, err)
	}

	out := result{
		Metrics: Metrics{
			WirelengthDBU: res.Metrics.WirelengthDBU,
			Vias:          res.Metrics.Vias,
			Score:         res.Metrics.Score,
			Truncated:     res.Metrics.Truncated,
		},
		TotalMoved: res.CRPStats.TotalMoved,
		Iterations: len(res.CRPStats.Iterations),
	}
	for _, dg := range res.Degradations {
		out.Degradations = append(out.Degradations, dg.String())
	}
	if err := commitResult(env.dir, out, def.Bytes(), guide.Bytes(), env.fence); err != nil {
		if errors.Is(err, ErrFenced) {
			// The claim was superseded mid-run: this node is a zombie for
			// the job. Nothing was published (the fence runs before every
			// rename); hand the verdict to the pool.
			return ExitFenced
		}
		return failAttempt(env, fmt.Errorf("committing outputs: %w", err))
	}
	if spec != nil {
		if hash, err := specHash(*spec); err == nil {
			// Best effort: a failed population only costs a future cache
			// miss. The fence still guards the publishing rename.
			populateCache(env.cacheDir, hash, env.dir, env.fence)
		}
	}
	return 0
}

// runECOAttempt executes one attempt of an incremental ECO job: rebuild
// the parent job's design, re-place it from the parent's committed
// out.def, and run flow.RunECO with the spec's delta. ECO attempts keep no
// checkpoints — the incremental run is deterministic and short, so a
// preempted or crashed attempt simply reruns from the parent's output and
// commits byte-identical artifacts.
func runECOAttempt(ctx context.Context, env attemptEnv, spec *Spec) int {
	parentDir := filepath.Join(filepath.Dir(env.dir), spec.ParentJob)
	parentSpec, err := loadSpec(parentDir)
	if err != nil {
		return failAttempt(env, fmt.Errorf("loading parent spec: %w", err))
	}
	pd, err := parentSpec.Design()
	if err != nil {
		return failAttempt(env, fmt.Errorf("building parent design: %w", err))
	}
	defData, err := os.ReadFile(filepath.Join(parentDir, "out.def"))
	if err != nil {
		return failAttempt(env, fmt.Errorf("reading parent output: %w", err))
	}
	// The committed DEF is the parent's placed design; reparsing it against
	// the parent's tech/macros yields the ECO base with final positions.
	base, err := lefdef.ParseDEF(bytes.NewReader(defData), pd.Tech, pd.Macros)
	if err != nil {
		return failAttempt(env, fmt.Errorf("parsing parent output: %w", err))
	}
	delta, err := eco.Parse(spec.ECODelta)
	if err != nil {
		return failAttempt(env, fmt.Errorf("parsing delta: %w", err))
	}

	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	if env.onFlow != nil {
		env.onFlow(fcancel)
	}
	go func() {
		select {
		case <-ctx.Done():
			t := time.NewTimer(env.grace)
			defer t.Stop()
			select {
			case <-t.C:
				fcancel()
			case <-fctx.Done():
			}
		case <-fctx.Done():
		}
	}()

	cfg := spec.FlowConfig()
	if env.instrument != nil {
		env.instrument(&cfg, &flow.Checkpointing{})
	}
	env.publish(Event{Kind: "eco-start", Attempt: env.attempt, Detail: spec.ParentJob})

	var def, guide bytes.Buffer
	res, err := flow.RunECO(fctx, base, nil, delta, cfg, flow.ECOOptions{}, &def, &guide)
	if ctx.Err() != nil {
		// Preempted: nothing to hand off — the deterministic rerun restarts
		// from the parent's committed output.
		env.publish(Event{Kind: "preempted", Attempt: env.attempt})
		return ExitPreempted
	}
	if err != nil {
		return failAttempt(env, err)
	}

	out := result{
		Metrics: Metrics{
			WirelengthDBU: res.Metrics.WirelengthDBU,
			Vias:          res.Metrics.Vias,
			Score:         res.Metrics.Score,
			Truncated:     res.Metrics.Truncated,
		},
		TotalMoved: res.CRPStats.TotalMoved,
		Iterations: len(res.CRPStats.Iterations),
	}
	if e := res.ECO; e != nil {
		out.ECO = &ECOSummary{
			DirtyCells:         e.DirtyCells,
			TotalCells:         e.TotalCells,
			Rounds:             e.Rounds,
			HaloWidened:        e.HaloWidened,
			FullRun:            e.FullRun,
			CandidateEstimates: e.CandidateEstimates,
		}
	}
	for _, dg := range res.Degradations {
		out.Degradations = append(out.Degradations, dg.String())
	}
	if err := commitResult(env.dir, out, def.Bytes(), guide.Bytes(), env.fence); err != nil {
		if errors.Is(err, ErrFenced) {
			return ExitFenced
		}
		return failAttempt(env, fmt.Errorf("committing outputs: %w", err))
	}
	if hash, err := jobHash(*spec, filepath.Dir(env.dir)); err == nil {
		populateCache(env.cacheDir, hash, env.dir, env.fence)
	}
	return 0
}

// failAttempt journals an attempt failure and returns the retryable code.
func failAttempt(env attemptEnv, err error) int {
	env.publish(Event{Kind: "degradation", Attempt: env.attempt,
		Stage: "service", Fault: "attempt-failed", Detail: err.Error()})
	return exitFailure
}

// commitResult atomically writes the job's final outputs and result
// summary. Each file commits independently via temp+fsync+rename, with the
// guard (the writer's lease fence; nil unfenced) verified immediately
// before each rename; the result.json write is last, so its presence
// implies complete outputs.
func commitResult(dir string, out result, defB, guideB []byte, guard func() error) error {
	if err := atomicio.WriteFileBytesGuarded(filepath.Join(dir, "out.def"), guard, defB); err != nil {
		return err
	}
	if err := atomicio.WriteFileBytesGuarded(filepath.Join(dir, "out.guide"), guard, guideB); err != nil {
		return err
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytesGuarded(filepath.Join(dir, "result.json"), guard, data)
}

func loadSpec(dir string) (*Spec, error) {
	data, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, err
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, err
	}
	return &spec, nil
}

// RunWorkerAttempt is the child-process worker entry point: crpd (and the
// service test binary) re-exec themselves with CRPD_RUN_JOB=<dir> to run
// exactly one attempt in an isolated process, so a worker crash — real
// SIGKILL included — can never take the daemon or its other jobs down.
// SIGTERM requests a checkpoint-backed preemption (exit ExitPreempted).
// When the parent passed a node id and lease token (CRPD_NODE,
// CRPD_LEASE_TOKEN), every durable write the child performs is fenced
// against the on-disk lease record; a superseded child exits ExitFenced.
// The returned value is the process exit code.
func RunWorkerAttempt(dir string) int {
	attempt, _ := strconv.Atoi(os.Getenv(EnvAttempt))
	if attempt <= 0 {
		attempt = 1
	}
	grace := 10 * time.Second
	if g, err := time.ParseDuration(os.Getenv(EnvGrace)); err == nil && g > 0 {
		grace = g
	}
	token, _ := strconv.ParseInt(os.Getenv(EnvToken), 10, 64)
	fence := staticFence(dir, os.Getenv(EnvNode), token)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		select {
		case <-sig:
			cancel()
		case <-ctx.Done():
		}
	}()
	return runFlowAttempt(ctx, attemptEnv{
		dir:     dir,
		attempt: attempt,
		grace:   grace,
		fence:   fence,
		publish: func(e Event) {
			if fence != nil && fence() != nil {
				return // stale owner: the journal is not ours to append to
			}
			appendEvent(dir, e)
		},
		cacheDir: os.Getenv(EnvCacheDir),
	})
}
