package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eco"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/lefdef"
)

// State is the lifecycle state of a job. Transitions:
//
//	queued → running → done
//	                 ↘ failed
//	running → queued      (checkpoint-backed preemption or daemon drain)
//	queued|running → cancelled
//
// The queued←running cycle is the preemption/migration loop: a preempted
// job keeps its checkpoint directory, so whichever worker slot picks it up
// next resumes from the last committed snapshot, losing at most one
// iteration.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateRetriesExhausted is the terminal state of a job whose
	// supervised activation ran out of its retry wall-clock budget
	// (Config.RetryBudget): the last attempt failed and the budget forbade
	// another. Distinct from StateFailed (which is the attempt-count cap)
	// so orchestrators can tell "crashed too many times" from "crashed for
	// too long".
	StateRetriesExhausted State = "retries_exhausted"
)

// terminal reports whether a state admits no further transitions.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled ||
		s == StateRetriesExhausted
}

// Spec is one job submission: the design — inline LEF/DEF text or a
// synthetic ispd generator spec — plus the CR&P parameters and the per-job
// budgets. The same spec always produces the same outputs, byte for byte,
// no matter how often the job is preempted, killed or migrated.
type Spec struct {
	// Tenant attributes the job for admission control and fairness;
	// empty means "default".
	Tenant string `json:"tenant,omitempty"`

	// LEF and DEF carry the design inline as text. Alternatively,
	// Synthetic names a deterministic ispd generator spec (the service
	// doubles as a benchmark-workload driver); exactly one of the two
	// forms must be present.
	LEF       string     `json:"lef,omitempty"`
	DEF       string     `json:"def,omitempty"`
	Synthetic *ispd.Spec `json:"synthetic,omitempty"`

	// K is the CR&P iteration count (0: the flow default of 10).
	K int `json:"k,omitempty"`
	// Gamma is the critical-set fraction (0: the paper default 0.6).
	Gamma float64 `json:"gamma,omitempty"`
	// Seed drives the selection randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Workers sizes the engine's parallel phases. In a multi-tenant
	// daemon a job must not grab the whole machine, so 0 means 2 here,
	// not GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// ShardRegions enables region-sharded iterations when > 0.
	ShardRegions int `json:"shard_regions,omitempty"`

	// Per-job budgets in milliseconds, mapped onto flow.Budgets
	// (0: unlimited). Admission pressure never shrinks these: a job
	// admitted with a budget keeps it for every attempt.
	FlowBudgetMS      int64 `json:"flow_budget_ms,omitempty"`
	IterationBudgetMS int64 `json:"iteration_budget_ms,omitempty"`
	ILPBudgetMS       int64 `json:"ilp_budget_ms,omitempty"`
	DRBudgetMS        int64 `json:"dr_budget_ms,omitempty"`

	// AdmissionDegradations records load-shed clamps applied at admission
	// (rung two of the shed ladder). It is part of the spec — and therefore
	// of the cache hash — because a shed-degraded job is a different
	// computation than the pristine submission; the flow folds each note
	// into Result.Degradations so the caller sees exactly what admission
	// took away. Client-supplied values are rejected at validation: only
	// the daemon writes this field.
	AdmissionDegradations []string `json:"admission_degradations,omitempty"`

	// ParentJob + ECODelta submit an incremental ECO job: the base design
	// is the committed out.def of the (done) parent job, and ECODelta is
	// the delta JSON internal/eco parses. ECO jobs carry no design of their
	// own — both fields must be present together, and are mutually
	// exclusive with LEF/DEF and Synthetic. The cache key folds the
	// parent's own canonical hash plus the canonical delta, so two ECO
	// submissions against byte-identical parents with the same edit hit
	// the same entry even across job ids.
	ParentJob string          `json:"parent_job,omitempty"`
	ECODelta  json.RawMessage `json:"eco_delta,omitempty"`
}

// isECO reports whether the spec is an incremental ECO submission.
func (sp *Spec) isECO() bool { return sp.ParentJob != "" && len(sp.ECODelta) > 0 }

// errInvalidValue marks a spec field whose value is syntactically valid
// JSON but semantically absurd — NaN, negative budgets, parameter values
// past any plausible use. The store maps it to the structured
// "invalid_spec" 400, distinct from the structural "bad_spec" rejections.
var errInvalidValue = errors.New("invalid value")

// Value-sanity bounds for Validate. Generous — they reject typos and
// hostile input, not ambitious workloads.
const (
	// maxSpecK bounds the CR&P iteration count; production runs use ~10.
	maxSpecK = 100_000
	// maxBudgetMS bounds every per-job budget at one week.
	maxBudgetMS = int64(7 * 24 * time.Hour / time.Millisecond)
	// maxSpecWorkers bounds a job's parallelism request.
	maxSpecWorkers = 4096
	// maxShardRegions bounds the region-sharding grid.
	maxShardRegions = 1 << 16
	// maxInlineDesignBytes bounds each inline LEF/DEF text individually
	// (the HTTP layer separately bounds the whole body).
	maxInlineDesignBytes = 60 << 20
	// maxSyntheticItems bounds a synthetic generator's cells and nets.
	maxSyntheticItems = 50_000_000
)

// Validate rejects malformed specs at admission time, before any queue
// slot is consumed. Structural problems (missing or contradictory design)
// keep their original errors; value-sanity problems — NaN/Inf floats,
// negative or absurd budgets and parameters, oversized inline designs —
// wrap errInvalidValue so the API maps them to "invalid_spec".
func (sp *Spec) Validate() error {
	inline := sp.LEF != "" || sp.DEF != ""
	if inline && (sp.LEF == "" || sp.DEF == "") {
		return errors.New("inline submission needs both lef and def")
	}
	if inline && sp.Synthetic != nil {
		return errors.New("submit either inline lef/def or a synthetic spec, not both")
	}
	ecoHalf := sp.ParentJob != "" || len(sp.ECODelta) > 0
	if ecoHalf && !sp.isECO() {
		return errors.New("eco submission needs both parent_job and eco_delta")
	}
	if sp.isECO() && (inline || sp.Synthetic != nil) {
		return errors.New("eco submission references its parent's design; drop lef/def/synthetic")
	}
	if !inline && sp.Synthetic == nil && !sp.isECO() {
		return errors.New("submission carries no design (lef/def, synthetic, or parent_job+eco_delta)")
	}
	if sp.isECO() {
		// Strict parse up front: a malformed delta is rejected at admission
		// with the structured invalid_spec code, before any queue slot,
		// worker or parent lookup is spent on it.
		if _, err := eco.Parse(sp.ECODelta); err != nil {
			return fmt.Errorf("%v: %w", err, errInvalidValue)
		}
	}
	if sp.K < 0 || sp.Gamma < 0 || sp.Gamma > 1 {
		return errors.New("k must be >= 0 and gamma in [0, 1]")
	}
	if math.IsNaN(sp.Gamma) || math.IsInf(sp.Gamma, 0) {
		return fmt.Errorf("gamma is not a finite number: %w", errInvalidValue)
	}
	if sp.K > maxSpecK {
		return fmt.Errorf("k %d exceeds the maximum %d: %w", sp.K, maxSpecK, errInvalidValue)
	}
	if sp.Workers < 0 || sp.Workers > maxSpecWorkers {
		return fmt.Errorf("workers %d outside [0, %d]: %w", sp.Workers, maxSpecWorkers, errInvalidValue)
	}
	if sp.ShardRegions < 0 || sp.ShardRegions > maxShardRegions {
		return fmt.Errorf("shard_regions %d outside [0, %d]: %w", sp.ShardRegions, maxShardRegions, errInvalidValue)
	}
	for _, b := range []struct {
		name string
		ms   int64
	}{
		{"flow_budget_ms", sp.FlowBudgetMS},
		{"iteration_budget_ms", sp.IterationBudgetMS},
		{"ilp_budget_ms", sp.ILPBudgetMS},
		{"dr_budget_ms", sp.DRBudgetMS},
	} {
		if b.ms < 0 || b.ms > maxBudgetMS {
			return fmt.Errorf("%s %d outside [0, %d]: %w", b.name, b.ms, maxBudgetMS, errInvalidValue)
		}
	}
	if len(sp.LEF) > maxInlineDesignBytes || len(sp.DEF) > maxInlineDesignBytes {
		return fmt.Errorf("inline design exceeds %d bytes: %w", maxInlineDesignBytes, errInvalidValue)
	}
	if sy := sp.Synthetic; sy != nil {
		if sy.Cells < 0 || sy.Cells > maxSyntheticItems || sy.Nets < 0 || sy.Nets > maxSyntheticItems {
			return fmt.Errorf("synthetic cells/nets outside [0, %d]: %w", maxSyntheticItems, errInvalidValue)
		}
		if math.IsNaN(sy.Utilisation) || math.IsInf(sy.Utilisation, 0) ||
			math.IsNaN(sy.IOFraction) || math.IsInf(sy.IOFraction, 0) {
			return fmt.Errorf("synthetic utilisation/io_fraction is not finite: %w", errInvalidValue)
		}
		if sy.Utilisation < 0 || sy.Utilisation > 1 || sy.IOFraction < 0 || sy.IOFraction > 1 {
			return fmt.Errorf("synthetic utilisation/io_fraction outside [0, 1]: %w", errInvalidValue)
		}
	}
	if len(sp.AdmissionDegradations) > 0 {
		return fmt.Errorf("admission_degradations is daemon-assigned, not client-settable: %w", errInvalidValue)
	}
	return nil
}

// FlowConfig maps the spec onto the flow configuration its attempts run
// under. The mapping is pure: reference runs in tests call it to reproduce
// a job's exact configuration.
func (sp *Spec) FlowConfig() flow.Config {
	cfg := flow.DefaultConfig()
	if sp.K > 0 {
		cfg.CRP.Iterations = sp.K
	}
	if sp.Gamma > 0 {
		cfg.CRP.Gamma = sp.Gamma
	}
	if sp.Seed != 0 {
		cfg.CRP.Seed = sp.Seed
	}
	cfg.CRP.Workers = sp.Workers
	if cfg.CRP.Workers <= 0 {
		cfg.CRP.Workers = 2
	}
	cfg.CRP.ShardRegions = sp.ShardRegions
	cfg.Budgets = flow.Budgets{
		Flow:         time.Duration(sp.FlowBudgetMS) * time.Millisecond,
		CRPIteration: time.Duration(sp.IterationBudgetMS) * time.Millisecond,
		ILP:          time.Duration(sp.ILPBudgetMS) * time.Millisecond,
		DR:           time.Duration(sp.DRBudgetMS) * time.Millisecond,
	}
	for _, note := range sp.AdmissionDegradations {
		cfg.AdmitDegradations = append(cfg.AdmitDegradations, flow.Degradation{
			Stage: "admission", Kind: "load-shed", Detail: note,
		})
	}
	return cfg
}

// Design produces the job's input design: parsed from the inline LEF/DEF
// text or generated from the synthetic spec. Both paths are deterministic,
// so every attempt — possibly in a different process — sees identical
// input.
func (sp *Spec) Design() (*db.Design, error) {
	if sp.isECO() {
		return nil, errors.New("eco spec has no design of its own; rebuild it from the parent job")
	}
	if sp.Synthetic != nil {
		return ispd.Generate(*sp.Synthetic)
	}
	t, macros, err := lefdef.ParseLEF(strings.NewReader(sp.LEF))
	if err != nil {
		return nil, fmt.Errorf("parsing lef: %w", err)
	}
	d, err := lefdef.ParseDEF(strings.NewReader(sp.DEF), t, macros)
	if err != nil {
		return nil, fmt.Errorf("parsing def: %w", err)
	}
	return d, nil
}

// tenant returns the admission tenant, defaulted.
func (sp *Spec) tenant() string {
	if sp.Tenant == "" {
		return "default"
	}
	return sp.Tenant
}

// Metrics is the job-level result summary (the full eval.Metrics carries
// per-net slices too heavy for a status endpoint).
type Metrics struct {
	WirelengthDBU int64   `json:"wirelength_dbu"`
	Vias          int64   `json:"vias"`
	Score         float64 `json:"score"`
	Truncated     bool    `json:"truncated,omitempty"`
}

// ECOSummary is the incremental-run footprint of an ECO job: how much of
// the design went dirty and whether the ladder fell back to a full run.
type ECOSummary struct {
	DirtyCells         int   `json:"dirty_cells"`
	TotalCells         int   `json:"total_cells"`
	Rounds             int   `json:"rounds"`
	HaloWidened        bool  `json:"halo_widened,omitempty"`
	FullRun            bool  `json:"full_run,omitempty"`
	CandidateEstimates int64 `json:"candidate_estimates"`
}

// result is the persisted outcome of a completed job (result.json in the
// job directory), written atomically by the worker attempt that finished
// the run.
type result struct {
	Metrics      Metrics     `json:"metrics"`
	Iterations   int         `json:"iterations"`
	TotalMoved   int         `json:"total_moved"`
	Degradations []string    `json:"degradations,omitempty"`
	ECO          *ECOSummary `json:"eco,omitempty"`
}

// Job is one unit of admitted work. Mutable fields are guarded by mu;
// the spec, ID, sequence number and directory are immutable after
// admission.
type Job struct {
	ID   string
	Seq  int
	Spec Spec
	Dir  string

	hub hub // event-stream wakeups for this job

	mu          sync.Mutex
	state       State
	attempts    int
	preemptions int
	workerPID   int
	errMsg      string
	// preempt cancels the running attempt's supervision context; nil
	// unless running. reason records why ("preempt", "drain", "cancel")
	// so the pool can requeue vs. terminate accordingly.
	preempt       func()
	preemptReason string
	// hardCancel stops the running attempt immediately — no checkpoint
	// boundary, no grace: the flow's hard context cancel (in-process) or a
	// SIGKILL of the child process. Halt uses it to simulate a node dying
	// mid-write.
	hardCancel func()
	// leaseToken is the fencing token of the current claim; 0 when not
	// claimed by this node.
	leaseToken int64
	// remote marks a job another node currently owns (live lease held
	// elsewhere). Remote jobs are tracked for status/listing but never
	// queued locally; the scan loop re-adopts them if their lease expires.
	remote bool
	// leaseLost marks a running job whose lease this node could not renew
	// (or whose writes came back fenced): ownership has moved, so the pool
	// detaches — no state writes, no requeue — instead of releasing.
	leaseLost bool
}

// Status is the externally visible job state (GET /v1/jobs/{id}).
type Status struct {
	ID          string   `json:"id"`
	Tenant      string   `json:"tenant"`
	State       State    `json:"state"`
	Iter        int      `json:"iter"`
	K           int      `json:"k"`
	TotalMoved  int      `json:"total_moved,omitempty"`
	Attempts    int      `json:"attempts"`
	Preemptions int      `json:"preemptions,omitempty"`
	WorkerPID   int      `json:"worker_pid,omitempty"`
	Error       string   `json:"error,omitempty"`
	Metrics     *Metrics `json:"metrics,omitempty"`
}

// jobRecord is the persisted control-plane state (state.json), written
// atomically on every transition so a restarted daemon can rebuild its
// queue: queued and running jobs are requeued (their checkpoints carry the
// data plane), terminal jobs stay terminal with their outputs fetchable.
type jobRecord struct {
	ID          string `json:"id"`
	Seq         int    `json:"seq"`
	State       State  `json:"state"`
	Attempts    int    `json:"attempts"`
	Preemptions int    `json:"preemptions"`
	Error       string `json:"error,omitempty"`
}

func (j *Job) record() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobRecord{
		ID: j.ID, Seq: j.Seq, State: j.state,
		Attempts: j.attempts, Preemptions: j.preemptions, Error: j.errMsg,
	}
}

// snapshot returns the in-memory half of the job's status; the store fills
// in journal-derived progress.
func (j *Job) snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:          j.ID,
		Tenant:      j.Spec.tenant(),
		State:       j.state,
		Attempts:    j.attempts,
		Preemptions: j.preemptions,
		WorkerPID:   j.workerPID,
		Error:       j.errMsg,
	}
}

func (j *Job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) setPID(pid int) {
	j.mu.Lock()
	j.workerPID = pid
	j.mu.Unlock()
}
