// Package service is the multi-tenant CR&P job daemon behind cmd/crpd: a
// long-running composition of the repo's robustness primitives into a
// serving system. Jobs — LEF/DEF (or synthetic) designs plus CR&P
// parameters — are admitted into an explicitly bounded queue, executed by
// a bounded worker pool under per-job flow.Budgets with per-job crash-safe
// checkpoint directories, and observable over an HTTP/JSON API that
// streams per-iteration progress and degradation events.
//
// The contract every fault-tolerance feature hangs off: a job's outputs
// are a pure function of its spec. Preemption, worker crashes (in-process
// panics or SIGKILLed child processes), daemon restarts and migration
// between worker slots all funnel through checkpoint/resume, which is
// bit-identical to an uninterrupted run — so the service-level chaos suite
// can assert byte equality, not just liveness.
//
// Overload is explicit, never degenerate: submissions beyond the queue
// capacity or a tenant's cap are rejected with structured 429-class
// errors and leave no state behind; running jobs keep the budgets they
// were admitted with; a draining daemon checkpoints every in-flight job
// (preempting at snapshot boundaries) before its workers exit.
package service

import (
	"context"
	"fmt"
	"time"

	"github.com/crp-eda/crp/internal/flow"
)

// Config tunes the daemon. The zero value is not runnable; use
// (Config).withDefaults via New.
type Config struct {
	// DataDir holds one subdirectory per job: spec, state, checkpoint
	// directory, event journal, outputs. It is the recovery root a
	// restarted daemon rebuilds its queue from.
	DataDir string
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// QueueCap bounds the waiting queue; submissions beyond it are
	// rejected with a structured queue_full error (default 16).
	QueueCap int
	// TenantMaxActive caps one tenant's queued+running jobs at admission
	// (default QueueCap+Workers: effectively no per-tenant admission cap).
	TenantMaxActive int
	// TenantMaxRunning caps one tenant's concurrently running jobs at
	// scheduling time (default Workers: no cap below the pool size).
	TenantMaxRunning int
	// RetryCap is the supervised attempt cap per job activation
	// (default 3). Preemptions do not consume attempts.
	RetryCap int
	// RetryBackoff is the base backoff between failed attempts
	// (default 250ms; doubled per retry, capped at 8x).
	RetryBackoff time.Duration
	// DrainGrace bounds how long a preemption request waits for the next
	// checkpoint boundary before hard-cancelling the attempt (default 10s).
	DrainGrace time.Duration
	// Exec, when non-empty, runs every attempt as an isolated child
	// process: the argv is executed with CRPD_RUN_JOB=<jobdir> in its
	// environment (cmd/crpd passes its own binary). Empty runs attempts
	// in-process.
	Exec []string
	// Instrument, when non-nil, may rewrite each in-process attempt's
	// flow config and checkpointing before it runs — the chaos-test seam
	// for injecting faults into a specific job's specific attempt. Not
	// applied in Exec mode (child processes are instrumented by killing
	// them, which needs no seam).
	Instrument func(jobID string, attempt int, cfg *flow.Config, ck *flow.Checkpointing)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.TenantMaxActive <= 0 {
		c.TenantMaxActive = c.QueueCap + c.Workers
	}
	if c.TenantMaxRunning <= 0 {
		c.TenantMaxRunning = c.Workers
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	return c
}

// Service is one running daemon instance.
type Service struct {
	cfg   Config
	store *store
	pool  *pool
}

// New builds a service on cfg.DataDir, recovers any jobs a previous
// daemon left behind (queued and running jobs re-enter the queue and
// resume from their checkpoints), and starts the worker pool.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	st := newStore(cfg)
	if _, err := st.recover(); err != nil {
		return nil, fmt.Errorf("service: recovering %s: %w", cfg.DataDir, err)
	}
	s := &Service{cfg: cfg, store: st, pool: newPool(cfg, st)}
	s.pool.start()
	return s, nil
}

// Submit admits a job (or rejects it with a structured *APIError).
func (s *Service) Submit(spec Spec) (Status, error) {
	j, err := s.store.submit(spec)
	if err != nil {
		return Status{}, err
	}
	return s.store.status(j), nil
}

// Status returns a job's current status.
func (s *Service) Status(id string) (Status, error) {
	j, err := s.store.get(id)
	if err != nil {
		return Status{}, err
	}
	return s.store.status(j), nil
}

// List returns every known job, newest first.
func (s *Service) List() []Status { return s.store.list() }

// Stats snapshots the service counters.
func (s *Service) Stats() Stats { return s.store.stats() }

// Preempt requests a checkpoint-backed preemption of a running job: it
// stops at its next snapshot boundary, requeues, and resumes on any free
// worker slot, losing at most one iteration.
func (s *Service) Preempt(id string) error {
	j, err := s.store.get(id)
	if err != nil {
		return err
	}
	return s.store.preemptJob(j, "preempt")
}

// Cancel terminates a job. A running job stops at its next checkpoint
// boundary (bounded by DrainGrace); a queued job is cancelled in place.
func (s *Service) Cancel(id string) error {
	j, err := s.store.get(id)
	if err != nil {
		return err
	}
	return s.store.preemptJob(j, "cancel")
}

// Drain gracefully shuts the service down: admission closes (submissions
// get a structured draining error), every running job is preempted at its
// next checkpoint boundary and persisted back into the queue, and the
// call returns when all workers have exited or ctx expires. After a clean
// drain, a new Service on the same DataDir resumes every unfinished job
// from its checkpoints.
func (s *Service) Drain(ctx context.Context) error {
	s.store.beginDrain()
	return s.pool.wait(ctx)
}
