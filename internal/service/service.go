// Package service is the multi-tenant CR&P job daemon behind cmd/crpd: a
// long-running composition of the repo's robustness primitives into a
// serving system. Jobs — LEF/DEF (or synthetic) designs plus CR&P
// parameters — are admitted into an explicitly bounded queue, executed by
// a bounded worker pool under per-job flow.Budgets with per-job crash-safe
// checkpoint directories, and observable over an HTTP/JSON API that
// streams per-iteration progress and degradation events.
//
// The contract every fault-tolerance feature hangs off: a job's outputs
// are a pure function of its spec. Preemption, worker crashes (in-process
// panics or SIGKILLed child processes), daemon restarts and migration
// between worker slots all funnel through checkpoint/resume, which is
// bit-identical to an uninterrupted run — so the service-level chaos suite
// can assert byte equality, not just liveness.
//
// Overload is explicit, never degenerate: submissions beyond the queue
// capacity or a tenant's cap are rejected with structured 429-class
// errors and leave no state behind; running jobs keep the budgets they
// were admitted with; a draining daemon checkpoints every in-flight job
// (preempting at snapshot boundaries) before its workers exit.
package service

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"github.com/crp-eda/crp/internal/flow"
)

// Config tunes the daemon. The zero value is not runnable; use
// (Config).withDefaults via New.
type Config struct {
	// DataDir holds one subdirectory per job: spec, state, checkpoint
	// directory, event journal, outputs. It is the recovery root a
	// restarted daemon rebuilds its queue from.
	DataDir string
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// QueueCap bounds the waiting queue; submissions beyond it are
	// rejected with a structured queue_full error (default 16).
	QueueCap int
	// TenantMaxActive caps one tenant's queued+running jobs at admission
	// (default QueueCap+Workers: effectively no per-tenant admission cap).
	TenantMaxActive int
	// TenantMaxRunning caps one tenant's concurrently running jobs at
	// scheduling time (default Workers: no cap below the pool size).
	TenantMaxRunning int
	// RetryCap is the supervised attempt cap per job activation
	// (default 3). Preemptions do not consume attempts.
	RetryCap int
	// RetryBackoff is the base backoff between failed attempts
	// (default 250ms; doubled per retry, capped at 8x).
	RetryBackoff time.Duration
	// DrainGrace bounds how long a preemption request waits for the next
	// checkpoint boundary before hard-cancelling the attempt (default 10s).
	DrainGrace time.Duration
	// Exec, when non-empty, runs every attempt as an isolated child
	// process: the argv is executed with CRPD_RUN_JOB=<jobdir> in its
	// environment (cmd/crpd passes its own binary). Empty runs attempts
	// in-process.
	Exec []string
	// Instrument, when non-nil, may rewrite each in-process attempt's
	// flow config and checkpointing before it runs — the chaos-test seam
	// for injecting faults into a specific job's specific attempt. Not
	// applied in Exec mode (child processes are instrumented by killing
	// them, which needs no seam).
	Instrument func(jobID string, attempt int, cfg *flow.Config, ck *flow.Checkpointing)

	// NodeID identifies this daemon in the shared store (default
	// "node-<pid>"). Daemons sharing a DataDir MUST use distinct ids:
	// the id is the lease owner, the fencing identity and the liveness
	// record name.
	NodeID string
	// LeaseTTL is how long a job claim survives without heartbeat renewal
	// before any node may steal it (default 10s). Failover latency and
	// zombie-tolerance both scale with it.
	LeaseTTL time.Duration
	// HeartbeatEvery is the lease-renewal and liveness cadence (default
	// LeaseTTL/4).
	HeartbeatEvery time.Duration
	// RescanEvery is how often the shared store is scanned for peers'
	// jobs and expired leases to adopt (default LeaseTTL).
	RescanEvery time.Duration
	// LeaseHooks inject deterministic lease-layer faults — renewal drops
	// (partitions), pre-write stalls — for the failover chaos suite.
	LeaseHooks LeaseHooks
	// RetryBudget caps one activation's total retry wall-clock (attempts
	// plus backoffs); exhaustion is the terminal retries_exhausted state.
	// 0 means uncapped.
	RetryBudget time.Duration
	// Shed enables rung two of the load-shed ladder — degraded admission
	// near queue saturation. Nil disables that rung; cache serving and
	// the structured 429 always apply.
	Shed *ShedPolicy
	// DisableCache turns off exact-result-cache serving at admission.
	// Population still happens on success, so enabling later benefits
	// from earlier runs.
	DisableCache bool
	// CacheMaxEntries and CacheMaxBytes bound the exact result cache; the
	// least-recently-served entries are evicted when either bound is
	// exceeded (at startup and after each completed job), and every
	// eviction is counted in Stats.CacheEvictions. 0 means unbounded.
	CacheMaxEntries int
	CacheMaxBytes   int64
}

// ShedPolicy tunes degraded admission: once the queue depth reaches
// Threshold×QueueCap (but before it is full), each submission is admitted
// with a clamped spec — fewer CR&P iterations, a tighter flow budget —
// and every clamp is recorded in the spec's AdmissionDegradations, which
// the flow folds into Result.Degradations. The caller always learns
// exactly what admission took away.
type ShedPolicy struct {
	// Threshold is the engagement fraction of QueueCap (default 0.75).
	Threshold float64
	// MaxK caps a shed-admitted job's CR&P iteration count (default 2;
	// negative leaves K alone).
	MaxK int
	// FlowBudgetMS tightens a shed-admitted job's whole-flow budget to at
	// most this many milliseconds (0 leaves budgets alone).
	FlowBudgetMS int64
}

// engageDepth is the queue depth at which the policy engages.
func (p *ShedPolicy) engageDepth(queueCap int) int {
	t := p.Threshold
	if t <= 0 || t > 1 {
		t = 0.75
	}
	at := int(math.Ceil(t * float64(queueCap)))
	if at < 1 {
		at = 1
	}
	return at
}

// clamp degrades sp in place, appending one AdmissionDegradations note
// per clamp and returning the notes.
func (p *ShedPolicy) clamp(sp *Spec) []string {
	var notes []string
	maxK := p.MaxK
	if maxK == 0 {
		maxK = 2
	}
	k := sp.K
	if k == 0 {
		k = flow.DefaultConfig().CRP.Iterations
	}
	if maxK > 0 && k > maxK {
		sp.K = maxK
		notes = append(notes, fmt.Sprintf("k clamped %d -> %d under load shed", k, maxK))
	}
	if p.FlowBudgetMS > 0 && (sp.FlowBudgetMS == 0 || sp.FlowBudgetMS > p.FlowBudgetMS) {
		notes = append(notes, fmt.Sprintf("flow budget tightened to %dms under load shed", p.FlowBudgetMS))
		sp.FlowBudgetMS = p.FlowBudgetMS
	}
	sp.AdmissionDegradations = append(sp.AdmissionDegradations, notes...)
	return notes
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.TenantMaxActive <= 0 {
		c.TenantMaxActive = c.QueueCap + c.Workers
	}
	if c.TenantMaxRunning <= 0 {
		c.TenantMaxRunning = c.Workers
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.NodeID == "" {
		c.NodeID = fmt.Sprintf("node-%d", os.Getpid())
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 4
	}
	if c.RescanEvery <= 0 {
		c.RescanEvery = c.LeaseTTL
	}
	return c
}

// Service is one running daemon instance — one node of the (possibly
// multi-node) job store rooted at Config.DataDir.
type Service struct {
	cfg     Config
	store   *store
	pool    *pool
	schedWG sync.WaitGroup
}

// New builds a service on cfg.DataDir, recovers any jobs a previous
// daemon left behind (queued and running jobs re-enter the queue and
// resume from their checkpoints; jobs another live node holds leases on
// are tracked as remote), and starts the worker pool and the
// heartbeat/scan scheduler.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	st := newStore(cfg)
	if err := st.ensureDirs(); err != nil {
		return nil, fmt.Errorf("service: preparing %s: %w", cfg.DataDir, err)
	}
	if _, err := st.recover(); err != nil {
		return nil, fmt.Errorf("service: recovering %s: %w", cfg.DataDir, err)
	}
	st.enforceCacheBounds()
	s := &Service{cfg: cfg, store: st, pool: newPool(cfg, st)}
	s.pool.start()
	s.schedWG.Add(1)
	go s.schedule()
	return s, nil
}

// schedule is the node-liveness loop: heartbeats renew this node's
// record and its running jobs' leases; periodic scans reconcile the
// shared store, adopting jobs whose owner died. Exits on drain or halt.
func (s *Service) schedule() {
	defer s.schedWG.Done()
	s.store.heartbeat()
	hb := time.NewTicker(s.cfg.HeartbeatEvery)
	defer hb.Stop()
	scan := time.NewTicker(s.cfg.RescanEvery)
	defer scan.Stop()
	for {
		select {
		case <-s.store.stopCh:
			return
		case <-hb.C:
			s.store.heartbeat()
		case <-scan.C:
			s.store.scan()
		}
	}
}

// Submit admits a job (or rejects it with a structured *APIError).
func (s *Service) Submit(spec Spec) (Status, error) {
	j, err := s.store.submit(spec)
	if err != nil {
		return Status{}, err
	}
	return s.store.status(j), nil
}

// Status returns a job's current status.
func (s *Service) Status(id string) (Status, error) {
	j, err := s.store.get(id)
	if err != nil {
		return Status{}, err
	}
	return s.store.status(j), nil
}

// List returns every known job, newest first.
func (s *Service) List() []Status { return s.store.list() }

// Stats snapshots the service counters.
func (s *Service) Stats() Stats { return s.store.stats() }

// Preempt requests a checkpoint-backed preemption of a running job: it
// stops at its next snapshot boundary, requeues, and resumes on any free
// worker slot, losing at most one iteration.
func (s *Service) Preempt(id string) error {
	j, err := s.store.get(id)
	if err != nil {
		return err
	}
	return s.store.preemptJob(j, "preempt")
}

// Cancel terminates a job. A running job stops at its next checkpoint
// boundary (bounded by DrainGrace); a queued job is cancelled in place.
func (s *Service) Cancel(id string) error {
	j, err := s.store.get(id)
	if err != nil {
		return err
	}
	return s.store.preemptJob(j, "cancel")
}

// Drain gracefully shuts the service down: admission closes (submissions
// get a structured draining error), every running job is preempted at its
// next checkpoint boundary and persisted back into the queue, and the
// call returns when all workers have exited or ctx expires. After a clean
// drain, a new Service on the same DataDir resumes every unfinished job
// from its checkpoints.
func (s *Service) Drain(ctx context.Context) error {
	s.store.beginDrain()
	s.schedWG.Wait()
	return s.pool.wait(ctx)
}

// Halt simulates this node dying without warning — the in-process
// equivalent of SIGKILL, for the failover chaos suite. Heartbeats,
// scheduling and every durable write stop immediately; leases are NOT
// released and expire on their own; running attempts are hard-cancelled.
// Another node sharing the store adopts the halted node's jobs once their
// leases lapse and resumes them from their latest checkpoints. A halted
// service supports only read-only calls and Drain (to reap its worker
// goroutines); Halt is never undone.
func (s *Service) Halt() {
	s.store.halt()
	s.schedWG.Wait()
}

// Nodes lists every daemon that has heartbeat into this store
// (GET /v1/nodes).
func (s *Service) Nodes() []NodeStatus { return s.store.nodes() }

// Scan forces one reconciliation pass of the shared store — what the
// scheduler does every RescanEvery. Tests (and impatient operators) use
// it to adopt a dead peer's jobs without waiting out the scan interval.
func (s *Service) Scan() { s.store.scan() }
