package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/faultinject"
)

// The lease unit suite pins the clock edges the failover chaos tests rely
// on: expiry is exact (stealable the instant now >= deadline, not one
// nanosecond earlier), the fencing token is strictly monotonic across every
// acquisition, racing steals elect exactly one winner, and the fault seams
// (dropped renewals, stalled lease writes) degrade without corrupting the
// record. Clocks are injected — no test here sleeps its way to an expiry.

// fixedClock builds a leaseManager whose clock reads a settable instant.
func fixedClock(node string, ttl time.Duration) (*leaseManager, *time.Time) {
	lm := newLeaseManager(node, ttl, LeaseHooks{})
	at := time.Unix(1_700_000_000, 0)
	lm.now = func() time.Time { return at }
	return lm, &at
}

func TestLeaseExpiryExactlyAtDeadline(t *testing.T) {
	dir := t.TempDir()
	ttl := time.Second
	lmA, _ := fixedClock("nodeA", ttl)
	rec, ok, err := lmA.acquire(dir)
	if err != nil || !ok {
		t.Fatalf("initial acquire: ok=%v err=%v", ok, err)
	}
	if rec.Token != 1 {
		t.Fatalf("first token = %d, want 1", rec.Token)
	}
	deadline := time.Unix(0, rec.Deadline)

	// One nanosecond before the deadline the lease is still the owner's.
	lmB, atB := fixedClock("nodeB", ttl)
	*atB = deadline.Add(-time.Nanosecond)
	if _, ok, err := lmB.acquire(dir); err != nil || ok {
		t.Fatalf("steal 1ns before deadline: ok=%v err=%v, want held", ok, err)
	}

	// At the deadline, exactly, it is anyone's.
	*atB = deadline
	stolen, ok, err := lmB.acquire(dir)
	if err != nil || !ok {
		t.Fatalf("steal at deadline: ok=%v err=%v, want stolen", ok, err)
	}
	if stolen.Token != rec.Token+1 {
		t.Errorf("stolen token = %d, want %d", stolen.Token, rec.Token+1)
	}
	if stolen.Node != "nodeB" {
		t.Errorf("stolen owner = %q, want nodeB", stolen.Node)
	}

	// The loser's fence fails from the moment of the steal.
	if err := lmA.fence(dir, rec.Token)(); !errors.Is(err, ErrFenced) {
		t.Errorf("superseded fence = %v, want ErrFenced", err)
	}
}

// TestLeaseReacquireOwnLease: the owner itself may re-acquire (restart after
// crash on the same node) and the token still bumps — fencing out its own
// previous incarnation's in-flight writes.
func TestLeaseReacquireOwnLease(t *testing.T) {
	dir := t.TempDir()
	lm, _ := fixedClock("nodeA", time.Second)
	first, ok, err := lm.acquire(dir)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	second, ok, err := lm.acquire(dir)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if second.Token != first.Token+1 {
		t.Errorf("re-acquired token = %d, want %d", second.Token, first.Token+1)
	}
	if err := lm.fence(dir, first.Token)(); !errors.Is(err, ErrFenced) {
		t.Errorf("previous incarnation's fence = %v, want ErrFenced", err)
	}
	if err := lm.fence(dir, second.Token)(); err != nil {
		t.Errorf("current incarnation's fence = %v, want nil", err)
	}
}

// TestLeaseRacingSteals: N nodes race to steal one expired lease — exactly
// one wins, the losers see a live foreign lease, and the winner's token is
// the old token plus one.
func TestLeaseRacingSteals(t *testing.T) {
	dir := t.TempDir()
	owner, _ := fixedClock("node0", time.Second)
	first, ok, err := owner.acquire(dir)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	stealAt := time.Unix(0, first.Deadline).Add(time.Second)

	const thieves = 8
	recs := make([]leaseRecord, thieves)
	oks := make([]bool, thieves)
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		lm := newLeaseManager(fmt.Sprintf("thief-%d", i), time.Minute, LeaseHooks{})
		lm.now = func() time.Time { return stealAt }
		wg.Add(1)
		go func(i int, lm *leaseManager) {
			defer wg.Done()
			rec, ok, err := lm.acquire(dir)
			if err != nil {
				t.Errorf("thief %d: %v", i, err)
				return
			}
			recs[i], oks[i] = rec, ok
		}(i, lm)
	}
	wg.Wait()

	winners := 0
	var winner leaseRecord
	for i := range oks {
		if oks[i] {
			winners++
			winner = recs[i]
		}
	}
	if winners != 1 {
		t.Fatalf("racing steal elected %d winners, want exactly 1", winners)
	}
	if winner.Token != first.Token+1 {
		t.Errorf("winner token = %d, want %d", winner.Token, first.Token+1)
	}
	final, err := readLease(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final != winner {
		t.Errorf("on-disk record %+v differs from winner's %+v", final, winner)
	}
}

// TestLeaseTokenMonotonicAcrossSteals: a chain of expiries and steals by
// alternating nodes only ever grows the token, by exactly one per
// acquisition.
func TestLeaseTokenMonotonicAcrossSteals(t *testing.T) {
	dir := t.TempDir()
	var last int64
	at := time.Unix(1_700_000_000, 0)
	for round := 0; round < 6; round++ {
		lm := newLeaseManager(fmt.Sprintf("node-%d", round%2), 100*time.Millisecond, LeaseHooks{})
		now := at
		lm.now = func() time.Time { return now }
		rec, ok, err := lm.acquire(dir)
		if err != nil || !ok {
			t.Fatalf("round %d: ok=%v err=%v", round, ok, err)
		}
		if rec.Token != last+1 {
			t.Fatalf("round %d: token %d, want %d", round, rec.Token, last+1)
		}
		last = rec.Token
		at = time.Unix(0, rec.Deadline) // next round steals exactly at expiry
	}
}

// TestLeaseRenewal: renewal pushes the deadline forward for the holder,
// reports ErrLeaseLost for a superseded token, and a renewal dropped by the
// partition seam claims success while leaving the shared record untouched.
func TestLeaseRenewal(t *testing.T) {
	dir := t.TempDir()
	lm, at := fixedClock("nodeA", time.Second)
	rec, ok, err := lm.acquire(dir)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}

	*at = at.Add(500 * time.Millisecond)
	if err := lm.renew(dir, rec.Token); err != nil {
		t.Fatalf("renew: %v", err)
	}
	cur, err := readLease(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := at.Add(time.Second).UnixNano(); cur.Deadline != want {
		t.Errorf("renewed deadline = %d, want %d", cur.Deadline, want)
	}

	// A thief supersedes the token; the old owner's renewal is refused.
	thief, thiefAt := fixedClock("nodeB", time.Second)
	*thiefAt = time.Unix(0, cur.Deadline)
	if _, ok, err := thief.acquire(dir); err != nil || !ok {
		t.Fatal(ok, err)
	}
	if err := lm.renew(dir, rec.Token); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("stale renew = %v, want ErrLeaseLost", err)
	}
}

func TestLeaseRenewalDroppedByPartition(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(faultinject.Plan{DropRenewalsFromCall: 1})
	lm := newLeaseManager("nodeA", time.Second, LeaseHooks{DropRenewal: inj.RenewDropHook()})
	at := time.Unix(1_700_000_000, 0)
	lm.now = func() time.Time { return at }
	rec, ok, err := lm.acquire(dir)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}

	at = at.Add(500 * time.Millisecond)
	if err := lm.renew(dir, rec.Token); err != nil {
		t.Fatalf("dropped renew reported %v, want nil (the node must not notice)", err)
	}
	cur, err := readLease(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Deadline != rec.Deadline {
		t.Errorf("dropped renewal moved the deadline %d -> %d; the store must never see it",
			rec.Deadline, cur.Deadline)
	}
	if fired := inj.Fired(); len(fired) != 1 || !strings.Contains(fired[0], "renewal-dropped") {
		t.Errorf("injector fired %v, want one renewal-dropped", fired)
	}
}

// TestLeaseRenewalUnderWriteStall: a stalled lease write (fsync pause)
// delays hand-off but corrupts nothing — the renewal completes, the record
// decodes, and the deadline lands where the renewal's clock put it.
func TestLeaseRenewalUnderWriteStall(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(faultinject.Plan{
		StallLeaseWriteAtCall: 2, // the renewal's write (acquire is call 1)
		LeaseWriteStall:       50 * time.Millisecond,
	})
	lm, at := fixedClock("nodeA", time.Second)
	lm.hooks = LeaseHooks{BeforeWrite: inj.LeaseWriteHook()}
	rec, ok, err := lm.acquire(dir)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}

	*at = at.Add(300 * time.Millisecond)
	start := time.Now()
	if err := lm.renew(dir, rec.Token); err != nil {
		t.Fatalf("stalled renew: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("renew took %v; the stall seam did not engage", elapsed)
	}
	cur, err := readLease(dir)
	if err != nil {
		t.Fatalf("record after stalled write: %v", err)
	}
	if want := at.Add(time.Second).UnixNano(); cur.Deadline != want {
		t.Errorf("deadline after stalled renew = %d, want %d", cur.Deadline, want)
	}
	if fired := inj.Fired(); len(fired) != 1 || !strings.Contains(fired[0], "lease-write-stalled") {
		t.Errorf("injector fired %v, want one lease-write-stalled", fired)
	}
}

// TestLeaseReleaseKeepsFencingIdentity: release zeroes the deadline (anyone
// may claim immediately) but keeps Node/Token, and the next acquisition
// still bumps the token so the released owner's fence goes stale.
func TestLeaseReleaseKeepsFencingIdentity(t *testing.T) {
	dir := t.TempDir()
	lm, _ := fixedClock("nodeA", time.Second)
	rec, ok, err := lm.acquire(dir)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if err := lm.release(dir, rec.Token); err != nil {
		t.Fatalf("release: %v", err)
	}
	cur, err := readLease(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Deadline != 0 || cur.Node != "nodeA" || cur.Token != rec.Token {
		t.Errorf("released record = %+v, want deadline 0 with identity kept", cur)
	}

	// Releasing a superseded token must not disturb the next owner.
	lmB, _ := fixedClock("nodeB", time.Second)
	next, ok, err := lmB.acquire(dir)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if next.Token != rec.Token+1 {
		t.Errorf("post-release token = %d, want %d", next.Token, rec.Token+1)
	}
	if err := lm.release(dir, rec.Token); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("stale release = %v, want ErrLeaseLost", err)
	}
	if after, _ := readLease(dir); after != next {
		t.Errorf("stale release disturbed the record: %+v, want %+v", after, next)
	}
	if err := lm.fence(dir, rec.Token)(); !errors.Is(err, ErrFenced) {
		t.Errorf("released owner's fence = %v, want ErrFenced after reacquisition", err)
	}
}

// TestLeaseCorruptRecordStealable: a hand-damaged lease record (the atomic
// writer never tears one) is treated as expired — claimable — and the token
// restarts from 1 without panicking.
func TestLeaseCorruptRecordStealable(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, leaseName), []byte("{torn"), 0o666); err != nil {
		t.Fatal(err)
	}
	lm, _ := fixedClock("nodeA", time.Second)
	rec, ok, err := lm.acquire(dir)
	if err != nil || !ok {
		t.Fatalf("acquire over corrupt record: ok=%v err=%v", ok, err)
	}
	if rec.Token != 1 || rec.Node != "nodeA" {
		t.Errorf("record after corrupt steal = %+v", rec)
	}
}

func TestDecodeLeaseRecordValidation(t *testing.T) {
	cases := []struct {
		name string
		data string
		ok   bool
	}{
		{"valid", `{"node":"a","token":3,"deadline_unix_ns":5,"renewed_unix_ns":4}`, true},
		{"never-leased", `{}`, true},
		{"garbage", `{torn`, false},
		{"negative-token", `{"node":"a","token":-1}`, false},
		{"owner-zero-token", `{"node":"a","token":0}`, false},
		{"negative-deadline", `{"node":"a","token":1,"deadline_unix_ns":-5}`, false},
		{"negative-renewed", `{"node":"a","token":1,"renewed_unix_ns":-5}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeLeaseRecord([]byte(tc.data))
			if (err == nil) != tc.ok {
				t.Errorf("decode(%q) err = %v, want ok=%v", tc.data, err, tc.ok)
			}
		})
	}
}
