package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/crp-eda/crp/internal/atomicio"
)

// APIError is a structured rejection: the admission layer returns it and
// the HTTP layer serializes it verbatim, so orchestrators can branch on
// Code instead of parsing prose. Status is the HTTP mapping (429 for
// overload, 503 for drain, 4xx for bad requests).
type APIError struct {
	Status     int    `json:"-"`
	Code       string `json:"code"`
	Message    string `json:"message"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	QueueCap   int    `json:"queue_cap,omitempty"`
	Tenant     string `json:"tenant,omitempty"`
	Limit      int    `json:"limit,omitempty"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func errQueueFull(depth, cap int) *APIError {
	return &APIError{
		Status: http.StatusTooManyRequests, Code: "queue_full",
		Message:    "job queue is at capacity; retry with backoff",
		QueueDepth: depth, QueueCap: cap,
	}
}

func errTenantLimit(tenant string, limit int) *APIError {
	return &APIError{
		Status: http.StatusTooManyRequests, Code: "tenant_limit",
		Message: "tenant is at its active-job cap; retry when jobs finish",
		Tenant:  tenant, Limit: limit,
	}
}

func errDraining() *APIError {
	return &APIError{
		Status: http.StatusServiceUnavailable, Code: "draining",
		Message: "daemon is draining; submissions are closed",
	}
}

func errNotFound(id string) *APIError {
	return &APIError{
		Status: http.StatusNotFound, Code: "not_found",
		Message: "no such job: " + id,
	}
}

func errBadSpec(msg string) *APIError {
	return &APIError{Status: http.StatusBadRequest, Code: "bad_spec", Message: msg}
}

// errInvalidSpec is the value-sanity sibling of errBadSpec: the spec is
// structurally a submission but carries NaN/negative/absurd values
// (Spec.Validate's errInvalidValue). Distinct code so clients can tell
// "you forgot a field" from "your numbers are garbage".
func errInvalidSpec(msg string) *APIError {
	return &APIError{Status: http.StatusBadRequest, Code: "invalid_spec", Message: msg}
}

func errConflict(msg string) *APIError {
	return &APIError{Status: http.StatusConflict, Code: "conflict", Message: msg}
}

// store owns the job table and the admission-controlled queue. The queue
// is explicitly bounded: a submission beyond capacity is rejected with a
// structured error and leaves no trace, so overload cannot grow memory
// without bound. Fairness is two-layered — an admission cap on each
// tenant's active (queued+running) jobs, and a scheduling cap on each
// tenant's concurrently running jobs.
type store struct {
	cfg Config

	// lm performs this node's lease operations against the shared
	// DataDir; every claim, heartbeat and steal goes through it.
	lm        *leaseManager
	cacheRoot string
	nodesDir  string

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	queue    []*Job // admitted, waiting; kept in Seq order
	running  map[string]*Job
	seq      int
	draining bool
	drainCh  chan struct{} // closed when draining starts; wakes streamers
	// halted simulates this node dying (SIGKILL): every durable write and
	// state transition becomes a no-op, exactly as if the process were
	// gone. Set only by Halt (chaos tests); never cleared.
	halted bool
	// stopCh stops the scheduler loop (heartbeats + store scans); closed
	// on drain and on halt.
	stopCh   chan struct{}
	stopOnce sync.Once

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64
	fencedWrites   atomic.Int64
	steals         atomic.Int64
	shedDegraded   atomic.Int64
}

// enforceCacheBounds applies the configured LRU entry/byte bounds to the
// exact result cache, counting every removed entry. No-op when both
// bounds are zero.
func (st *store) enforceCacheBounds() {
	if n := evictCache(st.cacheRoot, st.cfg.CacheMaxEntries, st.cfg.CacheMaxBytes); n > 0 {
		st.cacheEvictions.Add(int64(n))
	}
}

func newStore(cfg Config) *store {
	st := &store{
		cfg:       cfg,
		lm:        newLeaseManager(cfg.NodeID, cfg.LeaseTTL, cfg.LeaseHooks),
		cacheRoot: filepath.Join(cfg.DataDir, cacheDirName),
		nodesDir:  filepath.Join(cfg.DataDir, nodesDirName),
		jobs:      make(map[string]*Job),
		running:   make(map[string]*Job),
		drainCh:   make(chan struct{}),
		stopCh:    make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// ensureDirs creates the store's shared-directory layout.
func (st *store) ensureDirs() error {
	for _, d := range []string{st.cfg.DataDir, st.cacheRoot, st.nodesDir} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			return err
		}
	}
	return nil
}

// stop ends the scheduler loop. Idempotent.
func (st *store) stop() { st.stopOnce.Do(func() { close(st.stopCh) }) }

func (st *store) isHalted() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.halted
}

// submit admits a job or rejects it with a structured *APIError, walking
// the load-shed ladder in order:
//
//  1. exact-cache serve — a hit completes immediately, consuming no queue
//     slot, no worker and no lease, so it works even at full queue;
//  2. degraded admission — near saturation (Config.Shed) the spec is
//     clamped, with every clamp recorded in AdmissionDegradations;
//  3. the structured queue_full 429.
//
// On success the job directory exists with spec.json, state.json and a
// "submitted" journal event — enough for a restarted daemon to recover it.
func (st *store) submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		if errors.Is(err, errInvalidValue) {
			return nil, errInvalidSpec(err.Error())
		}
		return nil, errBadSpec(err.Error())
	}
	if spec.isECO() {
		if err := st.resolveParent(spec); err != nil {
			return nil, err
		}
	}
	if j, served, err := st.tryServeCached(spec); served {
		return j, err
	}
	st.mu.Lock()
	if st.draining || st.halted {
		st.mu.Unlock()
		return nil, errDraining()
	}
	if shed := st.cfg.Shed; shed != nil &&
		len(st.queue) >= shed.engageDepth(st.cfg.QueueCap) &&
		len(st.queue) < st.cfg.QueueCap {
		if notes := shed.clamp(&spec); len(notes) > 0 {
			st.shedDegraded.Add(1)
		}
	}
	if len(st.queue) >= st.cfg.QueueCap {
		depth := len(st.queue)
		st.mu.Unlock()
		return nil, errQueueFull(depth, st.cfg.QueueCap)
	}
	tenant := spec.tenant()
	if st.activeLocked(tenant) >= st.cfg.TenantMaxActive {
		st.mu.Unlock()
		return nil, errTenantLimit(tenant, st.cfg.TenantMaxActive)
	}
	// Register (so concurrent admission checks count the job) but do NOT
	// enqueue yet: a worker must never claim a job whose spec.json is not
	// on disk.
	j, err := st.allocLocked(spec)
	st.mu.Unlock()
	if err != nil {
		return nil, &APIError{Status: http.StatusInternalServerError,
			Code: "persist_failed", Message: err.Error()}
	}

	if err := st.persistSubmit(j); err != nil {
		// Roll the admission back: a job we cannot persist cannot be
		// recovered after a crash, so refusing it is the honest answer.
		st.mu.Lock()
		delete(st.jobs, j.ID)
		st.mu.Unlock()
		return nil, &APIError{Status: http.StatusInternalServerError,
			Code: "persist_failed", Message: err.Error()}
	}
	st.mu.Lock()
	if j.currentState() == StateQueued { // not cancelled while persisting
		st.queue = append(st.queue, j)
	}
	st.mu.Unlock()
	st.cond.Broadcast()
	return j, nil
}

// allocLocked reserves the next free job id by creating its directory with
// an exclusive os.Mkdir — the cross-node arbitration point on the shared
// store: two nodes racing the same sequence number collide on the mkdir
// and the loser advances to the next. The caller holds st.mu.
func (st *store) allocLocked(spec Spec) (*Job, error) {
	for {
		st.seq++
		id := fmt.Sprintf("j%06d", st.seq)
		dir := filepath.Join(st.cfg.DataDir, id)
		err := os.Mkdir(dir, 0o777)
		if os.IsExist(err) {
			continue // taken (by us historically, or by a peer just now)
		}
		if err != nil {
			st.seq--
			return nil, err
		}
		j := &Job{ID: id, Seq: st.seq, Spec: spec, Dir: dir, state: StateQueued}
		st.jobs[id] = j
		return j, nil
	}
}

// resolveParent gates an ECO submission on its parent: the referenced job
// must exist (here, or on disk under a peer node) and be done — an ECO
// against a job still running would race its committed output. Unknown
// parents are structural bad_spec rejections; a live-but-unfinished parent
// is a conflict the client can retry once the parent completes.
func (st *store) resolveParent(sp Spec) error {
	id := sp.ParentJob
	if j, err := st.get(id); err == nil {
		if s := j.currentState(); s != StateDone {
			return errConflict(fmt.Sprintf("parent job %s is %s, not done", id, s))
		}
		return nil
	}
	// Disk fallback: a peer node's job this node has not scanned yet.
	data, err := os.ReadFile(filepath.Join(st.cfg.DataDir, id, "state.json"))
	if err != nil {
		return errBadSpec("unknown parent job: " + id)
	}
	var rec jobRecord
	if json.Unmarshal(data, &rec) != nil || rec.State != StateDone {
		return errConflict(fmt.Sprintf("parent job %s is not done", id))
	}
	return nil
}

// tryServeCached is rung one of the shed ladder: when the exact result
// cache holds the spec's canonical hash, a new job directory is created
// with the cached artifacts copied in and the job completes on the spot —
// zero attempts, zero queue footprint. served=false falls through to
// normal admission.
func (st *store) tryServeCached(spec Spec) (j *Job, served bool, err error) {
	if st.cfg.DisableCache {
		return nil, false, nil
	}
	hash, err := jobHash(spec, st.cfg.DataDir)
	if err != nil {
		return nil, false, nil
	}
	entry := cacheEntryDir(st.cacheRoot, hash)
	if entry == "" {
		st.cacheMisses.Add(1)
		return nil, false, nil
	}
	touchCacheEntry(entry)
	st.mu.Lock()
	if st.draining || st.halted {
		st.mu.Unlock()
		return nil, true, errDraining()
	}
	j, aerr := st.allocLocked(spec)
	st.mu.Unlock()
	if aerr != nil {
		return nil, true, &APIError{Status: http.StatusInternalServerError,
			Code: "persist_failed", Message: aerr.Error()}
	}
	j.mu.Lock()
	j.state = StateDone
	j.mu.Unlock()
	perr := st.writeSpec(j)
	if perr == nil {
		perr = copyCachedArtifacts(entry, j.Dir)
	}
	if perr == nil {
		perr = st.persistState(j)
	}
	if perr != nil {
		st.mu.Lock()
		delete(st.jobs, j.ID)
		st.mu.Unlock()
		return nil, true, &APIError{Status: http.StatusInternalServerError,
			Code: "persist_failed", Message: perr.Error()}
	}
	appendEvent(j.Dir, Event{Kind: "submitted", K: j.Spec.K})
	appendEvent(j.Dir, Event{Kind: "cache-hit", Detail: hash})
	appendEvent(j.Dir, Event{Kind: "done"})
	st.cacheHits.Add(1)
	j.hub.notify()
	return j, true, nil
}

func (st *store) writeSpec(j *Job) error {
	spec, err := json.Marshal(j.Spec)
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytes(filepath.Join(j.Dir, "spec.json"), spec)
}

func (st *store) persistSubmit(j *Job) error {
	if err := os.MkdirAll(j.Dir, 0o777); err != nil {
		return err
	}
	if err := st.writeSpec(j); err != nil {
		return err
	}
	if err := st.persistState(j); err != nil {
		return err
	}
	return appendEvent(j.Dir, Event{Kind: "submitted", K: j.Spec.K})
}

// persistState atomically rewrites the job's control-plane record.
func (st *store) persistState(j *Job) error {
	rec, err := json.Marshal(j.record())
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytes(filepath.Join(j.Dir, "state.json"), rec)
}

// activeLocked counts a tenant's non-terminal jobs.
func (st *store) activeLocked(tenant string) int {
	n := 0
	for _, j := range st.jobs {
		if j.Spec.tenant() == tenant && !j.currentState().terminal() {
			n++
		}
	}
	return n
}

// runningLocked counts a tenant's currently running jobs.
func (st *store) runningLocked(tenant string) int {
	n := 0
	for _, j := range st.running {
		if j.Spec.tenant() == tenant {
			n++
		}
	}
	return n
}

func (st *store) dequeueLocked(j *Job) {
	for i, q := range st.queue {
		if q == j {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return
		}
	}
}

// next blocks until a runnable job exists and claims it — including its
// lease on the shared store — or returns nil when the store is draining or
// halted. Claiming scans the queue in admission order but skips jobs whose
// tenant is at its running cap — a saturated tenant cannot starve the
// others' queued work. A job whose lease another node holds is dropped
// from the local queue and tracked as remote; the scan loop re-adopts it
// if that node dies.
func (st *store) next() *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.draining || st.halted {
			return nil
		}
		for i := 0; i < len(st.queue); {
			j := st.queue[i]
			if st.runningLocked(j.Spec.tenant()) >= st.cfg.TenantMaxRunning {
				i++
				continue
			}
			rec, ok, err := st.lm.acquire(j.Dir)
			if err != nil || !ok {
				// Another node owns this job (or the lease layer is
				// wedged); it is not ours to run.
				st.queue = append(st.queue[:i], st.queue[i+1:]...)
				j.mu.Lock()
				j.remote = true
				j.mu.Unlock()
				continue
			}
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			j.mu.Lock()
			j.state = StateRunning
			j.leaseToken = rec.Token
			j.remote = false
			j.leaseLost = false
			j.mu.Unlock()
			st.running[j.ID] = j
			return j
		}
		st.cond.Wait()
	}
}

// release moves a claimed job out of the running set into its next state.
// For StateQueued (preemption/drain) the job re-enters the queue in its
// original admission order, so preemption cannot be used to jump the line.
// The lease is released only after the state record is durably persisted,
// so no other node can claim the job while its record is mid-transition.
// On a halted node release is a no-op: a dead process performs no
// transitions and its leases expire on their own.
func (st *store) release(j *Job, next State, errMsg string) {
	st.mu.Lock()
	if st.halted {
		st.mu.Unlock()
		return
	}
	delete(st.running, j.ID)
	j.mu.Lock()
	token := j.leaseToken
	j.leaseToken = 0
	j.state = next
	j.errMsg = errMsg
	j.preempt = nil
	j.preemptReason = ""
	j.hardCancel = nil
	j.workerPID = 0
	if next == StateQueued {
		j.preemptions++
	}
	j.mu.Unlock()
	if next == StateQueued {
		st.queue = append(st.queue, j)
		sort.Slice(st.queue, func(a, b int) bool { return st.queue[a].Seq < st.queue[b].Seq })
	}
	st.mu.Unlock()
	if err := st.persistState(j); err != nil {
		// The in-memory transition already happened; a persist failure
		// costs recovery fidelity after a crash, not current correctness.
		appendEvent(j.Dir, Event{Kind: "degradation", Stage: "service",
			Fault: "state-persist-failed", Detail: err.Error()})
	}
	if token != 0 {
		st.lm.release(j.Dir, token)
	}
	if next == StateDone {
		// The finished attempt may have populated the cache; re-apply the
		// LRU bounds so the cache never outgrows its budget for long.
		st.enforceCacheBounds()
	}
	st.cond.Broadcast()
	j.hub.notify()
}

// detach abandons a claimed job whose lease this node lost: the thief owns
// the directory now, so the ex-owner must not write state, journal events
// or release the (superseded) lease — it only forgets its claim and tracks
// the job as remote until a scan folds the thief's outcome back in.
func (st *store) detach(j *Job) {
	st.mu.Lock()
	delete(st.running, j.ID)
	j.mu.Lock()
	j.leaseToken = 0
	j.preempt = nil
	j.preemptReason = ""
	j.hardCancel = nil
	j.workerPID = 0
	j.remote = true
	j.state = StateQueued // local view; the disk record is the thief's
	j.mu.Unlock()
	st.mu.Unlock()
	st.cond.Broadcast()
	j.hub.notify()
}

// markLeaseLost records that a running job's lease could not be renewed —
// it expired (heartbeat stall, partition) and is another node's to steal.
// The running attempt is cancelled; its in-flight writes are already
// rejected by the superseded fencing token, and the pool detaches the job
// instead of releasing it.
func (st *store) markLeaseLost(j *Job) {
	j.mu.Lock()
	if j.leaseLost {
		j.mu.Unlock()
		return
	}
	j.leaseLost = true
	j.preemptReason = "lease-lost"
	cancel := j.preempt
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// halt simulates this node dying without warning — the in-process
// equivalent of SIGKILL for the failover chaos suite. Nothing is released,
// persisted or journaled from here on: leases stay un-released until they
// expire and are stolen, running attempts are hard-cancelled (a dead
// process computes nothing), and every later durable write is refused by
// fenceFor. Never undone.
func (st *store) halt() {
	st.mu.Lock()
	if st.halted {
		st.mu.Unlock()
		return
	}
	st.halted = true
	running := make([]*Job, 0, len(st.running))
	for _, j := range st.running {
		running = append(running, j)
	}
	st.mu.Unlock()
	st.stop()
	st.cond.Broadcast()
	for _, j := range running {
		j.mu.Lock()
		cancel := j.preempt
		hard := j.hardCancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		if hard != nil {
			hard()
		}
	}
}

// fenceFor builds the durable-write guard of j's current claim: the write
// is refused when this node has been halted (a dead process writes
// nothing) or when the claim's fencing token has been superseded on disk.
// Every refusal is counted — the zombie's stale writes are a visible
// degradation, not silent loss.
func (st *store) fenceFor(j *Job) func() error {
	j.mu.Lock()
	token := j.leaseToken
	j.mu.Unlock()
	raw := st.lm.fence(j.Dir, token)
	return func() error {
		if st.isHalted() {
			return fmt.Errorf("%w: node halted", ErrFenced)
		}
		if err := raw(); err != nil {
			st.fencedWrites.Add(1)
			return err
		}
		return nil
	}
}

// get looks a job up.
func (st *store) get(id string) (*Job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, errNotFound(id)
	}
	return j, nil
}

// preempt requests a checkpoint-backed stop of a job. reason "cancel"
// terminates the job; "preempt" and "drain" requeue it for resume on any
// free worker slot. A queued job is cancelled directly (nothing to stop);
// preempting a queued or terminal job is a no-op.
func (st *store) preemptJob(j *Job, reason string) error {
	st.mu.Lock()
	j.mu.Lock()
	switch j.state {
	case StateRunning:
		j.preemptReason = reason
		cancel := j.preempt
		j.mu.Unlock()
		st.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	case StateQueued:
		if reason != "cancel" {
			j.mu.Unlock()
			st.mu.Unlock()
			return nil
		}
		j.state = StateCancelled
		j.mu.Unlock()
		st.dequeueLocked(j)
		st.mu.Unlock()
		st.persistState(j)
		appendEvent(j.Dir, Event{Kind: "cancelled"})
		j.hub.notify()
		return nil
	default:
		state := j.state
		j.mu.Unlock()
		st.mu.Unlock()
		if reason == "cancel" {
			return errConflict(fmt.Sprintf("job is already %s", state))
		}
		return nil
	}
}

// beginDrain closes admission and scheduling, stops the heartbeat/scan
// loop, and asks every running job to preempt at its next checkpoint
// boundary. Idempotent.
func (st *store) beginDrain() {
	st.mu.Lock()
	if st.draining {
		st.mu.Unlock()
		return
	}
	st.draining = true
	st.stop()
	close(st.drainCh)
	running := make([]*Job, 0, len(st.running))
	for _, j := range st.running {
		running = append(running, j)
	}
	st.mu.Unlock()
	st.cond.Broadcast()
	for _, j := range running {
		st.preemptJob(j, "drain")
	}
}

// stats snapshots the service-level counters.
func (st *store) stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		NodeID:         st.cfg.NodeID,
		QueueDepth:     len(st.queue),
		QueueCap:       st.cfg.QueueCap,
		Running:        len(st.running),
		Workers:        st.cfg.Workers,
		Draining:       st.draining,
		Halted:         st.halted,
		CacheHits:      st.cacheHits.Load(),
		CacheMisses:    st.cacheMisses.Load(),
		CacheEvictions: st.cacheEvictions.Load(),
		FencedWrites:   st.fencedWrites.Load(),
		Steals:         st.steals.Load(),
		ShedDegraded:   st.shedDegraded.Load(),
		Tenants:        map[string]TenantStats{},
		States:         map[State]int{},
	}
	for _, j := range st.jobs {
		state := j.currentState()
		s.States[state]++
		ts := s.Tenants[j.Spec.tenant()]
		if !state.terminal() {
			ts.Active++
		}
		if state == StateRunning {
			ts.Running++
		}
		s.Tenants[j.Spec.tenant()] = ts
	}
	return s
}

// list returns every known job's status, newest first.
func (st *store) list() []Status {
	st.mu.Lock()
	jobs := make([]*Job, 0, len(st.jobs))
	for _, j := range st.jobs {
		jobs = append(jobs, j)
	}
	st.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Seq > jobs[b].Seq })
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = st.status(j)
	}
	return out
}

// status assembles a job's full status: in-memory control state plus
// journal-derived progress and, when done, the persisted result summary.
// A job another node owns is refreshed from its on-disk record first, so
// any node in the shared store answers status queries for any job.
func (st *store) status(j *Job) Status {
	j.mu.Lock()
	remote := j.remote && !j.state.terminal()
	j.mu.Unlock()
	if remote {
		st.refreshRemote(j)
	}
	s := j.snapshot()
	if evs, err := decodeJournal(j.Dir); err == nil {
		s.Iter, s.K, s.TotalMoved = progress(evs)
	}
	if s.K == 0 {
		s.K = j.Spec.FlowConfig().CRP.Iterations
	}
	if s.State == StateDone {
		if res, err := loadResult(j.Dir); err == nil {
			m := res.Metrics
			s.Metrics = &m
		}
	}
	return s
}

// recover rebuilds the store from a data directory: terminal jobs are
// re-registered as terminal (outputs stay fetchable), queued and running
// jobs re-enter the queue — their checkpoint directories make the resume
// exact. Returns the number of requeued jobs.
func (st *store) recover() (int, error) {
	entries, err := os.ReadDir(st.cfg.DataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	requeued := 0
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(st.cfg.DataDir, ent.Name())
		specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			continue // not a job directory
		}
		var spec Spec
		if err := json.Unmarshal(specData, &spec); err != nil {
			continue
		}
		var rec jobRecord
		if data, err := os.ReadFile(filepath.Join(dir, "state.json")); err == nil {
			json.Unmarshal(data, &rec)
		}
		if rec.ID == "" {
			rec.ID = ent.Name()
		}
		j := &Job{ID: rec.ID, Seq: rec.Seq, Spec: spec, Dir: dir,
			state: rec.State, attempts: rec.Attempts, preemptions: rec.Preemptions}
		j.errMsg = rec.Error
		if !rec.State.terminal() {
			// A job that was mid-attempt when the daemon died resumes
			// from its last checkpoint; requeue it.
			j.state = StateQueued
			st.queue = append(st.queue, j)
			requeued++
		}
		st.jobs[j.ID] = j
		if j.Seq > st.seq {
			st.seq = j.Seq
		}
	}
	sort.Slice(st.queue, func(a, b int) bool { return st.queue[a].Seq < st.queue[b].Seq })
	return requeued, nil
}

// refreshRemote folds a remote job's persisted control-plane record into
// the local view: its owner's state transitions — including terminal ones
// — become visible here without any node-to-node channel beyond the store.
func (st *store) refreshRemote(j *Job) {
	data, err := os.ReadFile(filepath.Join(j.Dir, "state.json"))
	if err != nil {
		return
	}
	var rec jobRecord
	if json.Unmarshal(data, &rec) != nil {
		return
	}
	j.mu.Lock()
	if j.remote && !j.state.terminal() {
		if rec.State.terminal() {
			j.state = rec.State
			j.errMsg = rec.Error
		} else if rec.State == StateRunning {
			j.state = StateRunning
		}
		j.attempts = rec.Attempts
		j.preemptions = rec.Preemptions
	}
	j.mu.Unlock()
}

func loadResult(dir string) (*result, error) {
	data, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		return nil, err
	}
	var res result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Stats is the service-level counter snapshot (GET /v1/stats).
type Stats struct {
	NodeID     string `json:"node_id,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Running    int    `json:"running"`
	Workers    int    `json:"workers"`
	Draining   bool   `json:"draining"`
	Halted     bool   `json:"halted,omitempty"`
	Goroutines int    `json:"goroutines"`
	// CacheHits/CacheMisses count exact-result-cache outcomes at
	// admission; CacheEvictions counts entries removed by the LRU bounds;
	// FencedWrites counts zombie writes refused by the lease fence; Steals
	// counts expired leases this node adopted; ShedDegraded counts
	// submissions admitted with a load-shed-clamped spec.
	CacheHits      int64                  `json:"cache_hits"`
	CacheMisses    int64                  `json:"cache_misses"`
	CacheEvictions int64                  `json:"cache_evictions,omitempty"`
	FencedWrites   int64                  `json:"fenced_writes,omitempty"`
	Steals         int64                  `json:"steals,omitempty"`
	ShedDegraded   int64                  `json:"shed_degraded,omitempty"`
	Tenants        map[string]TenantStats `json:"tenants,omitempty"`
	States         map[State]int          `json:"states,omitempty"`
}

// TenantStats is one tenant's share of the service.
type TenantStats struct {
	Active  int `json:"active"`
	Running int `json:"running"`
}
