package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/crp-eda/crp/internal/atomicio"
)

// APIError is a structured rejection: the admission layer returns it and
// the HTTP layer serializes it verbatim, so orchestrators can branch on
// Code instead of parsing prose. Status is the HTTP mapping (429 for
// overload, 503 for drain, 4xx for bad requests).
type APIError struct {
	Status     int    `json:"-"`
	Code       string `json:"code"`
	Message    string `json:"message"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	QueueCap   int    `json:"queue_cap,omitempty"`
	Tenant     string `json:"tenant,omitempty"`
	Limit      int    `json:"limit,omitempty"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func errQueueFull(depth, cap int) *APIError {
	return &APIError{
		Status: http.StatusTooManyRequests, Code: "queue_full",
		Message:    "job queue is at capacity; retry with backoff",
		QueueDepth: depth, QueueCap: cap,
	}
}

func errTenantLimit(tenant string, limit int) *APIError {
	return &APIError{
		Status: http.StatusTooManyRequests, Code: "tenant_limit",
		Message: "tenant is at its active-job cap; retry when jobs finish",
		Tenant:  tenant, Limit: limit,
	}
}

func errDraining() *APIError {
	return &APIError{
		Status: http.StatusServiceUnavailable, Code: "draining",
		Message: "daemon is draining; submissions are closed",
	}
}

func errNotFound(id string) *APIError {
	return &APIError{
		Status: http.StatusNotFound, Code: "not_found",
		Message: "no such job: " + id,
	}
}

func errBadSpec(msg string) *APIError {
	return &APIError{Status: http.StatusBadRequest, Code: "bad_spec", Message: msg}
}

func errConflict(msg string) *APIError {
	return &APIError{Status: http.StatusConflict, Code: "conflict", Message: msg}
}

// store owns the job table and the admission-controlled queue. The queue
// is explicitly bounded: a submission beyond capacity is rejected with a
// structured error and leaves no trace, so overload cannot grow memory
// without bound. Fairness is two-layered — an admission cap on each
// tenant's active (queued+running) jobs, and a scheduling cap on each
// tenant's concurrently running jobs.
type store struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	queue    []*Job // admitted, waiting; kept in Seq order
	running  map[string]*Job
	seq      int
	draining bool
	drainCh  chan struct{} // closed when draining starts; wakes streamers
}

func newStore(cfg Config) *store {
	st := &store{
		cfg:     cfg,
		jobs:    make(map[string]*Job),
		running: make(map[string]*Job),
		drainCh: make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// submit admits a job or rejects it with a structured *APIError. On
// success the job directory exists with spec.json, state.json and a
// "submitted" journal event — enough for a restarted daemon to recover it.
func (st *store) submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, errBadSpec(err.Error())
	}
	st.mu.Lock()
	if st.draining {
		st.mu.Unlock()
		return nil, errDraining()
	}
	if len(st.queue) >= st.cfg.QueueCap {
		depth := len(st.queue)
		st.mu.Unlock()
		return nil, errQueueFull(depth, st.cfg.QueueCap)
	}
	tenant := spec.tenant()
	if st.activeLocked(tenant) >= st.cfg.TenantMaxActive {
		st.mu.Unlock()
		return nil, errTenantLimit(tenant, st.cfg.TenantMaxActive)
	}
	st.seq++
	j := &Job{
		ID:    fmt.Sprintf("j%06d", st.seq),
		Seq:   st.seq,
		Spec:  spec,
		Dir:   filepath.Join(st.cfg.DataDir, fmt.Sprintf("j%06d", st.seq)),
		state: StateQueued,
	}
	// Register (so concurrent admission checks count the job) but do NOT
	// enqueue yet: a worker must never claim a job whose spec.json is not
	// on disk.
	st.jobs[j.ID] = j
	st.mu.Unlock()

	if err := st.persistSubmit(j); err != nil {
		// Roll the admission back: a job we cannot persist cannot be
		// recovered after a crash, so refusing it is the honest answer.
		st.mu.Lock()
		delete(st.jobs, j.ID)
		st.mu.Unlock()
		return nil, &APIError{Status: http.StatusInternalServerError,
			Code: "persist_failed", Message: err.Error()}
	}
	st.mu.Lock()
	if j.currentState() == StateQueued { // not cancelled while persisting
		st.queue = append(st.queue, j)
	}
	st.mu.Unlock()
	st.cond.Broadcast()
	return j, nil
}

func (st *store) persistSubmit(j *Job) error {
	if err := os.MkdirAll(j.Dir, 0o777); err != nil {
		return err
	}
	spec, err := json.Marshal(j.Spec)
	if err != nil {
		return err
	}
	if err := atomicio.WriteFileBytes(filepath.Join(j.Dir, "spec.json"), spec); err != nil {
		return err
	}
	if err := st.persistState(j); err != nil {
		return err
	}
	return appendEvent(j.Dir, Event{Kind: "submitted", K: j.Spec.K})
}

// persistState atomically rewrites the job's control-plane record.
func (st *store) persistState(j *Job) error {
	rec, err := json.Marshal(j.record())
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytes(filepath.Join(j.Dir, "state.json"), rec)
}

// activeLocked counts a tenant's non-terminal jobs.
func (st *store) activeLocked(tenant string) int {
	n := 0
	for _, j := range st.jobs {
		if j.Spec.tenant() == tenant && !j.currentState().terminal() {
			n++
		}
	}
	return n
}

// runningLocked counts a tenant's currently running jobs.
func (st *store) runningLocked(tenant string) int {
	n := 0
	for _, j := range st.running {
		if j.Spec.tenant() == tenant {
			n++
		}
	}
	return n
}

func (st *store) dequeueLocked(j *Job) {
	for i, q := range st.queue {
		if q == j {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return
		}
	}
}

// next blocks until a runnable job exists and claims it, or returns nil
// when the store is draining. Claiming scans the queue in admission order
// but skips jobs whose tenant is at its running cap — a saturated tenant
// cannot starve the others' queued work.
func (st *store) next() *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.draining {
			return nil
		}
		for _, j := range st.queue {
			if st.runningLocked(j.Spec.tenant()) >= st.cfg.TenantMaxRunning {
				continue
			}
			st.dequeueLocked(j)
			j.mu.Lock()
			j.state = StateRunning
			j.mu.Unlock()
			st.running[j.ID] = j
			return j
		}
		st.cond.Wait()
	}
}

// release moves a claimed job out of the running set into its next state.
// For StateQueued (preemption/drain) the job re-enters the queue in its
// original admission order, so preemption cannot be used to jump the line.
func (st *store) release(j *Job, next State, errMsg string) {
	st.mu.Lock()
	delete(st.running, j.ID)
	j.mu.Lock()
	j.state = next
	j.errMsg = errMsg
	j.preempt = nil
	j.preemptReason = ""
	j.workerPID = 0
	if next == StateQueued {
		j.preemptions++
	}
	j.mu.Unlock()
	if next == StateQueued {
		st.queue = append(st.queue, j)
		sort.Slice(st.queue, func(a, b int) bool { return st.queue[a].Seq < st.queue[b].Seq })
	}
	st.mu.Unlock()
	if err := st.persistState(j); err != nil {
		// The in-memory transition already happened; a persist failure
		// costs recovery fidelity after a crash, not current correctness.
		appendEvent(j.Dir, Event{Kind: "degradation", Stage: "service",
			Fault: "state-persist-failed", Detail: err.Error()})
	}
	st.cond.Broadcast()
	j.hub.notify()
}

// get looks a job up.
func (st *store) get(id string) (*Job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, errNotFound(id)
	}
	return j, nil
}

// preempt requests a checkpoint-backed stop of a job. reason "cancel"
// terminates the job; "preempt" and "drain" requeue it for resume on any
// free worker slot. A queued job is cancelled directly (nothing to stop);
// preempting a queued or terminal job is a no-op.
func (st *store) preemptJob(j *Job, reason string) error {
	st.mu.Lock()
	j.mu.Lock()
	switch j.state {
	case StateRunning:
		j.preemptReason = reason
		cancel := j.preempt
		j.mu.Unlock()
		st.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	case StateQueued:
		if reason != "cancel" {
			j.mu.Unlock()
			st.mu.Unlock()
			return nil
		}
		j.state = StateCancelled
		j.mu.Unlock()
		st.dequeueLocked(j)
		st.mu.Unlock()
		st.persistState(j)
		appendEvent(j.Dir, Event{Kind: "cancelled"})
		j.hub.notify()
		return nil
	default:
		state := j.state
		j.mu.Unlock()
		st.mu.Unlock()
		if reason == "cancel" {
			return errConflict(fmt.Sprintf("job is already %s", state))
		}
		return nil
	}
}

// beginDrain closes admission and scheduling and asks every running job to
// preempt at its next checkpoint boundary. Idempotent.
func (st *store) beginDrain() {
	st.mu.Lock()
	if st.draining {
		st.mu.Unlock()
		return
	}
	st.draining = true
	close(st.drainCh)
	running := make([]*Job, 0, len(st.running))
	for _, j := range st.running {
		running = append(running, j)
	}
	st.mu.Unlock()
	st.cond.Broadcast()
	for _, j := range running {
		st.preemptJob(j, "drain")
	}
}

// stats snapshots the service-level counters.
func (st *store) stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		QueueDepth: len(st.queue),
		QueueCap:   st.cfg.QueueCap,
		Running:    len(st.running),
		Workers:    st.cfg.Workers,
		Draining:   st.draining,
		Tenants:    map[string]TenantStats{},
		States:     map[State]int{},
	}
	for _, j := range st.jobs {
		state := j.currentState()
		s.States[state]++
		ts := s.Tenants[j.Spec.tenant()]
		if !state.terminal() {
			ts.Active++
		}
		if state == StateRunning {
			ts.Running++
		}
		s.Tenants[j.Spec.tenant()] = ts
	}
	return s
}

// list returns every known job's status, newest first.
func (st *store) list() []Status {
	st.mu.Lock()
	jobs := make([]*Job, 0, len(st.jobs))
	for _, j := range st.jobs {
		jobs = append(jobs, j)
	}
	st.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Seq > jobs[b].Seq })
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = st.status(j)
	}
	return out
}

// status assembles a job's full status: in-memory control state plus
// journal-derived progress and, when done, the persisted result summary.
func (st *store) status(j *Job) Status {
	s := j.snapshot()
	if evs, err := decodeJournal(j.Dir); err == nil {
		s.Iter, s.K, s.TotalMoved = progress(evs)
	}
	if s.K == 0 {
		s.K = j.Spec.FlowConfig().CRP.Iterations
	}
	if s.State == StateDone {
		if res, err := loadResult(j.Dir); err == nil {
			m := res.Metrics
			s.Metrics = &m
		}
	}
	return s
}

// recover rebuilds the store from a data directory: terminal jobs are
// re-registered as terminal (outputs stay fetchable), queued and running
// jobs re-enter the queue — their checkpoint directories make the resume
// exact. Returns the number of requeued jobs.
func (st *store) recover() (int, error) {
	entries, err := os.ReadDir(st.cfg.DataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	requeued := 0
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(st.cfg.DataDir, ent.Name())
		specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			continue // not a job directory
		}
		var spec Spec
		if err := json.Unmarshal(specData, &spec); err != nil {
			continue
		}
		var rec jobRecord
		if data, err := os.ReadFile(filepath.Join(dir, "state.json")); err == nil {
			json.Unmarshal(data, &rec)
		}
		if rec.ID == "" {
			rec.ID = ent.Name()
		}
		j := &Job{ID: rec.ID, Seq: rec.Seq, Spec: spec, Dir: dir,
			state: rec.State, attempts: rec.Attempts, preemptions: rec.Preemptions}
		j.errMsg = rec.Error
		if !rec.State.terminal() {
			// A job that was mid-attempt when the daemon died resumes
			// from its last checkpoint; requeue it.
			j.state = StateQueued
			st.queue = append(st.queue, j)
			requeued++
		}
		st.jobs[j.ID] = j
		if j.Seq > st.seq {
			st.seq = j.Seq
		}
	}
	sort.Slice(st.queue, func(a, b int) bool { return st.queue[a].Seq < st.queue[b].Seq })
	return requeued, nil
}

func loadResult(dir string) (*result, error) {
	data, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		return nil, err
	}
	var res result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Stats is the service-level counter snapshot (GET /v1/stats).
type Stats struct {
	QueueDepth int                    `json:"queue_depth"`
	QueueCap   int                    `json:"queue_cap"`
	Running    int                    `json:"running"`
	Workers    int                    `json:"workers"`
	Draining   bool                   `json:"draining"`
	Goroutines int                    `json:"goroutines"`
	Tenants    map[string]TenantStats `json:"tenants,omitempty"`
	States     map[State]int          `json:"states,omitempty"`
}

// TenantStats is one tenant's share of the service.
type TenantStats struct {
	Active  int `json:"active"`
	Running int `json:"running"`
}
