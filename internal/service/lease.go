package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
)

// Lease-based job ownership over the shared store.
//
// Every job directory carries a lease record (lease.json): the owning node,
// a monotonically increasing fencing token, and a deadline the owner pushes
// forward by heartbeat. A node claims a job by acquiring its lease; any
// node may steal a lease whose deadline has passed — expiry is exact: a
// lease is stealable the instant now >= deadline. Acquisition always
// increments the token, so a steal invalidates the previous owner's token
// even if that owner is still alive behind a partition. The token is
// threaded as a fence into every durable write the owner performs
// (checkpoints, outputs, journal appends): a stale-token write fails its
// guard before the publishing rename, so a zombie's work is counted and
// discarded, never visible.
//
// Read-modify-write of the record is serialized by lease.lock, created
// with O_CREAT|O_EXCL. A lock orphaned by a dead process is broken after
// staleLockAge — the record itself stays consistent because its writes are
// atomic renames.

const (
	leaseName     = "lease.json"
	leaseLockName = "lease.lock"
	// staleLockAge bounds how long an orphaned lease.lock (its creator
	// died mid-critical-section) can block the directory. Lock hold times
	// are a few file operations, so anything this old is dead.
	staleLockAge = 2 * time.Second
	// lockWait bounds one operation's total wait for the lock.
	lockWait = 5 * time.Second
)

// ErrLeaseHeld reports an acquisition attempt on a live lease owned by
// another node.
var ErrLeaseHeld = errors.New("service: lease held by another node")

// ErrLeaseLost reports a renew/release with a token that is no longer the
// lease's current token — the lease expired and was stolen.
var ErrLeaseLost = errors.New("service: lease lost (token superseded)")

// ErrFenced reports a durable write refused because the writer's fencing
// token is stale. It is the per-write face of ErrLeaseLost.
var ErrFenced = errors.New("service: write fenced (stale lease token)")

// leaseRecord is the persisted ownership record of one job directory.
type leaseRecord struct {
	// Node is the owner's node id; empty means never leased.
	Node string `json:"node"`
	// Token is the fencing token: strictly monotonic across acquisitions
	// of this job, 1-based.
	Token int64 `json:"token"`
	// Deadline is the expiry instant (unix nanoseconds). A released lease
	// has Deadline 0 (kept Node/Token record the last owner for fencing).
	Deadline int64 `json:"deadline_unix_ns"`
	// Renewed is the last heartbeat instant (unix nanoseconds).
	Renewed int64 `json:"renewed_unix_ns"`
}

// decodeLeaseRecord parses and validates a lease record. It is the
// panic-free decoder FuzzLeaseRecord exercises: arbitrary bytes must yield
// an error, never a panic or a nonsensical record.
func decodeLeaseRecord(data []byte) (leaseRecord, error) {
	var rec leaseRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return leaseRecord{}, fmt.Errorf("service: lease record: %w", err)
	}
	if rec.Token < 0 {
		return leaseRecord{}, fmt.Errorf("service: lease record: negative token %d", rec.Token)
	}
	if rec.Token == 0 && rec.Node != "" {
		return leaseRecord{}, fmt.Errorf("service: lease record: owner %q with zero token", rec.Node)
	}
	if rec.Deadline < 0 || rec.Renewed < 0 {
		return leaseRecord{}, fmt.Errorf("service: lease record: negative timestamp")
	}
	return rec, nil
}

// LeaseHooks are the lease layer's deterministic fault seams, wired from
// faultinject by the chaos suite. Nil fields inject nothing.
type LeaseHooks struct {
	// BeforeWrite runs immediately before every durable lease write with
	// the operation name ("acquire", "renew", "release") — the fsync-stall
	// seam (see faultinject.Plan.StallLeaseWriteAtCall).
	BeforeWrite func(op string)
	// DropRenewal, when it returns true, silently discards a renewal —
	// the heartbeat-partition seam: the caller believes the renewal
	// succeeded while the shared store never sees it
	// (see faultinject.Plan.DropRenewalsFromCall).
	DropRenewal func() bool
}

// leaseManager performs this node's lease operations. The clock is a seam
// so expiry edge cases (exactly-at-deadline steals) are testable without
// sleeping.
type leaseManager struct {
	node  string
	ttl   time.Duration
	now   func() time.Time
	hooks LeaseHooks
}

func newLeaseManager(node string, ttl time.Duration, hooks LeaseHooks) *leaseManager {
	return &leaseManager{node: node, ttl: ttl, now: time.Now, hooks: hooks}
}

// readLease loads a job directory's lease record. A missing file is the
// zero record (never leased), not an error.
func readLease(dir string) (leaseRecord, error) {
	data, err := os.ReadFile(filepath.Join(dir, leaseName))
	if err != nil {
		if os.IsNotExist(err) {
			return leaseRecord{}, nil
		}
		return leaseRecord{}, err
	}
	return decodeLeaseRecord(data)
}

// withLock runs fn holding the directory's lease lock. The lock file is
// created exclusively; a stale lock (older than staleLockAge) is broken.
func (lm *leaseManager) withLock(dir string, fn func() error) error {
	lock := filepath.Join(dir, leaseLockName)
	deadline := time.Now().Add(lockWait)
	for {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
		if err == nil {
			fmt.Fprintf(f, "%s %d\n", lm.node, lm.now().UnixNano())
			f.Close()
			defer os.Remove(lock)
			return fn()
		}
		if !os.IsExist(err) {
			return fmt.Errorf("service: lease lock %s: %w", lock, err)
		}
		if fi, serr := os.Stat(lock); serr == nil && time.Since(fi.ModTime()) > staleLockAge {
			os.Remove(lock) // orphaned by a dead process; break it
			continue
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service: lease lock %s: timed out", lock)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// writeLease durably replaces the record (atomic rename), running the
// fsync-stall seam first.
func (lm *leaseManager) writeLease(dir, op string, rec leaseRecord) error {
	if lm.hooks.BeforeWrite != nil {
		lm.hooks.BeforeWrite(op)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytes(filepath.Join(dir, leaseName), data)
}

// acquire claims the job for this node: never leased, expired (steal), or
// already ours (re-claim). The token increments on every successful
// acquisition — monotonicity is what makes fencing sound. ok=false with
// a nil error means another node holds a live lease.
func (lm *leaseManager) acquire(dir string) (rec leaseRecord, ok bool, err error) {
	err = lm.withLock(dir, func() error {
		cur, err := readLease(dir)
		if err != nil {
			// An unreadable record is treated as corrupt-and-expired: the
			// atomic writer never tears it, so this is a hand-edited or
			// damaged store. Stealing with a bumped token keeps fencing
			// sound (the token only ever grows).
			cur = leaseRecord{}
		}
		now := lm.now()
		if cur.Node != "" && cur.Node != lm.node && now.UnixNano() < cur.Deadline {
			rec = cur
			return ErrLeaseHeld
		}
		rec = leaseRecord{
			Node:     lm.node,
			Token:    cur.Token + 1,
			Deadline: now.Add(lm.ttl).UnixNano(),
			Renewed:  now.UnixNano(),
		}
		return lm.writeLease(dir, "acquire", rec)
	})
	if errors.Is(err, ErrLeaseHeld) {
		return rec, false, nil
	}
	if err != nil {
		return leaseRecord{}, false, err
	}
	return rec, true, nil
}

// renew pushes the lease deadline forward. ErrLeaseLost means the token was
// superseded — the lease expired and another node stole the job; the caller
// must stop treating the job as its own. A renewal dropped by the partition
// seam reports success without touching the store, exactly like a lost
// network write: the partitioned node learns the truth only from fenced
// writes (or a later renewal that does get through).
func (lm *leaseManager) renew(dir string, token int64) error {
	if lm.hooks.DropRenewal != nil && lm.hooks.DropRenewal() {
		return nil
	}
	return lm.withLock(dir, func() error {
		cur, err := readLease(dir)
		if err != nil {
			return err
		}
		if cur.Node != lm.node || cur.Token != token {
			return fmt.Errorf("%w: held by %s token %d, renewing token %d",
				ErrLeaseLost, cur.Node, cur.Token, token)
		}
		now := lm.now()
		cur.Deadline = now.Add(lm.ttl).UnixNano()
		cur.Renewed = now.UnixNano()
		return lm.writeLease(dir, "renew", cur)
	})
}

// release ends this node's ownership: the deadline is zeroed so any node
// can claim immediately, while Node/Token are kept so fences against the
// released token still resolve deterministically. Releasing a superseded
// token is ErrLeaseLost and leaves the thief's lease untouched.
func (lm *leaseManager) release(dir string, token int64) error {
	return lm.withLock(dir, func() error {
		cur, err := readLease(dir)
		if err != nil {
			return err
		}
		if cur.Node != lm.node || cur.Token != token {
			return fmt.Errorf("%w: held by %s token %d, releasing token %d",
				ErrLeaseLost, cur.Node, cur.Token, token)
		}
		cur.Deadline = 0
		cur.Renewed = lm.now().UnixNano()
		return lm.writeLease(dir, "release", cur)
	})
}

// fence returns the write guard for one claimed activation: nil while
// (node, token) is still the lease's current ownership, ErrFenced once it
// is superseded. The guard reads the record without the lock — record
// replacement is an atomic rename, so a read sees either the old or the
// new record, and both sides of that race fence correctly (the token only
// grows).
func (lm *leaseManager) fence(dir string, token int64) func() error {
	return func() error {
		cur, err := readLease(dir)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrFenced, err)
		}
		if cur.Node != lm.node || cur.Token != token {
			return fmt.Errorf("%w: lease now %s token %d, writer holds token %d",
				ErrFenced, cur.Node, cur.Token, token)
		}
		return nil
	}
}

// staticFence is the child-worker-process variant of fence: the parent
// passes its node id and claimed token through the environment, and the
// child guards its writes against the on-disk record directly.
func staticFence(dir, node string, token int64) func() error {
	if node == "" || token == 0 {
		return nil // legacy single-node invocation: no fencing
	}
	return func() error {
		cur, err := readLease(dir)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrFenced, err)
		}
		if cur.Node != node || cur.Token != token {
			return fmt.Errorf("%w: lease now %s token %d, writer holds token %d",
				ErrFenced, cur.Node, cur.Token, token)
		}
		return nil
	}
}
