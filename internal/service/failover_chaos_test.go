package service

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/faultinject"
	"github.com/crp-eda/crp/internal/flow"
)

// The failover chaos suite attacks the multi-node story: two daemons
// sharing one DataDir, one of them killed (Halt — the in-process SIGKILL)
// or partitioned (dropped heartbeat renewals) at deterministic points, and
// asserts the strong contract every time: the survivor adopts the job via
// lease expiry, resumes from the latest checkpoint, and finishes with
// outputs byte-identical to an uninterrupted run; the zombie's late writes
// are fenced and counted, never visible; completion is exactly-once (one
// "done" journal event, ever). Plus the load-shed ladder engaging in
// order and the exact result cache serving byte-identical artifacts.

// failoverTTL is short enough that a test waits milliseconds for an
// orphaned lease to lapse, long enough that a live node's heartbeats
// (TTL/4) never miss it.
const failoverTTL = 250 * time.Millisecond

// adoptAndFinish polls svc — forcing a reconciliation scan each round,
// what the scheduler does every RescanEvery — until it has adopted job id
// and driven it to a terminal state.
func adoptAndFinish(t *testing.T, svc *Service, id string) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		svc.Scan()
		st, err := svc.Status(id)
		if err == nil && st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never finished job %s; last status %+v err %v",
				svc.cfg.NodeID, id, st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func countEvents(t *testing.T, dir, kind string) int {
	t.Helper()
	evs, err := decodeJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range evs {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestFailoverKillAtEveryCheckpointBoundary kills the owning node (Halt:
// heartbeats, writes and transitions stop instantly, leases stay
// un-released) immediately after each checkpoint commit of a k=2 job —
// the post-GR boundary and both iteration boundaries. A second node
// sharing the store adopts the orphan once its lease lapses and must
// finish it byte-identical to an uninterrupted run, every time.
func TestFailoverKillAtEveryCheckpointBoundary(t *testing.T) {
	spec := synthSpec(401, 2)
	wantDef, wantGuide := referenceOutputs(t, spec)

	for boundary := 1; boundary <= 3; boundary++ {
		t.Run(fmt.Sprintf("boundary%d", boundary), func(t *testing.T) {
			dataDir := t.TempDir()
			halted := make(chan struct{})
			var once sync.Once
			var svcA *Service
			svcA = newService(t, Config{
				DataDir: dataDir, Workers: 1, NodeID: "nodeA",
				LeaseTTL: failoverTTL,
				Instrument: func(jobID string, attempt int, _ *flow.Config, ck *flow.Checkpointing) {
					orig := ck.AfterSave
					ck.AfterSave = func(n int) {
						if n == boundary {
							// The checkpoint at this boundary is already
							// committed; the node dies before anything else
							// becomes durable.
							once.Do(func() {
								svcA.Halt()
								close(halted)
							})
						}
						if orig != nil {
							orig(n)
						}
					}
				},
			})

			st, err := svcA.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			select {
			case <-halted:
			case <-time.After(120 * time.Second):
				t.Fatal("node A never reached the target checkpoint boundary")
			}

			svcB := newService(t, Config{
				DataDir: dataDir, Workers: 1, NodeID: "nodeB",
				LeaseTTL: failoverTTL,
				// Adoption is driven explicitly via Scan() so the test is
				// deterministic, not racing the background rescan.
				RescanEvery: time.Hour,
			})
			fin := adoptAndFinish(t, svcB, st.ID)
			if fin.State != StateDone {
				t.Fatalf("adopted job ended %s (%s)", fin.State, fin.Error)
			}

			gotDef, gotGuide := jobOutputs(t, svcB, st.ID)
			if !bytes.Equal(gotDef, wantDef) || !bytes.Equal(gotGuide, wantGuide) {
				t.Error("failover outputs differ from uninterrupted run")
			}
			if steals := svcB.Stats().Steals; steals != 1 {
				t.Errorf("node B steals = %d, want 1", steals)
			}
			if done := countEvents(t, svcJobDir(t, svcB, st.ID), "done"); done != 1 {
				t.Errorf("journal has %d done events, want exactly 1", done)
			}
			if !svcA.Stats().Halted {
				t.Error("node A stats do not report the halt")
			}
		})
	}
}

// TestFailoverPartitionZombieFenced partitions the owner's heartbeats (every
// renewal silently dropped — the node believes they succeed) while its
// attempt is pinned at a checkpoint boundary. A second node steals the
// expired lease and completes the job; when the zombie resumes computing,
// every durable write it tries — checkpoints, journal events, outputs — is
// refused by its superseded fencing token and counted. Completion is
// exactly-once and byte-identical; the zombie eventually folds the thief's
// terminal state into its own view.
func TestFailoverPartitionZombieFenced(t *testing.T) {
	spec := synthSpec(411, 2)
	wantDef, wantGuide := referenceOutputs(t, spec)
	dataDir := t.TempDir()

	inj := faultinject.New(faultinject.Plan{DropRenewalsFromCall: 1})
	hold := newHolder("j000001")
	defer hold.Release()
	svcA := newService(t, Config{
		DataDir: dataDir, Workers: 1, NodeID: "nodeA",
		LeaseTTL:   failoverTTL,
		LeaseHooks: LeaseHooks{DropRenewal: inj.RenewDropHook()},
		Instrument: hold.instrument,
	})
	st, err := svcA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	hold.waitEntered(t) // attempt pinned after iteration 1's checkpoint

	svcB := newService(t, Config{
		DataDir: dataDir, Workers: 1, NodeID: "nodeB",
		LeaseTTL: failoverTTL, RescanEvery: time.Hour,
	})
	fin := adoptAndFinish(t, svcB, st.ID)
	if fin.State != StateDone {
		t.Fatalf("stolen job ended %s (%s)", fin.State, fin.Error)
	}
	if steals := svcB.Stats().Steals; steals != 1 {
		t.Errorf("node B steals = %d, want 1", steals)
	}

	// Snapshot the committed artifacts before waking the zombie, then
	// verify the zombie's late writes change nothing.
	jobDir := svcJobDir(t, svcB, st.ID)
	committed := map[string][]byte{}
	for _, name := range []string{"out.def", "out.guide", "result.json"} {
		data, err := os.ReadFile(filepath.Join(jobDir, name))
		if err != nil {
			t.Fatal(err)
		}
		committed[name] = data
	}

	hold.Release()
	// The zombie's view converges to the thief's outcome (via the shared
	// state record), without ever writing anything itself.
	zfin := waitStatus(t, svcA, st.ID, func(s Status) bool { return s.State.terminal() })
	if zfin.State != StateDone {
		t.Errorf("zombie's folded state = %s, want done", zfin.State)
	}
	if fw := svcA.Stats().FencedWrites; fw < 1 {
		t.Errorf("node A fenced writes = %d, want >= 1 (the zombie tried to write)", fw)
	}
	if fw := svcB.Stats().FencedWrites; fw != 0 {
		t.Errorf("node B fenced writes = %d, want 0 (the thief owns the lease)", fw)
	}

	gotDef, gotGuide := jobOutputs(t, svcB, st.ID)
	if !bytes.Equal(gotDef, wantDef) || !bytes.Equal(gotGuide, wantGuide) {
		t.Error("stolen-job outputs differ from uninterrupted run")
	}
	for name, want := range committed {
		got, err := os.ReadFile(filepath.Join(jobDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s changed after the zombie resumed; stale writes leaked through the fence", name)
		}
	}
	if done := countEvents(t, jobDir, "done"); done != 1 {
		t.Errorf("journal has %d done events, want exactly 1", done)
	}
}

// TestShedLadderEngagesInOrder drives the three-rung overload ladder with
// the single worker pinned: the exact cache serves even at a full queue
// (rung 1), near-saturation admissions are degraded with the clamps on
// record (rung 2), and only a truly full queue gets the structured 429
// (rung 3). Bystanders admitted before the ladder engaged keep their
// pristine spec and outputs.
func TestShedLadderEngagesInOrder(t *testing.T) {
	cached := synthSpec(420, 1)
	hold := newHolder("j000002")
	defer hold.Release()
	svc := newService(t, Config{
		Workers: 1, QueueCap: 4,
		Shed:       &ShedPolicy{Threshold: 0.5, MaxK: 1},
		Instrument: hold.instrument,
	})

	// Seed the cache with a completed run, then pin the only worker.
	seed, err := svc.Submit(cached)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, seed.ID, isState(StateDone))
	blocker, err := svc.Submit(synthSpec(421, 2))
	if err != nil {
		t.Fatal(err)
	}
	hold.waitEntered(t)

	// Fill the queue: depths 0 and 1 are below the 0.5×4 threshold and
	// admit pristine; depths 2 and 3 are shed-degraded.
	ids := make([]string, 4)
	for i := range ids {
		st, err := svc.Submit(synthSpec(430+int64(i), 3))
		if err != nil {
			t.Fatalf("fill submission %d: %v", i, err)
		}
		ids[i] = st.ID
	}

	// Rung 3: the full queue rejects with the structured 429.
	_, err = svc.Submit(synthSpec(440, 3))
	var api *APIError
	if !errors.As(err, &api) || api.Code != "queue_full" || api.Status != 429 {
		t.Fatalf("full-queue submit err = %v, want queue_full 429", err)
	}
	if api.QueueDepth != 4 || api.QueueCap != 4 {
		t.Errorf("queue_full depth/cap = %d/%d, want 4/4", api.QueueDepth, api.QueueCap)
	}

	// Rung 1: the cache serves the seeded spec instantly at a full queue —
	// no queue slot, no worker, no lease.
	hit, err := svc.Submit(cached)
	if err != nil {
		t.Fatalf("cache-hit submit at full queue: %v", err)
	}
	if hit.State != StateDone || hit.Attempts != 0 {
		t.Errorf("cached serve = %+v, want done with 0 attempts", hit)
	}
	stats := svc.Stats()
	if stats.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", stats.CacheHits)
	}
	if stats.QueueDepth != 4 {
		t.Errorf("queue depth after cache serve = %d, want 4 (no slot consumed)", stats.QueueDepth)
	}
	if stats.ShedDegraded != 2 {
		t.Errorf("shed-degraded admissions = %d, want 2", stats.ShedDegraded)
	}
	hitDef, hitGuide := jobOutputs(t, svc, hit.ID)
	seedDef, seedGuide := jobOutputs(t, svc, seed.ID)
	if !bytes.Equal(hitDef, seedDef) || !bytes.Equal(hitGuide, seedGuide) {
		t.Error("cache-served outputs differ from the run that populated the cache")
	}

	hold.Release()
	waitStatus(t, svc, blocker.ID, isState(StateDone))
	for _, id := range ids {
		if fin := waitStatus(t, svc, id, func(s Status) bool { return s.State.terminal() }); fin.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", id, fin.State, fin.Error)
		}
	}

	// Rung 2 bystanders: the pristine admissions ran the full K=3 spec,
	// byte-identical to an undisturbed run, with no degradations.
	pristine := synthSpec(430, 3)
	wantDef, wantGuide := referenceOutputs(t, pristine)
	gotDef, gotGuide := jobOutputs(t, svc, ids[0])
	if !bytes.Equal(gotDef, wantDef) || !bytes.Equal(gotGuide, wantGuide) {
		t.Error("pristine bystander outputs differ from uninterrupted run")
	}
	for _, id := range ids[:2] {
		res, err := loadResult(svcJobDir(t, svc, id))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Degradations {
			t.Errorf("pristine job %s carries degradation %q", id, d)
		}
	}

	// Rung 2 victims: the shed-degraded admissions ran with K clamped to 1
	// and say so in their result's degradation record.
	for _, id := range ids[2:] {
		res, err := loadResult(svcJobDir(t, svc, id))
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != 1 {
			t.Errorf("shed job %s ran %d iterations, want 1 (clamped)", id, res.Iterations)
		}
		found := false
		for _, d := range res.Degradations {
			if strings.Contains(d, "load shed") || strings.Contains(d, "load-shed") {
				found = true
			}
		}
		if !found {
			t.Errorf("shed job %s result has no load-shed degradation; got %v", id, res.Degradations)
		}
	}
	degraded := synthSpec(432, 3)
	degraded.K = 1
	shedDef, shedGuide := referenceOutputs(t, degraded)
	gotDef, gotGuide = jobOutputs(t, svc, ids[2])
	if !bytes.Equal(gotDef, shedDef) || !bytes.Equal(gotGuide, shedGuide) {
		t.Error("shed-degraded outputs differ from a direct run of the clamped spec")
	}
}

// TestResultCacheExactDifferential: resubmitting an identical spec serves
// the cached result — zero attempts, a cache-hit journal event, and all
// three artifacts byte-identical to the original run (which itself is
// byte-identical to the flow oracle). A different spec misses; a daemon
// with the cache disabled recomputes.
func TestResultCacheExactDifferential(t *testing.T) {
	svc := newService(t, Config{Workers: 1})
	spec := synthSpec(450, 2)

	first, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, first.ID, isState(StateDone))
	wantDef, wantGuide := referenceOutputs(t, spec)
	gotDef, gotGuide := jobOutputs(t, svc, first.ID)
	if !bytes.Equal(gotDef, wantDef) || !bytes.Equal(gotGuide, wantGuide) {
		t.Fatal("first run differs from the flow oracle; cache differential is meaningless")
	}

	second, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || second.Attempts != 0 {
		t.Fatalf("cached resubmission = %+v, want immediately done with 0 attempts", second)
	}
	evs, err := decodeJournal(svcJobDir(t, svc, second.ID))
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]string, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	if got := strings.Join(kinds, ","); got != "submitted,cache-hit,done" {
		t.Errorf("cached job events = %s, want submitted,cache-hit,done", got)
	}
	for _, name := range []string{"out.def", "out.guide", "result.json"} {
		a, err := os.ReadFile(filepath.Join(svcJobDir(t, svc, first.ID), name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(svcJobDir(t, svc, second.ID), name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("cached %s differs from the original run's", name)
		}
	}

	// A different spec is a miss and computes for real.
	other, err := svc.Submit(synthSpec(451, 2))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitStatus(t, svc, other.ID, isState(StateDone)); fin.Attempts != 1 {
		t.Errorf("different spec attempts = %d, want 1 (cache must not serve it)", fin.Attempts)
	}
	stats := svc.Stats()
	if stats.CacheHits != 1 || stats.CacheMisses != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 1/2", stats.CacheHits, stats.CacheMisses)
	}

	t.Run("disabled", func(t *testing.T) {
		svc := newService(t, Config{Workers: 1, DisableCache: true})
		sp := synthSpec(455, 1)
		a, err := svc.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		waitStatus(t, svc, a.ID, isState(StateDone))
		b, err := svc.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if fin := waitStatus(t, svc, b.ID, isState(StateDone)); fin.Attempts != 1 {
			t.Errorf("DisableCache resubmission attempts = %d, want 1 (recompute)", fin.Attempts)
		}
		if hits := svc.Stats().CacheHits; hits != 0 {
			t.Errorf("DisableCache cache hits = %d, want 0", hits)
		}
	})
}

// TestRetryBudgetExhausted: a job that crashes every attempt under a tiny
// retry wall-clock budget lands in the terminal retries_exhausted state —
// distinct from failed (the attempt-count cap) — with the cause on record,
// while the daemon keeps serving.
func TestRetryBudgetExhausted(t *testing.T) {
	svc := newService(t, Config{
		Workers:     1,
		RetryCap:    10, // far above what the budget allows
		RetryBudget: time.Millisecond,
		Instrument: func(jobID string, attempt int, _ *flow.Config, ck *flow.Checkpointing) {
			orig := ck.AfterSave
			ck.AfterSave = func(n int) {
				if jobID == "j000001" {
					panic("persistent fault")
				}
				if orig != nil {
					orig(n)
				}
			}
		},
	})
	st, err := svc.Submit(synthSpec(460, 1))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitStatus(t, svc, st.ID, func(s Status) bool { return s.State.terminal() })
	if fin.State != StateRetriesExhausted {
		t.Fatalf("doomed job ended %s, want %s", fin.State, StateRetriesExhausted)
	}
	if fin.Attempts != 1 || fin.Error == "" {
		t.Errorf("exhausted job = %+v, want 1 attempt with cause", fin)
	}
	if n := countEvents(t, svcJobDir(t, svc, st.ID), "retries_exhausted"); n != 1 {
		t.Errorf("journal has %d retries_exhausted events, want 1", n)
	}
	if got := svc.Stats().States[StateRetriesExhausted]; got != 1 {
		t.Errorf("stats states[retries_exhausted] = %d, want 1", got)
	}

	ok, err := svc.Submit(synthSpec(461, 1))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitStatus(t, svc, ok.ID, func(s Status) bool { return s.State.terminal() }); fin.State != StateDone {
		t.Errorf("follow-up job ended %s", fin.State)
	}
}

// TestNodesEndpointListsBothDaemons: two daemons heartbeat into one store;
// each lists both liveness records, and a halted node's record goes stale.
func TestNodesEndpointListsBothDaemons(t *testing.T) {
	dataDir := t.TempDir()
	svcA := newService(t, Config{DataDir: dataDir, NodeID: "nodeA", LeaseTTL: failoverTTL})
	svcB := newService(t, Config{DataDir: dataDir, NodeID: "nodeB", LeaseTTL: failoverTTL})

	// The first heartbeat of each scheduler loop lands asynchronously.
	deadline := time.Now().Add(30 * time.Second)
	var nodes []NodeStatus
	for {
		nodes = svcB.Nodes()
		if len(nodes) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes = %+v, want nodeA and nodeB", nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if nodes[0].Node != "nodeA" || nodes[1].Node != "nodeB" {
		t.Fatalf("nodes = %+v, want nodeA and nodeB", nodes)
	}
	for _, n := range nodes {
		if n.Expired {
			t.Errorf("node %s already expired", n.Node)
		}
	}

	svcA.Halt()
	deadline = time.Now().Add(30 * time.Second)
	for {
		nodes = svcB.Nodes()
		if len(nodes) == 2 && nodes[0].Expired && !nodes[1].Expired {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("halted node never expired; nodes = %+v", nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
