package service

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Exact result cache.
//
// Job outputs are a pure function of the spec: the flow is deterministic
// for a fixed (design, K, gamma, seed, budgets) tuple, which is exactly
// what the crash-chaos byte-identity suites prove. That purity makes an
// exact cache correct by construction — two submissions with the same
// canonical spec hash MUST produce byte-identical artifacts, so serving
// the first run's artifacts for the second is indistinguishable from
// recomputing them, minus the work. The cache is the first rung of the
// load-shed ladder: a hit consumes no queue slot, no worker, no lease.
//
// Layout: <data-dir>/cache/<hash>/{out.def,out.guide,result.json}, where
// hash is the hex SHA-256 of the canonical spec JSON. Population is
// staged in a temp directory and published by a single directory rename,
// so concurrent nodes racing to populate the same hash are safe (first
// rename wins, losers discard) and a reader never sees a partial entry.

const cacheDirName = "cache"

// cacheArtifacts are the files one completed job contributes, in the
// order they are copied. result.json is written last during the run and
// checked first on lookup, so its presence implies the rest.
var cacheArtifacts = []string{"out.def", "out.guide", "result.json"}

// specHash computes the canonical cache key of a spec. Tenant is cleared —
// identity of the submitter does not change the answer — while every
// field that feeds flow.Config, including AdmissionDegradations (a
// shed-degraded spec is a different computation), stays in the hash.
func specHash(sp Spec) (string, error) {
	canon := sp
	canon.Tenant = ""
	data, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("service: hashing spec: %w", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}

// cacheEntryDir returns the published entry directory for hash, or "" when
// the cache holds no complete entry.
func cacheEntryDir(cacheRoot, hash string) string {
	if cacheRoot == "" || hash == "" {
		return ""
	}
	dir := filepath.Join(cacheRoot, hash)
	if _, err := os.Stat(filepath.Join(dir, "result.json")); err != nil {
		return ""
	}
	return dir
}

// populateCache publishes a completed job's artifacts under hash. Best
// effort: the job has already committed its own outputs, so a cache miss
// tomorrow only costs recomputation. The guard (the writer's lease fence)
// runs immediately before the publishing rename — a zombie ex-owner stages
// a full entry and then fails here, leaving nothing visible.
func populateCache(cacheRoot, hash, jobDir string, guard func() error) error {
	if cacheRoot == "" || hash == "" {
		return nil
	}
	final := filepath.Join(cacheRoot, hash)
	if _, err := os.Stat(final); err == nil {
		return nil // already populated (by us or a peer)
	}
	stage, err := os.MkdirTemp(cacheRoot, ".stage-"+hash[:12]+"-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stage)
	for _, name := range cacheArtifacts {
		if err := copyFile(filepath.Join(jobDir, name), filepath.Join(stage, name)); err != nil {
			return err
		}
	}
	if guard != nil {
		if err := guard(); err != nil {
			return err
		}
	}
	if err := os.Rename(stage, final); err != nil {
		if _, serr := os.Stat(final); serr == nil {
			return nil // lost the publish race; identical bytes either way
		}
		return err
	}
	return nil
}

// copyCachedArtifacts materializes a cache entry's artifacts into a job
// directory, result.json last so a watcher that sees the result sees the
// outputs too.
func copyCachedArtifacts(entryDir, jobDir string) error {
	for _, name := range cacheArtifacts {
		if err := copyFile(filepath.Join(entryDir, name), filepath.Join(jobDir, name)); err != nil {
			return err
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o666)
}
