package service

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/crp-eda/crp/internal/eco"
)

// Exact result cache.
//
// Job outputs are a pure function of the spec: the flow is deterministic
// for a fixed (design, K, gamma, seed, budgets) tuple, which is exactly
// what the crash-chaos byte-identity suites prove. That purity makes an
// exact cache correct by construction — two submissions with the same
// canonical spec hash MUST produce byte-identical artifacts, so serving
// the first run's artifacts for the second is indistinguishable from
// recomputing them, minus the work. The cache is the first rung of the
// load-shed ladder: a hit consumes no queue slot, no worker, no lease.
//
// Layout: <data-dir>/cache/<hash>/{out.def,out.guide,result.json}, where
// hash is the hex SHA-256 of the canonical spec JSON. Population is
// staged in a temp directory and published by a single directory rename,
// so concurrent nodes racing to populate the same hash are safe (first
// rename wins, losers discard) and a reader never sees a partial entry.

const cacheDirName = "cache"

// cacheArtifacts are the files one completed job contributes, in the
// order they are copied. result.json is written last during the run and
// checked first on lookup, so its presence implies the rest.
var cacheArtifacts = []string{"out.def", "out.guide", "result.json"}

// specHash computes the canonical cache key of a spec. Tenant is cleared —
// identity of the submitter does not change the answer — while every
// field that feeds flow.Config, including AdmissionDegradations (a
// shed-degraded spec is a different computation), stays in the hash.
func specHash(sp Spec) (string, error) {
	canon := sp
	canon.Tenant = ""
	data, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("service: hashing spec: %w", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}

// jobHash computes the canonical cache key of any spec. Plain jobs hash
// their canonical spec JSON; ECO jobs chain through ecoJobHash so the key
// names the parent's content, not its job id.
func jobHash(sp Spec, dataDir string) (string, error) {
	if sp.isECO() {
		return ecoJobHash(sp, dataDir)
	}
	return specHash(sp)
}

// ecoJobHash is the ECO cache key: the spec with Tenant cleared,
// ParentJob replaced by the parent's own canonical hash (recursively, so
// ECO-of-ECO chains stay content-addressed), and ECODelta replaced by the
// delta's canonical JSON. Two ECO submissions naming different parent job
// ids that ran byte-identical computations therefore share one entry, and
// any change to the parent's spec or the edit changes the key.
func ecoJobHash(sp Spec, dataDir string) (string, error) {
	parentSpec, err := loadSpec(filepath.Join(dataDir, sp.ParentJob))
	if err != nil {
		return "", fmt.Errorf("service: loading eco parent spec: %w", err)
	}
	parentHash, err := jobHash(*parentSpec, dataDir)
	if err != nil {
		return "", err
	}
	dl, err := eco.Parse(sp.ECODelta)
	if err != nil {
		return "", err
	}
	canon, err := dl.Canonical()
	if err != nil {
		return "", err
	}
	key := sp
	key.Tenant = ""
	key.ParentJob = parentHash
	key.ECODelta = canon
	data, err := json.Marshal(key)
	if err != nil {
		return "", fmt.Errorf("service: hashing eco spec: %w", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}

// cacheEntryDir returns the published entry directory for hash, or "" when
// the cache holds no complete entry.
func cacheEntryDir(cacheRoot, hash string) string {
	if cacheRoot == "" || hash == "" {
		return ""
	}
	dir := filepath.Join(cacheRoot, hash)
	if _, err := os.Stat(filepath.Join(dir, "result.json")); err != nil {
		return ""
	}
	return dir
}

// populateCache publishes a completed job's artifacts under hash. Best
// effort: the job has already committed its own outputs, so a cache miss
// tomorrow only costs recomputation. The guard (the writer's lease fence)
// runs immediately before the publishing rename — a zombie ex-owner stages
// a full entry and then fails here, leaving nothing visible.
func populateCache(cacheRoot, hash, jobDir string, guard func() error) error {
	if cacheRoot == "" || hash == "" {
		return nil
	}
	final := filepath.Join(cacheRoot, hash)
	if _, err := os.Stat(final); err == nil {
		return nil // already populated (by us or a peer)
	}
	stage, err := os.MkdirTemp(cacheRoot, ".stage-"+hash[:12]+"-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stage)
	for _, name := range cacheArtifacts {
		if err := copyFile(filepath.Join(jobDir, name), filepath.Join(stage, name)); err != nil {
			return err
		}
	}
	if guard != nil {
		if err := guard(); err != nil {
			return err
		}
	}
	if err := os.Rename(stage, final); err != nil {
		if _, serr := os.Stat(final); serr == nil {
			return nil // lost the publish race; identical bytes either way
		}
		return err
	}
	return nil
}

// copyCachedArtifacts materializes a cache entry's artifacts into a job
// directory, result.json last so a watcher that sees the result sees the
// outputs too.
func copyCachedArtifacts(entryDir, jobDir string) error {
	for _, name := range cacheArtifacts {
		if err := copyFile(filepath.Join(entryDir, name), filepath.Join(jobDir, name)); err != nil {
			return err
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o666)
}

// touchCacheEntry bumps an entry's recency stamp (result.json mtime) so
// LRU eviction spares recently served entries. Best effort.
func touchCacheEntry(entryDir string) {
	now := time.Now()
	os.Chtimes(filepath.Join(entryDir, "result.json"), now, now)
}

// cacheEntry is one published entry's eviction bookkeeping.
type cacheEntry struct {
	dir   string
	mtime time.Time
	bytes int64
}

// evictCache enforces the cache's entry-count and byte-size bounds
// (0 = unbounded) by removing least-recently-used entries — recency is the
// result.json mtime, which population sets and every cache hit touches.
// Staging directories are skipped; a malformed entry (no result.json)
// counts as infinitely old and goes first. Returns how many entries were
// evicted.
func evictCache(cacheRoot string, maxEntries int, maxBytes int64) int {
	if cacheRoot == "" || (maxEntries <= 0 && maxBytes <= 0) {
		return 0
	}
	ents, err := os.ReadDir(cacheRoot)
	if err != nil {
		return 0
	}
	var entries []cacheEntry
	var total int64
	for _, ent := range ents {
		if !ent.IsDir() || strings.HasPrefix(ent.Name(), ".") {
			continue
		}
		dir := filepath.Join(cacheRoot, ent.Name())
		e := cacheEntry{dir: dir}
		if fi, err := os.Stat(filepath.Join(dir, "result.json")); err == nil {
			e.mtime = fi.ModTime()
		}
		if files, err := os.ReadDir(dir); err == nil {
			for _, f := range files {
				if fi, err := f.Info(); err == nil {
					e.bytes += fi.Size()
				}
			}
		}
		total += e.bytes
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool {
		if !entries[a].mtime.Equal(entries[b].mtime) {
			return entries[a].mtime.Before(entries[b].mtime)
		}
		return entries[a].dir < entries[b].dir
	})
	evicted := 0
	for _, e := range entries {
		over := (maxEntries > 0 && len(entries)-evicted > maxEntries) ||
			(maxBytes > 0 && total > maxBytes)
		if !over {
			break
		}
		if err := os.RemoveAll(e.dir); err != nil {
			continue
		}
		total -= e.bytes
		evicted++
	}
	return evicted
}
