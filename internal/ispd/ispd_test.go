package ispd

import (
	"testing"

	"github.com/crp-eda/crp/internal/geom"
)

func TestSuiteShape(t *testing.T) {
	specs := Suite(0.02)
	if len(specs) != 10 {
		t.Fatalf("suite has %d circuits, want 10", len(specs))
	}
	if specs[0].Node != "n45" || specs[9].Node != "n32" {
		t.Error("node assignment wrong")
	}
	// Table II ordering: test10 has the most cells.
	maxCells := 0
	for _, s := range specs {
		maxCells = max(maxCells, s.Cells)
	}
	if specs[9].Cells != maxCells {
		t.Error("crp_test10 should be the largest circuit")
	}
	// Scaled counts keep Table II's cell ratios approximately: test10 has
	// ~36x the cells of test1 at full size; scaled counts are clamped but
	// ordering must hold.
	if specs[0].Cells >= specs[4].Cells || specs[4].Cells >= specs[9].Cells {
		t.Errorf("cell counts not increasing: %d, %d, %d",
			specs[0].Cells, specs[4].Cells, specs[9].Cells)
	}
}

func TestSuiteClampsTinyScales(t *testing.T) {
	for _, s := range Suite(1e-9) {
		if s.Cells < 50 || s.Nets < 30 {
			t.Errorf("%s: counts below clamp: %d cells %d nets", s.Name, s.Cells, s.Nets)
		}
	}
}

func TestGenerateValidDesign(t *testing.T) {
	spec := Suite(0.01)[0]
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("generated design invalid: %v", err)
	}
	st := d.Stats()
	if st.Cells == 0 || st.Nets == 0 {
		t.Fatalf("empty design: %+v", st)
	}
}

func TestGenerateHitsTargets(t *testing.T) {
	spec := Spec{
		Name: "target", Node: "n32", Cells: 800, Nets: 700,
		Utilisation: 0.88, Hotspots: 2, Obstacles: 1, IOFraction: 0.05, Seed: 7,
	}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	// Cell count within 10% (row packing can fall slightly short).
	if st.Cells < spec.Cells*9/10 || st.Cells > spec.Cells {
		t.Errorf("cells = %d, want ~%d", st.Cells, spec.Cells)
	}
	if st.Nets != spec.Nets {
		t.Errorf("nets = %d, want %d", st.Nets, spec.Nets)
	}
	// Utilisation near target: the paper's benchmarks are packed tight.
	if st.Utilisation < spec.Utilisation-0.12 || st.Utilisation > spec.Utilisation+0.08 {
		t.Errorf("utilisation = %.3f, want near %.2f", st.Utilisation, spec.Utilisation)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Suite(0.01)[1]
	d1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Cells) != len(d2.Cells) || len(d1.Nets) != len(d2.Nets) {
		t.Fatal("same seed produced different sizes")
	}
	for i := range d1.Cells {
		if d1.Cells[i].Pos != d2.Cells[i].Pos {
			t.Fatalf("cell %d at %v vs %v", i, d1.Cells[i].Pos, d2.Cells[i].Pos)
		}
	}
	for i := range d1.Nets {
		if len(d1.Nets[i].Pins) != len(d2.Nets[i].Pins) {
			t.Fatalf("net %d degree differs", i)
		}
	}
}

func TestNetsAreMostlyLocal(t *testing.T) {
	spec := Spec{
		Name: "local", Node: "n45", Cells: 600, Nets: 500,
		Utilisation: 0.85, Seed: 3,
	}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Median net HPWL must be well below the die half-perimeter:
	// clustered netlists are the point of the generator.
	halfPerim := int64(d.Die.W() + d.Die.H())
	var hpwls []int64
	for _, n := range d.Nets {
		hpwls = append(hpwls, d.HPWL(n))
	}
	// Manual median.
	lessCount := 0
	for _, h := range hpwls {
		if h < halfPerim/4 {
			lessCount++
		}
	}
	if lessCount < len(hpwls)*6/10 {
		t.Errorf("only %d/%d nets are local (< quarter half-perimeter)", lessCount, len(hpwls))
	}
}

func TestObstaclesDoNotOverlapCells(t *testing.T) {
	spec := Spec{
		Name: "obs", Node: "n32", Cells: 500, Nets: 300,
		Utilisation: 0.85, Obstacles: 3, Seed: 11,
	}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Obs) == 0 {
		t.Skip("no obstacles placed for this die size")
	}
	for _, c := range d.Cells {
		for _, o := range d.Obs {
			if c.Rect().Overlaps(o.Rect) {
				t.Fatalf("cell %s overlaps obstacle %s", c.Name, o.Name)
			}
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "nocells", Node: "n45", Cells: 0, Nets: 10, Utilisation: 0.8},
		{Name: "badutil", Node: "n45", Cells: 100, Nets: 10, Utilisation: 1.5},
		{Name: "badnode", Node: "n7", Cells: 100, Nets: 10, Utilisation: 0.8},
	}
	for _, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("%s: want error", s.Name)
		}
	}
}

func TestIOPinsOnBoundary(t *testing.T) {
	spec := Spec{
		Name: "io", Node: "n45", Cells: 300, Nets: 400,
		Utilisation: 0.8, IOFraction: 0.5, Seed: 5,
	}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, n := range d.Nets {
		for _, io := range n.IOs {
			found++
			onEdge := io.Pos.X == d.Die.Lo.X || io.Pos.X == d.Die.Hi.X-1 ||
				io.Pos.Y == d.Die.Lo.Y || io.Pos.Y == d.Die.Hi.Y-1
			if !onEdge {
				t.Fatalf("IO pin at %v not on die boundary %v", io.Pos, d.Die)
			}
			if !d.Die.Contains(io.Pos) {
				t.Fatalf("IO pin %v outside die", io.Pos)
			}
		}
	}
	if found == 0 {
		t.Error("IOFraction 0.5 produced no IO pins")
	}
}

func TestEveryNetHasDriver(t *testing.T) {
	d, err := Generate(Suite(0.01)[2])
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Nets {
		if n.Degree() < 2 {
			t.Fatalf("net %s has degree %d", n.Name, n.Degree())
		}
		// First pin is the driver's output pin Z.
		c := d.Cells[n.Pins[0].Cell]
		if c.Macro.Pins[n.Pins[0].Pin].Name != "Z" {
			t.Fatalf("net %s driver pin is %q", n.Name, c.Macro.Pins[n.Pins[0].Pin].Name)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	spec := Suite(0.02)[4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = geom.Pt // keep geom imported for future fixture edits
