// Package ispd generates the synthetic benchmark suite standing in for the
// ISPD-2018 contest circuits (Table II of the paper). The contest LEF/DEF
// files are not redistributable, so this package reproduces the structural
// properties CR&P's behaviour depends on instead of the exact designs:
//
//   - near-full rows ("there is almost no empty space between cells"), so
//     naive cell moves are illegal and the ILP legalizer matters;
//   - spatially clustered netlists, so median positions are meaningful and
//     most nets are local;
//   - congestion hot spots (dense pin/net regions) plus routing blockages,
//     so the congestion penalty of Eq. 10 has somewhere to bite;
//   - two technology classes (45nm-like and 32nm-like) with different layer
//     counts, mirroring the contest's split.
//
// Every circuit is produced deterministically from its Spec's seed.
package ispd

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/place"
	"github.com/crp-eda/crp/internal/tech"
)

// Spec describes one synthetic circuit.
type Spec struct {
	Name        string
	Node        string  // "n45" or "n32"
	Cells       int     // target movable cell count
	Nets        int     // target net count
	Utilisation float64 // row fill fraction (0.85-0.95 for ISPD-2018-like)
	Hotspots    int     // dense-netlist regions
	Obstacles   int     // fixed routing blockages
	IOFraction  float64 // fraction of nets with a die-boundary IO pin
	Seed        int64
	// RefinePasses runs a greedy median-move detailed placement over the
	// generated design (-1 disables, 0 means the default of 2). The
	// contest circuits arrive pre-placed by state-of-the-art placers, so
	// an unrefined random-ish placement would hand CR&P and the baselines
	// wins they never see in practice; refinement converges the easy
	// wirelength gains away, leaving the congestion-driven residue the
	// paper's numbers are made of.
	RefinePasses int
}

// Suite returns the ten Table II circuits with cell/net counts scaled by
// `scale` (1.0 would be full contest size; experiments use a laptop-scale
// fraction). Counts below 50 are clamped so tiny scales stay routable.
func Suite(scale float64) []Spec {
	type row struct {
		name  string
		nets  int
		cells int
		node  string
	}
	// Table II, in thousands.
	rows := []row{
		{"crp_test1", 3_000, 8_000, "n45"},
		{"crp_test2", 36_000, 35_000, "n45"},
		{"crp_test3", 36_000, 35_000, "n45"},
		{"crp_test4", 72_000, 72_000, "n32"},
		{"crp_test5", 72_000, 71_000, "n32"},
		{"crp_test6", 107_000, 107_000, "n32"},
		{"crp_test7", 179_000, 179_000, "n32"},
		{"crp_test8", 179_000, 192_000, "n32"},
		{"crp_test9", 178_000, 192_000, "n32"},
		{"crp_test10", 182_000, 290_000, "n32"},
	}
	specs := make([]Spec, 0, len(rows))
	for i, r := range rows {
		cells := int(float64(r.cells) * scale)
		nets := int(float64(r.nets) * scale)
		if cells < 50 {
			cells = 50
		}
		if nets < 30 {
			nets = 30
		}
		// Later circuits are denser and more congested, mirroring the
		// paper's observation that CR&P wins most on congested designs
		// while [18] wins on the loose early ones.
		util := 0.82 + 0.012*float64(i)
		specs = append(specs, Spec{
			Name:        r.name,
			Node:        r.node,
			Cells:       cells,
			Nets:        nets,
			Utilisation: util,
			Hotspots:    1 + i/2,
			Obstacles:   i / 3,
			IOFraction:  0.03,
			Seed:        int64(1000 + i),
		})
	}
	return specs
}

// widthDist is the standard-cell width mix in sites.
var widthDist = []struct {
	sites  int
	weight float64
}{
	{2, 0.50},
	{3, 0.30},
	{4, 0.15},
	{6, 0.05},
}

func pickWidth(rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for _, w := range widthDist {
		acc += w.weight
		if r < acc {
			return w.sites
		}
	}
	return widthDist[len(widthDist)-1].sites
}

// Generate builds the circuit described by spec.
func Generate(spec Spec) (*db.Design, error) {
	if spec.Cells <= 0 || spec.Nets <= 0 {
		return nil, fmt.Errorf("ispd: spec %q needs positive cell/net counts", spec.Name)
	}
	if spec.Utilisation <= 0 || spec.Utilisation >= 1 {
		return nil, fmt.Errorf("ispd: spec %q utilisation %v out of (0,1)", spec.Name, spec.Utilisation)
	}
	t, err := tech.ByName(spec.Node)
	if err != nil {
		return nil, fmt.Errorf("ispd: spec %q: %w", spec.Name, err)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	sw, rh := t.Site.Width, t.Site.Height

	macros := buildMacros(t)

	// Size the die for the target utilisation with a roughly square shape.
	avgSites := 0.0
	for _, w := range widthDist {
		avgSites += float64(w.sites) * w.weight
	}
	cellArea := float64(spec.Cells) * avgSites * float64(sw) * float64(rh)
	rowArea := cellArea / spec.Utilisation
	side := math.Sqrt(rowArea)
	nRows := max(int(side/float64(rh)+0.5), 4)
	nSites := max(int(side/float64(sw)+0.5), 40)
	die := geom.R(0, 0, nSites*sw, nRows*rh)

	rows := make([]db.Row, nRows)
	for i := range rows {
		o := db.N
		if i%2 == 1 {
			o = db.FS
		}
		rows[i] = db.Row{Index: int32(i), X: 0, Y: i * rh, NumSites: nSites, Orient: o}
	}

	obs := placeObstacles(spec, rng, die, nRows, nSites, t)
	cells := placeCells(spec, rng, macros, obs, nRows, nSites, t)
	if len(cells) == 0 {
		return nil, fmt.Errorf("ispd: spec %q produced no cells (die too small?)", spec.Name)
	}
	nets := buildNets(spec, rng, cells, die)

	d, err := db.New(spec.Name, t, die, rows, macros, cells, nets, obs)
	if err != nil {
		return nil, err
	}
	passes := spec.RefinePasses
	if passes == 0 {
		passes = 2
	}
	if passes > 0 {
		place.Refine(d, place.Config{Passes: passes, Seed: spec.Seed})
	}
	return d, nil
}

// buildMacros creates the small standard-cell library: one macro per width
// class, each with input pins on the left portion and an output pin on the
// right, all on metal1.
func buildMacros(t *tech.Tech) []*db.Macro {
	sw, rh := t.Site.Width, t.Site.Height
	var out []*db.Macro
	for _, w := range widthDist {
		ws := w.sites
		m := &db.Macro{
			Name:   fmt.Sprintf("CELL_X%d", ws),
			Width:  ws * sw,
			Height: rh,
			Pins: []db.PinDef{
				{Name: "A", Offset: geom.Pt(sw/2, rh/4), Layer: 0},
				{Name: "B", Offset: geom.Pt(sw/2, rh/2), Layer: 0},
				{Name: "Z", Offset: geom.Pt(ws*sw-sw/2, 3*rh/4), Layer: 0},
			},
		}
		if ws >= 4 {
			m.Pins = append(m.Pins, db.PinDef{Name: "C", Offset: geom.Pt(3*sw/2, rh/2), Layer: 0})
		}
		out = append(out, m)
	}
	return out
}

// placeObstacles drops a few fixed blocks (placement + lower-layer routing
// blockages), each a few GCells wide, away from the die edge.
func placeObstacles(spec Spec, rng *rand.Rand, die geom.Rect, nRows, nSites int, t *tech.Tech) []db.Obstacle {
	sw, rh := t.Site.Width, t.Site.Height
	var out []db.Obstacle
	for i := 0; i < spec.Obstacles; i++ {
		wSites := 8 + rng.Intn(12)
		hRows := 2 + rng.Intn(3)
		if nSites <= wSites+4 || nRows <= hRows+2 {
			break
		}
		x := (2 + rng.Intn(nSites-wSites-4)) * sw
		y := (1 + rng.Intn(nRows-hRows-2)) * rh
		out = append(out, db.Obstacle{
			Name:   fmt.Sprintf("blk%d", i),
			Rect:   geom.R(x, y, x+wSites*sw, y+hRows*rh),
			Layers: []int{1, 2},
		})
	}
	return out
}

// placeCells packs rows left to right, inserting random gaps sized to hit
// the target utilisation, and skipping obstacle spans.
func placeCells(spec Spec, rng *rand.Rand, macros []*db.Macro, obs []db.Obstacle, nRows, nSites int, t *tech.Tech) []*db.Cell {
	sw, rh := t.Site.Width, t.Site.Height
	macroBySites := map[int]*db.Macro{}
	for _, m := range macros {
		macroBySites[m.Width/sw] = m
	}
	gapProb := 1 - spec.Utilisation

	var cells []*db.Cell
	id := int32(0)
	for r := 0; r < nRows && len(cells) < spec.Cells; r++ {
		o := db.N
		if r%2 == 1 {
			o = db.FS
		}
		x := 0
		for x < nSites && len(cells) < spec.Cells {
			// Skip obstacle spans in this row.
			if blocked, next := obstacleAt(obs, x*sw, r*rh, rh); blocked {
				x = (next + sw - 1) / sw
				continue
			}
			if rng.Float64() < gapProb*2.6 { // calibrated: ~util fill after gaps
				x++
				continue
			}
			ws := pickWidth(rng)
			if x+ws > nSites {
				break
			}
			// The whole footprint must clear obstacles.
			if blocked, next := obstacleAt(obs, (x+ws)*sw-1, r*rh, rh); blocked {
				x = (next + sw - 1) / sw
				continue
			}
			cells = append(cells, &db.Cell{
				ID:     id,
				Name:   fmt.Sprintf("inst%d", id),
				Macro:  macroBySites[ws],
				Pos:    geom.Pt(x*sw, r*rh),
				Orient: o,
			})
			id++
			x += ws
		}
	}
	return cells
}

// obstacleAt reports whether DBU point (x, y..y+rh) hits an obstacle, and
// if so the DBU X where the obstacle ends.
func obstacleAt(obs []db.Obstacle, x, y, rh int) (bool, int) {
	probe := geom.R(x, y, x+1, y+rh)
	for _, o := range obs {
		if o.Rect.Overlaps(probe) {
			return true, o.Rect.Hi.X
		}
	}
	return false, 0
}

// buildNets creates the clustered netlist. A net picks a seed cell (biased
// into hotspot regions), then grows with neighbours sampled from a
// distance-decaying distribution; a small fraction of nets are global.
func buildNets(spec Spec, rng *rand.Rand, cells []*db.Cell, die geom.Rect) []*db.Net {
	// Spatial index: bucket cells into a coarse grid for neighbour lookup.
	const buckets = 24
	bw := max(die.W()/buckets, 1)
	bh := max(die.H()/buckets, 1)
	bucketOf := func(p geom.Point) [2]int {
		return [2]int{min(p.X/bw, buckets-1), min(p.Y/bh, buckets-1)}
	}
	index := map[[2]int][]int32{}
	for _, c := range cells {
		b := bucketOf(c.Pos)
		index[b] = append(index[b], c.ID)
	}

	// Hotspot rectangles.
	var hotspots []geom.Rect
	for h := 0; h < spec.Hotspots; h++ {
		cx := die.Lo.X + rng.Intn(max(die.W(), 1))
		cy := die.Lo.Y + rng.Intn(max(die.H(), 1))
		r := geom.R(cx-2*bw, cy-2*bh, cx+2*bw, cy+2*bh).Intersect(die)
		if !r.Empty() {
			hotspots = append(hotspots, r)
		}
	}
	pickSeed := func() *db.Cell {
		// 35% of nets seed inside a hotspot (when one exists).
		if len(hotspots) > 0 && rng.Float64() < 0.35 {
			hs := hotspots[rng.Intn(len(hotspots))]
			for try := 0; try < 20; try++ {
				c := cells[rng.Intn(len(cells))]
				if hs.Contains(c.Pos) {
					return c
				}
			}
		}
		return cells[rng.Intn(len(cells))]
	}
	neighbourOf := func(seed *db.Cell, radius int) *db.Cell {
		sb := bucketOf(seed.Pos)
		for try := 0; try < 30; try++ {
			dx := rng.Intn(2*radius+1) - radius
			dy := rng.Intn(2*radius+1) - radius
			b := [2]int{sb[0] + dx, sb[1] + dy}
			ids := index[b]
			if len(ids) == 0 {
				continue
			}
			c := cells[ids[rng.Intn(len(ids))]]
			if c.ID != seed.ID {
				return c
			}
		}
		return nil
	}

	degree := func() int {
		r := rng.Float64()
		switch {
		case r < 0.55:
			return 2
		case r < 0.80:
			return 3
		case r < 0.92:
			return 4
		default:
			return 5 + rng.Intn(4)
		}
	}

	var nets []*db.Net
	for len(nets) < spec.Nets {
		seed := pickSeed()
		deg := degree()
		radius := 1
		if rng.Float64() < 0.05 {
			radius = buckets // global net
		}
		members := []*db.Cell{seed}
		seen := map[int32]bool{seed.ID: true}
		// Bounded attempts: a seed may have fewer distinct neighbours than
		// the target degree, in which case the net is built smaller.
		for tries := 0; len(members) < deg && tries < 60; tries++ {
			nb := neighbourOf(seed, radius)
			if nb == nil {
				break
			}
			if !seen[nb.ID] {
				seen[nb.ID] = true
				members = append(members, nb)
			}
		}
		if len(members) < 2 {
			// Isolated seed: fall back to a uniform random partner so net
			// construction always terminates.
			for tries := 0; tries < 60; tries++ {
				c := cells[rng.Intn(len(cells))]
				if c.ID != seed.ID {
					members = append(members, c)
					break
				}
			}
			if len(members) < 2 {
				continue
			}
		}
		n := &db.Net{ID: int32(len(nets)), Name: fmt.Sprintf("net%d", len(nets))}
		// Seed drives from its output pin; sinks listen on inputs.
		n.Pins = append(n.Pins, db.PinRef{Cell: members[0].ID, Pin: outputPin(members[0])})
		for _, m := range members[1:] {
			n.Pins = append(n.Pins, db.PinRef{Cell: m.ID, Pin: int32(rng.Intn(2))})
		}
		if rng.Float64() < spec.IOFraction {
			n.IOs = append(n.IOs, db.IOPin{
				Name:  fmt.Sprintf("io%d", len(nets)),
				Pos:   boundaryPoint(rng, die),
				Layer: 1,
			})
		}
		nets = append(nets, n)
	}
	return nets
}

func outputPin(c *db.Cell) int32 {
	for i, p := range c.Macro.Pins {
		if p.Name == "Z" {
			return int32(i)
		}
	}
	return 0
}

func boundaryPoint(rng *rand.Rand, die geom.Rect) geom.Point {
	switch rng.Intn(4) {
	case 0:
		return geom.Pt(die.Lo.X, die.Lo.Y+rng.Intn(max(die.H(), 1)))
	case 1:
		return geom.Pt(die.Hi.X-1, die.Lo.Y+rng.Intn(max(die.H(), 1)))
	case 2:
		return geom.Pt(die.Lo.X+rng.Intn(max(die.W(), 1)), die.Lo.Y)
	default:
		return geom.Pt(die.Lo.X+rng.Intn(max(die.W(), 1)), die.Hi.Y-1)
	}
}
