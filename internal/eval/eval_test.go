package eval

import (
	"math"
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/detail"
	"github.com/crp-eda/crp/internal/route/global"
)

func evaluated(t *testing.T, seed int64) Metrics {
	t.Helper()
	d, err := ispd.Generate(ispd.Spec{
		Name: "eval_fixture", Node: "n45", Cells: 200, Nets: 150,
		Utilisation: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	return Evaluate(d, g, r.Routes, detail.DefaultConfig())
}

func TestEvaluateProducesMetrics(t *testing.T) {
	m := evaluated(t, 1)
	if m.WirelengthDBU <= 0 || m.Vias <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.WirelengthUM <= 0 {
		t.Error("micron conversion missing")
	}
	if m.Score <= 0 {
		t.Error("score missing")
	}
	if m.Design != "eval_fixture" {
		t.Errorf("design name = %q", m.Design)
	}
}

func TestScoreWeights(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "w", Node: "n45", Cells: 60, Nets: 40, Utilisation: 0.8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m2 := d.Tech.Layer(1).Pitch
	m := Metrics{WirelengthDBU: int64(10 * m2), Vias: 3}
	want := 0.5*10 + 2.0*3
	if got := Score(d, m); math.Abs(got-want) > 1e-9 {
		t.Errorf("Score = %v, want %v", got, want)
	}
	m.DRVs.Shorts = 2
	want += 500 * 2
	if got := Score(d, m); math.Abs(got-want) > 1e-9 {
		t.Errorf("Score with DRVs = %v, want %v", got, want)
	}
	// The contest's 4x via-over-wire ratio the paper leans on.
	if ViaWeight/WireWeight != 4 {
		t.Error("via/wire weight ratio must be 4")
	}
}

func TestCompareSignConvention(t *testing.T) {
	base := Metrics{WirelengthDBU: 1000, Vias: 100, Score: 1000}
	better := Metrics{WirelengthDBU: 900, Vias: 90, Score: 900}
	imp := Compare(base, better)
	if imp.WirelengthPct <= 0 || imp.ViasPct <= 0 || imp.ScorePct <= 0 {
		t.Errorf("improvement should be positive: %+v", imp)
	}
	if math.Abs(imp.ViasPct-10) > 1e-9 {
		t.Errorf("ViasPct = %v, want 10", imp.ViasPct)
	}
	worse := Metrics{WirelengthDBU: 1100, Vias: 110, Score: 1100}
	if imp := Compare(base, worse); imp.ViasPct >= 0 {
		t.Errorf("regression should be negative: %+v", imp)
	}
}

func TestCompareDRVDelta(t *testing.T) {
	base := Metrics{}
	ours := Metrics{DRVs: detail.DRVCounts{Shorts: 2}}
	if got := Compare(base, ours).DRVDelta; got != 2 {
		t.Errorf("DRVDelta = %d, want 2", got)
	}
	if got := Compare(ours, base).DRVDelta; got != -2 {
		t.Errorf("DRVDelta = %d, want -2", got)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	imp := Compare(Metrics{}, Metrics{WirelengthDBU: 10})
	if imp.WirelengthPct != 0 {
		t.Error("zero baseline must not divide by zero")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Design: "x", WirelengthUM: 12.5, Vias: 7,
		DRVs: detail.DRVCounts{Shorts: 1, Opens: 2}}
	s := m.String()
	for _, want := range []string{"x:", "vias=7", "DRVs=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	a := evaluated(t, 3)
	b := evaluated(t, 3)
	if a.WirelengthDBU != b.WirelengthDBU || a.Vias != b.Vias || a.Score != b.Score {
		t.Errorf("evaluation not deterministic: %+v vs %+v", a, b)
	}
}

func TestWorstNetsRankedByCost(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "worst", Node: "n45", Cells: 150, Nets: 120,
		Utilisation: 0.85, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	m := Evaluate(d, g, r.Routes, detail.DefaultConfig())
	rows := WorstNets(d, m, 10)
	if len(rows) == 0 {
		t.Fatal("no report rows")
	}
	if len(rows) > 10 {
		t.Fatalf("cap ignored: %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Cost > rows[i-1].Cost {
			t.Fatalf("rows not sorted: %v then %v", rows[i-1].Cost, rows[i].Cost)
		}
	}
	// Per-net totals must sum to the design totals.
	var wl, vias int64
	for id := range m.NetWL {
		wl += m.NetWL[id]
		vias += m.NetVias[id]
	}
	if wl != m.WirelengthDBU {
		t.Errorf("per-net WL sums to %d, total is %d", wl, m.WirelengthDBU)
	}
	if vias != m.Vias {
		t.Errorf("per-net vias sum to %d, total is %d", vias, m.Vias)
	}
}

func TestWriteNetReport(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "report", Node: "n45", Cells: 100, Nets: 80,
		Utilisation: 0.85, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	m := Evaluate(d, g, r.Routes, detail.DefaultConfig())
	var buf strings.Builder
	if err := WriteNetReport(&buf, d, m, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "WL(um)") {
		t.Error("header missing")
	}
	if lines := strings.Count(out, "\n"); lines < 2 || lines > 6 {
		t.Errorf("report has %d lines, want header + up to 5 rows", lines)
	}
}

func TestWorstNetsEmptyMetrics(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "empty", Node: "n45", Cells: 60, Nets: 30, Utilisation: 0.8, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows := WorstNets(d, Metrics{}, 5); rows != nil {
		t.Error("metrics without per-net data should produce no rows")
	}
}
