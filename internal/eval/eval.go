// Package eval is the stand-in for the official ISPD-2018 contest
// evaluator the paper scores with. It runs the detailed router over a
// design's committed global routes and reports the Table III metric set:
// total wirelength, total via count, and design-rule violations, plus the
// contest-weighted quality score (a unit of wire weighs 0.5, a via 2.0 —
// the 4x ratio the paper highlights as the reason via reduction dominates
// its cost model).
package eval

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/detail"
	"github.com/crp-eda/crp/internal/route/global"
)

// Weights of the contest scoring function.
const (
	WireWeight = 0.5   // per M2-pitch unit of wire
	ViaWeight  = 2.0   // per via cut
	DRVWeight  = 500.0 // per violation, dominating everything else
)

// Metrics is one evaluated routing solution.
type Metrics struct {
	Design        string
	WirelengthDBU int64
	WirelengthUM  float64
	Vias          int64
	DRVs          detail.DRVCounts
	Score         float64
	Detours       int

	// Truncated reports that the evaluation deadline expired mid-routing;
	// the metrics are a lower bound, not the full design's.
	Truncated bool

	// NetWL and NetVias attribute the totals per net (indexed by net ID).
	NetWL   []int64
	NetVias []int64
}

// Evaluate runs detailed routing and scores the result (no deadline).
func Evaluate(d *db.Design, g *grid.Grid, routes []*global.Route, cfg detail.Config) Metrics {
	return EvaluateCtx(context.Background(), d, g, routes, cfg)
}

// EvaluateCtx is Evaluate under a cancellation context: the detailed router
// stops at the next panel boundary once ctx expires and the metrics are
// flagged Truncated.
func EvaluateCtx(ctx context.Context, d *db.Design, g *grid.Grid, routes []*global.Route, cfg detail.Config) Metrics {
	res := detail.RouteCtx(ctx, d, g, routes, cfg)
	m := Metrics{
		Design:        d.Name,
		WirelengthDBU: res.WirelengthDBU,
		WirelengthUM:  d.Tech.Microns(res.WirelengthDBU),
		Vias:          res.Vias,
		DRVs:          res.DRVs,
		Detours:       res.Detours,
		Truncated:     res.Truncated,
		NetWL:         res.NetWL,
		NetVias:       res.NetVias,
	}
	m.Score = Score(d, m)
	return m
}

// Score computes the contest-weighted quality score of a metric set.
// Wirelength is normalised to M2 pitch units, matching the contest's "unit
// of wire" convention.
func Score(d *db.Design, m Metrics) float64 {
	m2 := d.Tech.Layer(1).Pitch
	wlUnits := float64(m.WirelengthDBU) / float64(m2)
	return WireWeight*wlUnits + ViaWeight*float64(m.Vias) + DRVWeight*float64(m.DRVs.Total())
}

// Improvement is a Table III comparison row: positive percentages mean the
// candidate beats the baseline (the paper's sign convention).
type Improvement struct {
	WirelengthPct float64
	ViasPct       float64
	DRVDelta      int // candidate DRVs minus baseline DRVs (0 = "no new DRVs")
	ScorePct      float64
}

// Compare computes the improvement of `ours` over `base`.
func Compare(base, ours Metrics) Improvement {
	pct := func(b, o float64) float64 {
		if b == 0 {
			return 0
		}
		return (b - o) / b * 100
	}
	return Improvement{
		WirelengthPct: pct(float64(base.WirelengthDBU), float64(ours.WirelengthDBU)),
		ViasPct:       pct(float64(base.Vias), float64(ours.Vias)),
		DRVDelta:      ours.DRVs.Total() - base.DRVs.Total(),
		ScorePct:      pct(base.Score, ours.Score),
	}
}

// String formats a metric line for reports.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: WL=%.1fum vias=%d DRVs=%d (S%d/P%d/A%d/O%d) score=%.0f",
		m.Design, m.WirelengthUM, m.Vias, m.DRVs.Total(),
		m.DRVs.Shorts, m.DRVs.Spacing, m.DRVs.MinArea, m.DRVs.Opens, m.Score)
}

// NetReportRow is one line of the worst-net report.
type NetReportRow struct {
	Net          int32
	Name         string
	WirelengthUM float64
	Vias         int64
	Cost         float64 // contest-weighted per-net cost
}

// WorstNets ranks nets by their contest-weighted cost (wire 0.5/unit +
// via 2.0) and returns the top n — the nets a designer would look at first
// and the ones CR&P's Algorithm 1 tends to label critical.
func WorstNets(d *db.Design, m Metrics, n int) []NetReportRow {
	if len(m.NetWL) == 0 {
		return nil
	}
	m2 := float64(d.Tech.Layer(1).Pitch)
	rows := make([]NetReportRow, 0, len(m.NetWL))
	for id := range m.NetWL {
		cost := WireWeight*float64(m.NetWL[id])/m2 + ViaWeight*float64(m.NetVias[id])
		if cost == 0 {
			continue
		}
		rows = append(rows, NetReportRow{
			Net:          int32(id),
			Name:         d.Nets[id].Name,
			WirelengthUM: d.Tech.Microns(m.NetWL[id]),
			Vias:         m.NetVias[id],
			Cost:         cost,
		})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Cost != rows[b].Cost {
			return rows[a].Cost > rows[b].Cost
		}
		return rows[a].Net < rows[b].Net
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// WriteNetReport prints the worst-net table.
func WriteNetReport(w io.Writer, d *db.Design, m Metrics, n int) error {
	rows := WorstNets(d, m, n)
	if _, err := fmt.Fprintf(w, "%-16s %10s %6s %10s\n", "net", "WL(um)", "vias", "cost"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-16s %10.1f %6d %10.1f\n", r.Name, r.WirelengthUM, r.Vias, r.Cost); err != nil {
			return err
		}
	}
	return nil
}
