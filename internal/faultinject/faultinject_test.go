package faultinject

import (
	"bytes"
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/ilp"
)

func TestZeroPlanProducesNilHooks(t *testing.T) {
	in := New(Plan{})
	if in.GCPHook() != nil || in.ECCHook() != nil || in.ILPOptions() != nil {
		t.Fatal("empty plan must produce nil hooks (bit-identity discipline)")
	}
	if len(in.Fired()) != 0 {
		t.Fatal("nothing should have fired")
	}
}

func TestGCPPanicFiresExactlyOnce(t *testing.T) {
	in := New(Plan{PanicAtGCPCall: 3})
	h := in.GCPHook()
	panics := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			h(1, i)
		}()
	}
	if panics != 1 {
		t.Fatalf("panicked %d times, want exactly 1", panics)
	}
	fired := in.Fired()
	if len(fired) != 1 || !strings.HasPrefix(fired[0], "gcp-panic call=3") {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSelectionStarvationFromCall(t *testing.T) {
	in := New(Plan{StarveSelectionFromCall: 2})
	h := in.ILPOptions()
	base := ilp.Options{MaxNodes: 200_000}
	if got := h(base); got.MaxNodes != 200_000 {
		t.Fatalf("call 1 must pass through, got MaxNodes=%d", got.MaxNodes)
	}
	for i := 0; i < 3; i++ {
		if got := h(base); got.MaxNodes != 1 {
			t.Fatalf("starved call returned MaxNodes=%d", got.MaxNodes)
		}
	}
	if len(in.Fired()) != 3 {
		t.Fatalf("fired %d events, want 3", len(in.Fired()))
	}
}

func TestCrashAtFiresExactlyOnceThroughExitSeam(t *testing.T) {
	in := New(CrashAt(StageCheckpoint, 2))
	var codes []int
	in.Exit = func(code int) { codes = append(codes, code) }
	h := in.CheckpointHook()
	if h == nil {
		t.Fatal("planned checkpoint crash produced a nil hook")
	}
	for i := 0; i < 4; i++ {
		h(i + 1)
	}
	if len(codes) != 1 || codes[0] != CrashExitCode {
		t.Fatalf("Exit calls = %v, want one call with %d", codes, CrashExitCode)
	}
	fired := in.Fired()
	if len(fired) != 1 || !strings.HasPrefix(fired[0], "crash stage=checkpoint call=2") {
		t.Fatalf("fired = %v", fired)
	}
}

func TestCrashAtOtherStagesProduceHooks(t *testing.T) {
	for _, stage := range []string{StageGCP, StageECC, StagePostUD} {
		in := New(CrashAt(stage, 1))
		exited := false
		in.Exit = func(int) { exited = true }
		switch stage {
		case StageGCP:
			in.GCPHook()(1, 0)
		case StageECC:
			in.ECCHook()(1, 0)
		case StagePostUD:
			in.PostUDHook()(1)
		}
		if !exited {
			t.Errorf("stage %s: planned crash never reached the exit seam", stage)
		}
	}
}

func TestZeroPlanCrashHooksAreNil(t *testing.T) {
	in := New(Plan{})
	if in.PostUDHook() != nil || in.CheckpointHook() != nil {
		t.Fatal("empty plan must produce nil crash hooks (bit-identity discipline)")
	}
}

func TestFiredCanonicalOrder(t *testing.T) {
	// Events are reported in (stage, call) order regardless of the order
	// they raced in — two worker panics recording concurrently must not
	// make the report flap between runs. Fire the gcp fault before the ecc
	// fault; the report still lists ecc (stage "ecc" < "gcp") first.
	in := New(Plan{PanicAtGCPCall: 1, PanicAtECCCall: 1})
	for _, h := range []func(int, int){in.GCPHook(), in.ECCHook()} {
		func() {
			defer func() { recover() }()
			h(1, 0)
		}()
	}
	fired := in.Fired()
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if !strings.HasPrefix(fired[0], "ecc-panic") || !strings.HasPrefix(fired[1], "gcp-panic") {
		t.Fatalf("events not in canonical (stage, call) order: %v", fired)
	}
}

func TestTruncateDEFDeterministic(t *testing.T) {
	input := []byte("DESIGN chaos ;\nDIEAREA ( 0 0 ) ( 10 10 ) ;\nEND DESIGN\n")
	a := TruncateDEF(input, 0.5)
	b := TruncateDEF(input, 0.5)
	if !bytes.Equal(a, b) {
		t.Fatal("truncation must be deterministic")
	}
	if len(a) != len(input)/2 {
		t.Fatalf("len = %d, want %d", len(a), len(input)/2)
	}
	if len(TruncateDEF(input, 0)) != 0 || len(TruncateDEF(input, 1)) != len(input) {
		t.Fatal("frac clamping broken")
	}
	if len(TruncateDEF(input, -1)) != 0 || len(TruncateDEF(input, 2)) != len(input) {
		t.Fatal("out-of-range frac must clamp")
	}
	// The copy must not alias the input.
	a[0] = 'X'
	if input[0] == 'X' {
		t.Fatal("TruncateDEF must copy, not alias")
	}
}
