package faultinject

import (
	"bytes"
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/ilp"
)

func TestZeroPlanProducesNilHooks(t *testing.T) {
	in := New(Plan{})
	if in.GCPHook() != nil || in.ECCHook() != nil || in.ILPOptions() != nil {
		t.Fatal("empty plan must produce nil hooks (bit-identity discipline)")
	}
	if len(in.Fired()) != 0 {
		t.Fatal("nothing should have fired")
	}
}

func TestGCPPanicFiresExactlyOnce(t *testing.T) {
	in := New(Plan{PanicAtGCPCall: 3})
	h := in.GCPHook()
	panics := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			h(1, i)
		}()
	}
	if panics != 1 {
		t.Fatalf("panicked %d times, want exactly 1", panics)
	}
	fired := in.Fired()
	if len(fired) != 1 || !strings.HasPrefix(fired[0], "gcp-panic call=3") {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSelectionStarvationFromCall(t *testing.T) {
	in := New(Plan{StarveSelectionFromCall: 2})
	h := in.ILPOptions()
	base := ilp.Options{MaxNodes: 200_000}
	if got := h(base); got.MaxNodes != 200_000 {
		t.Fatalf("call 1 must pass through, got MaxNodes=%d", got.MaxNodes)
	}
	for i := 0; i < 3; i++ {
		if got := h(base); got.MaxNodes != 1 {
			t.Fatalf("starved call returned MaxNodes=%d", got.MaxNodes)
		}
	}
	if len(in.Fired()) != 3 {
		t.Fatalf("fired %d events, want 3", len(in.Fired()))
	}
}

func TestTruncateDEFDeterministic(t *testing.T) {
	input := []byte("DESIGN chaos ;\nDIEAREA ( 0 0 ) ( 10 10 ) ;\nEND DESIGN\n")
	a := TruncateDEF(input, 0.5)
	b := TruncateDEF(input, 0.5)
	if !bytes.Equal(a, b) {
		t.Fatal("truncation must be deterministic")
	}
	if len(a) != len(input)/2 {
		t.Fatalf("len = %d, want %d", len(a), len(input)/2)
	}
	if len(TruncateDEF(input, 0)) != 0 || len(TruncateDEF(input, 1)) != len(input) {
		t.Fatal("frac clamping broken")
	}
	if len(TruncateDEF(input, -1)) != 0 || len(TruncateDEF(input, 2)) != len(input) {
		t.Fatal("out-of-range frac must clamp")
	}
	// The copy must not alias the input.
	a[0] = 'X'
	if input[0] == 'X' {
		t.Fatal("TruncateDEF must copy, not alias")
	}
}
