// Package faultinject is the deterministic fault injector behind the flow
// chaos suites. A Plan declares which faults fire and when (call counts, not
// wall-clock, so runs replay identically); an Injector turns the plan into
// the hook functions crp.Hooks accepts and records every fault that
// actually fired.
//
// The zero-fault discipline mirrors PR 1's DisableEstimateCache: an empty
// Plan produces nil hooks, so an un-faulted run executes exactly the
// engine's un-hooked fast path and must be bit-identical to a run without
// the robustness layer at all. The chaos suite asserts both directions.
//
// Beyond in-process faults (worker panics, slowdowns, solver starvation)
// the injector models whole-process crashes: CrashAt(stage, n) plans a
// process exit at the Nth hook call of a stage, which the crash-chaos suite
// uses to kill a run at every checkpoint boundary and assert that resume is
// bit-identical. The exit goes through an injectable seam so unit tests can
// observe it without dying.
package faultinject

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crp-eda/crp/internal/ilp"
)

// Crash stages accepted by CrashAt / Plan.CrashStage.
const (
	StageGCP        = "gcp"        // candidate-generation worker call
	StageECC        = "ecc"        // cost-estimation worker call
	StagePostUD     = "postud"     // after an iteration's update-database phase
	StageCheckpoint = "checkpoint" // after a checkpoint save commits
)

// CrashExitCode is the exit status of an injected crash — distinct from 0
// (success), 1 (ordinary failure) and 2 (go test panic) so the supervisor
// tests can assert that the child died from the planned fault and nothing
// else.
const CrashExitCode = 43

// Plan declares the faults to inject. The zero value injects nothing.
// Counts are 1-based global call indices: PanicAtGCPCall=3 panics the third
// candidate-generation work item of the whole run.
type Plan struct {
	// PanicAtGCPCall panics inside the worker pool at the Nth candidate
	// generation call (0 disables). The pool must quarantine the cell.
	PanicAtGCPCall int
	// PanicAtECCCall panics at the Nth cost-estimation call (0 disables).
	PanicAtECCCall int
	// ECCSlowdown sleeps this long on every cost-estimation call,
	// simulating a pathologically slow stage so deadline tests fire
	// deterministically regardless of machine speed.
	ECCSlowdown time.Duration
	// StarveSelectionFromCall clamps the selection ILP to MaxNodes=1 from
	// the Nth solve on (0 disables), forcing LimitReached and the greedy
	// fallback.
	StarveSelectionFromCall int
	// PanicAtShardRegionCall panics at the Nth sharded-region pipeline
	// start (0 disables). The sharded engine must quarantine the region and
	// redo it serially. Region starts are keyed on their own counter — not
	// the global GCP/ECC counters — because the region schedule, and hence
	// those counters' interleaving, is worker-count-dependent.
	PanicAtShardRegionCall int
	// SlowShardRegionFromCall sleeps ShardRegionDelay at every sharded-
	// region start from the Nth on (0 disables), pushing those regions past
	// their Config.ShardRegionBudget so the budget-expiry degradation fires
	// deterministically regardless of machine speed.
	SlowShardRegionFromCall int
	ShardRegionDelay        time.Duration
	// CrashStage / CrashAtCall terminate the whole process (exit status
	// CrashExitCode) at the Nth call of the named stage hook — the "kill -9
	// at a deterministic point" fault class. Empty stage or zero count
	// disables. Use CrashAt to build a crash-only plan.
	CrashStage  string
	CrashAtCall int
	// DropRenewalsFromCall suppresses lease heartbeat renewals from the Nth
	// renewal attempt on (0 disables) — the network-partition fault class
	// for the multi-node job service: the node believes its renewals
	// succeed, its lease silently expires, and another node may steal the
	// job while the partitioned "zombie" keeps computing.
	DropRenewalsFromCall int
	// StallLeaseWriteAtCall sleeps LeaseWriteStall immediately before the
	// Nth lease-record write (acquire/renew/release alike; 0 disables) —
	// the fsync-stall fault class. The write itself still completes, so
	// the suite can assert that a slow disk delays but never corrupts
	// lease hand-off.
	StallLeaseWriteAtCall int
	LeaseWriteStall       time.Duration
}

// CrashAt plans a process crash at the Nth call of the stage hook and
// nothing else. Stage is one of StageGCP, StageECC, StagePostUD,
// StageCheckpoint.
func CrashAt(stage string, n int) Plan {
	return Plan{CrashStage: stage, CrashAtCall: n}
}

// event is one fired fault with its canonical sort key.
type event struct {
	stage string
	call  int64
	msg   string
}

// Injector applies a Plan and records what fired. All methods are safe for
// concurrent use — the hooks run inside the engine's worker pool.
type Injector struct {
	plan        Plan
	gcpCalls    atomic.Int64
	eccCalls    atomic.Int64
	selCalls    atomic.Int64
	shardCalls  atomic.Int64
	postUDCalls atomic.Int64
	ckptCalls   atomic.Int64
	renewCalls  atomic.Int64
	leaseWrites atomic.Int64

	// Exit is the crash seam: CrashAt faults call it with CrashExitCode.
	// It defaults to os.Exit; unit tests replace it to observe the crash
	// without dying.
	Exit func(code int)

	mu    sync.Mutex
	fired []event
}

// New builds an injector for the plan.
func New(plan Plan) *Injector { return &Injector{plan: plan, Exit: os.Exit} }

func (in *Injector) record(stage string, call int64, msg string) {
	in.mu.Lock()
	in.fired = append(in.fired, event{stage: stage, call: call, msg: msg})
	in.mu.Unlock()
}

// Fired returns every fault event that actually fired, in canonical
// (stage, call-count) order. Sorting — rather than arrival order — keeps the
// report deterministic when faults fire concurrently inside the worker
// pool: two planned panics on different workers race to record themselves,
// but their stage and 1-based call index are fixed by the plan.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	evs := append([]event(nil), in.fired...)
	in.mu.Unlock()
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].stage != evs[j].stage {
			return evs[i].stage < evs[j].stage
		}
		return evs[i].call < evs[j].call
	})
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.msg
	}
	return out
}

// crash fires the planned process crash if stage/call match.
func (in *Injector) crash(stage string, call int64) {
	if in.plan.CrashStage != stage || call != int64(in.plan.CrashAtCall) {
		return
	}
	in.record(stage, call, fmt.Sprintf("crash stage=%s call=%d", stage, call))
	in.Exit(CrashExitCode)
}

// GCPHook returns the crp.Hooks.GCP function, or nil when the plan injects
// no candidate-generation faults (nil keeps the engine on its exact
// un-hooked fast path).
func (in *Injector) GCPHook() func(iter, i int) {
	if in.plan.PanicAtGCPCall <= 0 && !in.crashPlanned(StageGCP) {
		return nil
	}
	return func(iter, i int) {
		n := in.gcpCalls.Add(1)
		in.crash(StageGCP, n)
		if in.plan.PanicAtGCPCall > 0 && n == int64(in.plan.PanicAtGCPCall) {
			in.record(StageGCP, n, fmt.Sprintf("gcp-panic call=%d iter=%d item=%d", n, iter, i))
			panic(fmt.Sprintf("faultinject: GCP worker panic (call %d)", n))
		}
	}
}

// ECCHook returns the crp.Hooks.ECC function, or nil when the plan injects
// no cost-estimation faults.
func (in *Injector) ECCHook() func(iter, i int) {
	if in.plan.PanicAtECCCall <= 0 && in.plan.ECCSlowdown <= 0 && !in.crashPlanned(StageECC) {
		return nil
	}
	return func(iter, i int) {
		n := in.eccCalls.Add(1)
		in.crash(StageECC, n)
		if in.plan.ECCSlowdown > 0 {
			time.Sleep(in.plan.ECCSlowdown)
		}
		if in.plan.PanicAtECCCall > 0 && n == int64(in.plan.PanicAtECCCall) {
			in.record(StageECC, n, fmt.Sprintf("ecc-panic call=%d iter=%d item=%d", n, iter, i))
			panic(fmt.Sprintf("faultinject: ECC worker panic (call %d)", n))
		}
	}
}

// ShardRegionHook returns the crp.Hooks.ShardRegion function, or nil when
// the plan injects no sharded-region faults. The hook runs at the start of
// every speculative region pipeline, inside the worker pool — a panic here
// quarantines exactly that region.
func (in *Injector) ShardRegionHook() func(iter, region int) {
	if in.plan.PanicAtShardRegionCall <= 0 &&
		(in.plan.SlowShardRegionFromCall <= 0 || in.plan.ShardRegionDelay <= 0) {
		return nil
	}
	return func(iter, region int) {
		n := in.shardCalls.Add(1)
		if in.plan.SlowShardRegionFromCall > 0 && in.plan.ShardRegionDelay > 0 &&
			n >= int64(in.plan.SlowShardRegionFromCall) {
			in.record("shard-region", n, fmt.Sprintf("shard-region-slow call=%d iter=%d region=%d", n, iter, region))
			time.Sleep(in.plan.ShardRegionDelay)
		}
		if in.plan.PanicAtShardRegionCall > 0 && n == int64(in.plan.PanicAtShardRegionCall) {
			in.record("shard-region", n, fmt.Sprintf("shard-region-panic call=%d iter=%d region=%d", n, iter, region))
			panic(fmt.Sprintf("faultinject: sharded region panic (call %d)", n))
		}
	}
}

// ILPOptions returns the crp.Hooks.ILPOptions function, or nil when the
// plan injects no selection-ILP faults.
func (in *Injector) ILPOptions() func(opt ilp.Options) ilp.Options {
	if in.plan.StarveSelectionFromCall <= 0 {
		return nil
	}
	return func(opt ilp.Options) ilp.Options {
		if n := in.selCalls.Add(1); n >= int64(in.plan.StarveSelectionFromCall) {
			in.record("selection", n, fmt.Sprintf("selection-starved call=%d", n))
			opt.MaxNodes = 1
		}
		return opt
	}
}

// PostUDHook returns the crp.Hooks.PostUD function, or nil when no
// post-update-database crash is planned.
func (in *Injector) PostUDHook() func(iter int) {
	if !in.crashPlanned(StagePostUD) {
		return nil
	}
	return func(iter int) {
		in.crash(StagePostUD, in.postUDCalls.Add(1))
	}
}

// CheckpointHook returns a flow.Checkpointing.AfterSave function, or nil
// when no post-checkpoint crash is planned. The call count is the number of
// checkpoints committed so far, so CrashAt(StageCheckpoint, n) kills the
// process immediately after the Nth durable save — the boundary the
// crash-chaos suite sweeps.
func (in *Injector) CheckpointHook() func(n int) {
	if !in.crashPlanned(StageCheckpoint) {
		return nil
	}
	return func(int) {
		in.crash(StageCheckpoint, in.ckptCalls.Add(1))
	}
}

func (in *Injector) crashPlanned(stage string) bool {
	return in.plan.CrashStage == stage && in.plan.CrashAtCall > 0
}

// RenewDropHook returns the lease layer's heartbeat-partition seam, or nil
// when no renewal drops are planned. The hook is called once per renewal
// attempt; returning true means "this renewal is lost in the network" —
// the caller must report local success without touching the shared store.
func (in *Injector) RenewDropHook() func() bool {
	if in.plan.DropRenewalsFromCall <= 0 {
		return nil
	}
	return func() bool {
		n := in.renewCalls.Add(1)
		if n < int64(in.plan.DropRenewalsFromCall) {
			return false
		}
		in.record("lease-renew", n, fmt.Sprintf("renewal-dropped call=%d", n))
		return true
	}
}

// LeaseWriteHook returns the lease layer's fsync-stall seam, or nil when no
// stall is planned. It is called immediately before every durable lease
// write with the operation name ("acquire", "renew", "release").
func (in *Injector) LeaseWriteHook() func(op string) {
	if in.plan.StallLeaseWriteAtCall <= 0 || in.plan.LeaseWriteStall <= 0 {
		return nil
	}
	return func(op string) {
		n := in.leaseWrites.Add(1)
		if n == int64(in.plan.StallLeaseWriteAtCall) {
			in.record("lease-write", n, fmt.Sprintf("lease-write-stalled call=%d op=%s", n, op))
			time.Sleep(in.plan.LeaseWriteStall)
		}
	}
}

// TruncateDEF deterministically truncates DEF (or any) input to frac of its
// length — the "torn file" fault class. frac is clamped to [0, 1].
func TruncateDEF(input []byte, frac float64) []byte {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(input)) * frac)
	return append([]byte(nil), input[:n]...)
}
