// Package faultinject is the deterministic fault injector behind the flow
// chaos suite. A Plan declares which faults fire and when (call counts, not
// wall-clock, so runs replay identically); an Injector turns the plan into
// the hook functions crp.Hooks accepts and records every fault that
// actually fired.
//
// The zero-fault discipline mirrors PR 1's DisableEstimateCache: an empty
// Plan produces nil hooks, so an un-faulted run executes exactly the
// engine's un-hooked fast path and must be bit-identical to a run without
// the robustness layer at all. The chaos suite asserts both directions.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crp-eda/crp/internal/ilp"
)

// Plan declares the faults to inject. The zero value injects nothing.
// Counts are 1-based global call indices: PanicAtGCPCall=3 panics the third
// candidate-generation work item of the whole run.
type Plan struct {
	// PanicAtGCPCall panics inside the worker pool at the Nth candidate
	// generation call (0 disables). The pool must quarantine the cell.
	PanicAtGCPCall int
	// PanicAtECCCall panics at the Nth cost-estimation call (0 disables).
	PanicAtECCCall int
	// ECCSlowdown sleeps this long on every cost-estimation call,
	// simulating a pathologically slow stage so deadline tests fire
	// deterministically regardless of machine speed.
	ECCSlowdown time.Duration
	// StarveSelectionFromCall clamps the selection ILP to MaxNodes=1 from
	// the Nth solve on (0 disables), forcing LimitReached and the greedy
	// fallback.
	StarveSelectionFromCall int
}

// Injector applies a Plan and records what fired. All methods are safe for
// concurrent use — the hooks run inside the engine's worker pool.
type Injector struct {
	plan     Plan
	gcpCalls atomic.Int64
	eccCalls atomic.Int64
	selCalls atomic.Int64

	mu    sync.Mutex
	fired []string
}

// New builds an injector for the plan.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

func (in *Injector) record(ev string) {
	in.mu.Lock()
	in.fired = append(in.fired, ev)
	in.mu.Unlock()
}

// Fired returns every fault event that actually fired, in firing order.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.fired...)
}

// GCPHook returns the crp.Hooks.GCP function, or nil when the plan injects
// no candidate-generation faults (nil keeps the engine on its exact
// un-hooked fast path).
func (in *Injector) GCPHook() func(iter, i int) {
	if in.plan.PanicAtGCPCall <= 0 {
		return nil
	}
	return func(iter, i int) {
		if n := in.gcpCalls.Add(1); n == int64(in.plan.PanicAtGCPCall) {
			in.record(fmt.Sprintf("gcp-panic call=%d iter=%d item=%d", n, iter, i))
			panic(fmt.Sprintf("faultinject: GCP worker panic (call %d)", n))
		}
	}
}

// ECCHook returns the crp.Hooks.ECC function, or nil when the plan injects
// no cost-estimation faults.
func (in *Injector) ECCHook() func(iter, i int) {
	if in.plan.PanicAtECCCall <= 0 && in.plan.ECCSlowdown <= 0 {
		return nil
	}
	return func(iter, i int) {
		n := in.eccCalls.Add(1)
		if in.plan.ECCSlowdown > 0 {
			time.Sleep(in.plan.ECCSlowdown)
		}
		if in.plan.PanicAtECCCall > 0 && n == int64(in.plan.PanicAtECCCall) {
			in.record(fmt.Sprintf("ecc-panic call=%d iter=%d item=%d", n, iter, i))
			panic(fmt.Sprintf("faultinject: ECC worker panic (call %d)", n))
		}
	}
}

// ILPOptions returns the crp.Hooks.ILPOptions function, or nil when the
// plan injects no selection-ILP faults.
func (in *Injector) ILPOptions() func(opt ilp.Options) ilp.Options {
	if in.plan.StarveSelectionFromCall <= 0 {
		return nil
	}
	return func(opt ilp.Options) ilp.Options {
		if n := in.selCalls.Add(1); n >= int64(in.plan.StarveSelectionFromCall) {
			in.record(fmt.Sprintf("selection-starved call=%d", n))
			opt.MaxNodes = 1
		}
		return opt
	}
}

// TruncateDEF deterministically truncates DEF (or any) input to frac of its
// length — the "torn file" fault class. frac is clamped to [0, 1].
func TruncateDEF(input []byte, frac float64) []byte {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(input)) * frac)
	return append([]byte(nil), input[:n]...)
}
