package flow

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/crp-eda/crp/internal/checkpoint"
	"github.com/crp-eda/crp/internal/crp"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/lefdef"
	"github.com/crp-eda/crp/internal/view"
)

// Event is one observable progress point of a checkpointed run. Events are
// pure observations of state the flow already computed: a run with OnEvent
// wired emits the same bytes as one without, exactly like checkpoint
// writes themselves.
type Event struct {
	// Kind is "gr" (the post-global-routing checkpoint), "resume" (a
	// snapshot was loaded and the run continues from it), "iteration"
	// (one CR&P iteration completed) or "degradation" (one
	// fault-tolerance event, as it is recorded).
	Kind string `json:"kind"`
	// Iter counts completed CR&P iterations at the event (0 after GR).
	Iter int `json:"iter"`
	// K is the configured iteration count.
	K int `json:"k,omitempty"`
	// Moved is the iteration's moved-cell count (Kind "iteration").
	Moved int `json:"moved,omitempty"`
	// TotalMoved is the whole-run moved-cell total so far.
	TotalMoved int `json:"total_moved,omitempty"`
	// Stage and Fault identify a "degradation" event (Degradation.Stage
	// and .Kind); Detail carries its human-readable description.
	Stage  string `json:"stage,omitempty"`
	Fault  string `json:"fault,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Checkpointing configures crash-safe journaling of the CR&P loop. The
// Manager owns the checkpoint directory; a snapshot is committed after
// global routing (checkpoint 0) and after every transactionally committed
// CR&P iteration, so at most one iteration of work is ever lost to a crash.
//
// Checkpoint writes are pure observers of the pipeline: every snapshot is
// taken from state the flow already computed, so a run with checkpointing
// enabled is bit-identical to one without it, and a failed checkpoint write
// degrades the run (Result.Degradations, stage "ckpt") instead of stopping
// it.
type Checkpointing struct {
	Manager *checkpoint.Manager
	// AfterSave, when non-nil, runs after the Nth (1-based) successful
	// checkpoint commit. The crash-chaos suite hangs process kills and
	// cancellation off it, and the job service hangs its boundary-gated
	// preemption off it; production batch runs leave it nil.
	AfterSave func(n int)
	// OnEvent, when non-nil, observes the run's progress stream: the
	// post-GR boundary, each completed iteration, each degradation as it
	// is recorded, and (on Resume) the restored boundary. The callback
	// runs synchronously on the flow goroutine; it must not block. It
	// fires even when Manager is nil, so progress streaming does not
	// require durability.
	OnEvent func(Event)

	saves int
}

// event reports one progress point; nil-safe like save.
func (ck *Checkpointing) event(e Event) {
	if ck == nil || ck.OnEvent == nil {
		return
	}
	ck.OnEvent(e)
}

// ErrNoCheckpoint re-exports the manager's "nothing to resume" error so
// callers of Resume need not import internal/checkpoint to fall back to a
// fresh run.
var ErrNoCheckpoint = checkpoint.ErrNoCheckpoint

// snapshot captures the resumable state at the current iteration boundary:
// the design state materializes through the view's single exporter, the
// rest is flow metadata.
func snapshotState(s session, engine *crp.Engine, kEff int, totalMoved int, degs []Degradation) *checkpoint.Snapshot {
	st := engine.State()
	snap := &checkpoint.Snapshot{
		DesignName: s.d.Name,
		Cells:      len(s.d.Cells),
		Nets:       len(s.d.Nets),
		K:          kEff,
		Seed:       engine.Cfg.Seed,
		Iter:       st.Iter,
		RNGDraws:   st.RNGDraws,
		TotalMoved: totalMoved,
	}
	snap.SetViewState(s.v.Materialize())
	for _, d := range degs {
		snap.Degradations = append(snap.Degradations,
			checkpoint.Degradation{Stage: d.Stage, Kind: d.Kind, Detail: d.Detail})
	}
	return snap
}

// save commits one checkpoint. Failures degrade the run instead of
// stopping it: the pipeline's answer does not depend on durability, only
// the crash-recovery story does.
func (ck *Checkpointing) save(s session, engine *crp.Engine, kEff, totalMoved int, res *Result) {
	if ck == nil || ck.Manager == nil {
		return
	}
	snap := snapshotState(s, engine, kEff, totalMoved, res.Degradations)
	if err := ck.Manager.Save(snap); err != nil {
		res.degrade("ckpt", "checkpoint-write-failed",
			fmt.Sprintf("iter %d: %v", snap.Iter, err))
		return
	}
	ck.saves++
	if ck.AfterSave != nil {
		ck.AfterSave(ck.saves)
	}
}

// runCheckpointedLoop executes the remaining CR&P iterations exactly as
// crp.Engine.Run would — same cancellation check, same accumulation, same
// stop-on-broken — committing a checkpoint after each iteration. startIter
// is the number of already-committed iterations (0 on a fresh run);
// priorMoved carries a resumed run's accumulated move count so checkpoints
// record whole-run totals.
func runCheckpointedLoop(ctx context.Context, s session, engine *crp.Engine, kEff, startIter, priorMoved int, ck *Checkpointing, res *Result) *crp.Result {
	stats := &crp.Result{}
	for k := startIter; k < kEff; k++ {
		if err := ctx.Err(); err != nil {
			d := crp.Degradation{Iter: k + 1, Kind: "run-cancelled", Detail: err.Error()}
			stats.Degradations = append(stats.Degradations, d)
			res.degrade("crp", d.Kind, fmt.Sprintf("iter %d: %s", d.Iter, d.Detail))
			ck.event(Event{Kind: "degradation", Iter: k, K: kEff, Stage: "crp", Fault: d.Kind, Detail: d.Detail})
			break
		}
		st := engine.Iterate(ctx)
		stats.Iterations = append(stats.Iterations, st)
		stats.TotalMoved += st.MovedCells
		stats.Degradations = append(stats.Degradations, st.Degradations...)
		for _, d := range st.Degradations {
			res.degrade("crp", d.Kind, fmt.Sprintf("iter %d: %s", d.Iter, d.Detail))
			ck.event(Event{Kind: "degradation", Iter: k, K: kEff, Stage: "crp", Fault: d.Kind, Detail: d.Detail})
		}
		if ctx.Err() != nil {
			// The run was cancelled while the iteration executed. Do NOT
			// commit this iteration's checkpoint: a cancellation-induced
			// rollback happens at a timing-dependent point, so journaling
			// it would make a resumed run diverge from an uninterrupted
			// one. The previous boundary's snapshot stands, and resume
			// replays this iteration deterministically from there.
			break
		}
		// Checkpoint every completed iteration, including deterministically
		// rolled-back ones (deadline/invariant rollbacks): their history
		// marks and RNG draws are part of the committed stream the next
		// iteration depends on.
		ck.save(s, engine, kEff, priorMoved+stats.TotalMoved, res)
		ck.event(Event{Kind: "iteration", Iter: k + 1, K: kEff,
			Moved: st.MovedCells, TotalMoved: priorMoved + stats.TotalMoved})
		if engine.Broken() {
			break
		}
	}
	stats.CandidateEstimates = engine.EstimateCount()
	return stats
}

// writeRunOutputs emits the flow's DEF and route-guide outputs.
func writeRunOutputs(s session, defOut, guideOut io.Writer) error {
	if defOut != nil {
		if err := lefdef.WriteDEF(defOut, s.d); err != nil {
			return fmt.Errorf("flow: writing DEF: %w", err)
		}
	}
	if guideOut != nil {
		if err := lefdef.WriteGuides(guideOut, s.d, s.g, s.r.Routes); err != nil {
			return fmt.Errorf("flow: writing guides: %w", err)
		}
	}
	return nil
}

// RunCRPCheckpointed is RunCRPWithOutputs with crash-safe journaling: a
// checkpoint is committed after global routing and after every CR&P
// iteration. With ck nil (or an empty Checkpointing) it is bit-identical to
// RunCRPWithOutputs.
func RunCRPCheckpointed(ctx context.Context, d *db.Design, k int, cfg Config, ck *Checkpointing, defOut, guideOut io.Writer) (*Result, error) {
	ctx, cancel := flowCtx(ctx, cfg)
	defer cancel()
	res := newResult(cfg)
	s, gst, tGR := globalRoute(ctx, d, cfg, res)
	t0 := time.Now()
	engine := crp.New(s.d, s.g, s.r, crpConfig(cfg, k))
	kEff := engine.Cfg.Iterations
	ck.save(s, engine, kEff, 0, res) // checkpoint 0: post-GR, pre-loop
	ck.event(Event{Kind: "gr", Iter: 0, K: kEff})
	stats := runCheckpointedLoop(ctx, s, engine, kEff, 0, 0, ck, res)
	tMid := time.Since(t0)
	m, tDR := detailRoute(ctx, s, cfg, res)
	if err := writeRunOutputs(s, defOut, guideOut); err != nil {
		return nil, err
	}
	res.Metrics = m
	res.GlobalStats = gst
	res.CRPStats = stats
	res.Timings = Timings{
		GlobalRoute: tGR,
		Middle:      tMid,
		DetailRoute: tDR,
		Total:       tGR + tMid + tDR,
		CRPPhases:   stats.Times(),
	}
	return res, nil
}

// Resume continues an interrupted checkpointed run. It loads the newest
// usable checkpoint from ck.Manager (falling back across corrupt ones),
// restores the design, grid, routes and engine to the recorded iteration
// boundary, re-runs the transactional invariant checker to refuse a
// mismatched or corrupted restore, and then continues exactly where the
// interrupted run stopped — the remaining iterations, detailed routing and
// outputs are bit-identical to a run that was never interrupted.
//
// d must be the same design the original run loaded (same input files);
// cfg and k must match the original configuration. Mismatches are detected
// via the identity fields recorded in the checkpoint and refused.
// ErrNoCheckpoint is returned when the directory has nothing usable —
// callers typically fall back to a fresh RunCRPCheckpointed.
func Resume(ctx context.Context, d *db.Design, k int, cfg Config, ck *Checkpointing, defOut, guideOut io.Writer) (*Result, error) {
	if ck == nil || ck.Manager == nil {
		return nil, errors.New("flow: Resume needs a checkpoint manager")
	}
	snap, notes, err := ck.Manager.Latest()
	if err != nil {
		return nil, err
	}
	ctx, cancel := flowCtx(ctx, cfg)
	defer cancel()
	res := &Result{}
	for _, d := range snap.Degradations {
		res.Degradations = append(res.Degradations,
			Degradation{Stage: d.Stage, Kind: d.Kind, Detail: d.Detail})
	}
	for _, n := range notes {
		res.degrade("ckpt", "checkpoint-recovery", n)
	}

	t0 := time.Now()
	s, engine, err := restoreSession(d, k, cfg, snap)
	if err != nil {
		return nil, err
	}
	kEff := engine.Cfg.Iterations
	ck.event(Event{Kind: "resume", Iter: snap.Iter, K: kEff, TotalMoved: snap.TotalMoved})
	stats := runCheckpointedLoop(ctx, s, engine, kEff, snap.Iter, snap.TotalMoved, ck, res)
	stats.TotalMoved += snap.TotalMoved
	tMid := time.Since(t0)
	m, tDR := detailRoute(ctx, s, cfg, res)
	if err := writeRunOutputs(s, defOut, guideOut); err != nil {
		return nil, err
	}
	res.Metrics = m
	res.CRPStats = stats
	res.Timings = Timings{
		Middle:      tMid,
		DetailRoute: tDR,
		Total:       tMid + tDR,
		CRPPhases:   stats.Times(),
	}
	return res, nil
}

// restoreSession rebuilds the live session (design placement and history,
// grid demand, committed routes, engine state) from a snapshot and
// validates it. The design state goes through the view layer's single
// Rebuild path, which also owns the ordering constraint the restore depends
// on (grid construction after position restore, recorded demand overwriting
// the fresh seeding verbatim — see view.Rebuild). The engine's
// construction-time residuals (grid demand minus committed-route demand)
// then reproduce the original run's exactly, which the invariant check
// confirms before any iteration runs.
func restoreSession(d *db.Design, k int, cfg Config, snap *checkpoint.Snapshot) (session, *crp.Engine, error) {
	ccfg := crpConfig(cfg, k)
	if snap.DesignName != d.Name || snap.Cells != len(d.Cells) || snap.Nets != len(d.Nets) {
		return session{}, nil, fmt.Errorf("flow: checkpoint is for design %q (%d cells, %d nets), input is %q (%d cells, %d nets)",
			snap.DesignName, snap.Cells, snap.Nets, d.Name, len(d.Cells), len(d.Nets))
	}
	if snap.K != ccfg.Iterations || snap.Seed != ccfg.Seed {
		return session{}, nil, fmt.Errorf("flow: checkpoint recorded k=%d seed=%d, run configured k=%d seed=%d",
			snap.K, snap.Seed, ccfg.Iterations, ccfg.Seed)
	}
	if snap.Iter > snap.K {
		return session{}, nil, fmt.Errorf("flow: checkpoint iteration %d exceeds k=%d", snap.Iter, snap.K)
	}
	v, err := view.Rebuild(d, cfg.Grid, cfg.Global, snap.ViewState())
	if err != nil {
		return session{}, nil, fmt.Errorf("flow: %w", err)
	}
	g, r := v.Grid(), v.Router()
	engine := crp.New(d, g, r, ccfg)
	if err := engine.RestoreState(crp.State{Iter: snap.Iter, RNGDraws: snap.RNGDraws}); err != nil {
		return session{}, nil, fmt.Errorf("flow: restoring engine state: %w", err)
	}
	if err := engine.CheckInvariants(); err != nil {
		return session{}, nil, fmt.Errorf("flow: restored state fails invariants: %w", err)
	}
	return session{d, g, r, v}, engine, nil
}

// CheckpointOutputs materializes the best-so-far DEF and route-guide bytes
// from the newest usable checkpoint — the state a resumed run would
// continue from — without running further iterations or detailed routing.
// It is the read side of the job service's "fetch best-so-far mid-run"
// endpoint. d, k and cfg must match the checkpointed run, exactly as for
// Resume; the call restores positions into d as a side effect, so callers
// pass a freshly parsed design. The returned iter is the checkpoint's
// completed-iteration count. ErrNoCheckpoint means nothing usable exists
// yet.
func CheckpointOutputs(d *db.Design, k int, cfg Config, mgr *checkpoint.Manager) (defB, guideB []byte, iter int, err error) {
	if mgr == nil {
		return nil, nil, 0, errors.New("flow: CheckpointOutputs needs a checkpoint manager")
	}
	snap, _, err := mgr.Latest()
	if err != nil {
		return nil, nil, 0, err
	}
	s, _, err := restoreSession(d, k, cfg, snap)
	if err != nil {
		return nil, nil, 0, err
	}
	var def, guide bytes.Buffer
	if err := writeRunOutputs(s, &def, &guide); err != nil {
		return nil, nil, 0, err
	}
	return def.Bytes(), guide.Bytes(), snap.Iter, nil
}
