package flow

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eco"
	"github.com/crp-eda/crp/internal/ispd"
)

// ecoSuiteDesign generates one circuit of the scaled suite for the ECO
// differential tests.
func ecoSuiteDesign(tb testing.TB, scale float64, idx int) *db.Design {
	tb.Helper()
	d, err := ispd.Generate(ispd.Suite(scale)[idx])
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// ecoParent runs the checkpointed parent flow and returns its final view
// state (what an ECO resumes from) plus the manager directory.
func ecoParent(t *testing.T, scale float64, idx, k int) (dir string, pos []int64) {
	t.Helper()
	dir = t.TempDir()
	ck := &Checkpointing{Manager: openManager(t, dir, 0)}
	if _, err := RunCRPCheckpointed(context.Background(), ecoSuiteDesign(t, scale, idx), k, quickConfig(), ck, nil, nil); err != nil {
		t.Fatal(err)
	}
	return dir, nil
}

// parentPlaced returns a fresh copy of the circuit with the parent run's
// final placement imported from the checkpoint directory.
func parentPlaced(t *testing.T, scale float64, idx int, ckptDir string) *db.Design {
	t.Helper()
	d := ecoSuiteDesign(t, scale, idx)
	mgr := openManager(t, ckptDir, 0)
	snap, _, err := mgr.Latest()
	if err != nil {
		t.Fatal(err)
	}
	st := snap.ViewState()
	if err := d.ImportPositions(st.Pos, st.Orient); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestECOMatchesScratch is the acceptance differential: for small deltas
// (≤1% of cells moved) against a finished parent run, the incremental
// re-run must land within the Table III reproduction tolerance of a
// from-scratch run on the edited design while doing at least 10× fewer
// candidate estimations — and must stay on the local rung, not the
// full-run fallback.
func TestECOMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is slow")
	}
	// Scales are chosen so the legalizer window (a fixed ~20 sites × 5 rows)
	// is a small fraction of the die: below ~1000 cells the window covers
	// most of the die and no edit is local, so the micro fixtures the other
	// suites use cannot exercise the incremental path.
	cases := []struct {
		scale float64
		idx   int
	}{
		{0.2, 0},  // crp_test1
		{0.05, 1}, // crp_test2
		{0.01, 6}, // crp_test7
	}
	const k = 3
	for _, tc := range cases {
		tc := tc
		name := ispd.Suite(tc.scale)[tc.idx].Name
		t.Run(name, func(t *testing.T) {
			ckptDir, _ := ecoParent(t, tc.scale, tc.idx, k)

			// A ≤1%-of-cells edit generated against the parent's final
			// placement, so every move targets a genuinely free site.
			placed := parentPlaced(t, tc.scale, tc.idx, ckptDir)
			moves := 3
			if max := len(placed.Cells) / 100; moves > max && max > 0 {
				moves = max
			}
			dl, err := eco.GenerateDelta(placed, moves, 1, 5)
			if err != nil {
				t.Fatal(err)
			}

			// Scratch reference: apply the edit to the parent-placed design
			// and run the full flow on it.
			scratchD := parentPlaced(t, tc.scale, tc.idx, ckptDir)
			if err := eco.ApplyToDesign(scratchD, dl); err != nil {
				t.Fatal(err)
			}
			scratch := RunCRP(context.Background(), scratchD, k, quickConfig())
			if scratch.Failed {
				t.Fatalf("scratch run failed: %v", scratch.Degradations)
			}

			// Incremental run from the parent's checkpoint.
			var def, guide bytes.Buffer
			res, err := ECOFromCheckpoint(context.Background(), ecoSuiteDesign(t, tc.scale, tc.idx),
				openManager(t, ckptDir, 0), dl, quickConfig(), ECOOptions{}, &def, &guide)
			if err != nil {
				t.Fatal(err)
			}
			if res.ECO == nil {
				t.Fatal("ECO result carries no ECOStats")
			}
			if res.ECO.FullRun {
				t.Fatalf("small delta fell back to a full run: %v", res.Degradations)
			}
			if res.ECO.DirtyCells <= 0 || res.ECO.DirtyCells >= res.ECO.TotalCells {
				t.Fatalf("dirty region covers %d of %d cells: not a local re-run",
					res.ECO.DirtyCells, res.ECO.TotalCells)
			}
			if def.Len() == 0 || guide.Len() == 0 {
				t.Fatal("ECO run wrote no outputs")
			}

			rel := func(a, b int64) float64 {
				return math.Abs(float64(a)-float64(b)) / float64(b)
			}
			if dw := rel(res.Metrics.WirelengthDBU, scratch.Metrics.WirelengthDBU); dw > 0.05 {
				t.Errorf("wirelength diverges %.2f%% from scratch (eco %d, scratch %d)",
					dw*100, res.Metrics.WirelengthDBU, scratch.Metrics.WirelengthDBU)
			}

			ecoEst := res.ECO.CandidateEstimates
			scratchEst := scratch.CRPStats.CandidateEstimates
			if ecoEst <= 0 {
				t.Fatal("ECO run recorded no candidate estimates")
			}
			if scratchEst < 10*ecoEst {
				t.Errorf("ECO did %d estimates vs %d from scratch: less than 10x saving", ecoEst, scratchEst)
			}
			t.Logf("%s: dirty %d/%d cells, %d rounds, estimates %d vs %d (%.1fx)",
				name, res.ECO.DirtyCells, res.ECO.TotalCells, res.ECO.Rounds,
				ecoEst, scratchEst, float64(scratchEst)/float64(ecoEst))
		})
	}
}

// freeAddSite finds a legal spot for a new cell of the design's first
// macro, for structural-delta tests.
func freeAddSite(t *testing.T, d *db.Design) eco.AddCell {
	t.Helper()
	m := d.Macros[0]
	siteW := d.Tech.Site.Width
	for ri := range d.Rows {
		row := &d.Rows[ri]
		span := row.Span(siteW)
		sites := d.FreeSitesIn(int32(ri), span.Lo, span.Hi, m.Width, nil)
		if len(sites) > 0 {
			return eco.AddCell{Name: "eco_new0", Macro: m.Name, X: sites[0], Y: row.Y}
		}
	}
	t.Fatal("no free site for a structural add")
	return eco.AddCell{}
}

// TestECOStructuralFallsBack covers the ladder's third rung directly: a
// structural delta (added cell) cannot ride a transaction, so RunECO must
// rebuild the design, run unscoped, and record the full-run-fallback
// degradation.
func TestECOStructuralFallsBack(t *testing.T) {
	d := design(t, 61)
	dl := &eco.Delta{Adds: []eco.AddCell{freeAddSite(t, d)}}
	var def, guide bytes.Buffer
	res, err := RunECO(context.Background(), d, nil, dl, quickConfig(), ECOOptions{}, &def, &guide)
	if err != nil {
		t.Fatal(err)
	}
	if res.ECO == nil || !res.ECO.FullRun {
		t.Fatalf("structural delta did not take the full-run rung: %+v", res.ECO)
	}
	if !hasKind(res, "full-run-fallback") {
		t.Fatalf("full-run fallback not recorded: %v", res.Degradations)
	}
	if res.Metrics.WirelengthDBU <= 0 {
		t.Fatalf("degenerate metrics after structural ECO: %+v", res.Metrics)
	}
	if def.Len() == 0 {
		t.Fatal("structural ECO wrote no DEF")
	}
	if !strings.Contains(def.String(), "eco_new0") {
		t.Fatal("added cell missing from the ECO output DEF")
	}
}

// TestECORejectsInvalidDeltaBeforeMutation pins the transactional-rejection
// contract: an inadmissible delta is a structured error and the design is
// left exactly as it was — no half-applied edit.
func TestECORejectsInvalidDeltaBeforeMutation(t *testing.T) {
	d := design(t, 62)
	pre, preOrient := d.ExportPositions()
	dl := &eco.Delta{Moves: []eco.CellMove{{Cell: "no_such_cell", X: 0, Y: 0}}}
	if _, err := RunECO(context.Background(), d, nil, dl, quickConfig(), ECOOptions{}, nil, nil); err == nil {
		t.Fatal("RunECO accepted a delta naming an unknown cell")
	} else if !strings.Contains(err.Error(), "no_such_cell") {
		t.Fatalf("rejection %v does not name the offending cell", err)
	}
	post, postOrient := d.ExportPositions()
	for i := range pre {
		if pre[i] != post[i] || preOrient[i] != postOrient[i] {
			t.Fatalf("cell %d mutated by a rejected delta", i)
		}
	}
}

// ecoRun executes one full RunECO on a fresh fixture and returns its output
// bytes; cancelAtIter > 0 cancels the run from the PostUD hook of that CR&P
// iteration, simulating a crash mid-ECO.
func ecoRun(t *testing.T, seed int64, dl *eco.Delta, cancelAtIter int) (defB, guideB []byte, res *Result, err error) {
	t.Helper()
	d := design(t, seed)
	cfg := quickConfig()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if cancelAtIter > 0 {
		cfg.CRP.Hooks.PostUD = func(iter int) {
			if iter >= cancelAtIter {
				cancel()
			}
		}
	}
	var def, guide bytes.Buffer
	res, err = RunECO(ctx, d, nil, dl, cfg, ECOOptions{}, &def, &guide)
	return def.Bytes(), guide.Bytes(), res, err
}

// TestECOCrashRerunByteIdentical is the eco-chaos core: ECO re-runs keep no
// checkpoints because they are deterministic — a run killed anywhere simply
// reruns from the parent state and must produce byte-identical outputs to a
// never-interrupted run.
func TestECOCrashRerunByteIdentical(t *testing.T) {
	const seed = 63
	dl, err := eco.GenerateDelta(design(t, seed), 6, 1, 9)
	if err != nil {
		t.Fatal(err)
	}

	wantDEF, wantGuide, ref, err := ecoRun(t, seed, dl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.ECO == nil || ref.ECO.FullRun {
		t.Fatalf("reference ECO run not incremental: %+v", ref.ECO)
	}

	// Crash mid-run at every early iteration boundary, then rerun clean.
	for iter := 1; iter <= 2; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("crash-at-iter%d", iter), func(t *testing.T) {
			// The interrupted attempt's partial result is discarded, exactly
			// as the service discards a preempted attempt's outputs.
			_, _, _, _ = ecoRun(t, seed, dl, iter)

			gotDEF, gotGuide, res, err := ecoRun(t, seed, dl, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("rerun failed: %v", res.Degradations)
			}
			if !bytes.Equal(wantDEF, gotDEF) || !bytes.Equal(wantGuide, gotGuide) {
				t.Fatal("rerun after mid-ECO crash diverged from the uninterrupted run")
			}
		})
	}
}

// TestECODeterministic pins the property the service cache key relies on:
// two RunECO invocations with identical inputs produce identical bytes and
// identical work accounting.
func TestECODeterministic(t *testing.T) {
	dl, err := eco.GenerateDelta(design(t, 64), 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	defA, guideA, resA, err := ecoRun(t, 64, dl, 0)
	if err != nil {
		t.Fatal(err)
	}
	defB, guideB, resB, err := ecoRun(t, 64, dl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(defA, defB) || !bytes.Equal(guideA, guideB) {
		t.Fatal("identical ECO inputs produced different outputs")
	}
	if resA.ECO.CandidateEstimates != resB.ECO.CandidateEstimates ||
		resA.ECO.Rounds != resB.ECO.Rounds {
		t.Fatalf("work accounting diverged: %+v vs %+v", resA.ECO, resB.ECO)
	}
}
