package flow

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/crp-eda/crp/internal/checkpoint"
	"github.com/crp-eda/crp/internal/crp"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eco"
	"sort"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/view"
)

// ECOOptions tunes the incremental re-run's convergence ladder. Zero values
// take the defaults noted on each field.
type ECOOptions struct {
	// MaxIters caps each re-label round's CR&P iterations (0: 1 — each
	// round is a single scoped labeling pass; iteration count comes from
	// the ladder's rounds, which re-scope between passes).
	MaxIters int
	// MinMoves is the per-round convergence threshold: a round whose last
	// iteration moves fewer cells stops (0: 1, full convergence).
	MinMoves int
	// HaloGCells sizes the dirty region's halo in GCells (0: 4) — the same
	// interaction-margin idea as crp.Config.ShardHalo, inverted to scope
	// work instead of splitting it.
	HaloGCells int
	// MaxRounds bounds the local re-label rounds per ladder rung before the
	// next rung engages — widen halo, then full-run fallback (0: 3).
	MaxRounds int
}

// ECOStats reports what the incremental entry point did: the delta's size,
// how local the re-run stayed, and the work actually spent — the numbers the
// ≥10×-less-work acceptance bar is checked against.
type ECOStats struct {
	DeltaMoves   int
	DeltaNets    int
	DeltaAdds    int
	DeltaRemoves int
	// DirtyCells is the number of cells inside the initial dirty region
	// (the local rung's candidate pool); TotalCells the design size.
	DirtyCells int
	TotalCells int
	// Rounds counts re-label rounds run (0 when the full-run fallback
	// engaged immediately on a structural delta).
	Rounds int
	// HaloWidened / FullRun record which ladder rungs engaged; both are
	// also visible as "eco"-stage entries in Result.Degradations.
	HaloWidened bool
	FullRun     bool
	// CandidateEstimates is the total Algorithm 3 pricing work of the
	// re-run (mirrors Result.CRPStats.CandidateEstimates).
	CandidateEstimates int64
}

// appendRun folds one engine run into the aggregate CR&P stats of a
// multi-round ECO re-run.
func appendRun(dst, src *crp.Result) {
	dst.Iterations = append(dst.Iterations, src.Iterations...)
	dst.TotalMoved += src.TotalMoved
	dst.CandidateEstimates += src.CandidateEstimates
	dst.Degradations = append(dst.Degradations, src.Degradations...)
}

// RunECO is the incremental entry point: re-run CR&P after a small design
// edit without paying for a full run. prev is the parent run's materialized
// view state (nil: the parent's placement is already in d and global routing
// runs fresh — the path used when only the parent's committed DEF survives).
//
// The delta is validated in full before anything mutates — a malformed edit
// is a structured rejection, never a half-applied design. A non-structural
// delta is applied through one view.Txn (journal-captured, invariant-checked)
// and then climbs the convergence ladder:
//
//	rung 1: re-label locally — only cells intersecting the halo-inflated
//	        dirty region are Algorithm 1 candidates; each round's moves
//	        grow the region, and the loop exits early when the frontier
//	        stops growing;
//	rung 2: widen the halo once if the frontier is still growing after
//	        MaxRounds rounds ("halo-widened" degradation);
//	rung 3: full unscoped run ("full-run-fallback" degradation).
//
// A structural delta (added/removed cells) changes the cell-ID space, so it
// rebuilds the design and takes rung 3 directly. Everything is
// deterministic: rerunning the same (parent state, delta) yields
// byte-identical outputs, which is what lets a crashed ECO job simply rerun
// and what makes the service's parent-hash+delta cache key sound.
func RunECO(ctx context.Context, d *db.Design, prev *view.State, delta *eco.Delta, cfg Config, opts ECOOptions, defOut, guideOut io.Writer) (*Result, error) {
	if delta == nil {
		return nil, errors.New("flow: RunECO needs a delta")
	}
	if delta.Structural() {
		if prev != nil {
			if err := d.ImportPositions(prev.Pos, prev.Orient); err != nil {
				return nil, fmt.Errorf("flow: importing parent placement: %w", err)
			}
		}
		d2, err := eco.ApplyStructural(d, delta)
		if err != nil {
			return nil, err
		}
		res, err := RunCRPWithOutputs(ctx, d2, 0, cfg, defOut, guideOut)
		if err != nil {
			return nil, err
		}
		res.Degradations = append([]Degradation{{
			Stage: "eco", Kind: "full-run-fallback",
			Detail: fmt.Sprintf("structural delta (%d adds, %d removes) rebuilds the design; no incremental path", len(delta.Adds), len(delta.Removes)),
		}}, res.Degradations...)
		res.ECO = &ECOStats{
			DeltaMoves: len(delta.Moves), DeltaNets: len(delta.Nets),
			DeltaAdds: len(delta.Adds), DeltaRemoves: len(delta.Removes),
			TotalCells: len(d2.Cells), FullRun: true,
			CandidateEstimates: res.CRPStats.CandidateEstimates,
		}
		return res, nil
	}

	ctx, cancel := flowCtx(ctx, cfg)
	defer cancel()
	res := newResult(cfg)
	t0 := time.Now()

	var s session
	var tGR time.Duration
	if prev != nil {
		v, err := view.Rebuild(d, cfg.Grid, cfg.Global, *prev)
		if err != nil {
			return nil, fmt.Errorf("flow: rebuilding parent state: %w", err)
		}
		s = session{d, v.Grid(), v.Router(), v}
	} else {
		var gst global.Stats
		s, gst, tGR = globalRoute(ctx, d, cfg, res)
		res.GlobalStats = gst
	}

	// Validate against the live (parent) placement, then apply through one
	// transaction. On any failure the transaction is discarded: the design,
	// demand and routes are exactly the parent state again.
	if err := delta.Validate(d); err != nil {
		return nil, err
	}
	ops, err := delta.Resolve(d)
	if err != nil {
		return nil, err
	}
	txn := s.v.Begin(s.v.Version())
	if err := txn.ApplyDelta(ops); err != nil {
		txn.Discard()
		return nil, fmt.Errorf("flow: applying eco delta: %w", err)
	}
	if err := txn.Check(); err != nil {
		txn.Discard()
		return nil, fmt.Errorf("flow: eco delta failed invariants: %w", err)
	}
	txn.Commit()

	ccfg := crpConfig(cfg, 0)
	gsz := s.g.GCellRect(0, 0).W()
	if gsz <= 0 {
		gsz = 1
	}
	halo := opts.HaloGCells
	if halo <= 0 {
		halo = 4
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 3
	}
	// The halo is HaloGCells routing GCells, clamped to 1/64 of the die: on a
	// small design the grid can degenerate to a handful of die-sized GCells,
	// and an unclamped halo would mark everything dirty — the ladder's
	// widen/full-run rungs recover any interaction a tight halo misses.
	haloDBU := halo * gsz
	if m := min(d.Die.W(), d.Die.H()) / 64; m > 0 && haloDBU > m {
		haloDBU = m
	}
	tracker := eco.NewTracker(d.Die, haloDBU)

	// Seed the dirty region: each moved cell's new footprint (the move has
	// already been applied through the transaction) plus a rect around every
	// terminal of every net the delta perturbed (moved-cell nets and rewired
	// nets alike were just rerouted). Cell footprints, not legalizer windows:
	// the tracker's halo supplies the interaction margin, and a full window
	// (NSites x NRows of slots) is die-scale on small designs — seeding with
	// it marks most of the die dirty and defeats the locality the ladder
	// exists to exploit. Terminals, not whole-net bounding boxes, for the
	// same reason: a die-spanning net would coalesce to the whole die.
	seedNets := map[int32]bool{}
	for _, mv := range delta.Moves {
		c, _ := d.CellByName(mv.Cell)
		tracker.Add(c.Rect())
		for _, nid := range c.Nets {
			seedNets[nid] = true
		}
	}
	for _, nc := range ops.Nets {
		seedNets[nc.Net] = true
	}
	nids := make([]int32, 0, len(seedNets))
	for nid := range seedNets {
		nids = append(nids, nid)
	}
	sort.Slice(nids, func(a, b int) bool { return nids[a] < nids[b] })
	for _, nid := range nids {
		for _, p := range d.NetPinPositions(d.Nets[nid]) {
			tracker.Add(geom.Rect{Lo: p, Hi: p.Add(geom.Pt(1, 1))})
		}
	}

	scope := func(id int32) bool { return tracker.Overlaps(d.Cells[id].Rect()) }
	dirty := 0
	for _, c := range d.Cells {
		if scope(c.ID) {
			dirty++
		}
	}

	iters := opts.MaxIters
	if iters <= 0 {
		iters = 1
	}
	stats := &crp.Result{}
	rounds, rungRounds := 0, 0
	widened, fullRun := false, false
	for {
		if err := ctx.Err(); err != nil {
			res.degrade("eco", "run-cancelled", err.Error())
			break
		}
		rounds++
		rungRounds++
		rcfg := ccfg
		rcfg.Scope = scope
		engine := crp.New(s.d, s.g, s.r, rcfg)
		pre, _ := d.ExportPositions()
		r := engine.RunUntilConverged(ctx, iters, opts.MinMoves)
		appendRun(stats, r)
		res.absorbCRP(r)
		if engine.Broken() {
			break
		}
		// Grow the frontier by each mover's old and new footprint. The
		// halo-inflated footprints — not legalizer windows — are the growth
		// unit: any cell the move displaced or any net it stretched will
		// itself show up as a mover (or a demand shift inside the halo) in
		// the next round, so the frontier follows the real perturbation
		// instead of coalescing window-sized rects into the whole die.
		post, _ := d.ExportPositions()
		areaBefore := tracker.Area()
		for i := range post {
			if post[i] == pre[i] {
				continue
			}
			c := d.Cells[i]
			tracker.Add(c.RectAt(pre[i]))
			tracker.Add(c.Rect())
		}
		// Only material growth (>10% of the region per round) keeps the
		// ladder climbing: the parent run is not a fixed point, so scoped
		// re-labeling always finds a stray profitable move somewhere, and a
		// single far-flung mover must not read as an expanding perturbation.
		grew := 10*tracker.Area() > 11*areaBefore
		if r.TotalMoved == 0 || !grew {
			break // converged, or the frontier stopped growing: done
		}
		// Locality is lost once the dirty region reaches half the die (Area
		// is an upper bound, so this is conservative): scoping buys nothing
		// and the honest answer is an unscoped run.
		coverLost := tracker.CoversDie() || tracker.Area() >= d.Die.Area()/2
		if !coverLost && rungRounds < maxRounds {
			continue
		}
		// Widen only while the region is still compact (≤ 1/8 of the die):
		// inflating an already-sprawling region just manufactures the
		// coverage loss the fallback gate watches for.
		if !coverLost && !widened && tracker.Area() <= d.Die.Area()/8 {
			widened = true
			rungRounds = 0
			tracker.Widen(2 * haloDBU)
			res.degrade("eco", "halo-widened",
				fmt.Sprintf("dirty frontier still growing after %d local rounds; halo widened", rounds))
			continue
		}
		if coverLost {
			fullRun = true
			res.degrade("eco", "full-run-fallback",
				fmt.Sprintf("dirty region reached %d%% of the die after %d rounds; running unscoped", 100*tracker.Area()/d.Die.Area(), rounds))
			fe := crp.New(s.d, s.g, s.r, ccfg)
			fr := fe.Run(ctx)
			appendRun(stats, fr)
			res.absorbCRP(fr)
			break
		}
		// Still-moving frontier after both local rungs, but the region is
		// small: the bounded local refinement stands. The residual motion is
		// ordinary optimization pressure (the parent run was not a fixed
		// point), not unabsorbed delta disruption — rerunning to quiescence
		// would just re-optimize the whole design through a peephole.
		res.degrade("eco", "frontier-active",
			fmt.Sprintf("dirty frontier still active after %d rounds; keeping the local result", rounds))
		break
	}
	tMid := time.Since(t0) - tGR

	m, tDR := detailRoute(ctx, s, cfg, res)
	if err := writeRunOutputs(s, defOut, guideOut); err != nil {
		return nil, err
	}
	res.Metrics = m
	res.CRPStats = stats
	res.ECO = &ECOStats{
		DeltaMoves: len(delta.Moves), DeltaNets: len(delta.Nets),
		DirtyCells: dirty, TotalCells: len(d.Cells),
		Rounds: rounds, HaloWidened: widened, FullRun: fullRun,
		CandidateEstimates: stats.CandidateEstimates,
	}
	res.Timings = Timings{
		GlobalRoute: tGR,
		Middle:      tMid,
		DetailRoute: tDR,
		Total:       tGR + tMid + tDR,
		CRPPhases:   stats.Times(),
	}
	return res, nil
}

// ECOFromCheckpoint runs RunECO from a parent run's newest checkpoint
// snapshot — the cmd/crp `-eco-from <ckpt> -eco-delta <json>` path. d must
// be the same design the parent run loaded; identity is validated against
// the snapshot before anything runs.
func ECOFromCheckpoint(ctx context.Context, d *db.Design, mgr *checkpoint.Manager, delta *eco.Delta, cfg Config, opts ECOOptions, defOut, guideOut io.Writer) (*Result, error) {
	if mgr == nil {
		return nil, errors.New("flow: ECOFromCheckpoint needs a checkpoint manager")
	}
	snap, _, err := mgr.Latest()
	if err != nil {
		return nil, err
	}
	if snap.DesignName != d.Name || snap.Cells != len(d.Cells) || snap.Nets != len(d.Nets) {
		return nil, fmt.Errorf("flow: checkpoint is for design %q (%d cells, %d nets), input is %q (%d cells, %d nets)",
			snap.DesignName, snap.Cells, snap.Nets, d.Name, len(d.Cells), len(d.Nets))
	}
	st := snap.ViewState()
	return RunECO(ctx, d, &st, delta, cfg, opts, defOut, guideOut)
}
