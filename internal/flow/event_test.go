package flow

import (
	"bytes"
	"context"
	"testing"

	"github.com/crp-eda/crp/internal/checkpoint"
)

// The event tests pin the observer contract OnEvent adds for the job
// service: progress events change nothing about the run (byte-identical
// outputs), report the committed truth (one event per durable boundary, in
// order), and a cancellation mid-iteration is never checkpointed — the
// previous boundary stands and resume replays deterministically.

func collectEvents(ck *Checkpointing) *[]Event {
	evs := &[]Event{}
	ck.OnEvent = func(e Event) { *evs = append(*evs, e) }
	return evs
}

func TestEventsArePureObservers(t *testing.T) {
	const k = 2
	silent := &Checkpointing{Manager: openManager(t, t.TempDir(), 0)}
	defSilent, guideSilent, _ := runToBytes(t, design(t, 60), k, quickConfig(), silent)

	ck := &Checkpointing{Manager: openManager(t, t.TempDir(), 0)}
	evs := collectEvents(ck)
	defLoud, guideLoud, _ := runToBytes(t, design(t, 60), k, quickConfig(), ck)

	if !bytes.Equal(defSilent, defLoud) || !bytes.Equal(guideSilent, guideLoud) {
		t.Fatal("attaching OnEvent changed the run's outputs")
	}
	want := []Event{
		{Kind: "gr", Iter: 0, K: k},
		{Kind: "iteration", Iter: 1, K: k},
		{Kind: "iteration", Iter: 2, K: k},
	}
	if len(*evs) != len(want) {
		t.Fatalf("events = %+v, want kinds gr,iteration,iteration", *evs)
	}
	prevMoved := -1
	for i, e := range *evs {
		if e.Kind != want[i].Kind || e.Iter != want[i].Iter || e.K != k {
			t.Errorf("event %d = %+v, want kind %s iter %d", i, e, want[i].Kind, want[i].Iter)
		}
		if e.TotalMoved < prevMoved {
			t.Errorf("event %d total_moved regressed: %+v", i, e)
		}
		prevMoved = e.TotalMoved
	}
}

func TestEventsFireWithoutManager(t *testing.T) {
	// OnEvent must not require durability: a service can stream progress
	// even with checkpointing off.
	ck := &Checkpointing{}
	evs := collectEvents(ck)
	runToBytes(t, design(t, 60), 1, quickConfig(), ck)
	if len(*evs) != 2 || (*evs)[0].Kind != "gr" || (*evs)[1].Kind != "iteration" {
		t.Fatalf("manager-less events = %+v, want gr then iteration", *evs)
	}
}

func TestResumeEmitsResumeEventAndContinues(t *testing.T) {
	const k = 2
	defRef, guideRef, _ := runToBytes(t, design(t, 61), k, quickConfig(), nil)

	// First attempt: stop at the boundary after iteration 1.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	first := &Checkpointing{
		Manager: openManager(t, dir, 0),
		AfterSave: func(n int) {
			if n == 2 { // post-GR save is n==1; iteration 1's is n==2
				cancel()
			}
		},
	}
	var sink bytes.Buffer
	if _, err := RunCRPCheckpointed(ctx, design(t, 61), k, quickConfig(), first, &sink, &sink); err != nil {
		t.Fatal(err)
	}

	second := &Checkpointing{Manager: openManager(t, dir, 0)}
	evs := collectEvents(second)
	var def, guide bytes.Buffer
	if _, err := Resume(context.Background(), design(t, 61), k, quickConfig(), second, &def, &guide); err != nil {
		t.Fatal(err)
	}
	if len(*evs) == 0 || (*evs)[0].Kind != "resume" || (*evs)[0].Iter != 1 {
		t.Fatalf("resume events = %+v, want leading resume at iter 1", *evs)
	}
	for _, e := range (*evs)[1:] {
		if e.Kind != "iteration" {
			t.Errorf("unexpected post-resume event %+v", e)
		}
	}
	if !bytes.Equal(def.Bytes(), defRef) || !bytes.Equal(guide.Bytes(), guideRef) {
		t.Fatal("resumed outputs differ from uninterrupted run")
	}
}

func TestCheckpointOutputsMatchesFinalRun(t *testing.T) {
	// The final checkpoint followed by output rendering must equal the
	// run's own outputs: detailed routing evaluates but does not mutate
	// design state, so the last boundary IS the final placement.
	const k = 2
	dir := t.TempDir()
	ck := &Checkpointing{Manager: openManager(t, dir, 0)}
	defRef, guideRef, _ := runToBytes(t, design(t, 62), k, quickConfig(), ck)

	defB, guideB, iter, err := CheckpointOutputs(design(t, 62), k, quickConfig(), openManager(t, dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if iter != k {
		t.Fatalf("best-so-far iter = %d, want %d", iter, k)
	}
	if !bytes.Equal(defB, defRef) || !bytes.Equal(guideB, guideRef) {
		t.Fatal("checkpoint-rendered outputs differ from the run's outputs")
	}

	if _, _, _, err := CheckpointOutputs(design(t, 62), k, quickConfig(), nil); err == nil {
		t.Fatal("nil manager must be refused")
	}
	if _, _, _, err := CheckpointOutputs(design(t, 62), k, quickConfig(), openManager(t, t.TempDir(), 0)); err == nil {
		t.Fatal("empty checkpoint dir must surface ErrNoCheckpoint")
	}
}

func TestCancelledIterationIsNotCheckpointed(t *testing.T) {
	// Cancel DURING iteration 2 (via the engine's post-update hook): the
	// interrupted iteration's state is timing-dependent, so the loop must
	// not commit it. The newest checkpoint stays at iteration 1, and a
	// resume from it reproduces the uninterrupted run byte for byte.
	const k = 2
	defRef, guideRef, _ := runToBytes(t, design(t, 63), k, quickConfig(), nil)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := quickConfig()
	calls := 0
	cfg.CRP.Hooks.PostUD = func(iter int) {
		if calls++; calls == 2 {
			cancel()
		}
	}
	ck := &Checkpointing{Manager: openManager(t, dir, 0)}
	evs := collectEvents(ck)
	var sink bytes.Buffer
	if _, err := RunCRPCheckpointed(ctx, design(t, 63), k, cfg, ck, &sink, &sink); err != nil {
		t.Fatal(err)
	}
	mgr, err := checkpoint.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	latest, _, err := mgr.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Iter != 1 {
		t.Fatalf("newest checkpoint is iter %d, want 1 (cancelled iteration must not commit)", latest.Iter)
	}
	for _, e := range *evs {
		if e.Kind == "iteration" && e.Iter == 2 {
			t.Fatalf("cancelled iteration emitted a progress event: %+v", e)
		}
	}

	var def, guide bytes.Buffer
	resumed := &Checkpointing{Manager: openManager(t, dir, 0)}
	if _, err := Resume(context.Background(), design(t, 63), k, quickConfig(), resumed, &def, &guide); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(def.Bytes(), defRef) || !bytes.Equal(guide.Bytes(), guideRef) {
		t.Fatal("resume after mid-iteration cancellation diverges from uninterrupted run")
	}
}
