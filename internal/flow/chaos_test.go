package flow

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/faultinject"
	"github.com/crp-eda/crp/internal/lefdef"
)

// The chaos suite drives the full Fig. 1 pipeline through every fault class
// the robustness layer handles — worker panics, ILP starvation, per-stage
// deadlines, corrupted update-database output, torn input files — and
// asserts the same contract for each: the run completes, the fault is
// visible in Result.Degradations, and the design stays legal. The last
// tests assert the converse: with zero faults injected, the robustness
// layer is bit-invisible.

func hasKind(r *Result, kind string) bool {
	for _, d := range r.Degradations {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

func TestChaosWorkerPanicGCP(t *testing.T) {
	d := design(t, 30)
	inj := faultinject.New(faultinject.Plan{PanicAtGCPCall: 3})
	cfg := quickConfig()
	cfg.CRP.Hooks.GCP = inj.GCPHook()
	r := RunCRP(context.Background(), d, 2, cfg)
	if got := inj.Fired(); len(got) != 1 {
		t.Fatalf("injector fired %v, want exactly one GCP panic", got)
	}
	if !hasKind(r, "worker-panic") {
		t.Errorf("panic not surfaced as a degradation: %v", r.Degradations)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design illegal after quarantined panic: %v", err)
	}
	if r.Metrics.Vias <= 0 {
		t.Error("run did not complete to metrics")
	}
}

func TestChaosWorkerPanicECC(t *testing.T) {
	d := design(t, 31)
	inj := faultinject.New(faultinject.Plan{PanicAtECCCall: 2})
	cfg := quickConfig()
	cfg.CRP.Hooks.ECC = inj.ECCHook()
	r := RunCRP(context.Background(), d, 2, cfg)
	if got := inj.Fired(); len(got) != 1 {
		t.Fatalf("injector fired %v, want exactly one ECC panic", got)
	}
	if !hasKind(r, "worker-panic") {
		t.Errorf("panic not surfaced as a degradation: %v", r.Degradations)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design illegal after quarantined panic: %v", err)
	}
	if r.Metrics.Vias <= 0 {
		t.Error("run did not complete to metrics")
	}
}

func TestChaosILPStarvation(t *testing.T) {
	d := design(t, 32)
	inj := faultinject.New(faultinject.Plan{StarveSelectionFromCall: 1})
	cfg := quickConfig()
	cfg.CRP.Hooks.ILPOptions = inj.ILPOptions()
	r := RunCRP(context.Background(), d, 2, cfg)
	if len(inj.Fired()) == 0 {
		t.Fatal("starvation never fired — no selection ILP ran")
	}
	if !hasKind(r, "selection-fallback") {
		t.Errorf("starved selection did not record a fallback: %v", r.Degradations)
	}
	for i, it := range r.CRPStats.Iterations {
		if it.Criticals > 0 && !it.GreedyFallback {
			t.Errorf("iteration %d had criticals but no greedy fallback", i+1)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("greedy fallback broke legality: %v", err)
	}
	if r.Metrics.Vias <= 0 {
		t.Error("run did not complete to metrics")
	}
}

func TestChaosLegalizerStarvation(t *testing.T) {
	d := design(t, 33)
	cfg := quickConfig()
	cfg.CRP.Legal.MaxNodes = 1 // every window ILP hits its budget immediately
	r := RunCRP(context.Background(), d, 2, cfg)
	if !hasKind(r, "legal-incumbent") && !hasKind(r, "legal-dropped") {
		t.Errorf("starved legalizer reported no ladder events: %v", r.Degradations)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("legalizer ladder broke legality: %v", err)
	}
	if r.Metrics.Vias <= 0 {
		t.Error("run did not complete to metrics")
	}
}

func TestChaosIterationDeadline(t *testing.T) {
	d := design(t, 34)
	cfg := quickConfig()
	cfg.Budgets.CRPIteration = time.Nanosecond
	r := RunCRP(context.Background(), d, 2, cfg)
	if !r.DeadlineHit() || !hasKind(r, "iteration-deadline") {
		t.Fatalf("nanosecond iteration budget not reported: %v", r.Degradations)
	}
	for i, it := range r.CRPStats.Iterations {
		if !it.DeadlineHit {
			t.Errorf("iteration %d did not record its deadline", i+1)
		}
		if it.MovedCells != 0 {
			t.Errorf("iteration %d moved %d cells past its deadline gate", i+1, it.MovedCells)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("deadline-starved run left design illegal: %v", err)
	}
	if r.Metrics.Vias <= 0 {
		t.Error("pipeline must still detail-route and evaluate")
	}
}

func TestChaosGRDeadline(t *testing.T) {
	d := design(t, 35)
	cfg := quickConfig()
	cfg.Budgets.GR = time.Nanosecond
	r := RunCRP(context.Background(), d, 1, cfg)
	found := false
	for _, dg := range r.Degradations {
		if dg.Stage == "gr" && dg.Kind == "stage-deadline" {
			found = true
		}
	}
	if !found {
		t.Fatalf("GR deadline not reported: %v", r.Degradations)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design illegal after truncated GR: %v", err)
	}
}

func TestChaosFlowDeadlineWritesOutputs(t *testing.T) {
	d := design(t, 36)
	cfg := quickConfig()
	cfg.Budgets.Flow = time.Nanosecond
	var def, guides bytes.Buffer
	r, err := RunCRPWithOutputs(context.Background(), d, 2, cfg, &def, &guides)
	if err != nil {
		t.Fatal(err)
	}
	if !r.DeadlineHit() {
		t.Error("nanosecond flow budget did not register as a deadline")
	}
	// The contract: a deadline yields the best-so-far outputs, never nothing.
	if !strings.Contains(def.String(), "END DESIGN") {
		t.Error("degraded run wrote no (or truncated) DEF")
	}
}

func TestChaosRollback(t *testing.T) {
	d := design(t, 37)
	cfg := quickConfig()
	corrupted := false
	// After the first update-database phase, nudge a cell off the site grid
	// behind the engine's back. The invariant checker must catch it and roll
	// the whole iteration back; later iterations run clean.
	cfg.CRP.Hooks.PostUD = func(iter int) {
		if !corrupted {
			corrupted = true
			d.Cells[0].Pos.X++
		}
	}
	r := RunCRP(context.Background(), d, 3, cfg)
	if !corrupted {
		t.Fatal("PostUD hook never fired")
	}
	if !hasKind(r, "iteration-rollback") {
		t.Fatalf("corruption not rolled back: %v", r.Degradations)
	}
	if hasKind(r, "invariant-unrecoverable") {
		t.Fatalf("rollback failed to restore consistency: %v", r.Degradations)
	}
	rolled := 0
	for _, it := range r.CRPStats.Iterations {
		if it.RolledBack {
			rolled++
			if it.MovedCells != 0 {
				t.Error("rolled-back iteration still reports moved cells")
			}
		}
	}
	if rolled != 1 {
		t.Errorf("%d iterations rolled back, want exactly the corrupted one", rolled)
	}
	if len(r.CRPStats.Iterations) != 3 {
		t.Errorf("run stopped after rollback: %d iterations", len(r.CRPStats.Iterations))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design illegal after rollback: %v", err)
	}
	if r.Metrics.Vias <= 0 {
		t.Error("run did not complete to metrics")
	}
}

func TestChaosTruncatedDEF(t *testing.T) {
	d := design(t, 38)
	var buf bytes.Buffer
	if err := lefdef.WriteDEF(&buf, d); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, frac := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		torn := faultinject.TruncateDEF(whole, frac)
		if _, err := lefdef.ParseDEF(bytes.NewReader(torn), d.Tech, d.Macros); err == nil {
			t.Errorf("frac %.2f: truncated DEF parsed without error", frac)
		}
	}
	// Sanity: the untruncated bytes must parse, or the loop above proves
	// nothing about truncation.
	if _, err := lefdef.ParseDEF(bytes.NewReader(whole), d.Tech, d.Macros); err != nil {
		t.Fatalf("round-trip parse of intact DEF failed: %v", err)
	}
}

func TestChaosZeroFaultsBitIdentical(t *testing.T) {
	// The robustness layer must be invisible when nothing fires: a run with
	// no budgets and a run with huge (never-expiring) budgets make the same
	// moves, end at the same positions, and score the same metrics.
	run := func(budgeted bool) *Result {
		cfg := quickConfig()
		if budgeted {
			cfg.Budgets = Budgets{
				Flow: time.Hour, GR: time.Hour, CRPIteration: time.Hour,
				ILP: time.Hour, DR: time.Hour,
			}
		}
		return RunCRP(context.Background(), design(t, 39), 3, cfg)
	}
	plain := run(false)
	budgeted := run(true)
	if plain.Degraded() || budgeted.Degraded() {
		t.Fatalf("fault-free runs degraded: %v / %v", plain.Degradations, budgeted.Degradations)
	}
	if !reflect.DeepEqual(plain.Metrics, budgeted.Metrics) {
		t.Errorf("metrics diverged:\n  plain    %+v\n  budgeted %+v", plain.Metrics, budgeted.Metrics)
	}
	for i := range plain.CRPStats.Iterations {
		a, b := plain.CRPStats.Iterations[i], budgeted.CRPStats.Iterations[i]
		if a.MovedCells != b.MovedCells || a.Criticals != b.Criticals ||
			a.EstAfter != b.EstAfter || a.SolverStatus != b.SolverStatus {
			t.Errorf("iteration %d diverged: %+v vs %+v", i+1, a, b)
		}
	}
}

func TestChaosPositionsBitIdenticalUnderBudgets(t *testing.T) {
	// Same invariant as above at the placement level: cell-by-cell equality.
	type run struct {
		pos []int
	}
	runOnce := func(budgeted bool) run {
		d := design(t, 40)
		cfg := quickConfig()
		if budgeted {
			cfg.Budgets = Budgets{Flow: time.Hour, CRPIteration: time.Hour, ILP: time.Hour}
		}
		RunCRP(context.Background(), d, 2, cfg)
		var r run
		for _, c := range d.Cells {
			r.pos = append(r.pos, c.Pos.X, c.Pos.Y)
		}
		return r
	}
	a, b := runOnce(false), runOnce(true)
	for i := range a.pos {
		if a.pos[i] != b.pos[i] {
			t.Fatalf("placements diverged at coordinate %d: %d vs %d", i, a.pos[i], b.pos[i])
		}
	}
}

func TestChaosNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	d := design(t, 41)
	cfg := quickConfig()
	cfg.Budgets = Budgets{GR: time.Nanosecond, CRPIteration: time.Nanosecond, DR: time.Nanosecond}
	RunCRP(context.Background(), d, 2, cfg)
	// Worker pools join before returning; give the runtime a moment to
	// retire exiting goroutines before declaring a leak.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
