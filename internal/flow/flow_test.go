package flow

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/ispd"
)

func design(t testing.TB, seed int64) *db.Design {
	t.Helper()
	d, err := ispd.Generate(ispd.Spec{
		Name: "flow_fixture", Node: "n45", Cells: 250, Nets: 200,
		Utilisation: 0.87, Hotspots: 2, IOFraction: 0.03, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.CRP.Workers = 2
	return cfg
}

func TestRunBaseline(t *testing.T) {
	r := RunBaseline(context.Background(), design(t, 1), quickConfig())
	if r.Metrics.WirelengthDBU <= 0 || r.Metrics.Vias <= 0 {
		t.Fatalf("degenerate metrics: %+v", r.Metrics)
	}
	if r.Timings.GlobalRoute <= 0 || r.Timings.DetailRoute <= 0 {
		t.Error("timings not recorded")
	}
	if r.Timings.Middle != 0 {
		t.Error("baseline has no middle stage")
	}
	if r.Failed {
		t.Error("baseline cannot fail")
	}
}

func TestRunCRP(t *testing.T) {
	r := RunCRP(context.Background(), design(t, 2), 2, quickConfig())
	if r.CRPStats == nil || len(r.CRPStats.Iterations) != 2 {
		t.Fatalf("CRPStats = %+v", r.CRPStats)
	}
	if r.Timings.Middle <= 0 {
		t.Error("CR&P stage not timed")
	}
	if r.Timings.CRPPhases.Total() <= 0 {
		t.Error("phase breakdown missing")
	}
	if r.Metrics.Vias <= 0 {
		t.Error("no metrics")
	}
}

func TestRunSOTA(t *testing.T) {
	r := RunSOTA(context.Background(), design(t, 3), quickConfig())
	if r.Failed {
		t.Fatal("unbudgeted SOTA run failed")
	}
	if r.BaselineStats == nil || r.BaselineStats.MovedCells == 0 {
		t.Error("SOTA moved nothing")
	}
	if r.Metrics.Vias <= 0 {
		t.Error("no metrics")
	}
}

func TestRunSOTAFailure(t *testing.T) {
	cfg := quickConfig()
	cfg.Baseline.TimeBudget = time.Nanosecond
	r := RunSOTA(context.Background(), design(t, 4), cfg)
	if !r.Failed {
		t.Fatal("nanosecond budget did not fail")
	}
	if r.Metrics.Vias != 0 {
		t.Error("failed run must carry no metrics")
	}
	if r.Timings.DetailRoute != 0 {
		t.Error("failed run must not detail-route")
	}
}

func TestCRPBeatsOrMatchesBaselineScore(t *testing.T) {
	// The headline reproduction check at unit scale: CR&P k=3 must not
	// regress the contest score, and across seeds it should win on vias.
	better := 0
	trials := 3
	for seed := int64(10); seed < int64(10+trials); seed++ {
		base := RunBaseline(context.Background(), design(t, seed), quickConfig())
		crp := RunCRP(context.Background(), design(t, seed), 3, quickConfig())
		if crp.Metrics.DRVs.Total() > base.Metrics.DRVs.Total() {
			t.Errorf("seed %d: CR&P added DRVs (%d -> %d)", seed,
				base.Metrics.DRVs.Total(), crp.Metrics.DRVs.Total())
		}
		if crp.Metrics.Vias <= base.Metrics.Vias {
			better++
		}
	}
	if better == 0 {
		t.Errorf("CR&P never matched baseline vias in %d trials", trials)
	}
}

func TestRunCRPWithOutputs(t *testing.T) {
	var def, guides bytes.Buffer
	r, err := RunCRPWithOutputs(context.Background(), design(t, 5), 1, quickConfig(), &def, &guides)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.Vias <= 0 {
		t.Error("no metrics")
	}
	if !strings.Contains(def.String(), "END DESIGN") {
		t.Error("DEF output truncated")
	}
	if !strings.Contains(guides.String(), "(") {
		t.Error("guide output empty")
	}
}

func TestTimingsSumToTotal(t *testing.T) {
	r := RunCRP(context.Background(), design(t, 6), 2, quickConfig())
	sum := r.Timings.GlobalRoute + r.Timings.Middle + r.Timings.DetailRoute
	if sum != r.Timings.Total {
		t.Errorf("stage times %v do not sum to total %v", sum, r.Timings.Total)
	}
}

func TestCRPPhaseTimesWithinMiddle(t *testing.T) {
	r := RunCRP(context.Background(), design(t, 7), 2, quickConfig())
	if r.Timings.CRPPhases.Total() > r.Timings.Middle {
		t.Errorf("phase sum %v exceeds middle stage %v",
			r.Timings.CRPPhases.Total(), r.Timings.Middle)
	}
}

func TestFreshDesignsIndependent(t *testing.T) {
	// Running baseline then CR&P on the same design object would leak
	// state; the flow API contract is fresh designs per run. Verify the
	// guard: running CR&P after baseline on the same object must not
	// corrupt legality even though metrics will differ.
	d := design(t, 8)
	RunBaseline(context.Background(), d, quickConfig())
	r := RunCRP(context.Background(), d, 1, quickConfig())
	if err := d.Validate(); err != nil {
		t.Fatalf("design corrupted: %v", err)
	}
	if r.Metrics.Vias <= 0 {
		t.Error("second flow produced no metrics")
	}
}
