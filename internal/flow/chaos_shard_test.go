package flow

import (
	"context"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/faultinject"
)

// shardChaosConfig is quickConfig with region sharding on and the critical
// set thinned so the flow fixture's die actually partitions (the default
// gamma percolates into one region — see the parity referee in
// internal/crp). The faults below fire per region call, so they work at any
// region count >= 1.
func shardChaosConfig() Config {
	cfg := quickConfig()
	cfg.CRP.ShardRegions = 16
	cfg.CRP.Gamma = 0.03
	cfg.CRP.Legal.NSites = 8
	cfg.CRP.Legal.NRows = 3
	return cfg
}

// positionsOf snapshots every cell coordinate for bit-identity checks.
func positionsOf(d *db.Design) []int {
	pos := make([]int, 0, 2*len(d.Cells))
	for _, c := range d.Cells {
		pos = append(pos, c.Pos.X, c.Pos.Y)
	}
	return pos
}

// samePositions reports cell-by-cell placement equality.
func samePositions(t *testing.T, want, got []int, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: position vectors differ in length: %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: placements diverged at coordinate %d: %d vs %d", label, i, want[i], got[i])
		}
	}
}

// TestChaosShardRegionPanic kills a speculative region pipeline with a
// planned worker panic. The sharded engine must quarantine exactly that
// region, redo it serially, report the event as a degradation — and, because
// the serial redo replays the identical deterministic pipeline, finish at
// placements bit-identical to a zero-fault sharded run.
func TestChaosShardRegionPanic(t *testing.T) {
	clean := design(t, 50)
	cleanRes := RunCRP(context.Background(), clean, 2, shardChaosConfig())
	if cleanRes.Degraded() {
		t.Fatalf("fault-free sharded run degraded: %v", cleanRes.Degradations)
	}
	want := positionsOf(clean)

	inj := faultinject.New(faultinject.Plan{PanicAtShardRegionCall: 1})
	d := design(t, 50)
	cfg := shardChaosConfig()
	cfg.CRP.Hooks.ShardRegion = inj.ShardRegionHook()
	r := RunCRP(context.Background(), d, 2, cfg)

	if fired := inj.Fired(); len(fired) != 1 {
		t.Fatalf("expected exactly one injected fault, got %v", fired)
	}
	if !hasKind(r, "shard-region-panic") {
		t.Errorf("no shard-region-panic degradation recorded: %v", r.Degradations)
	}
	if r.Failed {
		t.Error("run failed outright; a region panic must degrade, not abort")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("design invalid after recovery: %v", err)
	}
	if r.Metrics.Vias <= 0 {
		t.Errorf("degenerate metrics after recovery: %+v", r.Metrics)
	}
	samePositions(t, want, positionsOf(d), "panic-quarantined run vs zero-fault run")
}

// TestChaosShardRegionBudget slows every region pipeline past a tiny
// Budgets.ShardRegion so the budget-expiry degradation fires
// deterministically regardless of machine speed. The overrunning regions
// are redone serially (the redo is not budgeted), so here too the final
// placements must match a zero-fault sharded run bit-for-bit.
func TestChaosShardRegionBudget(t *testing.T) {
	clean := design(t, 51)
	cleanRes := RunCRP(context.Background(), clean, 2, shardChaosConfig())
	if cleanRes.Degraded() {
		t.Fatalf("fault-free sharded run degraded: %v", cleanRes.Degradations)
	}
	want := positionsOf(clean)

	inj := faultinject.New(faultinject.Plan{
		SlowShardRegionFromCall: 1,
		ShardRegionDelay:        20 * time.Millisecond,
	})
	d := design(t, 51)
	cfg := shardChaosConfig()
	cfg.Budgets.ShardRegion = time.Millisecond
	cfg.CRP.Hooks.ShardRegion = inj.ShardRegionHook()
	r := RunCRP(context.Background(), d, 2, cfg)

	if fired := inj.Fired(); len(fired) == 0 {
		t.Fatal("the slowdown fault never fired")
	}
	if !hasKind(r, "shard-region-budget") {
		t.Errorf("no shard-region-budget degradation recorded: %v", r.Degradations)
	}
	if r.Failed {
		t.Error("run failed outright; a budget overrun must degrade, not abort")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("design invalid after recovery: %v", err)
	}
	if r.Metrics.Vias <= 0 {
		t.Errorf("degenerate metrics after recovery: %+v", r.Metrics)
	}
	samePositions(t, want, positionsOf(d), "budget-expired run vs zero-fault run")
}
