package flow

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/atomicio"
	"github.com/crp-eda/crp/internal/checkpoint"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/faultinject"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/supervise"
)

// The crash-chaos suite validates the crash-safety contract end to end:
// kill a checkpointed run at *every* checkpoint boundary, resume it, and
// the final DEF and route-guide bytes must equal an uninterrupted run's.
// It also covers the recovery ladder (corrupt newest checkpoint → previous
// one + replay) and the process-level story (cmd/crpd-style supervision of
// a child that really crashes via an injected os.Exit).

// TestMain re-execs this binary as the crashing child of the supervisor
// test: with CRP_CRASH_CHILD set, the process runs one supervised job
// (resume-or-start + checkpoint + planned crash) instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("CRP_CRASH_CHILD") == "1" {
		crashChildMain()
		return
	}
	os.Exit(m.Run())
}

// suiteDesign generates benchmark circuit idx of the scaled ISPD-2018-style
// suite (0 = crp_test1, 1 = crp_test2); generation is deterministic, so the
// child process and every boundary sweep see identical inputs.
func suiteDesign(tb testing.TB, idx int) *db.Design {
	tb.Helper()
	d, err := ispd.Generate(ispd.Suite(0.02)[idx])
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

func openManager(tb testing.TB, dir string, keep int) *checkpoint.Manager {
	tb.Helper()
	m, err := checkpoint.Open(dir, keep)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// runToBytes runs the checkpointed flow and returns the output bytes.
func runToBytes(tb testing.TB, d *db.Design, k int, cfg Config, ck *Checkpointing) (defB, guideB []byte, res *Result) {
	tb.Helper()
	var def, guide bytes.Buffer
	res, err := RunCRPCheckpointed(context.Background(), d, k, cfg, ck, &def, &guide)
	if err != nil {
		tb.Fatal(err)
	}
	return def.Bytes(), guide.Bytes(), res
}

func TestCheckpointingDisabledBitIdentical(t *testing.T) {
	// Acceptance gate: with no checkpoint manager the new entry point must
	// be byte-for-byte the pre-existing pipeline.
	var defA, guideA bytes.Buffer
	if _, err := RunCRPWithOutputs(context.Background(), design(t, 50), 2, quickConfig(), &defA, &guideA); err != nil {
		t.Fatal(err)
	}
	defB, guideB, _ := runToBytes(t, design(t, 50), 2, quickConfig(), nil)
	if !bytes.Equal(defA.Bytes(), defB) || !bytes.Equal(guideA.Bytes(), guideB) {
		t.Fatal("RunCRPCheckpointed without a manager diverged from RunCRPWithOutputs")
	}
}

func TestCheckpointingEnabledBitIdentical(t *testing.T) {
	// Checkpoint writes are pure observers: enabling them must not change
	// the answer.
	defA, guideA, _ := runToBytes(t, design(t, 51), 2, quickConfig(), nil)
	ck := &Checkpointing{Manager: openManager(t, t.TempDir(), 0)}
	defB, guideB, res := runToBytes(t, design(t, 51), 2, quickConfig(), ck)
	if !bytes.Equal(defA, defB) || !bytes.Equal(guideA, guideB) {
		t.Fatal("journaling changed the pipeline's outputs")
	}
	if res.Degraded() {
		t.Fatalf("healthy journaling degraded the run: %v", res.Degradations)
	}
}

// resumeBitIdentityEveryBoundary is the tentpole assertion for one
// benchmark circuit: for every checkpoint boundary b, a run killed right
// after the bth checkpoint commit and then resumed produces the exact
// bytes of the uninterrupted run.
func resumeBitIdentityEveryBoundary(t *testing.T, idx, k int, tune func(*Config)) {
	cfg := quickConfig()
	if tune != nil {
		tune(&cfg)
	}
	ck := &Checkpointing{Manager: openManager(t, t.TempDir(), 0)}
	saves := 0
	ck.AfterSave = func(n int) { saves = n }
	wantDEF, wantGuide, res := runToBytes(t, suiteDesign(t, idx), k, cfg, ck)
	if res.Degraded() {
		t.Fatalf("reference run degraded: %v", res.Degradations)
	}
	if saves != k+1 {
		t.Fatalf("%d checkpoints committed, want %d (post-GR + per iteration)", saves, k+1)
	}

	for b := 1; b <= saves; b++ {
		b := b
		t.Run(fmt.Sprintf("boundary%d", b), func(t *testing.T) {
			dir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ck := &Checkpointing{Manager: openManager(t, dir, 0)}
			// "Crash" right after the bth durable commit: cancel stops the
			// loop at the next boundary and the in-memory run is discarded —
			// only the checkpoint directory survives, as after a real kill.
			ck.AfterSave = func(n int) {
				if n == b {
					cancel()
				}
			}
			if _, err := RunCRPCheckpointed(ctx, suiteDesign(t, idx), k, cfg, ck, nil, nil); err != nil {
				t.Fatal(err)
			}

			var def, guide bytes.Buffer
			res, err := Resume(context.Background(), suiteDesign(t, idx), k, cfg,
				&Checkpointing{Manager: openManager(t, dir, 0)}, &def, &guide)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(def.Bytes(), wantDEF) {
				t.Error("resumed DEF differs from the uninterrupted run")
			}
			if !bytes.Equal(guide.Bytes(), wantGuide) {
				t.Error("resumed guides differ from the uninterrupted run")
			}
			if res.CRPStats.TotalMoved != 0 && res.Metrics.Vias <= 0 {
				t.Error("resumed run did not complete to metrics")
			}
		})
	}
}

func TestResumeBitIdentityEveryBoundaryTest1(t *testing.T) {
	resumeBitIdentityEveryBoundary(t, 0, 3, nil)
}

func TestResumeBitIdentityEveryBoundaryTest2(t *testing.T) {
	if testing.Short() {
		t.Skip("crp_test2 sweep is the long half of the crash suite")
	}
	resumeBitIdentityEveryBoundary(t, 1, 2, nil)
}

// TestResumeBitIdentityEveryBoundarySharded reruns the boundary sweep with
// region sharding on (sparse criticals so crp_test2 genuinely splits):
// checkpoints commit only at iteration boundaries, where the sharded and
// serial paths have the same committed state, so every kill-and-resume must
// still reproduce the uninterrupted run's bytes.
func TestResumeBitIdentityEveryBoundarySharded(t *testing.T) {
	resumeBitIdentityEveryBoundary(t, 1, 2, func(cfg *Config) {
		cfg.CRP.ShardRegions = 16
		cfg.CRP.Gamma = 0.03
		cfg.CRP.Legal.NSites = 8
		cfg.CRP.Legal.NRows = 3
	})
}

func TestResumeFallsBackAcrossCorruptCheckpoint(t *testing.T) {
	cfg := quickConfig()
	dir := t.TempDir()
	ck := &Checkpointing{Manager: openManager(t, dir, 3)}
	wantDEF, wantGuide, _ := runToBytes(t, design(t, 52), 2, cfg, ck)

	// Tear the newest checkpoint file; recovery must step back one
	// boundary and deterministically replay the lost iteration.
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.bin"))
	if err != nil || len(files) < 2 {
		t.Fatalf("checkpoint files = %v (err %v)", files, err)
	}
	newest := files[0]
	for _, f := range files {
		if f > newest {
			newest = f
		}
	}
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)*2/3], 0o666); err != nil {
		t.Fatal(err)
	}

	var def, guide bytes.Buffer
	res, err := Resume(context.Background(), design(t, 52), 2, cfg,
		&Checkpointing{Manager: openManager(t, dir, 3)}, &def, &guide)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(def.Bytes(), wantDEF) || !bytes.Equal(guide.Bytes(), wantGuide) {
		t.Error("fallback + replay diverged from the uninterrupted run")
	}
	found := false
	for _, d := range res.Degradations {
		if d.Stage == "ckpt" && d.Kind == "checkpoint-recovery" {
			found = true
		}
	}
	if !found {
		t.Errorf("fallback left no recovery degradation: %v", res.Degradations)
	}
}

func TestResumeRefusesMismatchedRun(t *testing.T) {
	cfg := quickConfig()
	dir := t.TempDir()
	ck := &Checkpointing{Manager: openManager(t, dir, 0)}
	runToBytes(t, design(t, 53), 2, cfg, ck)

	reopen := func() *Checkpointing {
		return &Checkpointing{Manager: openManager(t, dir, 0)}
	}
	if _, err := Resume(context.Background(), design(t, 53), 4, cfg, reopen(), nil, nil); err == nil {
		t.Error("different k accepted")
	}
	cfg2 := quickConfig()
	cfg2.CRP.Seed = 77
	if _, err := Resume(context.Background(), design(t, 53), 2, cfg2, reopen(), nil, nil); err == nil {
		t.Error("different seed accepted")
	}
	if _, err := Resume(context.Background(), suiteDesign(t, 0), 2, cfg, reopen(), nil, nil); err == nil {
		t.Error("different design accepted")
	}
}

func TestResumeEmptyDirReturnsErrNoCheckpoint(t *testing.T) {
	_, err := Resume(context.Background(), design(t, 54), 2, quickConfig(),
		&Checkpointing{Manager: openManager(t, t.TempDir(), 0)}, nil, nil)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointWriteFailureDegradesNotFatal(t *testing.T) {
	dir := t.TempDir()
	ck := &Checkpointing{Manager: openManager(t, dir, 0)}
	// Pull the directory out from under the manager: every save now fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	defB, guideB, res := runToBytes(t, design(t, 55), 2, quickConfig(), ck)
	if len(defB) == 0 || len(guideB) == 0 {
		t.Fatal("run with failing checkpoints produced no outputs")
	}
	found := 0
	for _, d := range res.Degradations {
		if d.Stage == "ckpt" && d.Kind == "checkpoint-write-failed" {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("failed saves left no degradations: %v", res.Degradations)
	}
	defA, guideA, _ := runToBytes(t, design(t, 55), 2, quickConfig(), nil)
	if !bytes.Equal(defA, defB) || !bytes.Equal(guideA, guideB) {
		t.Error("failing checkpoint writes changed the pipeline's answer")
	}
}

// --- process-level supervision: a child that really dies ---

const (
	childK       = 3
	childCircuit = 0
)

// crashChildMain is one supervised attempt: resume (or start) the
// checkpointed flow on the fixture circuit, with a planned process exit
// after the Nth checkpoint commit of *this attempt*. Exits 0 on a clean
// finish, CrashExitCode when the planned crash fires first.
func crashChildMain() {
	dir := os.Getenv("CRP_CKPT_DIR")
	crashAt, _ := strconv.Atoi(os.Getenv("CRP_CRASH_AT"))
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	d, err := ispd.Generate(ispd.Suite(0.02)[childCircuit])
	if err != nil {
		fail(err)
	}
	mgr, err := checkpoint.Open(dir, 0)
	if err != nil {
		fail(err)
	}
	inj := faultinject.New(faultinject.CrashAt(faultinject.StageCheckpoint, crashAt))
	ck := &Checkpointing{Manager: mgr, AfterSave: inj.CheckpointHook()}
	cfg := quickConfig()
	var def, guide bytes.Buffer
	res, err := Resume(context.Background(), d, childK, cfg, ck, &def, &guide)
	if errors.Is(err, ErrNoCheckpoint) {
		res, err = RunCRPCheckpointed(context.Background(), d, childK, cfg, ck, &def, &guide)
	}
	if err != nil {
		fail(err)
	}
	_ = res
	if err := atomicio.WriteFileBytes(os.Getenv("CRP_OUT_DEF"), def.Bytes()); err != nil {
		fail(err)
	}
	if err := atomicio.WriteFileBytes(os.Getenv("CRP_OUT_GUIDE"), guide.Bytes()); err != nil {
		fail(err)
	}
	os.Exit(0)
}

func TestSupervisorDrivesCrashingRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary several times")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	work := t.TempDir()
	defPath := filepath.Join(work, "out.def")
	guidePath := filepath.Join(work, "out.guide")
	t.Setenv("CRP_CRASH_CHILD", "1")
	t.Setenv("CRP_CKPT_DIR", filepath.Join(work, "ckpt"))
	t.Setenv("CRP_OUT_DEF", defPath)
	t.Setenv("CRP_OUT_GUIDE", guidePath)
	t.Setenv("CRP_CRASH_AT", "2") // die after the 2nd checkpoint commit of every attempt

	var childOut bytes.Buffer
	job, err := supervise.Command([]string{exe}, &childOut, &childOut)
	if err != nil {
		t.Fatal(err)
	}
	rep := supervise.Run(supervise.Config{
		MaxAttempts: 6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	}, job)
	if !rep.Succeeded {
		t.Fatalf("supervisor gave up: %+v\nchild output:\n%s", rep, childOut.String())
	}
	if len(rep.Attempts) < 2 {
		t.Fatalf("child never crashed (%d attempts) — the fault did not fire", len(rep.Attempts))
	}
	for _, at := range rep.Attempts[:len(rep.Attempts)-1] {
		if at.ExitCode != faultinject.CrashExitCode {
			t.Errorf("attempt %d exited %d, want the injected crash code %d",
				at.N, at.ExitCode, faultinject.CrashExitCode)
		}
	}

	// The supervised, repeatedly-killed run must still land on the exact
	// bytes of an uninterrupted in-process run.
	wantDEF, wantGuide, _ := runToBytes(t, suiteDesign(t, childCircuit), childK, quickConfig(), nil)
	gotDEF, err := os.ReadFile(defPath)
	if err != nil {
		t.Fatal(err)
	}
	gotGuide, err := os.ReadFile(guidePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotDEF, wantDEF) {
		t.Error("supervised DEF differs from the uninterrupted run")
	}
	if !bytes.Equal(gotGuide, wantGuide) {
		t.Error("supervised guides differ from the uninterrupted run")
	}
}
