// Package flow wires the full physical-design pipeline of the paper's
// Fig. 1: (1) global routing (CUGR substitute), (2) the CR&P co-operation
// loop, (3) detailed routing (TritonRoute substitute), evaluated by the
// ISPD-2018-style scorer. It also runs the two comparison flows of Table
// III — the plain baseline (no cell movement) and the median-ILP state of
// the art [18] — and records the wall-clock timings Figs. 2 and 3 report.
//
// Every Run* entry point takes a context.Context and honours Config.Budgets
// — per-stage wall-clock caps that degrade the run instead of killing it: a
// stage that runs out of time stops at a consistent boundary, the event is
// recorded in Result.Degradations, and the pipeline continues with whatever
// the stage completed. With a background context and zero budgets the
// pipeline behaves (bit-identically) as if the robustness layer did not
// exist.
package flow

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/crp-eda/crp/internal/baseline/medianilp"
	"github.com/crp-eda/crp/internal/crp"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eval"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/detail"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/view"
)

// Budgets holds the per-stage wall-clock deadlines of a flow run. Zero
// means unlimited. Budgets are caps, not reservations: a stage that
// finishes early gives the remaining stages all the remaining time of the
// enclosing Flow budget.
type Budgets struct {
	// Flow caps the whole pipeline (GR + middle + DR).
	Flow time.Duration
	// GR caps initial global routing (including RRR and final reroute).
	GR time.Duration
	// CRPIteration caps each CR&P iteration (crp.Config.IterTimeout).
	CRPIteration time.Duration
	// ILP caps every single ILP solve: CR&P's selection ILP and the
	// legalizer's window ILPs.
	ILP time.Duration
	// ShardRegion caps each speculative region pipeline of a sharded CR&P
	// iteration (crp.Config.ShardRegionBudget); an overrunning region is
	// redone serially, not killed.
	ShardRegion time.Duration
	// DR caps detailed routing / evaluation.
	DR time.Duration
}

// Config aggregates the per-stage configurations. Zero values mean each
// stage's defaults.
type Config struct {
	Grid     grid.Params
	Global   global.Config
	Detail   detail.Config
	CRP      crp.Config
	Baseline medianilp.Config
	Budgets  Budgets
	// AdmitDegradations records degradations imposed before the run ever
	// started — the job service's load-shedding admission clamps (reduced
	// k, tightened budgets). Run* entry points fold them into
	// Result.Degradations up front so a degraded-admission run is
	// self-describing. Resume does not re-apply them: checkpoint 0 is
	// committed after the fold, so a resumed run inherits them from its
	// snapshot's degradation log instead.
	AdmitDegradations []Degradation
}

// DefaultConfig returns the experiment defaults (the paper's parameters).
func DefaultConfig() Config {
	return Config{
		Grid:     grid.DefaultParams(),
		Global:   global.DefaultConfig(),
		Detail:   detail.DefaultConfig(),
		CRP:      crp.DefaultConfig(),
		Baseline: medianilp.DefaultConfig(),
	}
}

// Timings is the wall-clock breakdown of one flow run (Figs. 2 and 3).
type Timings struct {
	GlobalRoute time.Duration
	Middle      time.Duration // CR&P loop or median-ILP sweep; 0 for baseline
	DetailRoute time.Duration
	Total       time.Duration
	CRPPhases   crp.PhaseTimes // zero unless the CR&P flow ran
}

// Degradation is one flow-level fault-tolerance event: a stage deadline, a
// fallback, a quarantined worker, or a rolled-back iteration.
type Degradation struct {
	Stage  string // "gr", "crp", "sota", "dr"
	Kind   string // stable identifier, e.g. "stage-deadline", "selection-fallback"
	Detail string
}

// String implements fmt.Stringer.
func (d Degradation) String() string {
	return fmt.Sprintf("[%s] %s: %s", d.Stage, d.Kind, d.Detail)
}

// Result is one evaluated flow run.
type Result struct {
	Metrics eval.Metrics
	Timings Timings
	// Failed marks a state-of-the-art run that exceeded its budget (the
	// paper's "Failed" entry for ispd18_test10); Metrics is zero then.
	Failed bool
	// CRPStats holds per-iteration statistics for CR&P runs.
	CRPStats *crp.Result
	// BaselineStats holds the median-ILP sweep statistics for SOTA runs.
	BaselineStats *medianilp.Result
	// GlobalStats reports the initial global routing.
	GlobalStats global.Stats
	// ECO reports what the incremental entry point did; nil unless the run
	// came through RunECO.
	ECO *ECOStats
	// Degradations lists every fault-tolerance event of the run, in stage
	// order; empty on a clean run.
	Degradations []Degradation
}

// Degraded reports whether any fault-tolerance event fired during the run.
func (r *Result) Degraded() bool { return len(r.Degradations) > 0 }

// DeadlineHit reports whether any stage (or the whole flow) ran out of its
// wall-clock budget.
func (r *Result) DeadlineHit() bool {
	for _, d := range r.Degradations {
		switch d.Kind {
		case "stage-deadline", "iteration-deadline", "run-cancelled":
			return true
		}
	}
	return false
}

// degrade appends a flow-level degradation.
func (r *Result) degrade(stage, kind, detail string) {
	r.Degradations = append(r.Degradations, Degradation{Stage: stage, Kind: kind, Detail: detail})
}

// newResult seeds a fresh run's result with the admission-time degradations
// (see Config.AdmitDegradations).
func newResult(cfg Config) *Result {
	return &Result{Degradations: append([]Degradation(nil), cfg.AdmitDegradations...)}
}

// absorbCRP folds a CR&P run's degradations into the flow result.
func (r *Result) absorbCRP(stats *crp.Result) {
	for _, d := range stats.Degradations {
		r.degrade("crp", d.Kind, fmt.Sprintf("iter %d: %s", d.Iter, d.Detail))
	}
}

// session holds the live state of a run, exposed so callers (the CLI) can
// write DEF/guide outputs after the flow finishes. v is the design-state
// view over the three stores; checkpoints materialize through it.
type session struct {
	d *db.Design
	g *grid.Grid
	r *global.Router
	v *view.View
}

// flowCtx applies the whole-pipeline budget. The returned cancel must be
// called even on early exit.
func flowCtx(ctx context.Context, cfg Config) (context.Context, context.CancelFunc) {
	if cfg.Budgets.Flow > 0 {
		return context.WithTimeout(ctx, cfg.Budgets.Flow)
	}
	return context.WithCancel(ctx)
}

// stageCtx derives a stage context capped by d (unlimited when d is 0).
func stageCtx(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// crpConfig wires the flow budgets into the CR&P engine configuration,
// keeping any explicitly-set engine value.
func crpConfig(cfg Config, k int) crp.Config {
	ccfg := cfg.CRP
	if k > 0 {
		ccfg.Iterations = k
	}
	if ccfg.IterTimeout == 0 {
		ccfg.IterTimeout = cfg.Budgets.CRPIteration
	}
	if ccfg.ILPTimeLimit == 0 {
		ccfg.ILPTimeLimit = cfg.Budgets.ILP
	}
	if ccfg.Legal.TimeLimit == 0 {
		ccfg.Legal.TimeLimit = cfg.Budgets.ILP
	}
	if ccfg.ShardRegionBudget == 0 {
		ccfg.ShardRegionBudget = cfg.Budgets.ShardRegion
	}
	return ccfg
}

// globalRoute runs stage 1 under the GR budget.
func globalRoute(ctx context.Context, d *db.Design, cfg Config, res *Result) (session, global.Stats, time.Duration) {
	t0 := time.Now()
	gctx, cancel := stageCtx(ctx, cfg.Budgets.GR)
	defer cancel()
	g := grid.New(d, cfg.Grid)
	r := global.New(d, g, cfg.Global)
	st := r.RouteAllCtx(gctx)
	if st.Cancelled {
		res.degrade("gr", "stage-deadline",
			fmt.Sprintf("global routing stopped after %d nets; RRR/final passes may be short", st.RoutedNets))
	}
	return session{d, g, r, view.New(d, g, r)}, st, time.Since(t0)
}

// detailRoute runs stage 3 under the DR budget and evaluates.
func detailRoute(ctx context.Context, s session, cfg Config, res *Result) (eval.Metrics, time.Duration) {
	t0 := time.Now()
	dctx, cancel := stageCtx(ctx, cfg.Budgets.DR)
	defer cancel()
	m := eval.EvaluateCtx(dctx, s.d, s.g, s.r.Routes, cfg.Detail)
	if m.Truncated {
		res.degrade("dr", "stage-deadline", "detailed routing truncated; metrics are a lower bound")
	}
	return m, time.Since(t0)
}

// RunBaseline executes GR → DR with no cell movement (the CUGR+TritonRoute
// baseline column of Table III).
func RunBaseline(ctx context.Context, d *db.Design, cfg Config) *Result {
	ctx, cancel := flowCtx(ctx, cfg)
	defer cancel()
	res := newResult(cfg)
	s, gst, tGR := globalRoute(ctx, d, cfg, res)
	m, tDR := detailRoute(ctx, s, cfg, res)
	res.Metrics = m
	res.GlobalStats = gst
	res.Timings = Timings{
		GlobalRoute: tGR,
		DetailRoute: tDR,
		Total:       tGR + tDR,
	}
	return res
}

// RunCRP executes GR → CR&P×k → DR (the paper's flow). k overrides
// cfg.CRP.Iterations when positive.
func RunCRP(ctx context.Context, d *db.Design, k int, cfg Config) *Result {
	ctx, cancel := flowCtx(ctx, cfg)
	defer cancel()
	res := newResult(cfg)
	s, gst, tGR := globalRoute(ctx, d, cfg, res)
	t0 := time.Now()
	engine := crp.New(s.d, s.g, s.r, crpConfig(cfg, k))
	stats := engine.Run(ctx)
	tMid := time.Since(t0)
	res.absorbCRP(stats)
	m, tDR := detailRoute(ctx, s, cfg, res)
	res.Metrics = m
	res.GlobalStats = gst
	res.CRPStats = stats
	res.Timings = Timings{
		GlobalRoute: tGR,
		Middle:      tMid,
		DetailRoute: tDR,
		Total:       tGR + tMid + tDR,
		CRPPhases:   stats.Times(),
	}
	return res
}

// RunSOTA executes GR → median-ILP sweep [18] → DR. A budget overrun
// reports Failed with no metrics, mirroring the paper's test10 row.
func RunSOTA(ctx context.Context, d *db.Design, cfg Config) *Result {
	ctx, cancel := flowCtx(ctx, cfg)
	defer cancel()
	res := newResult(cfg)
	s, gst, tGR := globalRoute(ctx, d, cfg, res)
	t0 := time.Now()
	bst := medianilp.Run(ctx, s.d, s.g, s.r, cfg.Baseline)
	tMid := time.Since(t0)
	res.GlobalStats = gst
	res.BaselineStats = bst
	res.Timings = Timings{
		GlobalRoute: tGR,
		Middle:      tMid,
		Total:       tGR + tMid,
	}
	if bst.Failed {
		res.Failed = true
		res.degrade("sota", "budget-failed", "median-ILP sweep exceeded its budget; design restored")
		return res
	}
	m, tDR := detailRoute(ctx, s, cfg, res)
	res.Metrics = m
	res.Timings.DetailRoute = tDR
	res.Timings.Total += tDR
	return res
}

// RunCRPWithOutputs runs the CR&P flow and writes the resulting DEF and
// route-guide files (the framework's outputs in Fig. 1). The outputs are
// written even when the run degraded — a deadline yields the best-so-far
// placement and guides, never nothing.
func RunCRPWithOutputs(ctx context.Context, d *db.Design, k int, cfg Config, defOut, guideOut io.Writer) (*Result, error) {
	ctx, cancel := flowCtx(ctx, cfg)
	defer cancel()
	res := newResult(cfg)
	s, gst, tGR := globalRoute(ctx, d, cfg, res)
	t0 := time.Now()
	engine := crp.New(s.d, s.g, s.r, crpConfig(cfg, k))
	stats := engine.Run(ctx)
	tMid := time.Since(t0)
	res.absorbCRP(stats)
	m, tDR := detailRoute(ctx, s, cfg, res)
	if err := writeRunOutputs(s, defOut, guideOut); err != nil {
		return nil, err
	}
	res.Metrics = m
	res.GlobalStats = gst
	res.CRPStats = stats
	res.Timings = Timings{
		GlobalRoute: tGR,
		Middle:      tMid,
		DetailRoute: tDR,
		Total:       tGR + tMid + tDR,
		CRPPhases:   stats.Times(),
	}
	return res, nil
}
