// Package flow wires the full physical-design pipeline of the paper's
// Fig. 1: (1) global routing (CUGR substitute), (2) the CR&P co-operation
// loop, (3) detailed routing (TritonRoute substitute), evaluated by the
// ISPD-2018-style scorer. It also runs the two comparison flows of Table
// III — the plain baseline (no cell movement) and the median-ILP state of
// the art [18] — and records the wall-clock timings Figs. 2 and 3 report.
package flow

import (
	"fmt"
	"io"
	"time"

	"github.com/crp-eda/crp/internal/baseline/medianilp"
	"github.com/crp-eda/crp/internal/crp"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eval"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/lefdef"
	"github.com/crp-eda/crp/internal/route/detail"
	"github.com/crp-eda/crp/internal/route/global"
)

// Config aggregates the per-stage configurations. Zero values mean each
// stage's defaults.
type Config struct {
	Grid     grid.Params
	Global   global.Config
	Detail   detail.Config
	CRP      crp.Config
	Baseline medianilp.Config
}

// DefaultConfig returns the experiment defaults (the paper's parameters).
func DefaultConfig() Config {
	return Config{
		Grid:     grid.DefaultParams(),
		Global:   global.DefaultConfig(),
		Detail:   detail.DefaultConfig(),
		CRP:      crp.DefaultConfig(),
		Baseline: medianilp.DefaultConfig(),
	}
}

// Timings is the wall-clock breakdown of one flow run (Figs. 2 and 3).
type Timings struct {
	GlobalRoute time.Duration
	Middle      time.Duration // CR&P loop or median-ILP sweep; 0 for baseline
	DetailRoute time.Duration
	Total       time.Duration
	CRPPhases   crp.PhaseTimes // zero unless the CR&P flow ran
}

// Result is one evaluated flow run.
type Result struct {
	Metrics eval.Metrics
	Timings Timings
	// Failed marks a state-of-the-art run that exceeded its budget (the
	// paper's "Failed" entry for ispd18_test10); Metrics is zero then.
	Failed bool
	// CRPStats holds per-iteration statistics for CR&P runs.
	CRPStats *crp.Result
	// BaselineStats holds the median-ILP sweep statistics for SOTA runs.
	BaselineStats *medianilp.Result
	// GlobalStats reports the initial global routing.
	GlobalStats global.Stats
}

// session holds the live state of a run, exposed so callers (the CLI) can
// write DEF/guide outputs after the flow finishes.
type session struct {
	d *db.Design
	g *grid.Grid
	r *global.Router
}

// globalRoute runs stage 1.
func globalRoute(d *db.Design, cfg Config) (session, global.Stats, time.Duration) {
	t0 := time.Now()
	g := grid.New(d, cfg.Grid)
	r := global.New(d, g, cfg.Global)
	st := r.RouteAll()
	return session{d, g, r}, st, time.Since(t0)
}

// detailRoute runs stage 3 and evaluates.
func detailRoute(s session, cfg Config) (eval.Metrics, time.Duration) {
	t0 := time.Now()
	m := eval.Evaluate(s.d, s.g, s.r.Routes, cfg.Detail)
	return m, time.Since(t0)
}

// RunBaseline executes GR → DR with no cell movement (the CUGR+TritonRoute
// baseline column of Table III).
func RunBaseline(d *db.Design, cfg Config) *Result {
	s, gst, tGR := globalRoute(d, cfg)
	m, tDR := detailRoute(s, cfg)
	return &Result{
		Metrics:     m,
		GlobalStats: gst,
		Timings: Timings{
			GlobalRoute: tGR,
			DetailRoute: tDR,
			Total:       tGR + tDR,
		},
	}
}

// RunCRP executes GR → CR&P×k → DR (the paper's flow). k overrides
// cfg.CRP.Iterations when positive.
func RunCRP(d *db.Design, k int, cfg Config) *Result {
	ccfg := cfg.CRP
	if k > 0 {
		ccfg.Iterations = k
	}
	s, gst, tGR := globalRoute(d, cfg)
	t0 := time.Now()
	engine := crp.New(s.d, s.g, s.r, ccfg)
	stats := engine.Run()
	tMid := time.Since(t0)
	m, tDR := detailRoute(s, cfg)
	return &Result{
		Metrics:     m,
		GlobalStats: gst,
		CRPStats:    stats,
		Timings: Timings{
			GlobalRoute: tGR,
			Middle:      tMid,
			DetailRoute: tDR,
			Total:       tGR + tMid + tDR,
			CRPPhases:   stats.Times(),
		},
	}
}

// RunSOTA executes GR → median-ILP sweep [18] → DR. A budget overrun
// reports Failed with no metrics, mirroring the paper's test10 row.
func RunSOTA(d *db.Design, cfg Config) *Result {
	s, gst, tGR := globalRoute(d, cfg)
	t0 := time.Now()
	bst := medianilp.Run(s.d, s.g, s.r, cfg.Baseline)
	tMid := time.Since(t0)
	out := &Result{
		GlobalStats:   gst,
		BaselineStats: bst,
		Timings: Timings{
			GlobalRoute: tGR,
			Middle:      tMid,
			Total:       tGR + tMid,
		},
	}
	if bst.Failed {
		out.Failed = true
		return out
	}
	m, tDR := detailRoute(s, cfg)
	out.Metrics = m
	out.Timings.DetailRoute = tDR
	out.Timings.Total += tDR
	return out
}

// RunCRPWithOutputs runs the CR&P flow and writes the resulting DEF and
// route-guide files (the framework's outputs in Fig. 1).
func RunCRPWithOutputs(d *db.Design, k int, cfg Config, defOut, guideOut io.Writer) (*Result, error) {
	ccfg := cfg.CRP
	if k > 0 {
		ccfg.Iterations = k
	}
	s, gst, tGR := globalRoute(d, cfg)
	t0 := time.Now()
	engine := crp.New(s.d, s.g, s.r, ccfg)
	stats := engine.Run()
	tMid := time.Since(t0)
	m, tDR := detailRoute(s, cfg)
	if defOut != nil {
		if err := lefdef.WriteDEF(defOut, s.d); err != nil {
			return nil, fmt.Errorf("flow: writing DEF: %w", err)
		}
	}
	if guideOut != nil {
		if err := lefdef.WriteGuides(guideOut, s.d, s.g, s.r.Routes); err != nil {
			return nil, fmt.Errorf("flow: writing guides: %w", err)
		}
	}
	return &Result{
		Metrics:     m,
		GlobalStats: gst,
		CRPStats:    stats,
		Timings: Timings{
			GlobalRoute: tGR,
			Middle:      tMid,
			DetailRoute: tDR,
			Total:       tGR + tMid + tDR,
			CRPPhases:   stats.Times(),
		},
	}, nil
}
