package global

import (
	"math/rand"
	"testing"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
)

// TestEstimateCacheMatchesFresh is the bit-identity property test of the
// estimation fast path: a cache-enabled router and a cache-disabled router
// sharing the same grid must return exactly equal (==, not approximately
// equal) estimates, across arbitrary interleavings of Commit/RipUp that
// advance the demand epoch between queries. Every query runs twice on the
// cached router so both the miss path (populate) and the hit path (lookup)
// are compared against the fresh computation.
func TestEstimateCacheMatchesFresh(t *testing.T) {
	d := routeDesign(t, 220, 160, 11)
	g := grid.New(d, grid.DefaultParams())
	cached := New(d, g, DefaultConfig())
	cfgOff := DefaultConfig()
	cfgOff.DisableEstimateCache = true
	fresh := New(d, g, cfgOff) // estimation-only: never mutates the grid

	cached.RouteAll()
	rng := rand.New(rand.NewSource(99))

	checkNets := func(round int) {
		t.Helper()
		for _, n := range d.Nets {
			pts := d.NetPinPositions(n)
			want := fresh.EstimateTerminalCost(pts)
			for pass := 0; pass < 2; pass++ {
				got := cached.EstimateTerminalCost(pts)
				if got != want {
					t.Fatalf("round %d net %d pass %d: cached estimate %v != fresh %v",
						round, n.ID, pass, got, want)
				}
			}
		}
	}
	checkSegments := func(round int) {
		t.Helper()
		cs, fs := cached.getScratch(), fresh.getScratch()
		defer cached.putScratch(cs)
		defer fresh.putScratch(fs)
		for k := 0; k < 200; k++ {
			a := geom.Pt(rng.Intn(g.NX), rng.Intn(g.NY))
			b := geom.Pt(rng.Intn(g.NX), rng.Intn(g.NY))
			want := fresh.segmentEstimate(a, b, fs)
			for pass := 0; pass < 2; pass++ {
				got := cached.segmentEstimate(a, b, cs)
				if got != want {
					t.Fatalf("round %d segment %v-%v pass %d: cached %v != fresh %v",
						round, a, b, pass, got, want)
				}
			}
		}
	}

	checkNets(0)
	checkSegments(0)
	for round := 1; round <= 6; round++ {
		// Mutate demand: rip up a random batch, re-route half of it, leave
		// the rest unrouted so some nets change terminal-to-route identity.
		var victims []int32
		for k := 0; k < 12; k++ {
			victims = append(victims, int32(rng.Intn(len(d.Nets))))
		}
		for _, id := range victims {
			cached.RipUp(id)
		}
		for i, id := range victims {
			if i%2 == 0 && cached.Routes[id] == nil {
				rt, _ := cached.routeNet(id)
				cached.Commit(rt)
			}
		}
		checkNets(round)
		checkSegments(round)
	}
}

// TestSegKeyOrderSensitive pins down that (a,b) and (b,a) get distinct keys:
// Z-bend sampling truncates toward the first endpoint, so swapped endpoints
// may legitimately price differently and must not share a cache entry.
func TestSegKeyOrderSensitive(t *testing.T) {
	a, b := geom.Pt(3, 7), geom.Pt(10, 2)
	if segKey(a, b) == segKey(b, a) {
		t.Fatalf("segKey collapses (a,b) and (b,a): %#x", segKey(a, b))
	}
	if segKey(a, b) == segKey(a, geom.Pt(10, 3)) {
		t.Fatal("segKey collides on distinct endpoints")
	}
}
