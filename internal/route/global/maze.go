package global

import (
	"math"
	"sort"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// The 3D maze router: Dijkstra over the full GCell lattice with the Eq. 10
// edge costs. Pattern routing handles the overwhelming majority of
// segments; the maze is the escape hatch for congested regions, where the
// negotiated penalty makes detours around hot spots cheaper than pushing
// through them.

// nodeID packs (x, y, l) into a single index.
func (r *Router) nodeID(x, y, l int) int32 {
	return int32((l*r.G.NY+y)*r.G.NX + x)
}

func (r *Router) nodeCoords(id int32) (x, y, l int) {
	n := int(id)
	x = n % r.G.NX
	n /= r.G.NX
	y = n % r.G.NY
	l = n / r.G.NY
	return
}

// heapItem is a priority-queue entry.
type heapItem struct {
	cost float64
	node int32
}

type pq []heapItem

func (h *pq) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].cost <= (*h)[i].cost {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *pq) pop() heapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, rr, s := 2*i+1, 2*i+2, i
		if l < last && (*h)[l].cost < (*h)[s].cost {
			s = l
		}
		if rr < last && (*h)[rr].cost < (*h)[s].cost {
			s = rr
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// mazeRoute finds the cheapest 3D path from (a, layer 0) to (b, layer 0)
// with Dijkstra. Returns nil when unreachable.
func (r *Router) mazeRoute(a, b geom.Point) *path {
	src := r.nodeID(a.X, a.Y, 0)
	dst := r.nodeID(b.X, b.Y, 0)
	r.gen++
	gen := r.gen

	visit := func(n int32, c float64, from int32) bool {
		if r.seen[n] == gen && r.dist[n] <= c {
			return false
		}
		r.seen[n] = gen
		r.dist[n] = c
		r.prev[n] = from
		return true
	}

	h := pq{}
	visit(src, 0, -1)
	h.push(heapItem{0, src})

	pops := 0
	for len(h) > 0 {
		// A cancelled context aborts the search as "unreachable": the
		// caller's pattern/forced-L fallback still produces a complete
		// route, so demand accounting stays consistent. The check is
		// amortised over 4096 pops to keep it off the hot path.
		if pops++; pops&4095 == 0 && r.cancelled() {
			return nil
		}
		it := h.pop()
		if r.settled[it.node] == gen {
			continue
		}
		r.settled[it.node] = gen
		if it.node == dst {
			break
		}
		x, y, l := r.nodeCoords(it.node)

		// Via moves.
		if l+1 < r.G.NL {
			c := r.G.ViaEdgeCost(x, y, l)
			if !math.IsInf(c, 1) {
				n := r.nodeID(x, y, l+1)
				if visit(n, it.cost+c, it.node) {
					h.push(heapItem{it.cost + c, n})
				}
			}
		}
		if l > 0 {
			c := r.G.ViaEdgeCost(x, y, l-1)
			if !math.IsInf(c, 1) {
				n := r.nodeID(x, y, l-1)
				if visit(n, it.cost+c, it.node) {
					h.push(heapItem{it.cost + c, n})
				}
			}
		}
		// Planar moves along the layer's preferred direction.
		if l > 0 {
			if r.G.Tech.Layer(l).Dir == tech.Horizontal {
				if x+1 < r.G.NX {
					r.tryPlanar(&h, it, x, y, l, x+1, y, x, y, visit)
				}
				if x > 0 {
					r.tryPlanar(&h, it, x, y, l, x-1, y, x-1, y, visit)
				}
			} else {
				if y+1 < r.G.NY {
					r.tryPlanar(&h, it, x, y, l, x, y+1, x, y, visit)
				}
				if y > 0 {
					r.tryPlanar(&h, it, x, y, l, x, y-1, x, y-1, visit)
				}
			}
		}
	}
	if r.seen[dst] != gen {
		return nil
	}

	// Walk predecessors, materialising edges.
	p := &path{}
	cur := dst
	for {
		from := r.prev[cur]
		if from < 0 {
			break
		}
		x1, y1, l1 := r.nodeCoords(cur)
		x0, y0, l0 := r.nodeCoords(from)
		switch {
		case l0 != l1:
			p.vias = append(p.vias, geom.Pt3(x0, y0, min(l0, l1)))
		case x0 != x1:
			p.wires = append(p.wires, geom.Pt3(min(x0, x1), y0, l0))
		default:
			p.wires = append(p.wires, geom.Pt3(x0, min(y0, y1), l0))
		}
		cur = from
	}
	return p
}

// tryPlanar relaxes the planar move from (x,y,l) to (nx,ny,l); the edge is
// identified by its leaving GCell (ex,ey).
func (r *Router) tryPlanar(h *pq, it heapItem, x, y, l, nx, ny, ex, ey int, visit func(int32, float64, int32) bool) {
	c := r.G.WireEdgeCost(ex, ey, l)
	if math.IsInf(c, 1) {
		return
	}
	n := r.nodeID(nx, ny, l)
	if visit(n, it.cost+c, it.node) {
		h.push(heapItem{it.cost + c, n})
	}
}

// ripUpAndReroute clears residual overflow: every pass collects the nets
// crossing overflowed edges, rips them all up, and re-routes them worst-
// cost-first at post-rip-up prices (negotiated congestion). Returns the
// number of passes executed.
func (r *Router) ripUpAndReroute() int {
	passes := 0
	for iter := 0; iter < r.Cfg.RRRIterations; iter++ {
		// Cancellation is honoured only at pass boundaries: a pass rips up
		// every victim before re-routing any, so stopping mid-pass would
		// strand nets unrouted.
		if r.cancelled() {
			break
		}
		over := r.overflowedEdges()
		if len(over) == 0 {
			break
		}
		victims := r.netsUsing(over)
		if len(victims) == 0 {
			break
		}
		passes++
		sort.Slice(victims, func(a, b int) bool {
			ca, cb := r.NetCost(victims[a]), r.NetCost(victims[b])
			if ca != cb {
				return ca > cb
			}
			return victims[a] < victims[b]
		})
		for _, id := range victims {
			r.RipUp(id)
		}
		for _, id := range victims {
			rt, _ := r.routeNet(id)
			r.Commit(rt)
		}
	}
	return passes
}

// overflowedEdges returns the set of planar edges with demand > capacity.
func (r *Router) overflowedEdges() map[geom.Point3]bool {
	out := map[geom.Point3]bool{}
	for l := 1; l < r.G.NL; l++ {
		for y := 0; y < r.G.NY; y++ {
			for x := 0; x < r.G.NX; x++ {
				if !r.G.HasEdge(x, y, l) {
					continue
				}
				if r.G.Demand(x, y, l) > r.G.Capacity(x, y, l) {
					out[geom.Pt3(x, y, l)] = true
				}
			}
		}
	}
	return out
}

// netsUsing returns the IDs of routed nets whose wires cross any edge in
// the set.
func (r *Router) netsUsing(edges map[geom.Point3]bool) []int32 {
	var out []int32
	for id, rt := range r.Routes {
		if rt == nil {
			continue
		}
		for _, w := range rt.Wires {
			if edges[w] {
				out = append(out, int32(id))
				break
			}
		}
	}
	return out
}
