package global

import (
	"sync"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/steiner"
)

// The estimation fast path. CR&P's Algorithm 3 prices every candidate of
// every critical cell with EstimateTerminalCost, and Fig. 3 shows that phase
// (ECC) dominating runtime. Two structural facts make it cacheable:
//
//  1. The grid's congestion prices are frozen for the whole estimation
//     phase — nothing calls AddWire/AddVia between candidates — so any
//     two-pin pattern cost and any whole-net estimate computed during the
//     phase stays valid until the grid's demand epoch advances.
//  2. Candidates of the same critical cell share almost all of their
//     terminal sets: conflict nets whose cells did not move produce the
//     same GCell lists, and distinct legal positions frequently fall into
//     the same GCell.
//
// The caches below exploit both. They are sharded (workers hit them
// concurrently) and validated against grid.Grid.Epoch(), so rip-up/reroute
// in the Update Database phase self-invalidates everything with no
// explicit flush protocol. Cached values are the *identical* floats a
// fresh computation would produce — hits change speed, never results.

// estShardCount shards the caches to keep worker contention negligible.
// Must be a power of two.
const estShardCount = 64

// mix64 is a SplitMix64-style finaliser used to spread keys over shards.
func mix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0x9E3779B97F4A7C15
	k ^= k >> 29
	return k
}

// segKey packs an ordered GCell pair into a cache key. GCell coordinates
// are bounded by the lattice dimensions (far below 2^16). The pair is kept
// ordered: patternRoute's Z-bend samples are computed with truncating
// integer division from the first endpoint, so (a,b) and (b,a) can price
// differently and must not share an entry.
func segKey(a, b geom.Point) uint64 {
	return uint64(uint16(a.X))<<48 | uint64(uint16(a.Y))<<32 |
		uint64(uint16(b.X))<<16 | uint64(uint16(b.Y))
}

// segShard is one shard of the two-pin segment cost cache.
type segShard struct {
	mu    sync.Mutex
	epoch uint64
	m     map[uint64]float64
}

// segCache memoises segmentEstimate results keyed by packed GCell pairs.
type segCache struct {
	shards [estShardCount]segShard
}

func (c *segCache) get(key, epoch uint64) (float64, bool) {
	s := &c.shards[mix64(key)&(estShardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch != epoch {
		clear(s.m)
		s.epoch = epoch
		return 0, false
	}
	v, ok := s.m[key]
	return v, ok
}

func (c *segCache) put(key, epoch uint64, v float64) {
	s := &c.shards[mix64(key)&(estShardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch != epoch {
		clear(s.m)
		s.epoch = epoch
	}
	if s.m == nil {
		s.m = make(map[uint64]float64, 256)
	}
	s.m[key] = v
}

// treeShard is one shard of the Steiner topology cache.
type treeShard struct {
	mu    sync.Mutex
	epoch uint64
	m     map[string]steiner.Tree
}

// treeCache memoises steiner.Build results keyed by the packed, ordered,
// deduplicated GCell terminal list. Topologies depend only on the terminal
// list (never on congestion), but entries are still epoch-scoped so the
// cache cannot grow without bound across CR&P iterations: each Update
// Database phase advances the epoch and resets it.
type treeCache struct {
	shards [estShardCount]treeShard
}

// treeKey appends gcells to buf in a fixed 4-bytes-per-terminal encoding.
// The encoding preserves order — steiner.Build is order-sensitive (Hanan
// candidates and MST ties follow input order), and cache hits must return
// exactly the tree a fresh Build would.
func treeKey(buf []byte, gcells []geom.Point) []byte {
	for _, p := range gcells {
		buf = append(buf, byte(p.X), byte(p.X>>8), byte(p.Y), byte(p.Y>>8))
	}
	return buf
}

// hashBytes is FNV-1a, used only for shard selection.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func (c *treeCache) get(key []byte, epoch uint64) (steiner.Tree, bool) {
	s := &c.shards[mix64(hashBytes(key))&(estShardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch != epoch {
		clear(s.m)
		s.epoch = epoch
		return steiner.Tree{}, false
	}
	v, ok := s.m[string(key)] // no alloc: map lookup special-cases string(b)
	return v, ok
}

func (c *treeCache) put(key []byte, epoch uint64, t steiner.Tree) {
	s := &c.shards[mix64(hashBytes(key))&(estShardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch != epoch {
		clear(s.m)
		s.epoch = epoch
	}
	if s.m == nil {
		s.m = make(map[string]steiner.Tree, 64)
	}
	s.m[string(key)] = t
}

// estScratch is the per-call working set of the estimation path. Instances
// are pooled: EstimateTerminalCost runs concurrently on CR&P's worker pool,
// and the pool hands each in-flight call its own buffers without per-call
// allocation.
type estScratch struct {
	gcells []geom.Point  // deduplicated terminal GCells
	key    []byte        // packed tree-cache key
	cands  []junctionSeq // candidate junction sequences of one segment
	runs   []run         // straight runs of one candidate
	dpa    []float64     // rolling DP rows of the cost-only layer DP
	dpb    []float64
}

func (r *Router) getScratch() *estScratch {
	s := r.scratch.Get().(*estScratch)
	if cap(s.dpa) < r.G.NL {
		s.dpa = make([]float64, r.G.NL)
		s.dpb = make([]float64, r.G.NL)
	}
	return s
}

func (r *Router) putScratch(s *estScratch) { r.scratch.Put(s) }

// cachedSteiner returns the Steiner topology for the ordered, deduplicated
// terminal list, building and memoising it on a miss. The returned tree is
// shared and must be treated as read-only.
func (r *Router) cachedSteiner(gcells []geom.Point, s *estScratch) steiner.Tree {
	if r.Cfg.DisableEstimateCache {
		return steiner.Build(gcells)
	}
	epoch := r.G.Epoch()
	s.key = treeKey(s.key[:0], gcells)
	if t, ok := r.trees.get(s.key, epoch); ok {
		return t
	}
	// Built outside the shard lock: a racing duplicate build produces an
	// identical tree (steiner.Build is deterministic), so whichever store
	// wins is indistinguishable.
	t := steiner.Build(gcells)
	r.trees.put(s.key, epoch, t)
	return t
}

// segmentEstimate prices the two-pin segment (a,b) the way Algorithm 3
// does — cheapest L/Z pattern with DP layer assignment, +Inf when no
// pattern is realisable — consulting the epoch-validated cache first.
func (r *Router) segmentEstimate(a, b geom.Point, s *estScratch) float64 {
	if r.Cfg.DisableEstimateCache {
		return r.patternCost(a, b, s)
	}
	epoch := r.G.Epoch()
	key := segKey(a, b)
	if v, ok := r.segs.get(key, epoch); ok {
		return v
	}
	v := r.patternCost(a, b, s)
	r.segs.put(key, epoch, v)
	return v
}
