package global

import (
	"math"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// patternRoute connects GCells a and b with the cheapest L- or Z-shaped
// path, assigning each straight run to a routing layer by dynamic
// programming over junction layers. Both endpoints are connected down to
// the pin layer (metal1) by via stacks, which guarantees that all segments
// of a net meeting at a GCell are electrically connected through the shared
// stack. Returns the materialised path, its cost, and the worst projected
// congestion ratio along it; path is nil when no finite-cost candidate
// exists.
func (r *Router) patternRoute(a, b geom.Point) (*path, float64, float64) {
	cands := r.candidateJunctions(a, b)
	var best *path
	bestCost := math.Inf(1)
	for _, js := range cands {
		p, cost := r.assignLayers(js)
		if p != nil && cost < bestCost {
			best = p
			bestCost = cost
		}
	}
	if best == nil {
		return nil, math.Inf(1), math.Inf(1)
	}
	return best, bestCost, r.worstCongestion(best)
}

// candidateJunctions enumerates planar candidate paths as junction-point
// sequences (consecutive points axis-aligned): the straight/L shapes plus
// sampled Z shapes.
func (r *Router) candidateJunctions(a, b geom.Point) [][]geom.Point {
	var out [][]geom.Point
	if a == b {
		return [][]geom.Point{{a}}
	}
	if a.X == b.X || a.Y == b.Y {
		return [][]geom.Point{{a, b}}
	}
	// Two L shapes.
	out = append(out,
		[]geom.Point{a, geom.Pt(b.X, a.Y), b},
		[]geom.Point{a, geom.Pt(a.X, b.Y), b},
	)
	// Z shapes with sampled interior bends.
	for s := 1; s <= r.Cfg.ZSamples; s++ {
		fx := a.X + (b.X-a.X)*s/(r.Cfg.ZSamples+1)
		if fx != a.X && fx != b.X {
			out = append(out, []geom.Point{a, geom.Pt(fx, a.Y), geom.Pt(fx, b.Y), b})
		}
		fy := a.Y + (b.Y-a.Y)*s/(r.Cfg.ZSamples+1)
		if fy != a.Y && fy != b.Y {
			out = append(out, []geom.Point{a, geom.Pt(a.X, fy), geom.Pt(b.X, fy), b})
		}
	}
	return out
}

// run is one straight stretch of a planar path.
type run struct {
	dir  tech.Dir
	from geom.Point // start GCell
	to   geom.Point // end GCell (axis-aligned with from)
}

func runsOf(junctions []geom.Point) []run {
	var rs []run
	for i := 1; i < len(junctions); i++ {
		p, q := junctions[i-1], junctions[i]
		if p == q {
			continue
		}
		d := tech.Horizontal
		if p.X == q.X {
			d = tech.Vertical
		}
		rs = append(rs, run{dir: d, from: p, to: q})
	}
	return rs
}

// runEdges lists the planar edges (leaving-GCell convention) along a run on
// layer l.
func runEdges(rn run, l int) []geom.Point3 {
	var out []geom.Point3
	if rn.dir == tech.Horizontal {
		x0, x1 := rn.from.X, rn.to.X
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		for x := x0; x < x1; x++ {
			out = append(out, geom.Pt3(x, rn.from.Y, l))
		}
	} else {
		y0, y1 := rn.from.Y, rn.to.Y
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		for y := y0; y < y1; y++ {
			out = append(out, geom.Pt3(rn.from.X, y, l))
		}
	}
	return out
}

// runCost prices a run on layer l; +Inf when the layer's direction does not
// match or an edge is missing.
func (r *Router) runCost(rn run, l int) float64 {
	if l <= 0 || l >= r.G.NL || r.G.Tech.Layer(l).Dir != rn.dir {
		return math.Inf(1)
	}
	cost := 0.0
	for _, e := range runEdges(rn, l) {
		c := r.G.WireEdgeCost(e.X, e.Y, e.L)
		if math.IsInf(c, 1) {
			return c
		}
		cost += c
	}
	return cost
}

// stackCost prices the via stack between layers l1 and l2 at GCell p.
func (r *Router) stackCost(p geom.Point, l1, l2 int) float64 {
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	cost := 0.0
	for l := l1; l < l2; l++ {
		c := r.G.ViaEdgeCost(p.X, p.Y, l)
		if math.IsInf(c, 1) {
			return c
		}
		cost += c
	}
	return cost
}

func stackVias(p geom.Point, l1, l2 int) []geom.Point3 {
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	var out []geom.Point3
	for l := l1; l < l2; l++ {
		out = append(out, geom.Pt3(p.X, p.Y, l))
	}
	return out
}

// assignLayers runs the junction-layer DP over a planar candidate path and
// materialises the best 3D realisation. Endpoints connect to layer 0.
func (r *Router) assignLayers(junctions []geom.Point) (*path, float64) {
	rs := runsOf(junctions)
	NL := r.G.NL
	if len(rs) == 0 {
		// Single-GCell connection: no wires, no vias (pin stack is
		// shared with whatever else reaches this GCell).
		return &path{}, 0
	}

	// dp[i][l]: best cost of realising runs[0..i] with run i on layer l.
	dp := make([][]float64, len(rs))
	arg := make([][]int, len(rs))
	for i := range dp {
		dp[i] = make([]float64, NL)
		arg[i] = make([]int, NL)
		for l := range dp[i] {
			dp[i][l] = math.Inf(1)
			arg[i][l] = -1
		}
	}
	start := junctions[0]
	for l := 1; l < NL; l++ {
		rc := r.runCost(rs[0], l)
		if math.IsInf(rc, 1) {
			continue
		}
		dp[0][l] = r.stackCost(start, 0, l) + rc
	}
	for i := 1; i < len(rs); i++ {
		junction := rs[i].from
		for l := 1; l < NL; l++ {
			rc := r.runCost(rs[i], l)
			if math.IsInf(rc, 1) {
				continue
			}
			for pl := 1; pl < NL; pl++ {
				if math.IsInf(dp[i-1][pl], 1) {
					continue
				}
				c := dp[i-1][pl] + r.stackCost(junction, pl, l) + rc
				if c < dp[i][l] {
					dp[i][l] = c
					arg[i][l] = pl
				}
			}
		}
	}
	end := rs[len(rs)-1].to
	bestL, bestCost := -1, math.Inf(1)
	for l := 1; l < NL; l++ {
		if math.IsInf(dp[len(rs)-1][l], 1) {
			continue
		}
		c := dp[len(rs)-1][l] + r.stackCost(end, l, 0)
		if c < bestCost {
			bestCost = c
			bestL = l
		}
	}
	if bestL < 0 {
		return nil, math.Inf(1)
	}

	// Reconstruct layer choices.
	layers := make([]int, len(rs))
	layers[len(rs)-1] = bestL
	for i := len(rs) - 1; i > 0; i-- {
		layers[i-1] = arg[i][layers[i]]
	}

	p := &path{}
	p.vias = append(p.vias, stackVias(junctions[0], 0, layers[0])...)
	for i, rn := range rs {
		p.wires = append(p.wires, runEdges(rn, layers[i])...)
		if i > 0 && layers[i] != layers[i-1] {
			p.vias = append(p.vias, stackVias(rn.from, layers[i-1], layers[i])...)
		}
	}
	p.vias = append(p.vias, stackVias(end, layers[len(rs)-1], 0)...)
	return p, bestCost
}

// forcedL materialises the horizontal-first L between a and b regardless of
// congestion; used only as a last-resort fallback.
func (r *Router) forcedL(a, b geom.Point) *path {
	if a == b {
		return &path{}
	}
	p, _ := r.assignLayers([]geom.Point{a, geom.Pt(b.X, a.Y), b})
	return p
}
