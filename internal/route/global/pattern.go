package global

import (
	"math"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// junctionSeq is one planar candidate path as a junction-point sequence
// (consecutive points axis-aligned). L and Z shapes never need more than
// four junctions, so the points live inline and candidate enumeration is
// allocation-free.
type junctionSeq struct {
	pts [4]geom.Point
	n   int
}

func (j *junctionSeq) points() []geom.Point { return j.pts[:j.n] }

// patternRoute connects GCells a and b with the cheapest L- or Z-shaped
// path, assigning each straight run to a routing layer by dynamic
// programming over junction layers. Both endpoints are connected down to
// the pin layer (metal1) by via stacks, which guarantees that all segments
// of a net meeting at a GCell are electrically connected through the shared
// stack. Returns the materialised path, its cost, and the worst projected
// congestion ratio along it; path is nil when no finite-cost candidate
// exists.
//
// Candidates are first priced with the cost-only DP and only the winner is
// materialised, so the losing candidates never allocate. Serial use only
// (it borrows the Router's pooled scratch once); the estimation path uses
// patternCost directly.
func (r *Router) patternRoute(a, b geom.Point) (*path, float64, float64) {
	s := r.getScratch()
	defer r.putScratch(s)
	s.cands = r.candidateJunctions(s.cands[:0], a, b)
	bestIdx, bestCost := -1, math.Inf(1)
	for i := range s.cands {
		if c := r.layerCost(s.cands[i].points(), s); c < bestCost {
			bestIdx, bestCost = i, c
		}
	}
	if bestIdx < 0 {
		return nil, math.Inf(1), math.Inf(1)
	}
	best, _ := r.assignLayers(s.cands[bestIdx].points())
	return best, bestCost, r.worstCongestion(best)
}

// patternCost is the cost-only patternRoute: the minimum layer-assigned
// cost over the same candidate set, +Inf when none is realisable. It runs
// the identical float computations in the identical order, so its result is
// bit-equal to patternRoute's cost — without materialising any path.
func (r *Router) patternCost(a, b geom.Point, s *estScratch) float64 {
	s.cands = r.candidateJunctions(s.cands[:0], a, b)
	best := math.Inf(1)
	for i := range s.cands {
		if c := r.layerCost(s.cands[i].points(), s); c < best {
			best = c
		}
	}
	return best
}

// candidateJunctions appends the planar candidate paths between a and b to
// dst: the straight/L shapes plus sampled Z shapes.
func (r *Router) candidateJunctions(dst []junctionSeq, a, b geom.Point) []junctionSeq {
	if a == b {
		return append(dst, junctionSeq{pts: [4]geom.Point{a}, n: 1})
	}
	if a.X == b.X || a.Y == b.Y {
		return append(dst, junctionSeq{pts: [4]geom.Point{a, b}, n: 2})
	}
	// Two L shapes.
	dst = append(dst,
		junctionSeq{pts: [4]geom.Point{a, geom.Pt(b.X, a.Y), b}, n: 3},
		junctionSeq{pts: [4]geom.Point{a, geom.Pt(a.X, b.Y), b}, n: 3},
	)
	// Z shapes with sampled interior bends.
	for s := 1; s <= r.Cfg.ZSamples; s++ {
		fx := a.X + (b.X-a.X)*s/(r.Cfg.ZSamples+1)
		if fx != a.X && fx != b.X {
			dst = append(dst, junctionSeq{pts: [4]geom.Point{a, geom.Pt(fx, a.Y), geom.Pt(fx, b.Y), b}, n: 4})
		}
		fy := a.Y + (b.Y-a.Y)*s/(r.Cfg.ZSamples+1)
		if fy != a.Y && fy != b.Y {
			dst = append(dst, junctionSeq{pts: [4]geom.Point{a, geom.Pt(a.X, fy), geom.Pt(b.X, fy), b}, n: 4})
		}
	}
	return dst
}

// run is one straight stretch of a planar path.
type run struct {
	dir  tech.Dir
	from geom.Point // start GCell
	to   geom.Point // end GCell (axis-aligned with from)
}

// runsOf appends junctions' straight runs to dst.
func runsOf(dst []run, junctions []geom.Point) []run {
	for i := 1; i < len(junctions); i++ {
		p, q := junctions[i-1], junctions[i]
		if p == q {
			continue
		}
		d := tech.Horizontal
		if p.X == q.X {
			d = tech.Vertical
		}
		dst = append(dst, run{dir: d, from: p, to: q})
	}
	return dst
}

// runEdges lists the planar edges (leaving-GCell convention) along a run on
// layer l.
func runEdges(rn run, l int) []geom.Point3 {
	var out []geom.Point3
	if rn.dir == tech.Horizontal {
		x0, x1 := rn.from.X, rn.to.X
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		for x := x0; x < x1; x++ {
			out = append(out, geom.Pt3(x, rn.from.Y, l))
		}
	} else {
		y0, y1 := rn.from.Y, rn.to.Y
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		for y := y0; y < y1; y++ {
			out = append(out, geom.Pt3(rn.from.X, y, l))
		}
	}
	return out
}

// runCost prices a run on layer l; +Inf when the layer's direction does not
// match or an edge is missing. Edges are walked in leaving-GCell order
// without materialising them.
func (r *Router) runCost(rn run, l int) float64 {
	if l <= 0 || l >= r.G.NL || r.G.Tech.Layer(l).Dir != rn.dir {
		return math.Inf(1)
	}
	cost := 0.0
	if rn.dir == tech.Horizontal {
		x0, x1 := rn.from.X, rn.to.X
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		for x := x0; x < x1; x++ {
			c := r.G.WireEdgeCost(x, rn.from.Y, l)
			if math.IsInf(c, 1) {
				return c
			}
			cost += c
		}
	} else {
		y0, y1 := rn.from.Y, rn.to.Y
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		for y := y0; y < y1; y++ {
			c := r.G.WireEdgeCost(rn.from.X, y, l)
			if math.IsInf(c, 1) {
				return c
			}
			cost += c
		}
	}
	return cost
}

// stackCost prices the via stack between layers l1 and l2 at GCell p.
func (r *Router) stackCost(p geom.Point, l1, l2 int) float64 {
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	cost := 0.0
	for l := l1; l < l2; l++ {
		c := r.G.ViaEdgeCost(p.X, p.Y, l)
		if math.IsInf(c, 1) {
			return c
		}
		cost += c
	}
	return cost
}

func stackVias(p geom.Point, l1, l2 int) []geom.Point3 {
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	var out []geom.Point3
	for l := l1; l < l2; l++ {
		out = append(out, geom.Pt3(p.X, p.Y, l))
	}
	return out
}

// layerCost runs the junction-layer DP over a planar candidate path and
// returns the best realisable cost without reconstructing the realisation.
// It is the cost half of assignLayers with rolling DP rows borrowed from
// the scratch — the per-state arithmetic is expression-for-expression the
// same, so the returned float is bit-equal to assignLayers' cost.
func (r *Router) layerCost(junctions []geom.Point, s *estScratch) float64 {
	s.runs = runsOf(s.runs[:0], junctions)
	rs := s.runs
	NL := r.G.NL
	if len(rs) == 0 {
		// Single-GCell connection: no wires, no vias.
		return 0
	}
	prev, curr := s.dpa, s.dpb
	start := junctions[0]
	for l := 1; l < NL; l++ {
		prev[l] = math.Inf(1)
		rc := r.runCost(rs[0], l)
		if math.IsInf(rc, 1) {
			continue
		}
		prev[l] = r.stackCost(start, 0, l) + rc
	}
	for i := 1; i < len(rs); i++ {
		junction := rs[i].from
		for l := 1; l < NL; l++ {
			curr[l] = math.Inf(1)
			rc := r.runCost(rs[i], l)
			if math.IsInf(rc, 1) {
				continue
			}
			for pl := 1; pl < NL; pl++ {
				if math.IsInf(prev[pl], 1) {
					continue
				}
				c := prev[pl] + r.stackCost(junction, pl, l) + rc
				if c < curr[l] {
					curr[l] = c
				}
			}
		}
		prev, curr = curr, prev
	}
	end := rs[len(rs)-1].to
	best := math.Inf(1)
	for l := 1; l < NL; l++ {
		if math.IsInf(prev[l], 1) {
			continue
		}
		c := prev[l] + r.stackCost(end, l, 0)
		if c < best {
			best = c
		}
	}
	return best
}

// assignLayers runs the junction-layer DP over a planar candidate path and
// materialises the best 3D realisation. Endpoints connect to layer 0.
func (r *Router) assignLayers(junctions []geom.Point) (*path, float64) {
	rs := runsOf(nil, junctions)
	NL := r.G.NL
	if len(rs) == 0 {
		// Single-GCell connection: no wires, no vias (pin stack is
		// shared with whatever else reaches this GCell).
		return &path{}, 0
	}

	// dp[i][l]: best cost of realising runs[0..i] with run i on layer l.
	dp := make([][]float64, len(rs))
	arg := make([][]int, len(rs))
	for i := range dp {
		dp[i] = make([]float64, NL)
		arg[i] = make([]int, NL)
		for l := range dp[i] {
			dp[i][l] = math.Inf(1)
			arg[i][l] = -1
		}
	}
	start := junctions[0]
	for l := 1; l < NL; l++ {
		rc := r.runCost(rs[0], l)
		if math.IsInf(rc, 1) {
			continue
		}
		dp[0][l] = r.stackCost(start, 0, l) + rc
	}
	for i := 1; i < len(rs); i++ {
		junction := rs[i].from
		for l := 1; l < NL; l++ {
			rc := r.runCost(rs[i], l)
			if math.IsInf(rc, 1) {
				continue
			}
			for pl := 1; pl < NL; pl++ {
				if math.IsInf(dp[i-1][pl], 1) {
					continue
				}
				c := dp[i-1][pl] + r.stackCost(junction, pl, l) + rc
				if c < dp[i][l] {
					dp[i][l] = c
					arg[i][l] = pl
				}
			}
		}
	}
	end := rs[len(rs)-1].to
	bestL, bestCost := -1, math.Inf(1)
	for l := 1; l < NL; l++ {
		if math.IsInf(dp[len(rs)-1][l], 1) {
			continue
		}
		c := dp[len(rs)-1][l] + r.stackCost(end, l, 0)
		if c < bestCost {
			bestCost = c
			bestL = l
		}
	}
	if bestL < 0 {
		return nil, math.Inf(1)
	}

	// Reconstruct layer choices.
	layers := make([]int, len(rs))
	layers[len(rs)-1] = bestL
	for i := len(rs) - 1; i > 0; i-- {
		layers[i-1] = arg[i][layers[i]]
	}

	p := &path{}
	p.vias = append(p.vias, stackVias(junctions[0], 0, layers[0])...)
	for i, rn := range rs {
		p.wires = append(p.wires, runEdges(rn, layers[i])...)
		if i > 0 && layers[i] != layers[i-1] {
			p.vias = append(p.vias, stackVias(rn.from, layers[i-1], layers[i])...)
		}
	}
	p.vias = append(p.vias, stackVias(end, layers[len(rs)-1], 0)...)
	return p, bestCost
}

// forcedL materialises the horizontal-first L between a and b regardless of
// congestion; used only as a last-resort fallback.
func (r *Router) forcedL(a, b geom.Point) *path {
	if a == b {
		return &path{}
	}
	p, _ := r.assignLayers([]geom.Point{a, geom.Pt(b.X, a.Y), b})
	return p
}
