// Package global is the CUGR-substitute 3D global router. A net is routed
// by building a FLUTE-style Steiner topology over its pins' GCells
// (internal/steiner), decomposing it into two-pin segments, and routing each
// segment with 3D pattern routing: candidate L- and Z-shaped planar paths
// whose straight runs are assigned to layers by dynamic programming over the
// junction layers, with via-stack costs between runs and down to the pin
// layer at both ends. Segments that pattern routing cannot realise cheaply
// are re-routed by a full 3D Dijkstra maze. A negotiated rip-up & reroute
// loop clears residual overflow.
//
// The same pattern-routing machinery, without committing demand, implements
// the paper's "fast 3D pattern route" used by Algorithm 3 to estimate the
// cost of hypothetical cell positions.
package global

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/steiner"
	"github.com/crp-eda/crp/internal/tech"
)

// Route is one net's committed global route: a set of planar GCell edges
// and via edges (set semantics — each edge consumes one track or via of
// demand regardless of how many tree segments pass through it).
type Route struct {
	NetID int32
	// Wires lists planar edges as Point3{x,y,l}: the preferred-direction
	// edge leaving GCell (x,y) on layer l.
	Wires []geom.Point3
	// Vias lists via edges as Point3{x,y,l}: a via between layers l and
	// l+1 at GCell (x,y).
	Vias []geom.Point3
}

// Empty reports whether the route uses no routing resources (single-GCell,
// single-layer nets).
func (r *Route) Empty() bool { return len(r.Wires) == 0 && len(r.Vias) == 0 }

// Config tunes the router.
type Config struct {
	// RRRIterations is the number of rip-up & reroute passes after the
	// initial routing.
	RRRIterations int
	// ZSamples is the number of intermediate Z-bend positions tried per
	// axis during pattern routing (in addition to the two L shapes).
	ZSamples int
	// MazeOnOverflow re-routes a segment with the 3D maze when the best
	// pattern path crosses an edge with congestion above this ratio.
	MazeOnOverflow float64
	// FinalReroutePasses re-routes every net once per pass at settled
	// congestion prices after RRR, the way CUGR's later phases revisit
	// early nets that were routed against an empty (mispriced) grid.
	FinalReroutePasses int
	// DisableEstimateCache turns off the epoch-validated estimation caches
	// (two-pin segment costs, Steiner topologies, per-net committed costs).
	// Results are bit-identical either way — the flag exists so benchmarks
	// and correctness tests can compare against the cache-free path.
	DisableEstimateCache bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{RRRIterations: 3, ZSamples: 3, MazeOnOverflow: 1.0, FinalReroutePasses: 1}
}

// Router holds routing state for one design.
type Router struct {
	D   *db.Design
	G   *grid.Grid
	Cfg Config

	// Routes is indexed by net ID; nil entries are unrouted nets.
	Routes []*Route

	// Scratch buffers for the maze router, reused across calls.
	dist    []float64
	prev    []int32
	seen    []uint32
	settled []uint32
	gen     uint32

	// bld accumulates path segments while committing a net (serial paths
	// only, like the maze scratch above).
	bld builder

	// Estimation fast path: pooled per-call scratch plus the sharded,
	// epoch-validated caches (see estcache.go). Safe under concurrent
	// EstimateTerminalCost calls from CR&P's worker pool.
	scratch sync.Pool
	segs    segCache
	trees   treeCache

	// Committed-route cost memo for NetCost (serial paths): value is valid
	// while netCostEpoch[id] == G.Epoch()+1; 0 marks an invalid entry.
	netCost      []float64
	netCostEpoch []uint64

	// ctx is the cancellation context of the RouteAllCtx call in flight
	// (nil outside one). Cancellation is cooperative and only observed at
	// points where stopping leaves the grid consistent: between nets in the
	// scheduling loops and between RRR passes, plus a periodic check inside
	// the maze search (which simply reports "unreachable", letting the
	// cheap pattern/forced-L fallback finish the net).
	ctx context.Context
}

// New creates a router over an existing design and grid.
func New(d *db.Design, g *grid.Grid, cfg Config) *Router {
	if cfg.ZSamples < 0 {
		cfg.ZSamples = 0
	}
	n := g.NX * g.NY * g.NL
	r := &Router{
		D:            d,
		G:            g,
		Cfg:          cfg,
		Routes:       make([]*Route, len(d.Nets)),
		dist:         make([]float64, n),
		prev:         make([]int32, n),
		seen:         make([]uint32, n),
		settled:      make([]uint32, n),
		netCost:      make([]float64, len(d.Nets)),
		netCostEpoch: make([]uint64, len(d.Nets)),
	}
	r.scratch.New = func() any { return &estScratch{} }
	return r
}

// AdoptRoutes installs a previously committed route set — e.g. restored
// from a checkpoint — without touching grid demand: the caller restores the
// matching demand separately (grid.RestoreDemand), because committed-route
// demand alone does not reconstruct the construction-time seeding the grid
// carried when these routes were originally committed. Any prior routes and
// cost memos are discarded.
func (r *Router) AdoptRoutes(routes []*Route) error {
	if len(routes) != len(r.D.Nets) {
		return fmt.Errorf("global: adopting %d routes for %d nets", len(routes), len(r.D.Nets))
	}
	for id, rt := range routes {
		if rt != nil && rt.NetID != int32(id) {
			return fmt.Errorf("global: route at slot %d belongs to net %d", id, rt.NetID)
		}
	}
	copy(r.Routes, routes)
	for i := range r.netCostEpoch {
		r.netCostEpoch[i] = 0
	}
	return nil
}

// Stats summarises a routing run.
type Stats struct {
	RoutedNets    int
	PatternRoutes int
	MazeRoutes    int
	RRRPasses     int
	Overflow      grid.OverflowStats
	// Cancelled reports that the run's context expired before all phases
	// completed; already-committed routes are valid, later nets may be
	// unrouted and the RRR/final passes may have been cut short.
	Cancelled bool
}

// cancelled reports whether the in-flight RouteAllCtx context has expired.
func (r *Router) cancelled() bool {
	return r.ctx != nil && r.ctx.Err() != nil
}

// RouteAll routes every net with no deadline (see RouteAllCtx).
func (r *Router) RouteAll() Stats { return r.RouteAllCtx(context.Background()) }

// RouteAllCtx performs the initial global routing of every net followed by
// rip-up & reroute passes, committing demand as it goes. Nets are routed in
// increasing HPWL order so short local nets claim their natural resources
// before long nets start detouring around them. Cancellation stops the run
// at the next net (or pass) boundary with Stats.Cancelled set; the grid is
// always left consistent with the committed routes.
func (r *Router) RouteAllCtx(ctx context.Context) Stats {
	r.ctx = ctx
	defer func() { r.ctx = nil }()
	var st Stats
	order := make([]int32, 0, len(r.D.Nets))
	for _, n := range r.D.Nets {
		if n.Degree() >= 2 {
			order = append(order, n.ID)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ha, hb := r.D.HPWL(r.D.Nets[order[a]]), r.D.HPWL(r.D.Nets[order[b]])
		if ha != hb {
			return ha < hb
		}
		return order[a] < order[b]
	})
	for _, id := range order {
		if r.cancelled() {
			st.Cancelled = true
			break
		}
		rt, usedMaze := r.routeNet(id)
		r.Commit(rt)
		st.RoutedNets++
		if usedMaze {
			st.MazeRoutes++
		} else {
			st.PatternRoutes++
		}
	}
	st.RRRPasses = r.ripUpAndReroute()
	r.finalReroute(order)
	st.Cancelled = st.Cancelled || r.cancelled()
	st.Overflow = r.G.Overflow()
	return st
}

// finalReroute revisits every net at settled prices: nets routed early saw
// an empty grid and may sit on edges that later became expensive. Each net
// is ripped up and re-routed (worst current cost first); the new route is
// kept only if it is not more expensive, so the pass can only improve the
// solution.
func (r *Router) finalReroute(order []int32) {
	for pass := 0; pass < r.Cfg.FinalReroutePasses; pass++ {
		if r.cancelled() {
			return
		}
		byCost := append([]int32(nil), order...)
		sort.Slice(byCost, func(a, b int) bool {
			ca, cb := r.NetCost(byCost[a]), r.NetCost(byCost[b])
			if ca != cb {
				return ca > cb
			}
			return byCost[a] < byCost[b]
		})
		for _, id := range byCost {
			if r.cancelled() {
				return // each net's rip-up/re-commit is atomic; stopping here is safe
			}
			old := r.RipUp(id)
			if old == nil {
				continue
			}
			oldCost := r.priceRoute(old)
			rt, _ := r.routeNet(id)
			if rt != nil && r.priceRoute(rt) <= oldCost {
				r.Commit(rt)
			} else {
				r.Commit(old)
			}
		}
	}
}

// priceRoute evaluates a (not currently committed) route at current grid
// prices.
func (r *Router) priceRoute(rt *Route) float64 {
	cost := 0.0
	for _, w := range rt.Wires {
		cost += r.G.WireEdgeCost(w.X, w.Y, w.L)
	}
	for _, v := range rt.Vias {
		cost += r.G.ViaEdgeCost(v.X, v.Y, v.L)
	}
	return cost
}

// RerouteNet rips up (if routed) and re-routes one net, committing the new
// route. CR&P's update-database step calls this for every net touching a
// moved cell.
func (r *Router) RerouteNet(id int32) {
	r.RipUp(id)
	rt, _ := r.routeNet(id)
	r.Commit(rt)
}

// RerouteNetInfo is RerouteNet additionally reporting whether any segment
// fell back to the maze router. Pattern routing reads demand only inside
// the segment bounding boxes; the maze explores the whole grid, so callers
// that reason about a reroute's read footprint (the sharded merge's
// conflict detector) must treat a maze reroute as having read everything.
func (r *Router) RerouteNetInfo(id int32) (usedMaze bool) {
	r.RipUp(id)
	rt, m := r.routeNet(id)
	r.Commit(rt)
	return m
}

// Commit adds the route's demand to the grid and records it.
func (r *Router) Commit(rt *Route) {
	if rt == nil {
		return
	}
	if r.Routes[rt.NetID] != nil {
		panic(fmt.Sprintf("global: net %d committed twice", rt.NetID))
	}
	for _, w := range rt.Wires {
		r.G.AddWire(w.X, w.Y, w.L, 1)
	}
	for _, v := range rt.Vias {
		r.G.AddVia(v.X, v.Y, v.L, 1)
	}
	r.Routes[rt.NetID] = rt
	// Demand mutations advanced the grid epoch, which lazily invalidates
	// every cost cache; a resource-free route leaves the epoch alone, so
	// this net's own memo must be dropped explicitly.
	r.netCostEpoch[rt.NetID] = 0
}

// RipUp removes a net's committed demand and returns the old route (nil if
// the net was unrouted).
func (r *Router) RipUp(id int32) *Route {
	rt := r.Routes[id]
	if rt == nil {
		return nil
	}
	for _, w := range rt.Wires {
		r.G.AddWire(w.X, w.Y, w.L, -1)
	}
	for _, v := range rt.Vias {
		r.G.AddVia(v.X, v.Y, v.L, -1)
	}
	r.Routes[id] = nil
	r.netCostEpoch[id] = 0
	return rt
}

// NetCost evaluates the committed route of a net at current grid prices
// (Eq. 10). Unrouted and resource-free nets cost zero. This is the cost
// CR&P's Algorithm 1 sorts cells by — it queries the same net once per
// incident cell, and the reroute schedulers sort by it, so the value is
// memoised per net until the grid epoch or the route changes. Serial use
// only (it shares the Router's serial scratch discipline).
func (r *Router) NetCost(id int32) float64 {
	rt := r.Routes[id]
	if rt == nil {
		return 0
	}
	// Epoch 0 could not collide with a valid stamp: stamps store epoch+1.
	stamp := r.G.Epoch() + 1
	if !r.Cfg.DisableEstimateCache && r.netCostEpoch[id] == stamp {
		return r.netCost[id]
	}
	cost := 0.0
	for _, w := range rt.Wires {
		cost += r.G.WireEdgeCost(w.X, w.Y, w.L)
	}
	for _, v := range rt.Vias {
		cost += r.G.ViaEdgeCost(v.X, v.Y, v.L)
	}
	r.netCost[id] = cost
	r.netCostEpoch[id] = stamp
	return cost
}

// TotalCost sums NetCost over all nets.
func (r *Router) TotalCost() float64 {
	total := 0.0
	for id := range r.Routes {
		total += r.NetCost(int32(id))
	}
	return total
}

// WirelengthDBU returns the total routed wirelength in DBU (each planar
// edge spans one GCell pitch in its direction).
func (r *Router) WirelengthDBU() int64 {
	var wl int64
	for _, rt := range r.Routes {
		if rt == nil {
			continue
		}
		wl += r.routeWireDBU(rt)
	}
	return wl
}

func (r *Router) routeWireDBU(rt *Route) int64 {
	var wl int64
	for _, w := range rt.Wires {
		if r.G.Tech.Layer(w.L).Dir == tech.Horizontal {
			wl += int64(r.G.CellW)
		} else {
			wl += int64(r.G.CellH)
		}
	}
	return wl
}

// ViaCount returns the total number of route vias.
func (r *Router) ViaCount() int64 {
	var n int64
	for _, rt := range r.Routes {
		if rt != nil {
			n += int64(len(rt.Vias))
		}
	}
	return n
}

// netTerminals returns the GCell coordinates (deduplicated) of the net's
// terminals at the current placement.
func (r *Router) netTerminals(id int32) []geom.Point {
	pts := r.D.NetPinPositions(r.D.Nets[id])
	return r.gcellsOf(pts)
}

func (r *Router) gcellsOf(pts []geom.Point) []geom.Point {
	return r.gcellsInto(make([]geom.Point, 0, len(pts)), pts)
}

// gcellsInto appends the first-occurrence-ordered, deduplicated GCells of
// pts to dst. Terminal counts are small (net degree), so a linear scan
// beats a map and allocates nothing.
func (r *Router) gcellsInto(dst []geom.Point, pts []geom.Point) []geom.Point {
	for _, p := range pts {
		x, y := r.G.GCellOf(p)
		gp := geom.Pt(x, y)
		dup := false
		for _, q := range dst {
			if q == gp {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, gp)
		}
	}
	return dst
}

// routeNet computes a route for the net at the current placement without
// committing it. The boolean reports whether the maze was used.
func (r *Router) routeNet(id int32) (*Route, bool) {
	return r.routeTerminals(id, r.netTerminals(id))
}

// routeTerminals routes a terminal set: Steiner topology, then pattern
// routing per segment with maze fallback. Serial use only (it reuses the
// Router's builder scratch).
func (r *Router) routeTerminals(id int32, gcells []geom.Point) (*Route, bool) {
	b := &r.bld
	b.reset()
	if len(gcells) < 2 {
		return b.route(id), false
	}
	tree := steiner.Build(gcells)
	usedMaze := false
	for _, e := range tree.Edges {
		a, c := tree.Nodes[e[0]], tree.Nodes[e[1]]
		path, cost, worst := r.patternRoute(a, c)
		if path == nil || (r.Cfg.MazeOnOverflow > 0 && worst > r.Cfg.MazeOnOverflow) {
			if mp := r.mazeRoute(a, c); mp != nil {
				mcost := r.pathCost(mp)
				if path == nil || mcost < cost {
					path = mp
					usedMaze = true
				}
			}
		}
		if path == nil {
			// No finite path exists (should not happen on a connected
			// lattice); fall back to the direct L even if expensive.
			path = r.forcedL(a, c)
			if path == nil {
				continue
			}
		}
		b.add(path)
	}
	return b.route(id), usedMaze
}

// EstimateTerminalCost is the paper's fast 3D pattern route (Algorithm 3):
// it prices a hypothetical terminal set at current grid costs without
// committing anything. Only pattern routing is used, matching the paper.
//
// This is CR&P's ECC hot path, so it runs entirely on pooled scratch and
// the epoch-validated caches: the Steiner topology is memoised per ordered
// terminal-set key and every two-pin segment cost per GCell pair (see
// estcache.go). Safe for concurrent use.
//
// A segment no pattern can realise contributes +Inf, exactly as the
// pre-cache code did: the forced-L fallback prices the horizontal-first L,
// which is one of the candidates the pattern search already rejected as
// unrealisable, so the fallback could never produce a finite cost here.
func (r *Router) EstimateTerminalCost(pts []geom.Point) float64 {
	s := r.getScratch()
	defer r.putScratch(s)
	s.gcells = r.gcellsInto(s.gcells[:0], pts)
	if len(s.gcells) < 2 {
		return 0
	}
	tree := r.cachedSteiner(s.gcells, s)
	total := 0.0
	for _, e := range tree.Edges {
		a, c := tree.Nodes[e[0]], tree.Nodes[e[1]]
		total += r.segmentEstimate(a, c, s)
	}
	return total
}

// builder accumulates path segments into a deduplicated route. The append
// buffers persist on the Router between nets; route() sorts, dedups, and
// copies out exact-size slices.
type builder struct {
	wires []geom.Point3
	vias  []geom.Point3
}

// path is a routed two-pin connection.
type path struct {
	wires []geom.Point3
	vias  []geom.Point3
}

func (b *builder) reset() {
	b.wires = b.wires[:0]
	b.vias = b.vias[:0]
}

func (b *builder) add(p *path) {
	b.wires = append(b.wires, p.wires...)
	b.vias = append(b.vias, p.vias...)
}

func (b *builder) route(id int32) *Route {
	return &Route{NetID: id, Wires: dedupPoint3s(b.wires), Vias: dedupPoint3s(b.vias)}
}

// dedupPoint3s sorts ps in place and returns a fresh slice of the unique
// elements (nil when empty — Route fields stay nil for resource-free nets,
// as the map-based builder produced).
func dedupPoint3s(ps []geom.Point3) []geom.Point3 {
	if len(ps) == 0 {
		return nil
	}
	sortPoint3s(ps)
	out := make([]geom.Point3, 0, len(ps))
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}

func sortPoint3s(ps []geom.Point3) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].L != ps[b].L {
			return ps[a].L < ps[b].L
		}
		if ps[a].Y != ps[b].Y {
			return ps[a].Y < ps[b].Y
		}
		return ps[a].X < ps[b].X
	})
}

// pathCost prices a path at current grid costs.
func (r *Router) pathCost(p *path) float64 {
	c := 0.0
	for _, w := range p.wires {
		c += r.G.WireEdgeCost(w.X, w.Y, w.L)
	}
	for _, v := range p.vias {
		c += r.G.ViaEdgeCost(v.X, v.Y, v.L)
	}
	return c
}

// worstCongestion returns the maximum demand/capacity ratio over the path's
// planar edges (as if the path were committed: +1 track).
func (r *Router) worstCongestion(p *path) float64 {
	worst := 0.0
	for _, w := range p.wires {
		cap := r.G.Capacity(w.X, w.Y, w.L)
		if cap <= 0 {
			return math.Inf(1)
		}
		worst = math.Max(worst, (r.G.Demand(w.X, w.Y, w.L)+1)/cap)
	}
	return worst
}
