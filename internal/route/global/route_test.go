package global

import (
	"math"
	"math/rand"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/tech"
)

// routeDesign builds a design with nCells cells scattered over a lattice of
// rows and nNets random nets (2-5 pins), deterministically seeded.
func routeDesign(t testing.TB, nCells, nNets int, seed int64) *db.Design {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	nRows, nSites := 24, 240
	die := geom.R(0, 0, nSites*sw, nRows*rh)
	rows := make([]db.Row, nRows)
	for i := range rows {
		o := db.N
		if i%2 == 1 {
			o = db.FS
		}
		rows[i] = db.Row{Index: int32(i), X: 0, Y: i * rh, NumSites: nSites, Orient: o}
	}
	m := &db.Macro{
		Name: "M", Width: 2 * sw, Height: rh,
		Pins: []db.PinDef{
			{Name: "A", Offset: geom.Pt(sw/2, rh/4), Layer: 0},
			{Name: "Z", Offset: geom.Pt(3*sw/2, 3*rh/4), Layer: 0},
		},
	}
	used := map[[2]int]bool{}
	cells := make([]*db.Cell, 0, nCells)
	for i := 0; i < nCells; i++ {
		for {
			sx, ry := rng.Intn(nSites-2), rng.Intn(nRows)
			if used[[2]int{sx, ry}] || used[[2]int{sx + 1, ry}] {
				continue
			}
			used[[2]int{sx, ry}] = true
			used[[2]int{sx + 1, ry}] = true
			o := db.N
			if ry%2 == 1 {
				o = db.FS
			}
			cells = append(cells, &db.Cell{
				ID: int32(i), Name: "c" + string(rune('A'+i%26)) + string(rune('0'+i/26)),
				Macro: m, Pos: geom.Pt(sx*sw, ry*rh), Orient: o,
			})
			break
		}
	}
	// Unique names for larger counts.
	for i, c := range cells {
		c.Name = c.Name + "_" + itoa(i)
	}
	nets := make([]*db.Net, nNets)
	for i := range nets {
		deg := 2 + rng.Intn(4)
		pins := make([]db.PinRef, 0, deg)
		seen := map[int32]bool{}
		for len(pins) < deg {
			cid := int32(rng.Intn(nCells))
			if seen[cid] {
				continue
			}
			seen[cid] = true
			pins = append(pins, db.PinRef{Cell: cid, Pin: int32(rng.Intn(2))})
		}
		nets[i] = &db.Net{ID: int32(i), Name: "n" + itoa(i), Pins: pins}
	}
	d, err := db.New("route", tc, die, rows, []*db.Macro{m}, cells, nets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func newRouter(t testing.TB, nCells, nNets int, seed int64) *Router {
	d := routeDesign(t, nCells, nNets, seed)
	g := grid.New(d, grid.DefaultParams())
	return New(d, g, DefaultConfig())
}

// routeConnected verifies that a net's committed route connects all its pin
// GCells at layer 0 through wires and vias.
func routeConnected(r *Router, id int32) bool {
	rt := r.Routes[id]
	gcells := r.netTerminals(id)
	if len(gcells) < 2 {
		return true
	}
	if rt == nil {
		return false
	}
	adj := map[geom.Point3][]geom.Point3{}
	link := func(a, b geom.Point3) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, w := range rt.Wires {
		a := w
		var b geom.Point3
		if r.G.Tech.Layer(w.L).Dir == tech.Horizontal {
			b = geom.Pt3(w.X+1, w.Y, w.L)
		} else {
			b = geom.Pt3(w.X, w.Y+1, w.L)
		}
		link(a, b)
	}
	for _, v := range rt.Vias {
		link(geom.Pt3(v.X, v.Y, v.L), geom.Pt3(v.X, v.Y, v.L+1))
	}
	start := geom.Pt3(gcells[0].X, gcells[0].Y, 0)
	seen := map[geom.Point3]bool{start: true}
	stack := []geom.Point3{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	for _, gc := range gcells {
		if !seen[geom.Pt3(gc.X, gc.Y, 0)] {
			return false
		}
	}
	return true
}

func TestRouteAllConnectsEveryNet(t *testing.T) {
	r := newRouter(t, 60, 40, 1)
	st := r.RouteAll()
	if st.RoutedNets != 40 {
		t.Fatalf("RoutedNets = %d, want 40", st.RoutedNets)
	}
	for id := range r.D.Nets {
		if !routeConnected(r, int32(id)) {
			t.Errorf("net %d not connected", id)
		}
	}
}

func TestDemandAccountingMatchesRoutes(t *testing.T) {
	d := routeDesign(t, 50, 30, 2)
	g := grid.New(d, grid.DefaultParams())
	baseWire := g.TotalWireUsage()
	baseVias := g.TotalViaCount()
	r := New(d, g, DefaultConfig())
	r.RouteAll()
	var wires, vias int
	for _, rt := range r.Routes {
		if rt != nil {
			wires += len(rt.Wires)
			vias += len(rt.Vias)
		}
	}
	if got := g.TotalWireUsage() - baseWire; math.Abs(got-float64(wires)) > 1e-6 {
		t.Errorf("wire demand %v != committed wires %d", got, wires)
	}
	if got := g.TotalViaCount() - baseVias; math.Abs(got-float64(vias)) > 1e-6 {
		t.Errorf("via demand %v != committed vias %d", got, vias)
	}
}

func TestRipUpRestoresGrid(t *testing.T) {
	d := routeDesign(t, 50, 30, 3)
	g := grid.New(d, grid.DefaultParams())
	r := New(d, g, DefaultConfig())
	r.RouteAll()
	wire := g.TotalWireUsage()
	vias := g.TotalViaCount()
	rt := r.RipUp(0)
	if rt == nil {
		t.Fatal("net 0 had no route")
	}
	if r.Routes[0] != nil {
		t.Error("route not cleared")
	}
	r.Commit(rt)
	if math.Abs(g.TotalWireUsage()-wire) > 1e-9 || math.Abs(g.TotalViaCount()-vias) > 1e-9 {
		t.Error("rip-up/commit cycle did not conserve demand")
	}
}

func TestDoubleCommitPanics(t *testing.T) {
	r := newRouter(t, 20, 5, 4)
	r.RouteAll()
	defer func() {
		if recover() == nil {
			t.Error("double commit should panic")
		}
	}()
	r.Commit(&Route{NetID: 0})
}

func TestRipUpUnroutedNet(t *testing.T) {
	r := newRouter(t, 20, 5, 5)
	if rt := r.RipUp(0); rt != nil {
		t.Error("ripping an unrouted net should return nil")
	}
}

func TestNetCost(t *testing.T) {
	r := newRouter(t, 40, 20, 6)
	r.RouteAll()
	for id, rt := range r.Routes {
		c := r.NetCost(int32(id))
		if rt == nil || rt.Empty() {
			if c != 0 {
				t.Errorf("empty route with cost %v", c)
			}
			continue
		}
		if c <= 0 {
			t.Errorf("net %d cost = %v, want > 0", id, c)
		}
	}
	if r.TotalCost() <= 0 {
		t.Error("total cost should be positive")
	}
}

func TestWirelengthAndVias(t *testing.T) {
	r := newRouter(t, 40, 20, 7)
	r.RouteAll()
	if r.WirelengthDBU() <= 0 {
		t.Error("wirelength should be positive")
	}
	if r.ViaCount() <= 0 {
		t.Error("via count should be positive")
	}
}

func TestPatternRouteStraight(t *testing.T) {
	r := newRouter(t, 20, 5, 8)
	a, b := geom.Pt(1, 2), geom.Pt(5, 2)
	p, cost, _ := r.patternRoute(a, b)
	if p == nil {
		t.Fatal("no path")
	}
	if len(p.wires) != 4 {
		t.Errorf("straight route has %d wires, want 4", len(p.wires))
	}
	// All wires on one horizontal layer.
	l := p.wires[0].L
	for _, w := range p.wires {
		if w.L != l {
			t.Error("straight route changed layers")
		}
	}
	if r.G.Tech.Layer(l).Dir != tech.Horizontal {
		t.Error("horizontal run on vertical layer")
	}
	if math.IsInf(cost, 1) || cost <= 0 {
		t.Errorf("cost = %v", cost)
	}
	// Endpoint stacks reach layer 0.
	hasLow := false
	for _, v := range p.vias {
		if v.L == 0 {
			hasLow = true
		}
	}
	if !hasLow {
		t.Error("no via stack down to the pin layer")
	}
}

func TestPatternRouteLShape(t *testing.T) {
	r := newRouter(t, 20, 5, 9)
	p, _, _ := r.patternRoute(geom.Pt(1, 1), geom.Pt(4, 5))
	if p == nil {
		t.Fatal("no path")
	}
	// Planar length must equal Manhattan distance (L/Z shapes never detour).
	if len(p.wires) != 3+4 {
		t.Errorf("wires = %d, want 7", len(p.wires))
	}
}

func TestPatternSameGCell(t *testing.T) {
	r := newRouter(t, 20, 5, 10)
	p, cost, _ := r.patternRoute(geom.Pt(2, 2), geom.Pt(2, 2))
	if p == nil || len(p.wires) != 0 || cost != 0 {
		t.Errorf("same-GCell route: %+v cost=%v", p, cost)
	}
}

func TestMazeMatchesPatternOnEmptyGrid(t *testing.T) {
	r := newRouter(t, 20, 5, 11)
	a, b := geom.Pt(0, 0), geom.Pt(6, 4)
	_, pc, _ := r.patternRoute(a, b)
	mp := r.mazeRoute(a, b)
	if mp == nil {
		t.Fatal("maze failed")
	}
	mc := r.pathCost(mp)
	if mc > pc+1e-9 {
		t.Errorf("maze cost %v exceeds pattern cost %v — Dijkstra is not optimal?", mc, pc)
	}
}

func TestMazeAvoidsCongestion(t *testing.T) {
	r := newRouter(t, 20, 5, 12)
	a, b := geom.Pt(0, 3), geom.Pt(8, 3)
	// Saturate the straight corridor on every horizontal layer.
	for l := 1; l < r.G.NL; l++ {
		if r.G.Tech.Layer(l).Dir != tech.Horizontal {
			continue
		}
		for x := 0; x < 8; x++ {
			if r.G.HasEdge(x, 3, l) {
				r.G.AddWire(x, 3, l, r.G.Capacity(x, 3, l)*2)
			}
		}
	}
	mp := r.mazeRoute(a, b)
	if mp == nil {
		t.Fatal("maze failed")
	}
	// The maze should leave row 3 somewhere.
	left := false
	for _, w := range mp.wires {
		if w.Y != 3 {
			left = true
			break
		}
	}
	if !left {
		t.Error("maze stayed in the saturated corridor")
	}
}

func TestEstimateTerminalCost(t *testing.T) {
	r := newRouter(t, 30, 10, 13)
	// Same GCell: zero.
	p := r.G.Center(2, 2)
	if c := r.EstimateTerminalCost([]geom.Point{p, p}); c != 0 {
		t.Errorf("same-GCell estimate = %v", c)
	}
	// Farther pairs cost more on an uncongested grid.
	near := r.EstimateTerminalCost([]geom.Point{r.G.Center(1, 1), r.G.Center(3, 1)})
	far := r.EstimateTerminalCost([]geom.Point{r.G.Center(1, 1), r.G.Center(9, 1)})
	if !(0 < near && near < far) {
		t.Errorf("estimates not monotone: near=%v far=%v", near, far)
	}
	// Estimation must not mutate the grid.
	before := r.G.TotalWireUsage()
	r.EstimateTerminalCost([]geom.Point{r.G.Center(0, 0), r.G.Center(5, 5)})
	if r.G.TotalWireUsage() != before {
		t.Error("estimate committed demand")
	}
}

func TestRerouteNetAfterMove(t *testing.T) {
	r := newRouter(t, 40, 20, 14)
	r.RouteAll()
	// Move a cell of net 0 and reroute: net must stay connected.
	cid := r.D.Nets[0].Pins[0].Cell
	moved := false
	for _, x := range r.D.FreeSitesIn(10, 0, r.D.Die.Hi.X, r.D.Cells[cid].Macro.Width, map[int32]bool{cid: true}) {
		if err := r.D.MoveCell(cid, geom.Pt(x, 10*r.D.Tech.Site.Height)); err == nil {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("could not move cell")
	}
	for _, nid := range r.D.Cells[cid].Nets {
		r.RerouteNet(nid)
	}
	for _, nid := range r.D.Cells[cid].Nets {
		if !routeConnected(r, nid) {
			t.Errorf("net %d disconnected after move+reroute", nid)
		}
	}
}

func TestRRRReducesOverflow(t *testing.T) {
	// Dense instance to actually create congestion: many nets among few
	// GCells.
	d := routeDesign(t, 80, 300, 15)
	g := grid.New(d, grid.DefaultParams())
	cfgNoRRR := DefaultConfig()
	cfgNoRRR.RRRIterations = 0
	r0 := New(d, g, cfgNoRRR)
	r0.RouteAll()
	before := g.Overflow()

	d2 := routeDesign(t, 80, 300, 15)
	g2 := grid.New(d2, grid.DefaultParams())
	r1 := New(d2, g2, DefaultConfig())
	r1.RouteAll()
	after := g2.Overflow()

	if before.TotalOverflow > 0 && after.TotalOverflow > before.TotalOverflow {
		t.Errorf("RRR increased overflow: %v -> %v", before.TotalOverflow, after.TotalOverflow)
	}
	// Every net still connected after RRR.
	for id := range r1.D.Nets {
		if !routeConnected(r1, int32(id)) {
			t.Errorf("net %d disconnected after RRR", id)
		}
	}
}

func TestNodeIDRoundTrip(t *testing.T) {
	r := newRouter(t, 20, 5, 16)
	for _, c := range [][3]int{{0, 0, 0}, {r.G.NX - 1, r.G.NY - 1, r.G.NL - 1}, {3, 2, 1}} {
		id := r.nodeID(c[0], c[1], c[2])
		x, y, l := r.nodeCoords(id)
		if x != c[0] || y != c[1] || l != c[2] {
			t.Errorf("round trip (%v) -> (%d,%d,%d)", c, x, y, l)
		}
	}
}

func BenchmarkRouteAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := routeDesign(b, 100, 80, 20)
		g := grid.New(d, grid.DefaultParams())
		r := New(d, g, DefaultConfig())
		b.StartTimer()
		r.RouteAll()
	}
}

func BenchmarkEstimateTerminalCost(b *testing.B) {
	d := routeDesign(b, 100, 80, 21)
	g := grid.New(d, grid.DefaultParams())
	r := New(d, g, DefaultConfig())
	r.RouteAll()
	pts := []geom.Point{r.G.Center(1, 1), r.G.Center(8, 3), r.G.Center(4, 7)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.EstimateTerminalCost(pts)
	}
}

func TestFinalRerouteNeverIncreasesCost(t *testing.T) {
	// Route with the final pass disabled, measure, then apply the pass
	// manually and require the total cost not to increase.
	d := routeDesign(t, 80, 120, 30)
	g := grid.New(d, grid.DefaultParams())
	cfg := DefaultConfig()
	cfg.FinalReroutePasses = 0
	r := New(d, g, cfg)
	r.RouteAll()
	before := r.TotalCost()
	var order []int32
	for _, n := range d.Nets {
		if n.Degree() >= 2 {
			order = append(order, n.ID)
		}
	}
	r.Cfg.FinalReroutePasses = 1
	r.finalReroute(order)
	after := r.TotalCost()
	if after > before+1e-6 {
		t.Errorf("final reroute increased total cost: %v -> %v", before, after)
	}
	// Connectivity survives.
	for id := range r.D.Nets {
		if !routeConnected(r, int32(id)) {
			t.Fatalf("net %d disconnected by final reroute", id)
		}
	}
}

func TestRouteAllStatsConsistent(t *testing.T) {
	r := newRouter(t, 60, 40, 31)
	st := r.RouteAll()
	if st.PatternRoutes+st.MazeRoutes != st.RoutedNets {
		t.Errorf("pattern %d + maze %d != routed %d",
			st.PatternRoutes, st.MazeRoutes, st.RoutedNets)
	}
	if st.RRRPasses < 0 || st.RRRPasses > r.Cfg.RRRIterations {
		t.Errorf("RRRPasses = %d out of [0,%d]", st.RRRPasses, r.Cfg.RRRIterations)
	}
}

func TestEstimateCongestionSensitivity(t *testing.T) {
	// Estimating across a saturated corridor must cost more than across a
	// clear one — the property CR&P's candidate ranking relies on.
	r := newRouter(t, 20, 5, 32)
	a, b := geom.Pt(0, 3), geom.Pt(8, 3)
	pa := r.G.Center(a.X, a.Y)
	pb := r.G.Center(b.X, b.Y)
	clear := r.EstimateTerminalCost([]geom.Point{pa, pb})
	for l := 1; l < r.G.NL; l++ {
		if r.G.Tech.Layer(l).Dir != tech.Horizontal {
			continue
		}
		for x := 0; x < 8; x++ {
			for y := 2; y <= 4; y++ {
				if r.G.HasEdge(x, y, l) {
					r.G.AddWire(x, y, l, r.G.Capacity(x, y, l)*2)
				}
			}
		}
	}
	congested := r.EstimateTerminalCost([]geom.Point{pa, pb})
	if congested <= clear {
		t.Errorf("estimate ignored congestion: clear %v vs congested %v", clear, congested)
	}
}
