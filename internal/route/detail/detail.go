// Package detail is the TritonRoute-substitute detailed router. It consumes
// the global router's per-net GCell routes as guides and realises them on
// the real track grid:
//
//   - every maximal straight run of guide edges becomes a wire segment that
//     must be packed onto one of the panel's tracks (left-edge interval
//     packing with the layer's spacing rule);
//   - panels whose track demand is exceeded push segments into neighbouring
//     panels at a detour cost, and segments that still cannot be placed
//     become design-rule violations (shorts or spacing, depending on how
//     hard the overlap is);
//   - sub-minimum-area segments are extended before packing; when the
//     extension itself cannot be placed the segment reports a min-area
//     violation;
//   - vias are materialised one-for-one from the guide's via edges, and
//     every pin contributes its access stub.
//
// The output is exactly the detailed-routing metric set the paper's Table
// III evaluates: wirelength, via count, and DRVs. Because packing failures
// happen precisely where global congestion exceeds track supply, better
// global solutions (what CR&P optimises) translate into fewer detours,
// vias, and DRVs here — the same coupling TritonRoute exhibits.
package detail

import (
	"context"
	"sort"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/tech"
)

// Config tunes the detailed router.
type Config struct {
	// MaxPanelHops is how many neighbouring panels a segment may detour
	// into before it is declared unplaceable.
	MaxPanelHops int
	// FixIterations is the number of re-packing passes over violating
	// panels (longest-first reordering) before violations are final.
	FixIterations int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{MaxPanelHops: 2, FixIterations: 2}
}

// DRVCounts breaks down design-rule violations by type, mirroring the
// ISPD-2018 evaluator categories the paper reports.
type DRVCounts struct {
	Shorts  int
	Spacing int
	MinArea int
	Opens   int
}

// Total returns the summed violation count.
func (d DRVCounts) Total() int { return d.Shorts + d.Spacing + d.MinArea + d.Opens }

// Result is the detailed-routing outcome for a design.
type Result struct {
	WirelengthDBU int64
	Vias          int64
	DRVs          DRVCounts
	Segments      int
	Detours       int // segments placed in a neighbouring panel

	// Truncated reports that the routing context expired mid-run: the
	// metrics cover only the panels packed before cancellation.
	Truncated bool

	// NetWL and NetVias attribute wirelength and vias per net (indexed by
	// net ID), feeding the evaluator's worst-net report.
	NetWL   []int64
	NetVias []int64
}

// segment is one wire interval to pack onto a track.
type segment struct {
	net      int32
	layer    int
	panel    int // GCell row (H layers) or column (V layers)
	lo, hi   int // DBU along the panel
	extended bool
	hops     int
}

// Route realises the committed global routes on the track grid and returns
// the detailed metrics (no deadline; see RouteCtx).
func Route(d *db.Design, g *grid.Grid, routes []*global.Route, cfg Config) *Result {
	return RouteCtx(context.Background(), d, g, routes, cfg)
}

// RouteCtx is Route under a cancellation context: panel packing stops at
// the next panel boundary once ctx expires, and the result is flagged
// Truncated so callers know the metrics are partial.
func RouteCtx(ctx context.Context, d *db.Design, g *grid.Grid, routes []*global.Route, cfg Config) *Result {
	if cfg.MaxPanelHops < 0 {
		cfg.MaxPanelHops = 0
	}
	if cfg.FixIterations < 1 {
		cfg.FixIterations = 1
	}
	res := &Result{
		NetWL:   make([]int64, len(d.Nets)),
		NetVias: make([]int64, len(d.Nets)),
	}
	addWL := func(net int32, wl int64) {
		res.WirelengthDBU += wl
		res.NetWL[net] += wl
	}

	// Opens: a spanning net with no route can never be realised.
	for _, n := range d.Nets {
		if n.Degree() < 2 {
			continue
		}
		if routes[n.ID] == nil && spansGCells(d, g, n) {
			res.DRVs.Opens++
		}
	}

	segs := extractSegments(d, g, routes, &res.Vias, res.NetVias)
	res.Segments = len(segs)

	// Pin access stubs: from each pin to its GCell center, approximating
	// the in-cell escape routing; charged once per pin.
	for _, n := range d.Nets {
		for _, pr := range n.Pins {
			p := d.PinPosition(d.Cells[pr.Cell], pr.Pin)
			x, y := g.GCellOf(p)
			addWL(n.ID, int64(p.ManhattanDist(g.Center(x, y))))
		}
		for _, io := range n.IOs {
			x, y := g.GCellOf(io.Pos)
			addWL(n.ID, int64(io.Pos.ManhattanDist(g.Center(x, y))))
		}
	}

	// Pack per (layer, panel). Panels are swept in increasing index order
	// per layer and overflow only pushes forward (+1), so a segment always
	// lands in a panel that has not been packed yet.
	byPanel := map[[2]int][]*segment{}
	for i := range segs {
		s := &segs[i]
		byPanel[[2]int{s.layer, s.panel}] = append(byPanel[[2]int{s.layer, s.panel}], s)
	}
	for layer := 1; layer < g.NL; layer++ {
		nPanels := g.NY
		if g.Tech.Layer(layer).Dir == tech.Vertical {
			nPanels = g.NX
		}
		for panel := 0; panel < nPanels; panel++ {
			if ctx.Err() != nil {
				res.Truncated = true
				return res
			}
			pending := byPanel[[2]int{layer, panel}]
			if len(pending) == 0 {
				continue
			}
			overflow := packPanel(d, g, layer, panel, pending, cfg, res)
			for _, s := range overflow {
				s.hops++
				if s.hops > cfg.MaxPanelHops || !panelExists(g, layer, s.panel+1) {
					classifyViolation(d, g, s, res)
					continue
				}
				s.panel++
				res.Detours++
				addWL(s.net, 2*int64(panelPitchDBU(g, layer)))
				nk := [2]int{layer, s.panel}
				byPanel[nk] = append(byPanel[nk], s)
			}
		}
	}
	return res
}

// spansGCells reports whether the net's pins occupy more than one GCell.
func spansGCells(d *db.Design, g *grid.Grid, n *db.Net) bool {
	pts := d.NetPinPositions(n)
	if len(pts) < 2 {
		return false
	}
	x0, y0 := g.GCellOf(pts[0])
	for _, p := range pts[1:] {
		x, y := g.GCellOf(p)
		if x != x0 || y != y0 {
			return true
		}
	}
	return false
}

// extractSegments converts each route into straight wire segments and
// counts its vias.
func extractSegments(d *db.Design, g *grid.Grid, routes []*global.Route, vias *int64, netVias []int64) []segment {
	var segs []segment
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		*vias += int64(len(rt.Vias))
		if netVias != nil {
			netVias[rt.NetID] += int64(len(rt.Vias))
		}
		// Group wire edges by (layer, panel), then merge contiguous runs.
		type key struct{ l, panel int }
		groups := map[key][]int{}
		for _, w := range rt.Wires {
			if g.Tech.Layer(w.L).Dir == tech.Horizontal {
				groups[key{w.L, w.Y}] = append(groups[key{w.L, w.Y}], w.X)
			} else {
				groups[key{w.L, w.X}] = append(groups[key{w.L, w.X}], w.Y)
			}
		}
		for k, xs := range groups {
			sort.Ints(xs)
			runStart := xs[0]
			prev := xs[0]
			flush := func(a, b int) {
				lo, hi := segmentSpan(g, k.l, k.panel, a, b)
				segs = append(segs, segment{net: rt.NetID, layer: k.l, panel: k.panel, lo: lo, hi: hi})
			}
			for _, x := range xs[1:] {
				if x == prev {
					continue
				}
				if x != prev+1 {
					flush(runStart, prev)
					runStart = x
				}
				prev = x
			}
			flush(runStart, prev)
		}
	}
	return segs
}

// segmentSpan converts a run of guide edges [a..b] (leaving-GCell indices)
// into a DBU interval between the centers of the first and last GCells.
func segmentSpan(g *grid.Grid, layer, panel, a, b int) (int, int) {
	if g.Tech.Layer(layer).Dir == tech.Horizontal {
		return g.Center(a, panel).X, g.Center(b+1, panel).X
	}
	return g.Center(panel, a).Y, g.Center(panel, b+1).Y
}

func panelExists(g *grid.Grid, layer, panel int) bool {
	if g.Tech.Layer(layer).Dir == tech.Horizontal {
		return panel >= 0 && panel < g.NY
	}
	return panel >= 0 && panel < g.NX
}

// panelPitchDBU is the detour distance for hopping one panel.
func panelPitchDBU(g *grid.Grid, layer int) int {
	if g.Tech.Layer(layer).Dir == tech.Horizontal {
		return g.CellH
	}
	return g.CellW
}

// trackCount returns the number of usable tracks in a panel on layer.
func trackCount(g *grid.Grid, layer int) int {
	l := g.Tech.Layer(layer)
	if layer == 0 {
		return 0 // metal1 is pin-only in this flow
	}
	if l.Dir == tech.Horizontal {
		return g.CellH / l.Pitch
	}
	return g.CellW / l.Pitch
}

// packPanel assigns the panel's segments to tracks with the left-edge
// algorithm (sorted by interval start, first-fit). Sub-min-area segments
// are extended first. It accumulates wirelength for placed segments and
// returns those that could not be placed. FixIterations > 1 retries failed
// packs with longest-first ordering, which unsticks panels where a short
// segment landed on the track a long one needed.
func packPanel(d *db.Design, g *grid.Grid, layer, panel int, pending []*segment, cfg Config, res *Result) []*segment {
	if len(pending) == 0 {
		return nil
	}
	l := g.Tech.Layer(layer)
	// Min-area extension.
	for _, s := range pending {
		if int64(s.hi-s.lo)*int64(l.Width) < int64(l.MinArea) {
			need := int(int64(l.MinArea)/int64(l.Width)) - (s.hi - s.lo)
			s.hi += need
			s.extended = true
		}
	}
	nTracks := trackCount(g, layer)

	tryPack := func(order []*segment) ([]*segment, [][]geom.Interval) {
		tracks := make([][]geom.Interval, nTracks)
		var failed []*segment
		for _, s := range order {
			placed := false
			for t := 0; t < nTracks && !placed; t++ {
				if fits(tracks[t], s.lo, s.hi, l.Spacing) {
					tracks[t] = insertIv(tracks[t], geom.Interval{Lo: s.lo, Hi: s.hi})
					placed = true
				}
			}
			if !placed {
				failed = append(failed, s)
			}
		}
		return failed, tracks
	}

	order := append([]*segment(nil), pending...)
	sort.Slice(order, func(a, b int) bool {
		if order[a].lo != order[b].lo {
			return order[a].lo < order[b].lo
		}
		return order[a].net < order[b].net
	})
	failed, _ := tryPack(order)
	for it := 1; it < cfg.FixIterations && len(failed) > 0; it++ {
		sort.Slice(order, func(a, b int) bool {
			la, lb := order[a].hi-order[a].lo, order[b].hi-order[b].lo
			if la != lb {
				return la > lb
			}
			return order[a].net < order[b].net
		})
		if f2, _ := tryPack(order); len(f2) < len(failed) {
			failed = f2
		}
	}

	failedSet := map[*segment]bool{}
	for _, s := range failed {
		failedSet[s] = true
	}
	for _, s := range pending {
		if !failedSet[s] {
			res.WirelengthDBU += int64(s.hi - s.lo)
			res.NetWL[s.net] += int64(s.hi - s.lo)
		}
	}
	return failed
}

// classifyViolation decides what DRV an unplaceable segment becomes: a
// min-area violation when only the extension failed, a spacing violation
// when it would fit ignoring the spacing rule, otherwise a short. The
// segment's wirelength is still charged — the wire exists, it just violates.
func classifyViolation(d *db.Design, g *grid.Grid, s *segment, res *Result) {
	res.WirelengthDBU += int64(s.hi - s.lo)
	res.NetWL[s.net] += int64(s.hi - s.lo)
	l := g.Tech.Layer(s.layer)
	if s.extended {
		res.DRVs.MinArea++
		return
	}
	_ = l
	if s.hops == 0 {
		res.DRVs.Spacing++
		return
	}
	res.DRVs.Shorts++
}

// fits reports whether [lo,hi) can join the track respecting spacing.
func fits(ivs []geom.Interval, lo, hi, spacing int) bool {
	probe := geom.Interval{Lo: lo - spacing, Hi: hi + spacing}
	for _, iv := range ivs {
		if iv.Overlaps(probe) {
			return false
		}
	}
	return true
}

func insertIv(ivs []geom.Interval, iv geom.Interval) []geom.Interval {
	return append(ivs, iv)
}
