package detail

import (
	"math/rand"
	"testing"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/route/global"
)

// Random synthetic guide sets must never panic the detailed router, and the
// resulting metrics must be internally consistent, whatever the guides look
// like (contiguous, scattered, on any layer, any panel).
func TestRandomGuidesNeverPanic(t *testing.T) {
	d, g, _ := detailFixture(t, 40, 30, 42)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		routes := make([]*global.Route, len(d.Nets))
		nRoutes := rng.Intn(len(d.Nets))
		for i := 0; i < nRoutes; i++ {
			rt := &global.Route{NetID: int32(i)}
			nWires := rng.Intn(20)
			for w := 0; w < nWires; w++ {
				l := 1 + rng.Intn(g.NL-1)
				x := rng.Intn(g.NX)
				y := rng.Intn(g.NY)
				if g.HasEdge(x, y, l) {
					rt.Wires = append(rt.Wires, geom.Pt3(x, y, l))
				}
			}
			nVias := rng.Intn(10)
			for v := 0; v < nVias; v++ {
				rt.Vias = append(rt.Vias, geom.Pt3(rng.Intn(g.NX), rng.Intn(g.NY), rng.Intn(g.NL-1)))
			}
			routes[i] = rt
		}
		res := Route(d, g, routes, DefaultConfig())
		if res.WirelengthDBU < 0 || res.Vias < 0 {
			t.Fatalf("trial %d: negative metrics %+v", trial, res)
		}
		if res.DRVs.Shorts < 0 || res.DRVs.Spacing < 0 || res.DRVs.MinArea < 0 || res.DRVs.Opens < 0 {
			t.Fatalf("trial %d: negative DRVs %+v", trial, res.DRVs)
		}
		// Vias are exactly the guide vias.
		var wantVias int64
		for _, rt := range routes {
			if rt != nil {
				wantVias += int64(len(rt.Vias))
			}
		}
		if res.Vias != wantVias {
			t.Fatalf("trial %d: vias %d, want %d", trial, res.Vias, wantVias)
		}
	}
}

// Duplicated wire edges within one route (same edge twice in the slice)
// must not crash segment extraction or double-free anything.
func TestDuplicateWireEdges(t *testing.T) {
	d, g, _ := detailFixture(t, 30, 10, 43)
	routes := make([]*global.Route, len(d.Nets))
	routes[0] = &global.Route{
		NetID: 0,
		Wires: []geom.Point3{
			geom.Pt3(1, 1, 2), geom.Pt3(1, 1, 2), geom.Pt3(2, 1, 2),
		},
	}
	res := Route(d, g, routes, DefaultConfig())
	// One contiguous run [1..3] expected despite the duplicate.
	if res.Segments != 1 {
		t.Errorf("segments = %d, want 1 (duplicates merged)", res.Segments)
	}
}

// Zero-config (all defaults clamped) still works.
func TestZeroConfigClamped(t *testing.T) {
	d, g, r := detailFixture(t, 30, 10, 44)
	res := Route(d, g, r.Routes, Config{MaxPanelHops: -5, FixIterations: 0})
	if res.WirelengthDBU <= 0 {
		t.Error("clamped config produced no wirelength")
	}
}
