package detail

import (
	"math/rand"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/tech"
)

// detailFixture builds a routed design to feed the detailed router.
func detailFixture(t testing.TB, nCells, nNets int, seed int64) (*db.Design, *grid.Grid, *global.Router) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	nRows, nSites := 24, 240
	die := geom.R(0, 0, nSites*sw, nRows*rh)
	rows := make([]db.Row, nRows)
	for i := range rows {
		o := db.N
		if i%2 == 1 {
			o = db.FS
		}
		rows[i] = db.Row{Index: int32(i), X: 0, Y: i * rh, NumSites: nSites, Orient: o}
	}
	m := &db.Macro{
		Name: "M", Width: 2 * sw, Height: rh,
		Pins: []db.PinDef{
			{Name: "A", Offset: geom.Pt(sw/2, rh/4), Layer: 0},
			{Name: "Z", Offset: geom.Pt(3*sw/2, 3*rh/4), Layer: 0},
		},
	}
	used := map[[2]int]bool{}
	cells := make([]*db.Cell, 0, nCells)
	for i := 0; i < nCells; i++ {
		for {
			sx, ry := rng.Intn(nSites-2), rng.Intn(nRows)
			if used[[2]int{sx, ry}] || used[[2]int{sx + 1, ry}] {
				continue
			}
			used[[2]int{sx, ry}] = true
			used[[2]int{sx + 1, ry}] = true
			o := db.N
			if ry%2 == 1 {
				o = db.FS
			}
			cells = append(cells, &db.Cell{
				ID: int32(i), Name: "c" + itoa(i), Macro: m,
				Pos: geom.Pt(sx*sw, ry*rh), Orient: o,
			})
			break
		}
	}
	nets := make([]*db.Net, nNets)
	for i := range nets {
		deg := 2 + rng.Intn(3)
		pins := make([]db.PinRef, 0, deg)
		seen := map[int32]bool{}
		for len(pins) < deg {
			cid := int32(rng.Intn(nCells))
			if seen[cid] {
				continue
			}
			seen[cid] = true
			pins = append(pins, db.PinRef{Cell: cid, Pin: int32(rng.Intn(2))})
		}
		nets[i] = &db.Net{ID: int32(i), Name: "n" + itoa(i), Pins: pins}
	}
	d, err := db.New("detail", tc, die, rows, []*db.Macro{m}, cells, nets, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	return d, g, r
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestRouteBasicMetrics(t *testing.T) {
	d, g, r := detailFixture(t, 60, 40, 1)
	res := Route(d, g, r.Routes, DefaultConfig())
	if res.WirelengthDBU <= 0 {
		t.Error("wirelength should be positive")
	}
	if res.Vias != r.ViaCount() {
		t.Errorf("vias = %d, want %d (one per guide via)", res.Vias, r.ViaCount())
	}
	if res.Segments <= 0 {
		t.Error("no segments extracted")
	}
	if res.DRVs.Opens != 0 {
		t.Errorf("opens = %d on a fully routed design", res.DRVs.Opens)
	}
}

func TestOpensReportedForUnroutedNets(t *testing.T) {
	d, g, r := detailFixture(t, 40, 20, 2)
	routes := append([]*global.Route(nil), r.Routes...)
	// Drop the first spanning net's route.
	dropped := -1
	for id, rt := range routes {
		if rt != nil && !rt.Empty() {
			routes[id] = nil
			dropped = id
			break
		}
	}
	if dropped < 0 {
		t.Skip("no spanning net to drop")
	}
	res := Route(d, g, routes, DefaultConfig())
	if res.DRVs.Opens < 1 {
		t.Errorf("opens = %d, want >= 1 after dropping net %d", res.DRVs.Opens, dropped)
	}
}

func TestDetailedWirelengthTracksGlobal(t *testing.T) {
	d, g, r := detailFixture(t, 60, 40, 3)
	res := Route(d, g, r.Routes, DefaultConfig())
	gwl := r.WirelengthDBU()
	// Detailed WL = guide spans + pin stubs + detours: same order of
	// magnitude as the global estimate, never less than half of it.
	if res.WirelengthDBU < gwl/2 {
		t.Errorf("detail WL %d implausibly small vs global %d", res.WirelengthDBU, gwl)
	}
	if res.WirelengthDBU > gwl*3 {
		t.Errorf("detail WL %d implausibly large vs global %d", res.WirelengthDBU, gwl)
	}
}

func TestUncongestedDesignHasNoDRVs(t *testing.T) {
	// Few nets over a large die: every panel has plenty of tracks.
	d, g, r := detailFixture(t, 30, 10, 4)
	res := Route(d, g, r.Routes, DefaultConfig())
	if res.DRVs.Total() != 0 {
		t.Errorf("DRVs = %+v on an uncongested design", res.DRVs)
	}
	if res.Detours != 0 {
		t.Errorf("detours = %d on an uncongested design", res.Detours)
	}
}

func TestCongestionCausesDetoursOrDRVs(t *testing.T) {
	// Saturate one panel artificially: many parallel same-panel segments.
	d, g, _ := detailFixture(t, 120, 80, 5)
	layer := 2 // horizontal on n45
	nTracks := trackCount(g, layer)
	routes := make([]*global.Route, len(d.Nets))
	// Build synthetic routes: nTracks*2 nets all wanting panel y=1 across
	// the same span. Reuse net IDs 0..min(nNets)-1; create as many as we
	// have nets.
	want := nTracks * 2
	if want > len(d.Nets) {
		want = len(d.Nets)
	}
	for i := 0; i < want; i++ {
		rt := &global.Route{NetID: int32(i)}
		for x := 0; x < 6; x++ {
			rt.Wires = append(rt.Wires, geom.Pt3(x, 1, layer))
		}
		routes[i] = rt
	}
	res := Route(d, g, routes, DefaultConfig())
	if res.Detours == 0 && res.DRVs.Total() == 0 {
		t.Errorf("saturated panel produced neither detours nor DRVs (tracks=%d, segs=%d)",
			nTracks, res.Segments)
	}
}

func TestHardOverloadCausesDRVs(t *testing.T) {
	d, g, _ := detailFixture(t, 200, 160, 6)
	layer := 2
	nTracks := trackCount(g, layer)
	routes := make([]*global.Route, len(d.Nets))
	// Overload panels 1..MaxPanelHops+1 so hopping cannot save segments.
	cfg := DefaultConfig()
	want := nTracks * (cfg.MaxPanelHops + 2) * 2
	if want > len(d.Nets) {
		want = len(d.Nets)
	}
	idx := 0
	for p := 1; p <= cfg.MaxPanelHops+1 && idx < want; p++ {
		for k := 0; k < nTracks*2 && idx < want; k++ {
			rt := &global.Route{NetID: int32(idx)}
			for x := 0; x < 6; x++ {
				rt.Wires = append(rt.Wires, geom.Pt3(x, p, layer))
			}
			routes[idx] = rt
			idx++
		}
	}
	res := Route(d, g, routes, cfg)
	if res.DRVs.Total() == 0 {
		t.Errorf("hard overload produced no DRVs: %+v detours=%d", res.DRVs, res.Detours)
	}
}

func TestMinAreaExtension(t *testing.T) {
	d, g, _ := detailFixture(t, 30, 10, 7)
	layer := 2
	l := g.Tech.Layer(layer)
	// One single-edge segment: span = CellW (one GCell pitch). If that is
	// below min-area it gets extended; either way it must be placed
	// without violations on an empty panel.
	rt := &global.Route{NetID: 0, Wires: []geom.Point3{geom.Pt3(2, 2, layer)}}
	routes := make([]*global.Route, len(d.Nets))
	routes[0] = rt
	res := Route(d, g, routes, DefaultConfig())
	if v := res.DRVs.Shorts + res.DRVs.Spacing + res.DRVs.MinArea; v != 0 {
		t.Errorf("lone segment produced wire DRVs: %+v", res.DRVs)
	}
	minLen := int(int64(l.MinArea) / int64(l.Width))
	segSpan := g.CellW
	wantWL := int64(segSpan)
	if segSpan < minLen {
		wantWL = int64(minLen)
	}
	// WL includes pin stubs for all nets (routes nil → stubs only); the
	// lone segment's contribution must be at least wantWL.
	if res.WirelengthDBU < wantWL {
		t.Errorf("WL %d < expected segment span %d", res.WirelengthDBU, wantWL)
	}
}

func TestFitsRespectsSpacing(t *testing.T) {
	ivs := []geom.Interval{{Lo: 100, Hi: 200}}
	if fits(ivs, 200, 300, 50) {
		t.Error("gap 0 < spacing 50 should not fit")
	}
	if !fits(ivs, 251, 300, 50) {
		t.Error("gap 51 > spacing 50 should fit")
	}
	if fits(ivs, 150, 250, 0) {
		t.Error("overlap should never fit")
	}
	if !fits(nil, 0, 10, 100) {
		t.Error("empty track should fit anything")
	}
}

func TestDRVCountsTotal(t *testing.T) {
	d := DRVCounts{Shorts: 1, Spacing: 2, MinArea: 3, Opens: 4}
	if d.Total() != 10 {
		t.Errorf("Total = %d, want 10", d.Total())
	}
}

func TestTrackCount(t *testing.T) {
	d, g, _ := detailFixture(t, 10, 2, 8)
	_ = d
	if trackCount(g, 0) != 0 {
		t.Error("metal1 should have no tracks")
	}
	if trackCount(g, 2) != g.CellH/g.Tech.Layer(2).Pitch {
		t.Error("H layer track count wrong")
	}
	if trackCount(g, 1) != g.CellW/g.Tech.Layer(1).Pitch {
		t.Error("V layer track count wrong")
	}
}

func BenchmarkDetailRoute(b *testing.B) {
	d, g, r := detailFixture(b, 100, 80, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Route(d, g, r.Routes, DefaultConfig())
	}
}
