package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/flow"
)

// tinyOptions keeps the sweep fast enough for unit testing.
func tinyOptions() Options {
	opts := DefaultOptions()
	opts.Scale = 0.004
	opts.Circuits = []int{0}
	opts.K1 = 1
	opts.K10 = 3
	opts.SOTABudget = 0
	opts.Flow = flow.DefaultConfig()
	opts.Flow.CRP.Workers = 2
	return opts
}

func TestRunProducesAllFourFlows(t *testing.T) {
	res, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	cr := res[0]
	if cr.Baseline == nil || cr.SOTA == nil || cr.K1 == nil || cr.K10 == nil {
		t.Fatal("missing flow results")
	}
	if cr.Baseline.Metrics.Vias <= 0 {
		t.Error("baseline has no vias")
	}
	if cr.SOTA.Failed {
		t.Error("unbudgeted SOTA failed")
	}
	if cr.Stats.Cells == 0 {
		t.Error("stats missing")
	}
}

func TestRunRejectsBadCircuitIndex(t *testing.T) {
	opts := tinyOptions()
	opts.Circuits = []int{99}
	if _, err := Run(opts); err == nil {
		t.Error("index 99 accepted")
	}
}

func TestTable2Format(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf, 0.004); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"crp_test1", "crp_test10", "45nm", "32nm", "#cells"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Errorf("Table2 has %d lines, want >= 12", lines)
	}
}

func TestTable3Fig2Fig3Format(t *testing.T) {
	res, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var t3, f2, f3 bytes.Buffer
	Table3(&t3, res)
	Fig2(&f2, res)
	Fig3(&f3, res)
	if !strings.Contains(t3.String(), "crp_test1") || !strings.Contains(t3.String(), "Avg") {
		t.Errorf("Table III malformed:\n%s", t3.String())
	}
	if !strings.Contains(f2.String(), "Baseline") {
		t.Errorf("Fig 2 malformed:\n%s", f2.String())
	}
	for _, col := range []string{"GR", "GCP", "ECC", "UD", "Misc", "DR"} {
		if !strings.Contains(f3.String(), col) {
			t.Errorf("Fig 3 missing column %s", col)
		}
	}
}

func TestSOTAFailureRendersAsFailed(t *testing.T) {
	opts := tinyOptions()
	opts.SOTABudget = time.Nanosecond
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].SOTA.Failed {
		t.Fatal("nanosecond budget did not fail")
	}
	var t3, f2 bytes.Buffer
	Table3(&t3, res)
	Fig2(&f2, res)
	if !strings.Contains(t3.String(), "Failed") {
		t.Error("Table III does not render Failed")
	}
	if !strings.Contains(f2.String(), "Failed") {
		t.Error("Fig 2 does not render Failed")
	}
}

// The headline reproduction shape on a small circuit: k=10 beats k=1 beats
// nothing on vias, and CR&P adds no DRVs.
func TestImprovementShape(t *testing.T) {
	opts := tinyOptions()
	opts.Circuits = []int{4} // a congested mid-suite circuit
	opts.K10 = 6
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	cr := res[0]
	base := cr.Baseline.Metrics
	if cr.K10.Metrics.Vias > base.Vias {
		t.Errorf("k=%d vias regressed: %d -> %d", opts.K10, base.Vias, cr.K10.Metrics.Vias)
	}
	if cr.K10.Metrics.DRVs.Total() > base.DRVs.Total() {
		t.Errorf("CR&P added DRVs: %d -> %d", base.DRVs.Total(), cr.K10.Metrics.DRVs.Total())
	}
	if cr.K10.Metrics.Vias > cr.K1.Metrics.Vias {
		t.Logf("note: k=10 (%d vias) did not beat k=1 (%d) on this tiny instance",
			cr.K10.Metrics.Vias, cr.K1.Metrics.Vias)
	}
}
