// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic benchmark suite:
//
//   - Table II — benchmark statistics;
//   - Table III — wirelength / DRV / via comparison of the baseline
//     (CUGR+TritonRoute substitutes), the state of the art [18], and CR&P
//     with k=1 and k=10;
//   - Fig. 2 — runtime comparison of the four flows;
//   - Fig. 3 — percentage runtime breakdown of the CR&P flow (GR, GCP,
//     ECC, UD, Misc, DR).
//
// Each flow runs on a freshly generated copy of the circuit so the four
// columns are independent, exactly as four separate tool invocations would
// be. All runs are deterministic given the suite seed.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eval"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/ispd"
)

// Options configures an experiment sweep.
type Options struct {
	// Scale shrinks the Table II cell/net counts to laptop size.
	Scale float64
	// Circuits selects suite indices (0-9); empty means all ten.
	Circuits []int
	// K1 and K10 are the two iteration counts of Table III.
	K1, K10 int
	// SOTABudget is an optional wall-clock budget for the [18] substitute;
	// zero disables it.
	SOTABudget time.Duration
	// SOTAMaxCells fails [18] runs on circuits with more movable cells,
	// reproducing the paper's "Failed" entry for ispd18_test10 (its
	// monolithic ILP did not scale to the largest circuit). When zero and
	// SOTAAutoFail is true, the threshold is placed between the two
	// largest circuits of the selected suite.
	SOTAMaxCells int
	// SOTAAutoFail derives SOTAMaxCells automatically (see above).
	SOTAAutoFail bool
	// Flow carries the stage configurations.
	Flow flow.Config
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// DefaultOptions returns the settings the committed EXPERIMENTS.md was
// produced with.
func DefaultOptions() Options {
	return Options{
		Scale:        0.02,
		K1:           1,
		K10:          10,
		SOTAAutoFail: true,
		Flow:         flow.DefaultConfig(),
	}
}

// CircuitResult bundles the four flow runs of one benchmark circuit.
type CircuitResult struct {
	Spec     ispd.Spec
	Stats    db.Stats
	Baseline *flow.Result
	SOTA     *flow.Result // Failed==true mirrors the paper's test10 row
	K1       *flow.Result
	K10      *flow.Result
}

// Run executes the full sweep.
func Run(opts Options) ([]CircuitResult, error) {
	if opts.Scale <= 0 {
		opts.Scale = DefaultOptions().Scale
	}
	if opts.K1 <= 0 {
		opts.K1 = 1
	}
	if opts.K10 <= 0 {
		opts.K10 = 10
	}
	specs := ispd.Suite(opts.Scale)
	if opts.SOTAMaxCells == 0 && opts.SOTAAutoFail {
		// Threshold between the two largest circuits: exactly the largest
		// fails, as [18] did on ispd18_test10.
		largest, second := 0, 0
		for _, sp := range specs {
			if sp.Cells > largest {
				largest, second = sp.Cells, largest
			} else if sp.Cells > second {
				second = sp.Cells
			}
		}
		opts.SOTAMaxCells = (largest + second) / 2
	}
	idx := opts.Circuits
	if len(idx) == 0 {
		idx = make([]int, len(specs))
		for i := range idx {
			idx[i] = i
		}
	}
	var out []CircuitResult
	for _, i := range idx {
		if i < 0 || i >= len(specs) {
			return nil, fmt.Errorf("experiments: circuit index %d out of range", i)
		}
		cr, err := RunCircuit(specs[i], opts)
		if err != nil {
			return nil, err
		}
		out = append(out, cr)
	}
	return out, nil
}

// RunCircuit runs the four flows on one circuit.
func RunCircuit(spec ispd.Spec, opts Options) (CircuitResult, error) {
	progress := func(format string, args ...any) {
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, format+"\n", args...)
		}
	}
	reportDegradations := func(label string, r *flow.Result) {
		if r == nil || !r.Degraded() {
			return
		}
		for _, dg := range r.Degradations {
			progress("%s: %s degraded %s", spec.Name, label, dg)
		}
	}
	fresh := func() (*db.Design, error) { return ispd.Generate(spec) }
	ctx := context.Background()

	d, err := fresh()
	if err != nil {
		return CircuitResult{}, err
	}
	cr := CircuitResult{Spec: spec, Stats: d.Stats()}

	progress("%s: baseline (GR+DR, no movement)...", spec.Name)
	cr.Baseline = flow.RunBaseline(ctx, d, opts.Flow)
	reportDegradations("baseline", cr.Baseline)

	progress("%s: state of the art [18] (median ILP)...", spec.Name)
	if d, err = fresh(); err != nil {
		return cr, err
	}
	fcfg := opts.Flow
	fcfg.Baseline.TimeBudget = opts.SOTABudget
	fcfg.Baseline.MaxCells = opts.SOTAMaxCells
	cr.SOTA = flow.RunSOTA(ctx, d, fcfg)
	reportDegradations("[18]", cr.SOTA)

	progress("%s: CR&P k=%d...", spec.Name, opts.K1)
	if d, err = fresh(); err != nil {
		return cr, err
	}
	cr.K1 = flow.RunCRP(ctx, d, opts.K1, opts.Flow)
	reportDegradations(fmt.Sprintf("k=%d", opts.K1), cr.K1)

	progress("%s: CR&P k=%d...", spec.Name, opts.K10)
	if d, err = fresh(); err != nil {
		return cr, err
	}
	cr.K10 = flow.RunCRP(ctx, d, opts.K10, opts.Flow)
	reportDegradations(fmt.Sprintf("k=%d", opts.K10), cr.K10)

	progress("%s: done (baseline vias=%d, k=%d vias=%d)",
		spec.Name, cr.Baseline.Metrics.Vias, opts.K10, cr.K10.Metrics.Vias)
	return cr, nil
}

// Table2 prints the benchmark statistics table (Table II).
func Table2(w io.Writer, scale float64) error {
	fmt.Fprintf(w, "Table II: synthetic benchmark statistics (scale %.3g of the contest sizes)\n", scale)
	fmt.Fprintf(w, "%-12s %8s %8s %8s %6s %6s\n", "Circuit", "#nets", "#cells", "#pins", "util", "node")
	for _, spec := range ispd.Suite(scale) {
		d, err := ispd.Generate(spec)
		if err != nil {
			return err
		}
		st := d.Stats()
		fmt.Fprintf(w, "%-12s %8d %8d %8d %5.1f%% %6s\n",
			spec.Name, st.Nets, st.Cells, st.Pins, st.Utilisation*100, st.Node)
	}
	return nil
}

// improvementOrFailed renders an improvement percentage, or the paper's
// "Failed" marker for budget-exceeded SOTA runs.
func improvementOrFailed(base eval.Metrics, r *flow.Result, metric func(eval.Metrics) float64) string {
	if r.Failed {
		return "Failed"
	}
	b := metric(base)
	if b == 0 {
		return "0.00"
	}
	return fmt.Sprintf("%.2f", (b-metric(r.Metrics))/b*100)
}

// Table3 prints the detailed-routing comparison (Table III): absolute
// baseline numbers and improvement percentages for [18], k=1 and k=10.
func Table3(w io.Writer, results []CircuitResult) {
	wl := func(m eval.Metrics) float64 { return float64(m.WirelengthDBU) }
	vias := func(m eval.Metrics) float64 { return float64(m.Vias) }

	fmt.Fprintln(w, "Table III: detailed routing vs baseline (positive % = improvement)")
	fmt.Fprintf(w, "%-12s | %12s %8s %8s %8s | %5s %5s %5s %5s | %10s %8s %8s %8s\n",
		"Benchmark",
		"WL(um)", "[18]%", "k=1%", "k=10%",
		"DRV", "[18]", "k=1", "k=10",
		"Vias", "[18]%", "k=1%", "k=10%")
	var sumWL18, sumWL1, sumWL10, sumV18, sumV1, sumV10 float64
	n18 := 0
	for _, cr := range results {
		base := cr.Baseline.Metrics
		drv := func(r *flow.Result) string {
			if r.Failed {
				return "Fail"
			}
			return fmt.Sprintf("%d", r.Metrics.DRVs.Total())
		}
		fmt.Fprintf(w, "%-12s | %12.0f %8s %8s %8s | %5d %5s %5s %5s | %10d %8s %8s %8s\n",
			cr.Spec.Name,
			base.WirelengthUM,
			improvementOrFailed(base, cr.SOTA, wl),
			improvementOrFailed(base, cr.K1, wl),
			improvementOrFailed(base, cr.K10, wl),
			base.DRVs.Total(), drv(cr.SOTA), drv(cr.K1), drv(cr.K10),
			base.Vias,
			improvementOrFailed(base, cr.SOTA, vias),
			improvementOrFailed(base, cr.K1, vias),
			improvementOrFailed(base, cr.K10, vias),
		)
		pct := func(b, o float64) float64 {
			if b == 0 {
				return 0
			}
			return (b - o) / b * 100
		}
		if !cr.SOTA.Failed {
			sumWL18 += pct(wl(base), wl(cr.SOTA.Metrics))
			sumV18 += pct(vias(base), vias(cr.SOTA.Metrics))
			n18++
		}
		sumWL1 += pct(wl(base), wl(cr.K1.Metrics))
		sumWL10 += pct(wl(base), wl(cr.K10.Metrics))
		sumV1 += pct(vias(base), vias(cr.K1.Metrics))
		sumV10 += pct(vias(base), vias(cr.K10.Metrics))
	}
	n := float64(len(results))
	if n > 0 {
		avg18wl, avg18v := 0.0, 0.0
		if n18 > 0 {
			avg18wl = sumWL18 / float64(n18)
			avg18v = sumV18 / float64(n18)
		}
		fmt.Fprintf(w, "%-12s | %12s %8.2f %8.2f %8.2f | %5s %5s %5s %5s | %10s %8.2f %8.2f %8.2f\n",
			"Avg", "-",
			avg18wl, sumWL1/n, sumWL10/n,
			"-", "-", "-", "-",
			"-",
			avg18v, sumV1/n, sumV10/n)
	}
}

// Fig2 prints the runtime comparison (Fig. 2).
func Fig2(w io.Writer, results []CircuitResult) {
	fmt.Fprintln(w, "Fig. 2: total flow runtime (seconds)")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "Benchmark", "Baseline", "[18]", "k=1", "k=10")
	for _, cr := range results {
		sota := fmt.Sprintf("%10.2f", cr.SOTA.Timings.Total.Seconds())
		if cr.SOTA.Failed {
			sota = fmt.Sprintf("%10s", "Failed")
		}
		fmt.Fprintf(w, "%-12s %10.2f %s %10.2f %10.2f\n",
			cr.Spec.Name,
			cr.Baseline.Timings.Total.Seconds(),
			sota,
			cr.K1.Timings.Total.Seconds(),
			cr.K10.Timings.Total.Seconds())
	}
}

// Fig3 prints the runtime breakdown of the CR&P k=10 flow (Fig. 3):
// GR (global route), GCP, ECC, UD, Misc (CR&P bookkeeping + selection
// ILP), DR (detailed route), as percentages of the total.
func Fig3(w io.Writer, results []CircuitResult) {
	fmt.Fprintln(w, "Fig. 3: runtime breakdown of CUGR+CR&P(k=10)+DetailedRoute (%)")
	fmt.Fprintf(w, "%-12s %6s %6s %6s %6s %6s %6s\n", "Benchmark", "GR", "GCP", "ECC", "UD", "Misc", "DR")
	for _, cr := range results {
		t := cr.K10.Timings
		ph := t.CRPPhases
		total := t.Total.Seconds()
		if total <= 0 {
			continue
		}
		pct := func(d time.Duration) float64 { return d.Seconds() / total * 100 }
		fmt.Fprintf(w, "%-12s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
			cr.Spec.Name,
			pct(t.GlobalRoute),
			pct(ph.GCP),
			pct(ph.ECC),
			pct(ph.UD),
			pct(ph.Misc()),
			pct(t.DetailRoute))
	}
}
