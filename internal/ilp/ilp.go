// Package ilp is a from-scratch 0/1 integer linear programming solver — the
// repository's substitute for the CPLEX solver the CR&P paper uses. It
// solves
//
//	min  c·y
//	s.t. A·y (<=,>=,=) b,   y ∈ {0,1}^n
//
// by presolve decomposition into independent components followed by
// branch & bound with a dense two-phase simplex LP relaxation per node.
// Both of the paper's models — the ILP-based legalizer (Eq. 11) and the
// candidate-selection ILP (Eq. 12) — are small 0/1 programs, so the solver
// returns certified optima; node and time budgets allow the caller to model
// the scalability failure of the state-of-the-art baseline [18].
package ilp

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// fastScratchPool recycles solver workspaces across Solve calls: the
// legalizer's relocation models are tiny, so the workspace setup cost is a
// large fraction of each solve. Pooling is invisible to results — every
// buffer is (re)initialised before use.
var fastScratchPool = sync.Pool{New: func() any { return &fastScratch{} }}

// VarID identifies a model variable.
type VarID int

// Op is a constraint comparison operator.
type Op uint8

// Constraint operators.
const (
	LE Op = iota // a·y <= b
	GE           // a·y >= b
	EQ           // a·y == b
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "=="
	}
}

// Term is one coefficient of a constraint.
type Term struct {
	Var  VarID
	Coef float64
}

// Constraint is a linear constraint over binary variables.
type Constraint struct {
	Name  string
	Terms []Term
	Op    Op
	RHS   float64
}

// Model is a 0/1 ILP under construction. The zero value is usable.
type Model struct {
	costs []float64
	names []string
	cons  []Constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// Reset empties the model for rebuilding, keeping its capacity. Constraint
// term slices added before the reset are owned by their callers and are not
// touched.
func (m *Model) Reset() {
	m.costs = m.costs[:0]
	m.names = m.names[:0]
	m.cons = m.cons[:0]
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.costs) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddBinary adds a binary variable with the given objective cost and
// returns its ID.
func (m *Model) AddBinary(name string, cost float64) VarID {
	m.costs = append(m.costs, cost)
	m.names = append(m.names, name)
	return VarID(len(m.costs) - 1)
}

// AddConstraint adds a linear constraint. Terms referencing unknown
// variables cause a panic: that is always a bug in the model builder.
func (m *Model) AddConstraint(name string, terms []Term, op Op, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || int(t.Var) >= len(m.costs) {
			panic(fmt.Sprintf("ilp: constraint %q references unknown var %d", name, t.Var))
		}
	}
	m.cons = append(m.cons, Constraint{Name: name, Terms: terms, Op: op, RHS: rhs})
}

// Status is the outcome of a Solve call.
type Status uint8

// Solve outcomes.
const (
	// Optimal means a certified optimal integer solution was found.
	Optimal Status = iota
	// Infeasible means no integer assignment satisfies the constraints.
	Infeasible
	// LimitReached means a node or time budget expired before the search
	// finished. Solution values hold the best incumbent if HasIncumbent.
	// An incumbent is only reported when it covers the whole model: on
	// decomposed models the budget must expire in the final component for
	// the partial searches to add up to a feasible full assignment —
	// otherwise HasIncumbent is false and Values must not be read.
	LimitReached
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "limit-reached"
	}
}

// Options tunes a Solve call. The zero value means: decompose, no limits,
// fast path with presolve, no cache.
type Options struct {
	// MaxNodes caps the total branch & bound nodes across all components;
	// 0 means unlimited. Negative values are rejected by Validate.
	MaxNodes int
	// TimeLimit caps wall-clock time; 0 means unlimited. Negative values
	// are rejected by Validate.
	TimeLimit time.Duration
	// DisableDecomposition solves the model as a single component. Used
	// to mirror monolithic formulations (the baseline [18] model).
	DisableDecomposition bool
	// DisableSolverFastPath routes the solve through the legacy
	// dense-tableau path: no presolve, no sparse simplex, no cache. Kept
	// for differential testing and as an escape hatch.
	DisableSolverFastPath bool
	// DisablePresolve keeps the sparse fast path but skips the presolve
	// reductions; a parity-testing knob.
	DisablePresolve bool
	// Cache, when non-nil, memoises certified solutions keyed by the
	// exact model encoding. It is only consulted on budget-less solves
	// (MaxNodes == 0 and TimeLimit == 0), so budget-dependent outcomes
	// never leak across calls; hits are bit-identical to a cold solve.
	Cache *SolveCache
}

// Validate rejects option values outside their documented domain. Solve
// panics on invalid options — like a malformed constraint, that is always
// a bug in the caller.
func (o Options) Validate() error {
	if o.MaxNodes < 0 {
		return fmt.Errorf("ilp: MaxNodes must be >= 0 (0 means unlimited), got %d", o.MaxNodes)
	}
	if o.TimeLimit < 0 {
		return fmt.Errorf("ilp: TimeLimit must be >= 0 (0 means unlimited), got %v", o.TimeLimit)
	}
	return nil
}

// Solution is the result of a Solve call.
type Solution struct {
	Status       Status
	HasIncumbent bool
	Objective    float64
	Values       []int8 // 0/1 per variable; valid when HasIncumbent
	Nodes        int    // branch & bound nodes expanded
	Components   int    // presolve components solved
}

// Value returns the binary value of v in the solution.
func (s *Solution) Value(v VarID) bool {
	return s.HasIncumbent && s.Values[v] == 1
}

// Solve runs the solver. The model is not modified and may be solved again.
// Invalid Options (see Options.Validate) cause a panic.
func (m *Model) Solve(opt Options) Solution {
	if err := opt.Validate(); err != nil {
		panic(err.Error())
	}
	n := len(m.costs)
	sol := Solution{Values: make([]int8, n)}
	if n == 0 {
		// Constraints with no variables must still hold.
		for _, c := range m.cons {
			if !opHolds(0, c.Op, c.RHS) {
				sol.Status = Infeasible
				return sol
			}
		}
		sol.Status = Optimal
		sol.HasIncumbent = true
		return sol
	}

	var fs *fastScratch
	if !opt.DisableSolverFastPath {
		fs = fastScratchPool.Get().(*fastScratch)
		defer fastScratchPool.Put(fs)
	}

	// The solve cache is consulted only for budget-less solves: budgeted
	// outcomes depend on node order and wall-clock, and must never leak
	// across calls (checkpoint/resume relies on a cold cache producing
	// identical results).
	useCache := opt.Cache != nil && !opt.DisableSolverFastPath &&
		opt.MaxNodes == 0 && opt.TimeLimit == 0
	var key []byte
	var keyHash uint64
	if useCache {
		key = m.appendCacheKey(fs.keyBuf[:0], opt)
		fs.keyBuf = key
		keyHash = fnvHash(key)
		if cached, ok := opt.Cache.lookup(key, keyHash); ok {
			return cached
		}
	}

	var deadline time.Time
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}
	budget := &budget{maxNodes: opt.MaxNodes, deadline: deadline}

	comps := m.components(opt.DisableDecomposition, fs)
	sol.Components = len(comps)
	var lut []int32
	if fs != nil {
		// Stale entries are harmless: each component writes its own vars
		// before any of its constraints read them.
		lut = growI32(&fs.lut, n)
	}
	for ci, comp := range comps {
		var cs compSolution
		if opt.DisableSolverFastPath {
			cs = solveComponent(m, comp, budget)
		} else {
			cs = solveComponentFast(m, comp, lut, budget, opt, fs)
		}
		sol.Nodes = budget.nodes
		switch cs.status {
		case Infeasible:
			sol.Status = Infeasible
			sol.HasIncumbent = false
			if useCache {
				opt.Cache.store(key, keyHash, sol)
			}
			return sol
		case LimitReached:
			sol.Status = LimitReached
			// The incumbent of the limited component completes a feasible
			// full assignment only when every other component has already
			// been solved (earlier components wrote their optima into
			// Values; later ones never ran).
			if cs.values != nil && ci == len(comps)-1 {
				for i, v := range comp.vars {
					sol.Values[v] = cs.values[i]
				}
				sol.Objective += cs.objective
				sol.HasIncumbent = true
			} else {
				sol.HasIncumbent = false
			}
			return sol
		}
		for i, v := range comp.vars {
			sol.Values[v] = cs.values[i]
		}
		sol.Objective += cs.objective
	}
	sol.Status = Optimal
	sol.HasIncumbent = true
	sol.Nodes = budget.nodes
	if useCache {
		opt.Cache.store(key, keyHash, sol)
	}
	return sol
}

func opHolds(lhs float64, op Op, rhs float64) bool {
	switch op {
	case LE:
		return lhs <= rhs+epsFeas
	case GE:
		return lhs >= rhs-epsFeas
	default:
		return math.Abs(lhs-rhs) <= epsFeas
	}
}

// component is an independent sub-model found by presolve.
type component struct {
	vars []VarID // global IDs, sorted
	cons []int   // indices into m.cons
}

// components partitions variables and constraints into connected components
// of the variable/constraint incidence graph, using union-find. Variables
// that appear in no constraint each form a singleton component (solved by
// sign of their cost).
func (m *Model) components(disable bool, fs *fastScratch) []component {
	n := len(m.costs)
	if disable {
		all := component{vars: make([]VarID, n), cons: make([]int, len(m.cons))}
		for i := range all.vars {
			all.vars[i] = VarID(i)
		}
		for i := range all.cons {
			all.cons[i] = i
		}
		return []component{all}
	}
	// The dense path (fs == nil) runs the preserved seed implementation —
	// DisableSolverFastPath documents that contract, and benchreport's
	// "before" column depends on it staying byte-faithful. The fast path
	// gets the allocation-free arena partition below.
	if fs == nil {
		return m.componentsSeed()
	}
	parent := growI32(&fs.ufParent, n)
	idxOf := growI32(&fs.ufIdx, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, c := range m.cons {
		for i := 1; i < len(c.Terms); i++ {
			parent[find(int32(c.Terms[0].Var))] = find(int32(c.Terms[i].Var))
		}
	}
	// Number components in first-seen (ascending variable) order — the same
	// order the old append-per-variable grouping produced.
	for i := range idxOf {
		idxOf[i] = -1
	}
	nc := 0
	for v := 0; v < n; v++ {
		if r := find(int32(v)); idxOf[r] < 0 {
			idxOf[r] = int32(nc)
			nc++
		}
	}
	// Count vars and live cons per component, then carve every comp.vars /
	// comp.cons out of two arenas: the whole partition costs O(n + nnz) and
	// at most three allocations, amortised to zero across pooled solves.
	liveCons := 0
	var cnt []int32
	if fs != nil {
		cnt = growI32(&fs.compCnt, 2*nc)
	} else {
		cnt = make([]int32, 2*nc)
	}
	for i := range cnt {
		cnt[i] = 0
	}
	varCnt, conCnt := cnt[:nc], cnt[nc:]
	for v := 0; v < n; v++ {
		varCnt[idxOf[find(int32(v))]]++
	}
	for _, c := range m.cons {
		if len(c.Terms) > 0 {
			conCnt[idxOf[find(int32(c.Terms[0].Var))]]++
			liveCons++
		}
	}
	varsArena := fs.growVarArena(n)
	consArena := fs.growConArena(liveCons)
	out := fs.growComps(nc)
	vOff, cOff := int32(0), int32(0)
	for ci := 0; ci < nc; ci++ {
		out[ci] = component{
			vars: varsArena[vOff : vOff : vOff+varCnt[ci]],
			cons: consArena[cOff : cOff : cOff+conCnt[ci]],
		}
		vOff += varCnt[ci]
		cOff += conCnt[ci]
	}
	for v := 0; v < n; v++ {
		ci := idxOf[find(int32(v))]
		out[ci].vars = append(out[ci].vars, VarID(v))
	}
	for ci, c := range m.cons {
		if len(c.Terms) == 0 {
			// Variable-free constraint: attach to a synthetic check below.
			continue
		}
		r := find(int32(c.Terms[0].Var))
		out[idxOf[r]].cons = append(out[idxOf[r]].cons, ci)
	}
	// Variable-free constraints are checked once, attached to a dummy
	// component with no vars so infeasibility still surfaces.
	var emptyCons []int
	for ci, c := range m.cons {
		if len(c.Terms) == 0 {
			emptyCons = append(emptyCons, ci)
		}
	}
	if len(emptyCons) > 0 {
		out = append(out, component{cons: emptyCons})
	}
	return out
}

// componentsSeed is the original union-find partition, kept verbatim for
// the dense differential-testing path.
func (m *Model) componentsSeed() []component {
	n := len(m.costs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for _, c := range m.cons {
		for i := 1; i < len(c.Terms); i++ {
			union(int(c.Terms[0].Var), int(c.Terms[i].Var))
		}
	}
	byRoot := map[int]*component{}
	var order []int
	for v := 0; v < n; v++ {
		r := find(v)
		comp, ok := byRoot[r]
		if !ok {
			comp = &component{}
			byRoot[r] = comp
			order = append(order, r)
		}
		comp.vars = append(comp.vars, VarID(v))
	}
	for ci, c := range m.cons {
		if len(c.Terms) == 0 {
			// Variable-free constraint: attach to a synthetic check below.
			continue
		}
		r := find(int(c.Terms[0].Var))
		byRoot[r].cons = append(byRoot[r].cons, ci)
	}
	out := make([]component, 0, len(order))
	for _, r := range order {
		out = append(out, *byRoot[r])
	}
	// Variable-free constraints are checked once, attached to a dummy
	// component with no vars so infeasibility still surfaces.
	var emptyCons []int
	for ci, c := range m.cons {
		if len(c.Terms) == 0 {
			emptyCons = append(emptyCons, ci)
		}
	}
	if len(emptyCons) > 0 {
		out = append(out, component{cons: emptyCons})
	}
	return out
}

// growVarArena, growConArena and growComps hand out capacity-pinned buffers
// for the component partition; all three tolerate a nil receiver (dense
// path) by allocating fresh.
func (fs *fastScratch) growVarArena(n int) []VarID {
	if fs == nil {
		return make([]VarID, n)
	}
	if cap(fs.compVars) < n {
		fs.compVars = make([]VarID, n)
	}
	return fs.compVars[:n]
}

func (fs *fastScratch) growConArena(n int) []int {
	if fs == nil {
		return make([]int, n)
	}
	if cap(fs.compCons) < n {
		fs.compCons = make([]int, n)
	}
	return fs.compCons[:n]
}

func (fs *fastScratch) growComps(n int) []component {
	if fs == nil {
		return make([]component, n)
	}
	if cap(fs.comps) < n {
		fs.comps = make([]component, n)
	}
	return fs.comps[:n]
}

// budget is shared search budget state across components.
type budget struct {
	maxNodes int
	deadline time.Time
	nodes    int
}

func (b *budget) spend() bool {
	b.nodes++
	if b.maxNodes > 0 && b.nodes > b.maxNodes {
		return false
	}
	// Checking the clock every node is cheap relative to an LP solve.
	if !b.deadline.IsZero() && b.nodes%64 == 0 && time.Now().After(b.deadline) {
		return false
	}
	return true
}

func (b *budget) exhausted() bool {
	if b.maxNodes > 0 && b.nodes >= b.maxNodes {
		return true
	}
	return !b.deadline.IsZero() && time.Now().After(b.deadline)
}

type compSolution struct {
	status    Status
	values    []int8
	objective float64
}

// bbNode is one branch & bound search node: a partial 0/1 fixing.
type bbNode struct {
	fixed []int8 // -1 free, 0, 1 per local var
	bound float64
}

// nodeHeap is a min-heap on LP bound (best-first search).
type nodeHeap []*bbNode

func (h nodeHeap) less(i, j int) bool { return h[i].bound < h[j].bound }

func (h *nodeHeap) push(n *bbNode) {
	*h = append(*h, n)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *nodeHeap) pop() *bbNode {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && (*h)[l].bound < (*h)[s].bound {
			s = l
		}
		if r < last && (*h)[r].bound < (*h)[s].bound {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// solveComponent runs best-first branch & bound on one component.
func solveComponent(m *Model, comp component, bud *budget) compSolution {
	nv := len(comp.vars)
	local := make(map[VarID]int, nv)
	for i, v := range comp.vars {
		local[v] = i
	}
	costs := make([]float64, nv)
	for i, v := range comp.vars {
		costs[i] = m.costs[v]
	}

	// No variables: just check the attached constant constraints.
	if nv == 0 {
		for _, ci := range comp.cons {
			if !opHolds(0, m.cons[ci].Op, m.cons[ci].RHS) {
				return compSolution{status: Infeasible}
			}
		}
		return compSolution{status: Optimal}
	}

	relax := func(fixed []int8) (lpStatus, []float64, float64) {
		return relaxLP(m, comp, local, costs, fixed)
	}

	var best *compSolution
	// limited reports budget exhaustion, carrying the best incumbent found
	// so far (values non-nil) so callers can degrade gracefully instead of
	// discarding the whole search.
	limited := func() compSolution {
		if best != nil {
			return compSolution{status: LimitReached, values: best.values, objective: best.objective}
		}
		return compSolution{status: LimitReached}
	}

	root := &bbNode{fixed: make([]int8, nv)}
	for i := range root.fixed {
		root.fixed[i] = -1
	}
	st, x, obj := relax(root.fixed)
	if !bud.spend() {
		return limited()
	}
	switch st {
	case lpInfeasible:
		return compSolution{status: Infeasible}
	case lpUnbounded:
		// Cannot happen with 0<=x<=1 bounds; defensive.
		return compSolution{status: Infeasible}
	}
	root.bound = obj

	consider := func(x []float64, obj float64) {
		vals := make([]int8, nv)
		for i, v := range x {
			if v > 0.5 {
				vals[i] = 1
			}
		}
		if best == nil || obj < best.objective-1e-12 {
			best = &compSolution{status: Optimal, values: vals, objective: obj}
		}
	}
	if frac := mostFractional(x); frac < 0 {
		consider(x, obj)
		return *best
	}

	heap := nodeHeap{}
	heap.push(root)
	for len(heap) > 0 {
		node := heap.pop()
		if best != nil && node.bound >= best.objective-1e-9 {
			continue // pruned by incumbent
		}
		st, x, obj := relax(node.fixed)
		if !bud.spend() {
			return limited()
		}
		if st != lpOptimal {
			continue
		}
		if best != nil && obj >= best.objective-1e-9 {
			continue
		}
		branch := mostFractional(x)
		if branch < 0 {
			consider(x, obj)
			continue
		}
		for _, val := range [2]int8{0, 1} {
			child := &bbNode{fixed: append([]int8(nil), node.fixed...), bound: obj}
			child.fixed[branch] = val
			heap.push(child)
		}
	}
	if best == nil {
		return compSolution{status: Infeasible}
	}
	return *best
}

// mostFractional returns the index of the variable farthest from integer,
// or -1 when all values are integral.
func mostFractional(x []float64) int {
	best, idx := 1e-6, -1
	for i, v := range x {
		f := math.Abs(v - math.Round(v))
		if f > best {
			best = f
			idx = i
		}
	}
	return idx
}

// relaxLP builds and solves the LP relaxation of a component under the
// node's partial fixing. Fixed variables are folded into constraint RHS.
func relaxLP(m *Model, comp component, local map[VarID]int, costs []float64, fixed []int8) (lpStatus, []float64, float64) {
	nv := len(comp.vars)
	freeIdx := make([]int, 0, nv) // local indices of free vars
	colOf := make([]int, nv)
	for i := range colOf {
		colOf[i] = -1
	}
	fixedCost := 0.0
	for i := 0; i < nv; i++ {
		switch fixed[i] {
		case -1:
			colOf[i] = len(freeIdx)
			freeIdx = append(freeIdx, i)
		case 1:
			fixedCost += costs[i]
		}
	}
	nf := len(freeIdx)
	p := &lpProblem{n: nf, c: make([]float64, nf)}
	for col, i := range freeIdx {
		p.c[col] = costs[i]
	}
	for _, ci := range comp.cons {
		c := m.cons[ci]
		a := make([]float64, nf)
		rhs := c.RHS
		hasFree := false
		for _, t := range c.Terms {
			li := local[t.Var]
			switch fixed[li] {
			case -1:
				a[colOf[li]] += t.Coef
				hasFree = true
			case 1:
				rhs -= t.Coef
			}
		}
		if !hasFree {
			if !opHolds(0, c.Op, rhs) {
				return lpInfeasible, nil, 0
			}
			continue
		}
		p.rows = append(p.rows, lpRow{a: a, op: c.Op, b: rhs})
	}
	// Upper bounds x <= 1 per free variable — except where an equality
	// constraint with unit coefficients and RHS <= 1 already implies the
	// bound (the ubiquitous "pick exactly one" rows), which keeps the
	// tableau small on assignment-shaped models.
	implied := make([]bool, nf)
	for _, ci := range comp.cons {
		c := m.cons[ci]
		if c.Op != EQ || c.RHS > 1+epsFeas {
			continue
		}
		allUnitNonneg := true
		for _, t := range c.Terms {
			if t.Coef < 0 {
				allUnitNonneg = false
				break
			}
		}
		if !allUnitNonneg {
			continue
		}
		for _, t := range c.Terms {
			if t.Coef >= 1-epsFeas {
				if li := local[t.Var]; fixed[li] == -1 {
					implied[colOf[li]] = true
				}
			}
		}
	}
	for col := 0; col < nf; col++ {
		if implied[col] {
			continue
		}
		a := make([]float64, nf)
		a[col] = 1
		p.rows = append(p.rows, lpRow{a: a, op: LE, b: 1})
	}
	st, xf, obj := p.solve()
	if st != lpOptimal {
		return st, nil, 0
	}
	x := make([]float64, nv)
	for i := 0; i < nv; i++ {
		switch fixed[i] {
		case -1:
			x[i] = xf[colOf[i]]
		case 1:
			x[i] = 1
		}
	}
	return lpOptimal, x, obj + fixedCost
}

// SortedVarsByName returns variable IDs sorted by name; a debugging aid for
// deterministic model dumps.
func (m *Model) SortedVarsByName() []VarID {
	ids := make([]VarID, len(m.names))
	for i := range ids {
		ids[i] = VarID(i)
	}
	sort.Slice(ids, func(a, b int) bool { return m.names[ids[a]] < m.names[ids[b]] })
	return ids
}

// VarName returns the name a variable was created with.
func (m *Model) VarName(v VarID) string { return m.names[v] }
