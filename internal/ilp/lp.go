package ilp

import "math"

// This file implements a dense two-phase primal simplex used as the
// relaxation solver inside branch & bound. Problems reaching it are the
// small per-component LPs produced by presolve decomposition, so a dense
// tableau with Bland's anti-cycling rule is both simple and fast enough.

const (
	epsPivot    = 1e-9 // smallest pivot magnitude accepted
	epsFeas     = 1e-7 // feasibility / reduced-cost tolerance
	epsArtifact = 1e-6 // phase-1 objective above this => infeasible
)

type lpStatus uint8

const (
	lpOptimal lpStatus = iota
	lpInfeasible
	lpUnbounded
)

// lpRow is one constraint a·x (op) b over the structural variables.
type lpRow struct {
	a  []float64
	op Op
	b  float64
}

// lpProblem is min c·x subject to rows and x >= 0. Upper bounds on
// variables must be encoded as rows by the caller.
type lpProblem struct {
	n    int // structural variables
	c    []float64
	rows []lpRow
}

// solve runs two-phase simplex. On lpOptimal it returns the optimal x
// (length n) and objective value.
func (p *lpProblem) solve() (lpStatus, []float64, float64) {
	m := len(p.rows)
	if m == 0 {
		// Unconstrained over x >= 0: minimum is at 0 unless some cost is
		// negative, in which case the LP is unbounded.
		x := make([]float64, p.n)
		for _, cj := range p.c {
			if cj < -epsFeas {
				return lpUnbounded, nil, 0
			}
		}
		return lpOptimal, x, 0
	}

	// Column layout: [0,n) structural, [n, n+numSlack) slack/surplus,
	// then artificials, then RHS last.
	numSlack := 0
	numArt := 0
	for _, r := range p.rows {
		b := r.b
		op := r.op
		// Normalise to b >= 0 by negating the row when needed.
		if b < 0 {
			op = flip(op)
		}
		switch op {
		case LE:
			numSlack++ // slack starts basic
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	cols := p.n + numSlack + numArt
	width := cols + 1 // + RHS

	tab := make([][]float64, m)
	basis := make([]int, m)
	slackAt := p.n
	artAt := p.n + numSlack
	artCols := make([]int, 0, numArt)

	for i, r := range p.rows {
		row := make([]float64, width)
		sign := 1.0
		op := r.op
		b := r.b
		if b < 0 {
			sign = -1
			b = -b
			op = flip(op)
		}
		for j := 0; j < p.n && j < len(r.a); j++ {
			row[j] = sign * r.a[j]
		}
		row[cols] = b
		switch op {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
		tab[i] = row
	}

	// Phase 1: minimise the sum of artificials.
	if numArt > 0 {
		obj := make([]float64, width)
		for _, j := range artCols {
			obj[j] = 1
		}
		// Price out the basic artificials.
		for i, bi := range basis {
			if obj[bi] != 0 {
				addScaled(obj, tab[i], -obj[bi])
			}
		}
		if st := runSimplex(tab, basis, obj, cols); st == lpUnbounded {
			// Phase 1 objective is bounded below by 0; unbounded here
			// means numeric trouble, treat as infeasible.
			return lpInfeasible, nil, 0
		}
		if -obj[cols] > epsArtifact {
			return lpInfeasible, nil, 0
		}
		// Drive any artificial still in the basis out of it (degenerate
		// at zero); if a row has no eligible pivot it is redundant.
		for i, bi := range basis {
			if !isArt(bi, p.n+numSlack) {
				continue
			}
			pivoted := false
			for j := 0; j < p.n+numSlack; j++ {
				if math.Abs(tab[i][j]) > epsPivot {
					pivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it so it can't interfere.
				for j := range tab[i] {
					tab[i][j] = 0
				}
				basis[i] = -1
			}
		}
	}

	// Phase 2: original objective, artificial columns frozen at zero.
	obj := make([]float64, width)
	copy(obj, p.c)
	for i, bi := range basis {
		if bi >= 0 && obj[bi] != 0 {
			addScaled(obj, tab[i], -obj[bi])
		}
	}
	// Restrict pricing to structural+slack columns.
	if st := runSimplex(tab, basis, obj, p.n+numSlack); st == lpUnbounded {
		return lpUnbounded, nil, 0
	}

	x := make([]float64, p.n)
	for i, bi := range basis {
		if bi >= 0 && bi < p.n {
			x[bi] = tab[i][cols]
		}
	}
	objVal := 0.0
	for j := 0; j < p.n; j++ {
		objVal += p.c[j] * x[j]
	}
	return lpOptimal, x, objVal
}

func isArt(col, firstArt int) bool { return col >= firstArt }

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

func addScaled(dst, src []float64, k float64) {
	for j := range dst {
		dst[j] += k * src[j]
	}
}

// runSimplex performs primal simplex iterations on the tableau, pricing only
// columns < priceCols. The objective row is updated in place; its RHS entry
// holds the negated objective value. Bland's rule guarantees termination.
func runSimplex(tab [][]float64, basis []int, obj []float64, priceCols int) lpStatus {
	rhs := len(obj) - 1
	for iter := 0; ; iter++ {
		// Entering column: Bland — smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < priceCols; j++ {
			if obj[j] < -epsFeas {
				enter = j
				break
			}
		}
		if enter < 0 {
			return lpOptimal
		}
		// Leaving row: min ratio, ties by smallest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := range tab {
			if basis[i] < 0 {
				continue
			}
			a := tab[i][enter]
			if a > epsPivot {
				ratio := tab[i][rhs] / a
				if ratio < best-epsFeas || (ratio < best+epsFeas && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return lpUnbounded
		}
		pivot(tab, basis, leave, enter)
		addScaled(obj, tab[leave], -obj[enter])
	}
}

// pivot makes column enter basic in row leave.
func pivot(tab [][]float64, basis []int, leave, enter int) {
	prow := tab[leave]
	inv := 1 / prow[enter]
	for j := range prow {
		prow[j] *= inv
	}
	prow[enter] = 1 // cancel rounding
	for i := range tab {
		if i == leave {
			continue
		}
		k := tab[i][enter]
		if k != 0 {
			addScaled(tab[i], prow, -k)
			tab[i][enter] = 0
		}
	}
	basis[leave] = enter
}
