package ilp

// This file is the fast-path component solver: presolve reductions, then
// best-first branch & bound over the reduced model with the sparse
// bounded-variable simplex as relaxation kernel. Search order, branching
// rule, incumbent acceptance and budget accounting deliberately mirror
// solveComponent in ilp.go so both paths walk the same tree shape; only the
// per-node LP machinery and the presolve shrinkage differ.

// fastScratch bundles the buffers reused across nodes and components of one
// Solve call. Instances are pooled across Solve calls (see fastScratchPool
// in ilp.go): the legalizer solves thousands of tiny relocation models, and
// the fixed setup allocations dominated those solves.
type fastScratch struct {
	sp       spScratch
	rows     []spRow
	idxArena []int32
	aArena   []float64
	colOf    []int32
	c        []float64
	x        []float64

	// Per-Solve buffers (reused across components).
	lut      []int32
	keyBuf   []byte
	pre      preModel
	ufParent []int32
	ufIdx    []int32
	compCnt  []int32
	compVars []VarID
	compCons []int
	comps    []component

	// Per-component buffers.
	preCosts  []float64
	preFixed  []int8
	preRows   []preRow
	preIdx    []int32
	preA      []float64
	freeOf    []int32
	freeVars  []int32
	costs     []float64
	baseRows  []spRow
	baseIdx   []int32
	baseA     []float64
	rootFixed []int8
}

func solveComponentFast(m *Model, comp component, lut []int32, bud *budget, opt Options, fs *fastScratch) compSolution {
	nv := len(comp.vars)
	if nv == 0 {
		for _, ci := range comp.cons {
			if !opHolds(0, m.cons[ci].Op, m.cons[ci].RHS) {
				return compSolution{status: Infeasible}
			}
		}
		return compSolution{status: Optimal}
	}
	for i, v := range comp.vars {
		lut[v] = int32(i)
	}

	pm := newPreModel(m, comp, lut, fs)
	if !opt.DisablePresolve {
		pm.run()
		if pm.infeasible {
			return compSolution{status: Infeasible}
		}
	}

	// Reindex the surviving free variables densely.
	freeOf := growI32(&fs.freeOf, nv)
	freeVars := fs.freeVars[:0]
	for i := range pm.fixed {
		if pm.fixed[i] < 0 {
			freeOf[i] = int32(len(freeVars))
			freeVars = append(freeVars, int32(i))
		} else {
			freeOf[i] = -1
		}
	}
	fs.freeVars = freeVars[:0]
	nf := len(freeVars)

	// Base rows over free indices; still-fixed terms fold into the RHS.
	// Arena-backed like the node rows in relaxSparse: capacity is pinned to
	// the live nnz so appends never reallocate and subslices stay valid.
	nnzCap := 0
	for ri := range pm.rows {
		if !pm.rows[ri].dead {
			nnzCap += len(pm.rows[ri].idx)
		}
	}
	if cap(fs.baseIdx) < nnzCap {
		fs.baseIdx = make([]int32, 0, nnzCap)
	}
	if cap(fs.baseA) < nnzCap {
		fs.baseA = make([]float64, 0, nnzCap)
	}
	baseIdx, baseA := fs.baseIdx[:0], fs.baseA[:0]
	base := fs.baseRows[:0]
	nnzBase := 0
	for ri := range pm.rows {
		r := &pm.rows[ri]
		if r.dead {
			continue
		}
		row := spRow{op: r.op, b: r.b}
		start := len(baseIdx)
		for k := range r.idx {
			j := r.idx[k]
			if v := pm.fixed[j]; v >= 0 {
				row.b -= r.a[k] * float64(v)
				continue
			}
			baseIdx = append(baseIdx, freeOf[j])
			baseA = append(baseA, r.a[k])
		}
		row.idx, row.a = baseIdx[start:], baseA[start:]
		if len(row.idx) == 0 {
			if !opHolds(0, row.op, row.b) {
				return compSolution{status: Infeasible}
			}
			continue
		}
		nnzBase += len(row.idx)
		base = append(base, row)
	}
	fs.baseRows = base[:0]

	// assemble expands a free-variable assignment back over the component.
	assemble := func(freeVals []int8) []int8 {
		vals := make([]int8, nv)
		for i := range pm.fixed {
			if pm.fixed[i] > 0 {
				vals[i] = 1
			}
		}
		for f, i := range freeVars {
			if freeVals[f] == 1 {
				vals[i] = 1
			}
		}
		return vals
	}

	if nf == 0 {
		return compSolution{status: Optimal, values: assemble(nil), objective: pm.fixedCost}
	}

	costs := growF(&fs.costs, nf)
	for f, i := range freeVars {
		costs[f] = pm.costs[i]
	}

	relax := func(fixed []int8) (lpStatus, []float64, float64) {
		return relaxSparse(base, costs, fixed, fs, nnzBase)
	}

	// Best-first branch & bound; objectives below exclude pm.fixedCost,
	// which is added back on every exit path.
	var best *compSolution
	limited := func() compSolution {
		if best != nil {
			return compSolution{status: LimitReached, values: best.values, objective: best.objective + pm.fixedCost}
		}
		return compSolution{status: LimitReached}
	}

	root := &bbNode{fixed: growI8(&fs.rootFixed, nf)}
	for i := range root.fixed {
		root.fixed[i] = -1
	}
	st, x, obj := relax(root.fixed)
	if !bud.spend() {
		return limited()
	}
	switch st {
	case lpInfeasible:
		return compSolution{status: Infeasible}
	case lpUnbounded:
		// Cannot happen with bounded variables; defensive.
		return compSolution{status: Infeasible}
	}
	root.bound = obj

	consider := func(x []float64, obj float64) {
		fv := make([]int8, nf)
		for i, v := range x {
			if v > 0.5 {
				fv[i] = 1
			}
		}
		if best == nil || obj < best.objective-1e-12 {
			best = &compSolution{status: Optimal, values: assemble(fv), objective: obj}
		}
	}
	if frac := mostFractional(x); frac < 0 {
		consider(x, obj)
		out := *best
		out.objective += pm.fixedCost
		return out
	}

	heap := nodeHeap{}
	heap.push(root)
	for len(heap) > 0 {
		node := heap.pop()
		if best != nil && node.bound >= best.objective-1e-9 {
			continue // pruned by incumbent
		}
		st, x, obj := relax(node.fixed)
		if !bud.spend() {
			return limited()
		}
		if st != lpOptimal {
			continue
		}
		if best != nil && obj >= best.objective-1e-9 {
			continue
		}
		branch := mostFractional(x)
		if branch < 0 {
			consider(x, obj)
			continue
		}
		for _, val := range [2]int8{0, 1} {
			child := &bbNode{fixed: append([]int8(nil), node.fixed...), bound: obj}
			child.fixed[branch] = val
			heap.push(child)
		}
	}
	if best == nil {
		return compSolution{status: Infeasible}
	}
	out := *best
	out.objective += pm.fixedCost
	return out
}

// relaxSparse solves the LP relaxation of the reduced component under a
// node's partial fixing: node-fixed variables are folded into row RHS, the
// remaining columns are renumbered densely, and the bounded simplex runs on
// the shrunken problem. A numeric bail-out retries on the dense tableau so
// the fast path never changes feasibility outcomes.
func relaxSparse(base []spRow, costs []float64, fixed []int8, fs *fastScratch, nnzBase int) (lpStatus, []float64, float64) {
	nf := len(costs)
	colOf := growI32(&fs.colOf, nf)
	ncol := 0
	fixedCost := 0.0
	for i := 0; i < nf; i++ {
		switch fixed[i] {
		case -1:
			colOf[i] = int32(ncol)
			ncol++
		case 1:
			fixedCost += costs[i]
			colOf[i] = -1
		default:
			colOf[i] = -1
		}
	}
	c := growF(&fs.c, ncol)
	for i := 0; i < nf; i++ {
		if colOf[i] >= 0 {
			c[colOf[i]] = costs[i]
		}
	}
	// Arena-backed row storage: capacities are pinned to the base nnz so
	// appends never reallocate and row subslices stay valid.
	if cap(fs.idxArena) < nnzBase {
		fs.idxArena = make([]int32, 0, nnzBase)
	}
	if cap(fs.aArena) < nnzBase {
		fs.aArena = make([]float64, 0, nnzBase)
	}
	idxA := fs.idxArena[:0]
	aA := fs.aArena[:0]
	rows := fs.rows[:0]
	for ri := range base {
		r := &base[ri]
		start := len(idxA)
		rhs := r.b
		for k, j := range r.idx {
			switch fixed[j] {
			case -1:
				idxA = append(idxA, colOf[j])
				aA = append(aA, r.a[k])
			case 1:
				rhs -= r.a[k]
			}
		}
		if len(idxA) == start {
			if !opHolds(0, r.op, rhs) {
				return lpInfeasible, nil, 0
			}
			continue
		}
		rows = append(rows, spRow{idx: idxA[start:], a: aA[start:], op: r.op, b: rhs})
	}
	fs.rows = rows[:0]

	p := spProblem{n: ncol, c: c, rows: rows}
	st, xr, obj := p.solveBounded(&fs.sp)
	if st == lpNumeric {
		st, xr, obj = denseFallback(ncol, c, rows)
	}
	if st != lpOptimal {
		return st, nil, 0
	}
	x := growF(&fs.x, nf)
	for i := 0; i < nf; i++ {
		switch fixed[i] {
		case -1:
			x[i] = xr[colOf[i]]
		case 1:
			x[i] = 1
		default:
			x[i] = 0
		}
	}
	return lpOptimal, x, obj + fixedCost
}

// denseFallback rebuilds the node LP for the dense tableau, with explicit
// x <= 1 rows, and solves it there.
func denseFallback(n int, c []float64, rows []spRow) (lpStatus, []float64, float64) {
	p := &lpProblem{n: n, c: append([]float64(nil), c...)}
	for ri := range rows {
		r := &rows[ri]
		a := make([]float64, n)
		for k, j := range r.idx {
			a[j] += r.a[k]
		}
		p.rows = append(p.rows, lpRow{a: a, op: r.op, b: r.b})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		p.rows = append(p.rows, lpRow{a: a, op: LE, b: 1})
	}
	return p.solve()
}
