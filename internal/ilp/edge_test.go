package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// Duplicate terms on the same variable within a constraint must accumulate.
func TestDuplicateTermsAccumulate(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", -1)
	// 0.6a + 0.6a <= 1  →  1.2a <= 1  →  a must be 0.
	m.AddConstraint("dup", []Term{{a, 0.6}, {a, 0.6}}, LE, 1)
	sol := m.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Value(a) {
		t.Error("1.2a <= 1 should force a=0")
	}
}

// Negative RHS rows exercise the row-negation path of the simplex setup.
func TestNegativeRHS(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", 1)
	b := m.AddBinary("b", 1)
	// -a - b <= -1  ⇔  a + b >= 1.
	m.AddConstraint("neg", []Term{{a, -1}, {b, -1}}, LE, -1)
	sol := m.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Objective != 1 {
		t.Errorf("objective %v, want 1 (exactly one of a,b)", sol.Objective)
	}
}

// Zero-coefficient terms are harmless.
func TestZeroCoefficients(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", -1)
	b := m.AddBinary("b", -1)
	m.AddConstraint("z", []Term{{a, 0}, {b, 1}}, LE, 0)
	sol := m.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.Value(a) || sol.Value(b) {
		t.Errorf("want a=1 (free), b=0 (constrained): %v", sol.Values)
	}
}

// Equality chains force specific totals; checks artificial-variable
// handling in phase 1 with several equality rows at once.
func TestEqualityChain(t *testing.T) {
	m := NewModel()
	vars := make([]VarID, 6)
	for i := range vars {
		vars[i] = m.AddBinary("", float64(i))
	}
	m.AddConstraint("eq1", []Term{{vars[0], 1}, {vars[1], 1}}, EQ, 1)
	m.AddConstraint("eq2", []Term{{vars[2], 1}, {vars[3], 1}}, EQ, 1)
	m.AddConstraint("eq3", []Term{{vars[4], 1}, {vars[5], 1}}, EQ, 2)
	sol := m.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Cheapest: vars[0] (0), vars[2] (2), vars[4]+vars[5] (4+5).
	if want := 0.0 + 2 + 4 + 5; math.Abs(sol.Objective-want) > 1e-9 {
		t.Errorf("objective %v, want %v", sol.Objective, want)
	}
}

// Redundant equality rows (linearly dependent) must not break phase 1's
// artificial-elimination step.
func TestRedundantEqualities(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", 1)
	b := m.AddBinary("b", 2)
	m.AddConstraint("e1", []Term{{a, 1}, {b, 1}}, EQ, 1)
	m.AddConstraint("e2", []Term{{a, 2}, {b, 2}}, EQ, 2) // 2x the first
	sol := m.Solve(Options{})
	if sol.Status != Optimal || sol.Objective != 1 {
		t.Errorf("sol = %+v", sol)
	}
}

// Contradictory equalities are infeasible.
func TestContradictoryEqualities(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", 1)
	m.AddConstraint("e1", []Term{{a, 1}}, EQ, 1)
	m.AddConstraint("e2", []Term{{a, 1}}, EQ, 0)
	if sol := m.Solve(Options{}); sol.Status != Infeasible {
		t.Errorf("status %v, want infeasible", sol.Status)
	}
}

// Fractional coefficients with tight constraints force deep branching;
// cross-check against brute force on slightly larger models than the main
// random test uses.
func TestFractionalDeepBranching(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 12 + rng.Intn(4)
		m := NewModel()
		var terms []Term
		for v := 0; v < n; v++ {
			m.AddBinary("", -(0.5 + rng.Float64()))
			terms = append(terms, Term{VarID(v), 0.3 + rng.Float64()})
		}
		m.AddConstraint("knap", terms, LE, float64(n)/4)
		sol := m.Solve(Options{})
		feas, bf, _ := bruteForce(m)
		if !feas {
			t.Fatalf("trial %d: knapsack cannot be infeasible", trial)
		}
		if sol.Status != Optimal || math.Abs(sol.Objective-bf) > 1e-6 {
			t.Fatalf("trial %d: solver %v/%v, brute force %v", trial, sol.Status, sol.Objective, bf)
		}
	}
}

// GE constraints that force variables on, combined with conflicting LE
// rows, hit both slack directions at once.
func TestMixedDirections(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", 5)
	b := m.AddBinary("b", 3)
	c := m.AddBinary("c", 4)
	m.AddConstraint("ge", []Term{{a, 1}, {b, 1}, {c, 1}}, GE, 2)
	m.AddConstraint("le", []Term{{b, 1}, {c, 1}}, LE, 1)
	// Must pick a plus the cheaper of b,c: 5 + 3.
	sol := m.Solve(Options{})
	if sol.Status != Optimal || sol.Objective != 8 {
		t.Errorf("sol = %+v, want objective 8", sol)
	}
	if !sol.Value(a) || !sol.Value(b) || sol.Value(c) {
		t.Errorf("values = %v", sol.Values)
	}
}

// The solution must be reusable: solving twice gives identical results
// (the model is not mutated by Solve).
func TestSolveIsRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	m := NewModel()
	var terms []Term
	for v := 0; v < 10; v++ {
		m.AddBinary("", float64(rng.Intn(10)-5))
		terms = append(terms, Term{VarID(v), float64(rng.Intn(5))})
	}
	m.AddConstraint("", terms, LE, 7)
	s1 := m.Solve(Options{})
	s2 := m.Solve(Options{})
	if s1.Status != s2.Status || s1.Objective != s2.Objective {
		t.Errorf("repeat solve diverged: %+v vs %+v", s1, s2)
	}
	for i := range s1.Values {
		if s1.Values[i] != s2.Values[i] {
			t.Fatalf("value %d differs across solves", i)
		}
	}
}
