package ilp

import (
	"fmt"
	"io"
)

// WriteLP dumps the model in CPLEX LP file format, so models built by the
// legalizer or the selection step can be inspected, diffed in tests, or fed
// to an external solver for cross-checking. Variables without names are
// emitted as x<i>.
func (m *Model) WriteLP(w io.Writer) error {
	ew := &lpWriter{w: w}
	ew.printf("Minimize\n obj:")
	first := true
	for i, c := range m.costs {
		if c == 0 {
			continue
		}
		ew.term(&first, c, m.varName(i))
	}
	if first {
		ew.printf(" 0 x0")
	}
	ew.printf("\nSubject To\n")
	for ci, con := range m.cons {
		name := con.Name
		if name == "" {
			name = fmt.Sprintf("c%d", ci)
		}
		ew.printf(" %s_%d:", sanitize(name), ci)
		firstT := true
		for _, t := range con.Terms {
			ew.term(&firstT, t.Coef, m.varName(int(t.Var)))
		}
		if firstT {
			ew.printf(" 0 %s", m.varName(0))
		}
		ew.printf(" %s %g\n", con.Op.lpSymbol(), con.RHS)
	}
	ew.printf("Binaries\n")
	for i := range m.costs {
		ew.printf(" %s", m.varName(i))
	}
	ew.printf("\nEnd\n")
	return ew.err
}

func (m *Model) varName(i int) string {
	if i < len(m.names) && m.names[i] != "" {
		return sanitize(m.names[i])
	}
	return fmt.Sprintf("x%d", i)
}

func (o Op) lpSymbol() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// sanitize replaces characters the LP format rejects.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

type lpWriter struct {
	w   io.Writer
	err error
}

func (e *lpWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// term emits one signed linear term.
func (e *lpWriter) term(first *bool, coef float64, name string) {
	if coef == 0 {
		return
	}
	if *first {
		*first = false
		e.printf(" %g %s", coef, name)
		return
	}
	if coef >= 0 {
		e.printf(" + %g %s", coef, name)
	} else {
		e.printf(" - %g %s", -coef, name)
	}
}
