package ilp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteLP dumps the model in CPLEX LP file format, so models built by the
// legalizer or the selection step can be inspected, diffed in tests, or fed
// to an external solver for cross-checking. Variables without names are
// emitted as x<i>.
func (m *Model) WriteLP(w io.Writer) error {
	ew := &lpWriter{w: w}
	ew.printf("Minimize\n obj:")
	first := true
	for i, c := range m.costs {
		if c == 0 {
			continue
		}
		ew.term(&first, c, m.varName(i))
	}
	if first {
		ew.printf(" 0 x0")
	}
	ew.printf("\nSubject To\n")
	for ci, con := range m.cons {
		name := con.Name
		if name == "" {
			name = fmt.Sprintf("c%d", ci)
		}
		ew.printf(" %s_%d:", sanitize(name), ci)
		firstT := true
		for _, t := range con.Terms {
			ew.term(&firstT, t.Coef, m.varName(int(t.Var)))
		}
		if firstT {
			ew.printf(" 0 %s", m.varName(0))
		}
		ew.printf(" %s %g\n", con.Op.lpSymbol(), con.RHS)
	}
	ew.printf("Binaries\n")
	for i := range m.costs {
		ew.printf(" %s", m.varName(i))
	}
	ew.printf("\nEnd\n")
	return ew.err
}

// WriteLPCanonical dumps the model in a fully order-normalised LP form:
// objective terms and the Binaries section are sorted by variable name,
// constraint terms are sorted by variable name within each row, and the
// rows themselves are sorted lexicographically by their rendered text. Two
// models that differ only in construction order — e.g. the same legalizer
// window built by two differently-scheduled workers — produce identical
// bytes, which makes the output diffable in tests.
func (m *Model) WriteLPCanonical(w io.Writer) error {
	ew := &lpWriter{w: w}
	byName := m.SortedVarsByName()
	ew.printf("Minimize\n obj:")
	first := true
	for _, v := range byName {
		if c := m.costs[v]; c != 0 {
			ew.term(&first, c, m.varName(int(v)))
		}
	}
	if first {
		ew.printf(" 0 x0")
	}
	ew.printf("\nSubject To\n")
	lines := make([]string, 0, len(m.cons))
	for _, con := range m.cons {
		var sb strings.Builder
		lw := &lpWriter{w: &sb}
		terms := append([]Term(nil), con.Terms...)
		sort.Slice(terms, func(a, b int) bool {
			na, nb := m.varName(int(terms[a].Var)), m.varName(int(terms[b].Var))
			if na != nb {
				return na < nb
			}
			return terms[a].Var < terms[b].Var
		})
		firstT := true
		for _, t := range terms {
			lw.term(&firstT, t.Coef, m.varName(int(t.Var)))
		}
		if firstT {
			lw.printf(" 0 %s", m.varName(0))
		}
		lw.printf(" %s %g", con.Op.lpSymbol(), con.RHS)
		name := con.Name
		if name == "" {
			name = "c"
		}
		lines = append(lines, fmt.Sprintf(" %s:%s\n", sanitize(name), sb.String()))
	}
	sort.Strings(lines)
	for _, ln := range lines {
		ew.printf("%s", ln)
	}
	ew.printf("Binaries\n")
	for _, v := range byName {
		ew.printf(" %s", m.varName(int(v)))
	}
	ew.printf("\nEnd\n")
	return ew.err
}

func (m *Model) varName(i int) string {
	if i < len(m.names) && m.names[i] != "" {
		return sanitize(m.names[i])
	}
	return fmt.Sprintf("x%d", i)
}

func (o Op) lpSymbol() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// sanitize replaces characters the LP format rejects.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

type lpWriter struct {
	w   io.Writer
	err error
}

func (e *lpWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// term emits one signed linear term.
func (e *lpWriter) term(first *bool, coef float64, name string) {
	if coef == 0 {
		return
	}
	if *first {
		*first = false
		e.printf(" %g %s", coef, name)
		return
	}
	if coef >= 0 {
		e.printf(" + %g %s", coef, name)
	} else {
		e.printf(" - %g %s", -coef, name)
	}
}
