package ilp

import (
	"math/rand"
	"testing"
)

// oddCycleModel builds a single-component packing model whose LP relaxation
// is fractional everywhere (odd cycle of pairwise exclusions), forcing real
// branch & bound work: maximise the number of selected vars subject to
// x_i + x_{i+1} <= 1 around a cycle of length n (n odd).
func oddCycleModel(n int) *Model {
	m := NewModel()
	vars := make([]VarID, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddBinary("", -1) // minimise => prefer selecting
	}
	for i := 0; i < n; i++ {
		m.AddConstraint("edge", []Term{
			{Var: vars[i], Coef: 1},
			{Var: vars[(i+1)%n], Coef: 1},
		}, LE, 1)
	}
	return m
}

func checkFeasible(t *testing.T, m *Model, sol Solution) {
	t.Helper()
	for _, c := range m.cons {
		lhs := 0.0
		for _, tm := range c.Terms {
			if sol.Values[tm.Var] == 1 {
				lhs += tm.Coef
			}
		}
		if !opHolds(lhs, c.Op, c.RHS) {
			t.Fatalf("incumbent violates %q: %v %v %v", c.Name, lhs, c.Op, c.RHS)
		}
	}
}

// TestLimitReachedIncumbent sweeps node budgets over a branching-heavy
// model: every LimitReached solution that claims an incumbent must carry a
// feasible assignment, an exhausted search with no incumbent must say so,
// and once the budget clears the full search the result is Optimal and
// matches the unlimited solve.
func TestLimitReachedIncumbent(t *testing.T) {
	m := oddCycleModel(15)
	ref := m.Solve(Options{})
	if ref.Status != Optimal {
		t.Fatalf("unlimited solve: %v", ref.Status)
	}

	sawNoIncumbent, sawIncumbent := false, false
	for budget := 1; budget <= ref.Nodes+4; budget++ {
		sol := m.Solve(Options{MaxNodes: budget})
		switch sol.Status {
		case Optimal:
			if sol.Objective != ref.Objective {
				t.Fatalf("budget %d: objective %v, want %v", budget, sol.Objective, ref.Objective)
			}
		case LimitReached:
			if sol.HasIncumbent {
				sawIncumbent = true
				checkFeasible(t, m, sol)
				if sol.Objective < ref.Objective-1e-9 {
					t.Fatalf("budget %d: incumbent %v beats optimum %v", budget, sol.Objective, ref.Objective)
				}
			} else {
				sawNoIncumbent = true
			}
		default:
			t.Fatalf("budget %d: unexpected status %v", budget, sol.Status)
		}
	}
	if !sawNoIncumbent {
		t.Error("no budget produced LimitReached without incumbent")
	}
	if !sawIncumbent {
		t.Error("no budget produced LimitReached with an incumbent")
	}
}

// TestLimitReachedTinyBudget pins the HasIncumbent=false contract: one node
// is never enough to finish a fractional-rooted search, and callers must be
// able to rely on Values being unread-able via Value().
func TestLimitReachedTinyBudget(t *testing.T) {
	m := oddCycleModel(5)
	sol := m.Solve(Options{MaxNodes: 1})
	if sol.Status != LimitReached {
		t.Fatalf("status = %v, want LimitReached", sol.Status)
	}
	if sol.HasIncumbent {
		t.Fatal("one node cannot certify an incumbent on a fractional root")
	}
	for v := 0; v < m.NumVars(); v++ {
		if sol.Value(VarID(v)) {
			t.Fatal("Value must report false with no incumbent")
		}
	}
}

// TestLimitReachedDecomposedNoFalseIncumbent: when the budget dies in a
// non-final component, the solver must not claim an incumbent — the
// remaining components were never assigned.
func TestLimitReachedDecomposedNoFalseIncumbent(t *testing.T) {
	m := NewModel()
	// Component 1: an odd cycle that burns the whole budget.
	a := make([]VarID, 9)
	for i := range a {
		a[i] = m.AddBinary("", -1)
	}
	for i := range a {
		m.AddConstraint("c1", []Term{{Var: a[i], Coef: 1}, {Var: a[(i+1)%len(a)], Coef: 1}}, LE, 1)
	}
	// Component 2: trivially solvable, but never reached.
	b := m.AddBinary("", -1)
	m.AddConstraint("c2", []Term{{Var: b, Coef: 1}}, LE, 1)

	sol := m.Solve(Options{MaxNodes: 2})
	if sol.Status != LimitReached {
		t.Fatalf("status = %v, want LimitReached", sol.Status)
	}
	if sol.HasIncumbent {
		t.Fatal("incumbent claimed although a component was never solved")
	}
}

// TestLimitIncumbentRandomised cross-checks incumbent feasibility on random
// exclusion models across many seeds and budgets.
func TestLimitIncumbentRandomised(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(6)
		m := NewModel()
		vars := make([]VarID, n)
		for i := range vars {
			vars[i] = m.AddBinary("", -rng.Float64())
		}
		for e := 0; e < 2*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			m.AddConstraint("x", []Term{{Var: vars[i], Coef: 1}, {Var: vars[j], Coef: 1}}, LE, 1)
		}
		for budget := 1; budget <= 64; budget *= 4 {
			sol := m.Solve(Options{MaxNodes: budget})
			if sol.Status == LimitReached && sol.HasIncumbent {
				checkFeasible(t, m, sol)
			}
		}
	}
}
