package ilp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomModel builds a small random 0/1 model. Terms may repeat variables
// and carry zero coefficients so normalisation paths get exercised.
func randomModel(rng *rand.Rand) *Model {
	m := NewModel()
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		m.AddBinary("", math.Round(rng.Float64()*8-4)/2)
	}
	rows := rng.Intn(10)
	for r := 0; r < rows; r++ {
		k := 1 + rng.Intn(4)
		terms := make([]Term, 0, k)
		for t := 0; t < k; t++ {
			terms = append(terms, Term{
				Var:  VarID(rng.Intn(n)),
				Coef: float64(rng.Intn(7) - 3),
			})
		}
		op := Op(rng.Intn(3))
		rhs := float64(rng.Intn(5) - 1)
		m.AddConstraint("r", terms, op, rhs)
	}
	return m
}

func checkSolutionFeasible(t *testing.T, m *Model, sol Solution) {
	t.Helper()
	obj := 0.0
	for v := 0; v < m.NumVars(); v++ {
		if sol.Values[v] == 1 {
			obj += m.costs[v]
		}
	}
	if math.Abs(obj-sol.Objective) > 1e-6 {
		t.Fatalf("objective %v does not match values (%v)", sol.Objective, obj)
	}
	for _, c := range m.cons {
		lhs := 0.0
		for _, tm := range c.Terms {
			if sol.Values[tm.Var] == 1 {
				lhs += tm.Coef
			}
		}
		if !opHolds(lhs, c.Op, c.RHS) {
			t.Fatalf("solution violates %q: %v %v %v", c.Name, lhs, c.Op, c.RHS)
		}
	}
}

// TestFastPathParityRandom is the differential ladder over random models:
// fast path (default), fast path without presolve, and the legacy dense
// path must agree on status and optimal objective, and every claimed
// optimum must be feasible.
func TestFastPathParityRandom(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		fast := m.Solve(Options{})
		noPre := m.Solve(Options{DisablePresolve: true})
		dense := m.Solve(Options{DisableSolverFastPath: true})

		if fast.Status != dense.Status || noPre.Status != dense.Status {
			t.Fatalf("seed %d: status fast=%v noPresolve=%v dense=%v",
				seed, fast.Status, noPre.Status, dense.Status)
		}
		if dense.Status != Optimal {
			continue
		}
		if math.Abs(fast.Objective-dense.Objective) > 1e-6 {
			t.Fatalf("seed %d: objective fast=%v dense=%v", seed, fast.Objective, dense.Objective)
		}
		if math.Abs(noPre.Objective-dense.Objective) > 1e-6 {
			t.Fatalf("seed %d: objective noPresolve=%v dense=%v", seed, noPre.Objective, dense.Objective)
		}
		if fast.Components != dense.Components {
			t.Fatalf("seed %d: components fast=%d dense=%d", seed, fast.Components, dense.Components)
		}
		checkSolutionFeasible(t, m, fast)
		checkSolutionFeasible(t, m, noPre)
		checkSolutionFeasible(t, m, dense)
	}
}

// TestFastPathVsBruteForce pins the fast path against exhaustive
// enumeration on its own, independent of the dense path.
func TestFastPathVsBruteForce(t *testing.T) {
	for seed := int64(1000); seed < 1200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		feasible, bestObj, _ := bruteForce(m)
		sol := m.Solve(Options{})
		if !feasible {
			if sol.Status != Infeasible {
				t.Fatalf("seed %d: want Infeasible, got %v", seed, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("seed %d: want Optimal, got %v", seed, sol.Status)
		}
		if math.Abs(sol.Objective-bestObj) > 1e-6 {
			t.Fatalf("seed %d: objective %v, brute force %v", seed, sol.Objective, bestObj)
		}
		checkSolutionFeasible(t, m, sol)
	}
}

// TestSparseLPMatchesDense compares the bounded revised simplex against the
// dense tableau (with explicit bound rows) on random LP relaxations.
func TestSparseLPMatchesDense(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		sp := spProblem{n: n, c: make([]float64, n)}
		dn := lpProblem{n: n, c: make([]float64, n)}
		for j := 0; j < n; j++ {
			c := math.Round(rng.Float64()*8-4) / 2
			sp.c[j] = c
			dn.c[j] = c
		}
		rows := rng.Intn(7)
		for r := 0; r < rows; r++ {
			k := 1 + rng.Intn(3)
			row := spRow{op: Op(rng.Intn(3)), b: float64(rng.Intn(5) - 1)}
			a := make([]float64, n)
			for t := 0; t < k; t++ {
				j := rng.Intn(n)
				c := float64(rng.Intn(7) - 3)
				if c == 0 {
					continue
				}
				row.idx = append(row.idx, int32(j))
				row.a = append(row.a, c)
				a[j] += c
			}
			if len(row.idx) == 0 {
				continue
			}
			sp.rows = append(sp.rows, row)
			dn.rows = append(dn.rows, lpRow{a: a, op: row.op, b: row.b})
		}
		for j := 0; j < n; j++ {
			a := make([]float64, n)
			a[j] = 1
			dn.rows = append(dn.rows, lpRow{a: a, op: LE, b: 1})
		}
		stS, xS, objS := sp.solveBounded(nil)
		stD, _, objD := dn.solve()
		if stS == lpNumeric {
			continue // dense fallback would cover this in production
		}
		if stS != stD {
			t.Fatalf("seed %d: status sparse=%v dense=%v", seed, stS, stD)
		}
		if stS != lpOptimal {
			continue
		}
		if math.Abs(objS-objD) > 1e-6 {
			t.Fatalf("seed %d: objective sparse=%v dense=%v", seed, objS, objD)
		}
		for j, v := range xS {
			if v < -1e-7 || v > 1+1e-7 {
				t.Fatalf("seed %d: x[%d]=%v out of bounds", seed, j, v)
			}
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options must be valid: %v", err)
	}
	if err := (Options{MaxNodes: 10, TimeLimit: time.Second}).Validate(); err != nil {
		t.Fatalf("positive budgets must be valid: %v", err)
	}
	if err := (Options{MaxNodes: -1}).Validate(); err == nil {
		t.Fatal("negative MaxNodes must be rejected")
	}
	if err := (Options{TimeLimit: -time.Second}).Validate(); err == nil {
		t.Fatal("negative TimeLimit must be rejected")
	}
}

func TestSolveRejectsInvalidOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Solve must panic on invalid options")
		}
	}()
	m := NewModel()
	m.AddBinary("x", 1)
	m.Solve(Options{MaxNodes: -5})
}

// TestSolveCacheBitIdentical: a warm cache hit must return exactly what the
// cold solve returned, and budgeted solves must bypass the cache entirely.
func TestSolveCacheBitIdentical(t *testing.T) {
	cache := NewSolveCache(0)
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		cold := m.Solve(Options{Cache: cache})
		warm := m.Solve(Options{Cache: cache})
		if cold.Status != warm.Status || cold.HasIncumbent != warm.HasIncumbent ||
			cold.Objective != warm.Objective || cold.Nodes != warm.Nodes ||
			cold.Components != warm.Components {
			t.Fatalf("seed %d: cold %+v != warm %+v", seed, cold, warm)
		}
		if !bytes.Equal(int8Bytes(cold.Values), int8Bytes(warm.Values)) {
			t.Fatalf("seed %d: cached values differ", seed)
		}
	}
	hits, misses := cache.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", hits, misses)
	}

	// Budgeted solves must not read or write the cache.
	m := oddCycleModel(9)
	before, _ := cache.Stats()
	limited := m.Solve(Options{MaxNodes: 1, Cache: cache})
	if limited.Status != LimitReached {
		t.Fatalf("budgeted solve: %v", limited.Status)
	}
	after, _ := cache.Stats()
	if after != before {
		t.Fatal("budgeted solve touched the cache")
	}
}

func int8Bytes(v []int8) []byte {
	out := make([]byte, len(v))
	for i, x := range v {
		out[i] = byte(x)
	}
	return out
}

// TestPresolveReductions checks the individual reductions on handcrafted
// models through the public interface.
func TestPresolveReductions(t *testing.T) {
	// Singleton equality forces a value; the rest of the chain follows.
	m := NewModel()
	a := m.AddBinary("a", 5)
	b := m.AddBinary("b", -1)
	m.AddConstraint("fix", []Term{{Var: a, Coef: 1}}, EQ, 1)
	m.AddConstraint("chain", []Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, LE, 1)
	sol := m.Solve(Options{})
	if sol.Status != Optimal || sol.Values[a] != 1 || sol.Values[b] != 0 {
		t.Fatalf("singleton chain: %+v", sol)
	}
	if sol.Nodes != 0 {
		t.Fatalf("fully presolved model should need no nodes, got %d", sol.Nodes)
	}

	// Forcing: sum of three >= 3 pins all to one.
	m = NewModel()
	vs := []VarID{m.AddBinary("", 1), m.AddBinary("", 1), m.AddBinary("", 1)}
	m.AddConstraint("all", []Term{{vs[0], 1}, {vs[1], 1}, {vs[2], 1}}, GE, 3)
	sol = m.Solve(Options{})
	if sol.Status != Optimal || sol.Objective != 3 {
		t.Fatalf("forcing: %+v", sol)
	}

	// Contradictory equality duplicates are infeasible.
	m = NewModel()
	x := m.AddBinary("", -1)
	y := m.AddBinary("", -1)
	m.AddConstraint("d1", []Term{{x, 1}, {y, 1}}, EQ, 1)
	m.AddConstraint("d2", []Term{{x, 1}, {y, 1}}, EQ, 2)
	if sol = m.Solve(Options{}); sol.Status != Infeasible {
		t.Fatalf("dup-eq contradiction: %v", sol.Status)
	}
	if sol = m.Solve(Options{DisableSolverFastPath: true}); sol.Status != Infeasible {
		t.Fatalf("dup-eq contradiction (dense): %v", sol.Status)
	}

	// Duplicate LE rows fold to the tightest RHS.
	m = NewModel()
	x = m.AddBinary("", -1)
	y = m.AddBinary("", -1)
	m.AddConstraint("loose", []Term{{x, 1}, {y, 1}}, LE, 2)
	m.AddConstraint("tight", []Term{{x, 1}, {y, 1}}, LE, 1)
	sol = m.Solve(Options{})
	if sol.Status != Optimal || sol.Objective != -1 {
		t.Fatalf("dup fold: %+v", sol)
	}

	// Dual fixing: unconstrained-direction variables go to their cheap
	// bound without search.
	m = NewModel()
	free := m.AddBinary("", -2)
	zero := m.AddBinary("", 0)
	m.AddConstraint("cap", []Term{{free, 1}}, LE, 1)
	sol = m.Solve(Options{})
	if sol.Status != Optimal || sol.Values[free] != 1 || sol.Values[zero] != 0 {
		t.Fatalf("dual fix: %+v", sol)
	}
}

// TestFastPathBudgetsStillTrip: presolve must not defeat the node budget
// contract on branching-heavy models (odd cycles resist every reduction).
func TestFastPathBudgetsStillTrip(t *testing.T) {
	m := oddCycleModel(5)
	sol := m.Solve(Options{MaxNodes: 1})
	if sol.Status != LimitReached || sol.HasIncumbent {
		t.Fatalf("MaxNodes=1 on fractional root: %+v", sol)
	}
}
