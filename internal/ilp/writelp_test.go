package ilp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteLP(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("pick a", -2.5)
	b := m.AddBinary("", 1)
	m.AddConstraint("one", []Term{{a, 1}, {b, 1}}, EQ, 1)
	m.AddConstraint("", []Term{{a, 2}, {b, -3}}, LE, 4)
	m.AddConstraint("ge", []Term{{b, 1}}, GE, 0)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Minimize", "Subject To", "Binaries", "End",
		"pick_a", // sanitised name
		"x1",     // anonymous variable
		"= 1", "<= 4", ">= 0",
		"- 3 x1",      // negative coefficient formatting
		"-2.5 pick_a", // objective
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPEmptyModel(t *testing.T) {
	var buf bytes.Buffer
	if err := NewModel().WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "End") {
		t.Error("empty model LP truncated")
	}
}

// TestWriteLPCanonicalOrderIndependent: two models describing the same
// program but built in different variable/constraint/term orders must
// render to identical canonical bytes, so tests can diff them.
func TestWriteLPCanonicalOrderIndependent(t *testing.T) {
	build := func(order int) *Model {
		m := NewModel()
		var a, b VarID
		if order == 0 {
			a = m.AddBinary("alpha", -2)
			b = m.AddBinary("beta", 1)
		} else {
			b = m.AddBinary("beta", 1)
			a = m.AddBinary("alpha", -2)
		}
		one := []Term{{a, 1}, {b, 1}}
		cap1 := []Term{{b, 2}, {a, 1}}
		if order == 0 {
			m.AddConstraint("one", one, EQ, 1)
			m.AddConstraint("cap", cap1, LE, 2)
		} else {
			m.AddConstraint("cap", []Term{{a, 1}, {b, 2}}, LE, 2)
			m.AddConstraint("one", []Term{{b, 1}, {a, 1}}, EQ, 1)
		}
		return m
	}
	var buf0, buf1 bytes.Buffer
	if err := build(0).WriteLPCanonical(&buf0); err != nil {
		t.Fatal(err)
	}
	if err := build(1).WriteLPCanonical(&buf1); err != nil {
		t.Fatal(err)
	}
	if buf0.String() != buf1.String() {
		t.Errorf("canonical LP differs across build orders:\n%s\n---\n%s", buf0.String(), buf1.String())
	}
	for _, want := range []string{"alpha", "beta", "one:", "cap:", "Binaries"} {
		if !strings.Contains(buf0.String(), want) {
			t.Errorf("canonical LP missing %q:\n%s", want, buf0.String())
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"plain":  "plain",
		"a b(c)": "a_b_c_",
		"":       "_",
		"x[3],y": "x_3__y",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
