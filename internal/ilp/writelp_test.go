package ilp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteLP(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("pick a", -2.5)
	b := m.AddBinary("", 1)
	m.AddConstraint("one", []Term{{a, 1}, {b, 1}}, EQ, 1)
	m.AddConstraint("", []Term{{a, 2}, {b, -3}}, LE, 4)
	m.AddConstraint("ge", []Term{{b, 1}}, GE, 0)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Minimize", "Subject To", "Binaries", "End",
		"pick_a", // sanitised name
		"x1",     // anonymous variable
		"= 1", "<= 4", ">= 0",
		"- 3 x1",      // negative coefficient formatting
		"-2.5 pick_a", // objective
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPEmptyModel(t *testing.T) {
	var buf bytes.Buffer
	if err := NewModel().WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "End") {
		t.Error("empty model LP truncated")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"plain":  "plain",
		"a b(c)": "a_b_c_",
		"":       "_",
		"x[3],y": "x_3__y",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
