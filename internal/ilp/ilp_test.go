package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// bruteForce enumerates all 2^n assignments and returns (feasible, best
// objective, best assignment). Only usable for small n in tests.
func bruteForce(m *Model) (bool, float64, []int8) {
	n := m.NumVars()
	bestObj := math.Inf(1)
	var best []int8
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, c := range m.cons {
			lhs := 0.0
			for _, t := range c.Terms {
				if mask>>int(t.Var)&1 == 1 {
					lhs += t.Coef
				}
			}
			if !opHolds(lhs, c.Op, c.RHS) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		obj := 0.0
		for v := 0; v < n; v++ {
			if mask>>v&1 == 1 {
				obj += m.costs[v]
			}
		}
		if obj < bestObj {
			bestObj = obj
			best = make([]int8, n)
			for v := 0; v < n; v++ {
				best[v] = int8(mask >> v & 1)
			}
		}
	}
	return best != nil, bestObj, best
}

func TestEmptyModel(t *testing.T) {
	m := NewModel()
	sol := m.Solve(Options{})
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Errorf("empty model: %+v", sol)
	}
}

func TestVariableFreeInfeasibleConstraint(t *testing.T) {
	m := NewModel()
	m.AddBinary("x", 1)
	m.AddConstraint("impossible", nil, GE, 1) // 0 >= 1
	if sol := m.Solve(Options{}); sol.Status != Infeasible {
		t.Errorf("want infeasible, got %v", sol.Status)
	}
}

func TestUnconstrainedCosts(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", -3) // negative cost: should be 1
	b := m.AddBinary("b", 2)  // positive cost: should be 0
	sol := m.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !sol.Value(a) || sol.Value(b) {
		t.Errorf("values = %v", sol.Values)
	}
	if sol.Objective != -3 {
		t.Errorf("objective = %v", sol.Objective)
	}
}

func TestPickOnePerGroup(t *testing.T) {
	// The Eq. 12 structure: each cell picks exactly one candidate.
	m := NewModel()
	costs := [][]float64{{5, 2, 7}, {1, 4}, {9, 3, 3, 8}}
	var vars [][]VarID
	for g, cs := range costs {
		var row []VarID
		terms := []Term{}
		for i, c := range cs {
			v := m.AddBinary("", c)
			row = append(row, v)
			terms = append(terms, Term{v, 1})
			_ = i
			_ = g
		}
		m.AddConstraint("pick", terms, EQ, 1)
		vars = append(vars, row)
	}
	sol := m.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective != 2+1+3 {
		t.Errorf("objective = %v, want 6", sol.Objective)
	}
	if !sol.Value(vars[0][1]) || !sol.Value(vars[1][0]) {
		t.Error("wrong candidates selected")
	}
	// Decomposition should see 3 independent components.
	if sol.Components != 3 {
		t.Errorf("components = %d, want 3", sol.Components)
	}
}

func TestKnapsackNeedsBranching(t *testing.T) {
	// max 10a+6b+4c s.t. a+b+c<=2  == min -10a-6b-4c. LP relaxation is
	// integral here, so add a fractional-forcing weight constraint:
	// 5a+4b+3c <= 8 → LP wants a=1, b=0.75 → must branch.
	m := NewModel()
	a := m.AddBinary("a", -10)
	b := m.AddBinary("b", -6)
	c := m.AddBinary("c", -4)
	m.AddConstraint("w", []Term{{a, 5}, {b, 4}, {c, 3}}, LE, 8)
	sol := m.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective != -14 { // a + c = 10+4, weight 8
		t.Errorf("objective = %v, want -14", sol.Objective)
	}
	if !sol.Value(a) || sol.Value(b) || !sol.Value(c) {
		t.Errorf("values = %v", sol.Values)
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", 1)
	b := m.AddBinary("b", 1)
	m.AddConstraint("ge", []Term{{a, 1}, {b, 1}}, GE, 3) // max lhs is 2
	if sol := m.Solve(Options{}); sol.Status != Infeasible {
		t.Errorf("want infeasible, got %v", sol.Status)
	}
}

func TestEqualityConstraint(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", 5)
	b := m.AddBinary("b", 3)
	c := m.AddBinary("c", 4)
	m.AddConstraint("eq", []Term{{a, 1}, {b, 1}, {c, 1}}, EQ, 2)
	sol := m.Solve(Options{})
	if sol.Status != Optimal || sol.Objective != 7 { // b + c
		t.Errorf("sol = %+v", sol)
	}
}

func TestConflictPair(t *testing.T) {
	// Two desirable vars that exclude each other (the candidate-overlap
	// constraint in Eq. 12 models).
	m := NewModel()
	a := m.AddBinary("a", -5)
	b := m.AddBinary("b", -4)
	cv := m.AddBinary("c", -1)
	m.AddConstraint("conflict", []Term{{a, 1}, {b, 1}}, LE, 1)
	sol := m.Solve(Options{})
	if sol.Status != Optimal || sol.Objective != -6 {
		t.Fatalf("sol = %+v", sol)
	}
	if !sol.Value(a) || sol.Value(b) || !sol.Value(cv) {
		t.Errorf("values = %v", sol.Values)
	}
}

func TestNodeLimit(t *testing.T) {
	// A model that needs several nodes; MaxNodes=1 must trip the limit.
	rng := rand.New(rand.NewSource(3))
	m := NewModel()
	var terms []Term
	for i := 0; i < 12; i++ {
		v := m.AddBinary("", -(1 + rng.Float64()))
		terms = append(terms, Term{v, 1 + rng.Float64()})
	}
	m.AddConstraint("w", terms, LE, 4)
	sol := m.Solve(Options{MaxNodes: 1})
	if sol.Status != LimitReached {
		t.Errorf("status = %v, want limit-reached", sol.Status)
	}
	full := m.Solve(Options{})
	if full.Status != Optimal {
		t.Errorf("unlimited solve: %v", full.Status)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewModel()
	// A coupled model large enough to take more than a nanosecond.
	var all []VarID
	for i := 0; i < 40; i++ {
		all = append(all, m.AddBinary("", -rng.Float64()))
	}
	for i := 0; i < 40; i++ {
		terms := []Term{}
		for j := 0; j < 10; j++ {
			terms = append(terms, Term{all[rng.Intn(len(all))], 1 + rng.Float64()})
		}
		m.AddConstraint("", terms, LE, 3)
	}
	sol := m.Solve(Options{TimeLimit: time.Nanosecond})
	if sol.Status == Optimal && sol.Nodes > 64 {
		t.Errorf("nanosecond budget solved %d nodes", sol.Nodes)
	}
}

func TestDisableDecomposition(t *testing.T) {
	m := NewModel()
	for g := 0; g < 3; g++ {
		a := m.AddBinary("", 1)
		b := m.AddBinary("", 2)
		m.AddConstraint("", []Term{{a, 1}, {b, 1}}, EQ, 1)
	}
	sep := m.Solve(Options{})
	mono := m.Solve(Options{DisableDecomposition: true})
	if sep.Components != 3 || mono.Components != 1 {
		t.Errorf("components: sep=%d mono=%d", sep.Components, mono.Components)
	}
	if sep.Objective != mono.Objective {
		t.Errorf("objectives differ: %v vs %v", sep.Objective, mono.Objective)
	}
}

// The legalizer-shaped model: cells × slots assignment with slot-capacity
// constraints; checked against brute force.
func TestLegalizerShapeVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		nc := 2 + rng.Intn(2) // 2-3 cells
		ns := 3 + rng.Intn(3) // 3-5 slots
		m := NewModel()
		vars := make([][]VarID, nc)
		for c := 0; c < nc; c++ {
			terms := []Term{}
			for s := 0; s < ns; s++ {
				v := m.AddBinary("", float64(rng.Intn(20)))
				vars[c] = append(vars[c], v)
				terms = append(terms, Term{v, 1})
			}
			m.AddConstraint("one-pos", terms, EQ, 1)
		}
		for s := 0; s < ns; s++ {
			terms := []Term{}
			for c := 0; c < nc; c++ {
				terms = append(terms, Term{vars[c][s], 1})
			}
			m.AddConstraint("cap", terms, LE, 1)
		}
		sol := m.Solve(Options{})
		feas, bfObj, _ := bruteForce(m)
		if !feas {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, solver says %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if math.Abs(sol.Objective-bfObj) > 1e-6 {
			t.Fatalf("trial %d: solver %v, brute force %v", trial, sol.Objective, bfObj)
		}
	}
}

// Random small ILPs vs brute force — the core correctness property.
func TestRandomModelsVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []Op{LE, GE, EQ}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		m := NewModel()
		for v := 0; v < n; v++ {
			m.AddBinary("", float64(rng.Intn(21)-10))
		}
		nc := rng.Intn(6)
		for c := 0; c < nc; c++ {
			var terms []Term
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.5 {
					terms = append(terms, Term{VarID(v), float64(rng.Intn(9) - 4)})
				}
			}
			rhs := float64(rng.Intn(11) - 5)
			m.AddConstraint("", terms, ops[rng.Intn(3)], rhs)
		}
		sol := m.Solve(Options{})
		feas, bfObj, bf := bruteForce(m)
		if !feas {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, solver says %v (obj %v)", trial, sol.Status, sol.Objective)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v (brute force obj %v)", trial, sol.Status, bfObj)
		}
		if math.Abs(sol.Objective-bfObj) > 1e-6 {
			t.Fatalf("trial %d: solver obj %v != brute force %v (bf sol %v, solver %v)",
				trial, sol.Objective, bfObj, bf, sol.Values)
		}
		// The reported assignment must actually be feasible and match the
		// reported objective.
		obj := 0.0
		for v := 0; v < n; v++ {
			if sol.Values[v] == 1 {
				obj += m.costs[v]
			}
		}
		if math.Abs(obj-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: reported objective %v but assignment costs %v", trial, sol.Objective, obj)
		}
		for _, c := range m.cons {
			lhs := 0.0
			for _, tm := range c.Terms {
				if sol.Values[tm.Var] == 1 {
					lhs += tm.Coef
				}
			}
			if !opHolds(lhs, c.Op, c.RHS) {
				t.Fatalf("trial %d: assignment violates %v %v %v (lhs=%v)", trial, c.Terms, c.Op, c.RHS, lhs)
			}
		}
	}
}

func TestAddConstraintPanicsOnUnknownVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on unknown var")
		}
	}()
	m := NewModel()
	m.AddConstraint("bad", []Term{{VarID(5), 1}}, LE, 1)
}

func TestVarNames(t *testing.T) {
	m := NewModel()
	b := m.AddBinary("beta", 0)
	a := m.AddBinary("alpha", 0)
	if m.VarName(a) != "alpha" || m.VarName(b) != "beta" {
		t.Error("VarName wrong")
	}
	order := m.SortedVarsByName()
	if order[0] != a || order[1] != b {
		t.Errorf("SortedVarsByName = %v", order)
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("Op.String wrong")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		LimitReached.String() != "limit-reached" {
		t.Error("Status.String wrong")
	}
}

func BenchmarkSolveLegalizerWindow(b *testing.B) {
	// Representative legalizer model: 3 cells × 100 slots.
	build := func() *Model {
		rng := rand.New(rand.NewSource(1))
		m := NewModel()
		const nc, ns = 3, 100
		vars := make([][]VarID, nc)
		for c := 0; c < nc; c++ {
			terms := []Term{}
			for s := 0; s < ns; s++ {
				v := m.AddBinary("", float64(rng.Intn(50)))
				vars[c] = append(vars[c], v)
				terms = append(terms, Term{v, 1})
			}
			m.AddConstraint("", terms, EQ, 1)
		}
		for s := 0; s < ns; s++ {
			terms := []Term{}
			for c := 0; c < nc; c++ {
				terms = append(terms, Term{vars[c][s], 1})
			}
			m.AddConstraint("", terms, LE, 1)
		}
		return m
	}
	m := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol := m.Solve(Options{}); sol.Status != Optimal {
			b.Fatal("not optimal")
		}
	}
}
