package ilp

import (
	"math"
	"testing"
)

// FuzzILPSolve decodes a byte string into a small 0/1 model and
// cross-checks the default fast path against brute-force enumeration, the
// presolve-off fast path, and the legacy dense path. Any status or optimal
// objective divergence, or an infeasible "optimal" assignment, fails.
func FuzzILPSolve(f *testing.F) {
	f.Add([]byte{3, 2, 10, 0, 1, 200, 2, 1, 60, 1, 2, 130})
	f.Add([]byte{1, 0})
	f.Add([]byte{5, 1, 2, 3, 4, 5, 0, 3, 0, 1, 2, 100})
	f.Add([]byte{7, 9, 9, 9, 9, 9, 9, 9, 2, 80, 0, 1, 2, 3, 90, 4, 5, 6, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, ok := decodeFuzzModel(data)
		if !ok {
			return
		}
		feasible, bestObj, _ := bruteForce(m)

		fast := m.Solve(Options{})
		noPre := m.Solve(Options{DisablePresolve: true})
		dense := m.Solve(Options{DisableSolverFastPath: true})

		if fast.Status != dense.Status || noPre.Status != dense.Status {
			t.Fatalf("status fast=%v noPresolve=%v dense=%v", fast.Status, noPre.Status, dense.Status)
		}
		if !feasible {
			if fast.Status != Infeasible {
				t.Fatalf("brute force infeasible, solver says %v", fast.Status)
			}
			return
		}
		if fast.Status != Optimal {
			t.Fatalf("brute force feasible, solver says %v", fast.Status)
		}
		for name, sol := range map[string]Solution{"fast": fast, "noPresolve": noPre, "dense": dense} {
			if math.Abs(sol.Objective-bestObj) > 1e-6 {
				t.Fatalf("%s objective %v, brute force %v", name, sol.Objective, bestObj)
			}
			obj := 0.0
			for v := 0; v < m.NumVars(); v++ {
				if sol.Values[v] == 1 {
					obj += m.costs[v]
				}
			}
			if math.Abs(obj-sol.Objective) > 1e-6 {
				t.Fatalf("%s assignment worth %v, claimed %v", name, obj, sol.Objective)
			}
			for _, c := range m.cons {
				lhs := 0.0
				for _, tm := range c.Terms {
					if sol.Values[tm.Var] == 1 {
						lhs += tm.Coef
					}
				}
				if !opHolds(lhs, c.Op, c.RHS) {
					t.Fatalf("%s violates %q: %v %v %v", name, c.Name, lhs, c.Op, c.RHS)
				}
			}
		}
	})
}

// decodeFuzzModel maps fuzz bytes onto a bounded model: byte 0 picks the
// variable count (1..8), then per variable one cost byte, then repeated
// constraint blocks: op/rhs byte followed by up to 4 term bytes terminated
// by 0 or end of input. Coefficients and RHS stay small so brute force and
// the LP tolerances are meaningful.
func decodeFuzzModel(data []byte) (*Model, bool) {
	if len(data) < 2 {
		return nil, false
	}
	n := int(data[0])%8 + 1
	if len(data) < 1+n {
		return nil, false
	}
	m := NewModel()
	for i := 0; i < n; i++ {
		m.AddBinary("", float64(int(data[1+i])%9-4)/2)
	}
	pos := 1 + n
	for rows := 0; pos < len(data) && rows < 12; rows++ {
		head := data[pos]
		pos++
		op := Op(head % 3)
		rhs := float64(int(head/3)%7 - 2)
		var terms []Term
		for len(terms) < 4 && pos < len(data) {
			tb := data[pos]
			pos++
			if tb == 0 {
				break
			}
			terms = append(terms, Term{
				Var:  VarID(int(tb) % n),
				Coef: float64(int(tb/8)%7 - 3),
			})
		}
		if len(terms) == 0 {
			continue
		}
		m.AddConstraint("f", terms, op, rhs)
	}
	return m, true
}
