package ilp

import "math"

// This file implements the fast-path LP relaxation kernel: a bounded-variable
// two-phase revised simplex over sparse rows. Unlike the dense tableau in
// lp.go it
//
//   - treats the 0 <= x <= 1 variable bounds natively, so no x <= 1 rows are
//     materialised (legalizer/selection models are dominated by them);
//   - stores the constraint matrix sparsely (row lists plus a CSC index built
//     once per solve) and prices columns against a dual vector, so one
//     iteration costs O(m^2 + nnz) instead of O(rows * cols);
//   - maintains only an m x m basis inverse updated by product-form pivots.
//
// Bland's rule (smallest-index entering variable, smallest-index leaving tie
// break, bound flips counted as the entering variable itself) keeps the
// search anti-cycling. An iteration cap guards against numeric stalls; the
// caller falls back to the dense tableau when lpNumeric is returned, so the
// fast path never changes which models are solvable, only how fast.

// lpNumeric reports that the sparse kernel hit its iteration cap or a bad
// pivot; the caller should retry on the dense path.
const lpNumeric lpStatus = 0xff

// spRow is one sparse constraint row over the problem's column space.
type spRow struct {
	idx []int32
	a   []float64
	op  Op
	b   float64
}

// spProblem is min c·x subject to rows and 0 <= x <= 1 per structural
// column. Variable bounds are handled by the solver, not encoded as rows.
type spProblem struct {
	n    int
	c    []float64
	rows []spRow
}

// spScratch holds reusable buffers so branch & bound does not reallocate the
// basis inverse and work vectors on every node.
type spScratch struct {
	binv   []float64
	xB     []float64
	y      []float64
	w      []float64
	cost   []float64
	up     []float64
	sign   []float64
	basis  []int32
	vstat  []int8
	colPtr []int32
	colRow []int32
	colVal []float64
	next   []int32
	artAt  []int32
	slkAt  []int32
	auxRow []int32
	auxVal []float64
	x      []float64
}

func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growI8(buf *[]int8, n int) []int8 {
	if cap(*buf) < n {
		*buf = make([]int8, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growBool(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// nonbasic-at-lower / nonbasic-at-upper / basic variable states.
const (
	vsLower int8 = 0
	vsUpper int8 = 1
	vsBasic int8 = 2
)

// solveBounded runs two-phase bounded revised simplex. On lpOptimal it
// returns the structural solution (length n, values in [0,1]) and objective.
func (p *spProblem) solveBounded(scr *spScratch) (lpStatus, []float64, float64) {
	n, m := p.n, len(p.rows)
	if m == 0 {
		// Pure bound problem: each variable sits at whichever bound its
		// cost prefers (ties at zero go to the lower bound, matching the
		// dense path's initial slack basis).
		x := make([]float64, n)
		obj := 0.0
		for j := 0; j < n; j++ {
			if p.c[j] < 0 {
				x[j] = 1
				obj += p.c[j]
			}
		}
		return lpOptimal, x, obj
	}
	if scr == nil {
		scr = &spScratch{}
	}

	// Normalise every row to b >= 0 and lay out auxiliary columns:
	// [0,n) structural, then slack/surplus, then artificials.
	sign := growF(&scr.sign, m)
	slkAt := growI32(&scr.slkAt, m)
	artAt := growI32(&scr.artAt, m)
	nSlack, nArt := 0, 0
	for i := range p.rows {
		sign[i] = 1
		op := p.rows[i].op
		if p.rows[i].b < 0 {
			sign[i] = -1
			op = flip(op)
		}
		slkAt[i], artAt[i] = -1, -1
		switch op {
		case LE:
			slkAt[i] = int32(nSlack)
			nSlack++
		case GE:
			slkAt[i] = int32(nSlack)
			nSlack++
			artAt[i] = int32(nArt)
			nArt++
		case EQ:
			artAt[i] = int32(nArt)
			nArt++
		}
	}
	slack0 := n
	art0 := n + nSlack
	total := art0 + nArt

	up := growF(&scr.up, total)
	for j := 0; j < n; j++ {
		up[j] = 1
	}
	for j := slack0; j < total; j++ {
		up[j] = math.Inf(1)
	}

	basis := growI32(&scr.basis, m)
	vstat := growI8(&scr.vstat, total)
	for j := range vstat {
		vstat[j] = vsLower
	}
	xB := growF(&scr.xB, m)
	for i := range p.rows {
		b := sign[i] * p.rows[i].b
		xB[i] = b
		if artAt[i] >= 0 {
			basis[i] = int32(art0) + artAt[i]
		} else {
			basis[i] = int32(slack0) + slkAt[i]
		}
		vstat[basis[i]] = vsBasic
	}

	binv := growF(&scr.binv, m*m)
	for k := range binv {
		binv[k] = 0
	}
	for i := 0; i < m; i++ {
		binv[i*m+i] = 1
	}

	// CSC index over the structural columns, with the row sign applied.
	nnz := 0
	for i := range p.rows {
		nnz += len(p.rows[i].idx)
	}
	colPtr := growI32(&scr.colPtr, n+1)
	for j := range colPtr {
		colPtr[j] = 0
	}
	for i := range p.rows {
		for _, j := range p.rows[i].idx {
			colPtr[j+1]++
		}
	}
	for j := 0; j < n; j++ {
		colPtr[j+1] += colPtr[j]
	}
	colRow := growI32(&scr.colRow, nnz)
	colVal := growF(&scr.colVal, nnz)
	next := growI32(&scr.next, n)
	copy(next, colPtr[:n])
	for i := range p.rows {
		r := &p.rows[i]
		for k, j := range r.idx {
			at := next[j]
			next[j]++
			colRow[at] = int32(i)
			colVal[at] = sign[i] * r.a[k]
		}
	}

	y := growF(&scr.y, m)
	w := growF(&scr.w, m)
	cost := growF(&scr.cost, total)

	// Single-entry auxiliary columns: remember their row and coefficient.
	auxRow := growI32(&scr.auxRow, total-n)
	auxVal := growF(&scr.auxVal, total-n)
	for i := range p.rows {
		if slkAt[i] >= 0 {
			c := 1.0
			op := p.rows[i].op
			if sign[i] < 0 {
				op = flip(op)
			}
			if op == GE {
				c = -1
			}
			auxRow[slkAt[i]] = int32(i)
			auxVal[slkAt[i]] = c
		}
		if artAt[i] >= 0 {
			auxRow[int32(nSlack)+artAt[i]] = int32(i)
			auxVal[int32(nSlack)+artAt[i]] = 1
		}
	}

	maxIter := 100*(m+total) + 1000

	// phase runs primal iterations under the current cost vector. It
	// returns lpOptimal when no column prices out, lpUnbounded on an
	// uncapped ray, lpNumeric on iteration cap or degenerate pivot trouble.
	phase := func() lpStatus {
		for iter := 0; iter < maxIter; iter++ {
			// Duals: y = c_B * binv.
			for k := 0; k < m; k++ {
				y[k] = 0
			}
			for i := 0; i < m; i++ {
				cb := cost[basis[i]]
				if cb == 0 {
					continue
				}
				row := binv[i*m : i*m+m]
				for k := 0; k < m; k++ {
					y[k] += cb * row[k]
				}
			}
			// Entering column: Bland, smallest index first.
			enter := -1
			var dir float64
			for j := 0; j < total; j++ {
				if vstat[j] == vsBasic || up[j] < epsPivot && j >= n {
					continue // basic, or an auxiliary frozen at zero
				}
				d := cost[j]
				if j < n {
					for k := colPtr[j]; k < colPtr[j+1]; k++ {
						d -= y[colRow[k]] * colVal[k]
					}
				} else {
					d -= y[auxRow[j-n]] * auxVal[j-n]
				}
				if vstat[j] == vsLower && d < -epsFeas {
					enter, dir = j, 1
					break
				}
				if vstat[j] == vsUpper && d > epsFeas {
					enter, dir = j, -1
					break
				}
			}
			if enter < 0 {
				return lpOptimal
			}
			// w = binv * A_enter.
			for i := 0; i < m; i++ {
				w[i] = 0
			}
			if enter < n {
				for k := colPtr[enter]; k < colPtr[enter+1]; k++ {
					r, v := colRow[k], colVal[k]
					for i := 0; i < m; i++ {
						w[i] += binv[i*m+int(r)] * v
					}
				}
			} else {
				r, v := auxRow[enter-n], auxVal[enter-n]
				for i := 0; i < m; i++ {
					w[i] = binv[i*m+int(r)] * v
				}
			}
			// Ratio test with bound flips; Bland smallest-index tie break.
			tBest := up[enter] // distance to the entering var's far bound
			leave, leaveUpper := -1, false
			bland := enter
			for i := 0; i < m; i++ {
				dw := dir * w[i]
				if dw > epsPivot {
					t := xB[i] / dw
					if t < 0 {
						t = 0
					}
					if t < tBest-epsPivot || (t < tBest+epsPivot && int(basis[i]) < bland) {
						tBest, leave, leaveUpper, bland = t, i, false, int(basis[i])
					}
				} else if dw < -epsPivot {
					ub := up[basis[i]]
					if math.IsInf(ub, 1) {
						continue
					}
					t := (ub - xB[i]) / -dw
					if t < 0 {
						t = 0
					}
					if t < tBest-epsPivot || (t < tBest+epsPivot && int(basis[i]) < bland) {
						tBest, leave, leaveUpper, bland = t, i, true, int(basis[i])
					}
				}
			}
			if math.IsInf(tBest, 1) {
				return lpUnbounded
			}
			if leave < 0 {
				// Bound flip: the entering variable crosses to its other
				// bound without a basis change.
				for i := 0; i < m; i++ {
					xB[i] -= dir * tBest * w[i]
				}
				vstat[enter] ^= 1
				continue
			}
			piv := w[leave]
			if math.Abs(piv) < epsPivot {
				return lpNumeric
			}
			xq := tBest
			if vstat[enter] == vsUpper {
				xq = up[enter] - tBest
			}
			for i := 0; i < m; i++ {
				if i != leave {
					xB[i] -= dir * tBest * w[i]
				}
			}
			lv := basis[leave]
			if leaveUpper {
				vstat[lv] = vsUpper
			} else {
				vstat[lv] = vsLower
			}
			xB[leave] = xq
			basis[leave] = int32(enter)
			vstat[enter] = vsBasic
			// Product-form update of the basis inverse.
			rl := binv[leave*m : leave*m+m]
			inv := 1 / piv
			for k := range rl {
				rl[k] *= inv
			}
			for i := 0; i < m; i++ {
				if i == leave {
					continue
				}
				f := w[i]
				if f == 0 {
					continue
				}
				ri := binv[i*m : i*m+m]
				for k := range ri {
					ri[k] -= f * rl[k]
				}
			}
		}
		return lpNumeric
	}

	// Phase 1: minimise the sum of artificials.
	if nArt > 0 {
		for j := range cost {
			cost[j] = 0
		}
		for j := art0; j < total; j++ {
			cost[j] = 1
		}
		switch phase() {
		case lpUnbounded:
			// Bounded below by 0; a ray here is numeric trouble.
			return lpNumeric, nil, 0
		case lpNumeric:
			return lpNumeric, nil, 0
		}
		infeas := 0.0
		for i := 0; i < m; i++ {
			if int(basis[i]) >= art0 {
				infeas += xB[i]
			}
		}
		if infeas > epsArtifact {
			return lpInfeasible, nil, 0
		}
		// Freeze artificials at zero for phase 2. Basic artificials stay
		// basic at (numerically) zero; the [0,0] bound stops them moving.
		for j := art0; j < total; j++ {
			up[j] = 0
		}
	}

	// Phase 2: original objective.
	for j := range cost {
		cost[j] = 0
	}
	copy(cost[:n], p.c)
	switch phase() {
	case lpUnbounded:
		// Structural variables are bounded, so the objective cannot be
		// unbounded; an uncapped ray among slacks is numeric trouble.
		return lpNumeric, nil, 0
	case lpNumeric:
		return lpNumeric, nil, 0
	}

	x := growF(&scr.x, n)
	for j := 0; j < n; j++ {
		if vstat[j] == vsUpper {
			x[j] = 1
		} else {
			x[j] = 0
		}
	}
	for i := 0; i < m; i++ {
		if j := int(basis[i]); j < n {
			v := xB[i]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			x[j] = v
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.c[j] * x[j]
	}
	return lpOptimal, x, obj
}
