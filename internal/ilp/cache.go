package ilp

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// SolveCache memoises certified Solve results keyed by the exact canonical
// encoding of the model (costs, constraints) plus the semantically relevant
// option flags. It is the "warm start across CR&P iterations" mechanism:
// the legalizer and selection steps rebuild structurally identical models
// every iteration, and an exact-key hit returns precisely the Solution a
// cold deterministic solve would compute — so cached and uncached runs are
// bit-identical by construction.
//
// The cache is only consulted for budget-less solves (MaxNodes == 0 and
// TimeLimit == 0): budgeted outcomes depend on wall-clock and node order,
// and letting them leak across calls would break the engine's
// checkpoint/resume bit-identity contract.
//
// A note on scope: under best-first branch & bound the first incumbent
// found is already optimal, so replaying a previous incumbent as a pruning
// bound cannot skip any node the search would otherwise expand — classic
// warm-start bounds are a no-op here. Whole-solution memoization is the
// form of warm starting that actually pays off for this solver.
type SolveCache struct {
	shards   [solveCacheShards]solveCacheShard
	perShard int
	hits     atomic.Int64
	misses   atomic.Int64
}

const solveCacheShards = 16

type solveCacheShard struct {
	mu sync.Mutex
	m  map[string]Solution
}

// NewSolveCache returns a cache holding roughly capacity entries; capacity
// <= 0 selects a default. When a shard fills up it is cleared wholesale —
// eviction cannot affect results, only hit rate, so the cheapest policy
// wins.
func NewSolveCache(capacity int) *SolveCache {
	if capacity <= 0 {
		capacity = 1 << 14
	}
	c := &SolveCache{perShard: (capacity + solveCacheShards - 1) / solveCacheShards}
	if c.perShard < 1 {
		c.perShard = 1
	}
	return c
}

// Stats reports cumulative hit/miss counters.
func (c *SolveCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// fnvHash is FNV-1a over the key bytes; computed once per Solve and passed
// to both lookup and store so a miss does not hash the key twice.
func fnvHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *SolveCache) lookup(key []byte, h uint64) (Solution, bool) {
	s := &c.shards[h%solveCacheShards]
	s.mu.Lock()
	sol, ok := s.m[string(key)] // no-alloc map probe
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return Solution{}, false
	}
	c.hits.Add(1)
	// Values is returned to callers that may hold it across solves; hand
	// out a private copy.
	if sol.Values != nil {
		sol.Values = append([]int8(nil), sol.Values...)
	}
	return sol, true
}

func (c *SolveCache) store(key []byte, h uint64, sol Solution) {
	if sol.Values != nil {
		sol.Values = append([]int8(nil), sol.Values...)
	}
	s := &c.shards[h%solveCacheShards]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]Solution)
	} else if len(s.m) >= c.perShard {
		clear(s.m)
	}
	s.m[string(key)] = sol
	s.mu.Unlock()
}

// appendCacheKey canonically encodes the model and the option flags that
// change observable Solve output (component counts, node counts) into b.
// Variable names are excluded: they never influence the solve.
func (m *Model) appendCacheKey(b []byte, opt Options) []byte {
	n := len(m.costs)
	b = binary.AppendUvarint(b, uint64(n))
	for _, c := range m.costs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c))
	}
	b = binary.AppendUvarint(b, uint64(len(m.cons)))
	for _, c := range m.cons {
		b = append(b, byte(c.Op))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.RHS))
		b = binary.AppendUvarint(b, uint64(len(c.Terms)))
		for _, t := range c.Terms {
			b = binary.AppendUvarint(b, uint64(t.Var))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Coef))
		}
	}
	var flags byte
	if opt.DisableDecomposition {
		flags |= 1
	}
	if opt.DisablePresolve {
		flags |= 2
	}
	b = append(b, flags)
	return b
}
