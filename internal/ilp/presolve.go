package ilp

import (
	"encoding/binary"
	"math"
	"sort"
)

// This file implements the fast-path presolve: cheap, provably-safe
// reductions applied to one localized component before branch & bound.
//
//   - constraint normalisation: terms sorted by variable, duplicate terms
//     accumulated, zero coefficients dropped;
//   - singleton-row and activity-bound (forcing) fixings, plus redundant-row
//     elimination from min/max activity;
//   - duplicate-row folding (same terms, same operator -> tightest RHS);
//   - dual (cost-based) fixing of variables no live constraint can push
//     against;
//   - fixed-variable elimination folded into row RHS, iterated to fixpoint.
//
// Every reduction is exact on 0/1 models: any optimal solution of the
// reduced model extends, with the recorded fixings, to an optimal solution
// of the original component.

// preRow is one live constraint over local variable indices. Terms are kept
// sorted by idx with unique variables and non-zero coefficients.
type preRow struct {
	idx  []int32
	a    []float64
	op   Op
	b    float64
	dead bool
}

// preModel is a localized component undergoing presolve. The trailing
// buffers are reduction scratch, reused across solves when the preModel
// lives inside a pooled fastScratch.
type preModel struct {
	costs      []float64
	rows       []preRow
	fixed      []int8 // -1 free, else the fixed 0/1 value
	fixedCost  float64
	infeasible bool
	nFree      int

	downBad []bool
	upBad   []bool
	dupSeen map[string]int
	dupKey  []byte
}

// newPreModel localizes a component into fs.pre: global variable IDs are
// mapped through lut (filled by the caller) to dense local indices,
// constraint terms are sorted and merged. Row term storage comes from the
// fs.preIdx/fs.preA arenas, whose capacity is pinned up front so the row
// subslices stay valid; presolve reductions only ever shrink rows in place.
func newPreModel(m *Model, comp component, lut []int32, fs *fastScratch) *preModel {
	nv := len(comp.vars)
	nnz := 0
	for _, ci := range comp.cons {
		nnz += len(m.cons[ci].Terms)
	}
	pm := &fs.pre
	pm.costs = growF(&fs.preCosts, nv)
	pm.fixed = growI8(&fs.preFixed, nv)
	pm.fixedCost = 0
	pm.infeasible = false
	pm.nFree = nv
	for i, v := range comp.vars {
		pm.costs[i] = m.costs[v]
		pm.fixed[i] = -1
	}
	if cap(fs.preIdx) < nnz {
		fs.preIdx = make([]int32, 0, nnz)
	}
	if cap(fs.preA) < nnz {
		fs.preA = make([]float64, 0, nnz)
	}
	idxA, aA := fs.preIdx[:0], fs.preA[:0]
	pm.rows = fs.preRows[:0]
	for _, ci := range comp.cons {
		c := m.cons[ci]
		start := len(idxA)
		for _, t := range c.Terms {
			idxA = append(idxA, lut[t.Var])
			aA = append(aA, t.Coef)
		}
		r := preRow{idx: idxA[start:], a: aA[start:], op: c.Op, b: c.RHS}
		sortRowTerms(&r)
		mergeRowTerms(&r)
		pm.rows = append(pm.rows, r)
	}
	fs.preRows = pm.rows[:0]
	return pm
}

func sortRowTerms(r *preRow) {
	sort.Sort(rowTermSort{r})
}

type rowTermSort struct{ r *preRow }

func (s rowTermSort) Len() int           { return len(s.r.idx) }
func (s rowTermSort) Less(i, j int) bool { return s.r.idx[i] < s.r.idx[j] }
func (s rowTermSort) Swap(i, j int) {
	s.r.idx[i], s.r.idx[j] = s.r.idx[j], s.r.idx[i]
	s.r.a[i], s.r.a[j] = s.r.a[j], s.r.a[i]
}

// mergeRowTerms accumulates duplicate variables and drops zero coefficients.
// Terms must already be sorted by idx.
func mergeRowTerms(r *preRow) {
	out := 0
	for k := 0; k < len(r.idx); {
		j := r.idx[k]
		sum := 0.0
		for k < len(r.idx) && r.idx[k] == j {
			sum += r.a[k]
			k++
		}
		if sum != 0 {
			r.idx[out] = j
			r.a[out] = sum
			out++
		}
	}
	r.idx = r.idx[:out]
	r.a = r.a[:out]
}

// fix records a variable fixing; double-fixing to a different value marks
// the model infeasible.
func (pm *preModel) fix(j int32, v int8) bool {
	switch pm.fixed[j] {
	case -1:
		pm.fixed[j] = v
		if v == 1 {
			pm.fixedCost += pm.costs[j]
		}
		pm.nFree--
		return true
	case v:
		return false
	default:
		pm.infeasible = true
		return false
	}
}

// run iterates the reductions to fixpoint (or infeasibility).
func (pm *preModel) run() {
	maxPasses := len(pm.costs) + len(pm.rows) + 2
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		pm.propagate(&changed)
		if pm.infeasible {
			return
		}
		pm.dualFix(&changed)
		if pm.infeasible {
			return
		}
		pm.foldDuplicates(&changed)
		if pm.infeasible || !changed {
			return
		}
	}
}

// propagate folds fixed variables into row RHS, then applies activity-bound
// reasoning: infeasibility detection, redundant-row elimination, and
// forcing fixings (a variable whose "wrong" value would already violate the
// row on its own gets fixed to the other value).
func (pm *preModel) propagate(changed *bool) {
	for ri := range pm.rows {
		r := &pm.rows[ri]
		if r.dead {
			continue
		}
		// Fold in fixed variables.
		out := 0
		for k := range r.idx {
			if v := pm.fixed[r.idx[k]]; v >= 0 {
				r.b -= r.a[k] * float64(v)
				*changed = true
				continue
			}
			r.idx[out] = r.idx[k]
			r.a[out] = r.a[k]
			out++
		}
		r.idx = r.idx[:out]
		r.a = r.a[:out]

		if len(r.idx) == 0 {
			if !opHolds(0, r.op, r.b) {
				pm.infeasible = true
				return
			}
			r.dead = true
			*changed = true
			continue
		}

		minAct, maxAct := 0.0, 0.0
		for _, c := range r.a {
			if c < 0 {
				minAct += c
			} else {
				maxAct += c
			}
		}

		switch r.op {
		case LE:
			if minAct > r.b+epsFeas {
				pm.infeasible = true
				return
			}
			if maxAct <= r.b+epsFeas {
				r.dead = true
				*changed = true
				continue
			}
		case GE:
			if maxAct < r.b-epsFeas {
				pm.infeasible = true
				return
			}
			if minAct >= r.b-epsFeas {
				r.dead = true
				*changed = true
				continue
			}
		case EQ:
			if minAct > r.b+epsFeas || maxAct < r.b-epsFeas {
				pm.infeasible = true
				return
			}
			if maxAct-minAct <= epsFeas && math.Abs(minAct-r.b) <= epsFeas {
				r.dead = true
				*changed = true
				continue
			}
		}

		// Forcing fixings. A fixing always lands the variable on its
		// min-activity (LE side) or max-activity (GE side) contribution,
		// so minAct/maxAct stay valid for the remaining terms.
		for k := range r.idx {
			j, c := r.idx[k], r.a[k]
			if pm.fixed[j] >= 0 {
				continue
			}
			if r.op == LE || r.op == EQ {
				if c > 0 && minAct+c > r.b+epsFeas {
					if pm.fix(j, 0) {
						*changed = true
					}
				} else if c < 0 && minAct-c > r.b+epsFeas {
					if pm.fix(j, 1) {
						*changed = true
					}
				}
				if pm.infeasible {
					return
				}
			}
			if r.op == GE || r.op == EQ {
				if c > 0 && maxAct-c < r.b-epsFeas {
					if pm.fix(j, 1) {
						*changed = true
					}
				} else if c < 0 && maxAct+c < r.b-epsFeas {
					if pm.fix(j, 0) {
						*changed = true
					}
				}
				if pm.infeasible {
					return
				}
			}
		}
	}
}

// dualFix fixes a free variable to the bound its cost prefers when no live
// constraint can be violated by that move: a variable never pushed upward
// by feasibility with cost >= 0 goes to 0; never pushed downward with
// cost <= 0 goes to 1. Ties (zero cost, both directions safe) go to 0.
func (pm *preModel) dualFix(changed *bool) {
	nv := len(pm.costs)
	// downBad[j]: moving j toward 0 can violate some live row;
	// upBad[j]: moving j toward 1 can.
	downBad := growBool(&pm.downBad, nv)
	upBad := growBool(&pm.upBad, nv)
	for j := 0; j < nv; j++ {
		downBad[j], upBad[j] = false, false
	}
	for ri := range pm.rows {
		r := &pm.rows[ri]
		if r.dead {
			continue
		}
		for k := range r.idx {
			j, c := r.idx[k], r.a[k]
			switch r.op {
			case LE:
				if c > 0 {
					upBad[j] = true
				} else {
					downBad[j] = true
				}
			case GE:
				if c > 0 {
					downBad[j] = true
				} else {
					upBad[j] = true
				}
			case EQ:
				downBad[j] = true
				upBad[j] = true
			}
		}
	}
	for j := int32(0); int(j) < nv; j++ {
		if pm.fixed[j] >= 0 {
			continue
		}
		if pm.costs[j] >= 0 && !downBad[j] {
			if pm.fix(j, 0) {
				*changed = true
			}
		} else if pm.costs[j] <= 0 && !upBad[j] {
			if pm.fix(j, 1) {
				*changed = true
			}
		}
	}
}

// foldDuplicates merges live rows with identical terms and operator into
// the single tightest row; contradictory equality duplicates mark the model
// infeasible.
func (pm *preModel) foldDuplicates(changed *bool) {
	if pm.dupSeen == nil {
		pm.dupSeen = make(map[string]int, len(pm.rows))
	} else {
		clear(pm.dupSeen)
	}
	seen := pm.dupSeen
	key := pm.dupKey[:0]
	defer func() { pm.dupKey = key[:0] }()
	for ri := range pm.rows {
		r := &pm.rows[ri]
		if r.dead {
			continue
		}
		key = key[:0]
		key = append(key, byte(r.op))
		for k := range r.idx {
			key = binary.LittleEndian.AppendUint32(key, uint32(r.idx[k]))
			key = binary.LittleEndian.AppendUint64(key, math.Float64bits(r.a[k]))
		}
		if prev, ok := seen[string(key)]; ok {
			p := &pm.rows[prev]
			switch r.op {
			case LE:
				if r.b < p.b {
					p.b = r.b
				}
			case GE:
				if r.b > p.b {
					p.b = r.b
				}
			case EQ:
				if math.Abs(r.b-p.b) > epsFeas {
					pm.infeasible = true
					return
				}
			}
			r.dead = true
			*changed = true
			continue
		}
		seen[string(key)] = ri
	}
}
