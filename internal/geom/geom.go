// Package geom provides the integer geometry primitives used throughout the
// CR&P flow. All coordinates are in database units (DBU); the physical size
// of a DBU is defined by the technology (see internal/tech).
//
// The package is deliberately allocation-light: Point, Rect and Interval are
// small value types, and every operation returns a new value rather than
// mutating its receiver.
package geom

import "fmt"

// Point is a location in the plane, in DBU.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int {
	return Abs(p.X-q.X) + Abs(p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Point3 is a location in the 3D routing space: a plane position plus a
// routing-layer index (0 is the lowest routing layer).
type Point3 struct {
	X, Y, L int
}

// Pt3 is shorthand for Point3{x, y, l}.
func Pt3(x, y, l int) Point3 { return Point3{x, y, l} }

// XY projects the 3D point onto the plane.
func (p Point3) XY() Point { return Point{p.X, p.Y} }

// String implements fmt.Stringer.
func (p Point3) String() string { return fmt.Sprintf("(%d,%d,m%d)", p.X, p.Y, p.L) }

// Rect is an axis-aligned rectangle. Lo is the lower-left corner (inclusive)
// and Hi the upper-right corner (exclusive), matching half-open interval
// semantics: a Rect covers Lo.X <= x < Hi.X and Lo.Y <= y < Hi.Y.
type Rect struct {
	Lo, Hi Point
}

// R builds a Rect from the two corner coordinates, normalising order.
func R(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// W returns the rectangle width.
func (r Rect) W() int { return r.Hi.X - r.Lo.X }

// H returns the rectangle height.
func (r Rect) H() int { return r.Hi.Y - r.Lo.Y }

// Area returns the rectangle area. Degenerate rectangles have zero area.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return int64(r.W()) * int64(r.H())
}

// Empty reports whether the rectangle covers no area.
func (r Rect) Empty() bool { return r.Hi.X <= r.Lo.X || r.Hi.Y <= r.Lo.Y }

// Center returns the rectangle center, rounding down.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside the half-open rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// ContainsRect reports whether q lies entirely within r.
func (r Rect) ContainsRect(q Rect) bool {
	return q.Lo.X >= r.Lo.X && q.Hi.X <= r.Hi.X && q.Lo.Y >= r.Lo.Y && q.Hi.Y <= r.Hi.Y
}

// Overlaps reports whether r and q share interior area. Empty rectangles
// overlap nothing.
func (r Rect) Overlaps(q Rect) bool {
	if r.Empty() || q.Empty() {
		return false
	}
	return r.Lo.X < q.Hi.X && q.Lo.X < r.Hi.X && r.Lo.Y < q.Hi.Y && q.Lo.Y < r.Hi.Y
}

// Intersect returns the overlap of r and q; the result is Empty when they do
// not overlap.
func (r Rect) Intersect(q Rect) Rect {
	out := Rect{
		Point{max(r.Lo.X, q.Lo.X), max(r.Lo.Y, q.Lo.Y)},
		Point{min(r.Hi.X, q.Hi.X), min(r.Hi.Y, q.Hi.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the bounding box of r and q. An empty rectangle acts as the
// identity element.
func (r Rect) Union(q Rect) Rect {
	if r.Empty() {
		return q
	}
	if q.Empty() {
		return r
	}
	return Rect{
		Point{min(r.Lo.X, q.Lo.X), min(r.Lo.Y, q.Lo.Y)},
		Point{max(r.Hi.X, q.Hi.X), max(r.Hi.Y, q.Hi.Y)},
	}
}

// Expand grows the rectangle by d on all four sides (shrinks when d < 0).
func (r Rect) Expand(d int) Rect {
	return Rect{Point{r.Lo.X - d, r.Lo.Y - d}, Point{r.Hi.X + d, r.Hi.Y + d}}
}

// Translate returns r shifted by p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.Lo.Add(p), r.Hi.Add(p)}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y)
}

// Interval is a half-open 1D interval [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Iv builds an Interval, normalising order.
func Iv(lo, hi int) Interval {
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{lo, hi}
}

// Len returns the interval length.
func (iv Interval) Len() int { return iv.Hi - iv.Lo }

// Empty reports whether the interval has zero or negative length.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether x lies inside the half-open interval.
func (iv Interval) Contains(x int) bool { return x >= iv.Lo && x < iv.Hi }

// Overlaps reports whether the interiors of iv and other intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo < other.Hi && other.Lo < iv.Hi
}

// Intersect returns the overlap of the two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	out := Interval{max(iv.Lo, other.Lo), min(iv.Hi, other.Hi)}
	if out.Empty() {
		return Interval{}
	}
	return out
}

// Union returns the smallest interval covering both (gaps included).
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{min(iv.Lo, other.Lo), max(iv.Hi, other.Hi)}
}

// Clamp returns x restricted to [iv.Lo, iv.Hi-1]; it panics on an empty
// interval because there is no representable value.
func (iv Interval) Clamp(x int) int {
	if iv.Empty() {
		panic("geom: Clamp on empty interval")
	}
	if x < iv.Lo {
		return iv.Lo
	}
	if x >= iv.Hi {
		return iv.Hi - 1
	}
	return x
}

// Abs returns |x|.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Median returns the lower median of xs. It copies and partially sorts the
// input, so the caller's slice is untouched. Median of an empty slice is 0.
func Median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]int, len(xs))
	copy(cp, xs)
	k := (len(cp) - 1) / 2
	return quickselect(cp, k)
}

// MedianInPlace returns the lower median of xs, reordering xs in the
// process — Median without the defensive copy, for callers that own the
// slice.
func MedianInPlace(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	return quickselect(xs, (len(xs)-1)/2)
}

// MedianPoint returns the component-wise lower median of the points: the
// classic optimal single-cell location for star-model wirelength.
func MedianPoint(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	xs := make([]int, len(pts))
	ys := make([]int, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	return Point{Median(xs), Median(ys)}
}

// quickselect returns the k-th smallest element of xs (0-based), reordering
// xs in the process.
func quickselect(xs []int, k int) int {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot keeps adversarial inputs from degrading
		// to quadratic behaviour on the sorted slices we often receive.
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return xs[k]
		}
	}
	return xs[lo]
}

// SnapDown rounds x down to the nearest multiple of step (step > 0).
// Negative x rounds toward negative infinity, matching site/row snapping
// semantics for placements left of the origin.
func SnapDown(x, step int) int {
	if step <= 0 {
		panic("geom: SnapDown with non-positive step")
	}
	r := x % step
	if r < 0 {
		r += step
	}
	return x - r
}

// SnapUp rounds x up to the nearest multiple of step (step > 0).
func SnapUp(x, step int) int {
	d := SnapDown(x, step)
	if d == x {
		return x
	}
	return d + step
}

// SnapNearest rounds x to the nearest multiple of step, ties rounding up.
func SnapNearest(x, step int) int {
	d := SnapDown(x, step)
	if x-d < d+step-x {
		return d
	}
	return d + step
}
