package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPointArith(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := p.ManhattanDist(q); got != 6 {
		t.Errorf("ManhattanDist = %d, want 6", got)
	}
	if got := p.ManhattanDist(p); got != 0 {
		t.Errorf("ManhattanDist self = %d, want 0", got)
	}
}

func TestPoint3XY(t *testing.T) {
	p := Pt3(5, 7, 2)
	if p.XY() != Pt(5, 7) {
		t.Errorf("XY = %v", p.XY())
	}
	if p.String() != "(5,7,m2)" {
		t.Errorf("String = %q", p.String())
	}
}

func TestRectNormalisation(t *testing.T) {
	r := R(10, 20, 0, 5)
	if r.Lo != Pt(0, 5) || r.Hi != Pt(10, 20) {
		t.Fatalf("R did not normalise: %v", r)
	}
	if r.W() != 10 || r.H() != 15 {
		t.Errorf("W,H = %d,%d", r.W(), r.H())
	}
	if r.Area() != 150 {
		t.Errorf("Area = %d", r.Area())
	}
}

func TestRectEmptyAndArea(t *testing.T) {
	if !(Rect{}).Empty() {
		t.Error("zero Rect should be empty")
	}
	if (Rect{}).Area() != 0 {
		t.Error("empty rect area should be 0")
	}
	degenerate := Rect{Pt(5, 5), Pt(5, 10)}
	if !degenerate.Empty() {
		t.Error("zero-width rect should be empty")
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(9, 9), true},
		{Pt(10, 10), false}, // hi edge is exclusive
		{Pt(10, 5), false},
		{Pt(-1, 5), false},
		{Pt(5, 5), true},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectOverlapIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	c := R(10, 0, 20, 10) // shares only an edge with a
	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Overlaps(c) {
		t.Error("edge-touching rects must not count as overlapping")
	}
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Intersect(c).Empty() {
		t.Error("edge-touch intersect should be empty")
	}
}

func TestRectUnionIdentity(t *testing.T) {
	a := R(2, 3, 4, 5)
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty Union a = %v", got)
	}
	b := R(10, 10, 12, 12)
	if got := a.Union(b); got != R(2, 3, 12, 12) {
		t.Errorf("Union = %v", got)
	}
}

func TestRectExpandTranslate(t *testing.T) {
	r := R(5, 5, 10, 10)
	if got := r.Expand(2); got != R(3, 3, 12, 12) {
		t.Errorf("Expand = %v", got)
	}
	if got := r.Translate(Pt(1, -1)); got != R(6, 4, 11, 9) {
		t.Errorf("Translate = %v", got)
	}
}

func TestRectCenter(t *testing.T) {
	if got := R(0, 0, 10, 4).Center(); got != Pt(5, 2) {
		t.Errorf("Center = %v", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Iv(8, 3)
	if iv != (Interval{3, 8}) {
		t.Fatalf("Iv did not normalise: %v", iv)
	}
	if iv.Len() != 5 {
		t.Errorf("Len = %d", iv.Len())
	}
	if !iv.Contains(3) || iv.Contains(8) || !iv.Contains(7) {
		t.Error("Contains half-open semantics broken")
	}
	if !iv.Overlaps(Iv(7, 20)) || iv.Overlaps(Iv(8, 20)) {
		t.Error("Overlaps half-open semantics broken")
	}
	if got := iv.Intersect(Iv(5, 20)); got != (Interval{5, 8}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := iv.Union(Iv(20, 30)); got != (Interval{3, 30}) {
		t.Errorf("Union = %v", got)
	}
}

func TestIntervalClamp(t *testing.T) {
	iv := Iv(2, 10)
	if iv.Clamp(-5) != 2 || iv.Clamp(50) != 9 || iv.Clamp(5) != 5 {
		t.Error("Clamp wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp on empty interval should panic")
		}
	}()
	Interval{}.Clamp(0)
}

func TestAbs(t *testing.T) {
	if Abs(-7) != 7 || Abs(7) != 7 || Abs(0) != 0 {
		t.Error("Abs wrong")
	}
}

func TestMedianSmall(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{nil, 0},
		{[]int{5}, 5},
		{[]int{5, 1}, 1}, // lower median
		{[]int{3, 1, 2}, 2},
		{[]int{4, 4, 4, 4}, 4},
		{[]int{9, 1, 8, 2, 7}, 7},
		{[]int{-3, 10, 0, -8}, -3},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []int{5, 3, 1, 4, 2}
	Median(in)
	want := []int{5, 3, 1, 4, 2}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("Median mutated input: %v", in)
		}
	}
}

func TestMedianMatchesSortQuick(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return Median(nil) == 0
		}
		in := make([]int, len(xs))
		for i, v := range xs {
			in[i] = int(v)
		}
		got := Median(in)
		sort.Ints(in)
		return got == in[(len(in)-1)/2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMedianPoint(t *testing.T) {
	pts := []Point{Pt(0, 10), Pt(4, 0), Pt(2, 6)}
	if got := MedianPoint(pts); got != Pt(2, 6) {
		t.Errorf("MedianPoint = %v", got)
	}
	if got := MedianPoint(nil); got != Pt(0, 0) {
		t.Errorf("MedianPoint(nil) = %v", got)
	}
}

// MedianPoint minimises star wirelength: moving to any other grid point must
// not reduce total Manhattan distance.
func TestMedianPointOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	starWL := func(c Point, pts []Point) int {
		s := 0
		for _, p := range pts {
			s += c.ManhattanDist(p)
		}
		return s
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(9)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Intn(40), rng.Intn(40))
		}
		m := MedianPoint(pts)
		best := starWL(m, pts)
		for x := 0; x < 40; x++ {
			for y := 0; y < 40; y++ {
				if wl := starWL(Pt(x, y), pts); wl < best {
					t.Fatalf("trial %d: median %v (wl=%d) beaten by (%d,%d) (wl=%d), pts=%v",
						trial, m, best, x, y, wl, pts)
				}
			}
		}
	}
}

func TestSnap(t *testing.T) {
	cases := []struct {
		x, step           int
		down, up, nearest int
	}{
		{0, 5, 0, 0, 0},
		{7, 5, 5, 10, 5},
		{8, 5, 5, 10, 10},
		{10, 5, 10, 10, 10},
		{-3, 5, -5, 0, -5},
		{-7, 5, -10, -5, -5},
	}
	for _, c := range cases {
		if got := SnapDown(c.x, c.step); got != c.down {
			t.Errorf("SnapDown(%d,%d) = %d, want %d", c.x, c.step, got, c.down)
		}
		if got := SnapUp(c.x, c.step); got != c.up {
			t.Errorf("SnapUp(%d,%d) = %d, want %d", c.x, c.step, got, c.up)
		}
		if got := SnapNearest(c.x, c.step); got != c.nearest {
			t.Errorf("SnapNearest(%d,%d) = %d, want %d", c.x, c.step, got, c.nearest)
		}
	}
}

func TestSnapPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SnapDown with step 0 should panic")
		}
	}()
	SnapDown(3, 0)
}

func TestSnapProperties(t *testing.T) {
	f := func(x int16, stepRaw uint8) bool {
		step := int(stepRaw%50) + 1
		d := SnapDown(int(x), step)
		u := SnapUp(int(x), step)
		if d%step != 0 || u%step != 0 {
			return false
		}
		if d > int(x) || u < int(x) {
			return false
		}
		return u-d == 0 || u-d == step
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectIntersectCommutesQuick(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := R(int(ax0), int(ay0), int(ax0)+int(aw), int(ay0)+int(ah))
		b := R(int(bx0), int(by0), int(bx0)+int(bw), int(by0)+int(bh))
		i1 := a.Intersect(b)
		i2 := b.Intersect(a)
		if i1 != i2 {
			return false
		}
		// Overlap consistency: non-empty intersection iff Overlaps.
		return i1.Empty() != a.Overlaps(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
