package medianilp

import (
	"context"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
)

func fixture(t testing.TB, cells, nets int, seed int64) (*db.Design, *grid.Grid, *global.Router) {
	t.Helper()
	d, err := ispd.Generate(ispd.Spec{
		Name: "mb", Node: "n45", Cells: cells, Nets: nets,
		Utilisation: 0.85, Hotspots: 1, Seed: seed,
		RefinePasses: -1, // raw placement: median moves must exist
	})
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	return d, g, r
}

func TestRunMovesCellsTowardMedians(t *testing.T) {
	d, g, r := fixture(t, 300, 250, 1)
	hpwlBefore := d.TotalHPWL()
	res := Run(context.Background(), d, g, r, DefaultConfig())
	if res.Failed {
		t.Fatal("unbudgeted run failed")
	}
	if res.MovedCells == 0 {
		t.Fatal("no cells moved — median targets never free?")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design illegal after baseline run: %v", err)
	}
	// Median moves reduce star wirelength: total HPWL should not grow
	// much (it is exactly what [18]'s cost optimises, modulo the one-cell
	// approximation).
	if after := d.TotalHPWL(); after > hpwlBefore*102/100 {
		t.Errorf("HPWL grew from %d to %d", hpwlBefore, after)
	}
}

func TestRunKeepsNetsRouted(t *testing.T) {
	d, g, r := fixture(t, 250, 200, 2)
	Run(context.Background(), d, g, r, DefaultConfig())
	for _, n := range d.Nets {
		if n.Degree() >= 2 && r.Routes[n.ID] == nil {
			t.Fatalf("net %d lost its route", n.ID)
		}
	}
	_ = g
}

func TestTimeBudgetFailureRestoresState(t *testing.T) {
	d, g, r := fixture(t, 300, 250, 3)
	snapHPWL := d.TotalHPWL()
	pos0 := d.Cells[0].Pos
	cfg := DefaultConfig()
	cfg.TimeBudget = time.Nanosecond // guaranteed to trip
	res := Run(context.Background(), d, g, r, cfg)
	if !res.Failed {
		t.Fatal("nanosecond budget did not fail")
	}
	if res.MovedCells != 0 {
		t.Error("failed run reported moved cells")
	}
	if d.TotalHPWL() != snapHPWL || d.Cells[0].Pos != pos0 {
		t.Error("failed run did not restore the placement")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("restored design invalid: %v", err)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (int, int64) {
		d, g, r := fixture(t, 200, 150, 4)
		res := Run(context.Background(), d, g, r, DefaultConfig())
		return res.MovedCells, d.TotalHPWL()
	}
	m1, h1 := run()
	m2, h2 := run()
	if m1 != m2 || h1 != h2 {
		t.Errorf("same seed diverged: %d/%d moved, HPWL %d/%d", m1, m2, h1, h2)
	}
}

func TestClusterCount(t *testing.T) {
	d, g, r := fixture(t, 200, 150, 5)
	cfg := DefaultConfig()
	cfg.ClusterSize = 50
	res := Run(context.Background(), d, g, r, cfg)
	movable := 0
	for _, c := range d.Cells {
		if !c.Fixed {
			movable++
		}
	}
	want := (movable + 49) / 50
	if res.Clusters != want {
		t.Errorf("clusters = %d, want %d", res.Clusters, want)
	}
}

func TestNearestFreeSlotPrefersMedian(t *testing.T) {
	d, _, _ := fixture(t, 150, 100, 6)
	cfg := DefaultConfig()
	for _, c := range d.Cells[:20] {
		med := d.NetMedianOf(c.ID)
		for _, slot := range nearestFreeSlots(d, c, med, cfg) {
			if err := d.CheckLegal(c, slot); err != nil {
				t.Fatalf("cell %d: slot %v illegal: %v", c.ID, slot, err)
			}
			row, _ := d.RowAt(slot.Y)
			if !d.IsFreeFor(row.Index, slot.X, slot.X+c.Macro.Width, map[int32]bool{c.ID: true}) {
				t.Fatalf("cell %d: slot %v not free", c.ID, slot)
			}
		}
	}
}

func BenchmarkBaselineRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, g, r := fixture(b, 300, 250, 7)
		b.StartTimer()
		Run(context.Background(), d, g, r, DefaultConfig())
	}
}
