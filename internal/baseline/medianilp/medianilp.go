// Package medianilp reimplements the algorithmic core of the paper's
// state-of-the-art comparison point: "ILP-Based Global Routing Optimization
// with Cell Movements" (Fontana et al., ISVLSI 2021, reference [18]). The
// paper received that work's binary; we rebuild it from its published
// description and from how the CR&P paper characterises it:
//
//   - cluster-based: for each cell, the median of its connected pins is the
//     (single) move target — there is no criticality ordering, "all cells
//     are tried to be moved to their median with no priority";
//   - the cost model is congestion-blind: "only modeled by the length and a
//     number of detours in each route" — here Steiner length plus a bend
//     penalty, with no Eq. 10 penalty term;
//   - an ILP selects, per cluster, which cells take their median slot,
//     subject to overlap exclusion; the formulation is monolithic (the
//     per-cluster model is solved without decomposition presolve);
//   - scalability is its weakness: "runtime is exponential and suffering
//     from scalability issues", and it fails outright on ispd18_test10.
//     That failure mode is reproduced with a wall-clock budget: when the
//     budget expires before the sweep completes, Run reports Failed and
//     restores the design, exactly like a crashed run contributing no row
//     to Table III.
package medianilp

import (
	"context"
	"sort"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ilp"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/steiner"
)

// Config tunes the baseline.
type Config struct {
	// ClusterSize is the number of cells per ILP (default 48).
	ClusterSize int
	// CandidatesPerCell is how many free slots near the median each cell
	// contributes to the ILP (default 8).
	CandidatesPerCell int
	// SearchSites/SearchRows bound the free-slot search around the median.
	SearchSites int
	SearchRows  int
	// TimeBudget aborts the run (reporting Failed) when exceeded; zero
	// means unlimited.
	TimeBudget time.Duration
	// WorkBudget aborts the run (reporting Failed) once the total branch &
	// bound nodes spent across cluster ILPs exceeds it; zero means
	// unlimited.
	WorkBudget int
	// MaxCells fails the run outright when the design has more movable
	// cells; zero means unlimited. This models the published behaviour of
	// [18], whose monolithic ILP formulation "is exponential and suffering
	// from scalability issues" and failed on the largest contest circuit:
	// the experiments place this budget between the two largest suite
	// circuits, machine-independently reproducing the paper's Failed row.
	MaxCells int
	// MaxNodesPerILP bounds each cluster ILP's branch & bound.
	MaxNodesPerILP int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{ClusterSize: 48, CandidatesPerCell: 8, SearchSites: 40, SearchRows: 7, MaxNodesPerILP: 20000}
}

// Result reports a baseline run.
type Result struct {
	// Failed is true when a budget expired; the design and routing are
	// restored to their pre-run state.
	Failed     bool
	MovedCells int
	Clusters   int
	// SolverNodes is the total branch & bound work across cluster ILPs.
	SolverNodes int
	Elapsed     time.Duration
}

// Run executes the median-move ILP sweep over every movable cell and
// reroutes the affected nets. The router must hold the initial global
// routing. Context cancellation is treated exactly like an expired
// TimeBudget: the run reports Failed and the design is restored — the
// baseline has no partial-result mode (matching [18]'s crash-or-complete
// behaviour the paper reproduces).
func Run(ctx context.Context, d *db.Design, g *grid.Grid, r *global.Router, cfg Config) *Result {
	def := DefaultConfig()
	if cfg.ClusterSize <= 0 {
		cfg.ClusterSize = def.ClusterSize
	}
	if cfg.SearchSites <= 0 {
		cfg.SearchSites = def.SearchSites
	}
	if cfg.SearchRows <= 0 {
		cfg.SearchRows = def.SearchRows
	}
	if cfg.MaxNodesPerILP <= 0 {
		cfg.MaxNodesPerILP = def.MaxNodesPerILP
	}
	if cfg.CandidatesPerCell <= 0 {
		cfg.CandidatesPerCell = def.CandidatesPerCell
	}
	start := time.Now()
	var deadline time.Time
	if cfg.TimeBudget > 0 {
		deadline = start.Add(cfg.TimeBudget)
	}
	res := &Result{}
	snap := d.Snapshot()

	// Every movable cell, in ID order — no priority.
	var ids []int32
	for _, c := range d.Cells {
		if !c.Fixed {
			ids = append(ids, c.ID)
		}
	}

	movedNets := map[int32]bool{}
	fail := func() *Result {
		// Out of budget: this run produces no usable solution.
		if err := d.Restore(snap); err != nil {
			panic("medianilp: snapshot restore failed: " + err.Error())
		}
		res.Failed = true
		res.MovedCells = 0
		res.Elapsed = time.Since(start)
		return res
	}
	if cfg.MaxCells > 0 && len(ids) > cfg.MaxCells {
		return fail()
	}
	for lo := 0; lo < len(ids); lo += cfg.ClusterSize {
		if ctx.Err() != nil {
			return fail()
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fail()
		}
		if cfg.WorkBudget > 0 && res.SolverNodes > cfg.WorkBudget {
			return fail()
		}
		hi := min(lo+cfg.ClusterSize, len(ids))
		moved, nodes := runCluster(d, g, cfg, ids[lo:hi], movedNets, deadline)
		res.MovedCells += moved
		res.SolverNodes += nodes
		res.Clusters++
	}

	// A cancellation landing after the last cluster still fails the run:
	// committing moves without rerouting would leave routes priced for the
	// old positions.
	if ctx.Err() != nil {
		return fail()
	}

	// Reroute every net touching a moved cell, in deterministic order.
	nets := make([]int32, 0, len(movedNets))
	for nid := range movedNets {
		nets = append(nets, nid)
	}
	sort.Slice(nets, func(a, b int) bool { return nets[a] < nets[b] })
	for _, nid := range nets {
		r.RerouteNet(nid)
	}
	res.Elapsed = time.Since(start)
	return res
}

// runCluster builds and solves one cluster's ILP and applies its moves,
// returning the moved-cell count and the solver nodes spent.
func runCluster(d *db.Design, g *grid.Grid, cfg Config, ids []int32, movedNets map[int32]bool, deadline time.Time) (int, int) {
	type option struct {
		cell int32
		pos  geom.Point
		move bool
	}
	m := ilp.NewModel()
	var opts []option
	siteOwners := map[[2]int][]int{}
	sw := d.Tech.Site.Width

	for _, id := range ids {
		c := d.Cells[id]
		med := d.NetMedianOf(id)
		targets := nearestFreeSlots(d, c, med, cfg)
		stay := m.AddBinary("", netCostAt(d, id, c.Pos))
		opts = append(opts, option{id, c.Pos, false})
		terms := []ilp.Term{{Var: stay, Coef: 1}}
		for _, target := range targets {
			if target == c.Pos {
				continue
			}
			mv := m.AddBinary("", netCostAt(d, id, target))
			opts = append(opts, option{id, target, true})
			terms = append(terms, ilp.Term{Var: mv, Coef: 1})
			if row, okr := d.RowAt(target.Y); okr {
				for x := target.X; x < target.X+c.Macro.Width; x += sw {
					key := [2]int{int(row.Index), x}
					siteOwners[key] = append(siteOwners[key], int(mv))
				}
			}
		}
		m.AddConstraint("one", terms, ilp.EQ, 1)
	}
	// Emit exclusion pairs in sorted key order so the model — and any
	// tie-breaking inside the solver — is deterministic run to run.
	siteKeys := make([][2]int, 0, len(siteOwners))
	for k := range siteOwners {
		siteKeys = append(siteKeys, k)
	}
	sort.Slice(siteKeys, func(a, b int) bool {
		if siteKeys[a][0] != siteKeys[b][0] {
			return siteKeys[a][0] < siteKeys[b][0]
		}
		return siteKeys[a][1] < siteKeys[b][1]
	})
	pairSeen := map[[2]int]bool{}
	for _, k := range siteKeys {
		vs := siteOwners[k]
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				a, b := vs[i], vs[j]
				if a > b {
					a, b = b, a
				}
				if opts[a].cell == opts[b].cell || pairSeen[[2]int{a, b}] {
					continue
				}
				pairSeen[[2]int{a, b}] = true
				m.AddConstraint("excl",
					[]ilp.Term{{Var: ilp.VarID(a), Coef: 1}, {Var: ilp.VarID(b), Coef: 1}}, ilp.LE, 1)
			}
		}
	}

	// Monolithic solve: [18]'s formulation is one model, not decomposed.
	solveOpts := ilp.Options{DisableDecomposition: true, MaxNodes: cfg.MaxNodesPerILP}
	if !deadline.IsZero() {
		solveOpts.TimeLimit = time.Until(deadline)
	}
	sol := m.Solve(solveOpts)
	// Degradation ladder for this call site: anything short of Optimal —
	// Infeasible (cannot happen: "stay" is always feasible, but handled
	// anyway) or LimitReached (MaxNodesPerILP or the run deadline fired) —
	// skips the cluster, the documented fallback. Even a LimitReached
	// incumbent is not applied: [18]'s published behaviour is
	// solve-or-skip, and applying partial cluster solutions would change
	// the baseline the paper compares against.
	switch sol.Status {
	case ilp.Optimal:
	case ilp.Infeasible, ilp.LimitReached:
		return 0, sol.Nodes // keep everything as-is for this cluster
	default:
		return 0, sol.Nodes
	}

	moved := 0
	for vi, o := range opts {
		// Value guards on HasIncumbent, so Values is never read blind.
		if !o.move || !sol.Value(ilp.VarID(vi)) {
			continue
		}
		if err := d.MoveCell(o.cell, o.pos); err != nil {
			continue // slot taken by an earlier cluster's move; skip
		}
		moved++
		for _, nid := range d.Cells[o.cell].Nets {
			movedNets[nid] = true
		}
	}
	return moved, sol.Nodes
}

// netCostAt is [18]'s congestion-blind cost: summed Steiner length of the
// cell's nets with the cell hypothetically at pos, plus a bend penalty as
// the "number of detours" proxy.
func netCostAt(d *db.Design, id int32, pos geom.Point) float64 {
	c := d.Cells[id]
	orient := c.Orient
	if row, ok := d.RowAt(pos.Y); ok {
		orient = row.Orient
	}
	total := 0.0
	bendPenalty := float64(d.Tech.Layer(1).Pitch)
	for _, nid := range c.Nets {
		n := d.Nets[nid]
		pts := make([]geom.Point, 0, n.Degree())
		for _, pr := range n.Pins {
			if pr.Cell == id {
				pts = append(pts, d.PinPositionAt(c, pr.Pin, pos, orient))
			} else {
				pts = append(pts, d.PinPosition(d.Cells[pr.Cell], pr.Pin))
			}
		}
		for _, io := range n.IOs {
			pts = append(pts, io.Pos)
		}
		tree := steiner.Build(pts)
		total += float64(tree.Length())
		// Each tree edge that is not axis-aligned needs at least one bend.
		for _, e := range tree.Edges {
			a, b := tree.Nodes[e[0]], tree.Nodes[e[1]]
			if a.X != b.X && a.Y != b.Y {
				total += bendPenalty
			}
		}
	}
	return total
}

// nearestFreeSlots finds up to CandidatesPerCell legal free slots closest
// to the median within the search window. Unlike CR&P's legalizer it cannot
// displace other cells — the limitation the paper calls out.
func nearestFreeSlots(d *db.Design, c *db.Cell, med geom.Point, cfg Config) []geom.Point {
	sw := d.Tech.Site.Width
	rh := d.Tech.Site.Height
	baseRow, ok := d.RowAt(geom.SnapDown(med.Y-d.Die.Lo.Y, rh) + d.Die.Lo.Y)
	if !ok {
		baseRow, ok = d.RowAt(c.Pos.Y)
		if !ok {
			return nil
		}
	}
	type cand struct {
		pos  geom.Point
		dist int
	}
	var cands []cand
	ignore := map[int32]bool{c.ID: true}
	for dr := -cfg.SearchRows / 2; dr <= cfg.SearchRows/2; dr++ {
		ri := int(baseRow.Index) + dr
		if ri < 0 || ri >= len(d.Rows) {
			continue
		}
		row := &d.Rows[ri]
		x0 := med.X - cfg.SearchSites*sw/2
		x1 := med.X + cfg.SearchSites*sw/2
		for _, x := range d.FreeSitesIn(int32(ri), x0, x1, c.Macro.Width, ignore) {
			p := geom.Pt(x, row.Y)
			if d.CheckLegal(c, p) != nil {
				continue
			}
			cands = append(cands, cand{p, p.ManhattanDist(med)})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		if cands[a].pos.Y != cands[b].pos.Y {
			return cands[a].pos.Y < cands[b].pos.Y
		}
		return cands[a].pos.X < cands[b].pos.X
	})
	n := min(cfg.CandidatesPerCell, len(cands))
	out := make([]geom.Point, 0, n)
	for _, cd := range cands[:n] {
		out = append(out, cd.pos)
	}
	return out
}
