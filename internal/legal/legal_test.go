package legal

import (
	"math/rand"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// denseDesign builds a design where rows are mostly full, so legalizer
// candidates genuinely require conflict relocation. fill is the fraction of
// sites occupied per row.
func denseDesign(t *testing.T, nRows, nSites int, fill float64, seed int64) *db.Design {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	die := geom.R(0, 0, nSites*sw, nRows*rh)
	rows := make([]db.Row, nRows)
	for i := range rows {
		o := db.N
		if i%2 == 1 {
			o = db.FS
		}
		rows[i] = db.Row{Index: int32(i), X: 0, Y: i * rh, NumSites: nSites, Orient: o}
	}
	m2 := &db.Macro{Name: "M2", Width: 2 * sw, Height: rh,
		Pins: []db.PinDef{{Name: "A", Offset: geom.Pt(sw/2, rh/2), Layer: 0}}}
	m3 := &db.Macro{Name: "M3", Width: 3 * sw, Height: rh,
		Pins: []db.PinDef{{Name: "A", Offset: geom.Pt(sw/2, rh/2), Layer: 0}}}
	var cells []*db.Cell
	id := int32(0)
	for r := 0; r < nRows; r++ {
		x := 0
		for x < nSites {
			if rng.Float64() > fill {
				x += 1 + rng.Intn(2)
				continue
			}
			m := m2
			if rng.Float64() < 0.3 {
				m = m3
			}
			wSites := m.Width / sw
			if x+wSites > nSites {
				break
			}
			o := db.N
			if r%2 == 1 {
				o = db.FS
			}
			cells = append(cells, &db.Cell{
				ID: id, Name: "c" + itoa(int(id)), Macro: m,
				Pos: geom.Pt(x*sw, r*rh), Orient: o,
			})
			id++
			x += wSites
		}
	}
	// Random 2-pin nets for median computation.
	var nets []*db.Net
	for i := 0; i+1 < len(cells) && i < 60; i += 2 {
		nets = append(nets, &db.Net{
			ID: int32(len(nets)), Name: "n" + itoa(i),
			Pins: []db.PinRef{{Cell: int32(i), Pin: 0}, {Cell: int32(i + 1), Pin: 0}},
		})
	}
	d, err := db.New("dense", tc, die, rows, []*db.Macro{m2, m3}, cells, nets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestCandidatesAreLegalWhenApplied(t *testing.T) {
	d := denseDesign(t, 10, 60, 0.85, 1)
	l := New(d, DefaultConfig())
	tested := 0
	for cid := int32(0); int(cid) < len(d.Cells) && tested < 10; cid += 7 {
		cands := l.Run(cid)
		for _, cand := range cands {
			snap := d.Snapshot()
			if err := l.Apply(cid, cand); err != nil {
				t.Fatalf("cell %d: candidate %v failed to apply: %v", cid, cand.Pos, err)
			}
			if d.Cells[cid].Pos != cand.Pos {
				t.Fatalf("cell %d not at candidate position", cid)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("cell %d: design invalid after apply: %v", cid, err)
			}
			if err := d.Restore(snap); err != nil {
				t.Fatal(err)
			}
		}
		if len(cands) > 0 {
			tested++
		}
	}
	if tested == 0 {
		t.Fatal("no cells produced candidates")
	}
}

func TestCandidatesSortedByDisplacement(t *testing.T) {
	d := denseDesign(t, 10, 60, 0.7, 2)
	l := New(d, DefaultConfig())
	cands := l.Run(0)
	for i := 1; i < len(cands); i++ {
		if cands[i].Displacement < cands[i-1].Displacement {
			t.Fatalf("candidates not sorted: %v then %v",
				cands[i-1].Displacement, cands[i].Displacement)
		}
	}
}

func TestConflictsProducedInDenseRows(t *testing.T) {
	d := denseDesign(t, 10, 60, 0.95, 3)
	l := New(d, DefaultConfig())
	foundConflict := false
	for cid := int32(0); int(cid) < len(d.Cells) && !foundConflict; cid++ {
		for _, cand := range l.Run(cid) {
			if len(cand.Conflicts) > 0 {
				foundConflict = true
				// Conflict positions must differ from the criticals.
				for ccid, p := range cand.Conflicts {
					if ccid == cid {
						t.Error("critical cell listed as its own conflict")
					}
					if cr := d.Cells[ccid].RectAt(p); cr.Overlaps(d.Cells[cid].RectAt(cand.Pos)) {
						t.Error("conflict relocation overlaps the critical target")
					}
				}
				break
			}
		}
	}
	if !foundConflict {
		t.Error("a 95 percent full design produced no conflict candidates at all")
	}
}

func TestFixedCellGetsNoCandidates(t *testing.T) {
	d := denseDesign(t, 6, 40, 0.5, 4)
	d.Cells[0].Fixed = true
	l := New(d, DefaultConfig())
	if cands := l.Run(0); cands != nil {
		t.Errorf("fixed cell got %d candidates", len(cands))
	}
}

func TestCurrentPositionExcluded(t *testing.T) {
	d := denseDesign(t, 8, 50, 0.6, 5)
	l := New(d, DefaultConfig())
	for cid := int32(0); cid < 5; cid++ {
		for _, cand := range l.Run(cid) {
			if cand.Pos == d.Cells[cid].Pos {
				t.Errorf("cell %d: current position returned as candidate", cid)
			}
		}
	}
}

func TestWindowClippedAtDieCorner(t *testing.T) {
	d := denseDesign(t, 8, 50, 0.6, 6)
	l := New(d, DefaultConfig())
	// The first cell is at the bottom-left corner region; it must still
	// get candidates without panicking, all inside the die.
	for _, cand := range l.Run(0) {
		r := d.Cells[0].RectAt(cand.Pos)
		if !d.Die.ContainsRect(r) {
			t.Errorf("candidate %v outside die", cand.Pos)
		}
	}
}

func TestMaxCandidatesHonoured(t *testing.T) {
	d := denseDesign(t, 10, 60, 0.3, 7)
	cfg := DefaultConfig()
	cfg.MaxCandidates = 3
	l := New(d, cfg)
	if got := len(l.Run(0)); got > 3 {
		t.Errorf("got %d candidates, cap is 3", got)
	}
}

func TestTooManyConflictsRejected(t *testing.T) {
	// Hand-build a row where a wide cell's only in-window slots overlap
	// three small cells: those slots must be rejected (|cells| cap).
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	nSites := 30
	die := geom.R(0, 0, nSites*sw, 2*rh)
	rows := []db.Row{
		{Index: 0, X: 0, Y: 0, NumSites: nSites, Orient: db.N},
		{Index: 1, X: 0, Y: rh, NumSites: nSites, Orient: db.FS},
	}
	wide := &db.Macro{Name: "W6", Width: 6 * sw, Height: rh,
		Pins: []db.PinDef{{Name: "A", Offset: geom.Pt(sw, rh/2), Layer: 0}}}
	small := &db.Macro{Name: "S2", Width: 2 * sw, Height: rh,
		Pins: []db.PinDef{{Name: "A", Offset: geom.Pt(sw/2, rh/2), Layer: 0}}}
	var cells []*db.Cell
	// Row 1 fully packed with small cells (15 of them).
	for i := 0; i < 15; i++ {
		cells = append(cells, &db.Cell{
			ID: int32(i), Name: "s" + itoa(i), Macro: small,
			Pos: geom.Pt(i*2*sw, rh), Orient: db.FS,
		})
	}
	// The critical wide cell in row 0.
	wideID := int32(len(cells))
	cells = append(cells, &db.Cell{ID: wideID, Name: "wide", Macro: wide, Pos: geom.Pt(0, 0), Orient: db.N})
	d, err := db.New("cap", tc, die, rows, []*db.Macro{wide, small}, cells, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NRows = 3
	l := New(d, cfg)
	for _, cand := range l.Run(wideID) {
		if cand.Pos.Y == rh {
			// Any row-1 slot overlaps 3 small cells (6 sites / 2 each)
			// unless at a 2-site boundary where it overlaps exactly 3...
			// all of them do, so none may appear.
			t.Errorf("candidate %v displaces 3 cells — exceeds |cells|=3 cap", cand.Pos)
		}
	}
}

func TestApplyConflictCandidate(t *testing.T) {
	d := denseDesign(t, 10, 60, 0.95, 8)
	l := New(d, DefaultConfig())
	for cid := int32(0); int(cid) < len(d.Cells); cid++ {
		for _, cand := range l.Run(cid) {
			if len(cand.Conflicts) == 0 {
				continue
			}
			if err := l.Apply(cid, cand); err != nil {
				t.Fatalf("apply failed: %v", err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("invalid after conflict apply: %v", err)
			}
			for ccid, p := range cand.Conflicts {
				if d.Cells[ccid].Pos != p {
					t.Errorf("conflict cell %d at %v, want %v", ccid, d.Cells[ccid].Pos, p)
				}
			}
			return
		}
	}
	t.Skip("no conflict candidate found")
}

func BenchmarkLegalizerRun(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	nRows, nSites := 20, 100
	die := geom.R(0, 0, nSites*sw, nRows*rh)
	rows := make([]db.Row, nRows)
	for i := range rows {
		rows[i] = db.Row{Index: int32(i), X: 0, Y: i * rh, NumSites: nSites, Orient: db.N}
	}
	m := &db.Macro{Name: "M", Width: 2 * sw, Height: rh,
		Pins: []db.PinDef{{Name: "A", Offset: geom.Pt(sw/2, rh/2), Layer: 0}}}
	var cells []*db.Cell
	id := int32(0)
	for r := 0; r < nRows; r++ {
		for s := 0; s+2 <= nSites; s += 2 {
			if rng.Float64() < 0.9 {
				cells = append(cells, &db.Cell{ID: id, Name: "c" + itoa(int(id)), Macro: m,
					Pos: geom.Pt(s*sw, r*rh)})
				id++
			}
		}
	}
	d, err := db.New("bench", tc, die, rows, []*db.Macro{m}, cells, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	l := New(d, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Run(int32(i % len(cells)))
	}
}
