// Package legal implements the paper's ILP-based legalizer (Section IV.B.2,
// Eq. 11). Given a critical cell, it examines a local window of N_site
// sites by N_row rows around the cell and produces a set of *legal*
// placement candidates: target positions for the critical cell, each paired
// with the relocations of the conflict cells that must shift to make room.
// Every candidate is guaranteed overlap-free, on-site, and on-row, so
// CR&P's selection ILP can commit any of them directly and hand the result
// to a detailed router — the property the paper's framework depends on.
//
// For each candidate target slot the displaced cells' new positions are
// chosen by a small 0/1 ILP (internal/ilp) minimising Eq. 11's weighted
// displacement toward each cell's median position:
//
//	cost_c^(i,j) = W_site·|X − X_med| + H_row·|Y − Y_med|
package legal

import (
	"sort"
	"sync/atomic"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/ilp"
)

// Config sets the window geometry and search effort. The paper uses
// NSites=20, NRows=5 and at most 3 cells per legalizer execution.
type Config struct {
	NSites        int // window width in sites
	NRows         int // window height in rows
	MaxCells      int // cells per ILP execution (critical + conflicts)
	MaxCandidates int // cap on returned candidates per critical cell
	// MaxSlotsPerConflict caps each conflict cell's relocation domain to
	// its cheapest slots; 0 means unlimited. Eq. 11 minimises
	// displacement, so distant slots never win — the cap only trims the
	// ILP.
	MaxSlotsPerConflict int
	// MaxNodes / TimeLimit budget each relocation ILP; 0 means unlimited
	// (the default — Eq. 11 models are tiny). When a budget expires the
	// legalizer degrades per the robustness ladder: the solver's best
	// incumbent is kept when it covers all conflict cells (it is legal by
	// construction of the model), otherwise the candidate slot is dropped.
	MaxNodes  int
	TimeLimit time.Duration
}

// DefaultConfig returns the paper's experimental values.
func DefaultConfig() Config {
	return Config{NSites: 20, NRows: 5, MaxCells: 3, MaxCandidates: 8, MaxSlotsPerConflict: 12}
}

// Candidate is one legal placement option for a critical cell.
type Candidate struct {
	// Pos is the critical cell's target position (lower-left, DBU).
	Pos geom.Point
	// Conflicts maps displaced conflict cells to their new legal
	// positions; empty when the target slot was already free.
	Conflicts map[int32]geom.Point
	// Displacement is the Eq. 11 objective: the summed weighted
	// displacement of the critical cell and conflict cells from their
	// median positions.
	Displacement float64
}

// Stats counts the degradation-ladder outcomes of budgeted relocation
// ILPs. All-zero when no budget is configured (the default).
type Stats struct {
	// IncumbentKept counts relocation solves that hit their budget but
	// whose best incumbent was adopted (still a fully legal candidate).
	IncumbentKept int64
	// BudgetDropped counts candidate slots dropped because the budget
	// expired with no usable incumbent.
	BudgetDropped int64
}

// Legalizer generates candidates against a design.
type Legalizer struct {
	D   *db.Design
	Cfg Config

	// Degradation counters; atomics because Run is called concurrently
	// from CR&P's worker pool.
	incumbentKept atomic.Int64
	budgetDropped atomic.Int64
}

// Stats snapshots the degradation counters.
func (l *Legalizer) Stats() Stats {
	return Stats{
		IncumbentKept: l.incumbentKept.Load(),
		BudgetDropped: l.budgetDropped.Load(),
	}
}

// New creates a legalizer. Zero Config fields fall back to defaults.
func New(d *db.Design, cfg Config) *Legalizer {
	def := DefaultConfig()
	if cfg.NSites <= 0 {
		cfg.NSites = def.NSites
	}
	if cfg.NRows <= 0 {
		cfg.NRows = def.NRows
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = def.MaxCells
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = def.MaxCandidates
	}
	if cfg.MaxSlotsPerConflict <= 0 {
		cfg.MaxSlotsPerConflict = def.MaxSlotsPerConflict
	}
	return &Legalizer{D: d, Cfg: cfg}
}

// window is the site/row extent the legalizer works in.
type window struct {
	rows   []int32 // row indices, ascending
	x0, x1 int     // DBU interval of the window's sites
}

// windowAround centres the window on the cell, clipping at the die.
func (l *Legalizer) windowAround(c *db.Cell) window {
	d := l.D
	sw := d.Tech.Site.Width
	halfW := l.Cfg.NSites * sw / 2
	x0 := geom.SnapDown(c.Pos.X-halfW, sw)
	x1 := x0 + l.Cfg.NSites*sw
	if x0 < d.Die.Lo.X {
		x0 = d.Die.Lo.X
		x1 = x0 + l.Cfg.NSites*sw
	}
	if x1 > d.Die.Hi.X {
		x1 = d.Die.Hi.X
		x0 = x1 - l.Cfg.NSites*sw
		if x0 < d.Die.Lo.X {
			x0 = d.Die.Lo.X
		}
	}
	r0 := int(c.Row) - l.Cfg.NRows/2
	r1 := r0 + l.Cfg.NRows
	if r0 < 0 {
		r0 = 0
		r1 = min(l.Cfg.NRows, len(d.Rows))
	}
	if r1 > len(d.Rows) {
		r1 = len(d.Rows)
		r0 = max(0, r1-l.Cfg.NRows)
	}
	w := window{x0: x0, x1: x1}
	for r := r0; r < r1; r++ {
		w.rows = append(w.rows, int32(r))
	}
	return w
}

// Run generates legal candidates for the critical cell. The current
// position is not included (CR&P's Algorithm 2 adds it separately); every
// returned candidate differs from the cell's current position. Candidates
// are sorted by ascending displacement.
func (l *Legalizer) Run(cellID int32) []Candidate {
	d := l.D
	c := d.Cells[cellID]
	if c.Fixed {
		return nil
	}
	w := l.windowAround(c)
	med := d.NetMedianOf(cellID)
	sw := d.Tech.Site.Width

	// Enumerate target slots for the critical cell: every site-aligned
	// position in the window where the cell fits inside the row span,
	// ranked by the critical cell's own Eq. 11 displacement.
	type slot struct {
		pos  geom.Point
		cost float64
	}
	var slots []slot
	for _, ri := range w.rows {
		row := &d.Rows[ri]
		span := row.Span(sw)
		lo := max(w.x0, span.Lo)
		hi := min(w.x1, span.Hi)
		for x := geom.SnapUp(lo-row.X, sw) + row.X; x+c.Macro.Width <= hi; x += sw {
			pos := geom.Pt(x, row.Y)
			if pos == c.Pos {
				continue
			}
			if d.CheckLegal(c, pos) != nil {
				continue // obstacle or die clipping
			}
			slots = append(slots, slot{pos, l.displacement(pos, med)})
		}
	}
	sort.Slice(slots, func(a, b int) bool {
		if slots[a].cost != slots[b].cost {
			return slots[a].cost < slots[b].cost
		}
		if slots[a].pos.Y != slots[b].pos.Y {
			return slots[a].pos.Y < slots[b].pos.Y
		}
		return slots[a].pos.X < slots[b].pos.X
	})

	var out []Candidate
	for _, s := range slots {
		if len(out) >= l.Cfg.MaxCandidates {
			break
		}
		cand, ok := l.trySlot(c, s.pos, w, med)
		if ok {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Displacement < out[b].Displacement })
	return out
}

// displacement is Eq. 11's cost of a position: the L1 distance from the
// median in DBU. Because positions are site- and row-aligned this equals
// W_site·|Δsite| + H_row·|Δrow|, the exact form printed in the paper.
func (l *Legalizer) displacement(pos, med geom.Point) float64 {
	return float64(geom.Abs(pos.X-med.X) + geom.Abs(pos.Y-med.Y))
}

// tryslot checks whether the critical cell can take pos. If cells are in
// the way, the conflict cells (at most MaxCells-1) are relocated inside the
// window by the ILP; failure to relocate rejects the slot.
func (l *Legalizer) trySlot(c *db.Cell, pos geom.Point, w window, med geom.Point) (Candidate, bool) {
	d := l.D
	row, _ := d.RowAt(pos.Y)
	span := geom.Iv(pos.X, pos.X+c.Macro.Width)

	// Conflict cells: movable cells overlapping the target span (other
	// than the critical cell itself).
	var conflicts []*db.Cell
	for _, id := range d.CellsInRowRange(row.Index, span.Lo, span.Hi) {
		if id == c.ID {
			continue
		}
		cc := d.Cells[id]
		if cc.Fixed {
			return Candidate{}, false // cannot displace fixed cells
		}
		conflicts = append(conflicts, cc)
	}
	if len(conflicts) > l.Cfg.MaxCells-1 {
		return Candidate{}, false // paper caps the execution at |cells|=3
	}
	if len(conflicts) == 0 {
		return Candidate{
			Pos:          pos,
			Conflicts:    map[int32]geom.Point{},
			Displacement: l.displacement(pos, med),
		}, true
	}

	moves, cost, ok := l.relocateConflicts(c, pos, conflicts, w)
	if !ok {
		return Candidate{}, false
	}
	return Candidate{
		Pos:          pos,
		Conflicts:    moves,
		Displacement: l.displacement(pos, med) + cost,
	}, true
}

// relocateConflicts builds and solves the Eq. 11 ILP for the conflict
// cells: each must take exactly one free slot in the window, slots must not
// overlap each other or the critical cell's target, and the objective is
// the summed displacement toward each conflict cell's median.
func (l *Legalizer) relocateConflicts(c *db.Cell, pos geom.Point, conflicts []*db.Cell, w window) (map[int32]geom.Point, float64, bool) {
	d := l.D
	sw := d.Tech.Site.Width
	ignore := map[int32]bool{c.ID: true}
	for _, cc := range conflicts {
		ignore[cc.ID] = true
	}
	targetRow, _ := d.RowAt(pos.Y)
	targetSpan := geom.Iv(pos.X, pos.X+c.Macro.Width)

	m := ilp.NewModel()
	type varPos struct {
		cell int32
		pos  geom.Point
	}
	var vars []varPos
	// siteUse[(row,siteX)] collects the variables covering each site.
	siteUse := map[[2]int][]ilp.Term{}

	for _, cc := range conflicts {
		med := d.NetMedianOf(cc.ID)
		// Collect the feasible slots, keep only the cheapest few: the ILP
		// never benefits from far-away relocations (Eq. 11 minimises
		// displacement), and the cap keeps the model tiny.
		type slotCost struct {
			p    geom.Point
			cost float64
		}
		var slots []slotCost
		for _, ri := range w.rows {
			row := &d.Rows[ri]
			for _, x := range d.FreeSitesIn(ri, w.x0, w.x1, cc.Macro.Width, ignore) {
				p := geom.Pt(x, row.Y)
				// Slots overlapping the critical cell's target are gone.
				if row.Index == targetRow.Index && geom.Iv(x, x+cc.Macro.Width).Overlaps(targetSpan) {
					continue
				}
				slots = append(slots, slotCost{p, l.displacement(p, med)})
			}
		}
		if len(slots) == 0 {
			return nil, 0, false // nowhere to put this conflict cell
		}
		sort.Slice(slots, func(a, b int) bool {
			if slots[a].cost != slots[b].cost {
				return slots[a].cost < slots[b].cost
			}
			if slots[a].p.Y != slots[b].p.Y {
				return slots[a].p.Y < slots[b].p.Y
			}
			return slots[a].p.X < slots[b].p.X
		})
		if cap := l.Cfg.MaxSlotsPerConflict; cap > 0 && len(slots) > cap {
			slots = slots[:cap]
		}
		var terms []ilp.Term
		for _, s := range slots {
			v := m.AddBinary("", s.cost)
			vars = append(vars, varPos{cc.ID, s.p})
			terms = append(terms, ilp.Term{Var: v, Coef: 1})
			row, _ := d.RowAt(s.p.Y)
			for x := s.p.X; x < s.p.X+cc.Macro.Width; x += sw {
				key := [2]int{int(row.Index), x}
				siteUse[key] = append(siteUse[key], ilp.Term{Var: v, Coef: 1})
			}
		}
		m.AddConstraint("one-pos", terms, ilp.EQ, 1)
	}
	for _, terms := range siteUse {
		if len(terms) > 1 {
			m.AddConstraint("site-cap", terms, ilp.LE, 1)
		}
	}
	sol := m.Solve(ilp.Options{MaxNodes: l.Cfg.MaxNodes, TimeLimit: l.Cfg.TimeLimit})
	switch {
	case sol.Status == ilp.Optimal:
		// Certified optimum; fall through to extraction.
	case sol.Status == ilp.LimitReached && sol.HasIncumbent:
		// Degradation ladder: the budget expired but the incumbent is an
		// integer-feasible assignment of the model, i.e. every conflict
		// cell takes exactly one pre-validated free slot and no site is
		// double-booked — legal, just possibly not displacement-optimal.
		l.incumbentKept.Add(1)
	default:
		// Infeasible (no way to clear the slot) or budget expired with no
		// incumbent: drop the candidate slot entirely.
		if sol.Status == ilp.LimitReached {
			l.budgetDropped.Add(1)
		}
		return nil, 0, false
	}
	moves := make(map[int32]geom.Point, len(conflicts))
	for i, vp := range vars {
		if sol.Value(ilp.VarID(i)) {
			moves[vp.cell] = vp.pos
		}
	}
	return moves, sol.Objective, true
}

// Apply commits a candidate: the critical cell and its conflict cells move
// atomically. The design stays legal or the call fails without changes.
func (l *Legalizer) Apply(cellID int32, cand Candidate) error {
	moves := map[int32]geom.Point{cellID: cand.Pos}
	for id, p := range cand.Conflicts {
		moves[id] = p
	}
	return l.D.MoveCells(moves)
}
