// Package legal implements the paper's ILP-based legalizer (Section IV.B.2,
// Eq. 11). Given a critical cell, it examines a local window of N_site
// sites by N_row rows around the cell and produces a set of *legal*
// placement candidates: target positions for the critical cell, each paired
// with the relocations of the conflict cells that must shift to make room.
// Every candidate is guaranteed overlap-free, on-site, and on-row, so
// CR&P's selection ILP can commit any of them directly and hand the result
// to a detailed router — the property the paper's framework depends on.
//
// For each candidate target slot the displaced cells' new positions are
// chosen by a small 0/1 ILP (internal/ilp) minimising Eq. 11's weighted
// displacement toward each cell's median position:
//
//	cost_c^(i,j) = W_site·|X − X_med| + H_row·|Y − Y_med|
package legal

import (
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/ilp"
)

// Config sets the window geometry and search effort. The paper uses
// NSites=20, NRows=5 and at most 3 cells per legalizer execution.
type Config struct {
	NSites        int // window width in sites
	NRows         int // window height in rows
	MaxCells      int // cells per ILP execution (critical + conflicts)
	MaxCandidates int // cap on returned candidates per critical cell
	// MaxSlotsPerConflict caps each conflict cell's relocation domain to
	// its cheapest slots; 0 means unlimited. Eq. 11 minimises
	// displacement, so distant slots never win — the cap only trims the
	// ILP.
	MaxSlotsPerConflict int
	// MaxNodes / TimeLimit budget each relocation ILP; 0 means unlimited
	// (the default — Eq. 11 models are tiny). When a budget expires the
	// legalizer degrades per the robustness ladder: the solver's best
	// incumbent is kept when it covers all conflict cells (it is legal by
	// construction of the model), otherwise the candidate slot is dropped.
	MaxNodes  int
	TimeLimit time.Duration
	// DisableSolverFastPath routes Run through the preserved seed
	// implementation (per-slot CheckLegal, per-call FreeSitesIn, dense-
	// tableau relocation solves, no result caches) — the differential-
	// testing escape hatch and the benchreport "before" column.
	DisableSolverFastPath bool
	// DisableCache keeps the sparse solver but turns off the window-result
	// and solve caches; a testing knob.
	DisableCache bool
}

// DefaultConfig returns the paper's experimental values.
func DefaultConfig() Config {
	return Config{NSites: 20, NRows: 5, MaxCells: 3, MaxCandidates: 8, MaxSlotsPerConflict: 12}
}

// Candidate is one legal placement option for a critical cell.
type Candidate struct {
	// Pos is the critical cell's target position (lower-left, DBU).
	Pos geom.Point
	// Conflicts maps displaced conflict cells to their new legal
	// positions; empty when the target slot was already free.
	Conflicts map[int32]geom.Point
	// Displacement is the Eq. 11 objective: the summed weighted
	// displacement of the critical cell and conflict cells from their
	// median positions.
	Displacement float64
}

// Stats counts the degradation-ladder outcomes of budgeted relocation
// ILPs. All-zero when no budget is configured (the default).
type Stats struct {
	// IncumbentKept counts relocation solves that hit their budget but
	// whose best incumbent was adopted (still a fully legal candidate).
	IncumbentKept int64
	// BudgetDropped counts candidate slots dropped because the budget
	// expired with no usable incumbent.
	BudgetDropped int64
	// WindowHits / WindowMisses count window-signature cache outcomes.
	WindowHits   int64
	WindowMisses int64
	// SolveHits / SolveMisses count relocation-ILP solution cache outcomes.
	SolveHits   int64
	SolveMisses int64
	// ShortcutSolves counts relocation models answered by the unique-
	// optimum shortcut without invoking the solver.
	ShortcutSolves int64
}

// Legalizer generates candidates against a design.
type Legalizer struct {
	D   *db.Design
	Cfg Config

	// Degradation counters; atomics because Run is called concurrently
	// from CR&P's worker pool.
	incumbentKept  atomic.Int64
	budgetDropped  atomic.Int64
	shortcutSolves atomic.Int64

	// noShortcut suppresses the unique-optimum relocation shortcut; set
	// only by the differential test that certifies the shortcut against
	// the full solver.
	noShortcut bool

	// Cumulative nanoseconds inside Run and inside relocation ILP solves,
	// summed across workers; feeds the GCP phase-time breakdown.
	runNS   atomic.Int64
	solveNS atomic.Int64

	// medEpoch scopes the per-worker median memos: BeginPass bumps it, and
	// Scratch memos tagged with an older epoch are cleared on next use.
	// Zero (no BeginPass ever called) disables cross-Run reuse entirely.
	medEpoch atomic.Uint64

	// Static fast-path state, built once in New.
	wmax    int               // widest cell in the design
	obsFree [][]geom.Interval // per row: obstacle X intervals blocking sites

	solveCache *ilp.SolveCache
	winCache   *windowCache
}

// Stats snapshots the degradation and cache counters.
func (l *Legalizer) Stats() Stats {
	s := Stats{
		IncumbentKept: l.incumbentKept.Load(),
		BudgetDropped: l.budgetDropped.Load(),
	}
	if l.winCache != nil {
		s.WindowHits = l.winCache.hits.Load()
		s.WindowMisses = l.winCache.misses.Load()
	}
	if l.solveCache != nil {
		s.SolveHits, s.SolveMisses = l.solveCache.Stats()
	}
	s.ShortcutSolves = l.shortcutSolves.Load()
	return s
}

// New creates a legalizer. Zero Config fields fall back to defaults.
func New(d *db.Design, cfg Config) *Legalizer {
	def := DefaultConfig()
	if cfg.NSites <= 0 {
		cfg.NSites = def.NSites
	}
	if cfg.NRows <= 0 {
		cfg.NRows = def.NRows
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = def.MaxCells
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = def.MaxCandidates
	}
	if cfg.MaxSlotsPerConflict <= 0 {
		cfg.MaxSlotsPerConflict = def.MaxSlotsPerConflict
	}
	l := &Legalizer{D: d, Cfg: cfg}
	for _, c := range d.Cells {
		if c.Macro.Width > l.wmax {
			l.wmax = c.Macro.Width
		}
	}
	// Obstacle X intervals per row, with FreeSitesIn's exact rowRect
	// overlap test; obstacles are static, so this is computed once.
	sw, sh := d.Tech.Site.Width, d.Tech.Site.Height
	l.obsFree = make([][]geom.Interval, len(d.Rows))
	for ri := range d.Rows {
		r := &d.Rows[ri]
		span := r.Span(sw)
		rowRect := geom.Rect{Lo: geom.Pt(span.Lo, r.Y), Hi: geom.Pt(span.Hi, r.Y+sh)}
		for _, o := range d.Obs {
			if o.Rect.Overlaps(rowRect) {
				l.obsFree[ri] = append(l.obsFree[ri], geom.Iv(o.Rect.Lo.X, o.Rect.Hi.X))
			}
		}
	}
	// Result caches are only sound on budget-less, fast-path solves: a
	// budgeted outcome depends on wall-clock and node order and must never
	// leak across calls (checkpoint/resume bit-identity).
	if !cfg.DisableSolverFastPath && !cfg.DisableCache && cfg.MaxNodes == 0 && cfg.TimeLimit == 0 {
		l.solveCache = ilp.NewSolveCache(0)
		l.winCache = newWindowCache(0)
	}
	return l
}

// window is the site/row extent the legalizer works in.
type window struct {
	rows   []int32 // row indices, ascending
	x0, x1 int     // DBU interval of the window's sites
}

// windowAround centres the window on the cell, clipping at the die.
func (l *Legalizer) windowAround(c *db.Cell) window {
	d := l.D
	sw := d.Tech.Site.Width
	halfW := l.Cfg.NSites * sw / 2
	x0 := geom.SnapDown(c.Pos.X-halfW, sw)
	x1 := x0 + l.Cfg.NSites*sw
	if x0 < d.Die.Lo.X {
		x0 = d.Die.Lo.X
		x1 = x0 + l.Cfg.NSites*sw
	}
	if x1 > d.Die.Hi.X {
		x1 = d.Die.Hi.X
		x0 = x1 - l.Cfg.NSites*sw
		if x0 < d.Die.Lo.X {
			x0 = d.Die.Lo.X
		}
	}
	r0 := int(c.Row) - l.Cfg.NRows/2
	r1 := r0 + l.Cfg.NRows
	if r0 < 0 {
		r0 = 0
		r1 = min(l.Cfg.NRows, len(d.Rows))
	}
	if r1 > len(d.Rows) {
		r1 = len(d.Rows)
		r0 = max(0, r1-l.Cfg.NRows)
	}
	w := window{x0: x0, x1: x1}
	for r := r0; r < r1; r++ {
		w.rows = append(w.rows, int32(r))
	}
	return w
}

// WindowRect returns the DBU rectangle the legalizer would work in for the
// cell: every candidate slot and every conflict relocation of a Run lies
// inside it. The Y extent covers the window's rows plus the cell's height
// (a relocated cell placed in the top row extends above the row bottom),
// and the X extent is padded by the widest macro so a slot near the window
// edge plus the cell's width stays inside. The sharded iteration partitions
// critical cells by these rectangles: cells whose rectangles are disjoint
// cannot share a target site or a relocated cell, so their selection
// sub-problems are independent.
func (l *Legalizer) WindowRect(cellID int32) geom.Rect {
	d := l.D
	c := d.Cells[cellID]
	w := l.windowAround(c)
	y0, y1 := c.Pos.Y, c.Pos.Y+c.Macro.Height
	if len(w.rows) > 0 {
		y0 = d.Rows[w.rows[0]].Y
		y1 = d.Rows[w.rows[len(w.rows)-1]].Y
	}
	maxH := 0
	maxW := 0
	for i := range d.Macros {
		maxH = max(maxH, d.Macros[i].Height)
		maxW = max(maxW, d.Macros[i].Width)
	}
	return geom.R(w.x0-maxW, y0, w.x1+maxW, y1+maxH)
}

// Run generates legal candidates for the critical cell. The current
// position is not included (CR&P's Algorithm 2 adds it separately); every
// returned candidate differs from the cell's current position. Candidates
// are sorted by ascending displacement.
func (l *Legalizer) Run(cellID int32) []Candidate {
	return l.RunScratch(cellID, nil)
}

// RunScratch is Run with caller-provided per-worker scratch buffers, the
// entry point for CR&P's parallel candidate-generation fan-out. scr must
// not be shared between concurrent callers; nil allocates a fresh one.
func (l *Legalizer) RunScratch(cellID int32, scr *Scratch) []Candidate {
	start := time.Now()
	defer func() { l.runNS.Add(time.Since(start).Nanoseconds()) }()
	d := l.D
	c := d.Cells[cellID]
	if c.Fixed {
		return nil
	}
	if l.Cfg.DisableSolverFastPath {
		return l.runLegacy(c)
	}
	if scr == nil {
		scr = NewScratch()
	}
	scr.reset(l.medEpoch.Load())
	w := l.windowAround(c)
	l.buildOccupancy(w, scr)
	if l.winCache == nil {
		return l.runWindow(c, w, scr)
	}
	key := l.windowKey(c, w, scr)
	if cands, ok := l.winCache.get(key); ok {
		return cands
	}
	out := l.runWindow(c, w, scr)
	l.winCache.put(key, out)
	return out
}

// runWindow is the cold path: enumerate target slots for the critical cell
// — every site-aligned position in the window where the cell fits inside
// the row span — ranked by the critical cell's own Eq. 11 displacement,
// then try them in order until MaxCandidates succeed.
func (l *Legalizer) runWindow(c *db.Cell, w window, scr *Scratch) []Candidate {
	d := l.D
	med := l.medianOf(scr, c.ID)
	sw := d.Tech.Site.Width
	cw, ch := c.Macro.Width, c.Macro.Height

	// Per-window-row slot legality, hoisted out of the site walk. Together
	// with the span/alignment guarantees of the walk itself this reproduces
	// d.CheckLegal exactly: rowOK is the die Y containment, the obs
	// intervals are the obstacles whose rect overlaps the cell's rect on
	// that row, and the die X containment is checked per slot below.
	if len(scr.obs) < len(w.rows) {
		scr.obs = append(scr.obs, make([][]geom.Interval, len(w.rows)-len(scr.obs))...)
	}
	scr.rowOK = scr.rowOK[:0]
	cellEmpty := cw <= 0 || ch <= 0 // empty rects overlap no obstacle
	for wi, ri := range w.rows {
		row := &d.Rows[ri]
		scr.rowOK = append(scr.rowOK, row.Y >= d.Die.Lo.Y && row.Y+ch <= d.Die.Hi.Y)
		obs := scr.obs[wi][:0]
		if !cellEmpty {
			for _, o := range d.Obs {
				if !o.Rect.Empty() && o.Rect.Lo.Y < row.Y+ch && row.Y < o.Rect.Hi.Y {
					obs = append(obs, geom.Iv(o.Rect.Lo.X, o.Rect.Hi.X))
				}
			}
		}
		scr.obs[wi] = obs
	}

	slots := scr.winSlots[:0]
	for wi, ri := range w.rows {
		if !scr.rowOK[wi] {
			continue
		}
		row := &d.Rows[ri]
		span := row.Span(sw)
		lo := max(w.x0, span.Lo)
		hi := min(w.x1, span.Hi)
		for x := geom.SnapUp(lo-row.X, sw) + row.X; x+cw <= hi; x += sw {
			pos := geom.Pt(x, row.Y)
			if pos == c.Pos {
				continue
			}
			if x < d.Die.Lo.X || x+cw > d.Die.Hi.X {
				continue
			}
			blocked := false
			for _, iv := range scr.obs[wi] {
				if iv.Lo < x+cw && x < iv.Hi {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			slots = append(slots, winSlot{pos, wi, l.displacement(pos, med)})
		}
	}
	scr.winSlots = slots[:0]
	// (cost, Y, X) is a total order over distinct positions, so any sort
	// algorithm yields the same permutation — the generic SortFunc avoids
	// sort.Slice's per-call reflection swapper.
	slices.SortFunc(slots, func(a, b winSlot) int {
		switch {
		case a.cost != b.cost:
			if a.cost < b.cost {
				return -1
			}
			return 1
		case a.pos.Y != b.pos.Y:
			return a.pos.Y - b.pos.Y
		default:
			return a.pos.X - b.pos.X
		}
	})

	var out []Candidate
	for _, s := range slots {
		if len(out) >= l.Cfg.MaxCandidates {
			break
		}
		cand, ok := l.trySlot(c, s.pos, s.wi, w, med, scr)
		if ok {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Displacement < out[b].Displacement })
	return out
}

// displacement is Eq. 11's cost of a position: the L1 distance from the
// median in DBU. Because positions are site- and row-aligned this equals
// W_site·|Δsite| + H_row·|Δrow|, the exact form printed in the paper.
func (l *Legalizer) displacement(pos, med geom.Point) float64 {
	return float64(geom.Abs(pos.X-med.X) + geom.Abs(pos.Y-med.Y))
}

// tryslot checks whether the critical cell can take pos. If cells are in
// the way, the conflict cells (at most MaxCells-1) are relocated inside the
// window by the ILP; failure to relocate rejects the slot.
func (l *Legalizer) trySlot(c *db.Cell, pos geom.Point, wi int, w window, med geom.Point, scr *Scratch) (Candidate, bool) {
	d := l.D
	span := geom.Iv(pos.X, pos.X+c.Macro.Width)

	// Conflict cells: movable cells overlapping the target span (other
	// than the critical cell itself). The occupancy snapshot holds this
	// row's cells in the same left-to-right order CellsInRowRange returns.
	var conflicts []*db.Cell
	for _, blk := range scr.occ[scr.occOff[wi]:scr.occOff[wi+1]] {
		if blk.b <= span.Lo || blk.a >= span.Hi || blk.id == c.ID {
			continue
		}
		if blk.fixed {
			return Candidate{}, false // cannot displace fixed cells
		}
		conflicts = append(conflicts, d.Cells[blk.id])
	}
	if len(conflicts) > l.Cfg.MaxCells-1 {
		return Candidate{}, false // paper caps the execution at |cells|=3
	}
	if len(conflicts) == 0 {
		return Candidate{
			Pos:          pos,
			Conflicts:    map[int32]geom.Point{},
			Displacement: l.displacement(pos, med),
		}, true
	}

	moves, cost, ok := l.relocateConflicts(c, pos, conflicts, w, scr)
	if !ok {
		return Candidate{}, false
	}
	return Candidate{
		Pos:          pos,
		Conflicts:    moves,
		Displacement: l.displacement(pos, med) + cost,
	}, true
}

// relocateConflicts builds and solves the Eq. 11 ILP for the conflict
// cells: each must take exactly one free slot in the window, slots must not
// overlap each other or the critical cell's target, and the objective is
// the summed displacement toward each conflict cell's median.
func (l *Legalizer) relocateConflicts(c *db.Cell, pos geom.Point, conflicts []*db.Cell, w window, scr *Scratch) (map[int32]geom.Point, float64, bool) {
	d := l.D
	sw := d.Tech.Site.Width
	ignore := append(scr.ignore[:0], c.ID)
	for _, cc := range conflicts {
		ignore = append(ignore, cc.ID)
	}
	scr.ignore = ignore[:0]
	targetSpan := geom.Iv(pos.X, pos.X+c.Macro.Width)

	// Phase 1: each conflict cell's feasible slot list, sorted by the
	// (cost, Y, X) total order — memoised across the target slots of this
	// Run (conflictSlots). Slots overlapping the critical cell's target are
	// filtered out here, and only the cheapest few kept: the ILP never
	// benefits from far-away relocations (Eq. 11 minimises displacement),
	// and the cap keeps the model tiny. Filtering the sorted list is the
	// same as sorting the filtered set (total order), so the memo never
	// changes the built model. Lists live concatenated in scr.conSlots with
	// offs[k] marking conflict k's start.
	maxSlots := l.Cfg.MaxSlotsPerConflict
	filt := scr.conSlots[:0]
	offs := scr.filtOff[:0]
	for _, cc := range conflicts {
		med := l.medianOf(scr, cc.ID)
		full := l.conflictSlots(cc, conflicts, med, w, ignore, scr)
		n0 := len(filt)
		offs = append(offs, int32(n0))
		for _, s := range full {
			// Same row as the target iff same Y; rows sit at distinct Y.
			if s.p.Y == pos.Y && geom.Iv(s.p.X, s.p.X+cc.Macro.Width).Overlaps(targetSpan) {
				continue
			}
			filt = append(filt, s)
			if maxSlots > 0 && len(filt)-n0 == maxSlots {
				break
			}
		}
		if len(filt) == n0 {
			scr.conSlots, scr.filtOff = filt[:0], offs[:0]
			return nil, 0, false // nowhere to put this conflict cell
		}
	}
	offs = append(offs, int32(len(filt)))
	scr.conSlots, scr.filtOff = filt[:0], offs[:0]

	// Phase 2: unique-optimum shortcut. When every conflict cell's cheapest
	// slot is strictly cheaper than its second-cheapest, the sum of the
	// minima is a lower bound on every assignment, and any other assignment
	// pays strictly more in at least one cell — so if the minima are
	// pairwise non-overlapping (site-caps hold; one-pos holds trivially)
	// they are the unique optimum and any correct solver must return
	// exactly them, with exactly this objective (component objectives are
	// accumulated in conflict order, matching the sum below). Certified
	// bit-exact against the full solver by
	// TestRelocationShortcutBitIdentical; budgeted configs skip the
	// shortcut because their degradation outcomes depend on node accounting
	// the shortcut does not perform.
	if !l.noShortcut && !l.Cfg.DisableSolverFastPath &&
		l.Cfg.MaxNodes == 0 && l.Cfg.TimeLimit == 0 {
		unique := true
		for k := range conflicts {
			s := filt[offs[k]:offs[k+1]]
			if len(s) > 1 && s[0].cost >= s[1].cost {
				unique = false
				break
			}
		}
		if unique {
			feasible := true
			for a := 0; a < len(conflicts) && feasible; a++ {
				sa, wa := filt[offs[a]], conflicts[a].Macro.Width
				for b := a + 1; b < len(conflicts); b++ {
					sb, wb := filt[offs[b]], conflicts[b].Macro.Width
					if sa.p.Y == sb.p.Y && sa.p.X < sb.p.X+wb && sb.p.X < sa.p.X+wa {
						feasible = false
						break
					}
				}
			}
			if feasible {
				l.shortcutSolves.Add(1)
				moves := make(map[int32]geom.Point, len(conflicts))
				cost := 0.0
				for k, cc := range conflicts {
					s := filt[offs[k]]
					moves[cc.ID] = s.p
					cost += s.cost
				}
				return moves, cost, true
			}
		}
	}

	// Phase 3: build the Eq. 11 model from the collected lists.
	if scr.model == nil {
		scr.model = ilp.NewModel()
	}
	m := scr.model
	m.Reset()
	vars := scr.vars[:0]
	for k, cc := range conflicts {
		slots := filt[offs[k]:offs[k+1]]
		terms := make([]ilp.Term, 0, len(slots))
		for _, s := range slots {
			v := m.AddBinary("", s.cost)
			vars = append(vars, varPos{cc.ID, int32(s.wi), s.p})
			terms = append(terms, ilp.Term{Var: v, Coef: 1})
		}
		m.AddConstraint("one-pos", terms, ilp.EQ, 1)
	}
	scr.vars = vars[:0]

	// Site-capacity rows over a dense per-window site grid, emitted in
	// ascending (window row, site) order — exactly the order the former
	// map-and-sort bookkeeping produced by sorting its (row, x) keys, and
	// with terms in variable-creation order exactly as the map appends were,
	// so the built model is byte-identical. Window rows are ascending row
	// indices, and every slot footprint lies inside [lo, hi) of its row (the
	// freeSitesFast walk bounds), so each row's columns are a contiguous
	// block. Geometry pass: per-row first column and column offsets.
	kLo := scr.siteKLo[:0]
	colOff := scr.siteOff[:0]
	totalCols := 0
	for _, ri := range w.rows {
		row := &d.Rows[ri]
		span := row.Span(sw)
		lo := geom.SnapUp(max(w.x0, span.Lo)-row.X, sw) + row.X
		hi := min(w.x1, span.Hi)
		colOff = append(colOff, int32(totalCols))
		if hi-sw < lo {
			kLo = append(kLo, 0) // row contributes no sites
			continue
		}
		k0 := int32((lo - row.X) / sw)
		k1 := int32((hi - sw - row.X) / sw)
		kLo = append(kLo, k0)
		totalCols += int(k1-k0) + 1
	}
	colOff = append(colOff, int32(totalCols))
	scr.siteKLo, scr.siteOff = kLo, colOff

	// Counting pass over every variable's footprint sites.
	counts := scr.siteCol
	if cap(counts) < totalCols {
		counts = make([]int32, totalCols)
	} else {
		counts = counts[:totalCols]
		for i := range counts {
			counts[i] = 0
		}
	}
	scr.siteCol = counts
	nTerms := 0
	for _, vp := range vars {
		width := d.Cells[vp.cell].Macro.Width
		row := &d.Rows[w.rows[vp.wi]]
		col := colOff[vp.wi] + int32((vp.pos.X-row.X)/sw) - kLo[vp.wi]
		for x := vp.pos.X; x < vp.pos.X+width; x += sw {
			counts[col]++
			col++
			nTerms++
		}
	}
	// Exclusive prefix sum turns counts into per-column fill cursors.
	sum := int32(0)
	for i := range counts {
		n := counts[i]
		counts[i] = sum
		sum += n
	}
	// Fill pass: terms land grouped by column, in variable order within each
	// column. The arena is sized up front so the subslices handed to
	// AddConstraint stay valid for the lifetime of the model build.
	siteTerms := scr.siteTerms
	if cap(siteTerms) < nTerms {
		siteTerms = make([]ilp.Term, nTerms)
	} else {
		siteTerms = siteTerms[:nTerms]
	}
	scr.siteTerms = siteTerms
	for i, vp := range vars {
		width := d.Cells[vp.cell].Macro.Width
		row := &d.Rows[w.rows[vp.wi]]
		col := colOff[vp.wi] + int32((vp.pos.X-row.X)/sw) - kLo[vp.wi]
		for x := vp.pos.X; x < vp.pos.X+width; x += sw {
			siteTerms[counts[col]] = ilp.Term{Var: ilp.VarID(i), Coef: 1}
			counts[col]++
			col++
		}
	}
	// After the fill, counts[c] is the end offset of column c (and hence the
	// start offset of column c+1). Constraint order steers the solver's
	// tie-breaking between equal-cost optima, so the ascending emission here
	// is load-bearing for determinism.
	for c := 0; c < totalCols; c++ {
		start := int32(0)
		if c > 0 {
			start = counts[c-1]
		}
		if counts[c]-start > 1 {
			m.AddConstraint("site-cap", siteTerms[start:counts[c]], ilp.LE, 1)
		}
	}
	t0 := time.Now()
	sol := m.Solve(ilp.Options{
		MaxNodes:              l.Cfg.MaxNodes,
		TimeLimit:             l.Cfg.TimeLimit,
		DisableSolverFastPath: l.Cfg.DisableSolverFastPath,
		Cache:                 l.solveCache,
	})
	l.solveNS.Add(time.Since(t0).Nanoseconds())
	switch {
	case sol.Status == ilp.Optimal:
		// Certified optimum; fall through to extraction.
	case sol.Status == ilp.LimitReached && sol.HasIncumbent:
		// Degradation ladder: the budget expired but the incumbent is an
		// integer-feasible assignment of the model, i.e. every conflict
		// cell takes exactly one pre-validated free slot and no site is
		// double-booked — legal, just possibly not displacement-optimal.
		l.incumbentKept.Add(1)
	default:
		// Infeasible (no way to clear the slot) or budget expired with no
		// incumbent: drop the candidate slot entirely.
		if sol.Status == ilp.LimitReached {
			l.budgetDropped.Add(1)
		}
		return nil, 0, false
	}
	moves := make(map[int32]geom.Point, len(conflicts))
	for i, vp := range vars {
		if sol.Value(ilp.VarID(i)) {
			moves[vp.cell] = vp.pos
		}
	}
	return moves, sol.Objective, true
}

// Apply commits a candidate: the critical cell and its conflict cells move
// atomically. The design stays legal or the call fails without changes.
func (l *Legalizer) Apply(cellID int32, cand Candidate) error {
	moves := map[int32]geom.Point{cellID: cand.Pos}
	for id, p := range cand.Conflicts {
		moves[id] = p
	}
	return l.D.MoveCells(moves)
}
