package legal

import (
	"math"
	"reflect"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/ispd"
)

// testDesign generates one of the synthetic ISPD-style testcases at a small
// scale; these include obstacles, mixed cell widths and realistic nets, so
// they exercise every branch of the window fast path.
func testDesign(t *testing.T, idx int) *db.Design {
	t.Helper()
	spec := ispd.Suite(0.02)[idx]
	d, err := ispd.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFreeSitesFastMatchesFreeSitesIn checks the occupancy-snapshot site
// walk against db.FreeSitesIn over real windows: same rows, same widths,
// same ignore sets — the lists must be identical.
func TestFreeSitesFastMatchesFreeSitesIn(t *testing.T) {
	for _, idx := range []int{0, 1} {
		d := testDesign(t, idx)
		l := New(d, DefaultConfig())
		scr := NewScratch()
		checked := 0
		for cid := 0; cid < len(d.Cells); cid += 5 {
			c := d.Cells[cid]
			if c.Fixed {
				continue
			}
			w := l.windowAround(c)
			scr.reset(0)
			l.buildOccupancy(w, scr)
			for wi, ri := range w.rows {
				blocks := scr.occ[scr.occOff[wi]:scr.occOff[wi+1]]
				ignores := [][]int32{{c.ID}}
				if len(blocks) > 0 {
					ignores = append(ignores, []int32{c.ID, blocks[0].id})
				}
				for _, ign := range ignores {
					ignMap := make(map[int32]bool, len(ign))
					for _, id := range ign {
						ignMap[id] = true
					}
					for _, width := range []int{c.Macro.Width, 2 * c.Macro.Width} {
						got := append([]int(nil), l.freeSitesFast(w, wi, ri, width, ign, scr)...)
						want := d.FreeSitesIn(ri, w.x0, w.x1, width, ignMap)
						if len(got) == 0 && len(want) == 0 {
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s cell %d row %d width %d ignore %v:\nfast %v\nwant %v",
								d.Name, cid, ri, width, ign, got, want)
						}
						checked++
					}
				}
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no free-site lists compared", d.Name)
		}
	}
}

// runAll collects every movable cell's candidates under one legalizer.
func runAll(l *Legalizer) map[int32][]Candidate {
	out := make(map[int32][]Candidate)
	for cid := range l.D.Cells {
		if cands := l.Run(int32(cid)); cands != nil {
			out[int32(cid)] = cands
		}
	}
	return out
}

// TestRunFastMatchesDense is the legalizer half of the differential-parity
// satellite, structured as the ladder documented in DESIGN.md ("Solver
// architecture"): on crp_test1 and crp_test2 the full fast path (sparse
// solver, presolve, window + solve caches) is compared candidate-for-
// candidate against the legacy dense-tableau path.
//
//	Level 1 — exact equality (the common case).
//	Level 2 — where the relocation ILP has multiple optima the sparse and
//	  dense solvers may tie-break differently; such candidates must still
//	  agree on target slot, total displacement and conflict set, and both
//	  relocation assignments must be cost-equal and legally applyable.
func TestRunFastMatchesDense(t *testing.T) {
	for _, idx := range []int{0, 1} {
		d := testDesign(t, idx)
		fast := New(d, DefaultConfig())
		denseCfg := DefaultConfig()
		denseCfg.DisableSolverFastPath = true
		dense := New(d, denseCfg)
		gotFast := runAll(fast)
		gotDense := runAll(dense)
		if len(gotFast) != len(gotDense) {
			t.Fatalf("%s: fast produced candidates for %d cells, dense for %d",
				d.Name, len(gotFast), len(gotDense))
		}
		ties := 0
		for cid, fc := range gotFast {
			dc, ok := gotDense[cid]
			if !ok || len(fc) != len(dc) {
				t.Fatalf("%s cell %d: fast %d candidates, dense %d", d.Name, cid, len(fc), len(dc))
			}
			for i := range fc {
				// Displacements are compared within 1e-9: presolve folds
				// fixed-variable costs into the objective in a different
				// order than the dense solver's term sum, which can shift
				// the bottom bits of an otherwise identical value.
				if fc[i].Pos == dc[i].Pos && sameCost(fc[i].Displacement, dc[i].Displacement) &&
					reflect.DeepEqual(fc[i].Conflicts, dc[i].Conflicts) {
					continue // level 1
				}
				// Level 2: a pure tie-break divergence.
				if fc[i].Pos != dc[i].Pos || !sameCost(fc[i].Displacement, dc[i].Displacement) {
					t.Fatalf("%s cell %d candidate %d: not a tie:\nfast  %+v\ndense %+v",
						d.Name, cid, i, fc[i], dc[i])
				}
				cf, cd := relocationCost(d, fc[i].Conflicts), relocationCost(d, dc[i].Conflicts)
				if len(fc[i].Conflicts) != len(dc[i].Conflicts) || !sameCost(cf, cd) {
					t.Fatalf("%s cell %d candidate %d: relocations not cost-equal (%v vs %v):\nfast  %+v\ndense %+v",
						d.Name, cid, i, cf, cd, fc[i], dc[i])
				}
				for _, cand := range []Candidate{fc[i], dc[i]} {
					snap := d.Snapshot()
					if err := fast.Apply(cid, cand); err != nil {
						t.Fatalf("%s cell %d candidate %d: tie-break variant not applyable: %v",
							d.Name, cid, i, err)
					}
					if err := d.Validate(); err != nil {
						t.Fatalf("%s cell %d candidate %d: design invalid after apply: %v",
							d.Name, cid, i, err)
					}
					if err := d.Restore(snap); err != nil {
						t.Fatal(err)
					}
				}
				ties++
			}
		}
		t.Logf("%s: %d tie-break divergences (all cost-equal and legal)", d.Name, ties)
		if s := fast.Stats(); s.WindowMisses == 0 {
			t.Fatalf("%s: window cache never consulted", d.Name)
		}
	}
}

// sameCost compares displacement objectives within 1e-9 relative tolerance.
func sameCost(a, b float64) bool {
	tol := 1e-9 * math.Max(1, math.Abs(b))
	return math.Abs(a-b) <= tol
}

// relocationCost recomputes Eq. 11's objective for a conflict assignment
// from the cells' current net medians.
func relocationCost(d *db.Design, moves map[int32]geom.Point) float64 {
	var sum float64
	for id, p := range moves {
		med := d.NetMedianOf(id)
		sum += float64(geom.Abs(p.X-med.X) + geom.Abs(p.Y-med.Y))
	}
	return sum
}

// TestRunPresolveOffParity: disabling only presolve (keeping the sparse
// simplex) must not change any candidate either.
func TestRunPresolveOffParity(t *testing.T) {
	d := testDesign(t, 0)
	fast := New(d, DefaultConfig())
	plainCfg := DefaultConfig()
	plainCfg.DisableCache = true
	plain := New(d, plainCfg)
	if !reflect.DeepEqual(runAll(fast), runAll(plain)) {
		t.Fatal("cache-on vs cache-off candidates differ")
	}
}

// TestWindowCacheBitIdentical: a second Run over the same design state must
// hit the window cache and return a deep-equal, non-aliased result.
func TestWindowCacheBitIdentical(t *testing.T) {
	d := testDesign(t, 0)
	l := New(d, DefaultConfig())
	cold := runAll(l)
	if s := l.Stats(); s.WindowHits != 0 {
		t.Fatalf("unexpected hits on cold pass: %d", s.WindowHits)
	}
	warm := runAll(l)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cached Run output differs from cold output")
	}
	s := l.Stats()
	if s.WindowHits == 0 {
		t.Fatal("warm pass produced no window-cache hits")
	}
	// Mutating a returned candidate must not poison the cache.
	for cid, cands := range warm {
		if len(cands) > 0 && len(cands[0].Conflicts) > 0 {
			for id := range cands[0].Conflicts {
				cands[0].Conflicts[id] = cands[0].Pos
				break
			}
			again := l.Run(cid)
			if !reflect.DeepEqual(again, cold[cid]) {
				t.Fatal("cache aliased caller state")
			}
			break
		}
	}
}

// TestWindowCacheInvalidatedByMoves: after cells move, cached windows whose
// occupancy changed must not be served stale — results must equal a fresh
// legalizer's on the new state.
func TestWindowCacheInvalidatedByMoves(t *testing.T) {
	d := testDesign(t, 0)
	l := New(d, DefaultConfig())
	runAll(l) // populate cache on the initial state

	// Apply the first available candidate to perturb the placement.
	moved := false
	for cid := 0; cid < len(d.Cells) && !moved; cid++ {
		if cands := l.Run(int32(cid)); len(cands) > 0 {
			if err := l.Apply(int32(cid), cands[0]); err == nil {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("could not perturb the design")
	}
	fresh := New(d, DefaultConfig())
	if got, want := runAll(l), runAll(fresh); !reflect.DeepEqual(got, want) {
		t.Fatal("warm legalizer diverged from fresh legalizer after a move")
	}
}

// TestRunRepeatable: with the sorted site-cap emission, repeated fresh runs
// on identical state are bit-identical (the old map-ordered emission made
// the relocation ILP's constraint order — and thus tie-breaking — random).
func TestRunRepeatable(t *testing.T) {
	d := testDesign(t, 1)
	cfg := DefaultConfig()
	cfg.DisableCache = true
	want := runAll(New(d, cfg))
	for i := 0; i < 5; i++ {
		if got := runAll(New(d, cfg)); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d differs from run 0", i+1)
		}
	}
}

// TestRelocationShortcutBitIdentical certifies the unique-optimum
// relocation shortcut: with the shortcut suppressed every single-conflict
// model goes through the full solver, and the outputs — selections AND
// objective bits, which feed the candidate Displacement sort — must be
// deep-equal to the shortcut path's. This is the proof obligation the
// shortcut's comment in relocateConflicts points at.
func TestRelocationShortcutBitIdentical(t *testing.T) {
	for _, idx := range []int{0, 1, 2} {
		d := testDesign(t, idx)
		withCfg := DefaultConfig()
		withCfg.DisableCache = true // isolate the shortcut from cache effects
		with := New(d, withCfg)
		without := New(d, withCfg)
		without.noShortcut = true
		got, want := runAll(with), runAll(without)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("design %d: shortcut output differs from solver output", idx)
		}
		if with.Stats().ShortcutSolves == 0 {
			t.Fatalf("design %d: shortcut never fired; test is vacuous", idx)
		}
		if without.Stats().ShortcutSolves != 0 {
			t.Fatalf("design %d: suppressed legalizer still used the shortcut", idx)
		}
	}
}
