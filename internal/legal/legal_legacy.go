package legal

import (
	"sort"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/ilp"
)

// This file preserves the pre-fast-path legalizer verbatim (per-slot
// db.CheckLegal, per-call db.FreeSitesIn, per-slot db.NetMedianOf, dense-
// tableau relocation solves). Cfg.DisableSolverFastPath routes Run through
// it, giving the differential parity tests and the benchreport "before"
// column a genuinely independent implementation rather than the fast path
// with a different solver backend. The one deliberate difference from the
// seed is the sorted site-cap emission — the old map-ordered emission made
// the relocation model's constraint order random, which was a latent
// nondeterminism bug, not behaviour worth preserving.

// runLegacy is the seed implementation of Run.
func (l *Legalizer) runLegacy(c *db.Cell) []Candidate {
	d := l.D
	w := l.windowAround(c)
	med := d.NetMedianOf(c.ID)
	sw := d.Tech.Site.Width

	// Enumerate target slots for the critical cell: every site-aligned
	// position in the window where the cell fits inside the row span,
	// ranked by the critical cell's own Eq. 11 displacement.
	type slot struct {
		pos  geom.Point
		cost float64
	}
	var slots []slot
	for _, ri := range w.rows {
		row := &d.Rows[ri]
		span := row.Span(sw)
		lo := max(w.x0, span.Lo)
		hi := min(w.x1, span.Hi)
		for x := geom.SnapUp(lo-row.X, sw) + row.X; x+c.Macro.Width <= hi; x += sw {
			pos := geom.Pt(x, row.Y)
			if pos == c.Pos {
				continue
			}
			if d.CheckLegal(c, pos) != nil {
				continue // obstacle or die clipping
			}
			slots = append(slots, slot{pos, l.displacement(pos, med)})
		}
	}
	sort.Slice(slots, func(a, b int) bool {
		if slots[a].cost != slots[b].cost {
			return slots[a].cost < slots[b].cost
		}
		if slots[a].pos.Y != slots[b].pos.Y {
			return slots[a].pos.Y < slots[b].pos.Y
		}
		return slots[a].pos.X < slots[b].pos.X
	})

	var out []Candidate
	for _, s := range slots {
		if len(out) >= l.Cfg.MaxCandidates {
			break
		}
		cand, ok := l.trySlotLegacy(c, s.pos, w, med)
		if ok {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Displacement < out[b].Displacement })
	return out
}

// trySlotLegacy checks whether the critical cell can take pos, relocating
// conflict cells with the dense-path ILP when needed.
func (l *Legalizer) trySlotLegacy(c *db.Cell, pos geom.Point, w window, med geom.Point) (Candidate, bool) {
	d := l.D
	row, _ := d.RowAt(pos.Y)
	span := geom.Iv(pos.X, pos.X+c.Macro.Width)

	// Conflict cells: movable cells overlapping the target span (other
	// than the critical cell itself).
	var conflicts []*db.Cell
	for _, id := range d.CellsInRowRange(row.Index, span.Lo, span.Hi) {
		if id == c.ID {
			continue
		}
		cc := d.Cells[id]
		if cc.Fixed {
			return Candidate{}, false // cannot displace fixed cells
		}
		conflicts = append(conflicts, cc)
	}
	if len(conflicts) > l.Cfg.MaxCells-1 {
		return Candidate{}, false // paper caps the execution at |cells|=3
	}
	if len(conflicts) == 0 {
		return Candidate{
			Pos:          pos,
			Conflicts:    map[int32]geom.Point{},
			Displacement: l.displacement(pos, med),
		}, true
	}

	moves, cost, ok := l.relocateConflictsLegacy(c, pos, conflicts, w)
	if !ok {
		return Candidate{}, false
	}
	return Candidate{
		Pos:          pos,
		Conflicts:    moves,
		Displacement: l.displacement(pos, med) + cost,
	}, true
}

// relocateConflictsLegacy builds the Eq. 11 relocation ILP with per-call
// db.FreeSitesIn scans and solves it on the dense tableau.
func (l *Legalizer) relocateConflictsLegacy(c *db.Cell, pos geom.Point, conflicts []*db.Cell, w window) (map[int32]geom.Point, float64, bool) {
	d := l.D
	sw := d.Tech.Site.Width
	ignore := map[int32]bool{c.ID: true}
	for _, cc := range conflicts {
		ignore[cc.ID] = true
	}
	targetRow, _ := d.RowAt(pos.Y)
	targetSpan := geom.Iv(pos.X, pos.X+c.Macro.Width)

	m := ilp.NewModel()
	type varPos struct {
		cell int32
		pos  geom.Point
	}
	var vars []varPos
	// siteUse[(row,siteX)] collects the variables covering each site.
	siteUse := map[[2]int][]ilp.Term{}

	for _, cc := range conflicts {
		med := d.NetMedianOf(cc.ID)
		// Collect the feasible slots, keep only the cheapest few: the ILP
		// never benefits from far-away relocations (Eq. 11 minimises
		// displacement), and the cap keeps the model tiny.
		type slotCost struct {
			p    geom.Point
			cost float64
		}
		var slots []slotCost
		for _, ri := range w.rows {
			row := &d.Rows[ri]
			for _, x := range d.FreeSitesIn(ri, w.x0, w.x1, cc.Macro.Width, ignore) {
				p := geom.Pt(x, row.Y)
				// Slots overlapping the critical cell's target are gone.
				if row.Index == targetRow.Index && geom.Iv(x, x+cc.Macro.Width).Overlaps(targetSpan) {
					continue
				}
				slots = append(slots, slotCost{p, l.displacement(p, med)})
			}
		}
		if len(slots) == 0 {
			return nil, 0, false // nowhere to put this conflict cell
		}
		sort.Slice(slots, func(a, b int) bool {
			if slots[a].cost != slots[b].cost {
				return slots[a].cost < slots[b].cost
			}
			if slots[a].p.Y != slots[b].p.Y {
				return slots[a].p.Y < slots[b].p.Y
			}
			return slots[a].p.X < slots[b].p.X
		})
		if cap := l.Cfg.MaxSlotsPerConflict; cap > 0 && len(slots) > cap {
			slots = slots[:cap]
		}
		var terms []ilp.Term
		for _, s := range slots {
			v := m.AddBinary("", s.cost)
			vars = append(vars, varPos{cc.ID, s.p})
			terms = append(terms, ilp.Term{Var: v, Coef: 1})
			row, _ := d.RowAt(s.p.Y)
			for x := s.p.X; x < s.p.X+cc.Macro.Width; x += sw {
				key := [2]int{int(row.Index), x}
				siteUse[key] = append(siteUse[key], ilp.Term{Var: v, Coef: 1})
			}
		}
		m.AddConstraint("one-pos", terms, ilp.EQ, 1)
	}
	siteKeys := make([][2]int, 0, len(siteUse))
	for k := range siteUse {
		siteKeys = append(siteKeys, k)
	}
	sort.Slice(siteKeys, func(a, b int) bool {
		if siteKeys[a][0] != siteKeys[b][0] {
			return siteKeys[a][0] < siteKeys[b][0]
		}
		return siteKeys[a][1] < siteKeys[b][1]
	})
	for _, k := range siteKeys {
		if terms := siteUse[k]; len(terms) > 1 {
			m.AddConstraint("site-cap", terms, ilp.LE, 1)
		}
	}
	t0 := time.Now()
	sol := m.Solve(ilp.Options{
		MaxNodes:              l.Cfg.MaxNodes,
		TimeLimit:             l.Cfg.TimeLimit,
		DisableSolverFastPath: true,
	})
	l.solveNS.Add(time.Since(t0).Nanoseconds())
	switch {
	case sol.Status == ilp.Optimal:
		// Certified optimum; fall through to extraction.
	case sol.Status == ilp.LimitReached && sol.HasIncumbent:
		// Degradation ladder: the budget expired but the incumbent is an
		// integer-feasible assignment of the model, i.e. every conflict
		// cell takes exactly one pre-validated free slot and no site is
		// double-booked — legal, just possibly not displacement-optimal.
		l.incumbentKept.Add(1)
	default:
		// Infeasible (no way to clear the slot) or budget expired with no
		// incumbent: drop the candidate slot entirely.
		if sol.Status == ilp.LimitReached {
			l.budgetDropped.Add(1)
		}
		return nil, 0, false
	}
	moves := make(map[int32]geom.Point, len(conflicts))
	for i, vp := range vars {
		if sol.Value(ilp.VarID(i)) {
			moves[vp.cell] = vp.pos
		}
	}
	return moves, sol.Objective, true
}
