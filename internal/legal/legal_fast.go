package legal

import (
	"encoding/binary"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/ilp"
)

// This file holds the GCP fast-path machinery around Run:
//
//   - Scratch: per-worker reusable buffers (median memo, window occupancy,
//     signature bytes) so the parallel candidate-generation fan-out
//     allocates almost nothing per critical cell;
//   - a one-pass window occupancy snapshot that replaces the repeated
//     db.FreeSitesIn scans (bit-exact: the same blocking intervals feed the
//     same site walk);
//   - a window-signature result cache: Run's output is a pure function of
//     the critical cell, its window geometry, the cells occupying the
//     window, and the net medians of every cell that could move — all of
//     which are folded into an exact byte key. A hit returns a deep copy of
//     what a cold Run computed, so cached and uncached runs are
//     bit-identical; the cache is disabled whenever solver budgets are set,
//     keeping checkpoint/resume determinism intact.

// Scratch holds reusable per-worker state for RunScratch. It must not be
// shared between concurrent callers.
type Scratch struct {
	med      map[int32]geom.Point
	medEpoch uint64
	occ      []occBlock
	occOff   []int
	obs      [][]geom.Interval
	rowOK    []bool
	blocks   []geom.Interval
	free     []int
	sig      []byte

	// Relocation-model build buffers (relocateConflicts). The site* slices
	// back the dense per-window site grid that replaced the former
	// map-and-sort site-capacity bookkeeping.
	ignore    []int32
	winSlots  []winSlot
	conSlots  []conSlot
	filtOff   []int32
	vars      []varPos
	siteKLo   []int32
	siteCol   []int32
	siteOff   []int32
	siteTerms []ilp.Term
	model     *ilp.Model

	// Per-Run memo of each conflict cell's full sorted relocation-slot list
	// (see conflictSlots). Keyed by the cell plus the other ignored conflict
	// cells; spans index into the memoSlots arena.
	slotMemo     map[[3]int32]memoSpan
	memoSlots    []conSlot
	conSlotsFull []conSlot

	// Median computation scratch (db.NetMedianOfScratch).
	medScr db.MedianScratch
}

// memoSpan locates one memoised slot list inside Scratch.memoSlots.
type memoSpan struct {
	off, n int32
}

// winSlot is one candidate target slot for the critical cell.
type winSlot struct {
	pos  geom.Point
	wi   int
	cost float64
}

// conSlot is one candidate relocation slot for a conflict cell.
type conSlot struct {
	p    geom.Point
	wi   int
	cost float64
}

// varPos maps a relocation-model variable back to (cell, slot).
type varPos struct {
	cell int32
	wi   int32
	pos  geom.Point
}

// NewScratch returns an empty scratch.
func NewScratch() *Scratch {
	return &Scratch{med: make(map[int32]geom.Point, 64)}
}

func (s *Scratch) reset(epoch uint64) {
	// Medians depend only on cell positions, so they stay valid for as
	// long as the caller's placement pass does: between BeginPass calls
	// the memo is shared across Runs. A zero epoch means the caller never
	// declared a pass — then nothing is known about mutations between
	// Runs and the memo is cleared every time (the conservative default).
	if epoch == 0 || s.medEpoch != epoch {
		clear(s.med)
		s.medEpoch = epoch
	}
	s.occ = s.occ[:0]
	s.occOff = s.occOff[:0]
	clear(s.slotMemo)
	s.memoSlots = s.memoSlots[:0]
}

// occBlock is one cell's footprint inside the window occupancy snapshot.
type occBlock struct {
	a, b  int
	id    int32
	fixed bool
}

// medianOf memoises db.NetMedianOf across the Runs of one legalizer pass
// (see BeginPass): the same cell's median used to be recomputed once per
// candidate slot, then once per Run.
func (l *Legalizer) medianOf(scr *Scratch, id int32) geom.Point {
	if p, ok := scr.med[id]; ok {
		return p
	}
	p := l.D.NetMedianOfScratch(id, &scr.medScr)
	scr.med[id] = p
	return p
}

// buildOccupancy snapshots, per window row, every cell whose footprint can
// block a slot in the window: CellsInRowRange over [x0, x1+wmax) is a
// superset of every [lo, hi+w) range FreeSitesIn would scan, and blocks
// outside the walked site range never change the overlap predicate.
func (l *Legalizer) buildOccupancy(w window, scr *Scratch) {
	d := l.D
	for _, ri := range w.rows {
		scr.occOff = append(scr.occOff, len(scr.occ))
		for _, id := range d.CellsInRowRange(ri, w.x0, w.x1+l.wmax) {
			cc := d.Cells[id]
			scr.occ = append(scr.occ, occBlock{
				a: cc.Pos.X, b: cc.Pos.X + cc.Macro.Width, id: id, fixed: cc.Fixed,
			})
		}
	}
	scr.occOff = append(scr.occOff, len(scr.occ))
}

// freeSitesFast reproduces db.FreeSitesIn exactly from the occupancy
// snapshot: same lo/hi arithmetic, same blocking intervals (non-ignored
// cells plus this row's obstacles), same ascending site walk — without the
// per-call range query, allocation, and whole-design obstacle scan. The
// result slice aliases scr.free and is valid until the next call.
func (l *Legalizer) freeSitesFast(w window, wi int, ri int32, width int, ignore []int32, scr *Scratch) []int {
	d := l.D
	r := &d.Rows[ri]
	sw := d.Tech.Site.Width
	span := r.Span(sw)
	lo := geom.SnapUp(max(w.x0, span.Lo)-r.X, sw) + r.X
	hi := min(w.x1, span.Hi)

	// A block [Lo, Hi) forbids exactly the sites x with Lo < x+width and
	// x < Hi, i.e. the open interval (Lo-width, Hi) of start positions.
	// Collecting those, merging strictly overlapping ones into a disjoint
	// ascending union, and sweeping one pointer along the site walk visits
	// each site and each block O(1) times instead of scanning every block
	// per site — with an identical free-site set by construction.
	blocks := scr.blocks[:0]
	for _, blk := range scr.occ[scr.occOff[wi]:scr.occOff[wi+1]] {
		ignored := false
		for _, id := range ignore {
			if blk.id == id {
				ignored = true
				break
			}
		}
		if !ignored {
			blocks = append(blocks, geom.Interval{Lo: blk.a - width, Hi: blk.b})
		}
	}
	for _, iv := range l.obsFree[ri] {
		blocks = append(blocks, geom.Interval{Lo: iv.Lo - width, Hi: iv.Hi})
	}
	slices.SortFunc(blocks, func(a, b geom.Interval) int {
		switch {
		case a.Lo < b.Lo:
			return -1
		case a.Lo > b.Lo:
			return 1
		default:
			return 0
		}
	})
	merged := 0
	for _, b := range blocks {
		// Open intervals union only under strict overlap; a shared endpoint
		// leaves the endpoint itself unblocked.
		if merged > 0 && b.Lo < blocks[merged-1].Hi {
			if b.Hi > blocks[merged-1].Hi {
				blocks[merged-1].Hi = b.Hi
			}
			continue
		}
		blocks[merged] = b
		merged++
	}
	blocks = blocks[:merged]
	scr.blocks = blocks[:0]

	out := scr.free[:0]
	p := 0
	for x := lo; x+width <= hi; x += sw {
		for p < len(blocks) && blocks[p].Hi <= x {
			p++
		}
		if p == len(blocks) || blocks[p].Lo >= x {
			out = append(out, x)
		}
	}
	scr.free = out
	return out
}

// conflictSlots returns conflict cell cc's full relocation-slot list —
// every free position in the window under the ignore set, costed against
// cc's median and sorted by the (cost, Y, X) total order — WITHOUT the
// per-target exclusions or the MaxSlotsPerConflict cap, which the caller
// applies by filtering. The list is a pure function of (cc, ignore set)
// for the duration of one Run (occupancy snapshot, obstacles and medians
// are all fixed), so it is memoised across the many target slots trySlot
// probes: sliding the critical cell's target across a conflict cell
// re-derives the same list once per target otherwise. The returned slice
// is valid until the next call.
func (l *Legalizer) conflictSlots(cc *db.Cell, conflicts []*db.Cell, med geom.Point, w window, ignore []int32, scr *Scratch) []conSlot {
	// The memo key is cc plus the other ignored conflict cells (the
	// critical cell is in every ignore set of a Run). Conflict sets larger
	// than the key just bypass the memo.
	memoable := len(conflicts) <= 3
	var key [3]int32
	if memoable {
		key = [3]int32{cc.ID, -1, -1}
		k := 1
		for _, o := range conflicts {
			if o.ID != cc.ID {
				key[k] = o.ID
				k++
			}
		}
		if scr.slotMemo == nil {
			scr.slotMemo = make(map[[3]int32]memoSpan, 32)
		} else if sp, ok := scr.slotMemo[key]; ok {
			return scr.memoSlots[sp.off : sp.off+sp.n]
		}
	}

	d := l.D
	slots := scr.conSlotsFull[:0]
	for wi, ri := range w.rows {
		row := &d.Rows[ri]
		for _, x := range l.freeSitesFast(w, wi, ri, cc.Macro.Width, ignore, scr) {
			p := geom.Pt(x, row.Y)
			slots = append(slots, conSlot{p, wi, l.displacement(p, med)})
		}
	}
	scr.conSlotsFull = slots[:0]
	// (cost, Y, X) is a total order over distinct positions; any sort
	// algorithm yields the same permutation.
	slices.SortFunc(slots, func(a, b conSlot) int {
		switch {
		case a.cost != b.cost:
			if a.cost < b.cost {
				return -1
			}
			return 1
		case a.p.Y != b.p.Y:
			return a.p.Y - b.p.Y
		default:
			return a.p.X - b.p.X
		}
	})
	if !memoable {
		return slots
	}
	off := int32(len(scr.memoSlots))
	scr.memoSlots = append(scr.memoSlots, slots...)
	scr.slotMemo[key] = memoSpan{off: off, n: int32(len(slots))}
	return scr.memoSlots[off : off+int32(len(slots))]
}

// windowKey folds every input Run depends on into an exact byte signature:
// the critical cell (identity, position, macro extent, net median), the
// window frame, and per row each occupying cell's identity, span and fixed
// bit — plus the net median of every movable cell that could become a
// conflict (footprint reaching left of x1). Geometry, obstacles and Config
// are static per Legalizer and need no encoding.
func (l *Legalizer) windowKey(c *db.Cell, w window, scr *Scratch) string {
	b := scr.sig[:0]
	put := func(v int) { b = binary.AppendVarint(b, int64(v)) }
	put(int(c.ID))
	put(c.Pos.X)
	put(c.Pos.Y)
	put(c.Macro.Width)
	put(c.Macro.Height)
	put(w.x0)
	put(w.x1)
	if len(w.rows) > 0 {
		put(int(w.rows[0]))
	}
	put(len(w.rows))
	med := l.medianOf(scr, c.ID)
	put(med.X)
	put(med.Y)
	for wi := range w.rows {
		blocks := scr.occ[scr.occOff[wi]:scr.occOff[wi+1]]
		put(len(blocks))
		for _, blk := range blocks {
			put(int(blk.id))
			put(blk.a)
			put(blk.b)
			if blk.fixed {
				b = append(b, 1)
				continue
			}
			b = append(b, 0)
			if blk.a < w.x1 {
				m := l.medianOf(scr, blk.id)
				put(m.X)
				put(m.Y)
			}
		}
	}
	scr.sig = b
	return string(b)
}

// windowCache memoises Run results by window signature, sharded for the
// concurrent candidate-generation fan-out. Values are deep-copied both in
// and out, so cache content never aliases caller state; eviction clears a
// full shard, which can only affect hit rate, never results.
type windowCache struct {
	shards   [windowCacheShards]windowShard
	perShard int
	hits     atomic.Int64
	misses   atomic.Int64
}

const windowCacheShards = 16

type windowShard struct {
	mu sync.Mutex
	m  map[string][]Candidate
}

func newWindowCache(capacity int) *windowCache {
	if capacity <= 0 {
		capacity = 1 << 13
	}
	c := &windowCache{perShard: (capacity + windowCacheShards - 1) / windowCacheShards}
	if c.perShard < 1 {
		c.perShard = 1
	}
	return c
}

func (c *windowCache) shard(key string) *windowShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%windowCacheShards]
}

func (c *windowCache) get(key string) ([]Candidate, bool) {
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return copyCandidates(v), true
}

func (c *windowCache) put(key string, cands []Candidate) {
	v := copyCandidates(cands)
	s := c.shard(key)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string][]Candidate)
	} else if len(s.m) >= c.perShard {
		clear(s.m)
	}
	s.m[key] = v
	s.mu.Unlock()
}

func copyCandidates(in []Candidate) []Candidate {
	if in == nil {
		return nil
	}
	out := make([]Candidate, len(in))
	for i, c := range in {
		cc := c
		cc.Conflicts = make(map[int32]geom.Point, len(c.Conflicts))
		for id, p := range c.Conflicts {
			cc.Conflicts[id] = p
		}
		out[i] = cc
	}
	return out
}

// BeginPass declares the start of a candidate-generation pass: the caller
// promises not to move any cell until the next BeginPass. Net medians are a
// pure function of cell positions, so for the duration of the pass every
// worker's median memo stays valid across Runs — without the declaration
// each Run conservatively recomputes the medians it needs. CR&P calls this
// once per iteration, right before the GCP fan-out.
func (l *Legalizer) BeginPass() {
	l.medEpoch.Add(1)
}

// Timing reports the cumulative CPU time spent inside Run across all
// workers, and the part of it spent inside relocation ILP solves. The
// difference is pure candidate-generation work. Both are summed wall-clock
// over concurrent workers, i.e. CPU-time-like, not elapsed time.
func (l *Legalizer) Timing() (run, solve time.Duration) {
	return time.Duration(l.runNS.Load()), time.Duration(l.solveNS.Load())
}
