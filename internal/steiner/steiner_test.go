package steiner

import (
	"math/rand"
	"testing"

	"github.com/crp-eda/crp/internal/geom"
)

// connected verifies the tree spans all its nodes.
func connected(t *Tree) bool {
	n := len(t.Nodes)
	if n == 0 {
		return true
	}
	adj := make([][]int32, n)
	for _, e := range t.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

func TestDegenerate(t *testing.T) {
	if tr := Build(nil); len(tr.Nodes) != 0 || len(tr.Edges) != 0 {
		t.Error("empty input should give empty tree")
	}
	tr := Build([]geom.Point{geom.Pt(3, 3)})
	if len(tr.Nodes) != 1 || len(tr.Edges) != 0 {
		t.Error("single point tree wrong")
	}
	// All-duplicate input collapses to one node.
	tr = Build([]geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(1, 1)})
	if len(tr.Nodes) != 1 || tr.Length() != 0 {
		t.Errorf("duplicate collapse: %+v", tr)
	}
}

func TestTwoTerminals(t *testing.T) {
	tr := Build([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)})
	if tr.Length() != 7 {
		t.Errorf("Length = %d, want 7", tr.Length())
	}
	if len(tr.Edges) != 1 {
		t.Errorf("Edges = %v", tr.Edges)
	}
}

func TestThreeTerminalsExact(t *testing.T) {
	// L-shaped triple: optimal Steiner point at median (5,5);
	// total = 5 + 5 + 5 = 15, vs MST 20.
	pts := []geom.Point{geom.Pt(0, 5), geom.Pt(5, 0), geom.Pt(10, 5), geom.Pt(5, 10)}
	_ = pts
	three := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8)}
	tr := Build(three)
	// Median is (5, 0): total length = 5 + 5 + 8 = 18.
	if tr.Length() != 18 {
		t.Errorf("Length = %d, want 18", tr.Length())
	}
	if !connected(&tr) {
		t.Error("tree not connected")
	}
}

func TestThreeTerminalsMedianIsTerminal(t *testing.T) {
	// The median coincides with the middle terminal: no Steiner point.
	tr := Build([]geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(10, 0)})
	if len(tr.Nodes) != 3 {
		t.Errorf("nodes = %d, want 3 (no extra Steiner point)", len(tr.Nodes))
	}
	if tr.Length() != 10 {
		t.Errorf("Length = %d, want 10", tr.Length())
	}
}

func TestFourCornersSteiner(t *testing.T) {
	// Four corners of a square: RSMT = 3*s (with two Steiner points or an
	// H shape); MST = 3*s as well for a square. Use a cross instead:
	// terminals at the 4 points of a plus sign, RSMT = 2*s via center.
	s := 10
	pts := []geom.Point{
		geom.Pt(0, s), geom.Pt(2*s, s), geom.Pt(s, 0), geom.Pt(s, 2*s),
	}
	tr := Build(pts)
	if !connected(&tr) {
		t.Fatal("not connected")
	}
	// Optimal: center (s,s) Steiner point, length 4*s = 40. MST would be 60.
	if tr.Length() != int64(4*s) {
		t.Errorf("Length = %d, want %d", tr.Length(), 4*s)
	}
}

func TestHananImprovesOverMST(t *testing.T) {
	// Classic case where 1-Steiner beats MST.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 1), geom.Pt(1, 10), geom.Pt(11, 11)}
	tr := Build(pts)
	mst := mstLength(pts)
	if tr.Length() > mst {
		t.Errorf("Steiner length %d exceeds MST %d", tr.Length(), mst)
	}
	if tr.Length() >= mst {
		t.Logf("note: no strict improvement on this instance (len=%d mst=%d)", tr.Length(), mst)
	}
}

func TestHighFanoutFallsBackToMST(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, hananCap+10)
	for i := range pts {
		pts[i] = geom.Pt(rng.Intn(1000), rng.Intn(1000))
	}
	tr := Build(pts)
	if !connected(&tr) {
		t.Fatal("not connected")
	}
	if len(tr.Nodes) != len(pts) {
		t.Errorf("MST fallback should add no Steiner points: %d nodes for %d terms",
			len(tr.Nodes), len(pts))
	}
	if tr.Length() != mstLength(pts) {
		t.Errorf("fallback length %d != MST %d", tr.Length(), mstLength(pts))
	}
}

// Core invariants on random instances:
//  1. tree is connected and spans all distinct terminals,
//  2. HPWL <= length <= MST length,
//  3. terminals keep their identity (first NumTerminals nodes).
func TestRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Intn(50), rng.Intn(50))
		}
		tr := Build(pts)
		if !connected(&tr) {
			t.Fatalf("trial %d: not connected (pts=%v)", trial, pts)
		}
		distinct := dedup(pts)
		if tr.NumTerminals != len(distinct) {
			t.Fatalf("trial %d: NumTerminals=%d, want %d", trial, tr.NumTerminals, len(distinct))
		}
		for i, p := range distinct {
			if tr.Nodes[i] != p {
				t.Fatalf("trial %d: terminal %d moved", trial, i)
			}
		}
		l := tr.Length()
		if l < HPWL(distinct) {
			t.Fatalf("trial %d: length %d below HPWL %d — impossible", trial, l, HPWL(distinct))
		}
		if l > mstLength(distinct) {
			t.Fatalf("trial %d: length %d exceeds MST %d — heuristic made it worse", trial, l, mstLength(distinct))
		}
		// No Steiner leaf nodes remain after pruning.
		for i := tr.NumTerminals; i < len(tr.Nodes); i++ {
			if tr.Degree(int32(i)) < 2 {
				t.Fatalf("trial %d: Steiner point %d has degree %d", trial, i, tr.Degree(int32(i)))
			}
		}
		// Tree has exactly nodes-1 edges (it's a tree, not a graph).
		if len(tr.Edges) != len(tr.Nodes)-1 {
			t.Fatalf("trial %d: %d edges for %d nodes", trial, len(tr.Edges), len(tr.Nodes))
		}
	}
}

func TestHPWL(t *testing.T) {
	if HPWL(nil) != 0 || HPWL([]geom.Point{geom.Pt(3, 3)}) != 0 {
		t.Error("degenerate HPWL should be 0")
	}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 7)}
	if HPWL(pts) != 17 {
		t.Errorf("HPWL = %d, want 17", HPWL(pts))
	}
}

func BenchmarkBuild5Pin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 5)
	for i := range pts {
		pts[i] = geom.Pt(rng.Intn(10000), rng.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkBuild30PinMST(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 30)
	for i := range pts {
		pts[i] = geom.Pt(rng.Intn(10000), rng.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}
