// Package steiner builds rectilinear Steiner minimum tree (RSMT) topologies
// for nets — the repository's substitute for the FLUTE lookup-table package
// the paper's cost estimation (Algorithm 3, "getFlute") relies on.
//
// Small nets are solved exactly (<=3 terminals); larger nets use the
// iterated 1-Steiner heuristic over the Hanan grid, falling back to a plain
// rectilinear minimum spanning tree for very high fan-out nets where the
// heuristic's O(n^4) cost would not pay for itself. The global router only
// needs a consistent, near-optimal topology to decompose a net into two-pin
// segments; absolute optimality is not required.
package steiner

import (
	"github.com/crp-eda/crp/internal/geom"
)

// hananCap bounds the terminal count for which the 1-Steiner heuristic runs;
// above it the plain MST topology is used.
const hananCap = 16

// Tree is a rectilinear Steiner tree. The first NumTerminals nodes are the
// (deduplicated) input terminals in input order; any nodes after them are
// Steiner points. Edges connect node indices; each edge is realised as an
// L-shaped (or straight) rectilinear connection by the router.
type Tree struct {
	Nodes        []geom.Point
	Edges        [][2]int32
	NumTerminals int
}

// Length returns the total Manhattan length of all edges.
func (t *Tree) Length() int64 {
	var sum int64
	for _, e := range t.Edges {
		sum += int64(t.Nodes[e[0]].ManhattanDist(t.Nodes[e[1]]))
	}
	return sum
}

// Degree returns the number of edges incident to node i.
func (t *Tree) Degree(i int32) int {
	d := 0
	for _, e := range t.Edges {
		if e[0] == i || e[1] == i {
			d++
		}
	}
	return d
}

// Build constructs a Steiner tree over pts. Duplicate points are merged.
// The result is connected and spans every distinct terminal.
func Build(pts []geom.Point) Tree {
	terms := dedup(pts)
	n := len(terms)
	switch n {
	case 0:
		return Tree{}
	case 1:
		return Tree{Nodes: terms, NumTerminals: 1}
	case 2:
		return Tree{Nodes: terms, Edges: [][2]int32{{0, 1}}, NumTerminals: 2}
	case 3:
		return threeTerminal(terms)
	}
	if n <= hananCap {
		return iteratedOneSteiner(terms)
	}
	nodes := append([]geom.Point(nil), terms...)
	return Tree{Nodes: nodes, Edges: mstEdges(nodes), NumTerminals: n}
}

func dedup(pts []geom.Point) []geom.Point {
	seen := make(map[geom.Point]bool, len(pts))
	out := make([]geom.Point, 0, len(pts))
	for _, p := range pts {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// threeTerminal returns the exact RSMT for three terminals: the median
// point is the single Steiner point (possibly coinciding with a terminal).
func threeTerminal(terms []geom.Point) Tree {
	med := geom.MedianPoint(terms)
	t := Tree{Nodes: append([]geom.Point(nil), terms...), NumTerminals: 3}
	medIdx := int32(-1)
	for i, p := range t.Nodes {
		if p == med {
			medIdx = int32(i)
			break
		}
	}
	if medIdx < 0 {
		t.Nodes = append(t.Nodes, med)
		medIdx = int32(len(t.Nodes) - 1)
	}
	for i := int32(0); i < 3; i++ {
		if i != medIdx {
			t.Edges = append(t.Edges, [2]int32{i, medIdx})
		}
	}
	return t
}

// mstEdges computes a rectilinear MST over nodes with Prim's algorithm.
func mstEdges(nodes []geom.Point) [][2]int32 {
	n := len(nodes)
	if n < 2 {
		return nil
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	from := make([]int32, n)
	inTree := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	from[0] = -1
	edges := make([][2]int32, 0, n-1)
	for iter := 0; iter < n; iter++ {
		best, bd := -1, inf
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		inTree[best] = true
		if from[best] >= 0 {
			edges = append(edges, [2]int32{from[best], int32(best)})
		}
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := nodes[best].ManhattanDist(nodes[i]); d < dist[i] {
					dist[i] = d
					from[i] = int32(best)
				}
			}
		}
	}
	return edges
}

func mstLength(nodes []geom.Point) int64 {
	var sum int64
	for _, e := range mstEdges(nodes) {
		sum += int64(nodes[e[0]].ManhattanDist(nodes[e[1]]))
	}
	return sum
}

// iteratedOneSteiner runs the classic Kahng/Robins iterated 1-Steiner
// heuristic: repeatedly add the Hanan-grid point that reduces the MST
// length the most, until no point helps.
func iteratedOneSteiner(terms []geom.Point) Tree {
	nodes := append([]geom.Point(nil), terms...)
	n := len(terms)

	xs := make([]int, 0, n)
	ys := make([]int, 0, n)
	for _, p := range terms {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	xs = uniqueInts(xs)
	ys = uniqueInts(ys)

	present := make(map[geom.Point]bool, len(nodes))
	for _, p := range nodes {
		present[p] = true
	}

	cur := mstLength(nodes)
	// At most n-2 Steiner points can be useful in an RSMT.
	for added := 0; added < n-2; added++ {
		var bestPt geom.Point
		bestLen := cur
		found := false
		for _, x := range xs {
			for _, y := range ys {
				cand := geom.Pt(x, y)
				if present[cand] {
					continue
				}
				trial := append(nodes, cand)
				if l := mstLength(trial); l < bestLen {
					bestLen = l
					bestPt = cand
					found = true
				}
			}
		}
		if !found {
			break
		}
		nodes = append(nodes, bestPt)
		present[bestPt] = true
		cur = bestLen
	}

	edges := mstEdges(nodes)
	nodes, edges = pruneSteiner(nodes, edges, n)
	return Tree{Nodes: nodes, Edges: edges, NumTerminals: n}
}

// pruneSteiner removes Steiner points of degree <= 1 (useless leaves) and
// splices out degree-2 Steiner points whose removal cannot lengthen the
// tree... degree-2 points are kept when splicing would change length (an
// L-bend), so only truly redundant collinear points are removed.
func pruneSteiner(nodes []geom.Point, edges [][2]int32, numTerms int) ([]geom.Point, [][2]int32) {
	for {
		deg := make([]int, len(nodes))
		adj := make([][]int32, len(nodes))
		for _, e := range edges {
			deg[e[0]]++
			deg[e[1]]++
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		removeIdx := -1
		var splice [2]int32 = [2]int32{-1, -1}
		for i := numTerms; i < len(nodes); i++ {
			if deg[i] <= 1 {
				removeIdx = i
				break
			}
			if deg[i] == 2 {
				a, b := adj[i][0], adj[i][1]
				through := nodes[a].ManhattanDist(nodes[i]) + nodes[i].ManhattanDist(nodes[b])
				if nodes[a].ManhattanDist(nodes[b]) == through {
					removeIdx = i
					splice = [2]int32{a, b}
					break
				}
			}
		}
		if removeIdx < 0 {
			return nodes, edges
		}
		var kept [][2]int32
		for _, e := range edges {
			if int(e[0]) != removeIdx && int(e[1]) != removeIdx {
				kept = append(kept, e)
			}
		}
		if splice[0] >= 0 {
			kept = append(kept, splice)
		}
		// Remove the node, remapping indices above it.
		nodes = append(nodes[:removeIdx], nodes[removeIdx+1:]...)
		for i := range kept {
			if int(kept[i][0]) > removeIdx {
				kept[i][0]--
			}
			if int(kept[i][1]) > removeIdx {
				kept[i][1]--
			}
		}
		edges = kept
	}
}

func uniqueInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// HPWL returns the half-perimeter bound of the terminal set: a lower bound
// on any Steiner tree length, used by tests and sanity checks.
func HPWL(pts []geom.Point) int64 {
	if len(pts) < 2 {
		return 0
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX = min(minX, p.X)
		maxX = max(maxX, p.X)
		minY = min(minY, p.Y)
		maxY = max(maxY, p.Y)
	}
	return int64(maxX-minX) + int64(maxY-minY)
}
