// Package shard partitions one CR&P iteration's critical set into regions
// whose selection sub-problems provably do not interact, so the
// label→generate→estimate→select pipeline can run per region concurrently
// and the results can be merged speculatively (see internal/crp's sharded
// iteration and DESIGN.md, "Sharding architecture").
//
// The partition is grid-based: a coarse grid is laid over the die, every
// critical cell's interaction rectangle (its legalizer window inflated by a
// halo) is rasterised onto the coarse cells it covers, and coarse cells
// sharing a rectangle are merged union-find style. Two overlapping
// rectangles always share a coarse cell, so cells whose rectangles overlap
// — directly or through a chain — always land in the same region,
// regardless of the grid resolution. The resolution only controls how
// eagerly nearby-but-disjoint rectangles are merged: finer grids give more
// regions, coarser grids fewer, never an unsound split.
//
// Routing-demand interactions between regions are deliberately NOT part of
// the partition: net bounding boxes routinely span the die, and folding
// them in would collapse everything into one region. They are instead
// checked optimistically at merge time, against the per-region demand
// journal and the rerouted nets' bounding-box footprints (again inflated by
// the halo) — the speculative half of the design.
package shard

import (
	"sort"
	"time"

	"github.com/crp-eda/crp/internal/geom"
)

// Input describes one partition request.
type Input struct {
	// Die is the placement area the coarse grid covers.
	Die geom.Rect
	// Targets is the requested region count; the coarse grid is the
	// smallest square grid with at least Targets cells. Values < 1 are
	// treated as 1.
	Targets int
	// Halo inflates every interaction rectangle (DBU) before rasterising,
	// so near-touching windows — whose candidates interact through routing
	// demand on shared GCell edges — merge instead of racing.
	Halo int
	// Rects holds one interaction rectangle per critical cell, in labeling
	// order: the legalizer window (every candidate slot and conflict
	// relocation lies inside it).
	Rects []geom.Rect
}

// Region is one independent group of critical cells.
type Region struct {
	// Members are critical-cell indices into Input.Rects, ascending.
	Members []int
	// Bounds is the union of the members' halo-inflated rectangles.
	Bounds geom.Rect
}

// Partition groups the critical cells into regions whose halo-inflated
// interaction rectangles are pairwise disjoint across regions. Regions are
// ordered by their smallest member index, so the output is deterministic
// for a given input. An empty input yields no regions.
func Partition(in Input) []Region {
	n := len(in.Rects)
	if n == 0 {
		return nil
	}
	dim := 1
	for dim*dim < max(in.Targets, 1) {
		dim++
	}
	w, h := in.Die.W(), in.Die.H()
	if w <= 0 || h <= 0 || dim == 1 {
		// Degenerate die or a single target: everything is one region.
		all := make([]int, n)
		b := geom.Rect{}
		for i := range all {
			all[i] = i
			b = b.Union(in.Rects[i].Expand(in.Halo))
		}
		return []Region{{Members: all, Bounds: b}}
	}

	// Union-find over coarse cells plus one node per critical cell.
	cellW := (w + dim - 1) / dim
	cellH := (h + dim - 1) / dim
	nodes := dim*dim + n
	parent := make([]int, nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	clampIdx := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	inflated := make([]geom.Rect, n)
	for i, r := range in.Rects {
		r = r.Expand(in.Halo)
		inflated[i] = r
		// Coarse-cell range the rectangle covers, clamped to the grid so
		// rectangles poking past the die still rasterise.
		cx0 := clampIdx((r.Lo.X-in.Die.Lo.X)/cellW, 0, dim-1)
		cx1 := clampIdx((r.Hi.X-1-in.Die.Lo.X)/cellW, 0, dim-1)
		cy0 := clampIdx((r.Lo.Y-in.Die.Lo.Y)/cellH, 0, dim-1)
		cy1 := clampIdx((r.Hi.Y-1-in.Die.Lo.Y)/cellH, 0, dim-1)
		self := dim*dim + i
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				union(self, cy*dim+cx)
			}
		}
	}

	byRoot := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(dim*dim + i)
		byRoot[r] = append(byRoot[r], i)
	}
	regions := make([]Region, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Ints(members)
		b := geom.Rect{}
		for _, m := range members {
			b = b.Union(inflated[m])
		}
		regions = append(regions, Region{Members: members, Bounds: b})
	}
	sort.Slice(regions, func(a, b int) bool {
		return regions[a].Members[0] < regions[b].Members[0]
	})
	return regions
}

// Makespan schedules the durations onto w workers with the longest-
// processing-time-first heuristic and returns the resulting makespan — the
// machine-independent model of the sharded pipeline's parallel wall clock
// that cmd/benchreport's shard_breakdown sweep reports next to the measured
// single-host numbers (see EXPERIMENTS.md).
func Makespan(durations []time.Duration, w int) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if w < 1 {
		w = 1
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	loads := make([]time.Duration, w)
	for _, d := range sorted {
		mi := 0
		for i := 1; i < w; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += d
	}
	var ms time.Duration
	for _, l := range loads {
		if l > ms {
			ms = l
		}
	}
	return ms
}
