package shard

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/geom"
)

func die() geom.Rect { return geom.R(0, 0, 1000, 1000) }

// regionOf returns the index of the region containing critical cell i.
func regionOf(t *testing.T, regions []Region, i int) int {
	t.Helper()
	for ri, r := range regions {
		for _, m := range r.Members {
			if m == i {
				return ri
			}
		}
	}
	t.Fatalf("cell %d in no region", i)
	return -1
}

func TestPartitionEmptyInput(t *testing.T) {
	if got := Partition(Input{Die: die(), Targets: 8}); got != nil {
		t.Fatalf("empty input produced regions: %v", got)
	}
}

func TestPartitionSingleTargetIsOneRegion(t *testing.T) {
	rects := []geom.Rect{geom.R(0, 0, 10, 10), geom.R(900, 900, 990, 990)}
	for _, targets := range []int{0, 1, -3} {
		regions := Partition(Input{Die: die(), Targets: targets, Rects: rects})
		if len(regions) != 1 || len(regions[0].Members) != 2 {
			t.Fatalf("targets=%d: want one region with both cells, got %v", targets, regions)
		}
	}
}

func TestPartitionDegenerateDieIsOneRegion(t *testing.T) {
	rects := []geom.Rect{geom.R(0, 0, 10, 10), geom.R(50, 50, 60, 60)}
	regions := Partition(Input{Die: geom.Rect{}, Targets: 16, Rects: rects})
	if len(regions) != 1 || len(regions[0].Members) != 2 {
		t.Fatalf("degenerate die must collapse to one region, got %v", regions)
	}
}

func TestPartitionDisjointCornersSplit(t *testing.T) {
	// Four compact rectangles in the four die corners: any grid with >= 2x2
	// coarse cells keeps them apart.
	rects := []geom.Rect{
		geom.R(0, 0, 50, 50),
		geom.R(950, 0, 1000, 50),
		geom.R(0, 950, 50, 1000),
		geom.R(950, 950, 1000, 1000),
	}
	regions := Partition(Input{Die: die(), Targets: 4, Rects: rects})
	if len(regions) != 4 {
		t.Fatalf("want 4 singleton regions, got %d: %v", len(regions), regions)
	}
	for i, r := range regions {
		if len(r.Members) != 1 || r.Members[0] != i {
			t.Errorf("region %d: want singleton member %d (smallest-member order), got %v", i, i, r.Members)
		}
		if r.Bounds != rects[i] {
			t.Errorf("region %d: bounds %v != member rect %v", i, r.Bounds, rects[i])
		}
	}
}

// TestPartitionOverlapNeverSplits is the soundness property: two critical
// cells whose halo-inflated rectangles overlap must share a region at EVERY
// target count — the grid resolution may merge disjoint rectangles, never
// split overlapping ones.
func TestPartitionOverlapNeverSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		rects := make([]geom.Rect, n)
		for i := range rects {
			x, y := rng.Intn(950), rng.Intn(950)
			rects[i] = geom.R(x, y, x+10+rng.Intn(120), y+10+rng.Intn(120))
		}
		halo := rng.Intn(3) * 5
		for _, targets := range []int{1, 2, 4, 9, 16, 64, 1024} {
			regions := Partition(Input{Die: die(), Targets: targets, Halo: halo, Rects: rects})
			total := 0
			for _, r := range regions {
				if !sort.IntsAreSorted(r.Members) {
					t.Fatalf("trial %d targets %d: members not ascending: %v", trial, targets, r.Members)
				}
				total += len(r.Members)
			}
			if total != n {
				t.Fatalf("trial %d targets %d: %d members across regions, want %d", trial, targets, total, n)
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rects[i].Expand(halo).Overlaps(rects[j].Expand(halo)) &&
						regionOf(t, regions, i) != regionOf(t, regions, j) {
						t.Fatalf("trial %d targets %d: overlapping rects %d/%d split across regions",
							trial, targets, i, j)
					}
				}
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rects := make([]geom.Rect, 40)
	for i := range rects {
		x, y := rng.Intn(900), rng.Intn(900)
		rects[i] = geom.R(x, y, x+20+rng.Intn(80), y+20+rng.Intn(80))
	}
	in := Input{Die: die(), Targets: 16, Halo: 5, Rects: rects}
	a := Partition(in)
	b := Partition(in)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same input produced different partitions")
	}
	for ri := 1; ri < len(a); ri++ {
		if a[ri].Members[0] <= a[ri-1].Members[0] {
			t.Fatalf("regions not ordered by smallest member: %v then %v", a[ri-1].Members, a[ri].Members)
		}
	}
}

func TestPartitionBoundsCoverMembers(t *testing.T) {
	rects := []geom.Rect{
		geom.R(10, 10, 60, 60),
		geom.R(40, 40, 120, 90),
		geom.R(800, 800, 900, 880),
	}
	halo := 7
	regions := Partition(Input{Die: die(), Targets: 16, Halo: halo, Rects: rects})
	for _, r := range regions {
		for _, m := range r.Members {
			inf := rects[m].Expand(halo)
			if r.Bounds.Union(inf) != r.Bounds {
				t.Errorf("region bounds %v do not cover member %d's inflated rect %v", r.Bounds, m, inf)
			}
		}
	}
}

func TestMakespan(t *testing.T) {
	ms := func(ds ...int) []time.Duration {
		out := make([]time.Duration, len(ds))
		for i, d := range ds {
			out[i] = time.Duration(d)
		}
		return out
	}
	cases := []struct {
		durations []time.Duration
		w         int
		want      time.Duration
	}{
		{nil, 4, 0},
		{ms(5, 3, 2), 1, 10}, // one worker: sum
		{ms(5, 3, 2), 2, 5},  // LPT: {5} vs {3,2}
		{ms(5, 3, 2), 8, 5},  // more workers than jobs: max
		{ms(4, 4, 4, 4), 2, 8},
		{ms(7), 0, 7}, // w < 1 clamps to 1
	}
	for _, tc := range cases {
		if got := Makespan(tc.durations, tc.w); got != tc.want {
			t.Errorf("Makespan(%v, %d) = %v, want %v", tc.durations, tc.w, got, tc.want)
		}
	}
	// Monotonicity: more workers never lengthens the modeled makespan.
	rng := rand.New(rand.NewSource(13))
	ds := make([]time.Duration, 20)
	for i := range ds {
		ds[i] = time.Duration(1 + rng.Intn(1000))
	}
	prev := Makespan(ds, 1)
	for w := 2; w <= 8; w++ {
		cur := Makespan(ds, w)
		if cur > prev {
			t.Fatalf("makespan grew from %v to %v when workers went %d -> %d", prev, cur, w-1, w)
		}
		prev = cur
	}
}
