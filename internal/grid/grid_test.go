package grid

import (
	"math"
	"math/rand"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// gridDesign builds a 12-row, 120-site design with two connected cells and
// one obstacle, giving a small multi-GCell lattice.
func gridDesign(t *testing.T) *db.Design {
	t.Helper()
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	nRows, nSites := 12, 120
	die := geom.R(0, 0, nSites*sw, nRows*rh)
	rows := make([]db.Row, nRows)
	for i := range rows {
		o := db.N
		if i%2 == 1 {
			o = db.FS
		}
		rows[i] = db.Row{Index: int32(i), X: 0, Y: i * rh, NumSites: nSites, Orient: o}
	}
	m := &db.Macro{
		Name: "M", Width: 2 * sw, Height: rh,
		Pins: []db.PinDef{{Name: "A", Offset: geom.Pt(sw/2, rh/2), Layer: 0}},
	}
	cells := []*db.Cell{
		{ID: 0, Name: "a", Macro: m, Pos: geom.Pt(0, 0)},
		{ID: 1, Name: "b", Macro: m, Pos: geom.Pt(100*sw, 10*rh)},
	}
	nets := []*db.Net{{ID: 0, Name: "n", Pins: []db.PinRef{{Cell: 0, Pin: 0}, {Cell: 1, Pin: 0}}}}
	obs := []db.Obstacle{{
		Name: "blk", Rect: geom.R(40*sw, 4*rh, 60*sw, 8*rh), Layers: []int{1, 2},
	}}
	d, err := db.New("grid", tc, die, rows, []*db.Macro{m}, cells, nets, obs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newGrid(t *testing.T) *Grid {
	t.Helper()
	return New(gridDesign(t), DefaultParams())
}

func TestLatticeDimensions(t *testing.T) {
	g := newGrid(t)
	if g.NL != 6 {
		t.Errorf("NL = %d, want 6 (n45)", g.NL)
	}
	if g.NX < 2 || g.NY < 2 {
		t.Fatalf("lattice too small: %dx%d", g.NX, g.NY)
	}
	// Every DBU point of the die maps into bounds.
	d := gridDesign(t)
	for _, p := range []geom.Point{d.Die.Lo, geom.Pt(d.Die.Hi.X-1, d.Die.Hi.Y-1), d.Die.Center()} {
		x, y := g.GCellOf(p)
		if !g.InBounds(x, y) {
			t.Errorf("GCellOf(%v) = (%d,%d) out of bounds", p, x, y)
		}
	}
}

func TestGCellRectRoundTrip(t *testing.T) {
	g := newGrid(t)
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			c := g.Center(x, y)
			gx, gy := g.GCellOf(c)
			if gx != x || gy != y {
				t.Fatalf("Center(%d,%d)=%v maps back to (%d,%d)", x, y, c, gx, gy)
			}
		}
	}
}

func TestLayer0HasNoCapacity(t *testing.T) {
	g := newGrid(t)
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if g.Capacity(x, y, 0) != 0 {
				t.Fatalf("M1 edge (%d,%d) has capacity", x, y)
			}
		}
	}
}

func TestCapacityMatchesTracks(t *testing.T) {
	g := newGrid(t)
	// metal3 (index 2) is horizontal with pitch 380; GCell height =
	// 3 rows * 2660; expect CellH/pitch tracks.
	want := float64(g.CellH / g.Tech.Layer(2).Pitch)
	if got := g.Capacity(0, 0, 2); got != want {
		t.Errorf("M3 capacity = %v, want %v", got, want)
	}
	// Vertical layer capacity uses the GCell width.
	want = float64(g.CellW / g.Tech.Layer(1).Pitch)
	if got := g.Capacity(0, 0, 1); got != want {
		t.Errorf("M2 capacity = %v, want %v", got, want)
	}
}

func TestBoundaryEdges(t *testing.T) {
	g := newGrid(t)
	// Horizontal layer: no edge leaving the rightmost column.
	if g.HasEdge(g.NX-1, 0, 2) {
		t.Error("edge off the right boundary")
	}
	if !g.HasEdge(g.NX-2, 0, 2) {
		t.Error("interior H edge missing")
	}
	// Vertical layer: no edge leaving the top row.
	if g.HasEdge(0, g.NY-1, 1) {
		t.Error("edge off the top boundary")
	}
	if g.Capacity(g.NX-1, 0, 2) != 0 {
		t.Error("boundary edge should have zero capacity")
	}
}

func TestObstacleSeedsFixedUsage(t *testing.T) {
	g := newGrid(t)
	d := gridDesign(t)
	// A GCell fully inside the obstacle on layer 1 must have fixed usage
	// equal to its full capacity.
	inner := d.Obs[0].Rect.Center()
	x, y := g.GCellOf(inner)
	fu := g.FixedUsage(x, y, 1)
	if fu <= 0 {
		t.Fatalf("no fixed usage under obstacle at (%d,%d)", x, y)
	}
	// Far corner: no fixed usage.
	if g.FixedUsage(0, 0, 1) != 0 {
		t.Error("fixed usage leaked to empty GCell on layer 1")
	}
	// Layer 3 is not blocked by the obstacle.
	if g.FixedUsage(x, y, 3) != 0 {
		t.Error("obstacle blocked an unlisted layer")
	}
}

func TestPinSeedsVias(t *testing.T) {
	g := newGrid(t)
	d := gridDesign(t)
	p := d.PinPosition(d.Cells[0], 0)
	x, y := g.GCellOf(p)
	if g.ViaCount(x, y, 0) < 1 {
		t.Errorf("pin GCell (%d,%d) has via count %v, want >= 1", x, y, g.ViaCount(x, y, 0))
	}
}

func TestDemandEquation(t *testing.T) {
	g := newGrid(t)
	// Pick an interior empty edge on layer 2 and add known quantities.
	x, y := 3, 3
	if !g.HasEdge(x, y, 2) {
		t.Skip("lattice smaller than expected")
	}
	base := g.Demand(x, y, 2)
	g.AddWire(x, y, 2, 3)
	if got := g.Demand(x, y, 2); math.Abs(got-base-3) > 1e-12 {
		t.Errorf("wire demand delta = %v, want 3", got-base)
	}
	// Vias at src raise demand by beta*sqrt((V+0)/2) on an edge with no
	// prior vias at either end.
	g2 := newGrid(t)
	g2.AddVia(x, y, 1, 2) // vias between M2 and M3 at src
	want := g2.Params.Beta * math.Sqrt((2+0)/2.0)
	got := g2.Demand(x, y, 2) - base
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("via demand delta = %v, want %v", got, want)
	}
}

func TestPenaltyShape(t *testing.T) {
	g := newGrid(t)
	x, y, l := 2, 2, 2
	// Uncongested edge: penalty near 0 (demand far below capacity).
	p0 := g.Penalty(x, y, l)
	if p0 > 0.3 {
		t.Errorf("empty edge penalty = %v, want small", p0)
	}
	// Fill demand to exactly capacity: penalty = 0.5.
	gap := g.Capacity(x, y, l) - g.Demand(x, y, l)
	g.AddWire(x, y, l, gap)
	if p := g.Penalty(x, y, l); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("at-capacity penalty = %v, want 0.5", p)
	}
	// Overflow: penalty approaches 1 and is monotone in demand.
	g.AddWire(x, y, l, 5)
	p1 := g.Penalty(x, y, l)
	g.AddWire(x, y, l, 5)
	p2 := g.Penalty(x, y, l)
	if !(0.5 < p1 && p1 < p2 && p2 < 1) {
		t.Errorf("penalty not increasing into overflow: %v then %v", p1, p2)
	}
}

func TestSlopeSharpensPenalty(t *testing.T) {
	d := gridDesign(t)
	pSoft := DefaultParams()
	pSoft.Slope = 0.5
	pHard := DefaultParams()
	pHard.Slope = 4.0
	gs := New(d, pSoft)
	gh := New(d, pHard)
	x, y, l := 2, 2, 2
	// Push both a little over capacity.
	for _, g := range []*Grid{gs, gh} {
		g.AddWire(x, y, l, g.Capacity(x, y, l)-g.Demand(x, y, l)+2)
	}
	if gh.Penalty(x, y, l) <= gs.Penalty(x, y, l) {
		t.Errorf("larger slope should penalise overflow harder: hard=%v soft=%v",
			gh.Penalty(x, y, l), gs.Penalty(x, y, l))
	}
}

func TestWireEdgeCost(t *testing.T) {
	g := newGrid(t)
	x, y, l := 2, 2, 2
	cost := g.WireEdgeCost(x, y, l)
	wantMin := g.Params.UnitWire // penalty >= 0
	wantMax := 2 * g.Params.UnitWire
	if cost < wantMin || cost > wantMax {
		t.Errorf("wire cost = %v, want in [%v,%v]", cost, wantMin, wantMax)
	}
	if !math.IsInf(g.WireEdgeCost(g.NX-1, 0, 2), 1) {
		t.Error("nonexistent edge should cost +Inf")
	}
}

func TestViaEdgeCost(t *testing.T) {
	g := newGrid(t)
	c := g.ViaEdgeCost(2, 2, 2)
	if c < g.Params.UnitVia || c > 2*g.Params.UnitVia {
		t.Errorf("via cost = %v out of range", c)
	}
	if !math.IsInf(g.ViaEdgeCost(2, 2, g.NL-1), 1) {
		t.Error("via above top layer should cost +Inf")
	}
	// A via touching unroutable M1 carries the max penalty on that side.
	cLow := g.ViaEdgeCost(2, 2, 0)
	if cLow <= c {
		t.Errorf("via to M1 (%v) should cost more than mid-stack via (%v)", cLow, c)
	}
}

func TestViaCostRisesWithCongestion(t *testing.T) {
	g := newGrid(t)
	x, y := 2, 2
	before := g.ViaEdgeCost(x, y, 1)
	// Congest both layers the via joins.
	g.AddWire(x, y, 1, g.Capacity(x, y, 1)+3)
	g.AddWire(x, y, 2, g.Capacity(x, y, 2)+3)
	after := g.ViaEdgeCost(x, y, 1)
	if after <= before {
		t.Errorf("via cost should rise with congestion: %v -> %v", before, after)
	}
}

func TestAddWireNegativePanics(t *testing.T) {
	g := newGrid(t)
	defer func() {
		if recover() == nil {
			t.Error("ripping up more than committed should panic")
		}
	}()
	g.AddWire(2, 2, 2, -1)
}

func TestOverflowStats(t *testing.T) {
	g := newGrid(t)
	if s := g.Overflow(); s.OverflowedEdges != 0 {
		t.Fatalf("fresh grid overflowed: %+v", s)
	}
	x, y, l := 2, 2, 2
	g.AddWire(x, y, l, g.Capacity(x, y, l)+4)
	s := g.Overflow()
	if s.OverflowedEdges != 1 {
		t.Errorf("OverflowedEdges = %d, want 1", s.OverflowedEdges)
	}
	if s.MaxOverflow <= 0 || s.TotalOverflow < s.MaxOverflow {
		t.Errorf("stats inconsistent: %+v", s)
	}
}

func TestEdgeCongestion(t *testing.T) {
	g := newGrid(t)
	x, y, l := 2, 2, 2
	g.AddWire(x, y, l, g.Capacity(x, y, l)) // fill to capacity (+ via seed)
	if got := g.EdgeCongestion(x, y, l); got < 1 {
		t.Errorf("congestion = %v, want >= 1", got)
	}
	if g.EdgeCongestion(0, 0, 0) != 0 {
		t.Error("M1 congestion should be 0 (no capacity)")
	}
}

// Wire accounting is conservative: committing then ripping identical usage
// returns the grid to its starting state.
func TestWireConservation(t *testing.T) {
	g := newGrid(t)
	rng := rand.New(rand.NewSource(8))
	type op struct{ x, y, l int }
	var ops []op
	before := g.TotalWireUsage()
	for i := 0; i < 200; i++ {
		x, y := rng.Intn(g.NX), rng.Intn(g.NY)
		l := 1 + rng.Intn(g.NL-1)
		if !g.HasEdge(x, y, l) {
			continue
		}
		g.AddWire(x, y, l, 1)
		ops = append(ops, op{x, y, l})
	}
	for _, o := range ops {
		g.AddWire(o.x, o.y, o.l, -1)
	}
	if after := g.TotalWireUsage(); math.Abs(after-before) > 1e-9 {
		t.Errorf("wire usage not conserved: before %v, after %v", before, after)
	}
}

func TestTotalViaCount(t *testing.T) {
	g := newGrid(t)
	base := g.TotalViaCount()
	g.AddVia(1, 1, 2, 3)
	if got := g.TotalViaCount(); math.Abs(got-base-3) > 1e-12 {
		t.Errorf("TotalViaCount delta = %v, want 3", got-base)
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.Beta != 1.5 {
		t.Errorf("Beta = %v, want 1.5 (paper Section IV.A)", p.Beta)
	}
	if p.UnitWire != 0.5 || p.UnitVia != 2.0 {
		t.Errorf("units = %v/%v, want 0.5/2.0 (ISPD-2018 weights)", p.UnitWire, p.UnitVia)
	}
}
