// Package grid models the 3D global-routing graph G of the paper's Section
// III: the die is partitioned into GCells, and every pair of adjacent GCells
// on a routing layer is joined by an edge e carrying a capacity C_e and a
// demand D_e. Demand follows Eq. 9,
//
//	D_e = U_w(e) + U_f(e) + β·δ_e,   δ_e = sqrt((V_src + V_dst)/2),
//
// and edge cost follows Eq. 10,
//
//	cost_e = Unit_e · Dist(e) · (1 + penalty(e)),
//
// with a logistic congestion penalty. The paper prints the penalty as
// 1/(1+exp(S·(D_e−C_e))), which decreases with demand — an obvious sign typo
// (its own prose says larger S causes "faster overflow"). We implement the
// intended increasing form 1/(1+exp(S·(C_e−D_e))).
package grid

import (
	"fmt"
	"math"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// Params collects the tunables of the demand/cost model with the paper's
// values as defaults (see DefaultParams).
type Params struct {
	// Beta weights the via estimate in demand (Eq. 9); the paper uses 1.5.
	Beta float64
	// Slope is S in the logistic penalty; larger values harden overflow.
	Slope float64
	// UnitWire and UnitVia are the Unit_e weights of Eq. 10. The ISPD-2018
	// evaluation weights a unit of wire 0.5 and a via 2.0, which the paper
	// notes makes vias 4x as expensive — the root of CR&P's via focus.
	UnitWire float64
	UnitVia  float64
	// RowsPerGCell sets the GCell height in placement rows; GCells are
	// square-ish, the width is the same DBU extent rounded to sites.
	RowsPerGCell int
	// PinViaWeight is the via-count seed contributed by each cell pin in a
	// GCell (pins need access vias in detailed routing, so pin-dense
	// GCells must look via-crowded to Eq. 9 before any routing exists).
	PinViaWeight float64
}

// DefaultParams returns the paper's parameter values.
func DefaultParams() Params {
	return Params{
		Beta:         1.5,
		Slope:        1.0,
		UnitWire:     0.5,
		UnitVia:      2.0,
		RowsPerGCell: 3,
		PinViaWeight: 1.0,
	}
}

// Grid is the 3D GCell graph. Edge convention: on a horizontal layer, edge
// (x,y) joins GCell (x,y) to (x+1,y); on a vertical layer it joins (x,y) to
// (x,y+1). Edges are stored in dense per-layer arrays indexed x + y*NX.
type Grid struct {
	Tech   *tech.Tech
	Params Params

	NX, NY, NL int
	CellW      int // GCell width, DBU
	CellH      int // GCell height, DBU
	Origin     geom.Point

	cap   [][]float64 // [layer][x+y*NX] edge capacity
	wire  [][]float64 // U_w wire usage
	fixed [][]float64 // U_f fixed usage
	vias  [][]float64 // [layer][gcell] vias between layer and layer+1 (len NL-1)

	// epoch counts demand mutations (AddWire/AddVia). Everything that
	// feeds Eq. 9/10 — and therefore every edge cost — is frozen while the
	// epoch is unchanged, so cost caches key their validity on it.
	epoch uint64

	// journal, when attached, records every demand mutation (see Journal).
	journal *Journal
}

// Epoch returns the demand epoch: it advances on every AddWire/AddVia, so
// any cost computed at epoch E stays valid exactly as long as Epoch() == E.
// Seeding during New (fixed usage, pin vias) happens before the grid is
// shared, so the initial epoch value is immaterial to cache correctness.
func (g *Grid) Epoch() uint64 { return g.epoch }

// New builds the grid for a design: sizes the GCell lattice, derives edge
// capacities from track counts, seeds fixed usage from obstacles, and seeds
// via counts from pin density.
func New(d *db.Design, p Params) *Grid {
	if p.RowsPerGCell <= 0 {
		p.RowsPerGCell = DefaultParams().RowsPerGCell
	}
	t := d.Tech
	cellH := p.RowsPerGCell * t.Site.Height
	cellW := geom.SnapNearest(cellH, t.Site.Width)
	if cellW <= 0 {
		cellW = t.Site.Width
	}
	nx := (d.Die.W() + cellW - 1) / cellW
	ny := (d.Die.H() + cellH - 1) / cellH
	nx = max(nx, 1)
	ny = max(ny, 1)
	g := &Grid{
		Tech:   t,
		Params: p,
		NX:     nx,
		NY:     ny,
		NL:     t.NumLayers(),
		CellW:  cellW,
		CellH:  cellH,
		Origin: d.Die.Lo,
	}
	n := nx * ny
	g.cap = make([][]float64, g.NL)
	g.wire = make([][]float64, g.NL)
	g.fixed = make([][]float64, g.NL)
	g.vias = make([][]float64, g.NL-1)
	for l := 0; l < g.NL; l++ {
		g.cap[l] = make([]float64, n)
		g.wire[l] = make([]float64, n)
		g.fixed[l] = make([]float64, n)
		if l < g.NL-1 {
			g.vias[l] = make([]float64, n)
		}
		g.initCapacity(l)
	}
	g.seedFixedFromObstacles(d)
	g.seedViasFromPins(d)
	return g
}

// initCapacity fills layer l's edge capacities with the number of preferred-
// direction tracks crossing each GCell boundary. Layer 0 (metal1) is
// reserved for pin shapes in this flow — as in the ISPD-2018 designs, where
// M1 routing is effectively unavailable — so its capacity is zero.
func (g *Grid) initCapacity(l int) {
	if l == 0 {
		return
	}
	layer := g.Tech.Layer(l)
	var tracks int
	if layer.Dir == tech.Horizontal {
		tracks = g.CellH / layer.Pitch
	} else {
		tracks = g.CellW / layer.Pitch
	}
	for i := range g.cap[l] {
		g.cap[l][i] = float64(tracks)
	}
	// Boundary edges that would leave the lattice get zero capacity.
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if !g.HasEdge(x, y, l) {
				g.cap[l][g.idx(x, y)] = 0
			}
		}
	}
}

// seedFixedFromObstacles converts each obstacle's coverage fraction of a
// GCell into fixed usage U_f on the obstacle's blocked layers.
func (g *Grid) seedFixedFromObstacles(d *db.Design) {
	for _, o := range d.Obs {
		for _, l := range o.Layers {
			if l <= 0 || l >= g.NL {
				continue
			}
			g.addAreaUsage(l, o.Rect)
		}
	}
}

// addAreaUsage adds capacity-proportional fixed usage on layer l for every
// GCell edge whose GCell overlaps r.
func (g *Grid) addAreaUsage(l int, r geom.Rect) {
	x0, y0 := g.GCellOf(r.Lo)
	x1, y1 := g.GCellOf(geom.Pt(r.Hi.X-1, r.Hi.Y-1))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			cellRect := g.GCellRect(x, y)
			frac := float64(cellRect.Intersect(r).Area()) / float64(cellRect.Area())
			i := g.idx(x, y)
			g.fixed[l][i] += frac * g.cap[l][i]
		}
	}
}

// seedViasFromPins adds PinViaWeight to the metal1→metal2 via count of each
// pin's GCell: every pin will need an access via stack in detailed routing.
func (g *Grid) seedViasFromPins(d *db.Design) {
	if g.NL < 2 {
		return
	}
	for _, n := range d.Nets {
		for _, pr := range n.Pins {
			c := d.Cells[pr.Cell]
			p := d.PinPosition(c, pr.Pin)
			x, y := g.GCellOf(p)
			g.vias[0][g.idx(x, y)] += g.Params.PinViaWeight
		}
		for _, io := range n.IOs {
			x, y := g.GCellOf(io.Pos)
			g.vias[0][g.idx(x, y)] += g.Params.PinViaWeight
		}
	}
}

func (g *Grid) idx(x, y int) int { return x + y*g.NX }

// InBounds reports whether (x,y) is a valid GCell coordinate.
func (g *Grid) InBounds(x, y int) bool {
	return x >= 0 && x < g.NX && y >= 0 && y < g.NY
}

// GCellOf maps a DBU point to its GCell coordinates, clamping to the lattice.
func (g *Grid) GCellOf(p geom.Point) (int, int) {
	x := (p.X - g.Origin.X) / g.CellW
	y := (p.Y - g.Origin.Y) / g.CellH
	x = geom.Iv(0, g.NX).Clamp(x)
	y = geom.Iv(0, g.NY).Clamp(y)
	return x, y
}

// GCellRect returns the DBU extent of GCell (x,y).
func (g *Grid) GCellRect(x, y int) geom.Rect {
	lo := geom.Pt(g.Origin.X+x*g.CellW, g.Origin.Y+y*g.CellH)
	return geom.Rect{Lo: lo, Hi: lo.Add(geom.Pt(g.CellW, g.CellH))}
}

// Center returns the DBU center of GCell (x,y).
func (g *Grid) Center(x, y int) geom.Point { return g.GCellRect(x, y).Center() }

// HasEdge reports whether the preferred-direction edge leaving GCell (x,y)
// on layer l exists (stays inside the lattice and the layer is routable).
func (g *Grid) HasEdge(x, y, l int) bool {
	if l <= 0 || l >= g.NL || !g.InBounds(x, y) {
		return false
	}
	if g.Tech.Layer(l).Dir == tech.Horizontal {
		return x+1 < g.NX
	}
	return y+1 < g.NY
}

// Capacity returns C_e of the edge leaving (x,y) on layer l.
func (g *Grid) Capacity(x, y, l int) float64 {
	if !g.HasEdge(x, y, l) {
		return 0
	}
	return g.cap[l][g.idx(x, y)]
}

// WireUsage returns U_w of the edge.
func (g *Grid) WireUsage(x, y, l int) float64 { return g.wire[l][g.idx(x, y)] }

// FixedUsage returns U_f of the edge.
func (g *Grid) FixedUsage(x, y, l int) float64 { return g.fixed[l][g.idx(x, y)] }

// AddWire adjusts the wire usage of the edge leaving (x,y) on layer l.
// Negative deltas rip up previously committed usage.
func (g *Grid) AddWire(x, y, l int, delta float64) {
	i := g.idx(x, y)
	g.epoch++
	if g.journal != nil {
		k := EdgeKey{L: int32(l), I: int32(i)}
		g.journal.Wire[k] += delta
		g.journal.Mutations++
		if g.journal.recordOps {
			g.journal.Ops = append(g.journal.Ops, JournalOp{Key: k, Delta: delta})
		}
	}
	g.wire[l][i] += delta
	if g.wire[l][i] < 0 {
		// Rip-up must never exceed what was committed; clamping hides an
		// accounting bug, so fail loudly.
		panic(fmt.Sprintf("grid: wire usage of edge (%d,%d,l%d) went negative", x, y, l))
	}
}

// ViaCount returns the number of vias between layers l and l+1 at GCell (x,y).
func (g *Grid) ViaCount(x, y, l int) float64 {
	if l < 0 || l >= g.NL-1 {
		return 0
	}
	return g.vias[l][g.idx(x, y)]
}

// AddVia adjusts the via count between layers l and l+1 at GCell (x,y).
func (g *Grid) AddVia(x, y, l int, delta float64) {
	i := g.idx(x, y)
	g.epoch++
	if g.journal != nil {
		k := EdgeKey{L: int32(l), I: int32(i)}
		g.journal.Vias[k] += delta
		g.journal.Mutations++
		if g.journal.recordOps {
			g.journal.Ops = append(g.journal.Ops, JournalOp{Key: k, Delta: delta, Via: true})
		}
	}
	g.vias[l][i] += delta
	if g.vias[l][i] < -1e-9 {
		panic(fmt.Sprintf("grid: via count at (%d,%d,l%d) went negative", x, y, l))
	}
}

// viasAt returns the total via count incident to GCell (x,y) on layer l
// (stacks from below and to above) — the V term of Eq. 9.
func (g *Grid) viasAt(x, y, l int) float64 {
	v := 0.0
	if l > 0 {
		v += g.vias[l-1][g.idx(x, y)]
	}
	if l < g.NL-1 {
		v += g.vias[l][g.idx(x, y)]
	}
	return v
}

// Demand computes D_e (Eq. 9) for the edge leaving (x,y) on layer l.
func (g *Grid) Demand(x, y, l int) float64 {
	i := g.idx(x, y)
	vSrc := g.viasAt(x, y, l)
	var vDst float64
	if g.Tech.Layer(l).Dir == tech.Horizontal {
		vDst = g.viasAt(x+1, y, l)
	} else {
		vDst = g.viasAt(x, y+1, l)
	}
	delta := math.Sqrt((vSrc + vDst) / 2)
	return g.wire[l][i] + g.fixed[l][i] + g.Params.Beta*delta
}

// Penalty computes the logistic congestion penalty of the edge (see the
// package comment about the paper's sign typo). It lies in (0,1), crossing
// 0.5 exactly when demand equals capacity.
func (g *Grid) Penalty(x, y, l int) float64 {
	d := g.Demand(x, y, l)
	c := g.Capacity(x, y, l)
	return logistic(g.Params.Slope, c-d)
}

func logistic(s, x float64) float64 { return 1 / (1 + math.Exp(s*x)) }

// WireEdgeCost computes Eq. 10 for the planar edge leaving (x,y) on layer l.
// Dist(e) is the Manhattan distance between GCell centers in GCell units
// (1 per step), keeping costs comparable across layers.
func (g *Grid) WireEdgeCost(x, y, l int) float64 {
	if !g.HasEdge(x, y, l) {
		return math.Inf(1)
	}
	return g.Params.UnitWire * 1 * (1 + g.Penalty(x, y, l))
}

// ViaEdgeCost computes Eq. 10 for the via edge between layers l and l+1 at
// GCell (x,y). A via's Dist is one unit; its penalty is the mean of the
// planar penalties at the two layers it joins, so stacking vias into a
// congested GCell is discouraged.
func (g *Grid) ViaEdgeCost(x, y, l int) float64 {
	if l < 0 || l >= g.NL-1 || !g.InBounds(x, y) {
		return math.Inf(1)
	}
	p := (g.planarPenaltyAt(x, y, l) + g.planarPenaltyAt(x, y, l+1)) / 2
	return g.Params.UnitVia * 1 * (1 + p)
}

// planarPenaltyAt samples the congestion around GCell (x,y) on layer l using
// the edge leaving it, falling back to the edge arriving when (x,y) is on
// the far boundary.
func (g *Grid) planarPenaltyAt(x, y, l int) float64 {
	if l <= 0 || l >= g.NL {
		return 1 // unroutable layer: maximally penalised
	}
	if g.HasEdge(x, y, l) {
		return g.Penalty(x, y, l)
	}
	if g.Tech.Layer(l).Dir == tech.Horizontal && x > 0 && g.HasEdge(x-1, y, l) {
		return g.Penalty(x-1, y, l)
	}
	if g.Tech.Layer(l).Dir == tech.Vertical && y > 0 && g.HasEdge(x, y-1, l) {
		return g.Penalty(x, y-1, l)
	}
	return 1
}

// DemandState is a deep copy of the grid's mutable routing demand: wire
// usage per layer and via counts per layer pair, in the grid's dense array
// layout. Capacities and fixed usage are derived deterministically from the
// design at construction and are deliberately not part of it — a checkpoint
// restores demand onto a freshly constructed grid.
//
// Wire usage also implicitly carries the construction-time seeding (pin via
// weights), which depends on the *initial* placement; restoring the arrays
// verbatim is what keeps a resumed run bit-identical even though the cells
// have moved since the grid was first seeded.
type DemandState struct {
	NX, NY, NL int
	Wire       [][]float64 // [layer][x+y*NX], len NL
	Vias       [][]float64 // [layer][gcell], len NL-1
}

// ExportDemand snapshots the mutable demand state.
func (g *Grid) ExportDemand() DemandState {
	s := DemandState{NX: g.NX, NY: g.NY, NL: g.NL}
	s.Wire = make([][]float64, g.NL)
	for l := range g.wire {
		s.Wire[l] = append([]float64(nil), g.wire[l]...)
	}
	s.Vias = make([][]float64, g.NL-1)
	for l := range g.vias {
		s.Vias[l] = append([]float64(nil), g.vias[l]...)
	}
	return s
}

// RestoreDemand overwrites the grid's wire and via demand with a prior
// ExportDemand, advancing the epoch so every cost cache revalidates.
func (g *Grid) RestoreDemand(s DemandState) error {
	if g.journal != nil {
		// A bulk overwrite cannot be expressed as journal deltas; restoring
		// mid-transaction would silently break the journal's completeness
		// guarantee.
		panic("grid: RestoreDemand while a demand journal is attached")
	}
	if s.NX != g.NX || s.NY != g.NY || s.NL != g.NL {
		return fmt.Errorf("grid: demand state is %dx%dx%d, grid is %dx%dx%d",
			s.NX, s.NY, s.NL, g.NX, g.NY, g.NL)
	}
	if len(s.Wire) != g.NL || len(s.Vias) != g.NL-1 {
		return fmt.Errorf("grid: demand state has %d wire / %d via layers, want %d / %d",
			len(s.Wire), len(s.Vias), g.NL, g.NL-1)
	}
	n := g.NX * g.NY
	for l, w := range s.Wire {
		if len(w) != n {
			return fmt.Errorf("grid: wire layer %d has %d edges, want %d", l, len(w), n)
		}
	}
	for l, v := range s.Vias {
		if len(v) != n {
			return fmt.Errorf("grid: via layer %d has %d gcells, want %d", l, len(v), n)
		}
	}
	for l := range g.wire {
		copy(g.wire[l], s.Wire[l])
	}
	for l := range g.vias {
		copy(g.vias[l], s.Vias[l])
	}
	g.epoch++
	return nil
}

// OverflowStats summarises congestion for rip-up & reroute scheduling and
// reporting.
type OverflowStats struct {
	OverflowedEdges int
	TotalOverflow   float64
	MaxOverflow     float64
}

// Overflow scans every edge and reports where demand exceeds capacity.
func (g *Grid) Overflow() OverflowStats {
	var s OverflowStats
	for l := 1; l < g.NL; l++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				if !g.HasEdge(x, y, l) {
					continue
				}
				ov := g.Demand(x, y, l) - g.Capacity(x, y, l)
				if ov > 0 {
					s.OverflowedEdges++
					s.TotalOverflow += ov
					s.MaxOverflow = math.Max(s.MaxOverflow, ov)
				}
			}
		}
	}
	return s
}

// EdgeCongestion returns demand/capacity of the edge, or 0 when the edge
// does not exist. Values above 1 are overflowed.
func (g *Grid) EdgeCongestion(x, y, l int) float64 {
	c := g.Capacity(x, y, l)
	if c <= 0 {
		return 0
	}
	return g.Demand(x, y, l) / c
}

// TotalWireUsage sums wire usage over all edges; conservation checks in
// tests use it to verify rip-up accounting.
func (g *Grid) TotalWireUsage() float64 {
	var sum float64
	for l := 1; l < g.NL; l++ {
		for _, w := range g.wire[l] {
			sum += w
		}
	}
	return sum
}

// TotalViaCount sums the via counts over all GCells and layer pairs.
func (g *Grid) TotalViaCount() float64 {
	var sum float64
	for l := 0; l < g.NL-1; l++ {
		for _, v := range g.vias[l] {
			sum += v
		}
	}
	return sum
}
