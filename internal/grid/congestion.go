package grid

import (
	"fmt"
	"io"
	"math"

	"github.com/crp-eda/crp/internal/tech"
)

// CongestionMap is a 2D projection of the 3D edge congestion: for every
// GCell, the maximum demand/capacity ratio over the planar edges incident
// to it on any layer. CR&P's labeling concentrates on the cells living in
// the hot entries of this map, and the CLI renders it as a heatmap.
type CongestionMap struct {
	NX, NY int
	// Ratio[y*NX+x] is the worst incident edge congestion of GCell (x,y).
	Ratio []float64
}

// At returns the map value at (x, y).
func (m *CongestionMap) At(x, y int) float64 { return m.Ratio[y*m.NX+x] }

// Max returns the hottest value in the map.
func (m *CongestionMap) Max() float64 {
	worst := 0.0
	for _, r := range m.Ratio {
		worst = math.Max(worst, r)
	}
	return worst
}

// Overflowed counts GCells whose worst incident edge exceeds capacity.
func (m *CongestionMap) Overflowed() int {
	n := 0
	for _, r := range m.Ratio {
		if r > 1 {
			n++
		}
	}
	return n
}

// Congestion builds the map from the current demand state.
func (g *Grid) Congestion() *CongestionMap {
	m := &CongestionMap{NX: g.NX, NY: g.NY, Ratio: make([]float64, g.NX*g.NY)}
	bump := func(x, y int, v float64) {
		if i := y*g.NX + x; v > m.Ratio[i] {
			m.Ratio[i] = v
		}
	}
	for l := 1; l < g.NL; l++ {
		horizontal := g.Tech.Layer(l).Dir == tech.Horizontal
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				if !g.HasEdge(x, y, l) {
					continue
				}
				r := g.EdgeCongestion(x, y, l)
				bump(x, y, r)
				if horizontal {
					bump(x+1, y, r)
				} else {
					bump(x, y+1, r)
				}
			}
		}
	}
	return m
}

// heatRunes maps congestion bands to display characters: ' ' empty, then
// '.', ':', '+', '#' for rising utilisation, and 'X' for overflow.
var heatRunes = []struct {
	limit float64
	r     byte
}{
	{0.05, ' '},
	{0.30, '.'},
	{0.60, ':'},
	{0.85, '+'},
	{1.00, '#'},
	{math.Inf(1), 'X'},
}

// WriteHeatmap renders the map as ASCII art, top row first (Y grows up in
// DBU space, so the last lattice row prints first). A legend line follows.
func (m *CongestionMap) WriteHeatmap(w io.Writer) error {
	for y := m.NY - 1; y >= 0; y-- {
		line := make([]byte, m.NX)
		for x := 0; x < m.NX; x++ {
			r := m.At(x, y)
			for _, band := range heatRunes {
				if r <= band.limit {
					line[x] = band.r
					break
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "legend: ' '<5%% '.'<30%% ':'<60%% '+'<85%% '#'<=100%% 'X'>100%% | max %.2f, overflowed %d/%d\n",
		m.Max(), m.Overflowed(), len(m.Ratio))
	return err
}
