package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Penalty is always a probability and strictly increases with demand.
func TestPenaltyBoundedAndMonotoneQuick(t *testing.T) {
	g := newGrid(t)
	x, y, l := 2, 2, 2
	// Demands stay within ±30 of capacity so the logistic does not
	// saturate to exactly 1.0 in float64 (exp(-700) underflows); beyond
	// that only weak monotonicity can hold.
	f := func(w1raw, w2raw uint16) bool {
		w1 := float64(w1raw % 12)
		w2 := w1 + float64(w2raw%8) + 0.5
		g2 := newGrid(t)
		g2.AddWire(x, y, l, w1)
		p1 := g2.Penalty(x, y, l)
		g2.AddWire(x, y, l, w2-w1)
		p2 := g2.Penalty(x, y, l)
		return p1 > 0 && p2 < 1 && p2 > p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	_ = g
}

// Demand decomposes additively over wire usage for fixed via state.
func TestDemandAdditivity(t *testing.T) {
	g := newGrid(t)
	x, y, l := 3, 2, 2
	base := g.Demand(x, y, l)
	rng := rand.New(rand.NewSource(12))
	total := 0.0
	for i := 0; i < 50; i++ {
		delta := rng.Float64() * 3
		g.AddWire(x, y, l, delta)
		total += delta
		if got := g.Demand(x, y, l); math.Abs(got-base-total) > 1e-9 {
			t.Fatalf("step %d: demand %v, want %v", i, got, base+total)
		}
	}
}

// Via demand is symmetric in src/dst: adding vias to either end of an edge
// raises its demand identically.
func TestViaDemandSymmetry(t *testing.T) {
	gA := newGrid(t)
	gB := newGrid(t)
	// Horizontal layer 2 edge (3,3)->(4,3).
	gA.AddVia(3, 3, 1, 4) // src end
	gB.AddVia(4, 3, 1, 4) // dst end
	dA := gA.Demand(3, 3, 2)
	dB := gB.Demand(3, 3, 2)
	if math.Abs(dA-dB) > 1e-12 {
		t.Errorf("demand asymmetric: src %v vs dst %v", dA, dB)
	}
}

// Wire cost is bounded by Unit*(1..2) on existing edges — the penalty can
// never push cost beyond 2x, keeping router behaviour predictable.
func TestWireCostBounds(t *testing.T) {
	g := newGrid(t)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		x, y := rng.Intn(g.NX), rng.Intn(g.NY)
		l := 1 + rng.Intn(g.NL-1)
		if !g.HasEdge(x, y, l) {
			continue
		}
		if rng.Float64() < 0.5 {
			g.AddWire(x, y, l, rng.Float64()*20)
		}
		c := g.WireEdgeCost(x, y, l)
		if c < g.Params.UnitWire || c > 2*g.Params.UnitWire {
			t.Fatalf("wire cost %v out of [%v,%v]", c, g.Params.UnitWire, 2*g.Params.UnitWire)
		}
	}
}

// Overflow stats are consistent: TotalOverflow >= MaxOverflow >= 0 and the
// edge count is positive iff the total is.
func TestOverflowConsistencyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		g := newGrid(t)
		for i := 0; i < rng.Intn(30); i++ {
			x, y := rng.Intn(g.NX), rng.Intn(g.NY)
			l := 1 + rng.Intn(g.NL-1)
			if g.HasEdge(x, y, l) {
				g.AddWire(x, y, l, rng.Float64()*40)
			}
		}
		s := g.Overflow()
		if s.TotalOverflow < s.MaxOverflow {
			t.Fatalf("trial %d: total %v < max %v", trial, s.TotalOverflow, s.MaxOverflow)
		}
		if (s.OverflowedEdges > 0) != (s.TotalOverflow > 0) {
			t.Fatalf("trial %d: edges %d vs total %v", trial, s.OverflowedEdges, s.TotalOverflow)
		}
	}
}
