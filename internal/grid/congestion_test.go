package grid

import (
	"bytes"
	"strings"
	"testing"
)

func TestCongestionMapReflectsDemand(t *testing.T) {
	g := newGrid(t)
	m := g.Congestion()
	if m.NX != g.NX || m.NY != g.NY {
		t.Fatalf("map dims %dx%d, want %dx%d", m.NX, m.NY, g.NX, g.NY)
	}
	if m.Max() >= 1 {
		t.Errorf("fresh grid should be far below capacity, max = %v", m.Max())
	}
	// Saturate one edge and check both incident GCells light up.
	x, y, l := 2, 2, 2
	g.AddWire(x, y, l, g.Capacity(x, y, l)*1.5)
	m = g.Congestion()
	if m.At(x, y) <= 1 {
		t.Errorf("src GCell ratio %v, want > 1", m.At(x, y))
	}
	if m.At(x+1, y) <= 1 { // horizontal layer: dst is x+1
		t.Errorf("dst GCell ratio %v, want > 1", m.At(x+1, y))
	}
	if m.Overflowed() < 2 {
		t.Errorf("Overflowed = %d, want >= 2", m.Overflowed())
	}
}

func TestCongestionMapMaxMatchesScan(t *testing.T) {
	g := newGrid(t)
	g.AddWire(3, 1, 2, 7)
	g.AddWire(1, 3, 1, 12)
	m := g.Congestion()
	worst := 0.0
	for _, r := range m.Ratio {
		if r > worst {
			worst = r
		}
	}
	if m.Max() != worst {
		t.Errorf("Max() = %v, scan says %v", m.Max(), worst)
	}
}

func TestWriteHeatmap(t *testing.T) {
	g := newGrid(t)
	x, y, l := 2, 2, 2
	g.AddWire(x, y, l, g.Capacity(x, y, l)*2)
	var buf bytes.Buffer
	if err := g.Congestion().WriteHeatmap(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != g.NY+1 {
		t.Fatalf("heatmap has %d lines, want %d rows + legend", len(lines), g.NY+1)
	}
	for i, line := range lines[:g.NY] {
		if len(line) != g.NX {
			t.Fatalf("row %d has width %d, want %d", i, len(line), g.NX)
		}
	}
	if !strings.Contains(out, "X") {
		t.Error("overflowed edge should render as X")
	}
	if !strings.Contains(lines[len(lines)-1], "legend") {
		t.Error("legend missing")
	}
	// Row order: overflow at lattice y=2 must appear on printed line
	// NY-1-2 from the top.
	if !strings.ContainsRune(lines[g.NY-1-y], 'X') {
		t.Errorf("X not on expected printed row:\n%s", out)
	}
}
