package grid

import "fmt"

// EdgeKey identifies one mutable demand entry in the grid's dense layout:
// for wire usage, the planar edge leaving GCell I on layer L; for vias, the
// stack between layers L and L+1 at GCell I. Wire and via keys live in
// separate maps, so the two spaces never collide.
type EdgeKey struct {
	L int32 // layer (wire) or lower layer of the pair (via)
	I int32 // dense GCell index x + y*NX
}

// Journal accumulates the demand deltas applied to a grid while attached
// (see AttachJournal): every AddWire/AddVia records its per-edge delta and
// bumps Mutations. Because the demand arrays are private and AddWire/AddVia
// are their only writers, an attached journal provably sees every mutation —
// the transactional view layer uses that to check an iteration's demand diff
// against its route swaps in O(Δ) instead of re-scanning the whole grid, and
// to detect out-of-band mutation by epoch arithmetic (each recorded mutation
// advances the epoch by exactly one).
type Journal struct {
	Wire map[EdgeKey]float64
	Vias map[EdgeKey]float64
	// Mutations counts every AddWire/AddVia recorded.
	Mutations uint64

	// Ops is the ordered per-mutation log, populated only after EnableOps:
	// the aggregate Wire/Vias maps lose the order and attribution of writes,
	// which the sharded merge needs to segment one transaction's mutations
	// by region (see view.Txn.BeginSegment).
	Ops       []JournalOp
	recordOps bool
}

// JournalOp is one recorded demand mutation.
type JournalOp struct {
	Key   EdgeKey
	Delta float64
	Via   bool // false: wire edge, true: via stack
}

// NewJournal returns an empty journal ready to attach.
func NewJournal() *Journal {
	return &Journal{Wire: map[EdgeKey]float64{}, Vias: map[EdgeKey]float64{}}
}

// EnableOps switches on the ordered per-mutation log. Mutations recorded
// before the switch are only in the aggregate maps; the op log starts empty.
func (j *Journal) EnableOps() { j.recordOps = true }

// Len reports the number of distinct wire and via edges touched so far —
// the journal's O(Δ) working-set size.
func (j *Journal) Len() (wires, vias int) { return len(j.Wire), len(j.Vias) }

// AttachJournal starts recording every demand mutation into j. Exactly one
// journal may be attached at a time; the transactional layer owns the
// attach/detach pairing, so a double attach is an invariant bug worth a
// loud failure.
func (g *Grid) AttachJournal(j *Journal) {
	if g.journal != nil {
		panic("grid: a demand journal is already attached")
	}
	g.journal = j
}

// DetachJournal stops recording and returns the attached journal (nil if
// none was attached).
func (g *Grid) DetachJournal() *Journal {
	j := g.journal
	g.journal = nil
	return j
}

// JournalMutations reports the mutation count of the attached journal
// (0, false when none is attached) — the read-only accessor the shard
// conflict tests use to assert journal sizes without reaching into the
// transaction layer.
func (g *Grid) JournalMutations() (uint64, bool) {
	if g.journal == nil {
		return 0, false
	}
	return g.journal.Mutations, true
}

// EdgeCell decodes an EdgeKey's dense GCell index back to (x, y)
// coordinates — the inverse of WireKey/ViaKey's I component. Wire keys name
// the edge leaving the cell (its other endpoint is (x+1,y) or (x,y+1));
// via keys name the stack at the cell itself.
func (g *Grid) EdgeCell(k EdgeKey) (x, y int) {
	return int(k.I) % g.NX, int(k.I) / g.NX
}

// WireKey returns the journal key of the planar edge leaving (x,y) on layer l.
func (g *Grid) WireKey(x, y, l int) EdgeKey {
	return EdgeKey{L: int32(l), I: int32(g.idx(x, y))}
}

// ViaKey returns the journal key of the via stack between layers l and l+1
// at GCell (x,y).
func (g *Grid) ViaKey(x, y, l int) EdgeKey {
	return EdgeKey{L: int32(l), I: int32(g.idx(x, y))}
}

// String renders the key for invariant-violation messages.
func (k EdgeKey) String() string { return fmt.Sprintf("(l%d,i%d)", k.L, k.I) }
