// Package place is a detailed placer: it refines an existing legal
// placement for wirelength without changing the netlist, using the three
// classic techniques the detailed-placement literature the paper surveys is
// built on (FastPlace, AbcdPlace et al.):
//
//   - greedy median moves — relocate a cell to the free slot nearest the
//     median of its connected pins when that reduces its star wirelength;
//   - global swaps — exchange two equal-width cells when the swap reduces
//     their combined wirelength;
//   - local reordering — optimally permute small groups of adjacent cells
//     within a row.
//
// The CR&P paper assumes "an initial placement solution is given" by a
// production placer; this package is what makes the synthetic benchmarks
// (internal/ispd) resemble such inputs, and it doubles as the repository's
// standalone detailed-placement engine. Every pass preserves legality: a
// placement that validates before a pass validates after it.
package place

import (
	"math/rand"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
)

// Config tunes the refinement.
type Config struct {
	// Passes is the number of full sweeps over all cells (default 2).
	Passes int
	// WindowSites/WindowRows bound the median-move slot search.
	WindowSites int
	WindowRows  int
	// EnableSwaps turns on the global-swap pass.
	EnableSwaps bool
	// EnableReorder turns on the local reordering pass.
	EnableReorder bool
	// ReorderSpan is the group size for local reordering (3 or 4; larger
	// spans explode factorially).
	ReorderSpan int
	// Seed drives the per-pass cell ordering.
	Seed int64
}

// DefaultConfig returns a balanced refinement setup.
func DefaultConfig() Config {
	return Config{
		Passes:        2,
		WindowSites:   24,
		WindowRows:    5,
		EnableSwaps:   true,
		EnableReorder: true,
		ReorderSpan:   3,
		Seed:          1,
	}
}

// Stats reports what a Refine call did.
type Stats struct {
	MedianMoves int
	Swaps       int
	Reorders    int
	HPWLBefore  int64
	HPWLAfter   int64
}

// Refine runs the configured passes over the design.
func Refine(d *db.Design, cfg Config) Stats {
	def := DefaultConfig()
	if cfg.Passes <= 0 {
		cfg.Passes = def.Passes
	}
	if cfg.WindowSites <= 0 {
		cfg.WindowSites = def.WindowSites
	}
	if cfg.WindowRows <= 0 {
		cfg.WindowRows = def.WindowRows
	}
	if cfg.ReorderSpan < 2 {
		cfg.ReorderSpan = def.ReorderSpan
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	st := Stats{HPWLBefore: d.TotalHPWL()}
	order := movableCells(d)
	for pass := 0; pass < cfg.Passes; pass++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		st.MedianMoves += medianMovePass(d, order, cfg)
		if cfg.EnableSwaps {
			st.Swaps += swapPass(d, order)
		}
		if cfg.EnableReorder {
			st.Reorders += reorderPass(d, cfg.ReorderSpan)
		}
	}
	st.HPWLAfter = d.TotalHPWL()
	return st
}

func movableCells(d *db.Design) []int32 {
	out := make([]int32, 0, len(d.Cells))
	for _, c := range d.Cells {
		if !c.Fixed && len(c.Nets) > 0 {
			out = append(out, c.ID)
		}
	}
	return out
}

// starWL is the cell-centric wirelength of all nets touching the cell with
// the cell hypothetically at pos: the objective of median moves and swaps.
func starWL(d *db.Design, id int32, pos geom.Point) int64 {
	var total int64
	c := d.Cells[id]
	orient := c.Orient
	if row, ok := d.RowAt(pos.Y); ok {
		orient = row.Orient
	}
	for _, nid := range c.Nets {
		n := d.Nets[nid]
		minX, maxX := 1<<30, -(1 << 30)
		minY, maxY := 1<<30, -(1 << 30)
		for _, pr := range n.Pins {
			var p geom.Point
			if pr.Cell == id {
				p = d.PinPositionAt(c, pr.Pin, pos, orient)
			} else {
				p = d.PinPosition(d.Cells[pr.Cell], pr.Pin)
			}
			minX, maxX = min(minX, p.X), max(maxX, p.X)
			minY, maxY = min(minY, p.Y), max(maxY, p.Y)
		}
		for _, io := range n.IOs {
			minX, maxX = min(minX, io.Pos.X), max(maxX, io.Pos.X)
			minY, maxY = min(minY, io.Pos.Y), max(maxY, io.Pos.Y)
		}
		total += int64(maxX-minX) + int64(maxY-minY)
	}
	return total
}

// medianMovePass relocates each cell toward its net median when profitable.
func medianMovePass(d *db.Design, order []int32, cfg Config) int {
	sw := d.Tech.Site.Width
	rh := d.Tech.Site.Height
	moves := 0
	for _, id := range order {
		c := d.Cells[id]
		med := d.NetMedianOf(id)
		cur := starWL(d, id, c.Pos)
		bestPos := c.Pos
		bestWL := cur
		ignore := map[int32]bool{id: true}
		r0 := max(0, (med.Y-d.Die.Lo.Y)/rh-cfg.WindowRows/2)
		r1 := min(len(d.Rows), r0+cfg.WindowRows)
		for ri := r0; ri < r1; ri++ {
			row := &d.Rows[ri]
			x0 := med.X - cfg.WindowSites*sw/2
			x1 := med.X + cfg.WindowSites*sw/2
			for _, x := range d.FreeSitesIn(int32(ri), x0, x1, c.Macro.Width, ignore) {
				pos := geom.Pt(x, row.Y)
				if pos == c.Pos || d.CheckLegal(c, pos) != nil {
					continue
				}
				if wl := starWL(d, id, pos); wl < bestWL {
					bestWL = wl
					bestPos = pos
				}
			}
		}
		if bestPos != c.Pos && d.MoveCell(id, bestPos) == nil {
			moves++
		}
	}
	return moves
}

// swapPass tries exchanging each cell with the equal-width cell nearest its
// median; accepted when the summed star wirelength of both cells drops.
// Star wirelength double-counts shared nets identically before and after,
// so the acceptance test is conservative but sign-correct.
func swapPass(d *db.Design, order []int32) int {
	swaps := 0
	for _, id := range order {
		a := d.Cells[id]
		med := d.NetMedianOf(id)
		partner := nearestEqualWidthCell(d, a, med)
		if partner < 0 {
			continue
		}
		b := d.Cells[partner]
		before := starWL(d, a.ID, a.Pos) + starWL(d, b.ID, b.Pos)
		after := starWL(d, a.ID, b.Pos) + starWL(d, b.ID, a.Pos)
		if after >= before {
			continue
		}
		if d.MoveCells(map[int32]geom.Point{a.ID: b.Pos, b.ID: a.Pos}) == nil {
			swaps++
		}
	}
	return swaps
}

// nearestEqualWidthCell finds the movable same-width cell whose position is
// closest to target (and is not the cell itself).
func nearestEqualWidthCell(d *db.Design, c *db.Cell, target geom.Point) int32 {
	rh := d.Tech.Site.Height
	bestID := int32(-1)
	bestDist := 1 << 30
	// Scan the rows nearest the target first; stop once a full row is
	// farther than the best hit.
	row0 := geom.Iv(0, len(d.Rows)).Clamp((target.Y - d.Die.Lo.Y) / rh)
	for dr := 0; dr < len(d.Rows); dr++ {
		for _, sign := range []int{1, -1} {
			ri := row0 + sign*dr
			if dr == 0 && sign < 0 {
				continue
			}
			if ri < 0 || ri >= len(d.Rows) {
				continue
			}
			rowDist := geom.Abs(ri*rh - target.Y)
			if rowDist > bestDist {
				continue
			}
			for _, id := range d.CellsInRowRange(int32(ri), target.X-bestDist, target.X+bestDist) {
				cc := d.Cells[id]
				if cc.ID == c.ID || cc.Fixed || cc.Macro.Width != c.Macro.Width {
					continue
				}
				dist := cc.Pos.ManhattanDist(target)
				if dist < bestDist {
					bestDist = dist
					bestID = cc.ID
				}
			}
		}
		if dr*rh > bestDist {
			break
		}
	}
	return bestID
}

// reorderPass slides a window of ReorderSpan adjacent cells along every row
// and keeps the best permutation of their left-to-right order (cells keep
// the same set of slots; widths may differ, so positions are re-packed from
// the left edge of the group's span).
func reorderPass(d *db.Design, span int) int {
	improved := 0
	perms := permutations(span)
	for ri := range d.Rows {
		ids := rowCellsLeftToRight(d, int32(ri))
		for start := 0; start+span <= len(ids); start++ {
			group := ids[start : start+span]
			if anyFixed(d, group) || !contiguousSpan(d, group) {
				continue
			}
			if tryReorder(d, group, perms) {
				improved++
			}
		}
	}
	return improved
}

func rowCellsLeftToRight(d *db.Design, row int32) []int32 {
	span := d.Rows[row].Span(d.Tech.Site.Width)
	return d.CellsInRowRange(row, span.Lo, span.Hi)
}

func anyFixed(d *db.Design, ids []int32) bool {
	for _, id := range ids {
		if d.Cells[id].Fixed {
			return true
		}
	}
	return false
}

// contiguousSpan reports whether the cells are packed back to back (no
// gaps); reordering across gaps would need a more general packing.
func contiguousSpan(d *db.Design, ids []int32) bool {
	for i := 1; i < len(ids); i++ {
		prev := d.Cells[ids[i-1]]
		if prev.Pos.X+prev.Macro.Width != d.Cells[ids[i]].Pos.X {
			return false
		}
	}
	return true
}

// tryReorder evaluates every permutation of the group and commits the best
// strictly-improving one.
func tryReorder(d *db.Design, group []int32, perms [][]int) bool {
	base := d.Cells[group[0]].Pos
	cost := func(ord []int) int64 {
		x := base.X
		var total int64
		for _, gi := range ord {
			c := d.Cells[group[gi]]
			total += starWL(d, c.ID, geom.Pt(x, base.Y))
			x += c.Macro.Width
		}
		return total
	}
	bestPerm := perms[0] // identity
	bestCost := cost(bestPerm)
	for _, p := range perms[1:] {
		if c := cost(p); c < bestCost {
			bestCost = c
			bestPerm = p
		}
	}
	if isIdentity(bestPerm) {
		return false
	}
	moves := map[int32]geom.Point{}
	x := base.X
	for _, gi := range bestPerm {
		c := d.Cells[group[gi]]
		moves[c.ID] = geom.Pt(x, base.Y)
		x += c.Macro.Width
	}
	return d.MoveCells(moves) == nil
}

func isIdentity(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// permutations enumerates all orderings of 0..n-1 with the identity first.
func permutations(n int) [][]int {
	var out [][]int
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	// Move the identity to the front (rec emits it first already since it
	// swaps in place starting with no swap).
	return out
}
