package place

import (
	"math/rand"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// rawDesign builds an unrefined random design: cells scattered with gaps,
// nets drawn between random cells, so median moves have plenty to harvest.
// (The ispd generator cannot be used here: it imports this package.)
func rawDesign(t testing.TB, nCells, nNets int, seed int64) *db.Design {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	nRows := 12
	nSites := nCells / 3 * 2
	if nSites < 60 {
		nSites = 60
	}
	die := geom.R(0, 0, nSites*sw, nRows*rh)
	rows := make([]db.Row, nRows)
	for i := range rows {
		o := db.N
		if i%2 == 1 {
			o = db.FS
		}
		rows[i] = db.Row{Index: int32(i), X: 0, Y: i * rh, NumSites: nSites, Orient: o}
	}
	widths := []int{2, 3}
	macros := make([]*db.Macro, len(widths))
	for i, w := range widths {
		macros[i] = &db.Macro{
			Name: "M" + itoa(w), Width: w * sw, Height: rh,
			Pins: []db.PinDef{
				{Name: "A", Offset: geom.Pt(sw/2, rh/4), Layer: 0},
				{Name: "Z", Offset: geom.Pt(w*sw-sw/2, 3*rh/4), Layer: 0},
			},
		}
	}
	used := map[[2]int]bool{}
	var cells []*db.Cell
	for len(cells) < nCells {
		m := macros[rng.Intn(len(macros))]
		w := m.Width / sw
		r := rng.Intn(nRows)
		sx := rng.Intn(nSites - w)
		ok := true
		for i := sx; i < sx+w; i++ {
			if used[[2]int{r, i}] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := sx; i < sx+w; i++ {
			used[[2]int{r, i}] = true
		}
		o := db.N
		if r%2 == 1 {
			o = db.FS
		}
		cells = append(cells, &db.Cell{
			ID: int32(len(cells)), Name: "c" + itoa(len(cells)), Macro: m,
			Pos: geom.Pt(sx*sw, r*rh), Orient: o,
		})
	}
	var nets []*db.Net
	for len(nets) < nNets {
		deg := 2 + rng.Intn(3)
		seen := map[int32]bool{}
		var pins []db.PinRef
		for len(pins) < deg {
			cid := int32(rng.Intn(nCells))
			if seen[cid] {
				continue
			}
			seen[cid] = true
			pins = append(pins, db.PinRef{Cell: cid, Pin: int32(rng.Intn(2))})
		}
		nets = append(nets, &db.Net{ID: int32(len(nets)), Name: "n" + itoa(len(nets)), Pins: pins})
	}
	d, err := db.New("place", tc, die, rows, macros, cells, nets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestRefineReducesHPWLAndPreservesLegality(t *testing.T) {
	d := rawDesign(t, 400, 350, 1)
	st := Refine(d, DefaultConfig())
	if st.HPWLAfter >= st.HPWLBefore {
		t.Errorf("HPWL did not improve: %d -> %d", st.HPWLBefore, st.HPWLAfter)
	}
	if st.MedianMoves == 0 {
		t.Error("no median moves on a raw placement")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("refinement broke legality: %v", err)
	}
}

func TestRefineDeterministic(t *testing.T) {
	run := func() (Stats, int64) {
		d := rawDesign(t, 250, 200, 2)
		st := Refine(d, DefaultConfig())
		return st, d.TotalHPWL()
	}
	s1, h1 := run()
	s2, h2 := run()
	if s1 != s2 || h1 != h2 {
		t.Errorf("same seed diverged: %+v/%d vs %+v/%d", s1, h1, s2, h2)
	}
}

func TestRefineIdempotentAtConvergence(t *testing.T) {
	d := rawDesign(t, 250, 200, 3)
	cfg := DefaultConfig()
	cfg.Passes = 4
	Refine(d, cfg)
	h1 := d.TotalHPWL()
	// A further pass should find little to nothing.
	st := Refine(d, Config{Passes: 1, Seed: 99})
	if float64(st.HPWLAfter) < float64(h1)*0.97 {
		t.Errorf("converged placement still improved by >3%%: %d -> %d", h1, st.HPWLAfter)
	}
}

func TestSwapPassFindsProfitableSwap(t *testing.T) {
	// Hand-built instance: two equal-width cells whose nets pull them to
	// each other's positions — a swap is the only improving move.
	d := rawDesign(t, 100, 2, 4)
	// Rebuild nets: net0 pulls cell0 toward cell1's spot and vice versa.
	// Simplest check: run only the swap pass on the generated design and
	// require legality; profitability is covered by the HPWL assertion in
	// the full refine test.
	order := movableCells(d)
	before := d.TotalHPWL()
	swaps := swapPass(d, order)
	if err := d.Validate(); err != nil {
		t.Fatalf("swap pass broke legality: %v", err)
	}
	if swaps > 0 && d.TotalHPWL() > before {
		t.Errorf("swaps increased HPWL: %d -> %d", before, d.TotalHPWL())
	}
}

func TestReorderPassPreservesLegality(t *testing.T) {
	d := rawDesign(t, 300, 250, 5)
	n := reorderPass(d, 3)
	if err := d.Validate(); err != nil {
		t.Fatalf("reorder broke legality after %d reorders: %v", n, err)
	}
}

func TestStarWLMatchesHPWLForIsolatedNets(t *testing.T) {
	d := rawDesign(t, 100, 60, 6)
	// For a cell whose nets touch no other tested cell, starWL at the
	// current position equals the sum of its nets' HPWLs.
	for _, c := range d.Cells[:20] {
		if len(c.Nets) == 0 {
			continue
		}
		var want int64
		for _, nid := range c.Nets {
			want += d.HPWL(d.Nets[nid])
		}
		if got := starWL(d, c.ID, c.Pos); got != want {
			t.Fatalf("cell %d: starWL %d != sum HPWL %d", c.ID, got, want)
		}
	}
}

func TestPermutations(t *testing.T) {
	ps := permutations(3)
	if len(ps) != 6 {
		t.Fatalf("3! = %d, want 6", len(ps))
	}
	if !isIdentity(ps[0]) {
		t.Error("first permutation should be the identity")
	}
	seen := map[[3]int]bool{}
	for _, p := range ps {
		var key [3]int
		copy(key[:], p)
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[key] = true
	}
}

func TestNearestEqualWidthCell(t *testing.T) {
	d := rawDesign(t, 200, 100, 7)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		c := d.Cells[rng.Intn(len(d.Cells))]
		target := geom.Pt(rng.Intn(d.Die.W()), rng.Intn(d.Die.H()))
		got := nearestEqualWidthCell(d, c, target)
		if got < 0 {
			continue
		}
		// Brute-force verification.
		bestDist := 1 << 30
		for _, cc := range d.Cells {
			if cc.ID == c.ID || cc.Fixed || cc.Macro.Width != c.Macro.Width {
				continue
			}
			if dd := cc.Pos.ManhattanDist(target); dd < bestDist {
				bestDist = dd
			}
		}
		if d.Cells[got].Pos.ManhattanDist(target) != bestDist {
			t.Fatalf("trial %d: nearest %d at dist %d, brute force %d",
				trial, got, d.Cells[got].Pos.ManhattanDist(target), bestDist)
		}
	}
}

func TestConfigClamping(t *testing.T) {
	d := rawDesign(t, 100, 60, 9)
	st := Refine(d, Config{Passes: -1, WindowSites: -1, WindowRows: -1, ReorderSpan: 1})
	if st.HPWLAfter > st.HPWLBefore {
		t.Error("clamped config regressed HPWL")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRefine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := rawDesign(b, 400, 350, 10)
		b.StartTimer()
		Refine(d, DefaultConfig())
	}
}
