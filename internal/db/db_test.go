package db

import (
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// testDesign builds a small legal design on the n45 node:
//
//	4 rows of 40 sites; 6 cells (widths 2,3,2,4,2,3 sites); 3 nets.
//
// Layout (site units, row index):
//
//	row 0: c0 @ site 0 (w2), c1 @ site 4 (w3)
//	row 1: c2 @ site 0 (w2), c3 @ site 10 (w4)
//	row 2: c4 @ site 8 (w2)
//	row 3: c5 @ site 2 (w3)
func testDesign(t *testing.T) *Design {
	t.Helper()
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	nRows, nSites := 4, 40
	die := geom.R(0, 0, nSites*sw, nRows*rh)

	rows := make([]Row, nRows)
	for i := range rows {
		o := N
		if i%2 == 1 {
			o = FS
		}
		rows[i] = Row{Index: int32(i), X: 0, Y: i * rh, NumSites: nSites, Orient: o}
	}

	mk := func(name string, wSites int) *Macro {
		return &Macro{
			Name:   name,
			Width:  wSites * sw,
			Height: rh,
			Pins: []PinDef{
				{Name: "A", Offset: geom.Pt(sw/2, rh/4), Layer: 0},
				{Name: "Z", Offset: geom.Pt(wSites*sw-sw/2, 3*rh/4), Layer: 0},
			},
		}
	}
	m2, m3, m4 := mk("INV_X2", 2), mk("NAND_X3", 3), mk("DFF_X4", 4)
	macros := []*Macro{m2, m3, m4}

	cell := func(id int32, name string, m *Macro, siteX, row int) *Cell {
		o := N
		if row%2 == 1 {
			o = FS
		}
		return &Cell{ID: id, Name: name, Macro: m, Pos: geom.Pt(siteX*sw, row*rh), Orient: o}
	}
	cells := []*Cell{
		cell(0, "c0", m2, 0, 0),
		cell(1, "c1", m3, 4, 0),
		cell(2, "c2", m2, 0, 1),
		cell(3, "c3", m4, 10, 1),
		cell(4, "c4", m2, 8, 2),
		cell(5, "c5", m3, 2, 3),
	}

	nets := []*Net{
		{ID: 0, Name: "n0", Pins: []PinRef{{0, 1}, {1, 0}}},
		{ID: 1, Name: "n1", Pins: []PinRef{{1, 1}, {2, 0}, {3, 0}}},
		{ID: 2, Name: "n2", Pins: []PinRef{{3, 1}, {4, 0}, {5, 0}},
			IOs: []IOPin{{Name: "out", Pos: geom.Pt(0, nRows*rh-1), Layer: 1}}},
	}

	d, err := New("unit", tc, die, rows, macros, cells, nets, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestNewBuildsIndices(t *testing.T) {
	d := testDesign(t)
	if c, ok := d.CellByName("c3"); !ok || c.ID != 3 {
		t.Error("CellByName(c3) failed")
	}
	if m, ok := d.MacroByName("DFF_X4"); !ok || m.Width != 4*d.Tech.Site.Width {
		t.Error("MacroByName failed")
	}
	// c1 is on nets 0 and 1.
	c1 := d.Cells[1]
	if len(c1.Nets) != 2 || c1.Nets[0] != 0 || c1.Nets[1] != 1 {
		t.Errorf("c1.Nets = %v", c1.Nets)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	die := geom.R(0, 0, 10*sw, rh)
	rows := []Row{{Index: 0, X: 0, Y: 0, NumSites: 10, Orient: N}}
	m := &Macro{Name: "M", Width: 2 * sw, Height: rh}

	// Net referencing a missing pin index.
	cells := []*Cell{{ID: 0, Name: "a", Macro: m, Pos: geom.Pt(0, 0)}}
	nets := []*Net{{ID: 0, Name: "n", Pins: []PinRef{{0, 5}}}}
	if _, err := New("bad", tc, die, rows, []*Macro{m}, cells, nets, nil); err == nil {
		t.Error("want error for bad pin index")
	}

	// Off-grid cell.
	cells = []*Cell{{ID: 0, Name: "a", Macro: m, Pos: geom.Pt(sw/2, 0)}}
	if _, err := New("bad", tc, die, rows, []*Macro{m}, cells, nil, nil); err == nil {
		t.Error("want error for off-grid X")
	}

	// Overlapping cells.
	cells = []*Cell{
		{ID: 0, Name: "a", Macro: m, Pos: geom.Pt(0, 0)},
		{ID: 1, Name: "b", Macro: m, Pos: geom.Pt(sw, 0)},
	}
	if _, err := New("bad", tc, die, rows, []*Macro{m}, cells, nil, nil); err == nil {
		t.Error("want error for overlap")
	}

	// Duplicate cell name.
	cells = []*Cell{
		{ID: 0, Name: "a", Macro: m, Pos: geom.Pt(0, 0)},
		{ID: 1, Name: "a", Macro: m, Pos: geom.Pt(4*sw, 0)},
	}
	if _, err := New("bad", tc, die, rows, []*Macro{m}, cells, nil, nil); err == nil {
		t.Error("want error for duplicate cell name")
	}
}

func TestRowAt(t *testing.T) {
	d := testDesign(t)
	rh := d.Tech.Site.Height
	if r, ok := d.RowAt(2 * rh); !ok || r.Index != 2 {
		t.Errorf("RowAt(2h) = %v, %v", r, ok)
	}
	if _, ok := d.RowAt(rh + 1); ok {
		t.Error("RowAt off-row Y should miss")
	}
	if _, ok := d.RowAt(4 * rh); ok {
		t.Error("RowAt above top row should miss")
	}
	if _, ok := d.RowAt(-rh); ok {
		t.Error("RowAt below bottom should miss")
	}
}

func TestCellsInRowRange(t *testing.T) {
	d := testDesign(t)
	sw := d.Tech.Site.Width
	// Row 0 has c0 at sites [0,2) and c1 at [4,7).
	got := d.CellsInRowRange(0, 0, 40*sw)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("full row = %v", got)
	}
	if got := d.CellsInRowRange(0, 2*sw, 4*sw); len(got) != 0 {
		t.Errorf("gap query = %v", got)
	}
	// Query overlapping c1's interior.
	if got := d.CellsInRowRange(0, 5*sw, 6*sw); len(got) != 1 || got[0] != 1 {
		t.Errorf("interior query = %v", got)
	}
	if got := d.CellsInRowRange(99, 0, 10); got != nil {
		t.Errorf("bad row = %v", got)
	}
}

func TestMoveCell(t *testing.T) {
	d := testDesign(t)
	sw, rh := d.Tech.Site.Width, d.Tech.Site.Height

	// Legal move: c0 to row 2, site 0.
	if err := d.MoveCell(0, geom.Pt(0, 2*rh)); err != nil {
		t.Fatalf("legal move rejected: %v", err)
	}
	if d.Cells[0].Row != 2 || d.Cells[0].Orient != N {
		t.Errorf("cell state after move: row=%d orient=%v", d.Cells[0].Row, d.Cells[0].Orient)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after move: %v", err)
	}

	// Move onto an occupied span must fail and change nothing.
	before := d.Cells[2].Pos
	if err := d.MoveCell(2, geom.Pt(8*sw, 2*rh)); err == nil {
		t.Error("overlapping move accepted")
	}
	if d.Cells[2].Pos != before {
		t.Error("failed move mutated position")
	}

	// Off-grid and off-die moves must fail.
	if err := d.MoveCell(2, geom.Pt(sw/3, 0)); err == nil {
		t.Error("off-grid move accepted")
	}
	if err := d.MoveCell(2, geom.Pt(39*sw, 0)); err == nil {
		t.Error("move past row end accepted")
	}

	// Orientation follows the destination row.
	if err := d.MoveCell(2, geom.Pt(20*sw, 3*rh)); err != nil {
		t.Fatalf("move to row 3: %v", err)
	}
	if d.Cells[2].Orient != FS {
		t.Error("orientation should flip to FS on odd row")
	}
}

func TestMoveCellFixed(t *testing.T) {
	d := testDesign(t)
	d.Cells[0].Fixed = true
	if err := d.MoveCell(0, geom.Pt(0, d.Tech.Site.Height)); err == nil ||
		!strings.Contains(err.Error(), "fixed") {
		t.Errorf("moving fixed cell: err=%v", err)
	}
}

func TestMoveCellsBatchSwap(t *testing.T) {
	d := testDesign(t)
	// Swap c0 (2 sites wide) and c4 (2 sites wide): both targets are only
	// free once the other cell lifts out... here they're in different rows
	// so this checks the batch path plainly.
	p0, p4 := d.Cells[0].Pos, d.Cells[4].Pos
	if err := d.MoveCells(map[int32]geom.Point{0: p4, 4: p0}); err != nil {
		t.Fatalf("swap rejected: %v", err)
	}
	if d.Cells[0].Pos != p4 || d.Cells[4].Pos != p0 {
		t.Error("swap did not take effect")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid after swap: %v", err)
	}
}

func TestMoveCellsBatchConflict(t *testing.T) {
	d := testDesign(t)
	rh := d.Tech.Site.Height
	snap := d.Snapshot()
	// Two cells to the same span of row 2 → pairwise overlap → reject.
	err := d.MoveCells(map[int32]geom.Point{
		0: geom.Pt(0, 2*rh),
		2: geom.Pt(0, 2*rh),
	})
	if err == nil {
		t.Fatal("conflicting batch accepted")
	}
	// Nothing moved.
	cur := d.Snapshot()
	for i := range cur.pos {
		if cur.pos[i] != snap.pos[i] {
			t.Fatalf("cell %d moved on failed batch", i)
		}
	}
}

func TestFreeSitesIn(t *testing.T) {
	d := testDesign(t)
	sw := d.Tech.Site.Width
	// Row 0: c0 at [0,2), c1 at [4,7). Free sites for width 2*sw in
	// sites [0, 12): gap [2,4) fits one start (site 2); after c1, sites
	// 7,8,9,10 (start+2 <= 12).
	got := d.FreeSitesIn(0, 0, 12*sw, 2*sw, nil)
	want := []int{2 * sw, 7 * sw, 8 * sw, 9 * sw, 10 * sw}
	if len(got) != len(want) {
		t.Fatalf("FreeSitesIn = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("FreeSitesIn = %v, want %v", got, want)
		}
	}
	// Ignoring c1 opens its span.
	got = d.FreeSitesIn(0, 0, 7*sw, 2*sw, map[int32]bool{1: true})
	want = []int{2 * sw, 3 * sw, 4 * sw, 5 * sw}
	if len(got) != len(want) {
		t.Fatalf("with ignore = %v, want %v", got, want)
	}
}

func TestFreeSitesRespectObstacle(t *testing.T) {
	tc := tech.N45()
	sw, rh := tc.Site.Width, tc.Site.Height
	die := geom.R(0, 0, 20*sw, rh)
	rows := []Row{{Index: 0, X: 0, Y: 0, NumSites: 20, Orient: N}}
	m := &Macro{Name: "M", Width: 2 * sw, Height: rh}
	obs := []Obstacle{{Name: "blk", Rect: geom.R(5*sw, 0, 10*sw, rh), Layers: []int{0, 1}}}
	d, err := New("obs", tc, die, rows, []*Macro{m}, nil, nil, obs)
	if err != nil {
		t.Fatal(err)
	}
	got := d.FreeSitesIn(0, 0, 20*sw, 2*sw, nil)
	for _, x := range got {
		if x < 10*sw && x+2*sw > 5*sw {
			t.Errorf("free site %d overlaps obstacle", x/sw)
		}
	}
}

func TestPinPositionOrientation(t *testing.T) {
	d := testDesign(t)
	rh := d.Tech.Site.Height
	c0 := d.Cells[0] // row 0, orientation N
	c5 := d.Cells[5] // row 3, orientation FS
	a0 := d.PinPosition(c0, 0)
	if a0 != c0.Pos.Add(geom.Pt(d.Tech.Site.Width/2, rh/4)) {
		t.Errorf("N pin position = %v", a0)
	}
	a5 := d.PinPosition(c5, 0)
	wantY := c5.Pos.Y + (rh - rh/4)
	if a5.Y != wantY {
		t.Errorf("FS pin Y = %d, want %d (mirrored)", a5.Y, wantY)
	}
}

func TestHPWL(t *testing.T) {
	d := testDesign(t)
	// Net n0 connects c0.Z and c1.A; both in row 0, N orientation.
	p1 := d.PinPosition(d.Cells[0], 1)
	p2 := d.PinPosition(d.Cells[1], 0)
	want := int64(geom.Abs(p1.X-p2.X) + geom.Abs(p1.Y-p2.Y))
	if got := d.HPWL(d.Nets[0]); got != want {
		t.Errorf("HPWL(n0) = %d, want %d", got, want)
	}
	if d.TotalHPWL() <= 0 {
		t.Error("TotalHPWL should be positive")
	}
	// Single-pin nets have zero HPWL.
	single := &Net{ID: 0, Pins: []PinRef{{0, 0}}}
	if d.HPWL(single) != 0 {
		t.Error("single-pin HPWL should be 0")
	}
}

func TestNetPinPositionsWithMove(t *testing.T) {
	d := testDesign(t)
	rh := d.Tech.Site.Height
	n0 := d.Nets[0]
	base := d.NetPinPositions(n0)
	moved := d.NetPinPositionsWithMove(n0, 0, geom.Pt(0, 2*rh))
	if len(base) != len(moved) {
		t.Fatal("length mismatch")
	}
	// c1's pin unchanged; c0's pin displaced by the move delta.
	if moved[1] != base[1] {
		t.Error("unmoved cell pin changed")
	}
	if moved[0].Y == base[0].Y {
		t.Error("moved cell pin did not move")
	}
	// The database itself is untouched.
	if d.Cells[0].Pos != (geom.Point{X: 0, Y: 0}) {
		t.Error("hypothetical move mutated the DB")
	}
}

func TestConnectedCells(t *testing.T) {
	d := testDesign(t)
	got := d.ConnectedCells(1) // nets 0 (c0) and 1 (c2, c3)
	want := map[int32]bool{0: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("ConnectedCells(1) = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected neighbour %d", id)
		}
	}
}

func TestNetMedianOf(t *testing.T) {
	d := testDesign(t)
	// c4 is on net 2 only, with terminals c3.Z, c5.A and the IO pin.
	m := d.NetMedianOf(4)
	pts := []geom.Point{
		d.PinPosition(d.Cells[3], 1),
		d.PinPosition(d.Cells[5], 0),
		d.Nets[2].IOs[0].Pos,
	}
	want := geom.MedianPoint(pts)
	if m != want {
		t.Errorf("NetMedianOf(4) = %v, want %v", m, want)
	}
	// A cell with no nets gets its own position back.
	d2 := testDesign(t)
	d2.Cells[0].Nets = nil
	if got := d2.NetMedianOf(0); got != d2.Cells[0].Pos {
		t.Errorf("netless median = %v", got)
	}
}

func TestHistory(t *testing.T) {
	d := testDesign(t)
	if d.WasCritical(0) || d.WasMoved(0) {
		t.Error("fresh design should have empty history")
	}
	d.MarkCritical(0)
	d.MarkMoved(0)
	if !d.WasCritical(0) || !d.WasMoved(0) {
		t.Error("marks not recorded")
	}
	d.ResetHistory()
	if d.WasCritical(0) || d.WasMoved(0) {
		t.Error("ResetHistory did not clear")
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := testDesign(t)
	snap := d.Snapshot()
	rh := d.Tech.Site.Height
	if err := d.MoveCell(0, geom.Pt(0, 2*rh)); err != nil {
		t.Fatal(err)
	}
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if d.Cells[0].Pos != (geom.Point{}) {
		t.Errorf("restore: c0 at %v", d.Cells[0].Pos)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid after restore: %v", err)
	}
	// Occupancy must be rebuilt: the old span must be occupied again.
	if d.IsFreeFor(0, 0, d.Tech.Site.Width, nil) {
		t.Error("occupancy not rebuilt after restore")
	}
}

func TestStats(t *testing.T) {
	d := testDesign(t)
	s := d.Stats()
	if s.Cells != 6 || s.Nets != 3 || s.Rows != 4 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Pins != 2+3+4 {
		t.Errorf("Pins = %d, want 9", s.Pins)
	}
	if s.Utilisation <= 0 || s.Utilisation > 1 {
		t.Errorf("Utilisation = %v", s.Utilisation)
	}
	if s.Node != "45nm" {
		t.Errorf("Node = %q", s.Node)
	}
}

func TestCellsTouchingRect(t *testing.T) {
	d := testDesign(t)
	sw, rh := d.Tech.Site.Width, d.Tech.Site.Height
	got := d.CellsTouchingRect(geom.R(0, 0, 3*sw, 2*rh))
	// c0 (row 0, sites [0,2)) and c2 (row 1, sites [0,2)).
	want := map[int32]bool{0: true, 2: true}
	if len(got) != 2 {
		t.Fatalf("CellsTouchingRect = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected cell %d", id)
		}
	}
}
