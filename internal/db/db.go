// Package db is the design database at the heart of the CR&P flow: the
// netlist (macros, cells, pins, nets), the placement rows, the placement
// occupancy structures used for legality checks and cell moves, and the
// per-cell history sets (hist_c, hist_m) that Algorithm 1 of the paper
// consults when labelling critical cells.
//
// The database owns placement truth. Routing truth (GCell demands, routes,
// guides) lives in internal/grid and internal/route; those packages read
// positions from here and are invalidated through the flow's update step
// when cells move.
package db

import (
	"fmt"
	"sort"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// Orient is a placement orientation. Only the two orientations that appear
// in single-height standard-cell rows are modelled: N (R0) and FS (MY,
// flipped about the X axis), which is how alternating rows share power rails.
type Orient uint8

const (
	// N is the unflipped orientation.
	N Orient = iota
	// FS is flipped south: pin offsets mirror vertically within the cell.
	FS
)

// String implements fmt.Stringer.
func (o Orient) String() string {
	if o == N {
		return "N"
	}
	return "FS"
}

// PinDef is a pin of a macro: an offset from the cell's lower-left corner
// plus the routing layer the pin shape sits on.
type PinDef struct {
	Name   string
	Offset geom.Point // from the macro's lower-left corner, N orientation
	Layer  int        // routing layer index of the pin shape
}

// Macro is a standard-cell master. Height is always one row in this flow
// (the ISPD-2018 designs are single-height standard cells; fixed macros are
// modelled as obstacles instead).
type Macro struct {
	Name   string
	Width  int // DBU; an integer multiple of the site width
	Height int // DBU; equals the row height
	Pins   []PinDef
}

// PinRef identifies one connection of a net: a (cell, pin) pair.
type PinRef struct {
	Cell int32 // cell ID
	Pin  int32 // index into the cell's macro Pins
}

// IOPin is a fixed terminal of a net (a primary input/output pad): an
// absolute position on a layer, independent of any cell.
type IOPin struct {
	Name  string
	Pos   geom.Point
	Layer int
}

// Net connects cell pins and optionally fixed IO pins.
type Net struct {
	ID   int32
	Name string
	Pins []PinRef
	IOs  []IOPin
}

// Degree returns the number of terminals of the net.
func (n *Net) Degree() int { return len(n.Pins) + len(n.IOs) }

// Cell is a placed component instance.
type Cell struct {
	ID     int32
	Name   string
	Macro  *Macro
	Pos    geom.Point // lower-left corner, DBU
	Orient Orient
	Fixed  bool
	Row    int32   // index of the row the cell currently sits in
	Nets   []int32 // IDs of nets touching this cell
}

// Rect returns the cell's occupied area at its current position.
func (c *Cell) Rect() geom.Rect {
	return geom.Rect{Lo: c.Pos, Hi: c.Pos.Add(geom.Pt(c.Macro.Width, c.Macro.Height))}
}

// RectAt returns the area the cell would occupy at pos.
func (c *Cell) RectAt(pos geom.Point) geom.Rect {
	return geom.Rect{Lo: pos, Hi: pos.Add(geom.Pt(c.Macro.Width, c.Macro.Height))}
}

// Row is one standard-cell placement row.
type Row struct {
	Index    int32
	X        int // DBU of the first site's left edge
	Y        int // DBU of the row bottom
	NumSites int
	Orient   Orient // orientation cells in this row must take
}

// Span returns the X interval covered by the row's sites.
func (r *Row) Span(siteW int) geom.Interval {
	return geom.Interval{Lo: r.X, Hi: r.X + r.NumSites*siteW}
}

// Obstacle is a fixed blockage: it blocks placement over its footprint and
// consumes routing resources on the listed layers (Eq. 9's U_f term).
type Obstacle struct {
	Name   string
	Rect   geom.Rect
	Layers []int // routing layers whose tracks the obstacle blocks
}

// Design is a complete physical design: technology, floorplan, netlist and
// current placement.
type Design struct {
	Name   string
	Tech   *tech.Tech
	Die    geom.Rect
	Rows   []Row
	Macros []*Macro
	Cells  []*Cell
	Nets   []*Net
	Obs    []Obstacle

	// rowCells[r] holds the IDs of the cells in row r, sorted by Pos.X.
	rowCells [][]int32

	// History sets from Algorithm 1: criticalHist[c] is true when cell c
	// was labelled critical in an earlier CR&P iteration (hist_c);
	// movedSet[c] is true when it was actually moved (hist_m).
	criticalHist []bool
	movedSet     []bool

	macroByName map[string]*Macro
	cellByName  map[string]*Cell
}

// New assembles a Design from its parts, builds the derived indices, and
// validates the result. The cells' Nets lists and Row fields are derived
// here; callers only need to fill ID, Name, Macro, Pos, Orient, Fixed.
func New(name string, t *tech.Tech, die geom.Rect, rows []Row, macros []*Macro, cells []*Cell, nets []*Net, obs []Obstacle) (*Design, error) {
	d := &Design{
		Name:   name,
		Tech:   t,
		Die:    die,
		Rows:   rows,
		Macros: macros,
		Cells:  cells,
		Nets:   nets,
		Obs:    obs,
	}
	if err := d.buildIndices(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Design) buildIndices() error {
	d.macroByName = make(map[string]*Macro, len(d.Macros))
	for _, m := range d.Macros {
		if _, dup := d.macroByName[m.Name]; dup {
			return fmt.Errorf("db: duplicate macro %q", m.Name)
		}
		d.macroByName[m.Name] = m
	}
	d.cellByName = make(map[string]*Cell, len(d.Cells))
	for i, c := range d.Cells {
		if c.ID != int32(i) {
			return fmt.Errorf("db: cell %q has ID %d at position %d", c.Name, c.ID, i)
		}
		if _, dup := d.cellByName[c.Name]; dup {
			return fmt.Errorf("db: duplicate cell %q", c.Name)
		}
		d.cellByName[c.Name] = c
		c.Nets = c.Nets[:0]
	}
	for i, n := range d.Nets {
		if n.ID != int32(i) {
			return fmt.Errorf("db: net %q has ID %d at position %d", n.Name, n.ID, i)
		}
		for _, pr := range n.Pins {
			if pr.Cell < 0 || int(pr.Cell) >= len(d.Cells) {
				return fmt.Errorf("db: net %q references cell %d (have %d cells)", n.Name, pr.Cell, len(d.Cells))
			}
			c := d.Cells[pr.Cell]
			if pr.Pin < 0 || int(pr.Pin) >= len(c.Macro.Pins) {
				return fmt.Errorf("db: net %q references pin %d of cell %q (macro %q has %d pins)",
					n.Name, pr.Pin, c.Name, c.Macro.Name, len(c.Macro.Pins))
			}
			c.Nets = append(c.Nets, n.ID)
		}
	}
	// A cell may connect to the same net through several pins; keep Nets
	// deduplicated so ConnectedCells and cost queries see each net once.
	for _, c := range d.Cells {
		sort.Slice(c.Nets, func(a, b int) bool { return c.Nets[a] < c.Nets[b] })
		c.Nets = dedupInt32(c.Nets)
	}
	d.criticalHist = make([]bool, len(d.Cells))
	d.movedSet = make([]bool, len(d.Cells))
	return d.rebuildRowOccupancy()
}

func dedupInt32(xs []int32) []int32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// rebuildRowOccupancy assigns every cell to the row matching its Y and
// rebuilds the sorted per-row occupancy lists.
func (d *Design) rebuildRowOccupancy() error {
	rowByY := make(map[int]int32, len(d.Rows))
	for i, r := range d.Rows {
		if r.Index != int32(i) {
			return fmt.Errorf("db: row index %d at position %d", r.Index, i)
		}
		rowByY[r.Y] = r.Index
	}
	d.rowCells = make([][]int32, len(d.Rows))
	for _, c := range d.Cells {
		ri, ok := rowByY[c.Pos.Y]
		if !ok {
			return fmt.Errorf("db: cell %q at Y=%d is not on any row", c.Name, c.Pos.Y)
		}
		c.Row = ri
		d.rowCells[ri] = append(d.rowCells[ri], c.ID)
	}
	for ri := range d.rowCells {
		ids := d.rowCells[ri]
		sort.Slice(ids, func(a, b int) bool { return d.Cells[ids[a]].Pos.X < d.Cells[ids[b]].Pos.X })
	}
	return nil
}

// Validate checks placement legality of every cell and structural sanity.
// A freshly generated or parsed design must pass; CR&P must keep it passing
// after every iteration (this is asserted in tests).
func (d *Design) Validate() error {
	for _, c := range d.Cells {
		if err := d.CheckLegal(c, c.Pos); err != nil {
			return fmt.Errorf("cell %q: %w", c.Name, err)
		}
	}
	for ri, ids := range d.rowCells {
		for i := 1; i < len(ids); i++ {
			a, b := d.Cells[ids[i-1]], d.Cells[ids[i]]
			if a.Pos.X+a.Macro.Width > b.Pos.X {
				return fmt.Errorf("row %d: cells %q and %q overlap", ri, a.Name, b.Name)
			}
		}
	}
	return nil
}

// ReconnectNet replaces net nid's cell-pin terminals with pins, keeping the
// per-cell Nets indices consistent, and returns the previous pin list so the
// owning transaction can undo the rewiring on Discard. Every PinRef is
// validated before anything mutates; on error the net is untouched. IO
// terminals are unaffected, and routing state is deliberately not touched —
// callers reroute the net through the owning view.Txn.
func (d *Design) ReconnectNet(nid int32, pins []PinRef) ([]PinRef, error) {
	if nid < 0 || int(nid) >= len(d.Nets) {
		return nil, fmt.Errorf("db: reconnect of unknown net %d (have %d nets)", nid, len(d.Nets))
	}
	n := d.Nets[nid]
	for _, pr := range pins {
		if pr.Cell < 0 || int(pr.Cell) >= len(d.Cells) {
			return nil, fmt.Errorf("db: net %q reconnect references cell %d (have %d cells)", n.Name, pr.Cell, len(d.Cells))
		}
		c := d.Cells[pr.Cell]
		if pr.Pin < 0 || int(pr.Pin) >= len(c.Macro.Pins) {
			return nil, fmt.Errorf("db: net %q reconnect references pin %d of cell %q (macro %q has %d pins)",
				n.Name, pr.Pin, c.Name, c.Macro.Name, len(c.Macro.Pins))
		}
	}
	if len(pins)+len(n.IOs) < 2 {
		return nil, fmt.Errorf("db: net %q reconnect would leave %d terminals", n.Name, len(pins)+len(n.IOs))
	}
	old := n.Pins
	wasOn := make(map[int32]bool, len(old))
	for _, pr := range old {
		wasOn[pr.Cell] = true
	}
	n.Pins = append([]PinRef(nil), pins...)
	isOn := make(map[int32]bool, len(n.Pins))
	for _, pr := range n.Pins {
		isOn[pr.Cell] = true
	}
	// Each cell's Nets list is touched at most once, so map iteration order
	// does not matter: the lists stay sorted and deduplicated.
	for cid := range wasOn {
		if !isOn[cid] {
			d.Cells[cid].Nets = removeSortedInt32(d.Cells[cid].Nets, nid)
		}
	}
	for cid := range isOn {
		if !wasOn[cid] {
			d.Cells[cid].Nets = insertSortedInt32(d.Cells[cid].Nets, nid)
		}
	}
	return old, nil
}

func removeSortedInt32(xs []int32, x int32) []int32 {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= x })
	if i < len(xs) && xs[i] == x {
		return append(xs[:i], xs[i+1:]...)
	}
	return xs
}

func insertSortedInt32(xs []int32, x int32) []int32 {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= x })
	if i < len(xs) && xs[i] == x {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = x
	return xs
}

// MacroByName looks up a macro.
func (d *Design) MacroByName(name string) (*Macro, bool) {
	m, ok := d.macroByName[name]
	return m, ok
}

// CellByName looks up a cell.
func (d *Design) CellByName(name string) (*Cell, bool) {
	c, ok := d.cellByName[name]
	return c, ok
}

// WasCritical reports hist_c for a cell (labelled critical in an earlier
// CR&P iteration).
func (d *Design) WasCritical(id int32) bool { return d.criticalHist[id] }

// WasMoved reports hist_m for a cell (moved in an earlier CR&P iteration).
func (d *Design) WasMoved(id int32) bool { return d.movedSet[id] }

// MarkCritical records that a cell was labelled critical this iteration.
func (d *Design) MarkCritical(id int32) { d.criticalHist[id] = true }

// MarkMoved records that a cell was moved this iteration.
func (d *Design) MarkMoved(id int32) { d.movedSet[id] = true }

// ExportHistory returns copies of the Algorithm 1 history sets (hist_c,
// hist_m), indexed by cell ID — checkpointed so a resumed run re-selects
// critical cells with the same damping as the uninterrupted one.
func (d *Design) ExportHistory() (critical, moved []bool) {
	critical = append([]bool(nil), d.criticalHist...)
	moved = append([]bool(nil), d.movedSet...)
	return critical, moved
}

// ImportHistory restores the history sets from a prior ExportHistory.
func (d *Design) ImportHistory(critical, moved []bool) error {
	if len(critical) != len(d.Cells) || len(moved) != len(d.Cells) {
		return fmt.Errorf("db: history import has %d/%d entries, design has %d cells",
			len(critical), len(moved), len(d.Cells))
	}
	copy(d.criticalHist, critical)
	copy(d.movedSet, moved)
	return nil
}

// ResetHistory clears both history sets (used between independent runs).
func (d *Design) ResetHistory() {
	for i := range d.criticalHist {
		d.criticalHist[i] = false
		d.movedSet[i] = false
	}
}

// Stats summarises the design for Table II-style reporting.
type Stats struct {
	Cells       int
	Nets        int
	Pins        int
	Rows        int
	Node        string
	Utilisation float64 // placed cell area / row area
}

// Stats computes the design statistics.
func (d *Design) Stats() Stats {
	s := Stats{Cells: len(d.Cells), Nets: len(d.Nets), Rows: len(d.Rows), Node: d.Tech.Node}
	for _, n := range d.Nets {
		s.Pins += n.Degree()
	}
	var cellArea, rowArea int64
	for _, c := range d.Cells {
		cellArea += int64(c.Macro.Width) * int64(c.Macro.Height)
	}
	for _, r := range d.Rows {
		rowArea += int64(r.NumSites*d.Tech.Site.Width) * int64(d.Tech.Site.Height)
	}
	for _, o := range d.Obs {
		rowArea -= o.Rect.Area() // blocked area is unusable
	}
	if rowArea > 0 {
		s.Utilisation = float64(cellArea) / float64(rowArea)
	}
	return s
}
