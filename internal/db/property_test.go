package db

import (
	"math/rand"
	"testing"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// buildRandomDesign creates a random legal design for property testing.
func buildRandomDesign(t *testing.T, rng *rand.Rand, nRows, nSites, nCells int) *Design {
	t.Helper()
	tc := tech.N32()
	sw, rh := tc.Site.Width, tc.Site.Height
	die := geom.R(0, 0, nSites*sw, nRows*rh)
	rows := make([]Row, nRows)
	for i := range rows {
		o := N
		if i%2 == 1 {
			o = FS
		}
		rows[i] = Row{Index: int32(i), X: 0, Y: i * rh, NumSites: nSites, Orient: o}
	}
	widths := []int{2, 3, 4}
	macros := make([]*Macro, len(widths))
	for i, w := range widths {
		macros[i] = &Macro{
			Name: "M" + string(rune('A'+i)), Width: w * sw, Height: rh,
			Pins: []PinDef{{Name: "A", Offset: geom.Pt(sw/2, rh/2), Layer: 0}},
		}
	}
	used := make([][]bool, nRows)
	for i := range used {
		used[i] = make([]bool, nSites)
	}
	var cells []*Cell
	for len(cells) < nCells {
		m := macros[rng.Intn(len(macros))]
		w := m.Width / sw
		r := rng.Intn(nRows)
		s := rng.Intn(nSites - w)
		free := true
		for i := s; i < s+w; i++ {
			if used[r][i] {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		for i := s; i < s+w; i++ {
			used[r][i] = true
		}
		o := N
		if r%2 == 1 {
			o = FS
		}
		cells = append(cells, &Cell{
			ID: int32(len(cells)), Name: "c" + itoa(len(cells)), Macro: m,
			Pos: geom.Pt(s*sw, r*rh), Orient: o,
		})
	}
	d, err := New("prop", tc, die, rows, macros, cells, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// A long random sequence of attempted moves must keep the design legal at
// every step; accepted moves go to free legal slots, rejected moves change
// nothing.
func TestRandomMoveSequencePreservesLegality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := buildRandomDesign(t, rng, 10, 60, 80)
	sw, rh := d.Tech.Site.Width, d.Tech.Site.Height
	accepted, rejected := 0, 0
	for step := 0; step < 600; step++ {
		id := int32(rng.Intn(len(d.Cells)))
		target := geom.Pt(rng.Intn(62)*sw-sw, rng.Intn(12)*rh-rh) // may be off-die/off-grid
		before := d.Cells[id].Pos
		err := d.MoveCell(id, target)
		if err != nil {
			rejected++
			if d.Cells[id].Pos != before {
				t.Fatalf("step %d: rejected move mutated position", step)
			}
		} else {
			accepted++
		}
		if step%50 == 0 {
			if verr := d.Validate(); verr != nil {
				t.Fatalf("step %d: design invalid: %v", step, verr)
			}
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("final validate: %v", err)
	}
	if accepted == 0 {
		t.Error("no random move was ever accepted — generator too tight?")
	}
	if rejected == 0 {
		t.Error("no random move was ever rejected — bounds not exercised")
	}
}

// Occupancy index vs brute force: IsFreeFor must agree with a full scan of
// every cell rectangle.
func TestOccupancyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := buildRandomDesign(t, rng, 8, 40, 50)
	sw, rh := d.Tech.Site.Width, d.Tech.Site.Height
	for trial := 0; trial < 300; trial++ {
		row := int32(rng.Intn(8))
		x0 := rng.Intn(40) * sw
		x1 := x0 + (1+rng.Intn(6))*sw
		got := d.IsFreeFor(row, x0, x1, nil)
		probe := geom.R(x0, int(row)*rh, x1, int(row)*rh+rh)
		want := true
		for _, c := range d.Cells {
			if c.Rect().Overlaps(probe) {
				want = false
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: IsFreeFor(row %d, [%d,%d)) = %v, brute force %v",
				trial, row, x0, x1, got, want)
		}
	}
}

// Batch moves preserve a conserved quantity: the multiset of occupied site
// counts (total occupied sites never changes when cells only move).
func TestMoveConservesOccupiedArea(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	d := buildRandomDesign(t, rng, 8, 50, 60)
	var areaBefore int64
	for _, c := range d.Cells {
		areaBefore += c.Rect().Area()
	}
	sw, rh := d.Tech.Site.Width, d.Tech.Site.Height
	for step := 0; step < 200; step++ {
		id := int32(rng.Intn(len(d.Cells)))
		_ = d.MoveCell(id, geom.Pt(rng.Intn(48)*sw, rng.Intn(8)*rh))
	}
	var areaAfter int64
	for _, c := range d.Cells {
		areaAfter += c.Rect().Area()
	}
	if areaBefore != areaAfter {
		t.Fatalf("occupied area changed: %d -> %d", areaBefore, areaAfter)
	}
}

// HPWL is translation-consistent: moving a single-pin-net cell by delta
// changes that net's HPWL by at most |delta| in each axis.
func TestHPWLBoundedByMoveDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	d := buildRandomDesign(t, rng, 8, 50, 40)
	// Wire up pairs of cells into 2-pin nets.
	var nets []*Net
	for i := 0; i+1 < len(d.Cells); i += 2 {
		nets = append(nets, &Net{
			ID: int32(len(nets)), Name: "n" + itoa(i),
			Pins: []PinRef{{Cell: int32(i), Pin: 0}, {Cell: int32(i + 1), Pin: 0}},
		})
	}
	d2, err := New("prop2", d.Tech, d.Die, d.Rows, d.Macros, d.Cells, nets, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, rh := d2.Tech.Site.Width, d2.Tech.Site.Height
	for trial := 0; trial < 100; trial++ {
		id := int32(rng.Intn(len(d2.Cells)))
		c := d2.Cells[id]
		before := c.Pos
		hBefore := d2.TotalHPWL()
		if d2.MoveCell(id, geom.Pt(rng.Intn(48)*sw, rng.Intn(8)*rh)) != nil {
			continue
		}
		delta := int64(before.ManhattanDist(c.Pos))
		hAfter := d2.TotalHPWL()
		diff := hAfter - hBefore
		if diff < 0 {
			diff = -diff
		}
		// One cell on at most len(c.Nets) nets, each changing by <= delta.
		bound := delta * int64(len(c.Nets))
		if len(c.Nets) > 0 && diff > bound {
			t.Fatalf("trial %d: HPWL moved by %d, bound %d", trial, diff, bound)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
