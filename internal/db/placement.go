package db

import (
	"fmt"

	"github.com/crp-eda/crp/internal/geom"
)

// CheckLegal reports whether cell c could legally sit at pos, checking every
// constraint of the paper's Section III placement formulation except
// overlap with other cells (use IsFreeFor for that):
//
//   - inside the die (Eq. 5),
//   - on a row, spanning only that row's sites (Eq. 8),
//   - X aligned to the site grid (Eq. 7),
//   - not over a placement obstacle.
//
// It returns nil when legal and a descriptive error otherwise.
func (d *Design) CheckLegal(c *Cell, pos geom.Point) error {
	r := c.RectAt(pos)
	if !d.Die.ContainsRect(r) {
		return fmt.Errorf("db: %v outside die %v", r, d.Die)
	}
	row, ok := d.RowAt(pos.Y)
	if !ok {
		return fmt.Errorf("db: Y=%d is not a row bottom", pos.Y)
	}
	span := row.Span(d.Tech.Site.Width)
	if pos.X < span.Lo || pos.X+c.Macro.Width > span.Hi {
		return fmt.Errorf("db: X range [%d,%d) outside row %d sites [%d,%d)",
			pos.X, pos.X+c.Macro.Width, row.Index, span.Lo, span.Hi)
	}
	if (pos.X-row.X)%d.Tech.Site.Width != 0 {
		return fmt.Errorf("db: X=%d not aligned to site grid (row X=%d, site=%d)",
			pos.X, row.X, d.Tech.Site.Width)
	}
	for _, o := range d.Obs {
		if o.Rect.Overlaps(r) {
			return fmt.Errorf("db: overlaps obstacle %q at %v", o.Name, o.Rect)
		}
	}
	return nil
}

// RowAt returns the row whose bottom edge is y.
func (d *Design) RowAt(y int) (*Row, bool) {
	// Rows are uniform-height and contiguous from the die bottom; index
	// arithmetic avoids a map lookup on this hot path.
	h := d.Tech.Site.Height
	if len(d.Rows) == 0 {
		return nil, false
	}
	base := d.Rows[0].Y
	if y < base || (y-base)%h != 0 {
		return nil, false
	}
	idx := (y - base) / h
	if idx >= len(d.Rows) {
		return nil, false
	}
	return &d.Rows[idx], true
}

// CellsInRowRange returns the IDs of cells in row `row` whose X footprint
// intersects [x0, x1), in left-to-right order.
func (d *Design) CellsInRowRange(row int32, x0, x1 int) []int32 {
	if row < 0 || int(row) >= len(d.rowCells) {
		return nil
	}
	ids := d.rowCells[row]
	// Binary search for the first cell whose right edge is past x0.
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		c := d.Cells[ids[mid]]
		if c.Pos.X+c.Macro.Width <= x0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var out []int32
	for i := lo; i < len(ids); i++ {
		c := d.Cells[ids[i]]
		if c.Pos.X >= x1 {
			break
		}
		out = append(out, ids[i])
	}
	return out
}

// IsFreeFor reports whether the X interval [x0, x1) of a row is free of
// cells other than those in ignore (typically the cells being relocated by
// the legalizer's local window).
func (d *Design) IsFreeFor(row int32, x0, x1 int, ignore map[int32]bool) bool {
	for _, id := range d.CellsInRowRange(row, x0, x1) {
		if !ignore[id] {
			return false
		}
	}
	return true
}

// MoveCell relocates cell id to pos, updating the row occupancy. The move
// must be individually legal (CheckLegal) and must not overlap any other
// cell; otherwise an error is returned and nothing changes.
func (d *Design) MoveCell(id int32, pos geom.Point) error {
	c := d.Cells[id]
	if c.Fixed {
		return fmt.Errorf("db: cell %q is fixed", c.Name)
	}
	if pos == c.Pos {
		return nil
	}
	if err := d.CheckLegal(c, pos); err != nil {
		return err
	}
	ignore := map[int32]bool{id: true}
	newRow, _ := d.RowAt(pos.Y)
	if !d.IsFreeFor(newRow.Index, pos.X, pos.X+c.Macro.Width, ignore) {
		return fmt.Errorf("db: target span [%d,%d) of row %d occupied", pos.X, pos.X+c.Macro.Width, newRow.Index)
	}
	d.removeFromRow(c)
	c.Pos = pos
	c.Orient = newRow.Orient
	c.Row = newRow.Index
	d.insertIntoRow(c)
	return nil
}

// MoveCells applies a batch of moves atomically with respect to each other:
// all targets are checked against the occupancy state with every moving cell
// lifted out, so cells may swap or shift into each other's old spans. On any
// conflict the whole batch is rejected.
func (d *Design) MoveCells(moves map[int32]geom.Point) error {
	if len(moves) == 0 {
		return nil
	}
	ignore := make(map[int32]bool, len(moves))
	for id := range moves {
		if d.Cells[id].Fixed {
			return fmt.Errorf("db: cell %q is fixed", d.Cells[id].Name)
		}
		ignore[id] = true
	}
	// Check each target for legality and for overlap against non-moving
	// cells, then check moving cells pairwise at their targets.
	type placed struct {
		c   *Cell
		pos geom.Point
	}
	batch := make([]placed, 0, len(moves))
	for id, pos := range moves {
		c := d.Cells[id]
		if err := d.CheckLegal(c, pos); err != nil {
			return err
		}
		row, _ := d.RowAt(pos.Y)
		if !d.IsFreeFor(row.Index, pos.X, pos.X+c.Macro.Width, ignore) {
			return fmt.Errorf("db: target of %q overlaps a non-moving cell", c.Name)
		}
		batch = append(batch, placed{c, pos})
	}
	for i := range batch {
		for j := i + 1; j < len(batch); j++ {
			a, b := batch[i], batch[j]
			if a.c.RectAt(a.pos).Overlaps(b.c.RectAt(b.pos)) {
				return fmt.Errorf("db: moving cells %q and %q would overlap", a.c.Name, b.c.Name)
			}
		}
	}
	for _, p := range batch {
		d.removeFromRow(p.c)
		row, _ := d.RowAt(p.pos.Y)
		p.c.Pos = p.pos
		p.c.Orient = row.Orient
		p.c.Row = row.Index
		d.insertIntoRow(p.c)
	}
	return nil
}

func (d *Design) removeFromRow(c *Cell) {
	ids := d.rowCells[c.Row]
	for i, id := range ids {
		if id == c.ID {
			d.rowCells[c.Row] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("db: cell %q not found in its row %d", c.Name, c.Row))
}

func (d *Design) insertIntoRow(c *Cell) {
	ids := d.rowCells[c.Row]
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Cells[ids[mid]].Pos.X < c.Pos.X {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ids = append(ids, 0)
	copy(ids[lo+1:], ids[lo:])
	ids[lo] = c.ID
	d.rowCells[c.Row] = ids
}

// FreeSitesIn enumerates the free site X positions in [x0, x1) of a row that
// could host a cell of width w, excluding space under cells not in ignore.
// Positions are site-aligned and returned in increasing order.
func (d *Design) FreeSitesIn(row int32, x0, x1, w int, ignore map[int32]bool) []int {
	r := &d.Rows[row]
	sw := d.Tech.Site.Width
	span := r.Span(sw)
	lo := geom.SnapUp(max(x0, span.Lo)-r.X, sw) + r.X
	hi := min(x1, span.Hi)

	// Collect blocking intervals: placed cells not being ignored, plus
	// obstacles intersecting this row.
	type iv struct{ a, b int }
	var blocks []iv
	for _, id := range d.CellsInRowRange(row, lo, hi+w) {
		if ignore[id] {
			continue
		}
		c := d.Cells[id]
		blocks = append(blocks, iv{c.Pos.X, c.Pos.X + c.Macro.Width})
	}
	rowRect := geom.Rect{Lo: geom.Pt(span.Lo, r.Y), Hi: geom.Pt(span.Hi, r.Y+d.Tech.Site.Height)}
	for _, o := range d.Obs {
		if o.Rect.Overlaps(rowRect) {
			blocks = append(blocks, iv{o.Rect.Lo.X, o.Rect.Hi.X})
		}
	}

	var out []int
	for x := lo; x+w <= hi; x += sw {
		ok := true
		for _, b := range blocks {
			if x < b.b && b.a < x+w {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, x)
		}
	}
	return out
}

// ExportPositions returns copies of every cell's position and orientation,
// indexed by cell ID — the placement half of a durable checkpoint.
func (d *Design) ExportPositions() ([]geom.Point, []Orient) {
	pos := make([]geom.Point, len(d.Cells))
	or := make([]Orient, len(d.Cells))
	for i, c := range d.Cells {
		pos[i] = c.Pos
		or[i] = c.Orient
	}
	return pos, or
}

// ImportPositions sets every cell's position and orientation from a prior
// ExportPositions and rebuilds the occupancy index. It is the restore half
// of a durable checkpoint: unlike MoveCells it bypasses per-move legality
// (the caller re-validates the whole design afterwards, e.g. through the
// CR&P invariant checker).
func (d *Design) ImportPositions(pos []geom.Point, or []Orient) error {
	if len(pos) != len(d.Cells) || len(or) != len(d.Cells) {
		return fmt.Errorf("db: position import has %d/%d entries, design has %d cells",
			len(pos), len(or), len(d.Cells))
	}
	for i, c := range d.Cells {
		c.Pos = pos[i]
		c.Orient = or[i]
	}
	return d.rebuildRowOccupancy()
}

// PositionSnapshot captures all cell positions for later restore.
type PositionSnapshot struct {
	pos    []geom.Point
	orient []Orient
}

// Snapshot records current cell positions.
func (d *Design) Snapshot() PositionSnapshot {
	s := PositionSnapshot{
		pos:    make([]geom.Point, len(d.Cells)),
		orient: make([]Orient, len(d.Cells)),
	}
	for i, c := range d.Cells {
		s.pos[i] = c.Pos
		s.orient[i] = c.Orient
	}
	return s
}

// Restore puts every cell back to the snapshotted position and rebuilds the
// occupancy index.
func (d *Design) Restore(s PositionSnapshot) error {
	if len(s.pos) != len(d.Cells) {
		return fmt.Errorf("db: snapshot has %d cells, design has %d", len(s.pos), len(d.Cells))
	}
	for i, c := range d.Cells {
		c.Pos = s.pos[i]
		c.Orient = s.orient[i]
	}
	return d.rebuildRowOccupancy()
}
