package db

import (
	"github.com/crp-eda/crp/internal/geom"
)

// PinPosition returns the absolute position of pin `pin` of cell c at the
// cell's current location, honouring the row orientation (FS mirrors pin
// offsets vertically inside the cell).
func (d *Design) PinPosition(c *Cell, pin int32) geom.Point {
	return d.PinPositionAt(c, pin, c.Pos, c.Orient)
}

// PinPositionAt returns where pin `pin` of cell c would land if the cell
// were placed at pos with orientation o. CR&P's candidate cost estimation
// (Algorithm 3) uses this to evaluate hypothetical placements without
// mutating the database.
func (d *Design) PinPositionAt(c *Cell, pin int32, pos geom.Point, o Orient) geom.Point {
	pd := c.Macro.Pins[pin]
	off := pd.Offset
	if o == FS {
		off.Y = c.Macro.Height - off.Y
		if off.Y == c.Macro.Height {
			off.Y-- // keep the pin inside the half-open cell footprint
		}
	}
	return pos.Add(off)
}

// NetPinPositions returns the absolute positions of every terminal of net n
// at the current placement. The slice is freshly allocated.
func (d *Design) NetPinPositions(n *Net) []geom.Point {
	pts := make([]geom.Point, 0, n.Degree())
	for _, pr := range n.Pins {
		c := d.Cells[pr.Cell]
		pts = append(pts, d.PinPosition(c, pr.Pin))
	}
	for _, io := range n.IOs {
		pts = append(pts, io.Pos)
	}
	return pts
}

// NetPinPositionsWithMove is NetPinPositions but with cell `moved` assumed
// to be at hypothetical position pos (orientation taken from the target
// row). Used by candidate cost estimation: "only one cell is allowed to be
// moved and the other connected cells are fixed" (Algorithm 3).
func (d *Design) NetPinPositionsWithMove(n *Net, moved int32, pos geom.Point) []geom.Point {
	orient := d.Cells[moved].Orient
	if row, ok := d.RowAt(pos.Y); ok {
		orient = row.Orient
	}
	pts := make([]geom.Point, 0, n.Degree())
	for _, pr := range n.Pins {
		c := d.Cells[pr.Cell]
		if pr.Cell == moved {
			pts = append(pts, d.PinPositionAt(c, pr.Pin, pos, orient))
		} else {
			pts = append(pts, d.PinPosition(c, pr.Pin))
		}
	}
	for _, io := range n.IOs {
		pts = append(pts, io.Pos)
	}
	return pts
}

// HPWL returns the half-perimeter wirelength of net n in DBU.
func (d *Design) HPWL(n *Net) int64 {
	pts := d.NetPinPositions(n)
	if len(pts) < 2 {
		return 0
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX = min(minX, p.X)
		maxX = max(maxX, p.X)
		minY = min(minY, p.Y)
		maxY = max(maxY, p.Y)
	}
	return int64(maxX-minX) + int64(maxY-minY)
}

// TotalHPWL sums HPWL over all nets.
func (d *Design) TotalHPWL() int64 {
	var total int64
	for _, n := range d.Nets {
		total += d.HPWL(n)
	}
	return total
}

// ConnectedCells returns the IDs of all cells sharing a net with cell id,
// excluding id itself. Each neighbour appears once. Algorithm 1 uses this to
// keep connected cells out of the same critical set.
func (d *Design) ConnectedCells(id int32) []int32 {
	c := d.Cells[id]
	seen := map[int32]bool{id: true}
	var out []int32
	for _, nid := range c.Nets {
		for _, pr := range d.Nets[nid].Pins {
			if !seen[pr.Cell] {
				seen[pr.Cell] = true
				out = append(out, pr.Cell)
			}
		}
	}
	return out
}

// NetMedianOf returns the median position of the terminals of the cell's
// nets, excluding the cell's own pins — the classic optimal-region target
// the legalizer cost (Eq. 11) pulls candidates toward, and the move target
// of the median-ILP baseline [18].
func (d *Design) NetMedianOf(id int32) geom.Point {
	c := d.Cells[id]
	var pts []geom.Point
	for _, nid := range c.Nets {
		n := d.Nets[nid]
		for _, pr := range n.Pins {
			if pr.Cell != id {
				pts = append(pts, d.PinPosition(d.Cells[pr.Cell], pr.Pin))
			}
		}
		for _, io := range n.IOs {
			pts = append(pts, io.Pos)
		}
	}
	if len(pts) == 0 {
		return c.Pos
	}
	return geom.MedianPoint(pts)
}

// MedianScratch holds reusable buffers for NetMedianOfScratch.
type MedianScratch struct {
	xs, ys []int
}

// NetMedianOfScratch is NetMedianOf with caller-provided buffers — the
// legalizer computes medians for every cell in every window it opens, and
// the four per-call allocations of the plain version dominated that path.
// Results are identical: the same terminal coordinates feed the same
// lower-median selection.
func (d *Design) NetMedianOfScratch(id int32, s *MedianScratch) geom.Point {
	c := d.Cells[id]
	xs, ys := s.xs[:0], s.ys[:0]
	for _, nid := range c.Nets {
		n := d.Nets[nid]
		for _, pr := range n.Pins {
			if pr.Cell != id {
				p := d.PinPosition(d.Cells[pr.Cell], pr.Pin)
				xs = append(xs, p.X)
				ys = append(ys, p.Y)
			}
		}
		for _, io := range n.IOs {
			xs = append(xs, io.Pos.X)
			ys = append(ys, io.Pos.Y)
		}
	}
	s.xs, s.ys = xs, ys
	if len(xs) == 0 {
		return c.Pos
	}
	return geom.Pt(geom.MedianInPlace(xs), geom.MedianInPlace(ys))
}

// CellsTouchingRect returns the IDs of movable cells whose footprint
// intersects r, in no particular order.
func (d *Design) CellsTouchingRect(r geom.Rect) []int32 {
	var out []int32
	h := d.Tech.Site.Height
	if len(d.Rows) == 0 {
		return nil
	}
	base := d.Rows[0].Y
	r0 := (r.Lo.Y - base) / h
	r1 := (r.Hi.Y - base + h - 1) / h
	r0 = max(r0, 0)
	r1 = min(r1, len(d.Rows))
	for ri := r0; ri < r1; ri++ {
		out = append(out, d.CellsInRowRange(int32(ri), r.Lo.X, r.Hi.X)...)
	}
	return out
}
