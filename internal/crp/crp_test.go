package crp

import (
	"context"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ilp"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
)

// fixture builds a routed benchmark-style design ready for CR&P.
func fixture(t testing.TB, cells, nets int, seed int64) (*db.Design, *grid.Grid, *global.Router) {
	t.Helper()
	d, err := ispd.Generate(ispd.Spec{
		Name: "crp_fixture", Node: "n45", Cells: cells, Nets: nets,
		Utilisation: 0.88, Hotspots: 2, IOFraction: 0.03, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	return d, g, r
}

func smallConfig(iters int) Config {
	cfg := DefaultConfig()
	cfg.Iterations = iters
	cfg.Workers = 2
	return cfg
}

func TestIterateKeepsDesignLegal(t *testing.T) {
	d, g, r := fixture(t, 300, 250, 1)
	e := New(d, g, r, smallConfig(3))
	for k := 0; k < 3; k++ {
		st := e.Iterate(context.Background())
		if err := d.Validate(); err != nil {
			t.Fatalf("iteration %d left the design illegal: %v", k, err)
		}
		if st.SkippedMoves != 0 {
			t.Errorf("iteration %d skipped %d moves — exclusion constraints leaked", k, st.SkippedMoves)
		}
		if st.SolverStatus != ilp.Optimal {
			t.Errorf("iteration %d solver status %v", k, st.SolverStatus)
		}
	}
}

func TestSelectedMovesNeverWorseThanStaying(t *testing.T) {
	d, g, r := fixture(t, 300, 250, 2)
	e := New(d, g, r, smallConfig(1))
	st := e.Iterate(context.Background())
	if st.MovedCells > 0 && st.EstAfter > st.EstBefore+1e-6 {
		t.Errorf("ILP chose moves costing %v over staying at %v", st.EstAfter, st.EstBefore)
	}
}

func TestRunReducesRoutingCost(t *testing.T) {
	d, g, r := fixture(t, 400, 350, 3)
	before := r.TotalCost()
	e := New(d, g, r, smallConfig(3))
	res := e.Run(context.Background())
	after := r.TotalCost()
	if res.TotalMoved == 0 {
		t.Skip("no moves selected on this instance")
	}
	// The framework optimises estimated candidate cost; the committed
	// total cost must not blow up (small regressions possible since
	// estimates are pattern-only).
	if after > before*1.05 {
		t.Errorf("total routing cost regressed: %v -> %v", before, after)
	}
	_ = d
}

func TestCriticalSetIsConnectivityDisjoint(t *testing.T) {
	d, g, r := fixture(t, 300, 250, 4)
	e := New(d, g, r, smallConfig(1))
	critical := e.labelCriticalCells()
	if len(critical) == 0 {
		t.Fatal("no critical cells labelled")
	}
	inSet := map[int32]bool{}
	for _, id := range critical {
		inSet[id] = true
	}
	for _, id := range critical {
		for _, nb := range d.ConnectedCells(id) {
			if inSet[nb] {
				t.Fatalf("connected cells %d and %d both critical", id, nb)
			}
		}
	}
}

func TestGammaCapsCriticalSet(t *testing.T) {
	d, g, r := fixture(t, 300, 250, 5)
	cfg := smallConfig(1)
	cfg.Gamma = 0.05
	e := New(d, g, r, cfg)
	critical := e.labelCriticalCells()
	movable := 0
	for _, c := range d.Cells {
		if !c.Fixed {
			movable++
		}
	}
	limit := int(0.05 * float64(movable)) // cap is checked before insert
	if len(critical) > limit {
		t.Errorf("critical set %d exceeds gamma cap %d", len(critical), limit)
	}
}

func TestHistoryDampsReselection(t *testing.T) {
	d, g, r := fixture(t, 400, 300, 6)
	e := New(d, g, r, smallConfig(1))
	// Mark every cell as previously critical AND moved: acceptance drops
	// to exp(-2) ≈ 13.5%. Over many cells the selected fraction must be
	// well below the fresh-cell rate (100%).
	for _, c := range d.Cells {
		d.MarkCritical(c.ID)
		d.MarkMoved(c.ID)
	}
	critical := e.labelCriticalCells()
	movable := 0
	for _, c := range d.Cells {
		if !c.Fixed {
			movable++
		}
	}
	frac := float64(len(critical)) / float64(movable)
	if frac > 0.30 {
		t.Errorf("history-damped selection rate %.2f, want well below 0.30", frac)
	}
	if len(critical) == 0 {
		t.Error("damping should not eliminate selection entirely")
	}
}

func TestPriorityOrderingPrefersExpensiveCells(t *testing.T) {
	d, g, r := fixture(t, 300, 250, 7)
	e := New(d, g, r, smallConfig(1))
	cfg2 := smallConfig(1)
	cfg2.Gamma = 0.02 // only the very top of the order
	e2 := New(d, g, r, cfg2)
	critical := e2.labelCriticalCells()
	if len(critical) == 0 {
		t.Fatal("no critical cells")
	}
	// Average cost of the small high-priority set must beat the global
	// average: the sort is doing its job.
	avgSel := 0.0
	for _, id := range critical {
		avgSel += e.cellCost(id)
	}
	avgSel /= float64(len(critical))
	avgAll := 0.0
	n := 0
	for _, c := range d.Cells {
		if !c.Fixed {
			avgAll += e.cellCost(c.ID)
			n++
		}
	}
	avgAll /= float64(n)
	if avgSel <= avgAll {
		t.Errorf("priority selection avg cost %v <= population avg %v", avgSel, avgAll)
	}
}

func TestNoPriorityAblationDiffers(t *testing.T) {
	d, g, r := fixture(t, 300, 250, 8)
	cfg := smallConfig(1)
	cfg.Gamma = 0.02
	cfg.NoPriority = true
	e := New(d, g, r, cfg)
	critical := e.labelCriticalCells()
	if len(critical) == 0 {
		t.Fatal("no critical cells")
	}
	// Without the sort, selection follows cell ID order: the set must be
	// a prefix-biased sample, i.e. the smallest IDs dominate.
	maxID := int32(0)
	for _, id := range critical {
		maxID = max(maxID, id)
	}
	if int(maxID) > len(d.Cells)/2 {
		t.Logf("note: unsorted selection reached ID %d of %d", maxID, len(d.Cells))
	}
}

func TestNetsStayConnectedAfterCRP(t *testing.T) {
	d, g, r := fixture(t, 300, 250, 9)
	e := New(d, g, r, smallConfig(2))
	e.Run(context.Background())
	// Every spanning net must still have a committed route.
	for _, n := range d.Nets {
		if n.Degree() < 2 {
			continue
		}
		if r.Routes[n.ID] == nil {
			t.Fatalf("net %d lost its route", n.ID)
		}
	}
	_ = g
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, float64) {
		d, g, r := fixture(t, 250, 200, 10)
		e := New(d, g, r, smallConfig(2))
		res := e.Run(context.Background())
		return res.TotalMoved, r.TotalCost()
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 || c1 != c2 {
		t.Errorf("same seed diverged: moved %d/%d cost %v/%v", m1, m2, c1, c2)
	}
}

func TestPhaseTimesRecorded(t *testing.T) {
	d, g, r := fixture(t, 250, 200, 11)
	e := New(d, g, r, smallConfig(1))
	st := e.Iterate(context.Background())
	if st.Times.Total() <= 0 {
		t.Error("no phase times recorded")
	}
	if st.Times.GCP <= 0 || st.Times.ECC <= 0 {
		t.Errorf("GCP/ECC not timed: %+v", st.Times)
	}
	if st.Times.Misc() != st.Times.Label+st.Times.ILP {
		t.Error("Misc bucket wrong")
	}
}

func TestLengthOnlyCostMode(t *testing.T) {
	d, g, r := fixture(t, 250, 200, 12)
	cfg := smallConfig(1)
	cfg.CostMode = LengthOnly
	e := New(d, g, r, cfg)
	st := e.Iterate(context.Background())
	if err := d.Validate(); err != nil {
		t.Fatalf("LengthOnly iteration broke legality: %v", err)
	}
	if st.SolverStatus != ilp.Optimal {
		t.Errorf("solver status %v", st.SolverStatus)
	}
}

func TestMarkHistoryAfterIteration(t *testing.T) {
	d, g, r := fixture(t, 250, 200, 13)
	e := New(d, g, r, smallConfig(1))
	st := e.Iterate(context.Background())
	nCrit, nMoved := 0, 0
	for _, c := range d.Cells {
		if d.WasCritical(c.ID) {
			nCrit++
		}
		if d.WasMoved(c.ID) {
			nMoved++
		}
	}
	if nCrit != st.Criticals {
		t.Errorf("hist_c count %d != labelled %d", nCrit, st.Criticals)
	}
	if nMoved != st.MovedCells {
		t.Errorf("hist_m count %d != moved %d", nMoved, st.MovedCells)
	}
}

func BenchmarkIterate(b *testing.B) {
	d, g, r := fixture(b, 400, 350, 20)
	e := New(d, g, r, smallConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Iterate(context.Background())
	}
}

// BenchmarkECCEstimateCosts isolates phase 3 (Algorithm 3), the Fig. 3 hot
// spot the estimation caches target: candidates are generated once, then
// each iteration re-prices all of them at fixed grid demand. Run with
// -benchmem to see the allocation profile of the fast path.
func BenchmarkECCEstimateCosts(b *testing.B) {
	d, g, r := fixture(b, 400, 350, 20)
	e := New(d, g, r, smallConfig(1))
	critical := e.labelCriticalCells()
	cands, _ := e.generateCandidates(context.Background(), critical)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.estimateCosts(context.Background(), cands)
	}
}

func TestRunUntilConverged(t *testing.T) {
	d, g, r := fixture(t, 250, 200, 14)
	e := New(d, g, r, smallConfig(1))
	res := e.RunUntilConverged(context.Background(), 20, 1)
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations ran")
	}
	if len(res.Iterations) == 20 {
		t.Log("note: did not converge within 20 iterations")
	} else {
		last := res.Iterations[len(res.Iterations)-1]
		if last.MovedCells >= 1 {
			t.Errorf("stopped while still moving %d cells", last.MovedCells)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("converged design invalid: %v", err)
	}
}
