package crp

import (
	"context"
	"testing"
)

func TestCountedSourceFastForward(t *testing.T) {
	// Draw a mixed Int63/Uint64 stream, then fast-forward a fresh source by
	// the recorded count using Int63 only — the replay mechanism
	// RestoreState uses. The next draws must coincide: both methods consume
	// exactly one generator step per call.
	a := newCountedSource(99)
	for i := 0; i < 17; i++ {
		if i%3 == 0 {
			a.Uint64()
		} else {
			a.Int63()
		}
	}
	b := newCountedSource(99)
	for b.draws < a.draws {
		b.Int63()
	}
	for i := 0; i < 5; i++ {
		if got, want := b.Int63(), a.Int63(); got != want {
			t.Fatalf("draw %d after fast-forward: %d != %d", i, got, want)
		}
	}
}

func TestCountedSourceReset(t *testing.T) {
	s := newCountedSource(5)
	first := s.Int63()
	s.Int63()
	s.reset(5)
	if s.draws != 0 {
		t.Fatalf("draws = %d after reset", s.draws)
	}
	if got := s.Int63(); got != first {
		t.Fatalf("reset stream diverged: %d != %d", got, first)
	}
}

func TestRestoreStateContinuesBitIdentically(t *testing.T) {
	// Reference: three iterations straight through.
	dA, gA, rA := fixture(t, 300, 250, 11)
	eA := New(dA, gA, rA, smallConfig(3))
	for k := 0; k < 3; k++ {
		eA.Iterate(context.Background())
	}

	// Candidate: one iteration, then a *fresh* engine restored to the
	// boundary state finishes the run — the crp-level half of resume.
	dB, gB, rB := fixture(t, 300, 250, 11)
	eB := New(dB, gB, rB, smallConfig(3))
	eB.Iterate(context.Background())
	st := eB.State()
	if st.Iter != 1 || st.RNGDraws == 0 {
		t.Fatalf("boundary state = %+v", st)
	}
	eB2 := New(dB, gB, rB, smallConfig(3))
	if err := eB2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if err := eB2.CheckInvariants(); err != nil {
		t.Fatalf("restored engine fails invariants: %v", err)
	}
	for k := 1; k < 3; k++ {
		eB2.Iterate(context.Background())
	}

	for i := range dA.Cells {
		if dA.Cells[i].Pos != dB.Cells[i].Pos || dA.Cells[i].Orient != dB.Cells[i].Orient {
			t.Fatalf("cell %d diverged after restore: %v/%v vs %v/%v",
				i, dA.Cells[i].Pos, dA.Cells[i].Orient, dB.Cells[i].Pos, dB.Cells[i].Orient)
		}
	}
	if eA.src.draws != eB2.src.draws {
		t.Fatalf("RNG stream positions diverged: %d vs %d", eA.src.draws, eB2.src.draws)
	}
}

func TestRestoreStateRejectsNegativeIter(t *testing.T) {
	d, g, r := fixture(t, 120, 90, 12)
	e := New(d, g, r, smallConfig(1))
	if err := e.RestoreState(State{Iter: -1}); err == nil {
		t.Fatal("negative iteration counter must be refused")
	}
}
