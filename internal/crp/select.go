package crp

import (
	"sort"
	"time"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/ilp"
)

// Iterate runs one CR&P iteration (the five phases of Fig. 1's middle box)
// and returns its statistics.
func (e *Engine) Iterate() IterStats {
	var st IterStats

	t0 := time.Now()
	critical := e.labelCriticalCells()
	st.Times.Label = time.Since(t0)
	st.Criticals = len(critical)
	for _, id := range critical {
		e.D.MarkCritical(id)
	}
	if len(critical) == 0 {
		return st
	}

	t0 = time.Now()
	cands := e.generateCandidates(critical)
	st.Times.GCP = time.Since(t0)
	for _, cs := range cands {
		st.Candidates += len(cs)
	}

	t0 = time.Now()
	e.estimateCosts(cands)
	st.Times.ECC = time.Since(t0)

	t0 = time.Now()
	chosen, sol := e.selectCandidates(cands)
	st.Times.ILP = time.Since(t0)
	st.SolverNodes = sol.Nodes
	st.SolverStatus = sol.Status

	// EstBefore/EstAfter compare the selected moves against staying put,
	// on the same Algorithm 3 cost scale.
	curCost := make(map[int32]float64, len(cands))
	for i := range cands {
		for j := range cands[i] {
			if cands[i][j].isCurrent {
				curCost[cands[i][j].cell] = cands[i][j].cost
			}
		}
	}

	t0 = time.Now()
	e.applyMoves(chosen, curCost, &st)
	st.Times.UD = time.Since(t0)
	return st
}

// selectCandidates builds and solves the Eq. 12 selection ILP: one
// candidate per critical cell; candidates of different cells that move the
// same cell or whose moved footprints overlap exclude each other.
//
// Exact pruning shrinks the model first: a move candidate whose estimated
// cost is not below its cell's stay-put cost is dominated — replacing it
// with "stay" in any feasible solution stays feasible (staying occupies
// nothing new) and does not increase the objective — so it is dropped, and
// cells left with no improving candidate are fixed to their current
// position outside the model.
func (e *Engine) selectCandidates(cands [][]candidate) ([]*candidate, ilp.Solution) {
	var chosen []*candidate
	type cellCands struct {
		ci   int
		list []int // candidate indices within cands[ci], current first
	}
	var active []cellCands
	for i, cs := range cands {
		curIdx := -1
		for j := range cs {
			if cs[j].isCurrent {
				curIdx = j
				break
			}
		}
		if curIdx < 0 {
			curIdx = 0 // defensive: treat the first as current
		}
		cur := cs[curIdx].cost
		keep := []int{curIdx}
		for j := range cs {
			if j != curIdx && cs[j].cost < cur-1e-9 {
				keep = append(keep, j)
			}
		}
		if len(keep) == 1 {
			chosen = append(chosen, &cands[i][curIdx])
			continue
		}
		active = append(active, cellCands{i, keep})
	}
	if len(active) == 0 {
		return chosen, ilp.Solution{Status: ilp.Optimal, HasIncumbent: true}
	}

	m := ilp.NewModel()
	type varRef struct {
		ci, cj int // indices into cands
	}
	var refs []varRef

	// Per-cell "exactly one" constraints.
	for _, cc := range active {
		terms := make([]ilp.Term, 0, len(cc.list))
		for _, j := range cc.list {
			v := m.AddBinary("", cands[cc.ci][j].cost)
			refs = append(refs, varRef{cc.ci, j})
			terms = append(terms, ilp.Term{Var: v, Coef: 1})
		}
		m.AddConstraint("pick-one", terms, ilp.EQ, 1)
	}

	// Exclusion constraints. A spatial hash over moved footprints (at
	// site granularity) and a moved-cell index find colliding pairs
	// without the quadratic sweep.
	sw := e.D.Tech.Site.Width
	siteOwners := map[[2]int][]int{} // (row, siteX) -> var indices
	cellMovers := map[int32][]int{}  // moved cell -> var indices
	for vi, ref := range refs {
		c := &cands[ref.ci][ref.cj]
		if c.isCurrent {
			continue // staying put occupies what it already owns
		}
		for _, mc := range c.movedCells() {
			cellMovers[mc] = append(cellMovers[mc], vi)
			var p geom.Point
			if mc == c.cell {
				p = c.pos
			} else {
				p = c.conflicts[mc]
			}
			w := e.D.Cells[mc].Macro.Width
			row, ok := e.D.RowAt(p.Y)
			if !ok {
				continue
			}
			for x := p.X; x < p.X+w; x += sw {
				key := [2]int{int(row.Index), x}
				siteOwners[key] = append(siteOwners[key], vi)
			}
		}
	}
	// Emit exclusion pairs in sorted key order so the model (and thus any
	// solver tie-breaking) is deterministic run to run.
	pairSeen := map[[2]int]bool{}
	addPair := func(a, b int) {
		if refs[a].ci == refs[b].ci {
			return // same critical cell: covered by pick-one
		}
		if a > b {
			a, b = b, a
		}
		if pairSeen[[2]int{a, b}] {
			return
		}
		pairSeen[[2]int{a, b}] = true
		m.AddConstraint("excl",
			[]ilp.Term{{Var: ilp.VarID(a), Coef: 1}, {Var: ilp.VarID(b), Coef: 1}}, ilp.LE, 1)
	}
	siteKeys := make([][2]int, 0, len(siteOwners))
	for k := range siteOwners {
		siteKeys = append(siteKeys, k)
	}
	sort.Slice(siteKeys, func(a, b int) bool {
		if siteKeys[a][0] != siteKeys[b][0] {
			return siteKeys[a][0] < siteKeys[b][0]
		}
		return siteKeys[a][1] < siteKeys[b][1]
	})
	for _, k := range siteKeys {
		vs := siteOwners[k]
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				addPair(vs[i], vs[j])
			}
		}
	}
	moverKeys := make([]int32, 0, len(cellMovers))
	for k := range cellMovers {
		moverKeys = append(moverKeys, k)
	}
	sort.Slice(moverKeys, func(a, b int) bool { return moverKeys[a] < moverKeys[b] })
	for _, k := range moverKeys {
		vs := cellMovers[k]
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				addPair(vs[i], vs[j])
			}
		}
	}

	sol := m.Solve(ilp.Options{MaxNodes: 200_000})
	if sol.Status == ilp.Optimal {
		for vi, ref := range refs {
			if sol.Values[vi] == 1 {
				chosen = append(chosen, &cands[ref.ci][ref.cj])
			}
		}
		return chosen, sol
	}

	// Node budget exhausted on a pathological component: fall back to a
	// greedy improving selection — best gain first, skipping any move that
	// collides with an already-accepted one. Always feasible and never
	// worse than everyone staying put.
	type pick struct {
		cc   cellCands
		best int // candidate index, -1 = stay
		gain float64
	}
	picks := make([]pick, 0, len(active))
	for _, cc := range active {
		cur := cands[cc.ci][cc.list[0]].cost
		best, bestCost := -1, cur
		for _, j := range cc.list[1:] {
			if c := cands[cc.ci][j].cost; c < bestCost {
				best, bestCost = j, c
			}
		}
		picks = append(picks, pick{cc, best, cur - bestCost})
	}
	sort.Slice(picks, func(a, b int) bool {
		if picks[a].gain != picks[b].gain {
			return picks[a].gain > picks[b].gain
		}
		return picks[a].cc.ci < picks[b].cc.ci
	})
	claimedSites := map[[2]int]bool{}
	claimedCells := map[int32]bool{}

	for _, p := range picks {
		cur := &cands[p.cc.ci][p.cc.list[0]]
		if p.best < 0 {
			chosen = append(chosen, cur)
			continue
		}
		cand := &cands[p.cc.ci][p.best]
		ok := true
		var sites [][2]int
		var movers []int32
		for _, mc := range cand.movedCells() {
			if claimedCells[mc] {
				ok = false
				break
			}
			movers = append(movers, mc)
			pos := cand.pos
			if mc != cand.cell {
				pos = cand.conflicts[mc]
			}
			row, okr := e.D.RowAt(pos.Y)
			if !okr {
				ok = false
				break
			}
			w := e.D.Cells[mc].Macro.Width
			for x := pos.X; x < pos.X+w; x += sw {
				key := [2]int{int(row.Index), x}
				if claimedSites[key] {
					ok = false
					break
				}
				sites = append(sites, key)
			}
			if !ok {
				break
			}
		}
		if !ok {
			chosen = append(chosen, cur)
			continue
		}
		for _, s := range sites {
			claimedSites[s] = true
		}
		for _, mc := range movers {
			claimedCells[mc] = true
		}
		chosen = append(chosen, cand)
	}
	return chosen, sol
}

// applyMoves is the Update Database phase: commit the selected moves, mark
// history, and rip-up & reroute every net touching a moved cell.
func (e *Engine) applyMoves(chosen []*candidate, curCost map[int32]float64, st *IterStats) {
	movedCells := map[int32]bool{}
	for _, c := range chosen {
		if c.isCurrent {
			continue
		}
		st.EstBefore += curCost[c.cell]
		st.EstAfter += c.cost
		moves := map[int32]geom.Point{c.cell: c.pos}
		for id, p := range c.conflicts {
			moves[id] = p
		}
		if err := e.D.MoveCells(moves); err != nil {
			// The exclusion constraints should make this unreachable;
			// count it rather than corrupting the placement.
			st.SkippedMoves++
			continue
		}
		for id := range moves {
			movedCells[id] = true
			e.D.MarkMoved(id)
		}
	}
	st.MovedCells = len(movedCells)

	// Reroute all nets touching moved cells, in deterministic order.
	netSet := map[int32]bool{}
	for id := range movedCells {
		for _, nid := range e.D.Cells[id].Nets {
			netSet[nid] = true
		}
	}
	nets := make([]int32, 0, len(netSet))
	for nid := range netSet {
		nets = append(nets, nid)
	}
	sort.Slice(nets, func(a, b int) bool { return nets[a] < nets[b] })
	for _, nid := range nets {
		e.R.RerouteNet(nid)
	}
	st.ReroutedNets = len(netSet)
}
